#!/bin/sh
# bench.sh — run the repo's benchmark job and snapshot it as BENCH_PR<N>.json,
# the perf trajectory this repo tracks PR over PR.
#
#   scripts/bench.sh 3                 # writes BENCH_PR3.json
#   scripts/bench.sh 3 -benchtime 50x  # extra args forwarded to go test
#
# Compare two snapshots with:
#
#   go run ./cmd/benchjson -diff BENCH_PR2.json BENCH_PR3.json
set -eu

if [ $# -lt 1 ]; then
    echo "usage: scripts/bench.sh <pr-number> [go test args...]" >&2
    exit 2
fi
PR="$1"
shift

cd "$(dirname "$0")/.."

# The scale gate runs separately at one iteration: a single pass is already
# a full million-request simulated day, so the suite's benchtime would turn
# it into minutes of identical repeats. Both outputs feed one snapshot.
{
    go test -run '^$' \
        -bench 'BenchmarkCapacitySweep|BenchmarkScenarios|BenchmarkServingIteration|BenchmarkKVBlockStore|BenchmarkResilience|BenchmarkTieredMacroStep' \
        -benchmem -benchtime "${BENCHTIME:-50x}" "$@" .
    go test -run '^$' -bench 'BenchmarkMillionRequest' -benchmem -benchtime 1x "$@" .
} \
    | tee /dev/stderr \
    | go run ./cmd/benchjson > "BENCH_PR${PR}.json"

echo "wrote BENCH_PR${PR}.json" >&2
