#!/bin/sh
# lint.sh — run papivet, the repo's own static-analysis suite, over the
# whole module (see docs/ANALYSIS.md). CI's analysis job runs exactly this;
# run it locally before sending a change:
#
#   scripts/lint.sh                # analyze ./...
#   scripts/lint.sh -waivers      # audit every //papivet: directive instead
#
# Exits 0 on a clean tree, 2 if there are findings, 1 on load errors.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/papivet "$@" ./...
