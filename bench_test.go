package papi

// One benchmark per figure of the paper's evaluation (there are no numbered
// tables; Figs. 1 and 5 are diagrams). Each benchmark regenerates its figure
// and reports the figure's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Paper-vs-measured values are recorded in
// EXPERIMENTS.md.

import (
	"runtime"
	"testing"

	"github.com/papi-sim/papi/internal/experiments"
	"github.com/papi-sim/papi/internal/kv"
)

func BenchmarkFig02Roofline(b *testing.B) {
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2()
	}
	b.ReportMetric(r.RidgeAI, "ridge-FLOP/B")
}

func BenchmarkFig03RLPDecay(b *testing.B) {
	var r experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(64)
	}
	b.ReportMetric(float64(r.IterationsPerRequest[0]), "longest-request-iters")
}

func BenchmarkFig04FCLatency(b *testing.B) {
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4()
	}
	b.ReportMetric(float64(r.CrossoverBatch), "a100-overtakes-attacc-batch")
}

func BenchmarkFig06AIEstimate(b *testing.B) {
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6()
	}
	b.ReportMetric(100*r.MaxRelError, "max-rel-err-%")
}

func BenchmarkFig07Energy(b *testing.B) {
	var r experiments.Fig7EnergyResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7Energy()
	}
	b.ReportMetric(100*r.NoReuse[0], "dram-share-noreuse-%")
	b.ReportMetric(100*r.Reuse64[0], "dram-share-reuse64-%")
}

func BenchmarkFig07Power(b *testing.B) {
	var r experiments.Fig7PowerResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7Power()
	}
	b.ReportMetric(r.MinReuse4P1B, "4P1B-min-reuse")
	b.ReportMetric(r.Rows[0].FourP1B, "4P1B-noreuse-W")
}

func BenchmarkFig08EndToEnd(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8()
	}
	b.ReportMetric(r.PAPIvsA100AttAcc, "papi-vs-a100attacc-x")
	b.ReportMetric(r.PAPIvsHBMPIM, "papi-vs-hbmpim-x")
	b.ReportMetric(r.PAPIvsAttAccOnly, "papi-vs-attacconly-x")
	b.ReportMetric(r.PAPIEnergyVsBase, "papi-energy-eff-x")
}

func BenchmarkFig09GeneralQA(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9()
	}
	b.ReportMetric(r.PAPIvsA100AttAcc, "papi-vs-a100attacc-x")
	b.ReportMetric(r.PAPIvsAttAccOnly, "papi-vs-attacconly-x")
	b.ReportMetric(r.PAPIEnergyVsBase, "papi-energy-eff-x")
}

func BenchmarkFig10Sensitivity(b *testing.B) {
	var r experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10()
	}
	b.ReportMetric(r.SpecAvgVsBase, "tlp-avg-vs-base-x")
	b.ReportMetric(r.SpecAvgVsAttAcc, "tlp-avg-vs-attacconly-x")
}

func BenchmarkFig11PIMOnly(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11()
	}
	b.ReportMetric(r.Average, "avg-speedup-x")
	b.ReportMetric(r.Lowest, "b4s1-x")
	b.ReportMetric(r.Highest, "b64s4-x")
}

func BenchmarkFig12Breakdown(b *testing.B) {
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12()
	}
	b.ReportMetric(r.FCSpeedup, "fc-speedup-x")
	b.ReportMetric(r.AttentionSlowdown, "attn-slowdown-x")
	b.ReportMetric(100*r.PAPICommShare, "comm-share-%")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationAlpha(b *testing.B) {
	var r experiments.AlphaSweepResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationAlpha()
	}
	b.ReportMetric(r.BestAlpha, "best-alpha")
	b.ReportMetric(r.Calibrated, "calibrated-alpha")
}

func BenchmarkAblationHybridPIM(b *testing.B) {
	var r experiments.HybridPIMResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationHybridPIM()
	}
	b.ReportMetric(r.Average, "hybrid-speedup-x")
}

func BenchmarkAblationDynamicVsStatic(b *testing.B) {
	var r experiments.DynamicVsStaticResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationDynamicVsStatic()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.StaticPUMS/r.DynamicMS, "vs-always-pu-x")
	b.ReportMetric(r.StaticPIMMS/r.DynamicMS, "vs-always-pim-x")
}

func BenchmarkAblationBatching(b *testing.B) {
	var r experiments.BatchingResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationBatching()
	}
	b.ReportMetric(r.Speedup, "continuous-speedup-x")
}

func BenchmarkAblationSchedulingCost(b *testing.B) {
	var r experiments.SchedulingCostResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSchedulingCost()
	}
	b.ReportMetric(r.SlowdownAt50ms, "slowdown-at-50ms-x")
}

// Microbenchmarks of the substrates themselves.

func BenchmarkServingIteration(b *testing.B) {
	eng, err := NewEngine(NewPAPI(), LLaMA65B(), DefaultOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	reqs := CreativeWriting().Generate(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunBatch(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep-runner benchmarks: the goroutine-parallel (system, rate) fan-out
// against the serial path on the default Capacity grid. Both produce
// identical results (pinned by the experiments tests); the parallel runner
// wins wall-clock on any multi-core machine.

func benchCapacitySweep(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		experiments.CapacitySweepWorkers(experiments.CapacitySystems(), LLaMA65B(), GeneralQA(),
			2, 64, 16, []float64{2, 5, 10, 20, 40, 80},
			SLO{TokenLatency: Seconds(0.012)}, 0.9, workers)
	}
}

func BenchmarkCapacitySweepSerial(b *testing.B) { benchCapacitySweep(b, 1) }

func BenchmarkCapacitySweepParallel(b *testing.B) { benchCapacitySweep(b, runtime.GOMAXPROCS(0)) }

func BenchmarkScenarios(b *testing.B) {
	var r experiments.ScenariosResult
	for i := 0; i < b.N; i++ {
		r = experiments.Scenarios()
	}
	b.ReportMetric(float64(len(r.Cells)), "cells")
}

// BenchmarkResilience drives a two-replica fleet through a mid-run crash
// with bounded-retry failover — the fault injector's hot path (casualty
// handling, re-routing, re-prefill accounting) under the allocation gate.
func BenchmarkResilience(b *testing.B) {
	plan := FaultPlan{Name: "bench-crash", Faults: []Fault{
		{Kind: FaultCrash, Replica: 0, At: 0.8},
	}}
	var f *FleetResult
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(NewPAPI, LLaMA65B(), ClusterOptions{
			Replicas:     2,
			MaxBatch:     16,
			Router:       LeastOutstanding(),
			Serving:      DefaultOptions(1),
			Faults:       &plan,
			Retries:      2,
			RetryBackoff: Seconds(0.05),
		})
		if err != nil {
			b.Fatal(err)
		}
		f, err = c.Run(GeneralQA().Poisson(64, 60, 5))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.Retries), "failover-retries")
	b.ReportMetric(f.Availability(), "availability")
}

// BenchmarkTieredMacroStep drives the flagship tiered-diurnal stream at
// TLP = 4 through a fleet: both priority classes outstanding *and*
// speculative commits — the two regimes that used to force the decode loop
// back to one iteration per Step. Class-boundary macro windows now cover
// them, and this benchmark rides the BENCH_PR<N>.json trajectory so a
// change that silently reopens the fallback shows up as a wall-clock and
// allocs/op jump.
func BenchmarkTieredMacroStep(b *testing.B) {
	sc, err := ScenarioByName("tiered-diurnal")
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := sc.Requests(192, 7)
	if err != nil {
		b.Fatal(err)
	}
	var f *FleetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewClusterByName("PAPI", OPT30B(), ClusterOptions{
			Replicas: 2,
			MaxBatch: 8,
			Router:   LeastOutstanding(),
			Serving:  DefaultOptions(4),
		})
		if err != nil {
			b.Fatal(err)
		}
		f, err = c.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.Completed), "completed")
}

// BenchmarkMillionRequest is the scale gate: one million tiered-diurnal
// requests served by a 100-replica PAPI fleet through the constant-memory
// streaming path — the lazy RunSeq iterator with retention off and the
// sharded barrier driver on every core. The custom metrics pin the two
// scale claims: wall-clock throughput (req/s) and the heap retained across
// the run, which must stay flat in the request count. A single iteration is
// a full simulated day, so the bench gate runs this at -benchtime 1x.
func BenchmarkMillionRequest(b *testing.B) {
	const (
		requests = 1_000_000
		replicas = 100
		// The scenario's native cadence is ~20 req/s; compress the day so
		// the 100 replicas run saturated instead of idle.
		rate = 2500
	)
	sc, err := ScenarioByName("tiered-diurnal")
	if err != nil {
		b.Fatal(err)
	}
	var f *FleetResult
	var before, after runtime.MemStats
	for i := 0; i < b.N; i++ {
		c, err := NewClusterByName("PAPI", OPT30B(), ClusterOptions{
			Replicas: replicas,
			MaxBatch: 8,
			Router:   LeastOutstanding(),
			Serving:  DefaultOptions(1),
			Shards:   runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		// Bridge the push-style scenario generator into RunSeq's pull
		// iterator; the buffered channel keeps the generator one-lookahead
		// ahead without materializing the stream.
		ch := make(chan Request, 4096)
		go func() {
			sc.Each(requests, 42, func(r Request) bool {
				r.Arrival = Seconds(r.Arrival.Seconds() * 20 / rate)
				ch <- r
				return true
			})
			close(ch)
		}()
		runtime.GC()
		runtime.ReadMemStats(&before)
		f, err = c.RunSeq(func() (Request, bool) { r, ok := <-ch; return r, ok })
		if err != nil {
			b.Fatal(err)
		}
		// A second GC separates true retention from collectable garbage.
		runtime.GC()
		runtime.ReadMemStats(&after)
	}
	if f.Completed != requests {
		b.Fatalf("completed %d of %d requests", f.Completed, requests)
	}
	b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	retained := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / 1e6
	if retained < 0 {
		retained = 0
	}
	b.ReportMetric(retained, "retained-MB")
}

// BenchmarkKVBlockStore drives the block-level KV cache through a
// steady-state serving cycle — admit with prefix adoption, per-token decode
// growth, commit back to the prefix inventory — under enough pressure that
// the tiers move. Allocation counts here are the hot-path discipline the
// noalloc analyzer pins: steady-state store operations must not allocate
// beyond the per-request lease itself.
func BenchmarkKVBlockStore(b *testing.B) {
	const blockTokens = 32
	store, err := kv.NewStore(kv.Options{BlockTokens: blockTokens, Sharing: true, ColdFactor: 1},
		96, Bytes(blockTokens*1024))
	if err != nil {
		b.Fatal(err)
	}
	adopted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 8 requests over 4 shared prefix groups: later requests adopt the
		// blocks earlier ones published, evicting idle state as they grow.
		for r := 0; r < 8; r++ {
			prefix := 256 + 64*(r%4)
			max := prefix + 128
			l := store.NewLease(int64(1+r%4), int64(r), prefix, max, false)
			if !store.CanAdmit(store.PlanAdmit(l, prefix)) {
				b.Fatal("admission plan exceeded the hot tier")
			}
			c, err := store.Admit(l, prefix)
			if err != nil {
				b.Fatal(err)
			}
			adopted += c.SharedTokens
			for tok := prefix + 1; tok <= max; tok++ {
				if err := store.Extend(l, tok); err != nil {
					b.Fatal(err)
				}
			}
			store.Commit(l)
		}
	}
	b.ReportMetric(float64(adopted)/float64(b.N), "adopted-tok/op")
}
