module github.com/papi-sim/papi

go 1.22
