// Package papi is a simulator of PAPI — "PAPI: Exploiting Dynamic Parallelism
// in Large Language Model Decoding with a Processing-In-Memory-Enabled
// Computing System" (ASPLOS 2025) — and of the systems it is evaluated
// against.
//
// The package is a facade over the internal simulator packages. It exposes:
//
//   - the evaluated computing systems: PAPI (GPU + hybrid FC-PIM/Attn-PIM +
//     dynamic parallelism-aware scheduler) and the baselines A100+AttAcc,
//     A100+HBM-PIM, AttAcc-only, and PIM-only PAPI — each a registry entry
//     of the declarative design layer, which also admits arbitrary new
//     designs as serializable specs (byte-stable JSON) and design-space
//     exploration sweeps over them;
//   - the evaluation LLMs (OPT-30B, LLaMA-65B, GPT-3 66B/175B) and the
//     Dolly-like workload generators, plus the scenario engine: named
//     workload regimes (steady, bursty, diurnal, closed-loop multi-turn,
//     long-context) and byte-stable trace export/replay;
//   - the serving engine (static and mixed continuous batching, speculative
//     decoding) with full time and energy accounting, priority-class
//     admission and batch preemption;
//   - fleet-level cluster serving with routers and SLO-driven elastic
//     autoscaling (warm-up, graceful drain, replica-seconds accounting);
//   - deterministic fault injection (replayable crash/straggler/brownout
//     plans) with bounded-retry failover, request timeouts, and
//     availability accounting;
//   - every figure reproduction from the paper's evaluation section.
//
// Quick start:
//
//	sys := papi.NewPAPI()
//	eng, err := papi.NewEngine(sys, papi.LLaMA65B(), papi.DefaultOptions(4))
//	if err != nil { ... }
//	res, err := eng.RunBatch(papi.CreativeWriting().Generate(16, 1))
//	fmt.Println(res.TotalTime(), res.Energy.Total())
package papi

import (
	"fmt"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Systems (§4, §7.1).

// System is one complete evaluated computing system.
type System = core.System

// NewPAPI builds the full PAPI system with the calibrated α threshold.
func NewPAPI() *System { return core.NewPAPI(0) }

// NewPAPIWithAlpha builds PAPI with a custom memory-boundedness threshold.
func NewPAPIWithAlpha(alpha float64) *System { return core.NewPAPI(alpha) }

// NewA100AttAcc builds the A100+AttAcc baseline.
func NewA100AttAcc() *System { return core.NewA100AttAcc() }

// NewA100HBMPIM builds the A100+HBM-PIM baseline.
func NewA100HBMPIM() *System { return core.NewA100HBMPIM() }

// NewAttAccOnly builds the PIM-only AttAcc baseline.
func NewAttAccOnly() *System { return core.NewAttAccOnly() }

// NewPIMOnlyPAPI builds the §7.4 GPU-less PAPI variant.
func NewPIMOnlyPAPI() *System { return core.NewPIMOnlyPAPI() }

// Designs returns the four systems of Fig. 8 in presentation order.
func Designs() []*System { return core.Designs() }

// SystemByName builds a system from its display name.
func SystemByName(name string) (*System, error) { return core.ByName(name) }

// DefaultAlpha is the calibrated scheduling threshold (§5.2.1).
const DefaultAlpha = core.DefaultAlpha

// Declarative hardware design layer (see docs/DESIGNS.md): every system is
// described by a serializable spec — GPU node, PIM pools, links, policy —
// with byte-stable JSON export/import, and the five evaluated systems are
// registry entries pinned bit-identical to the constructors above.

// DesignSpec is one complete hardware design, declaratively; DesignSpec.Build
// assembles and validates the System it describes.
type DesignSpec = design.Spec

// GPUSpec describes a design's processing-unit pool.
type GPUSpec = design.GPUSpec

// PIMSpec describes one pool of PIM-enabled HBM stacks (xPyB organisation,
// floorplan, bandwidth, FC datapath capabilities).
type PIMSpec = design.PIMSpec

// LinkSpec describes one interconnect class.
type LinkSpec = design.LinkSpec

// PolicySpec names a design's FC placement policy ("dynamic", "static-pu",
// "static-pim").
type PolicySpec = design.PolicySpec

// NVLink3Link returns the GPU↔FC-PIM fabric preset as a spec.
func NVLink3Link() *LinkSpec { return design.NVLink3Link() }

// CXL2Link returns the CXL 2.0 attention-fabric preset as a spec — the
// starting point for custom designs that only re-dimension bandwidth.
func CXL2Link() *LinkSpec { return design.CXL2Link() }

// DesignSpecs returns the design registry: every named design spec, in
// presentation order.
func DesignSpecs() []DesignSpec { return design.Registry() }

// DesignNames lists the registered design names in presentation order.
func DesignNames() []string { return design.Names() }

// DesignByName resolves a registered design spec by display name.
func DesignByName(name string) (DesignSpec, error) { return design.ByName(name) }

// ImportDesignSpec parses and validates an exported design spec.
func ImportDesignSpec(data []byte) (DesignSpec, error) { return design.ImportSpec(data) }

// Models (§7.1).

// Model is one transformer LLM configuration.
type Model = model.Config

// OPT30B returns the OPT-30B configuration (the Fig. 2 roofline model).
func OPT30B() Model { return model.OPT30B() }

// LLaMA65B returns the LLaMA-65B configuration.
func LLaMA65B() Model { return model.LLaMA65B() }

// GPT3_66B returns the GPT-3 66B configuration.
func GPT3_66B() Model { return model.GPT3_66B() }

// GPT3_175B returns the GPT-3 175B configuration.
func GPT3_175B() Model { return model.GPT3_175B() }

// Models returns the evaluation models.
func Models() []Model { return model.All() }

// ModelByName resolves a model configuration by display name.
func ModelByName(name string) (Model, error) { return model.ByName(name) }

// Workloads (§7.1).

// Request is one inference request.
type Request = workload.Request

// Dataset generates Dolly-like request streams.
type Dataset = workload.Dataset

// CreativeWriting returns the long-output workload.
func CreativeWriting() Dataset { return workload.CreativeWriting() }

// GeneralQA returns the short-answer workload.
func GeneralQA() Dataset { return workload.GeneralQA() }

// LongContext returns the document-grounded workload (multi-thousand-token
// prompts, moderate answers).
func LongContext() Dataset { return workload.LongContext() }

// DatasetByName resolves a dataset by name.
func DatasetByName(name string) (Dataset, error) { return workload.ByName(name) }

// Class is a request's priority class: interactive traffic is admitted ahead
// of batch work and may preempt it under KV pressure.
type Class = workload.Class

// Priority classes, highest first.
const (
	ClassInteractive = workload.ClassInteractive
	ClassBatch       = workload.ClassBatch
)

// ClassByName resolves a priority class by display name ("interactive",
// "batch").
func ClassByName(name string) (Class, error) { return workload.ClassByName(name) }

// AssignClasses deterministically tags a fraction of a request stream as
// batch-class, in place.
func AssignClasses(reqs []Request, batchFraction float64, seed int64) []Request {
	return workload.AssignClasses(reqs, batchFraction, seed)
}

// Scenario engine: arrival processes × length mixes, saved traces, and the
// named-scenario registry (see docs/SCENARIOS.md).

// Scenario is a named workload regime: an arrival process crossed with a
// length mix, optionally closed-loop multi-turn.
type Scenario = workload.Scenario

// ArrivalProcess generates request arrival instants (Poisson, bursty on-off,
// diurnal).
type ArrivalProcess = workload.ArrivalProcess

// Trace is a saved request stream with byte-stable JSON export/import.
type Trace = workload.Trace

// Conversation is one pre-sampled closed-loop multi-turn conversation.
type Conversation = workload.Conversation

// Scenarios returns the registered scenarios in presentation order.
func Scenarios() []Scenario { return workload.Scenarios() }

// ScenarioNames lists the registered scenario names.
func ScenarioNames() []string { return workload.ScenarioNames() }

// ScenarioByName resolves a registered scenario.
func ScenarioByName(name string) (Scenario, error) { return workload.ScenarioByName(name) }

// NewPoisson returns a stationary Poisson arrival process.
func NewPoisson(ratePerSec float64) ArrivalProcess { return workload.NewPoisson(ratePerSec) }

// NewOnOff returns a bursty Markov-modulated on-off arrival process.
func NewOnOff(burstRate, baseRate float64, meanBurst, meanLull Seconds) ArrivalProcess {
	return workload.NewOnOff(burstRate, baseRate, meanBurst, meanLull)
}

// NewDiurnal returns a sinusoidal-rate arrival process.
func NewDiurnal(base, amplitude float64, period Seconds) ArrivalProcess {
	return workload.NewDiurnal(base, amplitude, period)
}

// NewTrace records a request stream as a replayable trace.
func NewTrace(name, scenario string, seed int64, reqs []Request) Trace {
	return workload.NewTrace(name, scenario, seed, reqs)
}

// ImportTrace parses and validates an exported trace.
func ImportTrace(data []byte) (Trace, error) { return workload.ImportTrace(data) }

// Serving.

// Options configures a serving run (speculation length, acceptance rate,
// draft model, seeds).
type Options = serving.Options

// Result reports one serving run: latency, energy ledger, phase breakdown,
// RLP traces and scheduler activity.
type Result = serving.Result

// Engine runs inference batches on one system/model pair.
type Engine = serving.Engine

// DefaultOptions returns the evaluation defaults for a speculation length.
func DefaultOptions(tlp int) Options { return serving.DefaultOptions(tlp) }

// NewEngine validates and builds a serving engine.
func NewEngine(sys *System, cfg Model, opt Options) (*Engine, error) {
	return serving.New(sys, cfg, opt)
}

// Stepper advances one engine iteration-by-iteration on a caller-owned
// clock (the resumable core shared by RunBatch, RunContinuous, and the
// cluster simulator).
type Stepper = serving.Stepper

// KVOptions configures the block-level KV cache (block size, prefix
// sharing, cold-tier sizing, eviction policy); set Options.KV to enable it.
type KVOptions = kv.Options

// KVStats is a serving run's block-cache ledger: prefix-index hits, adopted
// tokens, tier motion, and host-link transfer totals.
type KVStats = kv.Stats

// KVPolicy selects the deterministic eviction order over idle blocks.
type KVPolicy = kv.Policy

// Eviction policies for KVOptions.Policy.
const (
	KVPolicyLRU      = kv.PolicyLRU
	KVPolicyRefAware = kv.PolicyRefAware
)

// DefaultKVOptions returns the block-cache defaults (32-token blocks,
// sharing on, 4× cold tier).
func DefaultKVOptions() KVOptions { return kv.DefaultOptions() }

// KVPolicyByName resolves an eviction policy by its display name.
func KVPolicyByName(name string) (KVPolicy, error) { return kv.PolicyByName(name) }

// RequestMetrics is one request's latency experience (TTFT, TPOT,
// completion).
type RequestMetrics = serving.RequestMetrics

// SLO is a per-token latency service-level objective.
type SLO = workload.SLO

// SLOAttainment scores request metrics against a per-token SLO
// (single-token requests are judged by TTFT-inclusive completion).
func SLOAttainment(reqs []RequestMetrics, slo SLO) float64 {
	return serving.SLOAttainment(reqs, slo)
}

// Cluster serving (fleet-level).

// Cluster is a single-use fleet of replica engines behind a router.
type Cluster = cluster.Cluster

// ClusterOptions configures a fleet: replica count, admission cap, router,
// per-replica serving options, and optionally a fault plan with its
// bounded-retry/timeout failover policy.
type ClusterOptions = cluster.Options

// FleetResult aggregates one cluster run: per-replica results, aggregate
// throughput and energy, p50/p95/p99 TTFT/TPOT digests, and — under fault
// injection — the resilience ledger (faults fired, retries, failed
// requests, availability).
type FleetResult = cluster.FleetResult

// Router spreads an arrival stream over the fleet's replicas.
type Router = cluster.Router

// NewCluster builds a fleet whose replicas each own a system built by
// newSys.
func NewCluster(newSys func() *System, cfg Model, opt ClusterOptions) (*Cluster, error) {
	return cluster.New(newSys, cfg, opt)
}

// NewClusterByName builds a fleet of the named system design.
func NewClusterByName(name string, cfg Model, opt ClusterOptions) (*Cluster, error) {
	return cluster.NewByName(name, cfg, opt)
}

// NewClusterFromSpecs builds a fleet from declarative design specs: several
// specs provision a mixed-design fleet whose replicas are provisioned
// toward the list's design ratio (repeat an entry to weight its design;
// elastic fleets restore the ratio as they grow) and whose metrics
// FleetResult splits per design. The initial Replicas must cover every
// listed spec.
func NewClusterFromSpecs(specs []DesignSpec, cfg Model, opt ClusterOptions) (*Cluster, error) {
	return cluster.NewFromSpecs(specs, cfg, opt)
}

// FleetDesignMetrics is one design's share of a mixed fleet's run.
type FleetDesignMetrics = cluster.DesignMetrics

// FleetAggregate is the constant-memory streaming form of a fleet's latency
// distributions: deterministic mergeable quantile sketches fed at each
// completion. FleetResult.Agg always carries one, so digests and attainment
// need no per-request retention (see ClusterOptions.RetainRequests).
type FleetAggregate = cluster.FleetAggregate

// LatencySketch is the deterministic mergeable quantile sketch behind
// FleetAggregate: constant memory, byte-stable JSON, and bit-identical to
// the exact quantiles while a run stays within its exact regime.
type LatencySketch = stats.Sketch

// NewLatencySketch returns an empty sketch at the default accuracy.
func NewLatencySketch() *LatencySketch { return stats.NewSketch() }

// FleetCheckpoint is a byte-stable, mergeable snapshot of a completed fleet
// run — FleetResult.Checkpoint()'s type — so a long run can split into
// segments across processes and still report one merged digest.
type FleetCheckpoint = cluster.Checkpoint

// ImportFleetCheckpoint parses and validates an exported fleet checkpoint.
func ImportFleetCheckpoint(data []byte) (*FleetCheckpoint, error) {
	return cluster.ImportCheckpoint(data)
}

// RoundRobin cycles requests through the replicas in order.
func RoundRobin() Router { return cluster.RoundRobin() }

// LeastOutstanding routes to the replica with the fewest outstanding
// requests.
func LeastOutstanding() Router { return cluster.LeastOutstanding() }

// KVHeadroom routes to the replica with the most free KV-cache capacity.
func KVHeadroom() Router { return cluster.KVHeadroom() }

// RouterByName resolves a routing policy by display name ("round-robin",
// "least-outstanding", "kv-headroom").
func RouterByName(name string) (Router, error) { return cluster.RouterByName(name) }

// Elastic serving (SLO-driven fleet autoscaling).

// AutoscaleOptions configures the elastic control loop: replica bounds,
// control period, warm-up/cool-down latencies, the defended SLO, and the
// windowed signal thresholds (queue depth, p95 TPOT, KV pressure, arrival
// rate).
type AutoscaleOptions = cluster.AutoscaleOptions

// ScaleEvent is one elastic transition with the windowed signals that drove
// it.
type ScaleEvent = cluster.ScaleEvent

// ScaleAction names an elastic transition kind.
type ScaleAction = cluster.ScaleAction

// Elastic transitions, in lifecycle order.
const (
	ScaleUp    = cluster.ScaleUp
	ScaleLive  = cluster.ScaleLive
	ScaleDrain = cluster.ScaleDrain
	ScaleStop  = cluster.ScaleStop
)

// DefaultAutoscale returns a ready-to-use elastic configuration for the
// given fleet bounds and interactive TPOT SLO.
func DefaultAutoscale(min, max int, slo SLO) *AutoscaleOptions {
	return cluster.DefaultAutoscale(min, max, slo)
}

// Resilience (deterministic fault injection; see docs/RESILIENCE.md).

// FaultPlan is a named, replayable fault schedule with byte-stable JSON
// export/import; set ClusterOptions.Faults to inject it into a fleet run.
type FaultPlan = faults.Plan

// Fault is one scheduled failure event in a plan: a permanent replica
// crash, a per-replica straggler window, or a fleet-wide brownout window.
type Fault = faults.Fault

// Fault kinds for Fault.Kind.
const (
	FaultCrash     = faults.KindCrash
	FaultStraggler = faults.KindStraggler
	FaultBrownout  = faults.KindBrownout
)

// MTBFOptions parameterises GenerateMTBFPlan (exponential mean time between
// failures and repair windows, per replica failure domain).
type MTBFOptions = faults.MTBFOptions

// GenerateMTBFPlan draws a seeded stochastic fault plan — a pure function
// of its options, so the same options always yield the same plan.
func GenerateMTBFPlan(opt MTBFOptions) (FaultPlan, error) { return faults.GenerateMTBF(opt) }

// ImportFaultPlan parses and validates an exported fault plan.
func ImportFaultPlan(data []byte) (FaultPlan, error) { return faults.ImportPlan(data) }

// FailedRequest is one request a fleet run terminally failed after
// exhausting its retry budget (FleetResult.FailedRequests).
type FailedRequest = cluster.FailedRequest

// SLOAttainmentClass scores one priority class of a request set against the
// per-token SLO (1 when the class is absent).
func SLOAttainmentClass(reqs []RequestMetrics, slo SLO, class Class) float64 {
	return serving.SLOAttainmentClass(reqs, slo, class)
}

// Placement identifies where an FC kernel runs.
type Placement = sched.Placement

// FC kernel placements.
const (
	PlacePU    = sched.PlacePU
	PlaceFCPIM = sched.PlaceFCPIM
)

// Seconds is the simulator's time quantity.
type Seconds = units.Seconds

// Bytes is the simulator's data-size quantity (KV footprints, transfers).
type Bytes = units.Bytes

// Kernel is one LLM kernel's shape (FLOPs, streamed weights/KV, activations).
type Kernel = model.Kernel

// MoE is a sparsely-activated Mixture-of-Experts model (§6.5).
type MoE = model.MoE

// Mixtral8x7BLike returns a Mixtral-8x7B-class MoE configuration.
func Mixtral8x7BLike() MoE { return model.Mixtral8x7BLike() }

// CompareFCPlacement executes one FC kernel shape on both of a system's FC
// engines and returns the times — the §5.2.1 offline-calibration measurement
// exposed for exploration. A missing engine yields an error.
func CompareFCPlacement(sys *System, k Kernel) (pu, fcpim Seconds, err error) {
	if sys.GPU == nil {
		return 0, 0, fmt.Errorf("papi: %s has no processing units", sys.Name)
	}
	if sys.FCPIM == nil {
		return 0, 0, fmt.Errorf("papi: %s has no FC-PIM devices", sys.Name)
	}
	pu = sys.GPU.Execute(k.Flops, k.WeightBytes+k.ActivationBytes).Time
	fcpim = sys.FCPIM.Execute(pim.Kernel{
		Name:        "fc",
		Class:       pim.ClassFC,
		Flops:       k.Flops,
		UniqueBytes: k.WeightBytes,
	}, 0).Time
	return pu, fcpim, nil
}

// Simulate is the one-call convenience API: build the named design, generate
// a batch from the named dataset, and run it.
func Simulate(design, modelName, dataset string, batch, spec int, seed int64) (Result, error) {
	sys, err := core.ByName(design)
	if err != nil {
		return Result{}, err
	}
	cfg, err := model.ByName(modelName)
	if err != nil {
		return Result{}, err
	}
	ds, err := workload.ByName(dataset)
	if err != nil {
		return Result{}, err
	}
	if batch <= 0 {
		return Result{}, fmt.Errorf("papi: batch %d must be positive", batch)
	}
	eng, err := serving.New(sys, cfg, serving.DefaultOptions(spec))
	if err != nil {
		return Result{}, err
	}
	return eng.RunBatch(ds.Generate(batch, seed))
}
