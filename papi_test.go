package papi

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSimulate(t *testing.T) {
	res, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens == 0 || res.TotalTime() <= 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
	if res.System != "PAPI" || res.Model != "LLaMA-65B" {
		t.Fatalf("labels: %s / %s", res.System, res.Model)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate("TPU-pod", "LLaMA-65B", "creative-writing", 4, 1, 1); err == nil {
		t.Error("unknown design should fail")
	}
	if _, err := Simulate("PAPI", "GPT-5", "creative-writing", 4, 1, 1); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "imagenet", 4, 1, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 0, 1, 1); err == nil {
		t.Error("zero batch should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 4, 0, 1); err == nil {
		t.Error("zero speculation length should fail")
	}
}

func TestFacadeConstructors(t *testing.T) {
	for _, sys := range []*System{
		NewPAPI(), NewPAPIWithAlpha(32), NewA100AttAcc(), NewA100HBMPIM(),
		NewAttAccOnly(), NewPIMOnlyPAPI(),
	} {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
	}
	if len(Designs()) != 4 {
		t.Errorf("Designs() = %d systems, want 4", len(Designs()))
	}
	if len(Models()) != 4 {
		t.Errorf("Models() = %d, want 4", len(Models()))
	}
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := SystemByName("PAPI"); err != nil {
		t.Error(err)
	}
	if _, err := ModelByName("GPT-3 66B"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("general-qa"); err != nil {
		t.Error(err)
	}
}

// Every JSON artifact shipped under examples/ must import, validate, and
// be the byte-stable export of its own value — design specs build a
// System, fault plans validate as plans. README and the docs quote these
// files in runnable commands, and the docs cross-check deliberately skips
// file-path flag values — this is the drift net for the files themselves
// (a renamed field or a stale regeneration fails here, not in a reader's
// terminal). Fault plans are recognised by their "faults" key; everything
// else must be a design spec.
func TestShippedDesignSpecsResolve(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "*", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped design spec files found under examples/")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var probe struct {
			Faults []json.RawMessage `json:"faults"`
		}
		if json.Unmarshal(data, &probe) == nil && probe.Faults != nil {
			plan, err := ImportFaultPlan(data)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			out, err := plan.Export()
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if !bytes.Equal(out, data) {
				t.Errorf("%s is not the byte-stable export of its own fault plan; regenerate it", path)
			}
			continue
		}
		spec, err := ImportDesignSpec(data)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := spec.Build(); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		out, err := spec.Export()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if !bytes.Equal(out, data) {
			t.Errorf("%s is not the byte-stable export of its own spec; regenerate it", path)
		}
	}
}

func TestDesignFacade(t *testing.T) {
	names := DesignNames()
	if len(names) != 5 || len(DesignSpecs()) != 5 {
		t.Fatalf("design registry exposes %d names / %d specs, want 5", len(names), len(DesignSpecs()))
	}
	for _, name := range names {
		spec, err := DesignByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := spec.Export()
		if err != nil {
			t.Fatal(err)
		}
		imported, err := ImportDesignSpec(data)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := imported.Build()
		if err != nil {
			t.Fatal(err)
		}
		if sys.Name != name {
			t.Errorf("built %q from spec %q", sys.Name, name)
		}
	}

	// A mixed fleet through the facade: replicas cycle the spec list and
	// the result splits per design.
	papiSpec, err := DesignByName("PAPI")
	if err != nil {
		t.Fatal(err)
	}
	baseSpec, err := DesignByName("A100+AttAcc")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClusterFromSpecs([]DesignSpec{papiSpec, baseSpec}, LLaMA65B(), ClusterOptions{
		Replicas: 2,
		MaxBatch: 8,
		Router:   LeastOutstanding(),
		Serving:  DefaultOptions(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Run(GeneralQA().Poisson(12, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PerDesign) != 2 {
		t.Fatalf("mixed fleet split has %d designs, want 2", len(f.PerDesign))
	}
	var m FleetDesignMetrics = f.PerDesign[0]
	if m.Design != "PAPI" || m.Replicas != 1 {
		t.Fatalf("first design slice = %+v, want one PAPI replica", m)
	}
}

func TestEngineRoundTrip(t *testing.T) {
	eng, err := NewEngine(NewPAPI(), GPT3_66B(), DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunBatch(GeneralQA().Generate(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestPlacementConstants(t *testing.T) {
	if PlacePU.String() != "PU" || PlaceFCPIM.String() != "FC-PIM" {
		t.Fatal("placement constants broken")
	}
	if DefaultAlpha <= 0 {
		t.Fatal("DefaultAlpha must be positive")
	}
}

func TestCompareFCPlacement(t *testing.T) {
	sys := NewPAPI()
	k := GPT3_175B().FCIterationKernel(4)
	pu, fcpim, err := CompareFCPlacement(sys, k)
	if err != nil {
		t.Fatal(err)
	}
	if fcpim >= pu {
		t.Fatalf("at parallelism 4 FC-PIM (%v) should beat the PUs (%v)", fcpim, pu)
	}
	k = GPT3_175B().FCIterationKernel(256)
	pu, fcpim, err = CompareFCPlacement(sys, k)
	if err != nil {
		t.Fatal(err)
	}
	if pu >= fcpim {
		t.Fatalf("at parallelism 256 the PUs (%v) should beat FC-PIM (%v)", pu, fcpim)
	}
	if _, _, err := CompareFCPlacement(NewAttAccOnly(), k); err == nil {
		t.Fatal("GPU-less system should error")
	}
	if _, _, err := CompareFCPlacement(NewA100AttAcc(), k); err == nil {
		t.Fatal("FC-PIM-less system should error")
	}
}

func TestMoEFacade(t *testing.T) {
	m := Mixtral8x7BLike()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	k := m.FCIterationKernel(8)
	if k.Flops <= 0 || k.WeightBytes <= 0 {
		t.Fatalf("MoE kernel degenerate: %+v", k)
	}
}
