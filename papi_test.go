package papi

import (
	"testing"
)

func TestSimulate(t *testing.T) {
	res, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens == 0 || res.TotalTime() <= 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
	if res.System != "PAPI" || res.Model != "LLaMA-65B" {
		t.Fatalf("labels: %s / %s", res.System, res.Model)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate("TPU-pod", "LLaMA-65B", "creative-writing", 4, 1, 1); err == nil {
		t.Error("unknown design should fail")
	}
	if _, err := Simulate("PAPI", "GPT-5", "creative-writing", 4, 1, 1); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "imagenet", 4, 1, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 0, 1, 1); err == nil {
		t.Error("zero batch should fail")
	}
	if _, err := Simulate("PAPI", "LLaMA-65B", "creative-writing", 4, 0, 1); err == nil {
		t.Error("zero speculation length should fail")
	}
}

func TestFacadeConstructors(t *testing.T) {
	for _, sys := range []*System{
		NewPAPI(), NewPAPIWithAlpha(32), NewA100AttAcc(), NewA100HBMPIM(),
		NewAttAccOnly(), NewPIMOnlyPAPI(),
	} {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
	}
	if len(Designs()) != 4 {
		t.Errorf("Designs() = %d systems, want 4", len(Designs()))
	}
	if len(Models()) != 4 {
		t.Errorf("Models() = %d, want 4", len(Models()))
	}
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := SystemByName("PAPI"); err != nil {
		t.Error(err)
	}
	if _, err := ModelByName("GPT-3 66B"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("general-qa"); err != nil {
		t.Error(err)
	}
}

func TestEngineRoundTrip(t *testing.T) {
	eng, err := NewEngine(NewPAPI(), GPT3_66B(), DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunBatch(GeneralQA().Generate(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestPlacementConstants(t *testing.T) {
	if PlacePU.String() != "PU" || PlaceFCPIM.String() != "FC-PIM" {
		t.Fatal("placement constants broken")
	}
	if DefaultAlpha <= 0 {
		t.Fatal("DefaultAlpha must be positive")
	}
}

func TestCompareFCPlacement(t *testing.T) {
	sys := NewPAPI()
	k := GPT3_175B().FCIterationKernel(4)
	pu, fcpim, err := CompareFCPlacement(sys, k)
	if err != nil {
		t.Fatal(err)
	}
	if fcpim >= pu {
		t.Fatalf("at parallelism 4 FC-PIM (%v) should beat the PUs (%v)", fcpim, pu)
	}
	k = GPT3_175B().FCIterationKernel(256)
	pu, fcpim, err = CompareFCPlacement(sys, k)
	if err != nil {
		t.Fatal(err)
	}
	if pu >= fcpim {
		t.Fatalf("at parallelism 256 the PUs (%v) should beat FC-PIM (%v)", pu, fcpim)
	}
	if _, _, err := CompareFCPlacement(NewAttAccOnly(), k); err == nil {
		t.Fatal("GPU-less system should error")
	}
	if _, _, err := CompareFCPlacement(NewA100AttAcc(), k); err == nil {
		t.Fatal("FC-PIM-less system should error")
	}
}

func TestMoEFacade(t *testing.T) {
	m := Mixtral8x7BLike()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	k := m.FCIterationKernel(8)
	if k.Flops <= 0 || k.WeightBytes <= 0 {
		t.Fatalf("MoE kernel degenerate: %+v", k)
	}
}
