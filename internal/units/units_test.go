package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBandwidthTime(t *testing.T) {
	bw := GBps(2)
	got := bw.Time(GB(4))
	if math.Abs(float64(got)-2) > 1e-12 {
		t.Fatalf("4 GB at 2 GB/s = %v, want 2s", got)
	}
}

func TestBandwidthTimeZeroBandwidth(t *testing.T) {
	var bw BytesPerSecond
	if got := bw.Time(GB(1)); !math.IsInf(float64(got), 1) {
		t.Fatalf("zero bandwidth should give +Inf, got %v", got)
	}
}

func TestFLOPSRateTime(t *testing.T) {
	r := TFLOPS(1)
	got := r.Time(FLOPs(5e11))
	if math.Abs(float64(got)-0.5) > 1e-12 {
		t.Fatalf("0.5 TFLOP at 1 TFLOP/s = %v, want 0.5s", got)
	}
}

func TestFLOPSRateTimeZero(t *testing.T) {
	var r FLOPSRate
	if got := r.Time(1); !math.IsInf(float64(got), 1) {
		t.Fatalf("zero rate should give +Inf, got %v", got)
	}
}

func TestPerByteEnergy(t *testing.T) {
	e := PJPerByte(10)
	got := e.Energy(GB(1))
	if math.Abs(float64(got)-0.01) > 1e-12 {
		t.Fatalf("1 GB at 10 pJ/B = %v, want 10 mJ", got)
	}
}

func TestPowerEnergyRoundTrip(t *testing.T) {
	w := Watts(116)
	j := w.Energy(Seconds(2))
	if math.Abs(float64(j)-232) > 1e-9 {
		t.Fatalf("116 W for 2 s = %v, want 232 J", j)
	}
	back := j.Power(Seconds(2))
	if math.Abs(float64(back)-116) > 1e-9 {
		t.Fatalf("round trip power = %v, want 116 W", back)
	}
}

func TestPowerOfZeroDuration(t *testing.T) {
	if got := Joules(5).Power(0); got != 0 {
		t.Fatalf("power over zero time should be 0, got %v", got)
	}
}

func TestIntensity(t *testing.T) {
	if got := Intensity(100, 50); got != 2 {
		t.Fatalf("intensity = %v, want 2", got)
	}
	if got := Intensity(100, 0); !math.IsInf(got, 1) {
		t.Fatalf("intensity with 0 bytes should be +Inf, got %v", got)
	}
}

func TestMax(t *testing.T) {
	if got := Max(Seconds(1), Seconds(2)); got != 2 {
		t.Fatalf("Max = %v", got)
	}
	if got := Max(Seconds(3), Seconds(2)); got != 3 {
		t.Fatalf("Max = %v", got)
	}
}

func TestConstructors(t *testing.T) {
	cases := []struct {
		got, want float64
		name      string
	}{
		{float64(GB(1.5)), 1.5e9, "GB"},
		{float64(GiBytes(1)), 1 << 30, "GiBytes"},
		{float64(GBps(2.664)), 2.664e9, "GBps"},
		{float64(TBps(1.935)), 1.935e12, "TBps"},
		{float64(GFLOPS(2.664)), 2.664e9, "GFLOPS"},
		{float64(TFLOPS(312)), 3.12e14, "TFLOPS"},
		{float64(Microseconds(5)), 5e-6, "Microseconds"},
		{float64(Milliseconds(5)), 5e-3, "Milliseconds"},
		{float64(Nanoseconds(5)), 5e-9, "Nanoseconds"},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		v    Seconds
		want string
	}{
		{0, "0s"},
		{Nanoseconds(3), "3.00ns"},
		{Microseconds(12), "12.00µs"},
		{Milliseconds(1.5), "1.500ms"},
		{Seconds(2), "2.000s"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Seconds(%g).String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestEngineeringString(t *testing.T) {
	if s := TFLOPS(312).String(); !strings.Contains(s, "T") {
		t.Errorf("312 TFLOP/s should use tera prefix, got %q", s)
	}
	if s := Watts(116).String(); s != "116W" {
		t.Errorf("116 W formats as %q", s)
	}
	if s := Bytes(0).String(); s != "0B" {
		t.Errorf("0 bytes formats as %q", s)
	}
	if s := Joules(2.5e-3).String(); !strings.Contains(s, "m") {
		t.Errorf("2.5 mJ should use milli prefix, got %q", s)
	}
}

// Property: time computed from bandwidth is always non-negative and scales
// linearly in the byte count.
func TestBandwidthTimeLinearity(t *testing.T) {
	f := func(rawBytes uint32, rawBW uint32) bool {
		b := Bytes(rawBytes)
		bw := BytesPerSecond(rawBW) + 1 // avoid zero
		t1 := bw.Time(b)
		t2 := bw.Time(2 * b)
		return t1 >= 0 && math.Abs(float64(t2)-2*float64(t1)) <= 1e-9*math.Abs(float64(t2))+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: roofline Max is commutative-compatible with >= ordering.
func TestMaxProperty(t *testing.T) {
	f := func(a, b float64) bool {
		m := Max(Seconds(a), Seconds(b))
		return float64(m) >= a || float64(m) >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy ledger additivity — per-byte energy is additive over splits.
func TestPerByteEnergyAdditive(t *testing.T) {
	f := func(rawA, rawB uint32, rawE uint16) bool {
		a, b := Bytes(rawA), Bytes(rawB)
		e := PJPerByte(float64(rawE) / 16)
		sum := e.Energy(a) + e.Energy(b)
		whole := e.Energy(a + b)
		return math.Abs(float64(sum)-float64(whole)) <= 1e-9*math.Abs(float64(whole))+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
