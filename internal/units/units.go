// Package units defines the physical quantities used throughout the PAPI
// simulator: work (FLOPs), data volume (bytes), time, energy and power.
//
// All quantities are float64 wrappers. The simulator is analytic at its core
// (roofline arithmetic over very large kernels), so floating point is the
// natural representation; integer cycle counts appear only inside the
// command-level DRAM simulator, which has its own clock domain.
package units

import (
	"fmt"
	"math"
)

// FLOPs counts floating-point operations (a fused multiply-add is 2 FLOPs,
// matching the convention of the paper's roofline analysis).
type FLOPs float64

// Bytes counts data volume.
type Bytes float64

// Seconds measures simulated wall-clock time.
type Seconds float64

// Joules measures energy.
type Joules float64

// Watts measures power.
type Watts float64

// BytesPerSecond measures bandwidth.
type BytesPerSecond float64

// FLOPSRate measures compute throughput in FLOP/s.
type FLOPSRate float64

// PicojoulesPerByte measures per-byte energy cost.
type PicojoulesPerByte float64

// Common scale factors.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15

	KiB = 1024
	MiB = 1024 * 1024
	GiB = 1024 * 1024 * 1024
)

// GB constructs a byte count from gigabytes (decimal, as in bandwidth specs).
func GB(v float64) Bytes { return Bytes(v * Giga) }

// GiBytes constructs a byte count from binary gigabytes (as in capacities).
func GiBytes(v float64) Bytes { return Bytes(v * GiB) }

// GBps constructs a bandwidth from GB/s.
func GBps(v float64) BytesPerSecond { return BytesPerSecond(v * Giga) }

// TBps constructs a bandwidth from TB/s.
func TBps(v float64) BytesPerSecond { return BytesPerSecond(v * Tera) }

// GFLOPS constructs a compute rate from GFLOP/s.
func GFLOPS(v float64) FLOPSRate { return FLOPSRate(v * Giga) }

// TFLOPS constructs a compute rate from TFLOP/s.
func TFLOPS(v float64) FLOPSRate { return FLOPSRate(v * Tera) }

// Microseconds constructs a duration from µs.
func Microseconds(v float64) Seconds { return Seconds(v * 1e-6) }

// Milliseconds constructs a duration from ms.
func Milliseconds(v float64) Seconds { return Seconds(v * 1e-3) }

// Nanoseconds constructs a duration from ns.
func Nanoseconds(v float64) Seconds { return Seconds(v * 1e-9) }

// PJPerByte constructs a per-byte energy from pJ/B.
func PJPerByte(v float64) PicojoulesPerByte { return PicojoulesPerByte(v) }

// Raw accessors. These are the only sanctioned way to drop a dimension: the
// unitsafety analyzer (cmd/papivet) flags raw float64(x) casts outside this
// package, so every place a quantity becomes a bare number is greppable by
// method name and carries its unit in the call. Each returns the value in
// the type's base unit.

func (f FLOPs) FLOPs() float64                 { return float64(f) }
func (b Bytes) Bytes() float64                 { return float64(b) }
func (s Seconds) Seconds() float64             { return float64(s) }
func (j Joules) Joules() float64               { return float64(j) }
func (w Watts) Watts() float64                 { return float64(w) }
func (bw BytesPerSecond) BytesPerSec() float64 { return float64(bw) }
func (r FLOPSRate) FLOPSPerSec() float64       { return float64(r) }
func (e PicojoulesPerByte) PJPerB() float64    { return float64(e) }

// Scale multiplies a quantity by a dimensionless factor (layer counts,
// device counts, percentages) without leaving the dimension.

func (f FLOPs) Scale(k float64) FLOPs     { return FLOPs(float64(f) * k) }
func (b Bytes) Scale(k float64) Bytes     { return Bytes(float64(b) * k) }
func (s Seconds) Scale(k float64) Seconds { return Seconds(float64(s) * k) }
func (j Joules) Scale(k float64) Joules   { return Joules(float64(j) * k) }
func (w Watts) Scale(k float64) Watts     { return Watts(float64(w) * k) }

// Ratio returns the dimensionless quotient of two same-unit quantities —
// speedups, utilizations, fractions. A different-unit quotient is a new
// dimension and must go through the typed operations (Power, Energy, Time).
func Ratio[T ~float64](num, den T) float64 { return float64(num) / float64(den) }

// Time returns the time to move b bytes at bandwidth bw.
// A zero bandwidth yields +Inf (an unusable link), never a panic.
func (bw BytesPerSecond) Time(b Bytes) Seconds {
	if bw <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(bw))
}

// Time returns the time to execute f FLOPs at rate r.
func (r FLOPSRate) Time(f FLOPs) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(r))
}

// Energy returns the energy to process b bytes at cost e.
func (e PicojoulesPerByte) Energy(b Bytes) Joules {
	return Joules(float64(e) * 1e-12 * float64(b))
}

// Energy returns power integrated over a duration.
func (w Watts) Energy(t Seconds) Joules { return Joules(float64(w) * float64(t)) }

// Power returns the average power of spending j joules over t seconds.
func (j Joules) Power(t Seconds) Watts {
	if t <= 0 {
		return 0
	}
	return Watts(float64(j) / float64(t))
}

// Intensity returns arithmetic intensity in FLOP/byte, the roofline x-axis.
// Zero bytes yields +Inf (pure-compute kernel).
func Intensity(f FLOPs, b Bytes) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(f) / float64(b)
}

// Max returns the larger of two durations; used for roofline max(compute, memory).
func Max(a, b Seconds) Seconds {
	if a > b {
		return a
	}
	return b
}

// String implementations render values with engineering prefixes so that
// tables printed by cmd/papibench are directly readable.

func (f FLOPs) String() string           { return engineering(float64(f), "FLOP") }
func (b Bytes) String() string           { return engineering(float64(b), "B") }
func (j Joules) String() string          { return engineering(float64(j), "J") }
func (w Watts) String() string           { return engineering(float64(w), "W") }
func (bw BytesPerSecond) String() string { return engineering(float64(bw), "B/s") }
func (r FLOPSRate) String() string       { return engineering(float64(r), "FLOP/s") }

// String renders a duration using time-natural units.
func (s Seconds) String() string {
	v := float64(s)
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0s"
	case math.IsInf(v, 0):
		return fmt.Sprintf("%fs", v)
	case abs < 1e-6:
		return fmt.Sprintf("%.2fns", v*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.2fµs", v*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}

// engineering formats v with an SI prefix.
func engineering(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0" + unit
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%f%s", v, unit)
	case abs >= Peta:
		return fmt.Sprintf("%.3gP%s", v/Peta, unit)
	case abs >= Tera:
		return fmt.Sprintf("%.3gT%s", v/Tera, unit)
	case abs >= Giga:
		return fmt.Sprintf("%.3gG%s", v/Giga, unit)
	case abs >= Mega:
		return fmt.Sprintf("%.3gM%s", v/Mega, unit)
	case abs >= Kilo:
		return fmt.Sprintf("%.3gk%s", v/Kilo, unit)
	case abs >= 1:
		return fmt.Sprintf("%.3g%s", v, unit)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3gm%s", v*1e3, unit)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3gµ%s", v*1e6, unit)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3gn%s", v*1e9, unit)
	default:
		return fmt.Sprintf("%.3gp%s", v*1e12, unit)
	}
}
