package kv

import (
	"math/rand"
	"testing"

	"github.com/papi-sim/papi/internal/units"
)

// opReader deals bytes from a fuzz/property input; exhaustion ends the run.
type opReader struct {
	data []byte
	pos  int
}

func (r *opReader) next() (byte, bool) {
	if r.pos >= len(r.data) {
		return 0, false
	}
	b := r.data[r.pos]
	r.pos++
	return b, true
}

// driveBlockStore interprets data as a store geometry plus an operation
// sequence — admissions, extends, parks, resumes, commits, cancels,
// surrenders — and audits every invariant after every single operation. It
// returns the final cumulative Stats so callers can assert run-to-run
// determinism.
//
// This is the satellite-1 harness: refcount conservation, the
// free/referenced exclusion, tier occupancy ≡ resident bytes, and
// eviction-never-touches-referenced-state are all enforced by
// Store.CheckInvariants at each step.
func driveBlockStore(t *testing.T, data []byte) Stats {
	t.Helper()
	r := &opReader{data: data}
	g1, _ := r.next()
	g2, _ := r.next()
	g3, _ := r.next()
	g4, _ := r.next()
	g5, _ := r.next()

	opt := Options{
		BlockTokens: 2 + int(g1)%15,
		Sharing:     g2%2 == 0,
		ColdFactor:  []float64{-1, 0, 1, 2}[int(g3)%4],
		Policy:      []Policy{PolicyLRU, PolicyRefAware}[int(g4)%2],
	}
	hot := 2 + int(g5)%24
	s, err := NewStore(opt, hot, units.Bytes(units.MiB))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	maxCtx := opt.BlockTokens * hot // any larger can never admit

	var admitted, parked []*Lease
	salt := int64(0)
	audit := func(op string) {
		if err := s.CheckInvariants(admitted); err != nil {
			t.Fatalf("after %s: %v", op, err)
		}
	}

	for {
		op, ok := r.next()
		if !ok {
			break
		}
		a1, _ := r.next()
		a2, _ := r.next()
		a3, _ := r.next()
		switch op % 7 {
		case 0: // new lease + admission attempt
			salt++
			group := []int64{0, 1, 2, -1}[int(a1)%4]
			grows := group == -1
			max := 1 + int(a2)%maxCtx
			prefix := 0
			if group != 0 {
				prefix = int(a3) % (max + 1)
			}
			l := s.NewLease(group, salt, prefix, max, grows)
			ctx := 1 + int(a3)%max
			if p := s.PlanAdmit(l, ctx); s.CanAdmit(p) {
				if _, err := s.Admit(l, ctx); err != nil {
					t.Fatalf("Admit after CanAdmit=true: %v", err)
				}
				admitted = append(admitted, l)
			}
			audit("admit")
		case 1: // extend an admitted lease
			if len(admitted) == 0 {
				continue
			}
			l := admitted[int(a1)%len(admitted)]
			if room := l.max - l.tokens; room > 0 {
				if err := s.Extend(l, l.tokens+1+int(a2)%room); err != nil {
					t.Fatalf("Extend: %v", err)
				}
			}
			audit("extend")
		case 2: // park (preempt) an admitted lease
			if len(admitted) == 0 {
				continue
			}
			i := int(a1) % len(admitted)
			l := admitted[i]
			s.Park(l)
			admitted = append(admitted[:i], admitted[i+1:]...)
			parked = append(parked, l)
			audit("park")
		case 3: // resume a parked lease
			if len(parked) == 0 {
				continue
			}
			i := int(a1) % len(parked)
			l := parked[i]
			if p := s.PlanAdmit(l, l.tokens); s.CanAdmit(p) {
				if _, err := s.Admit(l, l.tokens); err != nil {
					t.Fatalf("resume Admit after CanAdmit=true: %v", err)
				}
				parked = append(parked[:i], parked[i+1:]...)
				admitted = append(admitted, l)
			}
			audit("resume")
		case 4: // commit (finish) an admitted lease
			if len(admitted) == 0 {
				continue
			}
			i := int(a1) % len(admitted)
			s.Commit(admitted[i])
			admitted = append(admitted[:i], admitted[i+1:]...)
			audit("commit")
		case 5: // cancel a parked lease without resuming it
			if len(parked) == 0 {
				continue
			}
			i := int(a1) % len(parked)
			s.Commit(parked[i])
			parked = append(parked[:i], parked[i+1:]...)
			audit("cancel")
		case 6: // surrender (crash/timeout loss) an admitted or parked lease
			if len(admitted)+len(parked) == 0 {
				continue
			}
			i := int(a1) % (len(admitted) + len(parked))
			if i < len(admitted) {
				s.Surrender(admitted[i])
				admitted = append(admitted[:i], admitted[i+1:]...)
			} else {
				i -= len(admitted)
				s.Surrender(parked[i])
				parked = append(parked[:i], parked[i+1:]...)
			}
			audit("surrender")
		}
	}

	// Drain: every lease path must close the ledger back to empty refs.
	for _, l := range parked {
		s.Commit(l)
	}
	for _, l := range admitted {
		s.Commit(l)
	}
	if err := s.CheckInvariants(nil); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	if got := s.CommittedBlocks(); got != 0 {
		t.Fatalf("drained store still commits %d hot slots", got)
	}
	return s.Stats()
}

// TestBlockStoreProperties drives many seeded-random operation sequences
// through the invariant auditor, and replays each to pin determinism: the
// same sequence must produce bit-identical cumulative statistics.
func TestBlockStoreProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seq := 0; seq < 150; seq++ {
		data := make([]byte, 40+rng.Intn(360))
		rng.Read(data)
		first := driveBlockStore(t, data)
		replay := driveBlockStore(t, data)
		if first != replay {
			t.Fatalf("sequence %d not deterministic:\n first %+v\nreplay %+v", seq, first, replay)
		}
	}
}

// FuzzBlockStore lets the fuzzer search for operation sequences that break
// the conservation laws; the seed corpus covers both policies, both sharing
// modes, and the park/resume/cancel paths.
func FuzzBlockStore(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 2, 0, 6, 0, 1, 200, 30, 0, 2, 100, 16, 1, 0, 0, 2, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{4, 1, 1, 1, 3, 6, 3, 90, 90, 6, 3, 90, 90, 2, 0, 0, 5, 0, 0, 4, 0, 0})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		data := make([]byte, 24+rng.Intn(200))
		rng.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		driveBlockStore(t, data)
	})
}
