package kv

import (
	"testing"

	"github.com/papi-sim/papi/internal/units"
)

// blockMiB is the per-block footprint every test store uses.
const blockMiB = units.Bytes(units.MiB)

// testStore builds a small sharing-enabled store: 8 hot blocks of 8 tokens,
// cold tier 2× hot, LRU.
func testStore(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := NewStore(opt, 8, blockMiB)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func shareOpt() Options {
	return Options{BlockTokens: 8, Sharing: true, ColdFactor: 2}
}

func mustAdmit(t *testing.T, s *Store, l *Lease, ctx int) Cost {
	t.Helper()
	p := s.PlanAdmit(l, ctx)
	if !s.CanAdmit(p) {
		t.Fatalf("CanAdmit(%+v) = false with committed %d of %d", p, s.CommittedBlocks(), s.HotBlocks())
	}
	c, err := s.Admit(l, ctx)
	if err != nil {
		t.Fatalf("Admit(%d): %v", ctx, err)
	}
	return c
}

func checkInv(t *testing.T, s *Store, active ...*Lease) {
	t.Helper()
	if err := s.CheckInvariants(active); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyRefAware} {
		got, err := PolicyByName(p.String())
		if err != nil || got != p {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := PolicyByName("mru"); err == nil {
		t.Fatal("PolicyByName accepted an unknown policy")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{BlockTokens: -1}).Validate(); err == nil {
		t.Fatal("negative block size accepted")
	}
	if err := (Options{Policy: Policy(9)}).Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestNewStoreErrors(t *testing.T) {
	if _, err := NewStore(Options{}, 0, blockMiB); err == nil {
		t.Fatal("zero hot blocks accepted")
	}
	if _, err := NewStore(Options{}, 4, 0); err == nil {
		t.Fatal("zero block footprint accepted")
	}
}

// TestPrefixAdoption: a second lease in the same group adopts the sealed
// shared-prefix blocks of the first instead of re-prefilling them.
func TestPrefixAdoption(t *testing.T) {
	s := testStore(t, shareOpt())
	// 20 tokens with a 16-token shared prefix: blocks 0,1 canonical
	// (sealed at 8 and 16), block 2 a private tail.
	a := s.NewLease(7, 1, 16, 24, false)
	ca := mustAdmit(t, s, a, 20)
	if ca.SharedTokens != 0 || ca.NewBlocks != 3 {
		t.Fatalf("first admission shared %d new %d, want 0/3", ca.SharedTokens, ca.NewBlocks)
	}
	checkInv(t, s, a)

	b := s.NewLease(7, 2, 16, 24, false)
	cb := mustAdmit(t, s, b, 20)
	if cb.SharedTokens != 16 || cb.ReusedBlocks != 2 || cb.NewBlocks != 1 {
		t.Fatalf("second admission shared %d reused %d new %d, want 16/2/1",
			cb.SharedTokens, cb.ReusedBlocks, cb.NewBlocks)
	}
	checkInv(t, s, a, b)

	// A lease from another group shares nothing.
	c := s.NewLease(9, 3, 16, 24, false)
	if p := s.PlanAdmit(c, 20); p.Run != 0 {
		t.Fatalf("cross-group plan found run %d, want 0", p.Run)
	}

	s.Commit(a)
	s.Commit(b)
	checkInv(t, s)
	// Canonical blocks stay resident: a third group member still hits.
	d := s.NewLease(7, 4, 16, 24, false)
	if p := s.PlanAdmit(d, 20); p.Run != 2 || p.AdoptIdle != 2 {
		t.Fatalf("post-commit plan run %d adoptIdle %d, want 2/2", p.Run, p.AdoptIdle)
	}
}

// TestConversationCarry: a grows lease seals its entire context (input and
// generated) canonically, so the follow-up turn adopts all full blocks.
func TestConversationCarry(t *testing.T) {
	s := testStore(t, shareOpt())
	turn1 := s.NewLease(-3, 1, 0, 24, true)
	mustAdmit(t, s, turn1, 10) // prefill 10
	if err := s.Extend(turn1, 24); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	checkInv(t, s, turn1)
	s.Commit(turn1)
	checkInv(t, s)

	// Follow-up carries the 24 tokens and adds 8 of input: 32-token
	// context, the carried 24 ≡ blocks 0..2 all resident.
	turn2 := s.NewLease(-3, 2, 24, 40, true)
	c2 := mustAdmit(t, s, turn2, 32)
	if c2.SharedTokens != 24 {
		t.Fatalf("follow-up shared %d tokens, want 24", c2.SharedTokens)
	}
	checkInv(t, s, turn2)
}

// TestParkResume: preemption demotes to the cold tier over the link;
// resumption promotes back and re-prefills only the dropped tail.
func TestParkResume(t *testing.T) {
	s := testStore(t, shareOpt())
	l := s.NewLease(-1, 1, 0, 24, true)
	mustAdmit(t, s, l, 10)
	if err := s.Extend(l, 20); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	checkInv(t, s, l)

	pc := s.Park(l)
	if !l.Parked() {
		t.Fatal("lease not parked")
	}
	// Two sealed blocks demote; the 4-token tail is dropped.
	if pc.DemotedBlocks != 2 || pc.TransferBytes != 2*blockMiB {
		t.Fatalf("park demoted %d blocks, %v transferred; want 2, 2MiB", pc.DemotedBlocks, pc.TransferBytes)
	}
	hot, cold := s.TierBytes()
	if hot != 0 || cold != 2*blockMiB {
		t.Fatalf("post-park occupancy hot %v cold %v, want 0/2MiB", hot, cold)
	}
	checkInv(t, s)

	rc, err := s.Admit(l, 20)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rc.PromotedBlocks != 2 || rc.SharedTokens != 16 || rc.NewBlocks != 1 {
		t.Fatalf("resume promoted %d shared %d new %d, want 2/16/1",
			rc.PromotedBlocks, rc.SharedTokens, rc.NewBlocks)
	}
	if rc.TransferTime <= 0 {
		t.Fatal("promotion charged no transfer time")
	}
	checkInv(t, s, l)
}

// TestEvictionRespectsRefs: with every hot slot committed, admission is
// refused rather than evicting referenced state.
func TestEvictionRespectsRefs(t *testing.T) {
	s := testStore(t, shareOpt())
	a := s.NewLease(0, 1, 0, 32, false) // 4 blocks held + 0 growth at full
	mustAdmit(t, s, a, 32)
	b := s.NewLease(0, 2, 0, 32, false)
	mustAdmit(t, s, b, 32)
	if s.CommittedBlocks() != 8 {
		t.Fatalf("committed %d, want 8", s.CommittedBlocks())
	}
	c := s.NewLease(0, 3, 0, 8, false)
	if s.CanAdmit(s.PlanAdmit(c, 8)) {
		t.Fatal("admission accepted with zero free commitment")
	}
	if s.ParkGain(a) != 4 {
		t.Fatalf("ParkGain = %d, want 4", s.ParkGain(a))
	}
	s.Park(a)
	if !s.CanAdmit(s.PlanAdmit(c, 8)) {
		t.Fatal("admission still refused after park")
	}
	checkInv(t, s, b)
}

// TestShadowMode: with sharing off the store keeps its ledger but never
// indexes, transfers, or retains — the behavioural surface of the
// pre-block engine.
func TestShadowMode(t *testing.T) {
	s := testStore(t, Options{BlockTokens: 8})
	a := s.NewLease(7, 1, 16, 24, true)
	ca := mustAdmit(t, s, a, 24)
	if ca.SharedTokens != 0 {
		t.Fatal("shadow mode shared tokens")
	}
	s.Commit(a)
	b := s.NewLease(7, 2, 16, 24, true)
	if p := s.PlanAdmit(b, 24); p.Run != 0 {
		t.Fatal("shadow mode index hit")
	}
	mustAdmit(t, s, b, 24)
	if pc := s.Park(b); pc.TransferBytes != 0 || pc.DemotedBlocks != 0 {
		t.Fatal("shadow mode park paid a transfer")
	}
	hot, cold := s.TierBytes()
	if hot != 0 || cold != 0 {
		t.Fatalf("shadow mode retained state: hot %v cold %v", hot, cold)
	}
	st := s.Stats()
	if st.Lookups != 0 || st.Hits != 0 || st.TransferBytes != 0 {
		t.Fatalf("shadow mode stats moved: %+v", st)
	}
	checkInv(t, s)
}

// TestPolicies: ref-aware eviction retires never-shared idle blocks before
// previously-shared ones; LRU retires strictly by idle age.
func TestPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyRefAware} {
		opt := shareOpt()
		opt.Policy = pol
		opt.ColdFactor = -1 // no cold tier: evictions drop, easy to observe
		s := testStore(t, opt)

		// Fill all 8 hot slots with idle canonical blocks: group 1's two
		// blocks go idle first, then group 2's two, then group 3 holds 4.
		g1 := s.NewLease(1, 1, 16, 16, false)
		mustAdmit(t, s, g1, 16)
		g2 := s.NewLease(2, 2, 16, 16, false)
		mustAdmit(t, s, g2, 16)
		s.Commit(g1)
		s.Commit(g2)
		// Re-touch group 1 so its blocks are marked ever-shared.
		r1 := s.NewLease(1, 3, 16, 16, false)
		mustAdmit(t, s, r1, 16)
		s.Commit(r1)
		g3 := s.NewLease(3, 4, 16, 32, false)
		mustAdmit(t, s, g3, 32)
		checkInv(t, s, g3)

		// 4 idle blocks remain: group 1 (ever-shared, most recently
		// idled) and group 2 (never shared, idled earlier). A 2-block
		// admission must evict two.
		v := s.NewLease(4, 5, 0, 16, false)
		mustAdmit(t, s, v, 16)
		checkInv(t, s, g3, v)

		p1 := s.PlanAdmit(s.NewLease(1, 6, 16, 16, false), 16)
		p2 := s.PlanAdmit(s.NewLease(2, 7, 16, 16, false), 16)
		switch pol {
		case PolicyLRU:
			// Oldest idles are group 2's: they died, group 1 survives.
			if p1.Run != 2 || p2.Run != 0 {
				t.Fatalf("lru: group1 run %d group2 run %d, want 2/0", p1.Run, p2.Run)
			}
		case PolicyRefAware:
			// Never-shared group 2 dies first even though group 1's
			// blocks went idle more recently.
			if p1.Run != 2 || p2.Run != 0 {
				t.Fatalf("ref-aware: group1 run %d group2 run %d, want 2/0", p1.Run, p2.Run)
			}
		}
	}
}

// TestLRUEvictsOldest distinguishes LRU from ref-aware: the ever-shared
// blocks are the OLDER idles, so LRU evicts them while ref-aware spares
// them and takes the never-shared younger ones.
func TestLRUEvictsOldest(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyRefAware} {
		opt := shareOpt()
		opt.Policy = pol
		opt.ColdFactor = -1
		s := testStore(t, opt)

		shared := s.NewLease(1, 1, 16, 16, false)
		mustAdmit(t, s, shared, 16)
		re := s.NewLease(1, 2, 16, 16, false)
		mustAdmit(t, s, re, 16) // marks group 1 ever-shared
		s.Commit(shared)
		s.Commit(re) // group 1 idle (ever-shared), stamps 1-2
		private := s.NewLease(2, 3, 16, 16, false)
		mustAdmit(t, s, private, 16)
		s.Commit(private) // group 2 idle (never shared), younger stamps
		hold := s.NewLease(3, 4, 0, 32, false)
		mustAdmit(t, s, hold, 32) // pin the other 4 slots

		v := s.NewLease(4, 5, 0, 16, false)
		mustAdmit(t, s, v, 16) // forces two evictions
		checkInv(t, s, hold, v)

		p1 := s.PlanAdmit(s.NewLease(1, 6, 16, 16, false), 16)
		p2 := s.PlanAdmit(s.NewLease(2, 7, 16, 16, false), 16)
		switch pol {
		case PolicyLRU:
			if p1.Run != 0 || p2.Run != 2 {
				t.Fatalf("lru: group1 run %d group2 run %d, want 0/2", p1.Run, p2.Run)
			}
		case PolicyRefAware:
			if p1.Run != 2 || p2.Run != 0 {
				t.Fatalf("ref-aware: group1 run %d group2 run %d, want 2/0", p1.Run, p2.Run)
			}
		}
	}
}

func TestResidentChainTokens(t *testing.T) {
	s := testStore(t, shareOpt())
	l := s.NewLease(-5, 1, 0, 24, true)
	mustAdmit(t, s, l, 20)
	if got := s.ResidentChainTokens(-5, 20); got != 16 {
		t.Fatalf("ResidentChainTokens = %d, want 16 (two sealed blocks)", got)
	}
	if got := s.ResidentChainTokens(-6, 20); got != 0 {
		t.Fatalf("foreign group resident %d, want 0", got)
	}
	s.Park(l)
	// Parked state is cold but still resident and indexed.
	if got := s.ResidentChainTokens(-5, 20); got != 16 {
		t.Fatalf("post-park ResidentChainTokens = %d, want 16", got)
	}
}

func TestFitsAlone(t *testing.T) {
	s := testStore(t, shareOpt())
	if !s.FitsAlone(64) {
		t.Fatal("64 tokens (8 blocks) should fit an 8-block tier")
	}
	if s.FitsAlone(65) {
		t.Fatal("65 tokens (9 blocks) cannot fit an 8-block tier")
	}
}
