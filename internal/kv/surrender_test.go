package kv

import (
	"testing"

	"github.com/papi-sim/papi/internal/units"
)

// Surrender must free only what the dead lease alone held: blocks shared
// with a surviving group member keep their references and their cached
// state, while exclusive blocks are lost.
func TestSurrenderSharedBlocksSurvive(t *testing.T) {
	opt := Options{BlockTokens: 4, Sharing: true, ColdFactor: 1, Policy: PolicyLRU}
	s, err := NewStore(opt, 16, units.Bytes(units.MiB))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	a := s.NewLease(1, 1, 8, 16, false)
	if _, err := s.Admit(a, 8); err != nil {
		t.Fatalf("admit a: %v", err)
	}
	b := s.NewLease(1, 2, 8, 16, false)
	c, err := s.Admit(b, 8)
	if err != nil {
		t.Fatalf("admit b: %v", err)
	}
	if c.SharedTokens != 8 {
		t.Fatalf("b shared %d tokens, want 8", c.SharedTokens)
	}

	s.Surrender(a)
	if err := s.CheckInvariants([]*Lease{b}); err != nil {
		t.Fatalf("after surrendering a: %v", err)
	}
	st := s.Stats()
	if st.SurrenderedLeases != 1 {
		t.Fatalf("SurrenderedLeases = %d, want 1", st.SurrenderedLeases)
	}
	if st.LostBlocks != 0 {
		t.Fatalf("LostBlocks = %d, want 0: b still references every block", st.LostBlocks)
	}

	// Surrendering the survivor loses its now-exclusive blocks.
	s.Surrender(b)
	if err := s.CheckInvariants(nil); err != nil {
		t.Fatalf("after surrendering b: %v", err)
	}
	st = s.Stats()
	if st.SurrenderedLeases != 2 {
		t.Fatalf("SurrenderedLeases = %d, want 2", st.SurrenderedLeases)
	}
	if st.LostBlocks != 2 {
		t.Fatalf("LostBlocks = %d, want 2 (8 tokens / 4-token blocks)", st.LostBlocks)
	}
	if got := s.CommittedBlocks(); got != 0 {
		t.Fatalf("surrendered store still commits %d hot slots", got)
	}

	// Idempotent on an already-cleared lease.
	s.Surrender(b)
	if got := s.Stats().SurrenderedLeases; got != 2 {
		t.Fatalf("second surrender counted: SurrenderedLeases = %d, want 2", got)
	}
}

// A parked lease holds no references; surrendering it clears the chain and
// counts the lease, but its previously demoted blocks age out under the
// eviction policy exactly as a committed parked lease's would.
func TestSurrenderParkedLease(t *testing.T) {
	opt := Options{BlockTokens: 4, Sharing: true, ColdFactor: 1, Policy: PolicyLRU}
	s, err := NewStore(opt, 16, units.Bytes(units.MiB))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	l := s.NewLease(-1, 1, 0, 16, true)
	if _, err := s.Admit(l, 8); err != nil {
		t.Fatalf("admit: %v", err)
	}
	s.Park(l)
	if err := s.CheckInvariants(nil); err != nil {
		t.Fatalf("after park: %v", err)
	}
	s.Surrender(l)
	if err := s.CheckInvariants(nil); err != nil {
		t.Fatalf("after surrender: %v", err)
	}
	st := s.Stats()
	if st.SurrenderedLeases != 1 {
		t.Fatalf("SurrenderedLeases = %d, want 1", st.SurrenderedLeases)
	}
	if st.LostBlocks != 0 {
		t.Fatalf("LostBlocks = %d, want 0: a parked lease holds no references", st.LostBlocks)
	}
}
