package kv

import "fmt"

// CheckInvariants audits the store's entire conservation ledger against the
// given set of active (admitted, non-parked) leases. The property suite and
// FuzzBlockStore call it after every operation; the serving engine's own
// invariant fuzzer calls it at every step boundary. It is deliberately
// implemented by slab walk plus per-key index lookups — never by ranging
// over the index map — so the determinism analyzer's map-iteration ban holds
// without waivers.
//
// The laws checked:
//
//  1. Refcount conservation: Σ block refs ≡ Σ blocks held by active leases
//     (every live logical page is accounted exactly once per holder).
//  2. Free/referenced exclusion: no block is simultaneously on the free
//     stack and referenced (or resident in any tier).
//  3. Tier occupancy: hot/cold counters ≡ the slab census, so occupancy ×
//     block footprint ≡ Σ resident block bytes per tier.
//  4. Eviction safety: the idle queues — the only eviction candidates —
//     contain exactly the resident blocks with zero refs; a block with
//     active refs can never be touched by eviction.
//  5. Commitment budget: referenced-hot + growth reservations ≤ hot
//     capacity, with the store's reservation counter ≡ Σ lease reservations.
//  6. Index bijection: hash ≠ 0 ⟺ the block is resident and the index maps
//     its hash back to it, with no stray index entries.
func (s *Store) CheckInvariants(active []*Lease) error {
	total := len(s.blocks)

	// Slab census.
	nFree, nHot, nCold, nRefHot := 0, 0, 0, 0
	sumRefs := 0
	nIndexed := 0
	for id := 0; id < total; id++ {
		b := &s.blocks[id]
		switch b.tier {
		case tierFree:
			nFree++
			if b.refs != 0 {
				return fmt.Errorf("kv: block %d free with %d refs", id, b.refs)
			}
			if b.hash != 0 {
				return fmt.Errorf("kv: block %d free but still indexed", id)
			}
		case tierHot:
			nHot++
			if b.refs > 0 {
				nRefHot++
			}
		case tierCold:
			nCold++
			if b.refs != 0 {
				return fmt.Errorf("kv: block %d cold with %d refs (refs force hot)", id, b.refs)
			}
		default:
			return fmt.Errorf("kv: block %d in unknown tier %d", id, b.tier)
		}
		if b.refs < 0 {
			return fmt.Errorf("kv: block %d refcount underflow (%d)", id, b.refs)
		}
		sumRefs += int(b.refs)
		if b.hash != 0 {
			got, ok := s.index[b.hash]
			if !ok || got != int32(id) {
				return fmt.Errorf("kv: block %d hash not mapped back to it in index", id)
			}
			nIndexed++
		}
	}

	// Free stack ≡ free census, and membership is well-formed.
	if len(s.free) != nFree {
		return fmt.Errorf("kv: free stack holds %d, slab census says %d", len(s.free), nFree)
	}
	for i := 0; i < len(s.free); i++ {
		id := s.free[i]
		if id < 0 || int(id) >= total {
			return fmt.Errorf("kv: free stack entry %d out of range", id)
		}
		if s.blocks[id].tier != tierFree {
			return fmt.Errorf("kv: block %d on free stack but in tier %d", id, s.blocks[id].tier)
		}
	}

	// Tier occupancy counters.
	if nHot != s.hotUsed {
		return fmt.Errorf("kv: hotUsed %d, slab census %d", s.hotUsed, nHot)
	}
	if nCold != s.coldUsed {
		return fmt.Errorf("kv: coldUsed %d, slab census %d", s.coldUsed, nCold)
	}
	if s.hotUsed > s.hotCap || s.coldUsed > s.coldCap {
		return fmt.Errorf("kv: occupancy %d/%d hot %d/%d cold over capacity",
			s.hotUsed, s.hotCap, s.coldUsed, s.coldCap)
	}
	if nRefHot != s.refHot {
		return fmt.Errorf("kv: refHot %d, slab census %d", s.refHot, nRefHot)
	}

	// Commitment budget.
	if s.reserve < 0 {
		return fmt.Errorf("kv: reservation counter underflow (%d)", s.reserve)
	}
	if s.refHot+s.reserve > s.hotCap {
		return fmt.Errorf("kv: committed %d (ref %d + reserve %d) over hot capacity %d",
			s.refHot+s.reserve, s.refHot, s.reserve, s.hotCap)
	}

	// Lease-side conservation.
	held, reserved := 0, 0
	for _, l := range active {
		if l.parked || !l.active {
			return fmt.Errorf("kv: lease in active set is parked=%v active=%v", l.parked, l.active)
		}
		held += len(l.blocks)
		reserved += l.reserve
		for i := 0; i < len(l.blocks); i++ {
			id := l.blocks[i]
			if id < 0 || int(id) >= total {
				return fmt.Errorf("kv: lease block %d out of range", id)
			}
			b := &s.blocks[id]
			if b.tier != tierHot || b.refs < 1 {
				return fmt.Errorf("kv: lease holds block %d (tier %d, refs %d) not referenced-hot",
					id, b.tier, b.refs)
			}
		}
	}
	if sumRefs != held {
		return fmt.Errorf("kv: Σ refs %d ≠ Σ active lease blocks %d", sumRefs, held)
	}
	if reserved != s.reserve {
		return fmt.Errorf("kv: Σ lease reservations %d ≠ store reservation %d", reserved, s.reserve)
	}

	// Idle queues ≡ resident ref-0 blocks, exactly.
	wantHotIdle := s.hotUsed - s.refHot
	gotHotIdle, err := s.auditQueues(&s.hotIdle, tierHot)
	if err != nil {
		return err
	}
	if gotHotIdle != wantHotIdle {
		return fmt.Errorf("kv: hot idle queues hold %d, census says %d", gotHotIdle, wantHotIdle)
	}
	gotColdIdle, err := s.auditQueues(&s.coldIdle, tierCold)
	if err != nil {
		return err
	}
	if gotColdIdle != s.coldUsed {
		return fmt.Errorf("kv: cold idle queues hold %d, census says %d", gotColdIdle, s.coldUsed)
	}

	// Index bijection closes: every entry was visited via some block's hash.
	if len(s.index) != nIndexed {
		return fmt.Errorf("kv: index holds %d entries, %d blocks carry hashes", len(s.index), nIndexed)
	}
	return nil
}

// auditQueues walks one tier's idle queues, validating membership and link
// integrity, and returns the member count.
func (s *Store) auditQueues(q *[2]list, tier int8) (int, error) {
	n := 0
	for class := 0; class < 2; class++ {
		prev := nilRef
		for id := q[class].head; id != nilRef; id = s.blocks[id].next {
			b := &s.blocks[id]
			if b.tier != tier {
				return 0, fmt.Errorf("kv: idle block %d on tier-%d queue but in tier %d", id, tier, b.tier)
			}
			if b.refs != 0 {
				return 0, fmt.Errorf("kv: block %d on idle queue with %d refs", id, b.refs)
			}
			if idleClass(b) != class {
				return 0, fmt.Errorf("kv: block %d on wrong idle class queue", id)
			}
			if b.prev != prev {
				return 0, fmt.Errorf("kv: idle queue back-link broken at block %d", id)
			}
			prev = id
			n++
			if n > len(s.blocks) {
				return 0, fmt.Errorf("kv: idle queue cycle detected")
			}
		}
		if q[class].tail != prev {
			return 0, fmt.Errorf("kv: idle queue tail pointer stale (have %d, want %d)", q[class].tail, prev)
		}
	}
	return n, nil
}
