package kv

import "github.com/papi-sim/papi/internal/units"

// splitmix64 constants and the fixed chain start (π digits — nothing up the
// sleeve; any fixed odd constants work, determinism is what matters).
const (
	mixGamma   = 0x9e3779b97f4a7c15
	chainStart = 0x243f6a8885a308d3
	saltGamma  = 0x6a09e667f3bcc909
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x += mixGamma
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chainNext folds one block's content identity into the running prefix hash.
// The chain value at position i identifies the entire token prefix through
// block i, so two requests collide at position i only if every block up to
// and including i matches — which is exactly the prefix-sharing condition.
func chainNext(prev, content uint64) uint64 {
	return mix64(prev ^ content*mixGamma)
}

// seedCanonical derives the group-wide content seed: every lease in a prefix
// group hashes its shared blocks from this seed, so their chains agree.
func seedCanonical(group int64) uint64 { return mix64(uint64(group)) }

// Lease is one request's hold on a chain of blocks. The serving engine
// creates it once per request, Admits it (fresh or resuming from a park),
// Extends it as decode grows the context, Parks it on preemption, and
// Commits it when the request finishes.
type Lease struct {
	group  int64 // prefix group; 0 = no sharing relationship
	grows  bool  // whole context is group-canonical (conversation carry)
	prefix int   // declared shared-prefix tokens (ignored when grows)
	max    int   // worst-case context (reservation bound)
	tokens int   // current context held

	parked bool
	active bool

	seedC uint64 // canonical (group) content seed
	seedP uint64 // private (per-request) content seed
	b     int    // block tokens (copied from the store)

	reserve int // hot slots reserved for this lease's future growth

	// blocks and chain are pre-sized to the worst-case block count and
	// re-sliced, never appended, so the hot path stays allocation-free.
	blocks []int32
	chain  []uint64
}

// NewLease builds a lease for a request with the given prefix-sharing
// relationship. group 0 means no sharing (every block private); salt must be
// unique per request (the request ID) so private chains never collide; grows
// marks conversation carry-over, where the entire context — not just a fixed
// prefix — is canonical to the group and future turns may adopt it.
func (s *Store) NewLease(group, salt int64, prefixTokens, maxTokens int, grows bool) *Lease {
	maxBlocks := ceilDiv(maxTokens, s.opt.BlockTokens)
	return &Lease{
		group:  group,
		grows:  grows,
		prefix: prefixTokens,
		max:    maxTokens,
		seedC:  seedCanonical(group),
		seedP:  mix64(mix64(uint64(salt)+saltGamma) ^ uint64(group)),
		b:      s.opt.BlockTokens,
		blocks: make([]int32, 0, maxBlocks),
		chain:  make([]uint64, 0, maxBlocks),
	}
}

// Tokens reports the context the lease currently holds.
func (l *Lease) Tokens() int { return l.tokens }

// Parked reports whether the lease sits preempted with state demoted.
func (l *Lease) Parked() bool { return l.parked }

// Active reports whether the lease currently holds block references.
func (l *Lease) Active() bool { return l.active }

// Blocks reports how many blocks the lease currently references.
func (l *Lease) Blocks() int { return len(l.blocks) }

// canonical reports whether block position i carries group-shared content:
// every position when the context is conversation carry-over, otherwise only
// positions fully inside the declared shared prefix.
func (l *Lease) canonical(i int) bool {
	if l.group == 0 {
		return false
	}
	return l.grows || (i+1)*l.b <= l.prefix
}

// contentID is block position i's content identity: group-derived for
// canonical positions (so group members agree), salted per-request otherwise
// (so a private chain is only ever re-found by its own parked lease).
func (l *Lease) contentID(i int) uint64 {
	seed := l.seedP
	if l.canonical(i) {
		seed = l.seedC
	}
	return mix64(seed ^ uint64(i)*mixGamma)
}

// ensureChain extends the prefix-hash chain to cover n block positions.
//
//papivet:noalloc
func (l *Lease) ensureChain(n int) {
	if n > cap(l.chain) {
		n = cap(l.chain)
	}
	for len(l.chain) < n {
		i := len(l.chain)
		prev := uint64(chainStart)
		if i > 0 {
			prev = l.chain[i-1]
		}
		l.chain = l.chain[:i+1]
		l.chain[i] = chainNext(prev, l.contentID(i))
	}
}

// Plan is an admission dry-run: how a context of ctx tokens would land in
// the store right now.
type Plan struct {
	Blocks       int // total blocks the context occupies
	Run          int // leading full blocks found resident (index hits)
	Promote      int // of Run, cold blocks needing an uplink transfer
	AdoptIdle    int // of Run, idle hot blocks (refs 0 → 1)
	New          int // blocks to allocate and prefill (incl. partial tail)
	Growth       int // hot slots to reserve for future decode growth
	SharedTokens int // prefill tokens the Run saves
}

// CommitSlots is the hot-tier commitment the admission would add: newly
// referenced blocks plus growth reservations. Adopting an already-referenced
// block is free — it is the sharing win.
func (p Plan) CommitSlots() int { return p.AdoptIdle + p.Promote + p.New + p.Growth }

// PlanAdmit walks the lease's prefix chain against the index and reports how
// an admission at ctx context tokens would land. It mutates nothing and
// bumps no statistics, so admission checks and scheduling probes may call it
// freely. Reuse stops at the first missing block: only a contiguous leading
// run is adoptable, because attention state at position i depends on all
// earlier positions.
//
//papivet:noalloc
func (s *Store) PlanAdmit(l *Lease, ctx int) Plan {
	var p Plan
	full := ctx / s.opt.BlockTokens
	p.Blocks = ceilDiv(ctx, s.opt.BlockTokens)
	p.Growth = ceilDiv(l.max, s.opt.BlockTokens) - p.Blocks
	if s.opt.Sharing {
		l.ensureChain(full)
		for i := 0; i < full; i++ {
			id, ok := s.index[l.chain[i]]
			if !ok {
				break
			}
			b := &s.blocks[id]
			if b.tier == tierCold {
				p.Promote++
			} else if b.refs == 0 {
				p.AdoptIdle++
			}
			p.Run++
		}
	}
	p.New = p.Blocks - p.Run
	p.SharedTokens = p.Run * s.opt.BlockTokens
	return p
}

// CanAdmit reports whether the planned admission fits the hot tier's
// commitment budget. Admitting only under this predicate is what guarantees
// every later mid-decode Extend finds a slot without touching referenced
// state.
func (s *Store) CanAdmit(p Plan) bool {
	return s.refHot+s.reserve+p.CommitSlots() <= s.hotCap
}

// Cost is the side-effect bill of one store operation, charged by the
// serving engine to the simulated clock and energy meters.
type Cost struct {
	SharedTokens   int // prefill tokens satisfied from resident blocks
	ReusedBlocks   int // hot index hits adopted
	PromotedBlocks int // cold index hits pulled up over the link
	NewBlocks      int // blocks allocated and prefilled
	DemotedBlocks  int // blocks written back to the cold tier
	TransferBytes  units.Bytes
	TransferTime   units.Seconds
	TransferEnergy units.Joules
	// StallTime is the demand-critical share of TransferTime: promotions,
	// which an admission must wait on before the adopted context is hot.
	// Demotions are asynchronous write-backs of idle state — the victim's
	// data drains over the host link while prefill proceeds on the stacks —
	// so they occupy the link (TransferTime, energy) without stalling the
	// batch.
	StallTime units.Seconds
}

// Admit materializes a context of ctx tokens for the lease: leading resident
// blocks are adopted (cold ones promoted over the link), the remainder is
// allocated fresh, and hot slots are reserved for decode growth up to the
// lease's max. It serves both a fresh request and a parked lease resuming
// after preemption — in the latter case blocks that survived in either tier
// are re-adopted and only evicted ones land in New (the re-prefill tax).
// The caller must have checked CanAdmit with a plan at the same ctx.
func (s *Store) Admit(l *Lease, ctx int) (Cost, error) {
	var c Cost
	full := ctx / s.opt.BlockTokens
	need := ceilDiv(ctx, s.opt.BlockTokens)
	l.blocks = l.blocks[:0]

	run := 0
	if s.opt.Sharing {
		l.ensureChain(full)
		for i := 0; i < full; i++ {
			s.stats.Lookups++
			id, ok := s.index[l.chain[i]]
			if !ok {
				break
			}
			b := &s.blocks[id]
			if b.tier == tierCold {
				// All cold blocks are idle (refs>0 forces hot).
				s.listRemove(&s.coldIdle[idleClass(b)], id)
				if err := s.promote(id, &c); err != nil {
					s.pushIdle(id)
					return c, err
				}
				c.PromotedBlocks++
			} else if b.refs == 0 {
				s.listRemove(&s.hotIdle[idleClass(b)], id)
				c.ReusedBlocks++
				s.stats.ReusedBlocks++
			} else {
				c.ReusedBlocks++
				s.stats.ReusedBlocks++
			}
			if b.refs == 0 {
				s.refHot++
			}
			b.refs++
			b.shared = true
			s.stats.Hits++
			l.blocks = l.blocks[:i+1]
			l.blocks[i] = id
			run++
		}
	}

	for i := run; i < need; i++ {
		id, err := s.allocBlock(true, &c)
		if err != nil {
			return c, err
		}
		if s.opt.Sharing && i < full {
			s.seal(l, i, id)
		}
		c.NewBlocks++
		l.blocks = l.blocks[:i+1]
		l.blocks[i] = id
	}

	l.reserve = ceilDiv(l.max, s.opt.BlockTokens) - need
	s.reserve += l.reserve
	l.tokens = ctx
	l.parked = false
	l.active = true
	c.SharedTokens = run * s.opt.BlockTokens
	s.stats.SharedTokens += c.SharedTokens
	s.notePeak()
	return c, nil
}

// seal marks block position i immutable and publishes it in the prefix
// index. A position whose hash is already resident (a racing duplicate from
// a non-contiguous survivor) stays unindexed: the incumbent keeps serving
// hits and this copy dies private.
//
//papivet:noalloc
func (s *Store) seal(l *Lease, i int, id int32) {
	l.ensureChain(i + 1)
	h := l.chain[i]
	if _, dup := s.index[h]; dup {
		return
	}
	s.blocks[id].hash = h
	s.index[h] = id
}

// Extend grows an admitted lease's context to ctx tokens, sealing blocks as
// they fill and drawing new ones from the lease's growth reservation. It is
// the decode hot path: allocation-free, transfer-free (capacity pressure
// here drops idle cache rather than paying a writeback), and callable once
// per generated token or once per bulk macro-step window.
//
//papivet:noalloc
func (s *Store) Extend(l *Lease, ctx int) error {
	if ctx <= l.tokens {
		return nil
	}
	oldFull := l.tokens / s.opt.BlockTokens
	newFull := ctx / s.opt.BlockTokens
	need := ceilDiv(ctx, s.opt.BlockTokens)

	// The previous partial tail may have filled: seal it in place.
	if s.opt.Sharing && len(l.blocks) > oldFull && newFull > oldFull {
		s.seal(l, oldFull, l.blocks[oldFull])
	}

	for i := len(l.blocks); i < need; i++ {
		var c Cost
		id, err := s.allocBlock(false, &c)
		if err != nil {
			return err
		}
		l.reserve--
		s.reserve--
		if s.opt.Sharing && i < newFull {
			s.seal(l, i, id)
		}
		l.blocks = l.blocks[:i+1]
		l.blocks[i] = id
	}
	l.tokens = ctx
	return nil
}

// decref releases one reference; returns true when the block went idle.
func (s *Store) decref(id int32) bool {
	b := &s.blocks[id]
	b.refs--
	if b.refs > 0 {
		return false
	}
	s.refHot--
	return true
}

// Park releases a preempted lease's hold without discarding the computed
// state: the private tail is dropped (its tokens are the resume re-prefill
// floor), sealed blocks still referenced elsewhere stay hot untouched, and
// newly idle sealed blocks are written back to the cold tier over the link —
// evicting cold idle state for room, or dropping outright when no cold tier
// exists. The lease keeps its chain so Admit can later re-adopt whatever
// survives. With sharing off everything is simply discarded, matching the
// pre-block preemption semantics.
func (s *Store) Park(l *Lease) Cost {
	var c Cost
	if !l.active {
		return c
	}
	full := l.tokens / s.opt.BlockTokens
	for i := len(l.blocks) - 1; i >= 0; i-- {
		id := l.blocks[i]
		if !s.decref(id) {
			continue
		}
		if !s.opt.Sharing || i >= full {
			// Shadow mode, or the unsealed private tail: state gone.
			s.freeBlock(id)
			continue
		}
		// Sealed block going idle: demote hot → cold, making room by
		// evicting cold idle state if needed.
		if s.coldUsed == s.coldCap && !s.dropColdIdle() {
			s.stats.EvictedBlocks++
			s.freeBlock(id)
			continue
		}
		b := &s.blocks[id]
		b.tier = tierCold
		s.hotUsed--
		s.coldUsed++
		s.pushIdle(id)
		s.chargeTransfer(&c, false)
		s.stats.DemotedBlocks++
		c.DemotedBlocks++
	}
	s.reserve -= l.reserve
	l.reserve = 0
	if full > len(l.blocks) {
		full = len(l.blocks)
	}
	l.blocks = l.blocks[:full]
	l.parked = true
	l.active = false
	return c
}

// Commit retires a finished lease. Canonical sealed blocks stay resident and
// indexed — they are the prefix cache future group members hit — moving to
// the idle queues where eviction policy governs their lifetime. Private
// blocks (and everything in shadow mode) are freed: no future request can
// ever re-find them.
func (s *Store) Commit(l *Lease) {
	if !l.active {
		// A parked lease holds no references; its surviving blocks age
		// out of the idle queues under the eviction policy.
		l.blocks = l.blocks[:0]
		l.parked = false
		return
	}
	full := l.tokens / s.opt.BlockTokens
	for i := len(l.blocks) - 1; i >= 0; i-- {
		id := l.blocks[i]
		if !s.decref(id) {
			continue
		}
		b := &s.blocks[id]
		if s.opt.Sharing && i < full && l.canonical(i) && b.hash != 0 {
			s.pushIdle(id)
			continue
		}
		s.freeBlock(id)
	}
	s.reserve -= l.reserve
	l.reserve = 0
	l.blocks = l.blocks[:0]
	l.active = false
	l.parked = false
}

// Surrender abandons a lease whose owner is gone — a crashed replica's
// request, or one cancelled by a timeout. Unlike Park, nothing is preserved
// for revival: every block the lease alone referenced is freed outright (its
// cached state died with the owner; there is no write-back, because there is
// nobody to drain it for), while blocks shared with other leases survive
// untouched. A parked lease holds no references, so surrendering it just
// clears the chain, exactly as Commit's inactive branch does. Surrender is
// idempotent on an already-cleared lease.
func (s *Store) Surrender(l *Lease) {
	if l.active {
		for i := len(l.blocks) - 1; i >= 0; i-- {
			id := l.blocks[i]
			if !s.decref(id) {
				continue
			}
			s.freeBlock(id)
			s.stats.LostBlocks++
		}
		s.reserve -= l.reserve
	}
	l.reserve = 0
	l.blocks = l.blocks[:0]
	if l.active || l.parked {
		s.stats.SurrenderedLeases++
	}
	l.active = false
	l.parked = false
}

// ParkGain reports exactly how many committed hot slots parking this lease
// would release: blocks only it references, plus its growth reservation.
// The preemption loop uses it as an all-or-nothing precheck before evicting
// victims for a higher-priority admission.
//
//papivet:noalloc
func (s *Store) ParkGain(l *Lease) int {
	gain := l.reserve
	for i := 0; i < len(l.blocks); i++ {
		if s.blocks[l.blocks[i]].refs == 1 {
			gain++
		}
	}
	return gain
}

// ResidentChainTokens walks a prefix group's canonical chain without a lease
// and reports how many leading tokens are resident in either tier right now.
// The cluster layer uses it to discount a follow-up request's carried
// context from fleet KV-demand signals: those tokens will be adopted, not
// re-prefilled, so counting their bytes again would double-bill headroom.
func (s *Store) ResidentChainTokens(group int64, prefixTokens int) int {
	if !s.opt.Sharing || group == 0 {
		return 0
	}
	seed := seedCanonical(group)
	full := prefixTokens / s.opt.BlockTokens
	prev := uint64(chainStart)
	run := 0
	for i := 0; i < full; i++ {
		prev = chainNext(prev, mix64(seed^uint64(i)*mixGamma))
		if _, ok := s.index[prev]; !ok {
			break
		}
		run++
	}
	return run * s.opt.BlockTokens
}
