// Package kv models block-level KV-cache state for the serving engine: the
// per-request length counter of the earlier PRs becomes a store of fixed-size
// token blocks with copy-on-write refcounts, a prefix index, and a two-tier
// hot/cold hierarchy.
//
// Three mechanisms compose:
//
//   - Blocks and refcounts. A request's KV context is a chain of fixed-size
//     blocks (Options.BlockTokens tokens each) plus one private, unsealed
//     partial tail. Full blocks are sealed — immutable once written — and
//     refcounted, so several requests can reference one physical block. All
//     writes land in the private tail; a would-be writer of a sealed block
//     instead re-prefills into a fresh private block (the copy-on-write
//     discipline: sealing is what makes sharing safe).
//
//   - Prefix index. Sealed blocks are keyed by a running hash over the
//     chain of token-block identities, so a request whose context starts
//     with an already-computed prefix — a conversation follow-up carrying
//     the previous turns, a request sharing a system prompt or document —
//     adopts the resident blocks instead of re-prefilling them. The
//     workload is synthetic (lengths only, no literal tokens), so block
//     content identity is derived deterministically from the prefix group
//     and block position; a request without a group gets a private salted
//     chain, which is what lets a preempted request re-adopt its own parked
//     blocks on re-admission.
//
//   - Tiers. Hot blocks live in the attention pool (HBM on the PIM stacks);
//     cold blocks are offloaded across the host link (Options.Link).
//     Promotion and demotion each pay an explicit per-block transfer
//     (bandwidth and link energy; only demand promotions stall the clock —
//     demotion is an asynchronous write-back, see Cost.StallTime).
//     Preemption parks a lease: blocks demote to the cold tier instead of
//     being discarded, so
//     re-admission re-prefills only blocks that were actually evicted.
//
// Eviction is deterministic and pluggable (PolicyLRU, PolicyRefAware) and
// only ever touches idle blocks — a block with active references is never a
// candidate. The invariants (refcount conservation, tier occupancy, the
// free/referenced exclusion) are exported through CheckInvariants and pinned
// by randomized property tests and FuzzBlockStore.
//
// With Options.Sharing false the store runs in shadow mode: the same block
// ledger is maintained (so the invariants stay checkable), but nothing is
// indexed, parked blocks are discarded, and no transfers are charged — the
// serving results are bit-identical to the pre-block length-counter engine,
// which the fastpath equivalence tests pin.
package kv

import (
	"errors"
	"fmt"

	"github.com/papi-sim/papi/internal/interconnect"
	"github.com/papi-sim/papi/internal/units"
)

// errHotFull is the allocator's failure mode: every legitimate caller is
// guarded by the CommittedBlocks ≤ HotBlocks admission invariant, so seeing
// this error means the invariant was bypassed. A sentinel (not fmt.Errorf)
// keeps the noalloc-annotated allocation path allocation-free.
var errHotFull = errors.New("kv: hot tier full with no idle block")

// Policy selects the deterministic eviction order over idle blocks.
type Policy int

const (
	// PolicyLRU evicts the idle block that has been idle longest,
	// regardless of its sharing history.
	PolicyLRU Policy = iota
	// PolicyRefAware prefers idle blocks that were never adopted by a
	// second lease (private history ⇒ unlikely to be reused), falling back
	// to LRU among previously-shared blocks.
	PolicyRefAware
)

// String names the policy as CLIs spell it.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyRefAware:
		return "ref-aware"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyByName resolves an eviction policy by its display name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "lru":
		return PolicyLRU, nil
	case "ref-aware":
		return PolicyRefAware, nil
	}
	return 0, fmt.Errorf("kv: unknown eviction policy %q", name)
}

// Options configures a block store.
type Options struct {
	// BlockTokens is the tokens-per-block granularity; 0 selects 32 (the
	// vLLM-style default: coarse enough that block bookkeeping is noise,
	// fine enough that partial-tail waste stays small).
	BlockTokens int
	// Sharing enables the prefix index and the cold tier. False runs the
	// store in shadow mode (see the package comment): block accounting
	// without behaviour change.
	Sharing bool
	// ColdFactor sizes the cold tier as a multiple of the hot tier's block
	// count; 0 selects 4. Negative disables the cold tier (evictions and
	// parks then discard).
	ColdFactor float64
	// Link prices hot↔cold transfers; the zero value selects the CXL2 host
	// link (the design-layer LinkSpec preset for host-attached capacity).
	Link interconnect.Link
	// Policy is the eviction order over idle blocks.
	Policy Policy
}

// DefaultOptions returns the sharing-enabled configuration the kvcache
// figure sweeps around.
func DefaultOptions() Options { return Options{BlockTokens: 32, Sharing: true} }

// Resolved returns the options with every zero-value default filled in —
// the geometry NewStore will actually use, which callers need ahead of
// construction to size the store (block footprint = model KV bytes over
// BlockTokens tokens).
func (o Options) Resolved() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.BlockTokens <= 0 {
		o.BlockTokens = 32
	}
	if o.ColdFactor == 0 {
		o.ColdFactor = 4
	}
	if o.ColdFactor < 0 {
		o.ColdFactor = 0
	}
	if o.Link.Name == "" {
		o.Link = interconnect.CXL2()
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.BlockTokens < 0 {
		return fmt.Errorf("kv: block size %d tokens must be positive", o.BlockTokens)
	}
	if o.Policy != PolicyLRU && o.Policy != PolicyRefAware {
		return fmt.Errorf("kv: unknown eviction policy %d", int(o.Policy))
	}
	if o.Link.Name != "" {
		if err := o.Link.Validate(); err != nil {
			return fmt.Errorf("kv: tier link: %w", err)
		}
	}
	return nil
}

// Block tiers. Free blocks are on the allocation stack; hot blocks occupy
// attention-pool (HBM) capacity; cold blocks occupy host-offload capacity.
const (
	tierFree = int8(iota)
	tierHot
	tierCold
)

// nilRef terminates the intrusive idle lists.
const nilRef = int32(-1)

// block is one slab entry. Links (prev/next) thread the idle queue the
// block currently sits on; refs counts the active leases holding it.
type block struct {
	refs   int32
	tier   int8
	shared bool   // ever adopted by a second lease (PolicyRefAware signal)
	hash   uint64 // sealed chain identity; 0 for unsealed tails and shadow mode
	stamp  int64  // logical instant the block last became idle
	prev   int32
	next   int32
}

// list is an intrusive FIFO over the slab: head is the oldest idle block —
// the eviction candidate — and new idles push on the tail, so within one
// class the order is exactly least-recently-idled.
type list struct{ head, tail int32 }

// Stats is the store's cumulative activity, surfaced through
// serving.Result.KV for the kvcache figure.
type Stats struct {
	// BlockTokens / HotBlocks / ColdBlocks echo the store geometry.
	BlockTokens int
	HotBlocks   int
	ColdBlocks  int

	// Lookups and Hits count prefix-index probes at admission (block
	// granularity); SharedTokens is the prefill work those hits saved.
	Lookups      int
	Hits         int
	SharedTokens int

	// Block traffic: reuses (hot hits), promotions (cold hits moved up),
	// demotions (hot blocks written back cold), evictions (blocks dropped
	// from either tier, losing their cached state).
	ReusedBlocks   int
	PromotedBlocks int
	DemotedBlocks  int
	EvictedBlocks  int

	// Transfer totals over the tier link, charged at admission and
	// preemption instants.
	TransferBytes  units.Bytes
	TransferTime   units.Seconds
	TransferEnergy units.Joules

	// PeakCommitted is the high-water mark of committed hot slots
	// (referenced blocks plus growth reservations).
	PeakCommitted int

	// Fault-path accounting: leases surrendered to a crash or cancellation,
	// and the blocks whose cached state died with them. Omitted when zero so
	// fault-free Results keep their pre-fault serialisation byte-for-byte.
	SurrenderedLeases int `json:",omitempty"`
	LostBlocks        int `json:",omitempty"`
}

// Store is a block-granular KV cache for one serving engine. It is not
// safe for concurrent use; the serving stepper drives it from its
// single-threaded admission/decode loop.
type Store struct {
	opt        Options
	blockBytes units.Bytes

	hotCap  int
	coldCap int

	hotUsed  int // resident hot blocks
	coldUsed int // resident cold blocks
	refHot   int // hot blocks with refs > 0
	reserve  int // hot slots reserved for active leases' decode growth

	blocks []block
	free   []int32 // allocation stack over the slab
	index  map[uint64]int32

	// Idle queues: resident ref-0 blocks by (tier, ever-shared). The
	// split is what makes PolicyRefAware O(1): never-shared candidates
	// pop from [0], previously-shared from [1].
	hotIdle  [2]list
	coldIdle [2]list

	stamp int64 // logical clock for idle ordering
	stats Stats
}

// NewStore builds a store of hotBlocks hot slots (the attention pool's
// capacity divided by the block footprint) with blockBytes bytes per block.
func NewStore(opt Options, hotBlocks int, blockBytes units.Bytes) (*Store, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if hotBlocks < 1 {
		return nil, fmt.Errorf("kv: hot tier of %d blocks must hold at least one", hotBlocks)
	}
	if blockBytes <= 0 {
		return nil, fmt.Errorf("kv: block footprint %v must be positive", blockBytes)
	}
	coldCap := 0
	if opt.Sharing {
		coldCap = int(opt.ColdFactor * float64(hotBlocks))
	}
	total := hotBlocks + coldCap
	s := &Store{
		opt:        opt,
		blockBytes: blockBytes,
		hotCap:     hotBlocks,
		coldCap:    coldCap,
		blocks:     make([]block, total),
		free:       make([]int32, total),
		index:      make(map[uint64]int32, total),
	}
	// Fill the stack so pops hand out ascending IDs.
	for i := range s.free {
		s.free[i] = int32(total - 1 - i)
	}
	s.hotIdle = [2]list{{nilRef, nilRef}, {nilRef, nilRef}}
	s.coldIdle = [2]list{{nilRef, nilRef}, {nilRef, nilRef}}
	s.stats.BlockTokens = opt.BlockTokens
	s.stats.HotBlocks = hotBlocks
	s.stats.ColdBlocks = coldCap
	return s, nil
}

// BlockTokens reports the store's block granularity.
func (s *Store) BlockTokens() int { return s.opt.BlockTokens }

// Sharing reports whether the prefix index and cold tier are live.
func (s *Store) Sharing() bool { return s.opt.Sharing }

// HotBlocks reports the hot tier's capacity in blocks.
func (s *Store) HotBlocks() int { return s.hotCap }

// Stats snapshots the cumulative counters.
func (s *Store) Stats() Stats { return s.stats }

// TierBytes reports resident bytes per tier (occupancy × block footprint).
func (s *Store) TierBytes() (hot, cold units.Bytes) {
	return s.blockBytes.Scale(float64(s.hotUsed)), s.blockBytes.Scale(float64(s.coldUsed))
}

// CommittedBlocks reports hot slots pledged to active leases: referenced
// blocks plus growth reservations. The admission invariant is
// CommittedBlocks ≤ HotBlocks, which is what guarantees every mid-decode
// block extension finds a slot without touching a referenced block.
func (s *Store) CommittedBlocks() int { return s.refHot + s.reserve }

// FitsAlone reports whether a request of at most maxTokens context can ever
// hold its worst-case block chain in the hot tier — the block-granular
// analogue of the single-request capacity check.
func (s *Store) FitsAlone(maxTokens int) bool {
	return ceilDiv(maxTokens, s.opt.BlockTokens) <= s.hotCap
}

// ---------------------------------------------------------------------------
// Intrusive idle-queue plumbing.

func (s *Store) listPush(l *list, id int32) {
	b := &s.blocks[id]
	b.prev, b.next = l.tail, nilRef
	if l.tail != nilRef {
		s.blocks[l.tail].next = id
	} else {
		l.head = id
	}
	l.tail = id
}

func (s *Store) listRemove(l *list, id int32) {
	b := &s.blocks[id]
	if b.prev != nilRef {
		s.blocks[b.prev].next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nilRef {
		s.blocks[b.next].prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nilRef, nilRef
}

// idleClass indexes the (never-shared, shared) queue split.
func idleClass(b *block) int {
	if b.shared {
		return 1
	}
	return 0
}

// pushIdle queues a block that just became resident-with-zero-refs.
func (s *Store) pushIdle(id int32) {
	b := &s.blocks[id]
	s.stamp++
	b.stamp = s.stamp
	if b.tier == tierHot {
		s.listPush(&s.hotIdle[idleClass(b)], id)
	} else {
		s.listPush(&s.coldIdle[idleClass(b)], id)
	}
}

// popIdle removes and returns the eviction candidate from a tier's queues
// under the configured policy, or nilRef when the tier has no idle block.
func (s *Store) popIdle(q *[2]list) int32 {
	pick := nilRef
	switch s.opt.Policy {
	case PolicyRefAware:
		if q[0].head != nilRef {
			pick = q[0].head
		} else {
			pick = q[1].head
		}
	default: // PolicyLRU: the older of the two heads.
		pick = q[0].head
		if alt := q[1].head; alt != nilRef &&
			(pick == nilRef || s.blocks[alt].stamp < s.blocks[pick].stamp) {
			pick = alt
		}
	}
	if pick == nilRef {
		return nilRef
	}
	s.listRemove(&q[idleClass(&s.blocks[pick])], pick)
	return pick
}

// ---------------------------------------------------------------------------
// Slot management.

// unindex drops a sealed block's hash from the prefix index.
func (s *Store) unindex(id int32) {
	b := &s.blocks[id]
	if b.hash != 0 {
		delete(s.index, b.hash)
		b.hash = 0
	}
}

// freeBlock returns a resident block to the allocation stack.
func (s *Store) freeBlock(id int32) {
	b := &s.blocks[id]
	s.unindex(id)
	if b.tier == tierHot {
		s.hotUsed--
	} else {
		s.coldUsed--
	}
	*b = block{tier: tierFree, prev: nilRef, next: nilRef}
	s.free = s.free[:len(s.free)+1]
	s.free[len(s.free)-1] = id
}

// dropColdIdle evicts one cold block (state lost) to open a cold slot.
func (s *Store) dropColdIdle() bool {
	id := s.popIdle(&s.coldIdle)
	if id == nilRef {
		return false
	}
	s.stats.EvictedBlocks++
	s.freeBlock(id)
	return true
}

// evictHotIdle frees one hot slot by retiring an idle hot block. When
// demote is true (admission and preemption instants, where transfer time is
// charged to the clock) and a cold slot is free, the block is written back
// to the cold tier over the link; otherwise its cached state is dropped.
// Mid-decode extensions pass demote=false: they must stay time-free, so
// capacity pressure there silently discards idle cache instead of paying a
// writeback. Returns false when no idle hot block exists — which the
// CommittedBlocks ≤ HotBlocks admission invariant rules out for every
// legitimate caller.
//
//papivet:noalloc
func (s *Store) evictHotIdle(demote bool, c *Cost) bool {
	id := s.popIdle(&s.hotIdle)
	if id == nilRef {
		return false
	}
	b := &s.blocks[id]
	if demote && s.opt.Sharing && s.coldUsed < s.coldCap {
		b.tier = tierCold
		s.hotUsed--
		s.coldUsed++
		s.pushIdle(id)
		s.chargeTransfer(c, false)
		s.stats.DemotedBlocks++
		return true
	}
	s.stats.EvictedBlocks++
	s.freeBlock(id)
	return true
}

// allocBlock claims a hot slot for a brand-new block and returns its ID:
// the free stack first, then an idle-hot eviction. refs starts at 1.
//
//papivet:noalloc
func (s *Store) allocBlock(demote bool, c *Cost) (int32, error) {
	if s.hotUsed == s.hotCap {
		if !s.evictHotIdle(demote, c) {
			return nilRef, errHotFull
		}
	}
	id := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	b := &s.blocks[id]
	b.tier = tierHot
	b.refs = 1
	s.hotUsed++
	s.refHot++
	return id, nil
}

// promote moves a cold resident block into the hot tier (paying the uplink
// transfer), evicting an idle hot block if the tier is full. The caller has
// already removed it from the cold idle queue.
func (s *Store) promote(id int32, c *Cost) error {
	if s.hotUsed == s.hotCap {
		if !s.evictHotIdle(true, c) {
			return errHotFull
		}
	}
	b := &s.blocks[id]
	b.tier = tierHot
	s.coldUsed--
	s.hotUsed++
	s.chargeTransfer(c, true)
	s.stats.PromotedBlocks++
	return nil
}

// chargeTransfer prices one block crossing the tier link. stall marks a
// demand transfer (promotion) the caller must wait on; write-backs pass
// false and only occupy the link (see Cost.StallTime).
func (s *Store) chargeTransfer(c *Cost, stall bool) {
	tr := s.opt.Link.Send(s.blockBytes)
	c.TransferBytes += s.blockBytes
	c.TransferTime += tr.Time
	c.TransferEnergy += tr.Energy
	if stall {
		c.StallTime += tr.Time
	}
	s.stats.TransferBytes += s.blockBytes
	s.stats.TransferTime += tr.Time
	s.stats.TransferEnergy += tr.Energy
}

func (s *Store) notePeak() {
	if c := s.CommittedBlocks(); c > s.stats.PeakCommitted {
		s.stats.PeakCommitted = c
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
