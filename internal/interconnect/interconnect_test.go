package interconnect

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestPresetsValid(t *testing.T) {
	for _, l := range []Link{NVLink3(), PCIe4(), CXL2()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestValidateFailures(t *testing.T) {
	l := NVLink3()
	l.BW = 0
	if err := l.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
	l = NVLink3()
	l.Latency = -1
	if err := l.Validate(); err == nil {
		t.Error("negative latency should fail")
	}
	l = NVLink3()
	l.MaxDevices = 0
	if err := l.Validate(); err == nil {
		t.Error("zero device budget should fail")
	}
}

func TestSendCost(t *testing.T) {
	l := PCIe4()
	tr := l.Send(units.GB(0.032)) // 32 MB at 32 GB/s = 1 ms
	want := float64(l.Latency) + 1e-3
	if math.Abs(float64(tr.Time)-want) > 1e-12 {
		t.Fatalf("time = %v, want %.6g", tr.Time, want)
	}
	wantE := 0.032e9 * 10e-12
	if math.Abs(float64(tr.Energy)-wantE) > wantE*1e-9 {
		t.Fatalf("energy = %v, want %.4g", tr.Energy, wantE)
	}
}

func TestSendZeroBytes(t *testing.T) {
	// Latency still applies to empty messages (a command costs a flight).
	l := NVLink3()
	tr := l.Send(0)
	if tr.Time != l.Latency {
		t.Fatalf("zero-byte time = %v, want latency %v", tr.Time, l.Latency)
	}
	if tr.Energy != 0 {
		t.Fatalf("zero-byte energy = %v", tr.Energy)
	}
}

func TestNVLinkFasterThanPCIe(t *testing.T) {
	b := units.GB(1)
	if NVLink3().Send(b).Time >= PCIe4().Send(b).Time {
		t.Fatal("NVLink should beat PCIe for bulk transfers")
	}
}

func TestAttnFabricSelection(t *testing.T) {
	// §6.3: PCIe supports up to 32 devices; CXL scales to 4096.
	l, err := AttnFabric(30)
	if err != nil || l.Name != "PCIe4x16" {
		t.Fatalf("30 devices → %v, %v; want PCIe", l.Name, err)
	}
	l, err = AttnFabric(60)
	if err != nil || l.Name != "CXL2" {
		t.Fatalf("60 devices → %v, %v; want CXL", l.Name, err)
	}
	if _, err = AttnFabric(5000); err == nil {
		t.Fatal("5000 devices should exceed every fabric")
	}
}

// Property: transfer time is latency-floored, monotone, and additive within
// rounding (two messages cost at least one big one plus a latency).
func TestSendProperty(t *testing.T) {
	l := CXL2()
	f := func(aRaw, bRaw uint32) bool {
		a, b := units.Bytes(aRaw), units.Bytes(bRaw)
		ta, tb := l.Send(a), l.Send(b)
		both := l.Send(a + b)
		if ta.Time < l.Latency || tb.Time < l.Latency {
			return false
		}
		split := float64(ta.Time) + float64(tb.Time)
		return split >= float64(both.Time)+float64(l.Latency)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
