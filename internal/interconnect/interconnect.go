// Package interconnect models the links of the PAPI system (§6.3): the
// high-speed NVLink fabric between the processing units and the FC-PIM
// devices, and the commodity PCIe/CXL fabric to the disaggregated Attn-PIM
// devices.
//
// The paper reasons about interconnects at the bandwidth-class level (NVLink
// for the weight-heavy FC path, PCIe/CXL for the byte-level Q-vector traffic
// of attention); the model here is correspondingly simple: per-link
// bandwidth, latency, and per-byte energy.
package interconnect

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
)

// Link is one interconnect class.
type Link struct {
	Name    string
	BW      units.BytesPerSecond // effective (not headline) bandwidth
	Latency units.Seconds        // per-transfer latency (software + flight)
	PJB     float64              // energy per byte moved, pJ/B
	// MaxDevices is the fan-out limit of the fabric (PCIe buses support up to
	// 32 devices, CXL scales to 4096 — §6.3).
	MaxDevices int
}

// Presets per §6.3.

// NVLink3 is the GPU↔FC-PIM fabric: 600 GB/s per A100, low latency.
func NVLink3() Link {
	return Link{Name: "NVLink3", BW: units.GBps(600), Latency: units.Microseconds(1.0), PJB: 8, MaxDevices: 18}
}

// PCIe4 is a ×16 PCIe 4.0 fabric: 32 GB/s effective per direction.
func PCIe4() Link {
	return Link{Name: "PCIe4x16", BW: units.GBps(32), Latency: units.Microseconds(2.0), PJB: 10, MaxDevices: 32}
}

// CXL2 is a CXL 2.0 fabric with a PCIe5 PHY, scaling to thousands of
// devices. The effective bandwidth is the host-side ×8 port through the
// switch (32 GB/s), shared by the attention traffic; latency includes one
// switch hop.
func CXL2() Link {
	return Link{Name: "CXL2", BW: units.GBps(32), Latency: units.Microseconds(2.0), PJB: 10, MaxDevices: 4096}
}

// Validate checks the link parameters.
func (l Link) Validate() error {
	if l.BW <= 0 {
		return fmt.Errorf("interconnect: %s has non-positive bandwidth", l.Name)
	}
	if l.Latency < 0 {
		return fmt.Errorf("interconnect: %s has negative latency", l.Name)
	}
	if l.MaxDevices <= 0 {
		return fmt.Errorf("interconnect: %s has no device budget", l.Name)
	}
	return nil
}

// Transfer reports one message's cost on the link.
type Transfer struct {
	Time   units.Seconds
	Energy units.Joules
}

// Send returns the cost of moving b bytes as one message.
func (l Link) Send(b units.Bytes) Transfer {
	return Transfer{
		Time:   l.Latency + l.BW.Time(b),
		Energy: units.PicojoulesPerByte(l.PJB).Energy(b),
	}
}

// SupportsDevices reports whether the fabric can address n devices.
func (l Link) SupportsDevices(n int) bool { return n <= l.MaxDevices }

// AttnFabric picks the cheapest fabric (§6.3) that can address n attention
// devices: PCIe up to its 32-device limit, CXL beyond.
func AttnFabric(n int) (Link, error) {
	if p := PCIe4(); p.SupportsDevices(n) {
		return p, nil
	}
	if c := CXL2(); c.SupportsDevices(n) {
		return c, nil
	}
	return Link{}, fmt.Errorf("interconnect: no fabric supports %d devices", n)
}
