// The registry-pinning suite: the five evaluated systems became declarative
// registry specs in this layer, and this file proves nothing moved. The
// pre-refactor constructors are preserved below verbatim (they are the
// oracle, the same pattern as sched.calibrateLinear), and every registry
// design must match them bit-for-bit — first structurally (reflect.DeepEqual
// over the full System, which every figure derives from), then behaviourally
// (full serving results on both decode paths). The golden figure fixtures
// under internal/experiments/testdata/golden, regenerated unchanged through
// the spec path, extend the same pin to the fleet-level figures.
package design_test

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/interconnect"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/workload"
)

// Legacy constructors, copied verbatim from internal/core/core.go as it
// stood before the declarative design layer (PR 4 state). Do not "fix" or
// modernise these: they are the reference the registry is pinned against.

func legacyAttnPool(stack hbm.Stack, count int) *pim.Device {
	d := pim.New(stack, count)
	d.FCWeightReuse = false
	d.FCComputeEff = 0.5
	return d
}

func legacyNewPAPI(alpha float64) *design.System {
	if alpha <= 0 {
		alpha = design.DefaultAlpha
	}
	link, _ := interconnect.AttnFabric(design.AttnDevices)
	return &design.System{
		Name:         "PAPI",
		GPU:          gpu.DefaultNode(),
		FCPIM:        pim.New(hbm.FCPIMStack(), design.WeightDevices),
		AttnPIM:      legacyAttnPool(hbm.HBMPIMStack(), design.AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.Dynamic{Alpha: alpha},
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

func legacyNewA100AttAcc() *design.System {
	link, _ := interconnect.AttnFabric(design.AttnDevices)
	return &design.System{
		Name:         "A100+AttAcc",
		GPU:          gpu.DefaultNode(),
		FCPIM:        nil,
		AttnPIM:      legacyAttnPool(hbm.AttAccStack(), design.AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPU(),
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

func legacyNewA100HBMPIM() *design.System {
	link, _ := interconnect.AttnFabric(design.AttnDevices)
	return &design.System{
		Name:         "A100+HBM-PIM",
		GPU:          gpu.DefaultNode(),
		FCPIM:        nil,
		AttnPIM:      legacyAttnPool(hbm.HBMPIMStack(), design.AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPU(),
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

func legacyNewAttAccOnly() *design.System {
	link, _ := interconnect.AttnFabric(design.AttnDevices)
	return &design.System{
		Name:         "AttAcc-only",
		GPU:          nil,
		FCPIM:        legacyAttnPool(hbm.AttAccStack(), design.WeightDevices),
		AttnPIM:      legacyAttnPool(hbm.AttAccStack(), design.AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPIM(),
		PrefillOnGPU: false,
		HostPower:    100,
	}
}

func legacyNewPIMOnlyPAPI() *design.System {
	link, _ := interconnect.AttnFabric(design.AttnDevices)
	return &design.System{
		Name:         "PIM-only PAPI",
		GPU:          nil,
		FCPIM:        pim.New(hbm.FCPIMStack(), design.WeightDevices),
		AttnPIM:      legacyAttnPool(hbm.HBMPIMStack(), design.AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPIM(),
		PrefillOnGPU: false,
		HostPower:    100,
	}
}

// legacyPairs lines each registry design up against its pre-refactor
// constructor.
func legacyPairs() map[string]func() *design.System {
	return map[string]func() *design.System{
		design.DesignPAPI:       func() *design.System { return legacyNewPAPI(0) },
		design.DesignA100AttAcc: legacyNewA100AttAcc,
		design.DesignA100HBMPIM: legacyNewA100HBMPIM,
		design.DesignAttAccOnly: legacyNewAttAccOnly,
		design.DesignPIMOnly:    legacyNewPIMOnlyPAPI,
	}
}

// Every registry design's built System must be deeply (bit-)identical to
// its pre-refactor constructor's — every field, every float, every preset.
// Because the serving engine and every figure are pure functions of the
// System, this is the strongest possible equivalence short of re-running
// each figure (which the serving test below and the golden fixtures do).
func TestRegistryBitIdenticalToLegacyConstructors(t *testing.T) {
	pairs := legacyPairs()
	if len(pairs) != len(design.Names()) {
		t.Fatalf("equivalence covers %d designs, registry has %d", len(pairs), len(design.Names()))
	}
	for name, legacy := range pairs {
		spec, err := design.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		built, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := legacy(); !reflect.DeepEqual(built, want) {
			t.Errorf("%s: registry build differs from the pre-refactor constructor\n built: %+v\nlegacy: %+v", name, built, want)
		}
		// The core facade must route through the same spec.
		viaCore, err := core.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(viaCore, built) {
			t.Errorf("%s: core.ByName diverged from the registry build", name)
		}
	}
	// The alpha parameter must thread through unchanged.
	if !reflect.DeepEqual(core.NewPAPI(64), legacyNewPAPI(64)) {
		t.Error("core.NewPAPI(64) differs from the legacy constructor")
	}
}

// Full figure-level pin: run the serving engine — static batch with
// speculation, and mixed continuous batching — on every registry design and
// its legacy twin, on both decode paths, and require deeply identical
// Results (every latency, every ledger entry, every trace element).
func TestServingResultsBitIdenticalToLegacy(t *testing.T) {
	cfg := model.LLaMA65B()
	for _, fastpath := range []serving.FastPathMode{serving.FastPathOn, serving.FastPathOff} {
		for name, legacy := range legacyPairs() {
			spec, err := design.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			built, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			run := func(sys *design.System) (serving.Result, serving.Result) {
				opt := serving.DefaultOptions(4)
				opt.FastPath = fastpath
				eng, err := serving.New(sys, cfg, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				batch, err := eng.RunBatch(workload.GeneralQA().Generate(8, 7))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				opt = serving.DefaultOptions(1)
				opt.FastPath = fastpath
				eng2, err := serving.New(sys, cfg, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				cont, err := eng2.RunContinuous(workload.GeneralQA().Poisson(12, 30, 11), 4)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return batch, cont
			}
			gotBatch, gotCont := run(built)
			wantBatch, wantCont := run(legacy())
			if !reflect.DeepEqual(gotBatch, wantBatch) {
				t.Errorf("%s (fastpath=%v): static-batch result differs from legacy", name, fastpath)
			}
			if !reflect.DeepEqual(gotCont, wantCont) {
				t.Errorf("%s (fastpath=%v): continuous-batching result differs from legacy", name, fastpath)
			}
		}
	}
}
