// Package design is the declarative hardware design layer: it owns the
// System type (one complete evaluated computing system), a serializable
// Spec describing a system's every knob — GPU node, HBM stack organisations,
// FC/Attn device counts, link parameters, scheduling policy and α, prefill
// placement, host power — with byte-stable JSON export/import (mirroring
// workload.Trace), a validating Build that assembles a System from a Spec,
// and a named registry in which the five evaluated systems of the paper
// (§4, §7.1) are pinned as specs.
//
// PAPI's headline result is one point in a large design space (α threshold,
// PIM stack generation, device counts, link bandwidths); this layer makes
// every other point expressible without editing Go: a JSON file is a
// first-class design, the design-space-exploration figure
// (experiments.DSE) sweeps generated specs, and internal/cluster builds
// heterogeneous fleets from per-replica specs.
//
// internal/core re-exports the System type and the legacy constructors as
// thin wrappers over the registry specs, so the rest of the simulator is
// untouched by the layering.
package design

import (
	"fmt"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/interconnect"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
)

// Device counts of §7.1: every evaluated system has 90 HBM devices for
// fairness — 30 holding the FC weights and 60 for attention/KV.
const (
	WeightDevices = 30 // HBM stacks holding FC weight parameters
	AttnDevices   = 60 // HBM stacks holding KV caches / running attention
)

// DefaultAlpha is the calibrated memory-boundedness threshold for the
// default PAPI system (see sched.Calibrate; the offline procedure of §5.2.1
// lands here for all three evaluation models).
const DefaultAlpha = 28

// AttentionSpecializedPool builds a pool of attention-specialised PIM
// devices (AttAcc, HBM-PIM): no FC weight-reuse datapath, so FC work on them
// re-streams weights per token, and their score·V reduction trees reach only
// ~half utilisation on weight-stationary GEMV (§6.1 — the missing datapath
// is exactly what FC-PIM adds).
func AttentionSpecializedPool(stack hbm.Stack, count int) *pim.Device {
	d := pim.New(stack, count)
	d.FCWeightReuse = false
	d.FCComputeEff = 0.5
	return d
}

// System is one complete evaluated design.
type System struct {
	Name string

	// GPU is the high-performance processor's PU pool; nil for PIM-only
	// systems (AttAcc-only, PIM-only PAPI).
	GPU *gpu.Node

	// FCPIM is the PIM pool that can execute FC kernels (the 30
	// weight-holding stacks). Nil when FC can only run on the GPU
	// (A100+AttAcc, A100+HBM-PIM: their weight stacks are plain HBM).
	FCPIM *pim.Device

	// AttnPIM is the attention pool (60 stacks). Always present: every
	// evaluated design offloads attention to PIM.
	AttnPIM *pim.Device

	// AttnLink is the fabric to the disaggregated attention devices.
	AttnLink interconnect.Link
	// PULink is the fabric between PUs and the weight memory (NVLink); FC
	// activations cross it when FC runs on FC-PIM.
	PULink interconnect.Link

	// Policy decides FC placement each iteration.
	Policy sched.Policy

	// PlainWeightStacks sizes the plain-HBM weight pool of designs without
	// FC-PIM (their weight stacks store but cannot compute); 0 selects the
	// paper's WeightDevices. Ignored when FCPIM is present — the FC-PIM pool
	// is the weight pool.
	PlainWeightStacks int

	// PrefillOnGPU: the compute-bound prefill phase runs on the GPU in every
	// heterogeneous design; PIM-only systems must run it on their PIM units
	// (§7.4), which is the dominant cost of AttAcc-only end to end.
	PrefillOnGPU bool

	// HostPower is the host CPU's static draw, charged over wall-clock time.
	HostPower units.Watts
}

// Validate checks the system's structural invariants.
func (s *System) Validate() error {
	if s.GPU == nil && s.FCPIM == nil {
		return fmt.Errorf("design: %s has no FC execution engine", s.Name)
	}
	if s.AttnPIM == nil {
		return fmt.Errorf("design: %s has no attention engine", s.Name)
	}
	if s.GPU != nil {
		if err := s.GPU.Validate(); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if s.FCPIM != nil {
		if err := s.FCPIM.Validate(); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if err := s.AttnPIM.Validate(); err != nil {
		return fmt.Errorf("design: %s: %w", s.Name, err)
	}
	if err := s.AttnLink.Validate(); err != nil {
		return fmt.Errorf("design: %s: %w", s.Name, err)
	}
	if !s.AttnLink.SupportsDevices(s.AttnPIM.Count) {
		return fmt.Errorf("design: %s: %s cannot address %d attention devices",
			s.Name, s.AttnLink.Name, s.AttnPIM.Count)
	}
	if s.Policy == nil {
		return fmt.Errorf("design: %s has no scheduling policy", s.Name)
	}
	if !s.PrefillOnGPU && s.GPU != nil {
		return fmt.Errorf("design: %s has a GPU but runs prefill on PIM", s.Name)
	}
	return nil
}

// WeightCapacity returns the capacity of the weight-holding pool.
func (s *System) WeightCapacity() units.Bytes {
	if s.FCPIM != nil {
		return s.FCPIM.Capacity()
	}
	// Plain HBM weight stacks (the baselines' 30 × 16 GiB unless the design
	// declares its own pool size).
	n := s.PlainWeightStacks
	if n == 0 {
		n = WeightDevices
	}
	return hbm.PlainStack().Capacity().Scale(float64(n))
}

// KVCapacity returns the attention pool's KV-cache capacity.
func (s *System) KVCapacity() units.Bytes { return s.AttnPIM.Capacity() }

// FitsModel checks that the model's weights fit the weight pool.
func (s *System) FitsModel(cfg model.Config) error {
	if w, c := cfg.WeightBytes(), s.WeightCapacity(); w > c {
		return fmt.Errorf("design: %s: %s weights (%v) exceed weight capacity %v", s.Name, cfg.Name, w, c)
	}
	return nil
}

// MaxBatchForKV returns the largest batch whose KV caches fit the attention
// pool when every request reaches seqLen (§3.2(b)'s memory-capacity limit).
func (s *System) MaxBatchForKV(cfg model.Config, seqLen int) int {
	per := cfg.KVBytes(seqLen).Bytes()
	if per <= 0 {
		return 0
	}
	return int(s.KVCapacity().Bytes() / per)
}

// HasGPU reports whether the design includes processing units.
func (s *System) HasGPU() bool { return s.GPU != nil }
