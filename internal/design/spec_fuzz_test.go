package design

import (
	"bytes"
	"testing"
)

// FuzzSpecRoundTrip feeds arbitrary bytes through ImportSpec: whatever it
// accepts must re-export byte-identically (the byte-stability contract,
// mirroring FuzzTraceRoundTrip), and — when the described hardware is
// buildable — the assembled system must pass its own validation. The corpus
// seeds with every registry design plus a customised spec exercising the
// optional fields.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, spec := range Registry() {
		data, err := spec.Export()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	custom := PAPI(13)
	custom.Name = "custom"
	custom.Description = "seeded corpus entry"
	custom.AttnPIM = &PIMSpec{FPUs: 2, Banks: 1, BankStreamGBps: 3.2, Count: 40, FCComputeEff: 0.5}
	custom.AttnLink = &LinkSpec{Name: "cxl-64", GBps: 64, LatencyUS: 2, PJPerByte: 10, MaxDevices: 4096}
	custom.PULink = NVLink3Link()
	data, err := custom.Export()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ImportSpec(data)
		if err != nil {
			return // rejected input: nothing more to hold
		}
		out, err := spec.Export()
		if err != nil {
			t.Fatalf("accepted spec failed to export: %v", err)
		}
		spec2, err := ImportSpec(out)
		if err != nil {
			t.Fatalf("exported spec failed to re-import: %v", err)
		}
		out2, err := spec2.Export()
		if err != nil {
			t.Fatalf("re-imported spec failed to export: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("export is not byte-stable:\n first: %s\nsecond: %s", out, out2)
		}
		// Building may legitimately fail (infeasible floorplans, power or
		// fan-out violations), but a successful build must be self-consistent.
		if sys, err := spec.Build(); err == nil {
			if verr := sys.Validate(); verr != nil {
				t.Fatalf("built system fails its own validation: %v", verr)
			}
		}
	})
}
