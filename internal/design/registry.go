package design

import "fmt"

// Registered design names, in presentation order. These are the display
// names the figures, CLIs and docs have always used.
const (
	DesignPAPI       = "PAPI"
	DesignA100AttAcc = "A100+AttAcc"
	DesignA100HBMPIM = "A100+HBM-PIM"
	DesignAttAccOnly = "AttAcc-only"
	DesignPIMOnly    = "PIM-only PAPI"
)

// PAPI returns the full PAPI system as a spec: 6 GPUs whose memory is 30
// FC-PIM stacks, 60 disaggregated Attn-PIM stacks behind the auto-chosen
// fabric (CXL at this fan-out), and the dynamic parallelism-aware scheduler
// with threshold alpha (0 means DefaultAlpha).
func PAPI(alpha float64) Spec {
	return Spec{
		Name:         DesignPAPI,
		Description:  "GPU + hybrid FC-PIM/Attn-PIM with the dynamic parallelism-aware scheduler (§4)",
		GPU:          A100Node(),
		FCPIM:        FCPIMPool(WeightDevices),
		AttnPIM:      HBMPIMPool(AttnDevices),
		Policy:       PolicySpec{Kind: PolicyDynamic, Alpha: alpha},
		PrefillOnGPU: true,
		HostPowerW:   100,
	}
}

// A100AttAcc returns the state-of-the-art heterogeneous baseline [23] as a
// spec: FC statically on 6 A100s (plain HBM weight stacks), attention on
// AttAcc 1P1B PIM devices.
func A100AttAcc() Spec {
	return Spec{
		Name:         DesignA100AttAcc,
		Description:  "A100 node + AttAcc 1P1B attention PIM, FC statically on the GPU [23]",
		GPU:          A100Node(),
		AttnPIM:      AttAccPool(AttnDevices),
		Policy:       PolicySpec{Kind: PolicyStaticPU},
		PrefillOnGPU: true,
		HostPowerW:   100,
	}
}

// A100HBMPIM returns the A100 + Samsung HBM-PIM (1P2B) baseline [30] as a
// spec.
func A100HBMPIM() Spec {
	return Spec{
		Name:         DesignA100HBMPIM,
		Description:  "A100 node + Samsung HBM-PIM 1P2B attention PIM, FC statically on the GPU [30]",
		GPU:          A100Node(),
		AttnPIM:      HBMPIMPool(AttnDevices),
		Policy:       PolicySpec{Kind: PolicyStaticPU},
		PrefillOnGPU: true,
		HostPowerW:   100,
	}
}

// AttAccOnly returns the PIM-only baseline [23] as a spec: all FC and
// attention kernels on AttAcc 1P1B devices, no GPU. Prefill also runs on
// PIM.
func AttAccOnly() Spec {
	return Spec{
		Name:        DesignAttAccOnly,
		Description: "GPU-less AttAcc: FC, attention and prefill all on 1P1B PIM [23]",
		FCPIM:       AttAccPool(WeightDevices),
		AttnPIM:     AttAccPool(AttnDevices),
		Policy:      PolicySpec{Kind: PolicyStaticPIM},
		HostPowerW:  100,
	}
}

// PIMOnlyPAPI returns the §7.4 ablation as a spec: PAPI's hybrid PIM devices
// (FC-PIM + Attn-PIM) with no GPU, against which AttAcc-only isolates the
// benefit of the hybrid PIM design itself.
func PIMOnlyPAPI() Spec {
	return Spec{
		Name:        DesignPIMOnly,
		Description: "PAPI's hybrid FC-PIM/Attn-PIM pools with no GPU (§7.4 ablation)",
		FCPIM:       FCPIMPool(WeightDevices),
		AttnPIM:     HBMPIMPool(AttnDevices),
		Policy:      PolicySpec{Kind: PolicyStaticPIM},
		HostPowerW:  100,
	}
}

// Registry returns every named design spec, in presentation order. Each call
// builds fresh values, so callers may not corrupt the registry.
func Registry() []Spec {
	return []Spec{PAPI(0), A100AttAcc(), A100HBMPIM(), AttAccOnly(), PIMOnlyPAPI()}
}

// Names lists the registered design names in presentation order.
func Names() []string {
	specs := Registry()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName resolves a registered design spec by its display name.
func ByName(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("design: unknown design %q (have %v)", name, Names())
}
