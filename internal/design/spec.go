package design

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/interconnect"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
)

// GPUSpec describes the high-performance processor pool: count plus the
// roofline and power parameters of one device (gpu.Spec's fields in
// human-scale units: TFLOP/s, GB/s, GiB, µs).
type GPUSpec struct {
	Name            string  `json:"name"`
	Count           int     `json:"count"`
	PeakTFLOPS      float64 `json:"peak_tflops"`
	PeakMemGBps     float64 `json:"peak_mem_gbps"`
	MemGiB          float64 `json:"mem_gib"`
	ComputeEff      float64 `json:"compute_eff"`
	MemoryEff       float64 `json:"memory_eff"`
	ActivePowerW    float64 `json:"active_power_w"`
	IdlePowerW      float64 `json:"idle_power_w"`
	LaunchLatencyUS float64 `json:"launch_latency_us"`
}

// A100Node returns the paper's 6× NVIDIA A100 pool (§7.1) as a spec.
func A100Node() *GPUSpec {
	return &GPUSpec{
		Name:            "A100",
		Count:           6,
		PeakTFLOPS:      312,
		PeakMemGBps:     1935,
		MemGiB:          80,
		ComputeEff:      0.85,
		MemoryEff:       0.75,
		ActivePowerW:    500,
		IdlePowerW:      50,
		LaunchLatencyUS: 1.5,
	}
}

// build assembles the GPU pool with exactly the arithmetic of gpu.A100 /
// gpu.NewNode, so a spec carrying the preset values reproduces the preset
// bit-identically.
func (g *GPUSpec) build() *gpu.Node {
	return gpu.NewNode(gpu.Spec{
		Name:          g.Name,
		PeakCompute:   units.TFLOPS(g.PeakTFLOPS),
		PeakMemBW:     units.GBps(g.PeakMemGBps),
		MemCapacity:   units.GiBytes(g.MemGiB),
		ComputeEff:    g.ComputeEff,
		MemoryEff:     g.MemoryEff,
		ActivePower:   units.Watts(g.ActivePowerW),
		IdlePower:     units.Watts(g.IdlePowerW),
		LaunchLatency: units.Microseconds(g.LaunchLatencyUS),
	}, g.Count)
}

func (g *GPUSpec) validate() error {
	if g.Count <= 0 {
		return fmt.Errorf("gpu count %d must be positive", g.Count)
	}
	if g.PeakTFLOPS <= 0 || g.PeakMemGBps <= 0 {
		return fmt.Errorf("gpu %q has non-positive peak rates", g.Name)
	}
	if g.LaunchLatencyUS < 0 {
		return fmt.Errorf("gpu %q has negative launch latency", g.Name)
	}
	return nil
}

// PIMSpec describes one pool of PIM-enabled HBM stacks: the xPyB
// organisation (FPUs per Banks, §6.2), the die floorplan, the per-bank
// stream bandwidth, the pool size, and the FC datapath capabilities that
// distinguish FC-PIM from attention-specialised devices (§6.1).
type PIMSpec struct {
	// FPUs and Banks are the xPyB PIM organisation: FPUs FPUs shared across
	// Banks banks (1P1B is AttAcc, 1P2B is HBM-PIM / Attn-PIM, 4P1B FC-PIM).
	FPUs  int `json:"fpus"`
	Banks int `json:"banks"`
	// BanksPerDie fixes the die floorplan; 0 solves the Eq. (3) area
	// constraint for the largest buildable bank count.
	BanksPerDie int `json:"banks_per_die,omitempty"`
	// BankStreamGBps is the sustained per-bank read bandwidth in GB/s; 0
	// selects the calibrated default (see hbm.DefaultBankStreamBW).
	BankStreamGBps float64 `json:"bank_stream_gbps,omitempty"`
	// Count is the number of stacks in the pool.
	Count int `json:"count"`
	// FCWeightReuse marks the accumulation datapath that lets FC kernels
	// hold a weight element across tokens in flight (§6.1); without it FC
	// work re-streams weights once per token. Omitted (null) keeps the
	// full-datapath default of pim.New; attention-specialised pools set it
	// to false explicitly.
	FCWeightReuse *bool `json:"fc_weight_reuse,omitempty"`
	// FCComputeEff derates FPU throughput on FC kernels for devices whose
	// reduction trees are attention-specialised; 0 means 1.0 (no derate).
	FCComputeEff float64 `json:"fc_compute_eff,omitempty"`
}

// Preset pool specs of the evaluated designs (§7.1).

// boolSpec pins an optional bool field to an explicit value.
func boolSpec(v bool) *bool { return &v }

// FCPIMPool returns PAPI's FC-PIM pool: 4P1B area-solved stacks (96
// banks/die → 12 GB) with the full weight-reuse datapath.
func FCPIMPool(count int) *PIMSpec {
	return &PIMSpec{FPUs: 4, Banks: 1, Count: count, FCWeightReuse: boolSpec(true), FCComputeEff: 1}
}

// HBMPIMPool returns a Samsung HBM-PIM / PAPI Attn-PIM style 1P2B pool on
// the standard 128-banks/die floorplan, attention-specialised.
func HBMPIMPool(count int) *PIMSpec {
	return &PIMSpec{FPUs: 1, Banks: 2, BanksPerDie: 128, Count: count,
		FCWeightReuse: boolSpec(false), FCComputeEff: 0.5}
}

// AttAccPool returns an AttAcc-style 1P1B pool (the area solver lands on the
// standard 128 banks/die), attention-specialised.
func AttAccPool(count int) *PIMSpec {
	return &PIMSpec{FPUs: 1, Banks: 1, Count: count,
		FCWeightReuse: boolSpec(false), FCComputeEff: 0.5}
}

// stack assembles the pool's HBM stack.
func (p *PIMSpec) stack() hbm.Stack {
	s := hbm.NewStack(hbm.PIMConfig{FPUs: p.FPUs, Banks: p.Banks})
	if p.BanksPerDie > 0 {
		s.BanksPerDie = p.BanksPerDie
	}
	if p.BankStreamGBps > 0 {
		s.BankStreamBW = units.GBps(p.BankStreamGBps)
	}
	return s
}

// build assembles the device pool with exactly the arithmetic of pim.New
// (and of AttentionSpecializedPool when the FC datapath fields say so).
// Omitted optional fields keep pim.New's defaults.
func (p *PIMSpec) build() *pim.Device {
	d := pim.New(p.stack(), p.Count)
	if p.FCWeightReuse != nil {
		d.FCWeightReuse = *p.FCWeightReuse
	}
	if p.FCComputeEff > 0 {
		d.FCComputeEff = p.FCComputeEff
	}
	return d
}

func (p *PIMSpec) validate(role string) error {
	if p.Count <= 0 {
		return fmt.Errorf("%s pool count %d must be positive", role, p.Count)
	}
	if p.FPUs < 0 || p.Banks <= 0 {
		return fmt.Errorf("%s pool has invalid %dP%dB organisation", role, p.FPUs, p.Banks)
	}
	if p.BanksPerDie < 0 {
		return fmt.Errorf("%s pool has negative banks per die", role)
	}
	if p.BankStreamGBps < 0 {
		return fmt.Errorf("%s pool has negative bank stream bandwidth", role)
	}
	if p.FCComputeEff < 0 || p.FCComputeEff > 1 {
		return fmt.Errorf("%s pool FC compute efficiency %g outside [0, 1]", role, p.FCComputeEff)
	}
	return nil
}

// LinkSpec describes one interconnect class (bandwidth, latency, per-byte
// energy, fan-out limit — §6.3) in human-scale units.
type LinkSpec struct {
	Name       string  `json:"name"`
	GBps       float64 `json:"gbps"`
	LatencyUS  float64 `json:"latency_us"`
	PJPerByte  float64 `json:"pj_per_byte"`
	MaxDevices int     `json:"max_devices"`
}

// NVLink3Link returns the GPU↔FC-PIM fabric preset as a spec.
func NVLink3Link() *LinkSpec {
	return &LinkSpec{Name: "NVLink3", GBps: 600, LatencyUS: 1.0, PJPerByte: 8, MaxDevices: 18}
}

// CXL2Link returns the CXL 2.0 attention-fabric preset as a spec.
func CXL2Link() *LinkSpec {
	return &LinkSpec{Name: "CXL2", GBps: 32, LatencyUS: 2.0, PJPerByte: 10, MaxDevices: 4096}
}

// build assembles the link with exactly the arithmetic of the interconnect
// presets.
func (l *LinkSpec) build() interconnect.Link {
	return interconnect.Link{
		Name:       l.Name,
		BW:         units.GBps(l.GBps),
		Latency:    units.Microseconds(l.LatencyUS),
		PJB:        l.PJPerByte,
		MaxDevices: l.MaxDevices,
	}
}

func (l *LinkSpec) validate(role string) error {
	if l.GBps <= 0 {
		return fmt.Errorf("%s link %q has non-positive bandwidth", role, l.Name)
	}
	if l.LatencyUS < 0 {
		return fmt.Errorf("%s link %q has negative latency", role, l.Name)
	}
	if l.MaxDevices <= 0 {
		return fmt.Errorf("%s link %q has no device budget", role, l.Name)
	}
	return nil
}

// Policy kinds a spec may name.
const (
	// PolicyDynamic is PAPI's parallelism-aware placement (§5.2): FC goes
	// to the PUs when the RLP×TLP arithmetic-intensity estimate reaches α.
	PolicyDynamic = "dynamic"
	// PolicyStaticPU always runs FC on the processing units (the
	// A100+AttAcc / A100+HBM-PIM baselines).
	PolicyStaticPU = "static-pu"
	// PolicyStaticPIM always runs FC on PIM (AttAcc-only, PIM-only PAPI).
	PolicyStaticPIM = "static-pim"
)

// PolicySpec names the FC placement policy.
type PolicySpec struct {
	Kind string `json:"kind"`
	// Alpha is the dynamic policy's memory-boundedness threshold; 0 selects
	// the calibrated DefaultAlpha. Ignored by the static policies.
	Alpha float64 `json:"alpha,omitempty"`
}

// build assembles the sched.Policy.
func (p PolicySpec) build() (sched.Policy, error) {
	switch p.Kind {
	case PolicyDynamic:
		alpha := p.Alpha
		if alpha <= 0 {
			alpha = DefaultAlpha
		}
		return sched.Dynamic{Alpha: alpha}, nil
	case PolicyStaticPU:
		return sched.AlwaysPU(), nil
	case PolicyStaticPIM:
		return sched.AlwaysPIM(), nil
	}
	return nil, fmt.Errorf("unknown policy kind %q (have %q, %q, %q)",
		p.Kind, PolicyDynamic, PolicyStaticPU, PolicyStaticPIM)
}

// Spec is one complete hardware design, declaratively: everything a System
// is assembled from, serializable as byte-stable JSON. The zero value of an
// omitted optional field selects the same default the legacy constructors
// used, so a minimal spec stays close to the paper's configuration.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// GPU is the processing-unit pool; omitted for PIM-only designs.
	GPU *GPUSpec `json:"gpu,omitempty"`
	// FCPIM is the FC-capable weight pool; omitted when the weight stacks
	// are plain HBM and FC can only run on the GPU.
	FCPIM *PIMSpec `json:"fc_pim,omitempty"`
	// AttnPIM is the attention pool. Required: every design offloads
	// attention to PIM.
	AttnPIM *PIMSpec `json:"attn_pim"`
	// WeightStacks sizes the plain-HBM weight pool of FC-PIM-less designs
	// (store-only stacks; FC runs on the GPU); 0 selects the paper's 30.
	// Meaningless — and rejected — alongside fc_pim, whose pool holds the
	// weights.
	WeightStacks int `json:"weight_stacks,omitempty"`

	// AttnLink is the fabric to the disaggregated attention devices;
	// omitted, Build picks the cheapest fabric that can address the pool
	// (PCIe up to 32 devices, CXL beyond — §6.3) and reports an error when
	// none can.
	AttnLink *LinkSpec `json:"attn_link,omitempty"`
	// PULink is the PU↔weight-memory fabric; omitted selects NVLink3.
	PULink *LinkSpec `json:"pu_link,omitempty"`

	// Policy decides FC placement each iteration.
	Policy PolicySpec `json:"policy"`
	// PrefillOnGPU runs the compute-bound prefill phase on the GPU; required
	// exactly when a GPU is present.
	PrefillOnGPU bool `json:"prefill_on_gpu,omitempty"`
	// HostPowerW is the host CPU's static draw in watts.
	HostPowerW float64 `json:"host_power_w,omitempty"`
}

// Validate checks the spec's declarative invariants — the ones visible
// without assembling hardware. Build additionally validates the assembled
// System (die area, power budgets, fabric fan-out).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("design: spec has no name")
	}
	if s.AttnPIM == nil {
		return fmt.Errorf("design: %s has no attention pool", s.Name)
	}
	if err := s.AttnPIM.validate("attention"); err != nil {
		return fmt.Errorf("design: %s: %w", s.Name, err)
	}
	if s.GPU != nil {
		if err := s.GPU.validate(); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if s.FCPIM != nil {
		if err := s.FCPIM.validate("FC-PIM"); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if s.GPU == nil && s.FCPIM == nil {
		return fmt.Errorf("design: %s has no FC execution engine", s.Name)
	}
	if s.WeightStacks < 0 {
		return fmt.Errorf("design: %s has negative weight stacks", s.Name)
	}
	if s.WeightStacks > 0 && s.FCPIM != nil {
		return fmt.Errorf("design: %s sets weight_stacks alongside fc_pim, whose pool already holds the weights", s.Name)
	}
	if s.AttnLink != nil {
		if err := s.AttnLink.validate("attention"); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if s.PULink != nil {
		if err := s.PULink.validate("PU"); err != nil {
			return fmt.Errorf("design: %s: %w", s.Name, err)
		}
	}
	if _, err := s.Policy.build(); err != nil {
		return fmt.Errorf("design: %s: %w", s.Name, err)
	}
	if s.PrefillOnGPU && s.GPU == nil {
		return fmt.Errorf("design: %s prefills on a GPU it does not have", s.Name)
	}
	if !s.PrefillOnGPU && s.GPU != nil {
		return fmt.Errorf("design: %s has a GPU but runs prefill on PIM", s.Name)
	}
	if s.HostPowerW < 0 {
		return fmt.Errorf("design: %s has negative host power", s.Name)
	}
	return nil
}

// Build assembles and validates the System the spec describes. The attention
// fabric's feasibility is a real constraint here: when the spec leaves the
// link to the fabric chooser and no fabric can address the pool, Build
// reports it (the legacy constructors discarded this error).
func (s Spec) Build() (*System, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	policy, err := s.Policy.build()
	if err != nil {
		return nil, fmt.Errorf("design: %s: %w", s.Name, err)
	}
	sys := &System{
		Name:              s.Name,
		AttnPIM:           s.AttnPIM.build(),
		Policy:            policy,
		PlainWeightStacks: s.WeightStacks,
		PrefillOnGPU:      s.PrefillOnGPU,
		HostPower:         units.Watts(s.HostPowerW),
	}
	if s.GPU != nil {
		sys.GPU = s.GPU.build()
	}
	if s.FCPIM != nil {
		sys.FCPIM = s.FCPIM.build()
	}
	if s.AttnLink != nil {
		sys.AttnLink = s.AttnLink.build()
	} else {
		link, err := interconnect.AttnFabric(s.AttnPIM.Count)
		if err != nil {
			return nil, fmt.Errorf("design: %s: %w", s.Name, err)
		}
		sys.AttnLink = link
	}
	if s.PULink != nil {
		sys.PULink = s.PULink.build()
	} else {
		sys.PULink = interconnect.NVLink3()
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// Export serialises the spec as indented JSON with a trailing newline.
// Serialisation is deterministic: struct fields marshal in declaration order
// and float64s use the shortest round-tripping form, so the same spec always
// yields the same bytes (export → import → export is byte-identical).
func (s Spec) Export() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ImportSpec parses and validates an exported design spec.
func ImportSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("design: invalid spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Resolve turns a CLI -design argument into a spec: a registry name, or —
// when the argument names a .json file or contains a path separator — a spec
// file to import.
func Resolve(arg string) (Spec, error) {
	if strings.HasSuffix(arg, ".json") || strings.ContainsRune(arg, os.PathSeparator) {
		data, err := os.ReadFile(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("design: reading spec file: %w", err)
		}
		return ImportSpec(data)
	}
	return ByName(arg)
}
