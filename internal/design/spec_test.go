package design

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/model"
)

// Every registry spec must validate, build, and carry its own display name
// through to the built system.
func TestRegistryBuilds(t *testing.T) {
	for _, spec := range Registry() {
		sys, err := spec.Build()
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if sys.Name != spec.Name {
			t.Errorf("built system named %q from spec %q", sys.Name, spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("%s has no description", spec.Name)
		}
	}
	if _, err := ByName("TPU-pod"); err == nil {
		t.Error("unknown design should error")
	}
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

// Build is a pure function of the spec: two builds of the same spec must be
// deeply (bit-)identical, which is what lets cluster replicas and sweep
// cells each own a fresh instance of the same design.
func TestBuildDeterministic(t *testing.T) {
	for _, spec := range Registry() {
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds of the same spec differ", spec.Name)
		}
	}
}

// Export → import → export must be byte-identical for every registry spec —
// the same byte-stability contract workload.Trace holds.
func TestSpecRoundTripByteStable(t *testing.T) {
	for _, spec := range Registry() {
		out, err := spec.Export()
		if err != nil {
			t.Fatalf("%s: export: %v", spec.Name, err)
		}
		imported, err := ImportSpec(out)
		if err != nil {
			t.Fatalf("%s: import: %v", spec.Name, err)
		}
		out2, err := imported.Export()
		if err != nil {
			t.Fatalf("%s: re-export: %v", spec.Name, err)
		}
		if !bytes.Equal(out, out2) {
			t.Errorf("%s: export is not byte-stable:\n first: %s\nsecond: %s", spec.Name, out, out2)
		}
		// The imported spec must also build the same hardware.
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := imported.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: JSON round-trip changed the built system", spec.Name)
		}
	}
}

// Omitted optional pool fields keep the legacy full-datapath defaults: a
// hand-written FC pool that says nothing about its datapath must get
// pim.New's weight reuse and full FC efficiency, not a silently crippled
// device.
func TestOmittedPoolFieldsKeepDefaults(t *testing.T) {
	spec := PAPI(0)
	spec.FCPIM = &PIMSpec{FPUs: 4, Banks: 1, Count: WeightDevices}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.FCPIM.FCWeightReuse {
		t.Error("omitted fc_weight_reuse must keep the weight-reuse datapath")
	}
	if sys.FCPIM.FCComputeEff != 1 {
		t.Errorf("omitted fc_compute_eff = %g, want 1", sys.FCPIM.FCComputeEff)
	}
	// The minimal pool builds the same hardware as the explicit preset.
	want, err := PAPI(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sys, want) {
		t.Error("minimal FC pool spec differs from the explicit preset")
	}
}

// FC-PIM-less designs can size their plain-HBM weight pool from the spec,
// and capacity validation follows the declared hardware.
func TestWeightStacksSizesPlainPool(t *testing.T) {
	spec := A100AttAcc()
	def, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec.WeightStacks = 2
	small, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(small.WeightCapacity()), float64(def.WeightCapacity())*2/WeightDevices; got != want {
		t.Fatalf("2-stack weight capacity = %g, want %g", got, want)
	}
	// 2 × 16 GiB cannot hold GPT-3 175B; the stock 30 stacks can.
	cfg := model.GPT3_175B()
	if err := def.FitsModel(cfg); err != nil {
		t.Fatalf("stock pool should fit: %v", err)
	}
	if err := small.FitsModel(cfg); err == nil {
		t.Fatal("a 32 GiB weight pool should reject GPT-3 175B")
	}

	// weight_stacks is meaningless next to an FC-PIM pool.
	papi := PAPI(0)
	papi.WeightStacks = 10
	if err := papi.Validate(); err == nil {
		t.Fatal("weight_stacks alongside fc_pim should be rejected")
	}
}

// ImportSpec must reject unknown fields (typos in hand-written specs) and
// invalid documents.
func TestImportRejectsUnknownFields(t *testing.T) {
	spec := PAPI(0)
	out, err := spec.Export()
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(out, []byte(`"name"`), []byte(`"nmae"`), 1)
	if _, err := ImportSpec(mutated); err == nil {
		t.Error("unknown field should be rejected")
	}
	if _, err := ImportSpec([]byte("{")); err == nil {
		t.Error("truncated JSON should be rejected")
	}
}

// The attention-fabric feasibility error the legacy constructors discarded
// (`link, _ := interconnect.AttnFabric(...)`) must now surface through
// Build: a pool too large for every fabric is a build error, not a silent
// zero-bandwidth link.
func TestBuildPropagatesAttnFabricError(t *testing.T) {
	spec := PAPI(0)
	spec.AttnPIM = HBMPIMPool(5000) // beyond CXL's 4096-device fan-out
	if _, err := spec.Build(); err == nil {
		t.Fatal("unaddressable attention pool should fail to build")
	} else if !strings.Contains(err.Error(), "fabric") {
		t.Fatalf("error should name the fabric constraint, got: %v", err)
	}

	// An explicit link bypasses the chooser but still hits the fan-out
	// validation of System.Validate.
	spec = PAPI(0)
	spec.AttnLink = &LinkSpec{Name: "tiny", GBps: 32, LatencyUS: 2, PJPerByte: 10, MaxDevices: 8}
	if _, err := spec.Build(); err == nil {
		t.Fatal("explicit link too small for the pool should fail to build")
	}
}

// Declarative validation must catch structural nonsense before any hardware
// is assembled.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no attention pool", func(s *Spec) { s.AttnPIM = nil }},
		{"no FC engine", func(s *Spec) { s.GPU, s.FCPIM, s.PrefillOnGPU = nil, nil, false }},
		{"prefill without GPU", func(s *Spec) { s.GPU = nil }},
		{"GPU without prefill", func(s *Spec) { s.PrefillOnGPU = false }},
		{"unknown policy", func(s *Spec) { s.Policy.Kind = "mcts" }},
		{"zero-count pool", func(s *Spec) { s.AttnPIM.Count = 0 }},
		{"negative host power", func(s *Spec) { s.HostPowerW = -1 }},
		{"bad FC efficiency", func(s *Spec) { s.AttnPIM.FCComputeEff = 1.5 }},
		{"dead link", func(s *Spec) { s.AttnLink = &LinkSpec{Name: "dead", GBps: 0, MaxDevices: 64} }},
	}
	for _, tc := range cases {
		spec := PAPI(0)
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", tc.name)
		}
		if _, err := spec.Export(); err == nil {
			t.Errorf("%s: Export accepted an invalid spec", tc.name)
		}
	}
}

// A die floorplan that violates the Eq. (3) area constraint must fail at
// Build (via hbm.Stack.Validate), so JSON cannot describe unbuildable
// silicon.
func TestBuildRejectsInfeasibleFloorplan(t *testing.T) {
	spec := PAPI(0)
	// 2P1B at the standard 128 banks/die exceeds the 121 mm² die cap.
	spec.AttnPIM = &PIMSpec{FPUs: 2, Banks: 1, BanksPerDie: 128, Count: AttnDevices, FCComputeEff: 0.5}
	if _, err := spec.Build(); err == nil {
		t.Fatal("over-area floorplan should fail to build")
	}
	// The area solver's floorplan for the same organisation is buildable.
	spec.AttnPIM.BanksPerDie = 0
	if _, err := spec.Build(); err != nil {
		t.Fatalf("solver floorplan should build: %v", err)
	}
}
