// Package core assembles the evaluated computing systems (§4, §7.1): PAPI
// itself (host CPU + GPU PUs + FC-PIM + disaggregated Attn-PIM + dynamic
// scheduler) and the three comparison points (A100+AttAcc, A100+HBM-PIM,
// AttAcc-only), plus the PIM-only PAPI variant of §7.4.
//
// The canonical definition of each system now lives in internal/design as a
// declarative, serializable Spec; this package re-exports the System type
// and keeps the legacy constructors as thin wrappers over the registry
// specs, so the five evaluated systems remain one function call away while
// every other point in the design space is a design.Spec (or a JSON file)
// away.
package core

import (
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/pim"
)

// System is one complete evaluated design (see design.System; the alias
// keeps the simulator's long-standing import surface intact).
type System = design.System

// Device counts of §7.1.
const (
	WeightDevices = design.WeightDevices // HBM stacks holding FC weight parameters
	AttnDevices   = design.AttnDevices   // HBM stacks holding KV caches / running attention
)

// DefaultAlpha is the calibrated memory-boundedness threshold for the
// default PAPI system (see sched.Calibrate; the offline procedure of §5.2.1
// lands here for all three evaluation models).
const DefaultAlpha = design.DefaultAlpha

// AttentionSpecializedPool builds a pool of attention-specialised PIM
// devices (AttAcc, HBM-PIM): no FC weight-reuse datapath, ~half FPU
// utilisation on weight-stationary GEMV (§6.1).
func AttentionSpecializedPool(stack hbm.Stack, count int) *pim.Device {
	return design.AttentionSpecializedPool(stack, count)
}

// mustBuild assembles a registry spec. The registry designs are pinned valid
// by the design suite, so a failure here is a programming error, not input.
func mustBuild(spec design.Spec) *System {
	sys, err := spec.Build()
	if err != nil {
		panic("core: registry design failed to build: " + err.Error())
	}
	return sys
}

// NewPAPI returns the full PAPI system: 6 GPUs whose memory is 30 FC-PIM
// stacks, 60 disaggregated Attn-PIM stacks behind CXL, and the dynamic
// parallelism-aware scheduler with threshold alpha (0 means DefaultAlpha).
func NewPAPI(alpha float64) *System { return mustBuild(design.PAPI(alpha)) }

// NewA100AttAcc returns the state-of-the-art heterogeneous baseline [23]:
// FC statically on 6 A100s (plain HBM weight stacks), attention on AttAcc
// 1P1B PIM devices.
func NewA100AttAcc() *System { return mustBuild(design.A100AttAcc()) }

// NewA100HBMPIM returns the A100 + Samsung HBM-PIM (1P2B) baseline [30].
func NewA100HBMPIM() *System { return mustBuild(design.A100HBMPIM()) }

// NewAttAccOnly returns the PIM-only baseline [23]: all FC and attention
// kernels on AttAcc 1P1B devices, no GPU. Prefill also runs on PIM.
func NewAttAccOnly() *System { return mustBuild(design.AttAccOnly()) }

// NewPIMOnlyPAPI returns the §7.4 ablation: PAPI's hybrid PIM devices
// (FC-PIM + Attn-PIM) with no GPU, against which AttAcc-only isolates the
// benefit of the hybrid PIM design itself.
func NewPIMOnlyPAPI() *System { return mustBuild(design.PIMOnlyPAPI()) }

// Designs returns the four systems of Fig. 8 in presentation order.
func Designs() []*System {
	return []*System{NewA100AttAcc(), NewA100HBMPIM(), NewAttAccOnly(), NewPAPI(0)}
}

// ByName builds a system by its display name ("PAPI", "A100+AttAcc",
// "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI").
func ByName(name string) (*System, error) {
	spec, err := design.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// Build assembles a System from a declarative design spec, validating both
// the spec and the assembled hardware.
func Build(spec design.Spec) (*System, error) { return spec.Build() }
