// Package core assembles the evaluated computing systems (§4, §7.1): PAPI
// itself (host CPU + GPU PUs + FC-PIM + disaggregated Attn-PIM + dynamic
// scheduler) and the three comparison points (A100+AttAcc, A100+HBM-PIM,
// AttAcc-only), plus the PIM-only PAPI variant of §7.4.
//
// Every system has 90 HBM devices for fairness (§7.1): 30 holding the FC
// weights and 60 for attention/KV. What differs is which devices can compute,
// how fast, and who decides where FC runs.
package core

import (
	"fmt"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/interconnect"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
)

// Device counts of §7.1.
const (
	WeightDevices = 30 // HBM stacks holding FC weight parameters
	AttnDevices   = 60 // HBM stacks holding KV caches / running attention
)

// AttentionSpecializedPool builds a pool of attention-specialised PIM
// devices (AttAcc, HBM-PIM): no FC weight-reuse datapath, so FC work on them
// re-streams weights per token, and their score·V reduction trees reach only
// ~half utilisation on weight-stationary GEMV (§6.1 — the missing datapath
// is exactly what FC-PIM adds).
func AttentionSpecializedPool(stack hbm.Stack, count int) *pim.Device {
	d := pim.New(stack, count)
	d.FCWeightReuse = false
	d.FCComputeEff = 0.5
	return d
}

// DefaultAlpha is the calibrated memory-boundedness threshold for the
// default PAPI system (see sched.Calibrate; the offline procedure of §5.2.1
// lands here for all three evaluation models).
const DefaultAlpha = 28

// System is one complete evaluated design.
type System struct {
	Name string

	// GPU is the high-performance processor's PU pool; nil for PIM-only
	// systems (AttAcc-only, PIM-only PAPI).
	GPU *gpu.Node

	// FCPIM is the PIM pool that can execute FC kernels (the 30
	// weight-holding stacks). Nil when FC can only run on the GPU
	// (A100+AttAcc, A100+HBM-PIM: their weight stacks are plain HBM).
	FCPIM *pim.Device

	// AttnPIM is the attention pool (60 stacks). Always present: every
	// evaluated design offloads attention to PIM.
	AttnPIM *pim.Device

	// AttnLink is the fabric to the disaggregated attention devices.
	AttnLink interconnect.Link
	// PULink is the fabric between PUs and the weight memory (NVLink); FC
	// activations cross it when FC runs on FC-PIM.
	PULink interconnect.Link

	// Policy decides FC placement each iteration.
	Policy sched.Policy

	// PrefillOnGPU: the compute-bound prefill phase runs on the GPU in every
	// heterogeneous design; PIM-only systems must run it on their PIM units
	// (§7.4), which is the dominant cost of AttAcc-only end to end.
	PrefillOnGPU bool

	// HostPower is the host CPU's static draw, charged over wall-clock time.
	HostPower units.Watts
}

// NewPAPI returns the full PAPI system: 6 GPUs whose memory is 30 FC-PIM
// stacks, 60 disaggregated Attn-PIM stacks behind CXL, and the dynamic
// parallelism-aware scheduler with threshold alpha (0 means DefaultAlpha).
func NewPAPI(alpha float64) *System {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	link, _ := interconnect.AttnFabric(AttnDevices)
	return &System{
		Name:         "PAPI",
		GPU:          gpu.DefaultNode(),
		FCPIM:        pim.New(hbm.FCPIMStack(), WeightDevices),
		AttnPIM:      AttentionSpecializedPool(hbm.HBMPIMStack(), AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.Dynamic{Alpha: alpha},
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

// NewA100AttAcc returns the state-of-the-art heterogeneous baseline [23]:
// FC statically on 6 A100s (plain HBM weight stacks), attention on AttAcc
// 1P1B PIM devices.
func NewA100AttAcc() *System {
	link, _ := interconnect.AttnFabric(AttnDevices)
	return &System{
		Name:         "A100+AttAcc",
		GPU:          gpu.DefaultNode(),
		FCPIM:        nil,
		AttnPIM:      AttentionSpecializedPool(hbm.AttAccStack(), AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPU(),
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

// NewA100HBMPIM returns the A100 + Samsung HBM-PIM (1P2B) baseline [30].
func NewA100HBMPIM() *System {
	link, _ := interconnect.AttnFabric(AttnDevices)
	return &System{
		Name:         "A100+HBM-PIM",
		GPU:          gpu.DefaultNode(),
		FCPIM:        nil,
		AttnPIM:      AttentionSpecializedPool(hbm.HBMPIMStack(), AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPU(),
		PrefillOnGPU: true,
		HostPower:    100,
	}
}

// NewAttAccOnly returns the PIM-only baseline [23]: all FC and attention
// kernels on AttAcc 1P1B devices, no GPU. Prefill also runs on PIM.
func NewAttAccOnly() *System {
	link, _ := interconnect.AttnFabric(AttnDevices)
	return &System{
		Name:         "AttAcc-only",
		GPU:          nil,
		FCPIM:        AttentionSpecializedPool(hbm.AttAccStack(), WeightDevices),
		AttnPIM:      AttentionSpecializedPool(hbm.AttAccStack(), AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPIM(),
		PrefillOnGPU: false,
		HostPower:    100,
	}
}

// NewPIMOnlyPAPI returns the §7.4 ablation: PAPI's hybrid PIM devices
// (FC-PIM + Attn-PIM) with no GPU, against which AttAcc-only isolates the
// benefit of the hybrid PIM design itself.
func NewPIMOnlyPAPI() *System {
	link, _ := interconnect.AttnFabric(AttnDevices)
	return &System{
		Name:         "PIM-only PAPI",
		GPU:          nil,
		FCPIM:        pim.New(hbm.FCPIMStack(), WeightDevices),
		AttnPIM:      AttentionSpecializedPool(hbm.HBMPIMStack(), AttnDevices),
		AttnLink:     link,
		PULink:       interconnect.NVLink3(),
		Policy:       sched.AlwaysPIM(),
		PrefillOnGPU: false,
		HostPower:    100,
	}
}

// Designs returns the four systems of Fig. 8 in presentation order.
func Designs() []*System {
	return []*System{NewA100AttAcc(), NewA100HBMPIM(), NewAttAccOnly(), NewPAPI(0)}
}

// ByName builds a system by its display name ("PAPI", "A100+AttAcc",
// "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI").
func ByName(name string) (*System, error) {
	switch name {
	case "PAPI":
		return NewPAPI(0), nil
	case "A100+AttAcc":
		return NewA100AttAcc(), nil
	case "A100+HBM-PIM":
		return NewA100HBMPIM(), nil
	case "AttAcc-only":
		return NewAttAccOnly(), nil
	case "PIM-only PAPI":
		return NewPIMOnlyPAPI(), nil
	}
	return nil, fmt.Errorf("core: unknown design %q", name)
}

// Validate checks the system's structural invariants.
func (s *System) Validate() error {
	if s.GPU == nil && s.FCPIM == nil {
		return fmt.Errorf("core: %s has no FC execution engine", s.Name)
	}
	if s.AttnPIM == nil {
		return fmt.Errorf("core: %s has no attention engine", s.Name)
	}
	if s.GPU != nil {
		if err := s.GPU.Validate(); err != nil {
			return fmt.Errorf("core: %s: %w", s.Name, err)
		}
	}
	if s.FCPIM != nil {
		if err := s.FCPIM.Validate(); err != nil {
			return fmt.Errorf("core: %s: %w", s.Name, err)
		}
	}
	if err := s.AttnPIM.Validate(); err != nil {
		return fmt.Errorf("core: %s: %w", s.Name, err)
	}
	if err := s.AttnLink.Validate(); err != nil {
		return fmt.Errorf("core: %s: %w", s.Name, err)
	}
	if !s.AttnLink.SupportsDevices(s.AttnPIM.Count) {
		return fmt.Errorf("core: %s: %s cannot address %d attention devices",
			s.Name, s.AttnLink.Name, s.AttnPIM.Count)
	}
	if s.Policy == nil {
		return fmt.Errorf("core: %s has no scheduling policy", s.Name)
	}
	if !s.PrefillOnGPU && s.GPU != nil {
		return fmt.Errorf("core: %s has a GPU but runs prefill on PIM", s.Name)
	}
	return nil
}

// WeightCapacity returns the capacity of the weight-holding pool.
func (s *System) WeightCapacity() units.Bytes {
	if s.FCPIM != nil {
		return s.FCPIM.Capacity()
	}
	// Plain HBM weight stacks (baselines): 30 × 16 GiB.
	return units.Bytes(float64(WeightDevices) * float64(hbm.PlainStack().Capacity()))
}

// KVCapacity returns the attention pool's KV-cache capacity.
func (s *System) KVCapacity() units.Bytes { return s.AttnPIM.Capacity() }

// FitsModel checks that the model's weights fit the weight pool.
func (s *System) FitsModel(cfg model.Config) error {
	if w, c := cfg.WeightBytes(), s.WeightCapacity(); w > c {
		return fmt.Errorf("core: %s: %s weights (%v) exceed weight capacity %v", s.Name, cfg.Name, w, c)
	}
	return nil
}

// MaxBatchForKV returns the largest batch whose KV caches fit the attention
// pool when every request reaches seqLen (§3.2(b)'s memory-capacity limit).
func (s *System) MaxBatchForKV(cfg model.Config, seqLen int) int {
	per := float64(cfg.KVBytes(seqLen))
	if per <= 0 {
		return 0
	}
	return int(float64(s.KVCapacity()) / per)
}

// HasGPU reports whether the design includes processing units.
func (s *System) HasGPU() bool { return s.GPU != nil }
