package core

import (
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
)

func TestAllDesignsValid(t *testing.T) {
	for _, s := range append(Designs(), NewPIMOnlyPAPI()) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"PAPI", "A100+AttAcc", "A100+HBM-PIM", "AttAcc-only", "PIM-only PAPI"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("TPU-pod"); err == nil {
		t.Error("unknown design should error")
	}
}

func TestDesignShapes(t *testing.T) {
	papi := NewPAPI(0)
	if !papi.HasGPU() || papi.FCPIM == nil {
		t.Fatal("PAPI needs both GPU and FC-PIM")
	}
	if papi.FCPIM.Stack.Config.String() != "4P1B" {
		t.Fatalf("PAPI FC-PIM config = %s, want 4P1B", papi.FCPIM.Stack.Config)
	}
	if papi.AttnPIM.Stack.Config.String() != "1P2B" {
		t.Fatalf("PAPI Attn-PIM config = %s, want 1P2B", papi.AttnPIM.Stack.Config)
	}
	if _, ok := papi.Policy.(sched.Dynamic); !ok {
		t.Fatal("PAPI must use the dynamic policy")
	}

	aa := NewA100AttAcc()
	if aa.FCPIM != nil {
		t.Fatal("A100+AttAcc FC runs only on the GPU")
	}
	if aa.AttnPIM.Stack.Config.String() != "1P1B" {
		t.Fatalf("AttAcc attention config = %s, want 1P1B", aa.AttnPIM.Stack.Config)
	}

	ao := NewAttAccOnly()
	if ao.HasGPU() {
		t.Fatal("AttAcc-only has no GPU")
	}
	if ao.PrefillOnGPU {
		t.Fatal("AttAcc-only must prefill on PIM")
	}
}

func TestDeviceCounts(t *testing.T) {
	// §7.1: "each of the computing systems has 90 HBM devices, 30 for
	// storing the weight parameters of FC kernels and 60 for attention".
	for _, s := range append(Designs(), NewPIMOnlyPAPI()) {
		if s.AttnPIM.Count != 60 {
			t.Errorf("%s: %d attention devices, want 60", s.Name, s.AttnPIM.Count)
		}
		if s.FCPIM != nil && s.FCPIM.Count != 30 {
			t.Errorf("%s: %d FC-PIM devices, want 30", s.Name, s.FCPIM.Count)
		}
	}
}

func TestGPT175BFitsEveryDesign(t *testing.T) {
	// §7.1: GPT-3 175B needs 350 GB; PAPI's weight pool is 30 × 12 GB =
	// 360 GB (the reason six 60 GB GPUs are needed).
	cfg := model.GPT3_175B()
	for _, s := range Designs() {
		if err := s.FitsModel(cfg); err != nil {
			t.Errorf("%v", err)
		}
	}
	papi := NewPAPI(0)
	gib := float64(papi.WeightCapacity()) / units.GiB
	if gib != 360 {
		t.Errorf("PAPI weight capacity = %.0f GiB, want 360", gib)
	}
}

func TestValidateCatchesBrokenSystems(t *testing.T) {
	s := NewPAPI(0)
	s.GPU = nil
	s.FCPIM = nil
	if err := s.Validate(); err == nil {
		t.Error("no FC engine should fail")
	}

	s = NewPAPI(0)
	s.AttnPIM = nil
	if err := s.Validate(); err == nil {
		t.Error("no attention engine should fail")
	}

	s = NewPAPI(0)
	s.Policy = nil
	if err := s.Validate(); err == nil {
		t.Error("no policy should fail")
	}

	s = NewPAPI(0)
	s.PrefillOnGPU = false
	if err := s.Validate(); err == nil {
		t.Error("GPU present but prefill on PIM should fail")
	}

	s = NewPAPI(0)
	s.AttnLink.MaxDevices = 10
	if err := s.Validate(); err == nil {
		t.Error("fabric too small for 60 devices should fail")
	}
}

func TestMaxBatchForKV(t *testing.T) {
	// §3.2(b)-style capacity limit: longer sequences allow fewer requests.
	s := NewPAPI(0)
	cfg := model.GPT3_175B()
	short := s.MaxBatchForKV(cfg, 256)
	long := s.MaxBatchForKV(cfg, 4096)
	if short <= long {
		t.Fatalf("short-seq capacity %d should exceed long-seq %d", short, long)
	}
	if long < 18 {
		// 960 GB / 19.3 GB ≈ 49; the paper's §3.2 example (640 GB, 18 reqs)
		// used AttAcc's accounting, ours must be at least as permissive.
		t.Fatalf("long-seq batch = %d, implausibly small", long)
	}
	if s.MaxBatchForKV(cfg, 0) != 0 {
		t.Fatal("zero sequence length should yield zero capacity")
	}
}

func TestAttnFabricIsCXL(t *testing.T) {
	// 60 disaggregated devices exceed PCIe's 32-device limit; §6.3 says CXL
	// scales to 4096 — the builder must have picked it.
	s := NewPAPI(0)
	if s.AttnLink.Name != "CXL2" {
		t.Fatalf("attention fabric = %s, want CXL2", s.AttnLink.Name)
	}
}

func TestDefaultAlphaNearCalibration(t *testing.T) {
	// The constant must stay consistent with the offline calibration for the
	// largest model (if hardware constants change, this catches drift).
	papi := NewPAPI(0)
	got := sched.Calibrate(model.GPT3_175B(), papi.GPU, papi.FCPIM)
	if got < DefaultAlpha/2 || got > DefaultAlpha*2 {
		t.Fatalf("calibrated α = %v diverged from DefaultAlpha %v", got, DefaultAlpha)
	}
}
