// Package kernels provides roofline characterisation of LLM decoding kernels
// (§3.1, Fig. 2): given a target's peak compute and memory bandwidth, it
// classifies kernels as memory- or compute-bound and computes attainable
// performance at any arithmetic intensity.
package kernels

import (
	"fmt"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
)

// Boundedness classifies a kernel against a roofline.
type Boundedness int

// Kernel boundedness classes.
const (
	MemoryBound Boundedness = iota
	ComputeBound
)

// String names the class.
func (b Boundedness) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// Roofline is a target's performance envelope.
type Roofline struct {
	Name        string
	PeakCompute units.FLOPSRate
	PeakBW      units.BytesPerSecond
}

// Validate checks the envelope.
func (r Roofline) Validate() error {
	if r.PeakCompute <= 0 || r.PeakBW <= 0 {
		return fmt.Errorf("kernels: roofline %q has non-positive peaks", r.Name)
	}
	return nil
}

// Ridge returns the ridge-point arithmetic intensity in FLOP/byte: the AI at
// which the memory and compute roofs intersect.
func (r Roofline) Ridge() float64 {
	return float64(r.PeakCompute) / float64(r.PeakBW)
}

// Attainable returns the roofline-attainable performance at intensity ai.
func (r Roofline) Attainable(ai float64) units.FLOPSRate {
	mem := ai * float64(r.PeakBW)
	if mem < float64(r.PeakCompute) {
		return units.FLOPSRate(mem)
	}
	return r.PeakCompute
}

// Classify places intensity ai on the roofline.
func (r Roofline) Classify(ai float64) Boundedness {
	if ai >= r.Ridge() {
		return ComputeBound
	}
	return MemoryBound
}

// Point is one characterised kernel: a dot on the Fig. 2 roofline plot.
type Point struct {
	Kernel     model.KernelKind
	AI         float64
	Attainable units.FLOPSRate
	Bound      Boundedness
}

// Characterize evaluates a kernel against the roofline.
func Characterize(k model.Kernel, r Roofline) Point {
	ai := units.Intensity(k.Flops, k.UniqueBytes()+k.ActivationBytes)
	return Point{
		Kernel:     k.Kind,
		AI:         ai,
		Attainable: r.Attainable(ai),
		Bound:      r.Classify(ai),
	}
}

// A100Roofline returns the roofline used in Fig. 2 (published peaks, not
// efficiency-derated: the figure plots the theoretical envelope).
func A100Roofline() Roofline {
	return Roofline{Name: "A100", PeakCompute: units.TFLOPS(312), PeakBW: units.GBps(1935)}
}
