package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/model"
)

func TestRidge(t *testing.T) {
	r := A100Roofline()
	if math.Abs(r.Ridge()-161.24) > 0.1 {
		t.Fatalf("A100 ridge = %.2f, want ≈161.2", r.Ridge())
	}
}

func TestAttainable(t *testing.T) {
	r := A100Roofline()
	// Memory side: AI=10 → 10 × 1935 GB/s = 19.35 TFLOP/s.
	if got := float64(r.Attainable(10)); math.Abs(got-19.35e12) > 1e6 {
		t.Fatalf("attainable(10) = %v", r.Attainable(10))
	}
	// Compute roof.
	if got := float64(r.Attainable(1000)); got != 312e12 {
		t.Fatalf("attainable(1000) = %v", r.Attainable(1000))
	}
}

func TestClassify(t *testing.T) {
	r := A100Roofline()
	if r.Classify(100) != MemoryBound {
		t.Fatal("AI=100 should be memory-bound on A100")
	}
	if r.Classify(200) != ComputeBound {
		t.Fatal("AI=200 should be compute-bound on A100")
	}
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Fatal("boundedness names wrong")
	}
}

func TestFig2aFCTransition(t *testing.T) {
	// Fig. 2(a): OPT-30B, speculation length 8. FC is memory-bound at batch
	// sizes 4–16 and compute-bound at ≥ 32.
	cfg := model.OPT30B()
	r := A100Roofline()
	spec := 8
	for _, batch := range []int{4, 8, 16} {
		p := Characterize(cfg.FFNKernel(batch*spec), r)
		if p.Bound != MemoryBound {
			t.Errorf("batch %d, spec 8: FC classified %v, want memory-bound (AI %.1f)", batch, p.Bound, p.AI)
		}
	}
	for _, batch := range []int{32, 64, 128} {
		p := Characterize(cfg.FFNKernel(batch*spec), r)
		if p.Bound != ComputeBound {
			t.Errorf("batch %d, spec 8: FC classified %v, want compute-bound (AI %.1f)", batch, p.Bound, p.AI)
		}
	}
}

func TestFig2aAttentionAlwaysMemoryBound(t *testing.T) {
	// Fig. 2: the attention kernel stays memory-bound at every batch size
	// and speculation length.
	cfg := model.OPT30B()
	r := A100Roofline()
	for _, batch := range []int{4, 32, 128} {
		for _, spec := range []int{2, 4, 8} {
			kv := make([]int, batch)
			for i := range kv {
				kv[i] = 1024
			}
			p := Characterize(cfg.AttentionKernel(spec, kv), r)
			if p.Bound != MemoryBound {
				t.Errorf("batch %d spec %d: attention classified %v (AI %.1f)", batch, spec, p.Bound, p.AI)
			}
		}
	}
}

func TestFig2bSpeculationSweep(t *testing.T) {
	// Fig. 2(b): batch 32, speculation 2–8. FC becomes compute-bound when
	// the speculation length exceeds 6.
	cfg := model.OPT30B()
	r := A100Roofline()
	batch := 32
	low := Characterize(cfg.FFNKernel(batch*2), r)
	if low.Bound != MemoryBound {
		t.Errorf("batch 32 spec 2: FC %v, want memory-bound", low.Bound)
	}
	high := Characterize(cfg.FFNKernel(batch*8), r)
	if high.Bound != ComputeBound {
		t.Errorf("batch 32 spec 8: FC %v, want compute-bound", high.Bound)
	}
}

func TestShortcoming2AIGap(t *testing.T) {
	// §3.3 Shortcoming 2: at batch 4, spec 8, FC's AI (~31.7) is ≈4.5× the
	// attention kernel's (~7.0).
	cfg := model.OPT30B()
	fc := Characterize(cfg.FFNKernel(4*8), A100Roofline())
	kv := []int{1024, 1024, 1024, 1024}
	at := Characterize(cfg.AttentionKernel(8, kv), A100Roofline())
	ratio := fc.AI / at.AI
	if ratio < 3.5 || ratio > 6 {
		t.Fatalf("FC/attention AI ratio = %.2f (FC %.1f, attn %.1f), want ≈4.5", ratio, fc.AI, at.AI)
	}
}

func TestValidate(t *testing.T) {
	if err := A100Roofline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Roofline{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero peaks should fail")
	}
}

// Property: attainable performance is non-decreasing in AI and bounded by the
// compute roof; classification is consistent with the ridge.
func TestRooflineProperty(t *testing.T) {
	r := A100Roofline()
	f := func(aiRaw uint16) bool {
		ai := float64(aiRaw)/64 + 0.01
		att := float64(r.Attainable(ai))
		if att > float64(r.PeakCompute)+1 {
			return false
		}
		att2 := float64(r.Attainable(ai * 2))
		if att2 < att-1 {
			return false
		}
		if (r.Classify(ai) == ComputeBound) != (ai >= r.Ridge()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Characterize's AI equals flops / total bytes.
func TestCharacterizeAIProperty(t *testing.T) {
	cfg := model.GPT3_66B()
	r := A100Roofline()
	f := func(nRaw uint8) bool {
		n := int(nRaw)%128 + 1
		k := cfg.QKVKernel(n)
		p := Characterize(k, r)
		want := float64(k.Flops) / float64(k.WeightBytes+k.ActivationBytes)
		return math.Abs(p.AI-want) < 1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterizeZeroBytes(t *testing.T) {
	p := Characterize(model.Kernel{Kind: model.KindFFN, Flops: 100}, A100Roofline())
	if !math.IsInf(p.AI, 1) || p.Bound != ComputeBound {
		t.Fatalf("pure-compute kernel: AI=%v bound=%v", p.AI, p.Bound)
	}
}
