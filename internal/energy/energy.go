// Package energy provides the system-level energy ledger used by the serving
// simulator: named components accumulate joules, and the ledger reports
// totals, shares and efficiency ratios (the Fig. 8(b)/9(b) metric).
package energy

import (
	"fmt"
	"sort"
	"strings"

	"github.com/papi-sim/papi/internal/units"
)

// Component names the system parts that consume energy.
type Component string

// Standard components of the PAPI system and its baselines.
const (
	GPUActive    Component = "gpu-active"
	GPUIdle      Component = "gpu-idle"
	FCPIM        Component = "fc-pim"
	AttnPIM      Component = "attn-pim"
	Interconnect Component = "interconnect"
	HostCPU      Component = "host-cpu"
	Other        Component = "other"
)

// stdComponents lists the standard components in their deterministic
// (lexicographic) order; stdIndex maps a component to its slot.
var stdComponents = [...]Component{AttnPIM, FCPIM, GPUActive, GPUIdle, HostCPU, Interconnect, Other}

// Slot is a precomputed ledger index for a standard component. The serving
// engine charges several components per simulated decoding iteration; going
// through a Slot makes each charge an inlinable two-store operation instead
// of a string-switch dispatch. Values mirror stdComponents order.
type Slot int8

// Slots of the standard components.
const (
	SlotAttnPIM Slot = iota
	SlotFCPIM
	SlotGPUActive
	SlotGPUIdle
	SlotHostCPU
	SlotInterconnect
	SlotOther
)

// stdIndex returns the array slot of a standard component, or -1.
func stdIndex(c Component) int {
	switch c {
	case AttnPIM:
		return 0
	case FCPIM:
		return 1
	case GPUActive:
		return 2
	case GPUIdle:
		return 3
	case HostCPU:
		return 4
	case Interconnect:
		return 5
	case Other:
		return 6
	}
	return -1
}

// Ledger accumulates energy per component. The zero value is ready to use.
//
// The standard components live in a fixed array so the serving engine's
// per-iteration charges (several per decoding step) are plain indexed adds
// rather than string-keyed map operations; non-standard components spill
// into a map. Per-component accumulation order is unchanged either way, so
// totals are bit-identical to the map-only representation.
type Ledger struct {
	std     [len(stdComponents)]units.Joules
	charged [len(stdComponents)]bool
	extra   map[Component]units.Joules
}

// Add charges j joules to component c. Negative charges are a programming
// error and panic (energy only accumulates). The body is kept small enough
// to inline: with a constant component — every call in the serving engine —
// the compiler folds stdIndex away and the charge compiles to two stores.
func (l *Ledger) Add(c Component, j units.Joules) {
	if i := stdIndex(c); i >= 0 && j >= 0 {
		l.std[i] += j
		l.charged[i] = true
		return
	}
	l.addSlow(c, j)
}

// AddSlot charges j joules to a standard component by its precomputed slot
// — the hot-path equivalent of Add, small enough to inline to two stores.
// As with Add, negative charges panic (without the formatted detail, to stay
// inside the inlining budget); an out-of-range slot panics via the index.
//
//papivet:noalloc
func (l *Ledger) AddSlot(s Slot, j units.Joules) {
	if j < 0 {
		panic("energy: negative charge")
	}
	l.std[s] += j
	l.charged[s] = true
}

// addSlow handles the non-standard-component and negative-charge cases.
func (l *Ledger) addSlow(c Component, j units.Joules) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative charge %v to %s", j, c))
	}
	if i := stdIndex(c); i >= 0 {
		l.std[i] += j
		l.charged[i] = true
		return
	}
	if l.extra == nil {
		l.extra = make(map[Component]units.Joules)
	}
	l.extra[c] += j
}

// Get returns a component's accumulated energy.
func (l *Ledger) Get(c Component) units.Joules {
	if i := stdIndex(c); i >= 0 {
		return l.std[i]
	}
	return l.extra[c]
}

// Total sums every component. Summation follows the deterministic
// Components order: float addition is order-sensitive, and an unordered
// traversal would otherwise make totals differ by an ulp run-to-run.
func (l *Ledger) Total() units.Joules {
	var t units.Joules
	for _, c := range l.Components() {
		t += l.Get(c)
	}
	return t
}

// Share returns a component's fraction of the total (0 when empty).
func (l *Ledger) Share(c Component) float64 {
	t := l.Total()
	if t <= 0 {
		return 0
	}
	return float64(l.Get(c)) / float64(t)
}

// Components returns the charged components in deterministic order.
func (l *Ledger) Components() []Component {
	cs := make([]Component, 0, len(stdComponents)+len(l.extra))
	for i, c := range stdComponents {
		if l.charged[i] {
			cs = append(cs, c)
		}
	}
	for c := range l.extra {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Merge adds every entry of other into l.
func (l *Ledger) Merge(other *Ledger) {
	for _, c := range other.Components() {
		l.Add(c, other.Get(c))
	}
}

// String renders the ledger for debugging and reports.
func (l *Ledger) String() string {
	var b strings.Builder
	for _, c := range l.Components() {
		fmt.Fprintf(&b, "%s: %v (%.1f%%)\n", c, l.Get(c), 100*l.Share(c))
	}
	fmt.Fprintf(&b, "total: %v", l.Total())
	return b.String()
}

// EfficiencyVersus returns the energy-efficiency improvement of this ledger
// relative to a baseline performing the same work: baseline total / ours.
// Values above 1 mean this system is more efficient.
func (l *Ledger) EfficiencyVersus(baseline *Ledger) float64 {
	ours := float64(l.Total())
	if ours <= 0 {
		return 0
	}
	return float64(baseline.Total()) / ours
}
