// Package energy provides the system-level energy ledger used by the serving
// simulator: named components accumulate joules, and the ledger reports
// totals, shares and efficiency ratios (the Fig. 8(b)/9(b) metric).
package energy

import (
	"fmt"
	"sort"
	"strings"

	"github.com/papi-sim/papi/internal/units"
)

// Component names the system parts that consume energy.
type Component string

// Standard components of the PAPI system and its baselines.
const (
	GPUActive    Component = "gpu-active"
	GPUIdle      Component = "gpu-idle"
	FCPIM        Component = "fc-pim"
	AttnPIM      Component = "attn-pim"
	Interconnect Component = "interconnect"
	HostCPU      Component = "host-cpu"
	Other        Component = "other"
)

// Ledger accumulates energy per component. The zero value is ready to use.
type Ledger struct {
	entries map[Component]units.Joules
}

// Add charges j joules to component c. Negative charges are a programming
// error and panic (energy only accumulates).
func (l *Ledger) Add(c Component, j units.Joules) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative charge %v to %s", j, c))
	}
	if l.entries == nil {
		l.entries = make(map[Component]units.Joules)
	}
	l.entries[c] += j
}

// Get returns a component's accumulated energy.
func (l *Ledger) Get(c Component) units.Joules { return l.entries[c] }

// Total sums every component. Summation follows the deterministic
// Components order: float addition is order-sensitive, and map iteration
// order would otherwise make totals differ by an ulp run-to-run.
func (l *Ledger) Total() units.Joules {
	var t units.Joules
	for _, c := range l.Components() {
		t += l.entries[c]
	}
	return t
}

// Share returns a component's fraction of the total (0 when empty).
func (l *Ledger) Share(c Component) float64 {
	t := l.Total()
	if t <= 0 {
		return 0
	}
	return float64(l.entries[c]) / float64(t)
}

// Components returns the charged components in deterministic order.
func (l *Ledger) Components() []Component {
	cs := make([]Component, 0, len(l.entries))
	for c := range l.entries {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Merge adds every entry of other into l.
func (l *Ledger) Merge(other *Ledger) {
	for c, j := range other.entries {
		l.Add(c, j)
	}
}

// String renders the ledger for debugging and reports.
func (l *Ledger) String() string {
	var b strings.Builder
	for _, c := range l.Components() {
		fmt.Fprintf(&b, "%s: %v (%.1f%%)\n", c, l.entries[c], 100*l.Share(c))
	}
	fmt.Fprintf(&b, "total: %v", l.Total())
	return b.String()
}

// EfficiencyVersus returns the energy-efficiency improvement of this ledger
// relative to a baseline performing the same work: baseline total / ours.
// Values above 1 mean this system is more efficient.
func (l *Ledger) EfficiencyVersus(baseline *Ledger) float64 {
	ours := float64(l.Total())
	if ours <= 0 {
		return 0
	}
	return float64(baseline.Total()) / ours
}
