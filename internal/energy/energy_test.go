package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestZeroValueUsable(t *testing.T) {
	var l Ledger
	l.Add(GPUActive, 10)
	if l.Total() != 10 {
		t.Fatalf("total = %v", l.Total())
	}
}

func TestAccumulation(t *testing.T) {
	var l Ledger
	l.Add(FCPIM, 2)
	l.Add(FCPIM, 3)
	l.Add(AttnPIM, 5)
	if l.Get(FCPIM) != 5 {
		t.Fatalf("fc-pim = %v", l.Get(FCPIM))
	}
	if l.Total() != 10 {
		t.Fatalf("total = %v", l.Total())
	}
	if got := l.Share(AttnPIM); got != 0.5 {
		t.Fatalf("share = %v", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge should panic")
		}
	}()
	var l Ledger
	l.Add(Other, -1)
}

func TestComponentsOrdered(t *testing.T) {
	var l Ledger
	l.Add(Other, 1)
	l.Add(GPUActive, 1)
	l.Add(AttnPIM, 1)
	cs := l.Components()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("components not sorted: %v", cs)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Ledger
	a.Add(GPUActive, 1)
	b.Add(GPUActive, 2)
	b.Add(HostCPU, 3)
	a.Merge(&b)
	if a.Get(GPUActive) != 3 || a.Get(HostCPU) != 3 {
		t.Fatalf("merge wrong: %v", a.String())
	}
}

func TestEfficiencyVersus(t *testing.T) {
	var papi, base Ledger
	papi.Add(FCPIM, 10)
	base.Add(GPUActive, 34)
	if got := papi.EfficiencyVersus(&base); math.Abs(got-3.4) > 1e-12 {
		t.Fatalf("efficiency = %v, want 3.4", got)
	}
	var empty Ledger
	if got := empty.EfficiencyVersus(&base); got != 0 {
		t.Fatalf("empty efficiency = %v", got)
	}
}

func TestString(t *testing.T) {
	var l Ledger
	l.Add(Interconnect, units.Joules(1))
	s := l.String()
	if !strings.Contains(s, "interconnect") || !strings.Contains(s, "total") {
		t.Fatalf("string = %q", s)
	}
}

func TestEmptyLedger(t *testing.T) {
	var l Ledger
	if l.Total() != 0 || l.Share(GPUActive) != 0 || len(l.Components()) != 0 {
		t.Fatal("empty ledger should be all zeros")
	}
}

// Property: total equals the sum of components, and shares sum to 1.
func TestConservationProperty(t *testing.T) {
	comps := []Component{GPUActive, GPUIdle, FCPIM, AttnPIM, Interconnect, HostCPU, Other}
	f := func(charges []uint16) bool {
		var l Ledger
		var want float64
		for i, c := range charges {
			j := units.Joules(float64(c) / 16)
			l.Add(comps[i%len(comps)], j)
			want += float64(j)
		}
		if math.Abs(float64(l.Total())-want) > 1e-9 {
			return false
		}
		if want == 0 {
			return true
		}
		sum := 0.0
		for _, c := range l.Components() {
			sum += l.Share(c)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSlotMatchesAdd(t *testing.T) {
	pairs := []struct {
		c Component
		s Slot
	}{
		{AttnPIM, SlotAttnPIM}, {FCPIM, SlotFCPIM}, {GPUActive, SlotGPUActive},
		{GPUIdle, SlotGPUIdle}, {HostCPU, SlotHostCPU}, {Interconnect, SlotInterconnect},
		{Other, SlotOther},
	}
	var byName, bySlot Ledger
	for i, p := range pairs {
		j := units.Joules(float64(i) + 0.25)
		byName.Add(p.c, j)
		bySlot.AddSlot(p.s, j)
	}
	for _, p := range pairs {
		if byName.Get(p.c) != bySlot.Get(p.c) {
			t.Fatalf("%s: Add %v != AddSlot %v", p.c, byName.Get(p.c), bySlot.Get(p.c))
		}
	}
	if byName.Total() != bySlot.Total() {
		t.Fatalf("totals differ: %v vs %v", byName.Total(), bySlot.Total())
	}
}

func TestAddSlotNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddSlot did not panic")
		}
	}()
	var l Ledger
	l.AddSlot(SlotOther, -1)
}

func TestNonStandardComponentSpills(t *testing.T) {
	var l Ledger
	l.Add(Component("dram-refresh"), 2)
	l.Add(GPUActive, 3)
	if l.Get(Component("dram-refresh")) != 2 {
		t.Fatal("non-standard component lost")
	}
	cs := l.Components()
	if len(cs) != 2 || cs[0] != Component("dram-refresh") || cs[1] != GPUActive {
		t.Fatalf("Components() = %v, want sorted [dram-refresh gpu-active]", cs)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %v, want 5", l.Total())
	}
}
