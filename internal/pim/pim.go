// Package pim models PIM-enabled HBM devices executing LLM kernels: the
// per-bank FPU datapath, the data-reuse-aware energy breakdown of §6.1
// (DRAM Access / Transfer / Computation, Fig. 7), the 116 W power governor,
// and pools of devices acting as one accelerator.
//
// Two execution paths exist:
//
//   - the analytic path (Execute), a closed-form roofline over the stack's
//     stream supply and FPU demand rates, used by the serving engine;
//   - the detailed path (ExecuteDetailed), which drives the command-level
//     DRAM simulator (internal/dram) for the memory side.
//
// The analytic constants are calibrated against the detailed path; a test
// asserts their agreement.
package pim

import (
	"fmt"
	"math"

	"github.com/papi-sim/papi/internal/dram"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/units"
)

// EnergyModel holds the per-byte energy constants of the PIM datapath.
// The split reproduces the paper's Fig. 7(a): with no data reuse, DRAM access
// is 96.7 % of the total (43.9 / 45.4); with reuse 64 it falls to ≈31 %
// (paper: 33.1 %, Fig. 7(b)).
type EnergyModel struct {
	// DRAMAccessPJB is charged per byte read from the DRAM arrays
	// (row activation + column access, amortised by data reuse).
	DRAMAccessPJB float64
	// TransferPJB is charged per byte delivered to an FPU (buffer die, TSV,
	// global and bank-group controllers).
	TransferPJB float64
	// ComputePJB is charged per byte consumed by FPU arithmetic.
	ComputePJB float64
	// StaticW is the per-stack standby power (refresh, PLLs, IO idle).
	StaticW units.Watts
}

// DefaultEnergyModel returns the calibrated constants (see internal/dram for
// the command-level measurement backing DRAMAccessPJB).
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		DRAMAccessPJB: 43.9,
		TransferPJB:   0.9,
		ComputePJB:    0.6,
		StaticW:       4,
	}
}

// PerComputeByte returns the energy per FPU-consumed byte at reuse level r:
// e(r) = DRAM/r + transfer + compute.
func (m EnergyModel) PerComputeByte(r float64) units.PicojoulesPerByte {
	if r < 1 {
		r = 1
	}
	return units.PicojoulesPerByte(m.DRAMAccessPJB/r + m.TransferPJB + m.ComputePJB)
}

// Breakdown splits kernel energy by component (Fig. 7(a)/(b)).
type Breakdown struct {
	DRAMAccess units.Joules
	Transfer   units.Joules
	Compute    units.Joules
	Static     units.Joules
}

// Total sums all components.
func (b Breakdown) Total() units.Joules {
	return b.DRAMAccess + b.Transfer + b.Compute + b.Static
}

// DRAMShare returns DRAM access as a fraction of dynamic (non-static) energy,
// the quantity plotted in Fig. 7(a)/(b).
func (b Breakdown) DRAMShare() float64 {
	dyn := b.DRAMAccess + b.Transfer + b.Compute
	if dyn <= 0 {
		return 0
	}
	return float64(b.DRAMAccess) / float64(dyn)
}

// Class distinguishes the two LLM kernel families, which exercise different
// PIM datapaths (§6.1–6.2).
type Class int

// Kernel classes.
const (
	// ClassFC is weight-streaming GEMV/GEMM work (QKV, projection, FFN,
	// prefill, draft). Exploiting *weight* data reuse across tokens requires
	// the accumulation datapath FC-PIM adds (§6.1); attention-specialised
	// designs (AttAcc 1P1B, HBM-PIM 1P2B) re-stream weights per token.
	ClassFC Class = iota
	// ClassAttention is KV-streaming attention work; its (TLP-level) reuse is
	// native to every attention-capable PIM design.
	ClassAttention
)

// Kernel describes one PIM workload in datapath terms.
//
// UniqueBytes is the distinct data streamed from the DRAM arrays (the weight
// matrix for FC, the KV cache for attention). Flops is total arithmetic.
// In FP16 GEMV one FPU lane consumes one operand byte per FLOP, so the FPUs
// consume Flops bytes in total and the data-reuse level is Flops/UniqueBytes
// — equal to RLP×TLP for FC (Eq. 2) and TLP for attention.
type Kernel struct {
	Name        string
	Class       Class
	Flops       units.FLOPs
	UniqueBytes units.Bytes
}

// Reuse returns the data-reuse level Flops/UniqueBytes.
func (k Kernel) Reuse() float64 {
	if k.UniqueBytes <= 0 {
		return 1
	}
	r := float64(k.Flops) / float64(k.UniqueBytes)
	if r < 1 {
		return 1
	}
	return r
}

// Result reports one kernel execution.
type Result struct {
	Time      units.Seconds
	Energy    Breakdown
	Power     units.Watts // average dynamic power during execution
	Throttled bool        // whether the power governor stretched execution
	Devices   int         // devices that participated
}

// Device is a pool of identical PIM-enabled HBM stacks acting as one
// accelerator (e.g. "the 30 FC-PIM devices" or "the 60 Attn-PIM devices").
type Device struct {
	Stack  hbm.Stack
	Count  int
	Energy EnergyModel

	// Governor enforces the per-stack power budget by stretching execution
	// (frequency throttling). The paper's designs are chosen to fit the
	// budget; the governor exists to model infeasible points honestly
	// (e.g. AttAcc's 1P1B slightly exceeds it with no data reuse).
	Governor bool
	BudgetW  float64

	// FCWeightReuse reports whether the device's datapath can hold a weight
	// element and accumulate across multiple tokens (the FC-PIM design of
	// §6.1). Without it, FC kernels re-stream their weights once per token
	// in flight (reuse level 1), which is what makes FC on AttAcc-class
	// devices collapse at high parallelism (Fig. 4, Fig. 8's AttAcc-only).
	FCWeightReuse bool

	// FCComputeEff derates FPU throughput for FC kernels on devices whose
	// reduction datapath is attention-specialised (score·V adder trees reach
	// only ~half utilisation on weight-stationary GEMV). 1.0 for FC-PIM.
	FCComputeEff float64

	// KernelOverhead is the fixed cost of one kernel invocation: command
	// broadcast, result gather and reduction across banks.
	KernelOverhead units.Seconds
}

// New returns a device pool with the calibrated defaults. Weight reuse is
// enabled; callers modelling attention-specialised devices clear it.
func New(stack hbm.Stack, count int) *Device {
	return &Device{
		Stack:          stack,
		Count:          count,
		Energy:         DefaultEnergyModel(),
		Governor:       true,
		BudgetW:        hbm.PowerBudgetW,
		FCWeightReuse:  true,
		FCComputeEff:   1.0,
		KernelOverhead: units.Microseconds(2),
	}
}

// kernelComputeRate returns the pool compute rate applicable to the kernel.
func (d *Device) kernelComputeRate(k Kernel, n float64) float64 {
	rate := n * float64(d.Stack.ComputeRate())
	if k.Class == ClassFC {
		eff := d.FCComputeEff
		if eff <= 0 || eff > 1 {
			eff = 1
		}
		rate *= eff
	}
	return rate
}

// effectiveUnique returns the DRAM traffic the kernel actually generates on
// this device: FC kernels without weight-reuse support re-stream their
// weights once per consuming token.
func (d *Device) effectiveUnique(k Kernel) float64 {
	unique := float64(k.UniqueBytes)
	if k.Class == ClassFC && !d.FCWeightReuse && float64(k.Flops) > unique {
		return float64(k.Flops)
	}
	return unique
}

// Validate checks the pool invariants.
func (d *Device) Validate() error {
	if d.Count <= 0 {
		return fmt.Errorf("pim: device count %d must be positive", d.Count)
	}
	if err := d.Stack.Validate(); err != nil {
		return err
	}
	if d.Stack.FPUs() == 0 {
		return fmt.Errorf("pim: %s stack has no FPUs, cannot execute kernels", d.Stack.Config)
	}
	return nil
}

// ComputeRate returns the pool's aggregate FPU throughput.
func (d *Device) ComputeRate() units.FLOPSRate {
	return units.FLOPSRate(float64(d.Count) * float64(d.Stack.ComputeRate()))
}

// StreamBW returns the pool's aggregate DRAM supply bandwidth.
func (d *Device) StreamBW() units.BytesPerSecond {
	return units.BytesPerSecond(float64(d.Count) * float64(d.Stack.StreamBW()))
}

// Capacity returns the pool's total memory capacity.
func (d *Device) Capacity() units.Bytes {
	return units.Bytes(float64(d.Count) * float64(d.Stack.Capacity()))
}

// Execute runs the kernel on up to active devices (0 or >Count means all)
// using the analytic model and returns timing, energy and power.
func (d *Device) Execute(k Kernel, active int) Result {
	if active <= 0 || active > d.Count {
		active = d.Count
	}
	n := float64(active)
	computeRate := d.kernelComputeRate(k, n)    // FLOP/s; 1 B consumed per FLOP
	supplyBW := n * float64(d.Stack.StreamBW()) // B/s from DRAM
	unique := d.effectiveUnique(k)

	// Roofline: the FPUs consume Flops bytes; DRAM must supply the unique
	// (post-reuse) traffic.
	computeTime := float64(k.Flops) / computeRate
	dramTime := unique / supplyBW
	t := math.Max(computeTime, dramTime)

	// Dynamic power at the achieved rates.
	dramPJ := unique * d.Energy.DRAMAccessPJB
	flowPJ := float64(k.Flops) * (d.Energy.TransferPJB + d.Energy.ComputePJB)
	power := (dramPJ + flowPJ) * 1e-12 / t

	throttled := false
	if d.Governor {
		budget := d.BudgetW * n
		if power > budget {
			// Stretch execution until average power meets the budget.
			t *= power / budget
			power = budget
			throttled = true
		}
	}

	t += float64(d.KernelOverhead)
	res := Result{
		Time:      units.Seconds(t),
		Power:     units.Watts(power),
		Throttled: throttled,
		Devices:   active,
		Energy: Breakdown{
			DRAMAccess: units.Joules(dramPJ * 1e-12),
			Transfer:   units.Joules(float64(k.Flops) * d.Energy.TransferPJB * 1e-12),
			Compute:    units.Joules(float64(k.Flops) * d.Energy.ComputePJB * 1e-12),
			Static:     units.Joules(float64(d.Energy.StaticW) * n * t),
		},
	}
	return res
}

// ExecuteAttention prices an attention-class kernel with the exact
// arithmetic of Execute, specialised to the observables the serving fast
// path consumes per decoding iteration: time, total energy and the throttle
// flag. Attention kernels take neither the FC compute derate nor the
// weight-re-streaming penalty, so both branches constant-fold away; skipping
// the full Breakdown construction matters on a path called once per
// simulated iteration. A test pins bit-identical agreement with Execute.
//
//papivet:noalloc
func (d *Device) ExecuteAttention(flops units.FLOPs, unique units.Bytes, active int) (units.Seconds, units.Joules, bool) {
	if active <= 0 || active > d.Count {
		active = d.Count
	}
	n := float64(active)
	computeRate := n * float64(d.Stack.ComputeRate())
	supplyBW := n * float64(d.Stack.StreamBW())
	u := float64(unique)

	computeTime := float64(flops) / computeRate
	dramTime := u / supplyBW
	t := math.Max(computeTime, dramTime)

	dramPJ := u * d.Energy.DRAMAccessPJB
	flowPJ := float64(flops) * (d.Energy.TransferPJB + d.Energy.ComputePJB)
	power := (dramPJ + flowPJ) * 1e-12 / t

	throttled := false
	if d.Governor {
		budget := d.BudgetW * n
		if power > budget {
			t *= power / budget
			throttled = true
		}
	}

	t += float64(d.KernelOverhead)
	// Summed in Breakdown.Total's order: DRAM access, transfer, compute,
	// static.
	total := units.Joules(dramPJ*1e-12) +
		units.Joules(float64(flops)*d.Energy.TransferPJB*1e-12) +
		units.Joules(float64(flops)*d.Energy.ComputePJB*1e-12) +
		units.Joules(float64(d.Energy.StaticW)*n*t)
	return units.Seconds(t), total, throttled
}

// DemandPower returns the pool-per-stack dynamic power if the FPUs ran at
// full rate with data-reuse level r — the quantity plotted in Fig. 7(c).
// It deliberately ignores the DRAM supply cap and the governor: the figure
// asks "what would this configuration draw", not "what does it sustain".
func DemandPower(stack hbm.Stack, m EnergyModel, r float64) units.Watts {
	if r < 1 {
		r = 1
	}
	consumption := float64(stack.FPUs()) * float64(stack.FPU.StreamDemand()) // B/s
	return units.Watts(consumption * float64(m.PerComputeByte(r)) * 1e-12)
}

// FitsBudget reports whether the configuration's demand power at reuse r
// stays within the HBM power budget.
func FitsBudget(stack hbm.Stack, m EnergyModel, r float64) bool {
	return float64(DemandPower(stack, m, r)) <= hbm.PowerBudgetW
}

// MinReuseWithinBudget returns the smallest power-of-two reuse level at which
// the configuration meets the budget (the paper sweeps r ∈ {1,4,16,64}).
func MinReuseWithinBudget(stack hbm.Stack, m EnergyModel) float64 {
	for r := 1.0; r <= 1024; r *= 2 {
		if FitsBudget(stack, m, r) {
			return r
		}
	}
	return math.Inf(1)
}

// ExecuteDetailed runs the kernel's DRAM side through the command-level
// simulator and combines it with the analytic compute time. One stack's
// share of the stream is simulated and scaled; this path is used for
// calibration and the Fig. 7 microbenchmarks.
func (d *Device) ExecuteDetailed(k Kernel, active int) Result {
	if active <= 0 || active > d.Count {
		active = d.Count
	}
	// Bytes one channel must stream.
	g := dram.PIMChannelGeometry()
	channelsPerStack := float64(d.Stack.Banks()) / float64(g.Banks())
	unique := d.effectiveUnique(k)
	perChannel := unique / (float64(active) * channelsPerStack)
	rows := int(math.Ceil(perChannel / (float64(g.RowBytes) * float64(g.Banks()))))
	if rows < 1 {
		rows = 1
	}
	res := dram.RunStream(g, dram.HBM3Timing(), dram.HBM3Energy(), dram.StreamSpec{
		Rows:      rows,
		Broadcast: true,
	})
	// Scale the measured channel time to the requested bytes (the stream ran
	// whole rows; the kernel may need a fraction of the last row).
	dramTime := float64(res.Elapsed) * perChannel / float64(res.Bytes)
	computeTime := float64(k.Flops) / d.kernelComputeRate(k, float64(active))
	t := math.Max(computeTime, dramTime) + float64(d.KernelOverhead)

	dramPJ := unique * float64(res.EnergyPerByte)
	flowPJ := float64(k.Flops) * (d.Energy.TransferPJB + d.Energy.ComputePJB)
	return Result{
		Time:    units.Seconds(t),
		Power:   units.Watts((dramPJ + flowPJ) * 1e-12 / t),
		Devices: active,
		Energy: Breakdown{
			DRAMAccess: units.Joules(dramPJ * 1e-12),
			Transfer:   units.Joules(float64(k.Flops) * d.Energy.TransferPJB * 1e-12),
			Compute:    units.Joules(float64(k.Flops) * d.Energy.ComputePJB * 1e-12),
			Static:     units.Joules(float64(d.Energy.StaticW) * float64(active) * t),
		},
	}
}
