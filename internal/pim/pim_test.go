package pim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/units"
)

// gemv builds the FC kernel shape: weight bytes W streamed once, reused p
// times (p = RLP×TLP), FPUs consume p×W bytes = p×W FLOPs.
func gemv(w units.Bytes, p float64) Kernel {
	return Kernel{Name: "fc", Class: ClassFC, Flops: units.FLOPs(p * float64(w)), UniqueBytes: w}
}

func TestNoWeightReuseRestreams(t *testing.T) {
	// An attention-specialised device (no FC weight reuse) re-streams the
	// weights once per token: FC time scales linearly with parallelism even
	// below the compute roof, and DRAM energy scales with it too.
	d := New(hbm.AttAccStack(), 30)
	d.FCWeightReuse = false
	d.Governor = false
	d.KernelOverhead = 0
	w := units.GB(100)
	t1 := d.Execute(gemv(w, 1), 0)
	t8 := d.Execute(gemv(w, 8), 0)
	if r := float64(t8.Time) / float64(t1.Time); math.Abs(r-8) > 0.01 {
		t.Fatalf("no-reuse FC time ratio = %.2f, want 8", r)
	}
	if r := float64(t8.Energy.DRAMAccess) / float64(t1.Energy.DRAMAccess); math.Abs(r-8) > 0.01 {
		t.Fatalf("no-reuse DRAM energy ratio = %.2f, want 8", r)
	}
	// Attention kernels keep their reuse even on such devices.
	attn := Kernel{Name: "attn", Class: ClassAttention, Flops: units.FLOPs(8 * float64(w)), UniqueBytes: w}
	withReuse := d.Execute(attn, 0)
	if withReuse.Energy.DRAMAccess != t1.Energy.DRAMAccess {
		t.Fatalf("attention DRAM energy %v should match single-stream %v",
			withReuse.Energy.DRAMAccess, t1.Energy.DRAMAccess)
	}
}

func TestWeightReuseDeviceUnaffectedByFlag(t *testing.T) {
	fc := New(hbm.FCPIMStack(), 30)
	k := gemv(units.GB(100), 16)
	res := fc.Execute(k, 0)
	// With reuse, DRAM traffic is the unique weights only.
	wantDRAM := 100e9 * fc.Energy.DRAMAccessPJB * 1e-12
	if math.Abs(float64(res.Energy.DRAMAccess)-wantDRAM) > wantDRAM*1e-9 {
		t.Fatalf("reuse-capable DRAM energy = %v, want %.4g", res.Energy.DRAMAccess, wantDRAM)
	}
}

func TestEnergyBreakdownNoReuse(t *testing.T) {
	// Fig. 7(a): with no data reuse DRAM access is 96.7 % of dynamic energy.
	m := DefaultEnergyModel()
	share := m.DRAMAccessPJB / (m.DRAMAccessPJB + m.TransferPJB + m.ComputePJB)
	if math.Abs(share-0.967) > 0.005 {
		t.Fatalf("no-reuse DRAM share = %.4f, want ≈0.967", share)
	}
}

func TestEnergyBreakdownReuse64(t *testing.T) {
	// Fig. 7(b): at reuse 64 DRAM access drops to ≈1/3 (paper: 33.1 %).
	d := New(hbm.FCPIMStack(), 1)
	k := gemv(units.GB(1), 64)
	res := d.Execute(k, 1)
	share := res.Energy.DRAMShare()
	if share < 0.28 || share < 0.25 || share > 0.40 {
		t.Fatalf("reuse-64 DRAM share = %.4f, want ≈0.31–0.33", share)
	}
}

func TestFig7cPowerCurve(t *testing.T) {
	// Fig. 7(c): demand power decreases with reuse; 1P1B slightly exceeds the
	// 116 W budget at reuse 1; 4P1B needs reuse ≥ 4; 1P2B fits at reuse 1.
	m := DefaultEnergyModel()
	att := hbm.AttAccStack() // 1P1B
	hp := hbm.HBMPIMStack()  // 1P2B
	fc := hbm.FCPIMStack()   // 4P1B

	if FitsBudget(att, m, 1) {
		t.Errorf("1P1B at reuse 1 should exceed the 116 W budget (got %.1f W)", float64(DemandPower(att, m, 1)))
	}
	if !FitsBudget(hp, m, 1) {
		t.Errorf("1P2B at reuse 1 should fit the budget (got %.1f W)", float64(DemandPower(hp, m, 1)))
	}
	if FitsBudget(fc, m, 1) || FitsBudget(fc, m, 2) {
		t.Errorf("4P1B should exceed the budget below reuse 4 (r=1: %.1f W, r=2: %.1f W)",
			float64(DemandPower(fc, m, 1)), float64(DemandPower(fc, m, 2)))
	}
	if !FitsBudget(fc, m, 4) {
		t.Errorf("4P1B at reuse 4 should fit the budget (got %.1f W)", float64(DemandPower(fc, m, 4)))
	}
	if got := MinReuseWithinBudget(fc, m); got != 4 {
		t.Errorf("4P1B minimum in-budget reuse = %v, want 4", got)
	}
	// Monotone decreasing in reuse.
	prev := math.Inf(1)
	for _, r := range []float64{1, 4, 16, 64} {
		p := float64(DemandPower(fc, m, r))
		if p >= prev {
			t.Errorf("power not decreasing at reuse %v: %.1f >= %.1f", r, p, prev)
		}
		prev = p
	}
}

func TestFCPIMRooflineCrossover(t *testing.T) {
	// FC-PIM is balanced at reuse 4: memory-bound below, compute-bound above.
	d := New(hbm.FCPIMStack(), 30)
	w := units.GB(100)
	low := d.Execute(gemv(w, 2), 0)
	bal := d.Execute(gemv(w, 4), 0)
	high := d.Execute(gemv(w, 8), 0)
	if math.Abs(float64(low.Time)-float64(bal.Time)) > float64(bal.Time)*0.01 {
		t.Errorf("below reuse 4 FC-PIM should be memory-bound: t(2)=%v t(4)=%v", low.Time, bal.Time)
	}
	if float64(high.Time) < float64(bal.Time)*1.9 {
		t.Errorf("above reuse 4 FC-PIM should scale with compute: t(8)=%v t(4)=%v", high.Time, bal.Time)
	}
}

func TestAttAccBalancedAtReuse1(t *testing.T) {
	// 1P1B: one FPU per bank ⇒ compute and memory times are equal at reuse 1.
	d := New(hbm.AttAccStack(), 30)
	d.Governor = false
	k := gemv(units.GB(100), 1)
	computeT := float64(k.Flops) / float64(d.ComputeRate())
	dramT := float64(k.UniqueBytes) / float64(d.StreamBW())
	if math.Abs(computeT-dramT) > computeT*1e-9 {
		t.Fatalf("1P1B compute %.4g s vs dram %.4g s, want equal", computeT, dramT)
	}
}

func TestGovernorThrottlesAttAcc(t *testing.T) {
	// AttAcc 1P1B at reuse 1 draws ~124 W per stack; the governor must
	// stretch execution to hold 116 W.
	d := New(hbm.AttAccStack(), 1)
	k := gemv(units.GB(10), 1)
	free := *d
	free.Governor = false
	unthrottled := free.Execute(k, 0)
	governed := d.Execute(k, 0)
	if !governed.Throttled {
		t.Fatal("governor should throttle 1P1B at reuse 1")
	}
	if governed.Time <= unthrottled.Time {
		t.Fatalf("throttled time %v should exceed free-running %v", governed.Time, unthrottled.Time)
	}
	if float64(governed.Power) > hbm.PowerBudgetW*1.001 {
		t.Fatalf("governed power %.1f W exceeds budget", float64(governed.Power))
	}
}

func TestHBMPIMHalfRate(t *testing.T) {
	// 1P2B has half the FPUs of 1P1B: compute-bound kernels run 2× slower.
	att := New(hbm.AttAccStack(), 60)
	hp := New(hbm.HBMPIMStack(), 60)
	att.Governor, hp.Governor = false, false
	att.KernelOverhead, hp.KernelOverhead = 0, 0
	k := gemv(units.GB(10), 4) // reuse 4 → compute-bound on both
	ta := att.Execute(k, 0).Time
	th := hp.Execute(k, 0).Time
	ratio := float64(th) / float64(ta)
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("1P2B/1P1B time ratio = %.3f, want 2.0", ratio)
	}
}

func TestExecuteSubsetOfDevices(t *testing.T) {
	d := New(hbm.HBMPIMStack(), 60)
	d.KernelOverhead = 0
	k := gemv(units.GB(10), 1)
	all := d.Execute(k, 60)
	half := d.Execute(k, 30)
	if half.Devices != 30 || all.Devices != 60 {
		t.Fatalf("devices = %d/%d", half.Devices, all.Devices)
	}
	if r := float64(half.Time) / float64(all.Time); math.Abs(r-2) > 0.01 {
		t.Fatalf("half pool should be 2× slower, got %.3f", r)
	}
	// 0 and out-of-range mean "all".
	if got := d.Execute(k, 0).Devices; got != 60 {
		t.Fatalf("active=0 → %d devices, want 60", got)
	}
	if got := d.Execute(k, 100).Devices; got != 60 {
		t.Fatalf("active=100 → %d devices, want 60", got)
	}
}

func TestValidate(t *testing.T) {
	if err := New(hbm.FCPIMStack(), 30).Validate(); err != nil {
		t.Fatalf("valid pool rejected: %v", err)
	}
	if err := New(hbm.FCPIMStack(), 0).Validate(); err == nil {
		t.Fatal("zero-count pool should fail")
	}
	if err := New(hbm.PlainStack(), 30).Validate(); err == nil {
		t.Fatal("plain (no-FPU) stack should fail validation as a PIM executor")
	}
}

func TestKernelReuse(t *testing.T) {
	if got := gemv(units.GB(1), 16).Reuse(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("reuse = %v, want 16", got)
	}
	// Degenerate kernels clamp to 1.
	if got := (Kernel{Flops: 1, UniqueBytes: 0}).Reuse(); got != 1 {
		t.Fatalf("zero-bytes reuse = %v, want 1", got)
	}
	if got := (Kernel{Flops: 1, UniqueBytes: 100}).Reuse(); got != 1 {
		t.Fatalf("sub-unity reuse should clamp to 1, got %v", got)
	}
}

func TestAggregateRates(t *testing.T) {
	d := New(hbm.FCPIMStack(), 30)
	// 30 × 3072 FPUs × 2.664 GF = 245.5 TFLOP/s.
	wantCompute := 30 * 3072 * 2.664e9
	if got := float64(d.ComputeRate()); math.Abs(got-wantCompute) > wantCompute*1e-9 {
		t.Fatalf("compute rate = %v, want %.4g", d.ComputeRate(), wantCompute)
	}
	// 30 × 768 banks × 2.664 GB/s = 61.4 TB/s.
	wantBW := 30 * 768 * 2.664e9
	if got := float64(d.StreamBW()); math.Abs(got-wantBW) > wantBW*1e-9 {
		t.Fatalf("stream bw = %v, want %.4g", d.StreamBW(), wantBW)
	}
	// 30 × 12 GiB = 360 GiB.
	if got := float64(d.Capacity()) / units.GiB; math.Abs(got-360) > 1e-9 {
		t.Fatalf("capacity = %v GiB, want 360", got)
	}
}

func TestDetailedAgreesWithAnalytic(t *testing.T) {
	// The analytic roofline must agree with the command-level DRAM path
	// within 15 % for a memory-bound stream.
	d := New(hbm.AttAccStack(), 1)
	d.Governor = false
	k := gemv(units.Bytes(64*units.MiB), 1)
	a := d.Execute(k, 1)
	det := d.ExecuteDetailed(k, 1)
	ratio := float64(det.Time) / float64(a.Time)
	if ratio < 0.85 || ratio > 1.20 {
		t.Fatalf("detailed/analytic time ratio = %.3f (detailed %v, analytic %v)", ratio, det.Time, a.Time)
	}
	eRatio := float64(det.Energy.DRAMAccess) / float64(a.Energy.DRAMAccess)
	if eRatio < 0.85 || eRatio > 1.20 {
		t.Fatalf("detailed/analytic DRAM energy ratio = %.3f", eRatio)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{DRAMAccess: 1, Transfer: 2, Compute: 3, Static: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %v", b.Total())
	}
	if b.DRAMShare() != 1.0/6 {
		t.Fatalf("dram share = %v", b.DRAMShare())
	}
	var zero Breakdown
	if zero.DRAMShare() != 0 {
		t.Fatalf("zero breakdown share = %v", zero.DRAMShare())
	}
}

// Property: execution time is monotone non-decreasing in both flops and
// unique bytes, and energy components are non-negative.
func TestExecuteMonotoneProperty(t *testing.T) {
	d := New(hbm.FCPIMStack(), 4)
	f := func(wRaw, pRaw uint16) bool {
		w := units.Bytes(float64(wRaw)*1e6 + 1e6)
		p := float64(pRaw%64) + 1
		r1 := d.Execute(gemv(w, p), 0)
		r2 := d.Execute(gemv(w*2, p), 0)
		r3 := d.Execute(gemv(w, p+1), 0)
		if r1.Energy.DRAMAccess < 0 || r1.Energy.Transfer < 0 || r1.Energy.Compute < 0 || r1.Energy.Static < 0 {
			return false
		}
		return r2.Time >= r1.Time && r3.Time >= r1.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the governor never reports power above budget and never reduces
// execution time.
func TestGovernorProperty(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := float64(pRaw%16) + 1
		gov := New(hbm.FCPIMStack(), 2)
		free := New(hbm.FCPIMStack(), 2)
		free.Governor = false
		k := gemv(units.GB(1), p)
		g := gov.Execute(k, 0)
		f0 := free.Execute(k, 0)
		if float64(g.Power) > hbm.PowerBudgetW*2+1e-9 { // budget × 2 devices
			return false
		}
		return g.Time >= f0.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
