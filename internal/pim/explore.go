package pim

import (
	"fmt"
	"math"

	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/units"
)

// Design-space exploration (§6.1–6.2 as executable methodology).
//
// The paper derives its two PIM devices from three constraints: the die-area
// cap (Eq. 3), the 116 W per-cube power budget, and the data-reuse level the
// target kernel offers (RLP×TLP for FC, TLP for attention). This file
// enumerates the xPyB space and selects the highest-compute configuration
// that is feasible at a given reuse level — reproducing the paper's choices:
// 4P1B for FC (reuse ≥ 4) and 1P2B for attention (reuse ≈ 1).

// DesignPoint is one evaluated xPyB configuration.
type DesignPoint struct {
	Stack hbm.Stack
	// MinInBudgetReuse is the smallest power-of-two data-reuse level at
	// which the configuration's demand power fits the 116 W budget.
	MinInBudgetReuse float64
	// DemandPowerNoReuse is the Fig. 7(c) reuse-1 power.
	DemandPowerNoReuse units.Watts
}

// ComputeRate returns the point's per-stack FPU throughput.
func (d DesignPoint) ComputeRate() units.FLOPSRate { return d.Stack.ComputeRate() }

// Capacity returns the point's per-stack memory capacity.
func (d DesignPoint) Capacity() units.Bytes { return d.Stack.Capacity() }

// EnumerateDesigns evaluates the paper's design vocabulary: 1P2B plus xP1B
// for x = 1..maxFPUsPerBank (the Fig. 7(c) axis), under the given energy
// model. Configurations that fail the area solver are skipped.
func EnumerateDesigns(maxFPUsPerBank int, m EnergyModel) []DesignPoint {
	configs := []hbm.PIMConfig{{FPUs: 1, Banks: 2}}
	for x := 1; x <= maxFPUsPerBank; x++ {
		configs = append(configs, hbm.PIMConfig{FPUs: x, Banks: 1})
	}
	var out []DesignPoint
	for _, c := range configs {
		s := hbm.NewStack(c)
		if s.Validate() != nil || s.FPUs() == 0 {
			continue
		}
		out = append(out, DesignPoint{
			Stack:              s,
			MinInBudgetReuse:   MinReuseWithinBudget(s, m),
			DemandPowerNoReuse: DemandPower(s, m, 1),
		})
	}
	return out
}

// SelectPIM picks the highest-compute design that is power-feasible at the
// kernel's data-reuse level (capacity breaks ties). This is the §6.1/§6.2
// derivation: call it with the FC kernel's reuse (≥ 4 under the evaluated
// parallelism) to obtain FC-PIM, and with attention's reuse (≈ TLP, worst
// case 1) to obtain Attn-PIM.
func SelectPIM(points []DesignPoint, reuse float64) (DesignPoint, error) {
	var best DesignPoint
	found := false
	for _, p := range points {
		if p.MinInBudgetReuse > reuse || math.IsInf(p.MinInBudgetReuse, 1) {
			continue
		}
		if !found ||
			float64(p.ComputeRate()) > float64(best.ComputeRate()) ||
			(float64(p.ComputeRate()) == float64(best.ComputeRate()) &&
				float64(p.Capacity()) > float64(best.Capacity())) {
			best = p
			found = true
		}
	}
	if !found {
		return DesignPoint{}, fmt.Errorf("pim: no xPyB configuration fits the %g W budget at reuse %g",
			hbm.PowerBudgetW, reuse)
	}
	return best, nil
}

// DeriveHybridPIM runs the full §6.1–6.2 derivation and returns the FC-PIM
// and Attn-PIM design points for the given kernel reuse levels.
func DeriveHybridPIM(m EnergyModel, fcReuse, attnReuse float64) (fc, attn DesignPoint, err error) {
	points := EnumerateDesigns(8, m)
	fc, err = SelectPIM(points, fcReuse)
	if err != nil {
		return fc, attn, fmt.Errorf("FC-PIM: %w", err)
	}
	attn, err = SelectPIM(points, attnReuse)
	if err != nil {
		return fc, attn, fmt.Errorf("Attn-PIM: %w", err)
	}
	return fc, attn, nil
}
