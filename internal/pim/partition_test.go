package pim

import (
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/hbm"
)

func TestLayoutOf(t *testing.T) {
	l := LayoutOf(hbm.AttAccStack())
	if l.PseudoChannels != 64 || l.Banks() != 1024 {
		t.Fatalf("AttAcc layout = %+v", l)
	}
	l = LayoutOf(hbm.FCPIMStack())
	if l.Banks() != 768 {
		t.Fatalf("FC-PIM layout banks = %d, want 768", l.Banks())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := StackLayout{}
	if err := bad.Validate(); err == nil {
		t.Fatal("degenerate layout should fail")
	}
}

func TestAssignHeadsBalanced(t *testing.T) {
	// 4 requests × 64 heads over 60 devices (the paper's configuration).
	as, err := AssignHeads(4, 64, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 256 {
		t.Fatalf("assignments = %d, want 256", len(as))
	}
	loads := DeviceLoads(as, 60)
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("head load imbalance: min %d max %d", min, max)
	}
}

func TestAssignHeadsValidation(t *testing.T) {
	if _, err := AssignHeads(0, 4, 4); err == nil {
		t.Error("zero rlp should fail")
	}
	if _, err := AssignHeads(4, 0, 4); err == nil {
		t.Error("zero heads should fail")
	}
	if _, err := AssignHeads(4, 4, 0); err == nil {
		t.Error("zero devices should fail")
	}
}

func TestPartitionKTCoverage(t *testing.T) {
	// One LLaMA-65B head: Kᵀ is headDim(128) × seqLen(2048).
	l := LayoutOf(hbm.HBMPIMStack())
	tiles, err := PartitionKT(128, 2048, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != l.Banks() {
		t.Fatalf("tiles = %d, want one per bank (%d)", len(tiles), l.Banks())
	}
	if err := CoverageError(tiles, 128, 2048); err != nil {
		t.Fatal(err)
	}
	// §6.4: Kᵀ is column-partitioned at the pseudo-channel level — tiles in
	// different pseudo-channels must not share columns.
	for _, a := range tiles {
		for _, b := range tiles {
			if a.PseudoChannel != b.PseudoChannel &&
				a.Cols.Start < b.Cols.End && b.Cols.Start < a.Cols.End &&
				a.Cols.Len() > 0 && b.Cols.Len() > 0 {
				t.Fatalf("pseudo-channels %d and %d share columns", a.PseudoChannel, b.PseudoChannel)
			}
		}
	}
}

func TestPartitionVCoverage(t *testing.T) {
	l := LayoutOf(hbm.HBMPIMStack())
	tiles, err := PartitionV(2048, 128, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := CoverageError(tiles, 2048, 128); err != nil {
		t.Fatal(err)
	}
	// V is row-partitioned at the pseudo-channel level.
	for _, a := range tiles {
		for _, b := range tiles {
			if a.PseudoChannel != b.PseudoChannel &&
				a.Rows.Start < b.Rows.End && b.Rows.Start < a.Rows.End &&
				a.Rows.Len() > 0 && b.Rows.Len() > 0 {
				t.Fatalf("pseudo-channels %d and %d share rows", a.PseudoChannel, b.PseudoChannel)
			}
		}
	}
}

func TestPartitionFCBlock(t *testing.T) {
	// One FC-PIM device's share of a GPT-3 175B layer: 12288 × 410 columns.
	l := LayoutOf(hbm.FCPIMStack())
	tiles, err := PartitionFCBlock(12288, 410, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := CoverageError(tiles, 12288, 410); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionValidation(t *testing.T) {
	l := LayoutOf(hbm.AttAccStack())
	if _, err := PartitionKT(0, 100, l); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := PartitionKT(100, 0, l); err == nil {
		t.Error("zero cols should fail")
	}
	// A tile that cannot fit in a bank is rejected.
	tiny := StackLayout{PseudoChannels: 1, BankGroups: 1, BanksPerGroup: 1, BankBytes: 16}
	if _, err := PartitionKT(100, 100, tiny); err == nil {
		t.Error("over-capacity tile should fail")
	}
}

func TestDistributeFC(t *testing.T) {
	blocks, err := DistributeFC(12288, 30)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	prevEnd := 0
	for i, b := range blocks {
		if b.Device != i {
			t.Fatalf("device order broken at %d", i)
		}
		if b.Rows.Start != prevEnd {
			t.Fatalf("gap before block %d", i)
		}
		prevEnd = b.Rows.End
		total += b.Rows.Len()
	}
	if total != 12288 {
		t.Fatalf("distributed %d rows, want 12288", total)
	}
	if _, err := DistributeFC(0, 30); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := DistributeFC(10, 0); err == nil {
		t.Error("zero devices should fail")
	}
}

// Property: every matrix partition is an exact cover with balanced tiles
// (max/min tile area ratio bounded), for arbitrary shapes.
func TestPartitionCoverProperty(t *testing.T) {
	l := StackLayout{PseudoChannels: 4, BankGroups: 4, BanksPerGroup: 4, BankBytes: 1 << 30}
	f := func(rRaw, cRaw uint8, kt bool) bool {
		rows := int(rRaw)%200 + 16
		cols := int(cRaw)%200 + 16
		var tiles []BankTile
		var err error
		if kt {
			tiles, err = PartitionKT(rows, cols, l)
		} else {
			tiles, err = PartitionV(rows, cols, l)
		}
		if err != nil {
			return false
		}
		return CoverageError(tiles, rows, cols) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: head assignment is a balanced partition for any sizes.
func TestAssignHeadsProperty(t *testing.T) {
	f := func(rlpRaw, headsRaw, devRaw uint8) bool {
		rlp := int(rlpRaw)%16 + 1
		heads := int(headsRaw)%96 + 1
		devices := int(devRaw)%60 + 1
		as, err := AssignHeads(rlp, heads, devices)
		if err != nil || len(as) != rlp*heads {
			return false
		}
		loads := DeviceLoads(as, devices)
		min, max := loads[0], loads[0]
		for _, l := range loads {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
