package pim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnumerateDesigns(t *testing.T) {
	points := EnumerateDesigns(8, DefaultEnergyModel())
	if len(points) != 9 { // 1P2B + 1P1B..8P1B
		t.Fatalf("points = %d, want 9", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		seen[p.Stack.Config.String()] = true
		if p.Stack.DieArea() > 121.0+1e-9 {
			t.Errorf("%s violates the die-area cap", p.Stack.Config)
		}
	}
	for _, want := range []string{"1P2B", "1P1B", "4P1B", "8P1B"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestDerivationReproducesPaperDesigns(t *testing.T) {
	// §6.1–6.2: with FC reuse ≥ 4 (the evaluated parallelism levels) and
	// attention reuse ≈ 1 (no batching reuse, worst-case TLP), the
	// constraint solver must select exactly the paper's devices.
	fc, attn, err := DeriveHybridPIM(DefaultEnergyModel(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fc.Stack.Config.String(); got != "4P1B" {
		t.Errorf("FC-PIM derivation = %s, want 4P1B", got)
	}
	if got := attn.Stack.Config.String(); got != "1P2B" {
		t.Errorf("Attn-PIM derivation = %s, want 1P2B", got)
	}
	// 4P1B is exactly the feasibility frontier at reuse 4: 5P1B would
	// exceed the budget there (§6.1's "maximum capacity achievable").
	points := EnumerateDesigns(8, DefaultEnergyModel())
	for _, p := range points {
		if p.Stack.Config.FPUs == 5 && p.Stack.Config.Banks == 1 {
			if p.MinInBudgetReuse <= 4 {
				t.Errorf("5P1B should not be feasible at reuse 4 (min reuse %v)", p.MinInBudgetReuse)
			}
		}
	}
}

func TestHigherReuseUnlocksDenserDesigns(t *testing.T) {
	// With abundant reuse the frontier moves beyond 4P1B — the §6.5 MoE
	// discussion's implicit headroom.
	points := EnumerateDesigns(8, DefaultEnergyModel())
	at4, err := SelectPIM(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	at64, err := SelectPIM(points, 64)
	if err != nil {
		t.Fatal(err)
	}
	if float64(at64.ComputeRate()) <= float64(at4.ComputeRate()) {
		t.Errorf("reuse 64 frontier (%v) should out-compute reuse 4 (%v)",
			at64.ComputeRate(), at4.ComputeRate())
	}
}

func TestSelectPIMInfeasible(t *testing.T) {
	// A hostile energy model (huge per-byte cost) makes everything
	// infeasible; the selector must fail loudly.
	m := DefaultEnergyModel()
	m.DRAMAccessPJB = 1e6
	m.TransferPJB = 1e6
	points := EnumerateDesigns(8, m)
	if _, err := SelectPIM(points, 1); err == nil {
		t.Fatal("no design should fit an absurd energy model")
	}
}

func TestMinReuseMonotoneInDensity(t *testing.T) {
	// Denser configurations need more reuse to fit the budget.
	points := EnumerateDesigns(8, DefaultEnergyModel())
	byName := map[string]DesignPoint{}
	for _, p := range points {
		byName[p.Stack.Config.String()] = p
	}
	if !(byName["1P2B"].MinInBudgetReuse <= byName["1P1B"].MinInBudgetReuse &&
		byName["1P1B"].MinInBudgetReuse <= byName["4P1B"].MinInBudgetReuse &&
		byName["4P1B"].MinInBudgetReuse <= byName["8P1B"].MinInBudgetReuse) {
		t.Fatalf("min-reuse not monotone: %v %v %v %v",
			byName["1P2B"].MinInBudgetReuse, byName["1P1B"].MinInBudgetReuse,
			byName["4P1B"].MinInBudgetReuse, byName["8P1B"].MinInBudgetReuse)
	}
}

// Property: the selected design is always feasible at the requested reuse and
// no enumerated feasible design has strictly higher compute.
func TestSelectPIMOptimalProperty(t *testing.T) {
	points := EnumerateDesigns(8, DefaultEnergyModel())
	f := func(rRaw uint8) bool {
		reuse := float64(rRaw%64) + 1
		best, err := SelectPIM(points, reuse)
		if err != nil {
			return false
		}
		if best.MinInBudgetReuse > reuse {
			return false
		}
		for _, p := range points {
			if p.MinInBudgetReuse <= reuse &&
				float64(p.ComputeRate()) > float64(best.ComputeRate())+1e-6 {
				return false
			}
		}
		return !math.IsInf(best.MinInBudgetReuse, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
