package pim

import (
	"fmt"

	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/units"
)

// Data partitioning across PIM devices (§6.4).
//
// Attention: heads are distributed across Attn-PIM units, each head instance
// assigned to one HBM device. Within a device, the Kᵀ matrix is partitioned
// column-wise at the pseudo-channel and bank-group levels and row-wise at the
// bank (and multiplier-lane) level; the V matrix conversely. FC weight
// matrices are first divided into 2D blocks across devices, then partitioned
// within a device like Kᵀ.

// StackLayout is the addressing hierarchy of one PIM-enabled stack.
type StackLayout struct {
	PseudoChannels int
	BankGroups     int // per pseudo-channel
	BanksPerGroup  int
	BankBytes      units.Bytes
}

// LayoutOf derives the layout from a stack: 16 banks per pseudo-channel
// (4 bank groups × 4 banks), matching dram.PIMChannelGeometry.
func LayoutOf(s hbm.Stack) StackLayout {
	return StackLayout{
		PseudoChannels: s.Banks() / 16,
		BankGroups:     4,
		BanksPerGroup:  4,
		BankBytes:      units.Bytes(hbm.BankCapacityBytes),
	}
}

// Banks returns the stack's total bank count.
func (l StackLayout) Banks() int { return l.PseudoChannels * l.BankGroups * l.BanksPerGroup }

// Validate checks the layout.
func (l StackLayout) Validate() error {
	if l.PseudoChannels <= 0 || l.BankGroups <= 0 || l.BanksPerGroup <= 0 {
		return fmt.Errorf("pim: degenerate stack layout %+v", l)
	}
	return nil
}

// HeadAssignment places one attention head instance on one device.
type HeadAssignment struct {
	Request int
	Head    int
	Device  int
}

// AssignHeads distributes rlp×heads head instances over devices round-robin
// ("each head assigned to a separate HBM device", wrapping when instances
// outnumber devices). The resulting per-device load is balanced within one.
func AssignHeads(rlp, heads, devices int) ([]HeadAssignment, error) {
	if rlp <= 0 || heads <= 0 {
		return nil, fmt.Errorf("pim: rlp %d and heads %d must be positive", rlp, heads)
	}
	if devices <= 0 {
		return nil, fmt.Errorf("pim: device count %d must be positive", devices)
	}
	out := make([]HeadAssignment, 0, rlp*heads)
	i := 0
	for r := 0; r < rlp; r++ {
		for h := 0; h < heads; h++ {
			out = append(out, HeadAssignment{Request: r, Head: h, Device: i % devices})
			i++
		}
	}
	return out, nil
}

// DeviceLoads counts head instances per device.
func DeviceLoads(assignments []HeadAssignment, devices int) []int {
	loads := make([]int, devices)
	for _, a := range assignments {
		if a.Device >= 0 && a.Device < devices {
			loads[a.Device]++
		}
	}
	return loads
}

// Span is a half-open index interval [Start, End).
type Span struct{ Start, End int }

// Len returns the span's width.
func (s Span) Len() int { return s.End - s.Start }

// split divides [0,n) into k contiguous spans whose lengths differ by ≤ 1.
// Spans beyond n are empty.
func split(n, k int) []Span {
	out := make([]Span, k)
	for i := 0; i < k; i++ {
		out[i] = Span{Start: i * n / k, End: (i + 1) * n / k}
	}
	return out
}

// BankTile is the sub-matrix one bank holds.
type BankTile struct {
	PseudoChannel int
	BankGroup     int
	Bank          int
	Rows          Span
	Cols          Span
}

// Bytes returns the tile footprint in FP16.
func (t BankTile) Bytes() units.Bytes {
	return units.Bytes(t.Rows.Len() * t.Cols.Len() * 2)
}

// matrixPartition tiles a rows×cols matrix over the stack: the outer
// dimension is cut across pseudo-channels then bank groups, the inner across
// banks. outerIsCols selects the Kᵀ scheme (columns outer) versus the V
// scheme (rows outer).
func matrixPartition(rows, cols int, l StackLayout, outerIsCols bool) ([]BankTile, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("pim: matrix %d×%d must be positive", rows, cols)
	}
	outerN, innerN := cols, rows
	if !outerIsCols {
		outerN, innerN = rows, cols
	}
	pcSpans := split(outerN, l.PseudoChannels)
	var tiles []BankTile
	for pc, pcSpan := range pcSpans {
		bgSpans := split(pcSpan.Len(), l.BankGroups)
		for bg, bgRel := range bgSpans {
			bgSpan := Span{Start: pcSpan.Start + bgRel.Start, End: pcSpan.Start + bgRel.End}
			bankSpans := split(innerN, l.BanksPerGroup)
			for b, bankSpan := range bankSpans {
				t := BankTile{PseudoChannel: pc, BankGroup: bg, Bank: b}
				if outerIsCols {
					t.Cols, t.Rows = bgSpan, bankSpan
				} else {
					t.Rows, t.Cols = bgSpan, bankSpan
				}
				if t.Bytes() > l.BankBytes {
					return nil, fmt.Errorf("pim: tile %d×%d (%v) exceeds bank capacity %v",
						t.Rows.Len(), t.Cols.Len(), t.Bytes(), l.BankBytes)
				}
				tiles = append(tiles, t)
			}
		}
	}
	return tiles, nil
}

// PartitionKT tiles one head's Kᵀ matrix (headDim × seqLen) per §6.4:
// column-wise across pseudo-channels and bank groups, row-wise across banks.
func PartitionKT(headDim, seqLen int, l StackLayout) ([]BankTile, error) {
	return matrixPartition(headDim, seqLen, l, true)
}

// PartitionV tiles one head's V matrix (seqLen × headDim) per §6.4:
// row-wise across pseudo-channels and bank groups, column-wise across banks.
func PartitionV(seqLen, headDim int, l StackLayout) ([]BankTile, error) {
	return matrixPartition(seqLen, headDim, l, false)
}

// PartitionFCBlock tiles one device's FC weight block (rows × cols) per
// §6.4: like Kᵀ — column-wise at pseudo-channel/bank-group level, row-wise
// at bank level.
func PartitionFCBlock(rows, cols int, l StackLayout) ([]BankTile, error) {
	return matrixPartition(rows, cols, l, true)
}

// DistributeFC splits a model's FC weights into per-device 2D blocks: the
// weight matrix rows are divided evenly across devices (the "smaller 2D
// blocks, each mapped to an HBM device" of §6.4).
type FCBlock struct {
	Device int
	Rows   Span
}

// DistributeFC assigns row ranges of a rows-tall stack of FC matrices to
// devices; per-device shares differ by at most one row.
func DistributeFC(rows, devices int) ([]FCBlock, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("pim: %d weight rows must be positive", rows)
	}
	if devices <= 0 {
		return nil, fmt.Errorf("pim: device count %d must be positive", devices)
	}
	spans := split(rows, devices)
	out := make([]FCBlock, devices)
	for i, s := range spans {
		out[i] = FCBlock{Device: i, Rows: s}
	}
	return out, nil
}

// CoverageError verifies that tiles exactly cover a rows×cols matrix with no
// overlap, returning nil when the partition is a perfect cover. It is used by
// tests and by callers that construct custom layouts.
func CoverageError(tiles []BankTile, rows, cols int) error {
	covered := make(map[[2]int]int, rows*cols)
	for _, t := range tiles {
		for r := t.Rows.Start; r < t.Rows.End; r++ {
			for c := t.Cols.Start; c < t.Cols.End; c++ {
				if r < 0 || r >= rows || c < 0 || c >= cols {
					return fmt.Errorf("pim: tile element (%d,%d) outside %d×%d", r, c, rows, cols)
				}
				covered[[2]int{r, c}]++
			}
		}
	}
	// Each element covered exactly... overlap shows as count > 1.
	for k, n := range covered {
		if n > 1 {
			return fmt.Errorf("pim: element (%d,%d) covered %d times", k[0], k[1], n)
		}
	}
	if len(covered) != rows*cols {
		return fmt.Errorf("pim: covered %d of %d elements", len(covered), rows*cols)
	}
	return nil
}
