package pim

import (
	"testing"

	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/units"
)

// TestExecuteAttentionMatchesExecute pins the serving fast path's lean
// attention pricing bit-identical to the full Execute on attention-class
// kernels, across stack designs, governor settings, kernel shapes (compute-
// vs DRAM-bound, throttled or not) and device subsets.
func TestExecuteAttentionMatchesExecute(t *testing.T) {
	stacks := map[string]hbm.Stack{
		"attacc": hbm.AttAccStack(),
		"hbmpim": hbm.HBMPIMStack(),
		"fcpim":  hbm.FCPIMStack(),
	}
	for name, stack := range stacks {
		for _, governor := range []bool{true, false} {
			d := New(stack, 60)
			d.Governor = governor
			// Attention reuse ≈ TLP: sweep reuse levels to hit both the
			// bandwidth-bound and throttled regimes.
			for _, unique := range []float64{1 << 20, 1 << 26, 1 << 30, 1 << 34} {
				for _, reuse := range []float64{1, 4, 64, 512} {
					for _, active := range []int{0, 1, 17, 60, 100} {
						k := Kernel{
							Name:        "attention",
							Class:       ClassAttention,
							Flops:       units.FLOPs(unique * reuse),
							UniqueBytes: units.Bytes(unique),
						}
						want := d.Execute(k, active)
						gotT, gotE, gotThr := d.ExecuteAttention(k.Flops, k.UniqueBytes, active)
						if gotT != want.Time {
							t.Fatalf("%s governor=%v unique=%g reuse=%g active=%d: time %v != %v",
								name, governor, unique, reuse, active, gotT, want.Time)
						}
						if gotE != want.Energy.Total() {
							t.Fatalf("%s governor=%v unique=%g reuse=%g active=%d: energy %v != %v",
								name, governor, unique, reuse, active, gotE, want.Energy.Total())
						}
						if gotThr != want.Throttled {
							t.Fatalf("%s governor=%v unique=%g reuse=%g active=%d: throttled %v != %v",
								name, governor, unique, reuse, active, gotThr, want.Throttled)
						}
					}
				}
			}
		}
	}
}
