// Package sched implements PAPI's dynamic parallelism-aware task scheduling
// (§5): the RLP×TLP arithmetic-intensity estimator, the memory-boundedness
// threshold α, initial and runtime token-level scheduling with <|eos|>
// counting, the TLP register, and the offline α calibration procedure.
//
// It also provides the static placement policies of the baselines
// (A100+AttAcc, A100+HBM-PIM, AttAcc-only), so the serving engine is
// parameterised over a single Policy interface.
package sched

import (
	"fmt"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/units"
)

// Placement says where an FC kernel executes. Attention kernels are always
// memory-bound (§4.1) and run on the attention PIM devices in every design,
// so only FC placement is a scheduling decision.
type Placement int

// FC kernel placements.
const (
	// PlacePU runs FC on the high-performance processor's processing units
	// (the GPU tensor cores in our evaluation).
	PlacePU Placement = iota
	// PlaceFCPIM runs FC on the FC-PIM devices.
	PlaceFCPIM
)

// String names the placement.
func (p Placement) String() string {
	if p == PlaceFCPIM {
		return "FC-PIM"
	}
	return "PU"
}

// Policy decides FC placement from the current parallelism.
type Policy interface {
	Name() string
	PlaceFC(rlp, tlp int) Placement
}

// Static policies ------------------------------------------------------------

type staticPolicy struct {
	name  string
	place Placement
}

func (s staticPolicy) Name() string               { return s.name }
func (s staticPolicy) PlaceFC(_, _ int) Placement { return s.place }

// AlwaysPU returns the AttAcc-style static policy: FC on the GPU, always.
func AlwaysPU() Policy { return staticPolicy{name: "static-pu", place: PlacePU} }

// AlwaysPIM returns the PIM-only static policy (AttAcc-only, IANUS): FC on
// PIM, always.
func AlwaysPIM() Policy { return staticPolicy{name: "static-pim", place: PlaceFCPIM} }

// Dynamic policy --------------------------------------------------------------

// Dynamic is PAPI's parallelism-aware policy: estimate AI as RLP×TLP (Eq. 2)
// and compare against the calibrated threshold α (§5.2).
type Dynamic struct {
	// Alpha is the memory-boundedness threshold: estimated AI ≥ Alpha means
	// compute-bound, so FC goes to the PUs; below it FC goes to FC-PIM.
	Alpha float64
}

// Name implements Policy.
func (d Dynamic) Name() string { return "papi-dynamic" }

// PlaceFC implements Policy using the Eq. (2) estimator.
func (d Dynamic) PlaceFC(rlp, tlp int) Placement {
	if model.EstimatedAI(rlp, tlp) >= d.Alpha {
		return PlacePU
	}
	return PlaceFCPIM
}

// Runtime scheduler ------------------------------------------------------------

// Event records one scheduling step, for traces like Fig. 5(d).
type Event struct {
	Iteration   int
	RLP, TLP    int
	EstimatedAI float64
	Placement   Placement
	Rescheduled bool // placement changed versus the previous iteration
}

// Scheduler is the runtime incarnation of §5.2: it owns the RLP counter
// (updated by counting <|eos|> tokens after each decoding), the TLP register
// (written by the host CPU), and emits a placement per iteration.
type Scheduler struct {
	policy Policy

	rlp int
	tlp int

	iteration   int
	last        Placement
	hasLast     bool
	reschedules int
	trace       []Event
	traceCap    int
}

// NewScheduler builds a runtime scheduler around a policy with the initial
// parallelism configuration (the "initial scheduling" step of §5.2.1:
// RLP = batch size, TLP = system speculation length).
func NewScheduler(p Policy, rlp, tlp int) (*Scheduler, error) {
	if rlp <= 0 || tlp <= 0 {
		return nil, fmt.Errorf("sched: initial RLP %d / TLP %d must be positive", rlp, tlp)
	}
	return &Scheduler{policy: p, rlp: rlp, tlp: tlp, traceCap: 4096}, nil
}

// RLP returns the current request-level parallelism.
func (s *Scheduler) RLP() int { return s.rlp }

// TLP returns the current token-level parallelism.
func (s *Scheduler) TLP() int { return s.tlp }

// Reschedules returns how many placement changes have occurred.
func (s *Scheduler) Reschedules() int { return s.reschedules }

// Trace returns the recorded scheduling events (capped).
func (s *Scheduler) Trace() []Event { return s.trace }

// SetTraceCap bounds the recorded scheduling trace; 0 disables recording.
// The serving engine disables it — the trace duplicates what Result already
// carries (RLPTrace, IterStats) and would otherwise grow per iteration on
// the decode hot path.
func (s *Scheduler) SetTraceCap(n int) {
	if n < 0 {
		n = 0
	}
	s.traceCap = n
}

// Repeat advances the scheduler over k further iterations whose scheduling
// inputs are unchanged — the serving fast path's macro-stepping, where RLP
// and TLP are frozen between scheduling events, so every interior iteration
// would Decide the same placement with no reschedule. It must follow a
// Decide call; the iteration counter, trace (when enabled) and reschedule
// count end up exactly as k Decide calls would leave them.
func (s *Scheduler) Repeat(k int) {
	if k <= 0 {
		return
	}
	if len(s.trace) >= s.traceCap {
		s.iteration += k
		return
	}
	for ; k > 0; k-- {
		if len(s.trace) < s.traceCap {
			s.trace = append(s.trace, Event{
				Iteration:   s.iteration,
				RLP:         s.rlp,
				TLP:         s.tlp,
				EstimatedAI: model.EstimatedAI(s.rlp, s.tlp),
				Placement:   s.last,
			})
		}
		s.iteration++
	}
}

// SetTLP models the host CPU writing the dedicated TLP register (§5.2.2).
func (s *Scheduler) SetTLP(tlp int) error {
	if tlp <= 0 {
		return fmt.Errorf("sched: TLP %d must be positive", tlp)
	}
	s.tlp = tlp
	return nil
}

// ObserveEOS counts <|eos|> tokens in the gathered output vector of the last
// decoding iteration and releases the corresponding RLP (§5.2.2 steps 1–2).
func (s *Scheduler) ObserveEOS(count int) error {
	if count < 0 {
		return fmt.Errorf("sched: negative eos count %d", count)
	}
	if count > s.rlp {
		return fmt.Errorf("sched: eos count %d exceeds RLP %d", count, s.rlp)
	}
	s.rlp -= count
	return nil
}

// Evict releases RLP for requests preempted out of the running batch — the
// admission layer's evict-and-requeue under KV pressure. Unlike ObserveEOS,
// the evicted requests are not finished: they re-enter the pending queue and
// will raise RLP again through AdmitRequests when re-admitted.
func (s *Scheduler) Evict(count int) error {
	if count < 0 {
		return fmt.Errorf("sched: negative evict count %d", count)
	}
	if count > s.rlp {
		return fmt.Errorf("sched: evict count %d exceeds RLP %d", count, s.rlp)
	}
	s.rlp -= count
	return nil
}

// AdmitRequests raises RLP when new requests join the running batch (mixed
// continuous batching).
func (s *Scheduler) AdmitRequests(count int) error {
	if count < 0 {
		return fmt.Errorf("sched: negative admit count %d", count)
	}
	s.rlp += count
	return nil
}

// Decide performs §5.2.2 steps 3–4: predict the next iteration's arithmetic
// intensity from RLP×TLP and choose the FC placement, recording whether this
// is a reschedule.
func (s *Scheduler) Decide() Event {
	p := s.policy.PlaceFC(s.rlp, s.tlp)
	ev := Event{
		Iteration:   s.iteration,
		RLP:         s.rlp,
		TLP:         s.tlp,
		EstimatedAI: model.EstimatedAI(s.rlp, s.tlp),
		Placement:   p,
	}
	if s.hasLast && p != s.last {
		ev.Rescheduled = true
		s.reschedules++
	}
	s.last, s.hasLast = p, true
	s.iteration++
	if len(s.trace) < s.traceCap {
		s.trace = append(s.trace, ev)
	}
	return ev
}

// Offline α calibration --------------------------------------------------------

// calibrationMax is the highest parallelism level the offline calibration
// considers.
const calibrationMax = 4096

// gpuWinsAt reports whether the PUs beat the FC-PIM units on the FC kernel
// of one decoding iteration at parallelism p.
func gpuWinsAt(cfg model.Config, node *gpu.Node, fcpim *pim.Device, p int) bool {
	k := cfg.FCIterationKernel(p)
	gpuT := node.Execute(k.Flops, k.WeightBytes+k.ActivationBytes).Time
	pimT := fcpim.Execute(pim.Kernel{
		Name:        "fc",
		Flops:       k.Flops,
		UniqueBytes: k.WeightBytes,
	}, 0).Time
	return gpuT < pimT
}

// Calibrate determines the memory-boundedness threshold α by offline
// evaluation (§5.2.1): run the FC kernel of one decoding iteration on both
// the PUs and the FC-PIM units and return the smallest RLP×TLP at which the
// PUs win. The GPU-vs-PIM crossover is monotone in the parallelism — FC
// arithmetic intensity grows linearly with tokens in flight while the PIM
// side stays weight-streaming-bound — so the threshold is found by binary
// search (12 kernel evaluations instead of a linear scan of up to 4096; a
// test pins agreement with the scan on every evaluation model). A custom
// device whose GPU-vs-PIM sign changes more than once would bisect to *a*
// crossover rather than the first — use CalibrationSweep to inspect such
// hardware directly.
func Calibrate(cfg model.Config, node *gpu.Node, fcpim *pim.Device) float64 {
	if gpuWinsAt(cfg, node, fcpim, 1) {
		return 1
	}
	if !gpuWinsAt(cfg, node, fcpim, calibrationMax) {
		return calibrationMax
	}
	// Invariant: the GPU loses at lo and wins at hi.
	lo, hi := 1, calibrationMax
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if gpuWinsAt(cfg, node, fcpim, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return float64(hi)
}

// calibrateLinear is the reference linear scan Calibrate replaced; the
// calibration test pins the binary search against it.
func calibrateLinear(cfg model.Config, node *gpu.Node, fcpim *pim.Device) float64 {
	for p := 1; p <= calibrationMax; p++ {
		if gpuWinsAt(cfg, node, fcpim, p) {
			return float64(p)
		}
	}
	return calibrationMax
}

// CalibrationTable reports the per-parallelism execution times used to pick
// α; cmd/papicalib prints it.
type CalibrationRow struct {
	Parallelism int
	GPUTime     units.Seconds
	PIMTime     units.Seconds
	Winner      Placement
}

// CalibrationSweep evaluates both targets over the given parallelism levels.
func CalibrationSweep(cfg model.Config, node *gpu.Node, fcpim *pim.Device, levels []int) []CalibrationRow {
	rows := make([]CalibrationRow, 0, len(levels))
	for _, p := range levels {
		k := cfg.FCIterationKernel(p)
		gpuT := node.Execute(k.Flops, k.WeightBytes+k.ActivationBytes).Time
		pimT := fcpim.Execute(pim.Kernel{Name: "fc", Flops: k.Flops, UniqueBytes: k.WeightBytes}, 0).Time
		w := PlaceFCPIM
		if gpuT < pimT {
			w = PlacePU
		}
		rows = append(rows, CalibrationRow{Parallelism: p, GPUTime: gpuT, PIMTime: pimT, Winner: w})
	}
	return rows
}

// Decision cost (§8) ------------------------------------------------------------

// CostedPolicy is a Policy whose placement decision itself takes time. PAPI's
// RLP×TLP predictor is effectively free; prior work's search-based schedulers
// are not (SpecPIM's allocation runs 50 rounds of a genetic algorithm plus
// 10,000 MCTS leaf searches — practical offline, prohibitive per-iteration).
type CostedPolicy interface {
	Policy
	DecisionCost() units.Seconds
}

// Costed wraps a policy with a fixed per-decision latency so the serving
// engine can charge scheduling overhead on the critical path.
type Costed struct {
	Policy
	Cost units.Seconds
}

// DecisionCost implements CostedPolicy.
func (c Costed) DecisionCost() units.Seconds { return c.Cost }

// Name qualifies the wrapped policy's name.
func (c Costed) Name() string { return c.Policy.Name() + "+cost" }
