package sched

import (
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
)

func TestStaticPolicies(t *testing.T) {
	if AlwaysPU().PlaceFC(1, 1) != PlacePU || AlwaysPU().PlaceFC(128, 8) != PlacePU {
		t.Fatal("AlwaysPU must always choose PU")
	}
	if AlwaysPIM().PlaceFC(1, 1) != PlaceFCPIM || AlwaysPIM().PlaceFC(128, 8) != PlaceFCPIM {
		t.Fatal("AlwaysPIM must always choose PIM")
	}
	if AlwaysPU().Name() == "" || AlwaysPIM().Name() == "" {
		t.Fatal("policies need names")
	}
}

func TestDynamicThreshold(t *testing.T) {
	d := Dynamic{Alpha: 28}
	if d.PlaceFC(4, 4) != PlaceFCPIM { // 16 < 28
		t.Fatal("16 < α should go to FC-PIM")
	}
	if d.PlaceFC(16, 2) != PlacePU { // 32 >= 28
		t.Fatal("32 ≥ α should go to PU")
	}
	if d.PlaceFC(28, 1) != PlacePU { // boundary: ≥ is PU
		t.Fatal("boundary goes to PU")
	}
}

func TestSchedulerLifecycle(t *testing.T) {
	// Fig. 5(d): RLP 5 → 4 → 4 → 3 → 2, TLP 1. With α between 2 and 5 the
	// placement flips from PU to PIM as requests finish.
	s, err := NewScheduler(Dynamic{Alpha: 4}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	eos := []int{1, 0, 1, 1} // after iterations 1..4
	var placements []Placement
	placements = append(placements, s.Decide().Placement) // RLP 5
	for _, e := range eos {
		if err := s.ObserveEOS(e); err != nil {
			t.Fatal(err)
		}
		placements = append(placements, s.Decide().Placement)
	}
	want := []Placement{PlacePU, PlacePU, PlacePU, PlaceFCPIM, PlaceFCPIM} // 5,4,4,3,2
	for i := range want {
		if placements[i] != want[i] {
			t.Fatalf("iteration %d: placement %v, want %v (trace %+v)", i, placements[i], want[i], s.Trace())
		}
	}
	if s.Reschedules() != 1 {
		t.Fatalf("reschedules = %d, want 1", s.Reschedules())
	}
	if s.RLP() != 2 {
		t.Fatalf("final RLP = %d, want 2", s.RLP())
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(AlwaysPU(), 0, 1); err == nil {
		t.Fatal("zero RLP should fail")
	}
	if _, err := NewScheduler(AlwaysPU(), 1, 0); err == nil {
		t.Fatal("zero TLP should fail")
	}
	s, _ := NewScheduler(AlwaysPU(), 4, 1)
	if err := s.ObserveEOS(-1); err == nil {
		t.Fatal("negative eos should fail")
	}
	if err := s.ObserveEOS(5); err == nil {
		t.Fatal("eos beyond RLP should fail")
	}
	if err := s.SetTLP(0); err == nil {
		t.Fatal("zero TLP register write should fail")
	}
	if err := s.AdmitRequests(-1); err == nil {
		t.Fatal("negative admission should fail")
	}
}

func TestTLPRegister(t *testing.T) {
	// §5.2.2: TLP changes arrive via a dedicated register write.
	s, _ := NewScheduler(Dynamic{Alpha: 28}, 4, 1)
	if got := s.Decide().Placement; got != PlaceFCPIM { // 4 < 28
		t.Fatalf("placement %v, want FC-PIM", got)
	}
	if err := s.SetTLP(8); err != nil {
		t.Fatal(err)
	}
	if got := s.Decide().Placement; got != PlacePU { // 32 ≥ 28
		t.Fatalf("after TLP=8, placement %v, want PU", got)
	}
	if s.Reschedules() != 1 {
		t.Fatalf("reschedules = %d, want 1", s.Reschedules())
	}
}

func TestContinuousBatchingAdmission(t *testing.T) {
	s, _ := NewScheduler(Dynamic{Alpha: 10}, 4, 1)
	if s.Decide().Placement != PlaceFCPIM {
		t.Fatal("RLP 4 should start on PIM")
	}
	if err := s.AdmitRequests(12); err != nil {
		t.Fatal(err)
	}
	if s.RLP() != 16 {
		t.Fatalf("RLP = %d, want 16", s.RLP())
	}
	if s.Decide().Placement != PlacePU {
		t.Fatal("RLP 16 should move to PU")
	}
}

func TestCalibrateCrossover(t *testing.T) {
	// The calibrated α for GPT-3 175B with 6 A100s and 30 FC-PIM devices
	// must land in the paper-consistent window: above AttAcc's ~9 crossover
	// (Fig. 4 shows PIM winning at batch 4–8) and below the GPU roofline
	// ridge (~161).
	cfg := model.GPT3_175B()
	node := gpu.DefaultNode()
	fcpim := pim.New(hbm.FCPIMStack(), 30)
	alpha := Calibrate(cfg, node, fcpim)
	if alpha < 12 || alpha > 64 {
		t.Fatalf("calibrated α = %v, want within (12, 64)", alpha)
	}
}

func TestCalibrationSweepConsistent(t *testing.T) {
	cfg := model.LLaMA65B()
	node := gpu.DefaultNode()
	fcpim := pim.New(hbm.FCPIMStack(), 30)
	alpha := Calibrate(cfg, node, fcpim)
	rows := CalibrationSweep(cfg, node, fcpim, []int{1, 2, 4, 8, 16, 32, 64, 128})
	for _, r := range rows {
		wantWinner := PlaceFCPIM
		if float64(r.Parallelism) >= alpha {
			wantWinner = PlacePU
		}
		if r.Winner != wantWinner {
			t.Errorf("p=%d: winner %v, want %v (α=%v, gpu %v pim %v)",
				r.Parallelism, r.Winner, wantWinner, alpha, r.GPUTime, r.PIMTime)
		}
	}
}

func TestPlacementString(t *testing.T) {
	if PlacePU.String() != "PU" || PlaceFCPIM.String() != "FC-PIM" {
		t.Fatal("placement names wrong")
	}
}

// Property: the dynamic decision is monotone — once parallelism is high
// enough for the PUs, more parallelism never flips it back to PIM.
func TestDynamicMonotoneProperty(t *testing.T) {
	d := Dynamic{Alpha: 28}
	f := func(rlpRaw, tlpRaw uint8) bool {
		rlp := int(rlpRaw)%128 + 1
		tlp := int(tlpRaw)%8 + 1
		p := d.PlaceFC(rlp, tlp)
		if p == PlacePU {
			return d.PlaceFC(rlp+1, tlp) == PlacePU && d.PlaceFC(rlp, tlp+1) == PlacePU
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RLP bookkeeping is conserved: admissions minus eos equals the
// delta.
func TestRLPConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _ := NewScheduler(AlwaysPU(), 10, 1)
		expected := 10
		for _, op := range ops {
			if op%2 == 0 {
				n := int(op % 5)
				if err := s.AdmitRequests(n); err != nil {
					return false
				}
				expected += n
			} else {
				n := int(op % 3)
				if n > s.RLP() {
					continue
				}
				if err := s.ObserveEOS(n); err != nil {
					return false
				}
				expected -= n
			}
		}
		return s.RLP() == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCostedPolicy(t *testing.T) {
	base := Dynamic{Alpha: 28}
	c := Costed{Policy: base, Cost: 1}
	if c.DecisionCost() != 1 {
		t.Fatal("cost not reported")
	}
	if c.Name() != "papi-dynamic+cost" {
		t.Fatalf("name = %q", c.Name())
	}
	// Placement behaviour is unchanged by the wrapper.
	if c.PlaceFC(4, 4) != base.PlaceFC(4, 4) || c.PlaceFC(16, 2) != base.PlaceFC(16, 2) {
		t.Fatal("wrapper changed placement decisions")
	}
	// The wrapper satisfies the optional interface.
	var _ CostedPolicy = c
}
