package sched

import (
	"testing"

	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
)

// TestCalibrateBinarySearchMatchesLinearScan pins the binary-searched α
// against the reference linear scan on every evaluation model: the
// GPU-vs-PIM crossover must be the same threshold either way.
func TestCalibrateBinarySearchMatchesLinearScan(t *testing.T) {
	node := gpu.DefaultNode()
	fcpim := pim.New(hbm.FCPIMStack(), 30)
	for _, cfg := range model.All() {
		got := Calibrate(cfg, node, fcpim)
		want := calibrateLinear(cfg, node, fcpim)
		if got != want {
			t.Errorf("%s: binary-search α = %v, linear-scan α = %v", cfg.Name, got, want)
		}
	}
}

// TestCalibrateCrossoverMonotone verifies the assumption the binary search
// rests on: once the GPU wins at some parallelism it keeps winning at every
// higher level (checked on a coarse grid around the threshold).
func TestCalibrateCrossoverMonotone(t *testing.T) {
	node := gpu.DefaultNode()
	fcpim := pim.New(hbm.FCPIMStack(), 30)
	for _, cfg := range model.All() {
		alpha := int(Calibrate(cfg, node, fcpim))
		for _, p := range []int{alpha, alpha + 1, alpha + 7, 2 * alpha, 4096} {
			if p > 4096 {
				continue
			}
			if !gpuWinsAt(cfg, node, fcpim, p) {
				t.Errorf("%s: GPU wins at α = %d but loses at %d — crossover not monotone", cfg.Name, alpha, p)
			}
		}
		if alpha > 1 && gpuWinsAt(cfg, node, fcpim, alpha-1) {
			t.Errorf("%s: GPU already wins below α = %d", cfg.Name, alpha)
		}
	}
}

// TestSchedulerRepeat pins Repeat against the equivalent run of Decide
// calls: same iteration counter, same trace, same reschedule count.
func TestSchedulerRepeat(t *testing.T) {
	mk := func() *Scheduler {
		s, err := NewScheduler(Dynamic{Alpha: 28}, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	a := mk()
	for i := 0; i < 5; i++ {
		a.Decide()
	}

	b := mk()
	b.Decide()
	b.Repeat(4)

	if a.iteration != b.iteration {
		t.Fatalf("iteration counter: Decide×5 = %d, Decide+Repeat(4) = %d", a.iteration, b.iteration)
	}
	if a.Reschedules() != b.Reschedules() {
		t.Fatalf("reschedules: %d vs %d", a.Reschedules(), b.Reschedules())
	}
	ta, tb := a.Trace(), b.Trace()
	if len(ta) != len(tb) {
		t.Fatalf("trace length %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace[%d]: %+v vs %+v", i, ta[i], tb[i])
		}
	}

	// With the trace disabled, Repeat still advances the counter.
	c := mk()
	c.SetTraceCap(0)
	c.Decide()
	c.Repeat(9)
	if c.iteration != 10 {
		t.Fatalf("iteration counter with trace off: %d, want 10", c.iteration)
	}
	if len(c.Trace()) != 0 {
		t.Fatalf("trace recorded despite cap 0")
	}
}
