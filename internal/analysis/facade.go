package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// A LookupSpec names one registry-lookup function: calls to it with a string
// literal are checked against the registry's statically-extracted name set.
type LookupSpec struct {
	Pkg      string // defining package: "/suffix" or exact import path
	Func     string
	Arg      int    // index of the name argument
	Registry string // key into FacadeConfig.Registries
}

// A RegistrySpec says where a registry's names are defined and how to read
// them out of the AST.
type RegistrySpec struct {
	Pkg  string
	Func string
	// Kind selects the extractor: "literals" (Name:/ID: fields and
	// positional leading strings in composite literals), "calls" (same,
	// but also following calls into same-package constructors), or
	// "switch" (case-clause strings).
	Kind string
}

// FacadeConfig parameterizes the facade analyzer so its tests can run it
// over fixture modules.
type FacadeConfig struct {
	// RootPath is the facade package (papi.go's package).
	RootPath string
	// InternalPrefix is the import-path prefix of the packages the facade
	// re-exports ("<module>/internal/").
	InternalPrefix string
	Lookups        []LookupSpec
	Registries     map[string]RegistrySpec
}

// DefaultFacadeConfig is this repo's facade: papi.go over internal/, and the
// five registries its CLIs and examples resolve names against.
func DefaultFacadeConfig() FacadeConfig {
	return FacadeConfig{
		RootPath:       "github.com/papi-sim/papi",
		InternalPrefix: "github.com/papi-sim/papi/internal/",
		Lookups: []LookupSpec{
			{"/internal/experiments", "FigureByID", 0, "figures"},
			{"/internal/workload", "ScenarioByName", 0, "scenarios"},
			{"/internal/workload", "ByName", 0, "datasets"},
			{"/internal/workload", "ClassByName", 0, "classes"},
			{"/internal/cluster", "RouterByName", 0, "routers"},
			{"/internal/cluster", "NewByName", 0, "designs"},
			{"/internal/design", "ByName", 0, "designs"},
			{"/internal/core", "ByName", 0, "designs"},
			{"/internal/model", "ByName", 0, "models"},
			{"github.com/papi-sim/papi", "SystemByName", 0, "designs"},
			{"github.com/papi-sim/papi", "DesignByName", 0, "designs"},
			{"github.com/papi-sim/papi", "NewClusterByName", 0, "designs"},
			{"github.com/papi-sim/papi", "ScenarioByName", 0, "scenarios"},
			{"github.com/papi-sim/papi", "DatasetByName", 0, "datasets"},
			{"github.com/papi-sim/papi", "ModelByName", 0, "models"},
			{"github.com/papi-sim/papi", "RouterByName", 0, "routers"},
			{"github.com/papi-sim/papi", "ClassByName", 0, "classes"},
			{"github.com/papi-sim/papi", "Simulate", 0, "designs"},
			{"github.com/papi-sim/papi", "Simulate", 1, "models"},
			{"github.com/papi-sim/papi", "Simulate", 2, "datasets"},
		},
		Registries: map[string]RegistrySpec{
			"figures":   {"/internal/experiments", "Figures", "literals"},
			"scenarios": {"/internal/workload", "Scenarios", "literals"},
			"datasets":  {"/internal/workload", "ByName", "switch"},
			"classes":   {"/internal/workload", "ClassByName", "switch"},
			"routers":   {"/internal/cluster", "RouterByName", "switch"},
			"designs":   {"/internal/design", "Registry", "calls"},
			"models":    {"/internal/model", "ByName", "calls"},
		},
	}
}

// NewFacade returns the facade analyzer: papi.go re-exports must originate
// in internal/ with matching signatures, and registry-name string literals
// anywhere in the module must resolve against the registries they index.
func NewFacade(cfg FacadeConfig) *Analyzer {
	cache := map[string]map[string]bool{}
	return &Analyzer{
		Name: "facade",
		Doc: "verify papi.go re-exports resolve to their internal/ origins with matching " +
			"signatures, and that string literals passed to registry lookups (figures, scenarios, " +
			"designs, datasets, models, routers) name registered entries",
		AppliesTo: func(path string) bool {
			return path == cfg.RootPath || strings.HasPrefix(path, cfg.RootPath+"/")
		},
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() == cfg.RootPath {
				checkFacadeOrigins(pass, cfg)
			}
			return checkRegistryLiterals(pass, cfg, cache)
		},
	}
}

// --- re-export origin checks -------------------------------------------------

// checkFacadeOrigins requires every exported declaration of the facade
// package to reference at least one internal/ symbol (a pure local
// definition is facade drift: a copy that can diverge from its origin), and
// pure delegation wrappers to have signatures identical to their targets.
func checkFacadeOrigins(pass *Pass, cfg FacadeConfig) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if !decl.Name.IsExported() || decl.Recv != nil {
					continue
				}
				if !mentionsInternal(pass, decl, cfg.InternalPrefix) {
					pass.Reportf(decl.Pos(), "origin",
						"exported %s does not reference any %s package; facade symbols must re-export their internal origin",
						decl.Name.Name, cfg.InternalPrefix)
					continue
				}
				checkDelegationSignature(pass, cfg, decl)
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					checkFacadeSpec(pass, cfg, spec)
				}
			}
		}
	}
}

func checkFacadeSpec(pass *Pass, cfg FacadeConfig, spec ast.Spec) {
	switch spec := spec.(type) {
	case *ast.TypeSpec:
		if !spec.Name.IsExported() {
			return
		}
		if spec.Assign == 0 {
			pass.Reportf(spec.Pos(), "origin",
				"exported type %s is defined locally; the facade may only alias internal types (type %s = internal…)",
				spec.Name.Name, spec.Name.Name)
			return
		}
		if !mentionsInternal(pass, spec.Type, cfg.InternalPrefix) {
			pass.Reportf(spec.Pos(), "origin",
				"exported alias %s does not resolve to an %s type", spec.Name.Name, cfg.InternalPrefix)
		}
	case *ast.ValueSpec:
		exported := false
		for _, n := range spec.Names {
			exported = exported || n.IsExported()
		}
		if !exported || len(spec.Values) == 0 {
			return
		}
		for _, v := range spec.Values {
			if !mentionsInternal(pass, v, cfg.InternalPrefix) {
				pass.Reportf(spec.Pos(), "origin",
					"exported value %s is not derived from an %s symbol", spec.Names[0].Name, cfg.InternalPrefix)
			}
		}
	}
}

// mentionsInternal reports whether node references any symbol whose package
// path starts with prefix.
func mentionsInternal(pass *Pass, node ast.Node, prefix string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if strings.HasPrefix(obj.Pkg().Path(), prefix) {
			found = true
		}
		// Aliases hide the defining package behind the facade's own path;
		// resolve the aliased type's origin too.
		if tn, ok := obj.(*types.TypeName); ok && tn.IsAlias() {
			if named, ok := types.Unalias(tn.Type()).(*types.Named); ok {
				if p := named.Obj().Pkg(); p != nil && strings.HasPrefix(p.Path(), prefix) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkDelegationSignature compares a pure pass-through wrapper — a body
// that is exactly `return internal.F(p1, p2, …)` over the wrapper's own
// parameters in order — against its target's signature. Any widening,
// narrowing, or reordering that still happens to compile is drift.
func checkDelegationSignature(pass *Pass, cfg FacadeConfig, decl *ast.FuncDecl) {
	if decl.Body == nil || len(decl.Body.List) != 1 {
		return
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil || !strings.HasPrefix(callee.Pkg().Path(), cfg.InternalPrefix) {
		return
	}
	// Pass-through means every argument is exactly the wrapper's parameter
	// list, in order and unconverted.
	params := flattenParams(decl)
	if len(call.Args) != len(params) {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != pass.TypesInfo.ObjectOf(params[i]) {
			return
		}
	}
	wsig, ok := pass.TypesInfo.ObjectOf(decl.Name).Type().(*types.Signature)
	if !ok {
		return
	}
	csig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	if !types.Identical(wsig.Params(), csig.Params()) || !resultsCompatible(wsig.Results(), csig.Results()) {
		pass.Reportf(decl.Pos(), "signature",
			"facade wrapper %s has signature %s but its origin %s.%s has %s",
			decl.Name.Name, types.TypeString(wsig, types.RelativeTo(pass.Pkg)),
			callee.Pkg().Name(), callee.Name(), types.TypeString(csig, types.RelativeTo(pass.Pkg)))
	}
}

// resultsCompatible accepts identical result tuples, and the one deliberate
// divergence a facade makes: widening a concrete internal return type to an
// interface it implements (e.g. *workload.PoissonProcess → ArrivalProcess).
func resultsCompatible(w, c *types.Tuple) bool {
	if types.Identical(w, c) {
		return true
	}
	if w.Len() != c.Len() {
		return false
	}
	for i := 0; i < w.Len(); i++ {
		wt, ct := w.At(i).Type(), c.At(i).Type()
		if types.Identical(wt, ct) {
			continue
		}
		if types.IsInterface(wt) && types.AssignableTo(ct, wt) {
			continue
		}
		return false
	}
	return true
}

// flattenParams lists a function's parameter identifiers in order.
func flattenParams(decl *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if decl.Type.Params == nil {
		return out
	}
	for _, f := range decl.Type.Params.List {
		out = append(out, f.Names...)
	}
	return out
}

// --- registry literal checks -------------------------------------------------

// checkRegistryLiterals verifies every constant-string argument to a known
// registry lookup against the registry's extracted name set.
func checkRegistryLiterals(pass *Pass, cfg FacadeConfig, cache map[string]map[string]bool) error {
	for _, file := range pass.Files {
		var inspectErr error
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lk := range cfg.Lookups {
				if !calleeMatches(pass, call, lk) || lk.Arg >= len(call.Args) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[call.Args[lk.Arg]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				name := constant.StringVal(tv.Value)
				names, err := registryNames(pass, cfg, cache, lk.Registry)
				if err != nil {
					inspectErr = err
					return false
				}
				if names == nil {
					continue // registry package not in this load
				}
				if !names[name] {
					pass.Reportf(call.Args[lk.Arg].Pos(), "registry",
						"%q does not name a registered %s (known: %s)", name, lk.Registry, sortedNames(names))
				}
			}
			return true
		})
		if inspectErr != nil {
			return inspectErr
		}
	}
	return nil
}

// calleeMatches reports whether call invokes the lookup function lk names.
func calleeMatches(pass *Pass, call *ast.CallExpr, lk LookupSpec) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Name() != lk.Func {
		return false
	}
	return pkgMatches(fn.Pkg().Path(), lk.Pkg)
}

// pkgMatches matches a package path against a "/suffix" or exact spec.
func pkgMatches(path, spec string) bool {
	if strings.HasPrefix(spec, "/") {
		return strings.HasSuffix(path, spec)
	}
	return path == spec
}

// registryNames extracts (and caches) one registry's name set. A nil map
// with nil error means the defining package is not part of this load.
func registryNames(pass *Pass, cfg FacadeConfig, cache map[string]map[string]bool, registry string) (map[string]bool, error) {
	if names, ok := cache[registry]; ok {
		return names, nil
	}
	spec, ok := cfg.Registries[registry]
	if !ok {
		return nil, fmt.Errorf("facade: no registry spec for %q", registry)
	}
	var defPkg *Package
	for _, p := range pass.All {
		if pkgMatches(p.Path, spec.Pkg) {
			defPkg = p
			break
		}
	}
	if defPkg == nil {
		cache[registry] = nil
		return nil, nil
	}
	fn := findFunc(defPkg, spec.Func)
	if fn == nil {
		return nil, fmt.Errorf("facade: registry %s: no function %s in %s", registry, spec.Func, defPkg.Path)
	}
	names := map[string]bool{}
	switch spec.Kind {
	case "switch":
		collectSwitchStrings(defPkg, fn, names)
	case "literals":
		collectLiteralNames(defPkg, fn, names, false, map[string]bool{})
	case "calls":
		collectLiteralNames(defPkg, fn, names, true, map[string]bool{})
	default:
		return nil, fmt.Errorf("facade: registry %s: unknown extractor kind %q", registry, spec.Kind)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("facade: registry %s: extracted no names from %s.%s — extractor out of date with the registry's shape",
			registry, defPkg.Path, spec.Func)
	}
	cache[registry] = names
	return names, nil
}

// findFunc locates a top-level function declaration by name.
func findFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}

// collectSwitchStrings gathers the string constants of every case clause.
func collectSwitchStrings(pkg *Package, fn *ast.FuncDecl, names map[string]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if s, ok := constString(pkg, e); ok {
				names[s] = true
			}
		}
		return true
	})
}

// collectLiteralNames gathers registry names from composite literals: the
// value of a Name:/ID: field, or a leading positional string. With follow
// set it also descends into same-package functions called from the body
// (design/model registries build entries via constructors).
func collectLiteralNames(pkg *Package, fn *ast.FuncDecl, names map[string]bool, follow bool, seen map[string]bool) {
	if seen[fn.Name.Name] || len(seen) > 64 {
		return
	}
	seen[fn.Name.Name] = true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for i, elt := range n.Elts {
				switch elt := elt.(type) {
				case *ast.KeyValueExpr:
					if key, ok := elt.Key.(*ast.Ident); ok && (key.Name == "Name" || key.Name == "ID") {
						if s, ok := constString(pkg, elt.Value); ok {
							names[s] = true
						}
					}
				default:
					if i == 0 {
						if s, ok := constString(pkg, elt); ok {
							names[s] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if !follow {
				return true
			}
			var callee types.Object
			switch f := n.Fun.(type) {
			case *ast.Ident:
				callee = pkg.Info.Uses[f]
			case *ast.SelectorExpr:
				callee = pkg.Info.Uses[f.Sel]
			}
			if cf, ok := callee.(*types.Func); ok && cf.Pkg() != nil && cf.Pkg().Path() == pkg.Path {
				if decl := findFunc(pkg, cf.Name()); decl != nil && decl.Body != nil {
					collectLiteralNames(pkg, decl, names, follow, seen)
				}
			}
		}
		return true
	})
}

// constString evaluates e as a compile-time string constant.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if id, ok := e.(*ast.Ident); ok {
		if c, ok := pkg.Info.Uses[id].(*types.Const); ok && c.Val().Kind() == constant.String {
			return constant.StringVal(c.Val()), true
		}
	}
	return "", false
}

// sortedNames renders a name set for diagnostics.
func sortedNames(names map[string]bool) string {
	var out []string
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
