package analysis_test

import (
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
	"github.com/papi-sim/papi/internal/analysis/analysistest"
)

func TestUnitSafety(t *testing.T) {
	a := analysis.NewUnitSafety(func(path string) bool { return path == "unitsafe" })
	analysistest.Run(t, "testdata", a, "unitsafe")
}
