package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// LoadModule loads, parses, and type-checks the packages matching patterns
// (e.g. "./...") in the module rooted at or above dir. Dependencies are
// consumed as compiler export data via `go list -deps -export -json`, so the
// loader needs no network and no third-party machinery; only the named
// packages themselves are parsed. Test files are not loaded: the papivet
// contracts bind the simulator, not its tests.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Module,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil {
			targets = append(targets, &p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter type-imports packages from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dirs:  parseDirectives(fset, files),
	}, nil
}

// LoadFixtures loads the fixture package at root/src/<path> plus every
// fixture package it (transitively) imports, in the GOPATH-shaped layout the
// analyzer tests use (mirroring x/tools' analysistest): an import "units"
// resolves to root/src/units if that directory exists, and to the standard
// library otherwise. The requested package is the last element returned.
func LoadFixtures(root, path string) ([]*Package, error) {
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:    root,
		fset:    fset,
		checked: map[string]*Package{},
	}

	// One `go list` run resolves every stdlib package any fixture pulls in.
	stdlib := map[string]bool{}
	if err := ld.scanStdlib(path, stdlib, map[string]bool{}); err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(stdlib) > 0 {
		var names []string
		for p := range stdlib {
			names = append(names, p)
		}
		sort.Strings(names)
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, names...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (fixture stdlib): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	ld.std = exportImporter(fset, exports)

	if _, err := ld.load(path); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range ld.order {
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type fixtureLoader struct {
	root    string
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*Package
	order   []*Package
}

// isFixture reports whether path names a package under root/src.
func (ld *fixtureLoader) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(ld.root, "src", path))
	return err == nil && st.IsDir()
}

// scanStdlib collects the stdlib imports reachable from fixture path.
func (ld *fixtureLoader) scanStdlib(path string, stdlib, seen map[string]bool) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	files, err := ld.fixtureFiles(path)
	if err != nil {
		return err
	}
	for _, file := range files {
		f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if ld.isFixture(p) {
				if err := ld.scanStdlib(p, stdlib, seen); err != nil {
					return err
				}
			} else {
				stdlib[p] = true
			}
		}
	}
	return nil
}

// fixtureFiles lists the non-test .go files of fixture package path.
func (ld *fixtureLoader) fixtureFiles(path string) ([]string, error) {
	dir := filepath.Join(ld.root, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", path)
	}
	sort.Strings(files)
	return files, nil
}

// load type-checks fixture package path (and, via Import, its fixture deps).
func (ld *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := ld.checked[path]; ok {
		return p, nil
	}
	abs, err := ld.fixtureFiles(path)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, f := range abs {
		names = append(names, filepath.Base(f))
	}
	pkg, err := checkPackage(ld.fset, ld, path, filepath.Join(ld.root, "src", path), names)
	if err != nil {
		return nil, err
	}
	ld.checked[path] = pkg
	ld.order = append(ld.order, pkg)
	return pkg, nil
}

// Import implements types.Importer over fixture and stdlib packages.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if ld.isFixture(path) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}
