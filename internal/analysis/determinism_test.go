package analysis_test

import (
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
	"github.com/papi-sim/papi/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	a := analysis.NewDeterminism(func(path string) bool { return path == "determ" })
	analysistest.Run(t, "testdata", a, "determ")
}

func TestDeterminismWaivers(t *testing.T) {
	a := analysis.NewDeterminism(func(path string) bool { return path == "determwaiver" })
	analysistest.Run(t, "testdata", a, "determwaiver")
}

// TestNoallocDirectiveOutsideDocComment pins the one directive misuse the
// fixture comments cannot annotate inline (a bare //papivet:noalloc in a
// body would swallow the want text as arguments).
func TestNoallocDirectiveOutsideDocComment(t *testing.T) {
	pkgs, err := analysis.LoadFixtures("testdata", "dirmisuse")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if got := diags[0].Message; got != "papivet:noalloc must appear in a function's doc comment" {
		t.Errorf("unexpected message %q", got)
	}
}
