// Package analysis is the static-analysis layer behind cmd/papivet: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the project-specific analyzers
// that turn this repo's three load-bearing contracts into compile-time
// properties:
//
//   - determinism: the simulation packages may not read wall-clock time,
//     draw from the global math/rand stream, launch goroutines outside the
//     blessed sweep runner, or iterate a map in an order-sensitive way;
//   - unitsafety: internal/units quantities may not be laundered through raw
//     float64 conversions to cross dimensions — typed helpers or audited
//     waivers only;
//   - noalloc: functions annotated //papivet:noalloc (the PR 3 fast-path
//     set) may not contain allocating constructs;
//   - facade: papi.go re-exports must originate in internal/ packages, and
//     string literals passed to registry lookups (figures, scenarios,
//     designs, datasets, routers, models) must name registered entries.
//
// The vendored framework exists because the container building this repo has
// no module proxy access: the real golang.org/x/tools dependency cannot be
// fetched, so the analyzers are written against this API-compatible shim and
// driven by cmd/papivet instead of x/tools' multichecker. Type information
// comes from the standard toolchain: the loader shells out to
// `go list -deps -export -json`, parses the target packages with go/parser,
// and type-checks them against the compiler's export data via go/importer.
//
// Analyzers see only non-test files (go list's GoFiles), matching the scope
// of the invariants: tests are free to use wall clocks, raw casts, and
// allocation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waivers
	// (//papivet:allow <name> — justification).
	Name string

	// Doc is the one-paragraph description shown by papivet -help.
	Doc string

	// AppliesTo reports whether the analyzer wants to inspect the package
	// with the given import path. A nil AppliesTo means every package.
	AppliesTo func(pkgPath string) bool

	// Run inspects one package, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos to file positions for every file in the package
	// and its dependencies' export data.
	Fset *token.FileSet

	// Files are the package's parsed non-test source files.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info

	// Dirs are the //papivet: directives of this package's files.
	Dirs *Directives

	// All is the whole-program view: every package loaded in this run, in
	// deterministic (import path) order. Cross-package analyzers (facade)
	// use it to read registry definitions; most analyzers ignore it.
	All []*Package

	diags *[]Diagnostic
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Category tags the finding kind within its analyzer; the ordered
	// waiver applies only to determinism findings of category "maprange".
	Category string
	Message  string
}

// String renders the finding in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dirs  *Directives
}

// Run applies each analyzer to every loaded package it covers, suppresses
// findings waived by //papivet: directives, and returns the survivors in
// deterministic (position, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dirs:      pkg.Dirs,
				All:       pkgs,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	// Malformed directives are findings in their own right: a waiver that
	// does not parse must fail loudly rather than silently not suppress.
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Dirs.Malformed...)
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer == DirectiveAnalyzerName || !findDirs(pkgs, d.Pos.Filename).Waived(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// findDirs locates the directive set governing filename.
func findDirs(pkgs []*Package, filename string) *Directives {
	for _, pkg := range pkgs {
		if pkg.Dirs.covers(filename) {
			return pkg.Dirs
		}
	}
	return &Directives{}
}
