package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewNoAlloc returns the noalloc analyzer. It inspects only functions whose
// doc comment carries //papivet:noalloc — the PR 3 fast-path set — and flags
// constructs that allocate, turning the AllocsPerRun regression tests into
// line-level diagnostics. It runs on every package: the annotation is the
// opt-in.
func NewNoAlloc() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc: "forbid allocating constructs (fmt, make/new, escaping composite and func literals, " +
			"append growth, string conversions and concatenation, interface boxing, go/defer) inside " +
			"functions annotated //papivet:noalloc",
		Run: runNoAlloc,
	}
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := pass.Dirs.NoAlloc(fn); ok {
				checkNoAllocFunc(pass, fn)
			}
		}
	}
	return nil
}

func checkNoAllocFunc(pass *Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, category, format string, args ...any) {
		pass.Reportf(pos, category, "%s is annotated //papivet:noalloc: "+format,
			append([]any{fn.Name.Name}, args...)...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go", "launching a goroutine allocates")
		case *ast.DeferStmt:
			report(n.Pos(), "defer", "defer allocates a frame record")
		case *ast.FuncLit:
			report(n.Pos(), "closure", "a func literal may capture and escape to the heap")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "composite", "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "composite", "slice/map literal allocates its backing store")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "stringconcat", "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, fn, n, report)
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr,
	report func(token.Pos, string, string, ...any)) {

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
		if src != nil && isStringSliceConv(dst, src) {
			report(call.Pos(), "conversion", "string/byte-slice conversion copies the payload")
		}
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make":
				report(call.Pos(), "make", "make allocates; hoist the buffer out of the hot path")
			case "new":
				report(call.Pos(), "new", "new allocates")
			case "append":
				report(call.Pos(), "append", "append may grow its backing array; pre-size the slice outside the hot path")
			}
			return
		}
	}

	if pkg, name := calleePkgFunc(pass, call); pkg == "fmt" {
		report(call.Pos(), "fmt", "fmt.%s allocates (formatting state and boxed operands)", name)
		return
	}

	// Interface boxing: a concrete value passed where an interface is
	// expected is materialized on the heap (barring escape analysis, which
	// the fast path must not gamble on).
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "boxing", "passing %s as %s boxes the value into an interface",
			types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}

// isStringSliceConv reports whether dst(src) converts between string and
// []byte / []rune in either direction.
func isStringSliceConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
