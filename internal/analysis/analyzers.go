package analysis

// All returns the papivet analyzer suite with this repo's configuration:
// determinism over the simulation packages, unitsafety over the
// quantity-consuming packages, noalloc over the annotated fast-path
// functions, and facade over papi.go and the registry lookups.
func All() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(nil),
		NewUnitSafety(nil),
		NewNoAlloc(),
		NewFacade(DefaultFacadeConfig()),
	}
}
