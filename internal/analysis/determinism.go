package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterministicPackages are the import-path suffixes of the packages whose
// results must be bit-identical run over run: the event kernel, scheduler,
// serving engine, fleet, workload generators, experiments, design layer and
// statistics. Everything they compute feeds a golden file or a conservation
// invariant.
var DeterministicPackages = []string{
	"/internal/sim",
	"/internal/sched",
	"/internal/serving",
	"/internal/kv",
	"/internal/faults",
	"/internal/cluster",
	"/internal/workload",
	"/internal/experiments",
	"/internal/design",
	"/internal/stats",
}

// BlessedGoroutineFuncs are the functions allowed to launch goroutines in
// deterministic packages: the order-restoring sweep runner only. Everything
// else must go through it.
var BlessedGoroutineFuncs = map[string]bool{"parallelMap": true}

// allowedRandFuncs are the math/rand package-level functions that do not
// touch the global, non-deterministically-seeded stream.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true}

// NewDeterminism returns the determinism analyzer, restricted to packages
// accepted by appliesTo (nil means DeterministicPackages).
func NewDeterminism(appliesTo func(string) bool) *Analyzer {
	if appliesTo == nil {
		appliesTo = func(path string) bool { return hasAnySuffix(path, DeterministicPackages) }
	}
	return &Analyzer{
		Name: "determinism",
		Doc: "forbid wall-clock reads, the global math/rand stream, goroutines outside the " +
			"blessed parallelMap runner, and order-sensitive map iteration in the deterministic " +
			"simulation packages; waive map ranges with //papivet:ordered — justification",
		AppliesTo: appliesTo,
		Run:       runDeterminism,
	}
}

func hasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDeterminismFunc(pass, fn)
		}
	}
	return nil
}

func checkDeterminismFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !BlessedGoroutineFuncs[fn.Name.Name] {
				pass.Reportf(n.Pos(), "goroutine",
					"goroutine launched outside the blessed parallelMap runner; deterministic packages must funnel concurrency through it")
			}
		case *ast.CallExpr:
			checkForbiddenCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// checkForbiddenCall flags wall-clock reads and global math/rand draws.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleePkgFunc(pass, call)
	switch pkg {
	case "time":
		if name == "Now" || name == "Since" {
			pass.Reportf(call.Pos(), "wallclock",
				"time.%s reads the wall clock; deterministic packages must use the simulated clock", name)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[name] {
			pass.Reportf(call.Pos(), "globalrand",
				"rand.%s draws from the global stream; use a seeded rand.New(rand.NewSource(seed))", name)
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function selected off an import; otherwise both
// returns are empty.
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// checkMapRange flags ranges over maps whose body is order-sensitive:
// appends to outer state, floating-point or string accumulation, channel
// sends, or emission (prints and Write* calls). The sorted-keys idiom — a
// body that only collects keys into a slice that is sorted after the loop —
// is recognized and allowed.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if reason := mapRangeSensitivity(pass, fn, rng); reason != "" {
		pass.Report(Diagnostic{
			Pos:      pass.Fset.Position(rng.Pos()),
			Category: "maprange",
			Message: "map iteration order is randomized but the loop body is order-sensitive (" + reason +
				"); range over sorted keys, or waive with //papivet:ordered — justification",
		})
	}
}

// mapRangeSensitivity returns a description of the first order-sensitive
// operation in the loop body, or "" if none.
func mapRangeSensitivity(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if declaredOutside(pass, lhs, rng) && orderSensitiveAccumulation(pass, lhs) {
						reason = "order-dependent accumulation into outer state"
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if declaredOutside(pass, n.Args[0], rng) && !isSortedKeyCollection(pass, fn, rng, n) {
					reason = "append to outer slice"
				}
			}
			if emitsOutput(pass, n) {
				reason = "output emitted per element"
			}
		}
		return true
	})
	return reason
}

// declaredOutside reports whether the root identifier of expr was declared
// outside the range statement (so per-iteration effects on it outlive the
// loop in iteration order).
func declaredOutside(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			// Unrecognized roots (calls, literals) are treated as outer:
			// better a waivable false positive than a silent miss.
			return true
		}
	}
}

// orderSensitiveAccumulation reports whether compound assignment to expr is
// order-dependent: floating-point addition is non-associative and string
// concatenation is non-commutative, while integer accumulation is exact.
func orderSensitiveAccumulation(pass *Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// isSortedKeyCollection recognizes `keys = append(keys, k)` bodies whose
// target slice is passed to a sort.* or slices.* call after the loop.
func isSortedKeyCollection(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg) != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	targetObj := pass.TypesInfo.ObjectOf(target)
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rng.End() {
			return true
		}
		if pkg, _ := calleePkgFunc(pass, c); pkg == "sort" || pkg == "slices" {
			for _, a := range c.Args {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == targetObj {
					sorted = true
				}
			}
		}
		return true
	})
	return sorted
}

// emitsOutput reports whether the call writes somewhere a reader can see
// ordering: the fmt print family or any Write*/print method.
func emitsOutput(pass *Pass, call *ast.CallExpr) bool {
	if pkg, name := calleePkgFunc(pass, call); pkg == "fmt" && strings.Contains(name, "rint") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print")
}
