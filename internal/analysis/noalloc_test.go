package analysis_test

import (
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
	"github.com/papi-sim/papi/internal/analysis/analysistest"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NewNoAlloc(), "noallocfix")
}
