package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectiveAnalyzerName tags diagnostics about the directives themselves
// (malformed waivers, missing justifications). These cannot be waived.
const DirectiveAnalyzerName = "papivet"

// Directive kinds.
const (
	// KindAllow waives one analyzer's findings over the directive's scope:
	//
	//	//papivet:allow unitsafety — dimensionless ratio
	KindAllow = "allow"
	// KindOrdered waives determinism map-range findings — an assertion that
	// the loop body is iteration-order-insensitive:
	//
	//	//papivet:ordered — inserts into another map, order immaterial
	KindOrdered = "ordered"
	// KindNoAlloc is not a waiver but an annotation: it opts the function
	// under its doc comment into the noalloc analyzer's checks.
	KindNoAlloc = "noalloc"
)

// knownAnalyzers are the names //papivet:allow may waive.
var knownAnalyzers = map[string]bool{
	"determinism": true,
	"unitsafety":  true,
	"noalloc":     true,
	"facade":      true,
}

// A Directive is one parsed //papivet: comment.
type Directive struct {
	Pos           token.Position
	Kind          string
	Analyzer      string // KindAllow only
	Justification string
	// The directive suppresses findings on lines [FromLine, ToLine] of its
	// file: its own line and the next for line directives, the whole
	// declaration for doc-comment directives.
	FromLine, ToLine int
}

// Directives is one package's parsed //papivet: comments.
type Directives struct {
	byFile    map[string][]Directive
	files     map[string]bool
	noalloc   map[*ast.FuncDecl]Directive
	Malformed []Diagnostic
}

// parseDirectives scans the package's comments. Directive scope: a directive
// inside a declaration's doc comment covers the whole declaration; any other
// directive covers its own line and the one below it (so both trailing
// same-line comments and stand-alone comments above the offending line work).
func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		byFile:  map[string][]Directive{},
		files:   map[string]bool{},
		noalloc: map[*ast.FuncDecl]Directive{},
	}
	for _, f := range files {
		d.files[fset.Position(f.Pos()).Filename] = true

		// Doc comments attach their directives to the declaration's span.
		docOf := map[*ast.CommentGroup]ast.Decl{}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Doc != nil {
					docOf[decl.Doc] = decl
				}
			case *ast.GenDecl:
				if decl.Doc != nil {
					docOf[decl.Doc] = decl
				}
			}
		}

		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//papivet:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir, errmsg := parseDirective(text)
				if errmsg != "" {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos:      pos,
						Analyzer: DirectiveAnalyzerName,
						Message:  errmsg,
					})
					continue
				}
				dir.Pos = pos
				dir.FromLine, dir.ToLine = pos.Line, pos.Line+1
				if decl, ok := docOf[group]; ok {
					dir.FromLine = fset.Position(decl.Pos()).Line
					dir.ToLine = fset.Position(decl.End()).Line
					if fn, ok := decl.(*ast.FuncDecl); ok && dir.Kind == KindNoAlloc {
						d.noalloc[fn] = dir
					}
				} else if dir.Kind == KindNoAlloc {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos:      pos,
						Analyzer: DirectiveAnalyzerName,
						Message:  "papivet:noalloc must appear in a function's doc comment",
					})
					continue
				}
				d.byFile[pos.Filename] = append(d.byFile[pos.Filename], dir)
			}
		}
	}
	return d
}

// parseDirective parses the text after "//papivet:". It returns a
// description of the problem when the directive is malformed.
func parseDirective(text string) (Directive, string) {
	kind, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
	rest = strings.TrimSpace(rest)
	switch kind {
	case KindNoAlloc:
		if rest != "" {
			return Directive{}, "papivet:noalloc takes no arguments"
		}
		return Directive{Kind: KindNoAlloc}, ""
	case KindOrdered:
		just, ok := cutJustification(rest)
		if !ok {
			return Directive{}, "papivet:ordered needs a justification: //papivet:ordered — why order cannot matter"
		}
		return Directive{Kind: KindOrdered, Justification: just}, ""
	case KindAllow:
		name, tail, _ := strings.Cut(rest, " ")
		if !knownAnalyzers[name] {
			return Directive{}, "papivet:allow must name an analyzer (determinism, unitsafety, noalloc, facade)"
		}
		just, ok := cutJustification(strings.TrimSpace(tail))
		if !ok {
			return Directive{}, "papivet:allow needs a justification: //papivet:allow " + name + " — why this is safe"
		}
		return Directive{Kind: KindAllow, Analyzer: name, Justification: just}, ""
	default:
		return Directive{}, "unknown papivet directive " + kind + " (have allow, ordered, noalloc)"
	}
}

// cutJustification strips the "— reason" (or "-- reason") tail required on
// waivers; ok is false when the justification is missing or empty.
func cutJustification(s string) (string, bool) {
	for _, sep := range []string{"—", "--"} {
		if _, just, found := strings.Cut(s, sep); found {
			just = strings.TrimSpace(just)
			return just, just != ""
		}
	}
	return "", false
}

// Waived reports whether diag is suppressed by a directive in its file.
func (d *Directives) Waived(diag Diagnostic) bool {
	for _, dir := range d.byFile[diag.Pos.Filename] {
		if diag.Pos.Line < dir.FromLine || diag.Pos.Line > dir.ToLine {
			continue
		}
		switch dir.Kind {
		case KindAllow:
			if dir.Analyzer == diag.Analyzer {
				return true
			}
		case KindOrdered:
			if diag.Analyzer == "determinism" && diag.Category == "maprange" {
				return true
			}
		}
	}
	return false
}

// NoAlloc returns the noalloc annotation on fn, if any.
func (d *Directives) NoAlloc(fn *ast.FuncDecl) (Directive, bool) {
	dir, ok := d.noalloc[fn]
	return dir, ok
}

// All returns every directive (waivers and annotations) in file/line order —
// the audit list behind papivet -waivers.
func (d *Directives) All() []Directive {
	var out []Directive
	for _, dirs := range d.byFile {
		out = append(out, dirs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// covers reports whether filename belongs to this directive set's package.
func (d *Directives) covers(filename string) bool { return d.files[filename] }
