package analysis_test

import (
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
)

// TestRepoIsClean is the meta-test: the whole module must analyze to zero
// papivet findings, the same gate cmd/papivet (and the CI analysis job)
// enforces. A regression anywhere in the repo fails `go test ./...` here
// with the exact file:line:col finding.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := analysis.LoadModule("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module load looks broken", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteShape pins the analyzer roster: exactly the four contracts, under
// their waivable names.
func TestSuiteShape(t *testing.T) {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	want := []string{"determinism", "unitsafety", "noalloc", "facade"}
	if len(names) != len(want) {
		t.Fatalf("analyzers %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("analyzers %v, want %v", names, want)
		}
	}
}
