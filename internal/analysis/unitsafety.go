package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UnitSafePackages are the import-path suffixes where internal/units
// quantities must stay typed: the consumers of the roofline algebra. The
// device-physics packages (gpu, pim, hbm, dram, kernels, interconnect,
// model, energy) implement the algebra itself — dimension crossing is their
// job — and units is the defining package; all are deliberately outside this
// set, as docs/ANALYSIS.md records.
var UnitSafePackages = []string{
	"/internal/sim",
	"/internal/sched",
	"/internal/serving",
	"/internal/kv",
	"/internal/faults",
	"/internal/cluster",
	"/internal/workload",
	"/internal/experiments",
	"/internal/design",
	"/internal/stats",
	"/internal/core",
	"github.com/papi-sim/papi",
}

// IsUnitsPackage reports whether path is (an analogue of) internal/units.
// The bare "units" spelling is how analysistest fixtures import their fake.
func IsUnitsPackage(path string) bool {
	return path == "units" || strings.HasSuffix(path, "/internal/units")
}

// NewUnitSafety returns the unit-safety analyzer. appliesTo nil means
// UnitSafePackages.
func NewUnitSafety(appliesTo func(string) bool) *Analyzer {
	if appliesTo == nil {
		appliesTo = func(path string) bool {
			for _, s := range UnitSafePackages {
				if path == s || strings.HasSuffix(path, s) {
					return true
				}
			}
			return false
		}
	}
	return &Analyzer{
		Name: "unitsafety",
		Doc: "forbid laundering internal/units quantities (Seconds, Joules, Bytes, FLOPs, Watts, ...) " +
			"through raw numeric conversions: dimension changes must go through typed units helpers " +
			"(accessors, Scale, Ratio, Power, Energy) or carry a //papivet:allow unitsafety waiver",
		AppliesTo: appliesTo,
		Run:       runUnitSafety,
	}
}

func runUnitSafety(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion is a "call" whose operator is a type.
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			src := pass.TypesInfo.TypeOf(call.Args[0])
			if src == nil {
				return true
			}
			dst := tv.Type
			srcUnit, srcIsUnit := unitsTypeName(src)
			dstUnit, dstIsUnit := unitsTypeName(dst)
			switch {
			case srcIsUnit && !dstIsUnit && isNumeric(dst):
				pass.Reportf(call.Pos(), "launder",
					"conversion %s(%s) drops the %s dimension; use a typed units helper (accessor, Scale, Ratio) or waive with //papivet:allow unitsafety — why",
					types.TypeString(dst, nil), exprString(call.Args[0]), srcUnit)
			case srcIsUnit && dstIsUnit && srcUnit != dstUnit:
				pass.Reportf(call.Pos(), "crossunit",
					"conversion casts %s directly to %s; dimensions may only change through a units operation (Power, Energy, Time, ...)",
					srcUnit, dstUnit)
			}
			return true
		})
	}
	return nil
}

// unitsTypeName returns the units type's name when t is a named type
// declared in internal/units (or a fixture analogue).
func unitsTypeName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !IsUnitsPackage(obj.Pkg().Path()) {
		return "", false
	}
	return obj.Name(), true
}

// isNumeric reports whether t is a raw numeric type (the laundering target).
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsComplex) != 0
}

// exprString renders small expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expr"
	}
}
