package analysis_test

import (
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
	"github.com/papi-sim/papi/internal/analysis/analysistest"
)

func TestFacade(t *testing.T) {
	cfg := analysis.FacadeConfig{
		RootPath:       "facademod",
		InternalPrefix: "facademod/internal/",
		Lookups: []analysis.LookupSpec{
			{Pkg: "/internal/reg", Func: "ByName", Arg: 0, Registry: "things"},
			{Pkg: "/internal/reg", Func: "Find", Arg: 0, Registry: "catalog"},
			{Pkg: "/internal/reg", Func: "Lookup", Arg: 0, Registry: "built"},
		},
		Registries: map[string]analysis.RegistrySpec{
			"things":  {Pkg: "/internal/reg", Func: "ByName", Kind: "switch"},
			"catalog": {Pkg: "/internal/reg", Func: "Catalog", Kind: "literals"},
			"built":   {Pkg: "/internal/reg", Func: "Registry", Kind: "calls"},
		},
	}
	analysistest.Run(t, "testdata", analysis.NewFacade(cfg), "facademod")
}
