// Package analysistest runs papivet analyzers over the GOPATH-shaped fixture
// packages under a testdata/src tree and checks their diagnostics against
// `// want "regex"` comments, mirroring the x/tools harness of the same name
// (which this repo cannot depend on; see the internal/analysis package doc).
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/analysis"
)

// wantPattern extracts the quoted regexes of one want comment.
var wantPattern = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// An expectation is one `// want "re"` pattern awaiting its diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package at <testdata>/src/<path> plus its fixture
// dependencies, applies the analyzer, and matches every diagnostic against
// the `// want "regex"` comments in the target package's files: each
// diagnostic must match an unused pattern on its own line, and each pattern
// must be consumed. Multiple patterns on one line (`// want "a" "b"`) expect
// that many diagnostics. A want may ride inside another comment (as in
// `//papivet:allow bogus — x // want "must name an analyzer"`); it anchors to
// the line the comment starts on.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	pkgs, err := analysis.LoadFixtures(testdata, path)
	if err != nil {
		t.Fatal(err)
	}
	target := pkgs[len(pkgs)-1]
	if target.Path != path {
		t.Fatalf("fixture load order: got %s last, want %s", target.Path, path)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(target)
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// parseWants collects the expectations of every file in the target package.
func parseWants(pkg *analysis.Package) []*expectation {
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantPattern.FindAllStringSubmatch(c.Text[idx:], -1) {
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   regexp.MustCompile(m[1]),
					})
				}
			}
		}
	}
	return wants
}

// consume marks the first unused expectation on the diagnostic's line whose
// pattern matches its message.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}
