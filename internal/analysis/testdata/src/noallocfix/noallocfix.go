// Package noallocfix exercises the noalloc annotation: every allocating
// construct inside an annotated function is flagged; unannotated twins and
// clean annotated functions stay silent.
package noallocfix

import "fmt"

type point struct{ x, y int }

var global []int

func consume(v any) {}

func noop() {}

//papivet:noalloc
func hotPath(buf []int, s1, s2 string, n int) int {
	tmp := make([]int, n)        // want "make allocates"
	pt := new(point)             // want "new allocates"
	buf = append(buf, n)         // want "append may grow its backing array"
	msg := fmt.Sprintf("%d", n)  // want "fmt.Sprintf allocates"
	joined := s1 + s2            // want "string concatenation allocates"
	esc := &point{x: n}          // want "composite literal escapes to the heap"
	lit := []int{n, n}           // want "slice/map literal allocates"
	m := map[int]int{}           // want "slice/map literal allocates"
	f := func() int { return n } // want "func literal may capture"
	go f()                       // want "launching a goroutine allocates"
	defer noop()                 // want "defer allocates a frame record"
	raw := []byte(msg)           // want "conversion copies the payload"
	consume(n)                   // want "boxes the value into an interface"
	return len(tmp) + pt.x + len(buf) + len(joined) + esc.x + lit[0] + len(m) + f() + len(raw)
}

//papivet:noalloc
func (p *point) grow() {
	global = append(global, p.x) // want "append may grow its backing array"
}

//papivet:noalloc
func cleanHot(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func coldPath(n int) string {
	buf := make([]int, n) // ok: not annotated
	buf = append(buf, n)  // ok
	return fmt.Sprintf("%d", len(buf))
}
