// Package unitsafe exercises the unit-laundering checks against the fake
// units package in ../units.
package unitsafe

import "units"

func launder(s units.Seconds) float64 {
	return float64(s) // want "drops the Seconds dimension"
}

func launderInt(b units.Bytes) int {
	return int(b) // want "drops the Bytes dimension"
}

func crossCast(s units.Seconds) units.Joules {
	return units.Joules(s) // want "casts Seconds directly to Joules"
}

func accessor(s units.Seconds) float64 {
	return s.Seconds() // ok: the sanctioned accessor
}

func construct(v float64) units.Seconds {
	return units.Seconds(v) // ok: numeric -> quantity is construction, not laundering
}

func scaled(s units.Seconds, k float64) units.Seconds {
	return s.Scale(k) // ok: dimension preserved
}

func ratio(a, b units.Seconds) float64 {
	return units.Ratio(a, b) // ok: dimensionless quotient
}

//papivet:allow unitsafety — hashing wants the raw bit pattern of the value
func waived(j units.Joules) float64 {
	return float64(j) // ok: waived at the declaration
}

type plain float64

func plainCast(p plain) float64 {
	return float64(p) // ok: not a units type
}
