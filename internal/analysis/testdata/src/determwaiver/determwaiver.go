// Package determwaiver exercises waiver parsing: malformed directives are
// findings in their own right and never suppress anything, while well-formed
// ones bound their scope to a line pair or a whole declaration.
package determwaiver

import "time"

func missingOrderedJustification(m map[string]float64) float64 {
	var total float64
	//papivet:ordered // want "needs a justification"
	for _, v := range m { // want "order-dependent accumulation"
		total += v
	}
	return total
}

func missingAllowJustification() time.Time {
	//papivet:allow determinism // want "needs a justification"
	return time.Now() // want "time.Now reads the wall clock"
}

func unknownAnalyzer() time.Time {
	//papivet:allow frobnicate — no such analyzer // want "must name an analyzer"
	return time.Now() // want "time.Now reads the wall clock"
}

func unknownDirective() {
	//papivet:frobnicate // want "unknown papivet directive"
}

func noallocWithArguments() {
	//papivet:noalloc because fast // want "takes no arguments"
}

func honoredLineWaiver() time.Time {
	//papivet:allow determinism — boot banner timestamp, outside the simulated clock
	return time.Now() // ok: waived by the line above
}

//papivet:allow determinism — this helper runs before the simulation starts
func honoredDocWaiver() (time.Time, time.Time) {
	a := time.Now() // ok: the doc-comment waiver spans the whole declaration
	b := time.Now() // ok
	return a, b
}
