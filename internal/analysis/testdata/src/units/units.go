// Package units is the fixture analogue of internal/units: just enough
// quantity types and sanctioned helpers for the unitsafety fixtures.
package units

// Seconds measures fixture time.
type Seconds float64

// Joules measures fixture energy.
type Joules float64

// Bytes measures fixture data volume.
type Bytes float64

// Seconds is the sanctioned accessor.
func (s Seconds) Seconds() float64 { return float64(s) }

// Scale multiplies by a dimensionless factor.
func (s Seconds) Scale(k float64) Seconds { return Seconds(float64(s) * k) }

// Ratio is the sanctioned dimensionless quotient.
func Ratio[T ~float64](num, den T) float64 { return float64(num) / float64(den) }
