// Package determ exercises the determinism analyzer: wall-clock reads, the
// global math/rand stream, stray goroutines and order-sensitive map ranges.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(6) // want "rand.Intn draws from the global stream"
}

func seededRand() int {
	rng := rand.New(rand.NewSource(42)) // ok: seeded constructor
	return rng.Intn(6)                  // ok: method on the seeded stream
}

func strayGoroutine() int {
	ch := make(chan int)
	go func() { ch <- 1 }() // want "goroutine launched outside the blessed parallelMap"
	return <-ch
}

func parallelMap(n int, f func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) { f(i); done <- struct{}{} }(i) // ok: the blessed runner
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "order-dependent accumulation into outer state"
		total += v
	}
	return total
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: integer accumulation is exact in any order
		total += v
	}
	return total
}

func collectValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "append to outer slice"
		out = append(out, v)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: the sorted-keys idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m { // want "output emitted per element"
		fmt.Println(k, v)
	}
}

func waivedRange(m map[string]int) []int {
	var out []int
	//papivet:ordered — the caller sorts the collected values before use
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
