// Package dirmisuse holds a bare noalloc annotation outside any function doc
// comment; the directive parser must reject it.
package dirmisuse

func notAnnotated() {
	//papivet:noalloc
}
