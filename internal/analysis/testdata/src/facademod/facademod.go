// Package facademod is the facade-analyzer fixture: a miniature papi.go over
// an internal/ package with switch-, literal- and constructor-shaped
// registries.
package facademod

import "facademod/internal/reg"

// Widget re-exports the internal widget type.
type Widget = reg.Widget

type Rogue struct{ N int } // want "defined locally"

// ThingByName delegates cleanly: identical parameters and results.
func ThingByName(name string) (reg.Widget, error) { return reg.ByName(name) }

// Describe narrows its origin's any parameter to string.
func Describe(v string) string { return reg.Describe(v) } // want "facade wrapper Describe"

func Version() string { return "fixture" } // want "does not reference any facademod/internal/"

// DefaultWidget derives from the internal registry.
var DefaultWidget, _ = reg.ByName("alpha")

var Stray = 42 // want "not derived from"

func lookupGood() (reg.Widget, error) { return reg.ByName("beta") }

func lookupBad() (reg.Widget, error) {
	return reg.ByName("nope") // want "does not name a registered things"
}

func catalogGood() reg.Widget { return reg.Find("gamma") }

func catalogBad() reg.Widget {
	return reg.Find("alpha") // want "does not name a registered catalog"
}

func builtGood() reg.Widget { return reg.Lookup("epsilon") }

func builtBad() reg.Widget {
	return reg.Lookup("unknown") // want "does not name a registered built"
}
