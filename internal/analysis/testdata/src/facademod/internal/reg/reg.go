// Package reg is the internal origin behind the facademod facade fixture.
package reg

import "errors"

// Widget is the fixture's domain object.
type Widget struct{ Name string }

// NameEpsilon names the constructed epsilon widget.
const NameEpsilon = "epsilon"

// ByName is a switch-shaped registry.
func ByName(name string) (Widget, error) {
	switch name {
	case "alpha", "beta":
		return Widget{Name: name}, nil
	}
	return Widget{}, errors.New("reg: unknown widget " + name)
}

// Describe is the origin of the facade's signature-drifting wrapper.
func Describe(v any) string {
	if w, ok := v.(Widget); ok {
		return w.Name
	}
	return "?"
}

// Catalog is a literal-shaped registry.
func Catalog() []Widget {
	return []Widget{{Name: "gamma"}, {Name: "delta"}}
}

// Find resolves a catalog entry.
func Find(name string) Widget {
	for _, w := range Catalog() {
		if w.Name == name {
			return w
		}
	}
	return Widget{}
}

// Registry is a constructor-shaped registry.
func Registry() []Widget {
	return []Widget{epsilon(), zeta()}
}

func epsilon() Widget { return Widget{Name: NameEpsilon} }
func zeta() Widget    { return Widget{Name: "zeta"} }

// Lookup resolves a constructed entry.
func Lookup(name string) Widget {
	for _, w := range Registry() {
		if w.Name == name {
			return w
		}
	}
	return Widget{}
}
