package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/gpu"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
)

// Fig4Row is one bar group of Fig. 4: the FC kernel latency on the three
// execution engines at one parallelisation level, normalised to the A100.
type Fig4Row struct {
	Config
	A100   units.Seconds
	HBMPIM float64 // normalised to A100
	AttAcc float64 // normalised to A100
}

// Fig4Result reproduces Fig. 4 (GPT-3 66B FC kernel, §3.3 Shortcoming 1).
type Fig4Result struct {
	Rows []Fig4Row
	// CrossoverBatch is the batch (at spec 2) where the A100 starts beating
	// AttAcc — the figure places it between 8 and 16.
	CrossoverBatch int
}

// Fig4 measures the FC kernel of one decoding iteration on the A100 node,
// Samsung HBM-PIM devices and AttAcc devices across parallelisation levels.
func Fig4() Fig4Result {
	cfg := model.GPT3_66B()
	node := gpu.DefaultNode()
	hbmpim := core.AttentionSpecializedPool(hbm.HBMPIMStack(), core.WeightDevices)
	attacc := core.AttentionSpecializedPool(hbm.AttAccStack(), core.WeightDevices)

	fc := func(d *pim.Device, p int) units.Seconds {
		k := cfg.FCIterationKernel(p)
		return d.Execute(pim.Kernel{Name: "fc", Class: pim.ClassFC, Flops: k.Flops, UniqueBytes: k.WeightBytes}, 0).Time
	}
	gpuT := func(p int) units.Seconds {
		k := cfg.FCIterationKernel(p)
		return node.Execute(k.Flops, k.WeightBytes+k.ActivationBytes).Time
	}

	var out Fig4Result
	for _, spec := range []int{2, 8} {
		for _, batch := range []int{1, 4, 16, 64} {
			p := batch * spec
			a := gpuT(p)
			out.Rows = append(out.Rows, Fig4Row{
				Config: Config{Batch: batch, Spec: spec},
				A100:   a,
				HBMPIM: units.Ratio(fc(hbmpim, p), a),
				AttAcc: units.Ratio(fc(attacc, p), a),
			})
		}
	}
	for batch := 1; batch <= 256; batch *= 2 {
		if gpuT(batch*2) < fc(attacc, batch*2) {
			out.CrossoverBatch = batch
			break
		}
	}
	return out
}

// String renders the normalised-latency table.
func (r Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — FC kernel latency normalised to A100 (GPT-3 66B)\n")
	t := stats.NewTable("", "config", "A100", "HBM-PIM", "AttAcc")
	for _, row := range r.Rows {
		t.AddRow(row.Config.String(), "1.00",
			fmt.Sprintf("%.2f", row.HBMPIM),
			fmt.Sprintf("%.2f", row.AttAcc))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "A100 overtakes AttAcc at batch %d (spec 2); paper places the crossover between 8 and 16\n",
		r.CrossoverBatch)
	return b.String()
}
