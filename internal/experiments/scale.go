package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// ScaleCell is one execution strategy's run over the identical tiered-diurnal
// stream: the serial kernel, the sharded barrier driver, or a checkpointed
// split across segments — the scaling machinery measured on the same traffic.
type ScaleCell struct {
	// Config names the strategy: "serial", "shards-N", or "segments-N".
	Config string
	// Shards is the parallel-drive width (1 = serial kernel); Segments how
	// many checkpointed sub-runs the stream was split into (1 = unsplit).
	Shards   int
	Segments int
	// Requests is the stream size, Completed how many the fleet finished —
	// counted by the streaming aggregate, with no per-request retention.
	Requests  int
	Completed int
	Tokens    int
	Makespan  units.Seconds
	// TokensPerSec and RequestsPerSec are simulated throughput over the
	// makespan (wall-clock speed is the benchmark suite's question, not the
	// figure's — it would not be deterministic).
	TokensPerSec   float64
	RequestsPerSec float64
	// TTFT and TPOT digest the latency distributions from the constant-memory
	// sketches; past their exact regime they carry the documented rank error.
	TTFT stats.Summary
	TPOT stats.Summary
	// InteractiveAttainment scores the interactive tier against the SLO,
	// evaluated on the streaming aggregate.
	InteractiveAttainment float64
	// MatchesSerial reports bit-identity with the serial cell's result —
	// the sharded driver's equivalence claim, re-proven inside the figure.
	// Segment cells report false: a split run restarts from an empty fleet
	// at each boundary, so it is a different (still deterministic) schedule.
	MatchesSerial bool
}

// ScaleResult is the scale sweep: one tiered-diurnal stream served by each
// execution strategy of the million-request machinery — the serial kernel as
// the oracle, the sharded parallel driver that must match it bit-for-bit,
// and a checkpointed split whose merged ledger must conserve every request.
// The stream deliberately exceeds the sketches' exact regime, so the figure
// also pins the approximate-regime digests deterministically.
type ScaleResult struct {
	Model    string
	Scenario string
	Replicas int
	MaxBatch int
	Requests int
	SLO      workload.SLO
	Cells    []ScaleCell
}

// Scale runs the default sweep: a 2,400-request tiered-diurnal stream — past
// the 2,048-sample exact regime of the fleet sketches — on 4-replica OPT-30B
// PAPI fleets, serial versus 4-way sharded versus a two-segment checkpointed
// split, under the 12 ms interactive TPOT SLO.
func Scale() ScaleResult {
	return ScaleSweep(model.OPT30B(), 4, 2400, 8,
		workload.SLO{TokenLatency: units.Milliseconds(12)})
}

// ScaleSweep measures every execution strategy on the identical stream. All
// cells run with retention off — the constant-memory path is the machinery
// under test — and share one kernel-pricing cost table, since every fleet is
// the same PAPI design.
func ScaleSweep(cfg model.Config, replicas, requests, maxBatch int, slo workload.SLO) ScaleResult {
	sc, err := workload.ScenarioByName(workload.ScenarioTieredDiurnal)
	if err != nil {
		panic(fmt.Sprintf("experiments: scale: %v", err))
	}
	stream, err := sc.Requests(requests, Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: scale: %v", err))
	}
	out := ScaleResult{
		Model:    cfg.Name,
		Scenario: sc.Name,
		Replicas: replicas,
		MaxBatch: maxBatch,
		Requests: requests,
		SLO:      slo,
	}

	costs := serving.NewCostTable()
	newFleet := func(shards int) *cluster.Cluster {
		opt := serving.DefaultOptions(1)
		opt.Costs = costs
		cl, err := cluster.NewByName("PAPI", cfg, cluster.Options{
			Replicas: replicas,
			MaxBatch: maxBatch,
			Router:   cluster.LeastOutstanding(),
			Serving:  opt,
			Shards:   shards,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: scale: %v", err))
		}
		return cl
	}

	// The serial kernel is the oracle every other strategy is judged against.
	serial, err := newFleet(1).Run(stream)
	if err != nil {
		panic(fmt.Sprintf("experiments: scale serial: %v", err))
	}

	// The sharded driver consumes the stream lazily through RunSeq — the
	// constant-memory pairing a million-request run uses — and must still be
	// bit-identical to the serial slice run.
	i := 0
	sharded, err := newFleet(4).RunSeq(func() (workload.Request, bool) {
		if i >= len(stream) {
			return workload.Request{}, false
		}
		i++
		return stream[i-1], true
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: scale sharded: %v", err))
	}

	// The checkpointed split serves the stream as two independent segments
	// (the second re-based to its own time zero) and merges their exported
	// checkpoints — the cross-process form of a long run.
	half := requests / 2
	second := append([]workload.Request(nil), stream[half:]...)
	base := second[0].Arrival
	for j := range second {
		second[j].Arrival -= base
	}
	segA, err := newFleet(4).Run(stream[:half])
	if err != nil {
		panic(fmt.Sprintf("experiments: scale segment A: %v", err))
	}
	segB, err := newFleet(4).Run(second)
	if err != nil {
		panic(fmt.Sprintf("experiments: scale segment B: %v", err))
	}
	merged := segA.Checkpoint()
	if data, err := merged.Export(); err != nil {
		panic(fmt.Sprintf("experiments: scale checkpoint: %v", err))
	} else if merged, err = cluster.ImportCheckpoint(data); err != nil {
		// Round-trip through the byte-stable encoding, as processes would.
		panic(fmt.Sprintf("experiments: scale checkpoint: %v", err))
	}
	if err := merged.Merge(segB.Checkpoint()); err != nil {
		panic(fmt.Sprintf("experiments: scale merge: %v", err))
	}

	fleetCell := func(config string, shards int, f *cluster.FleetResult) ScaleCell {
		return ScaleCell{
			Config:                config,
			Shards:                shards,
			Segments:              1,
			Requests:              requests,
			Completed:             f.Completed,
			Tokens:                f.Tokens,
			Makespan:              f.Makespan,
			TokensPerSec:          f.TokensPerSecond(),
			RequestsPerSec:        f.RequestsPerSecond(),
			TTFT:                  f.TTFT,
			TPOT:                  f.TPOT,
			InteractiveAttainment: f.AttainmentClass(slo, workload.ClassInteractive),
			MatchesSerial:         sameFleetDigest(serial, f),
		}
	}
	out.Cells = []ScaleCell{
		fleetCell("serial", 1, serial),
		fleetCell("shards-4", 4, sharded),
		{
			Config:    "segments-2",
			Shards:    4,
			Segments:  2,
			Requests:  requests,
			Completed: merged.Completed,
			Tokens:    merged.Tokens,
			Makespan:  merged.Makespan,
			TokensPerSec: func() float64 {
				if merged.Makespan <= 0 {
					return 0
				}
				return float64(merged.Tokens-merged.LostTokens) / merged.Makespan.Seconds()
			}(),
			RequestsPerSec: func() float64 {
				if merged.Makespan <= 0 {
					return 0
				}
				return float64(merged.Completed) / merged.Makespan.Seconds()
			}(),
			TTFT:                  merged.TTFT(),
			TPOT:                  merged.TPOT(),
			InteractiveAttainment: interactiveAttainment(merged, slo),
			MatchesSerial:         false,
		},
	}
	return out
}

// sameFleetDigest compares the fleet-level quantities the figure reports —
// the bit-identity witness between two drives of the same stream.
func sameFleetDigest(a, b *cluster.FleetResult) bool {
	return a.Completed == b.Completed && a.Tokens == b.Tokens &&
		a.Makespan == b.Makespan && a.TTFT == b.TTFT && a.TPOT == b.TPOT &&
		a.Energy.Total() == b.Energy.Total()
}

// interactiveAttainment scores a merged checkpoint's interactive tier, the
// way FleetResult.AttainmentClass scores a single run's.
func interactiveAttainment(c *cluster.Checkpoint, slo workload.SLO) float64 {
	sk := c.Agg.InteractiveScore
	met, n := sk.Count(), sk.Count()
	if slo.TokenLatency > 0 {
		met = sk.CountLE(slo.TokenLatency.Seconds())
	}
	if n == 0 {
		return 1
	}
	return float64(met) / float64(n)
}

// String renders the strategy table.
func (r ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: %d-request %s on %d× PAPI (%s, max batch %d, interactive TPOT ≤ %v)\n",
		r.Requests, r.Scenario, r.Replicas, r.Model, r.MaxBatch, r.SLO.TokenLatency)
	tb := stats.NewTable("execution strategies on identical traffic",
		"config", "shards", "segments", "completed", "tok/s", "req/s",
		"TTFT p99", "TPOT p99", "int attain", "≡ serial")
	for _, c := range r.Cells {
		tb.AddRow(
			c.Config,
			fmt.Sprintf("%d", c.Shards),
			fmt.Sprintf("%d", c.Segments),
			fmt.Sprintf("%d", c.Completed),
			fmt.Sprintf("%.0f", c.TokensPerSec),
			fmt.Sprintf("%.1f", c.RequestsPerSec),
			units.Seconds(c.TTFT.P99).String(),
			units.Seconds(c.TPOT.P99).String(),
			fmt.Sprintf("%.3f", c.InteractiveAttainment),
			fmt.Sprintf("%v", c.MatchesSerial),
		)
	}
	b.WriteString(tb.String())
	return b.String()
}
