package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig3Result reproduces Fig. 3: how many decoding iterations each request of
// a batch stays active, i.e. the runtime-RLP decay under static batching.
type Fig3Result struct {
	Batch int
	// IterationsPerRequest is sorted descending, like the figure's bars.
	IterationsPerRequest []int
	// RLPAt samples the remaining RLP at fractions of the longest request's
	// decode (0%, 25%, 50%, 75%, 100%).
	RLPAt [5]int
}

// Fig3 runs a creative-writing batch and reports the per-request decode
// iteration counts. The RLP dynamics are hardware-independent; the
// A100+AttAcc baseline is used as the vehicle.
func Fig3(batch int) Fig3Result {
	res := runOne(core.NewA100AttAcc(), model.LLaMA65B(), workload.CreativeWriting(),
		Config{Batch: batch, Spec: 1})
	iters := append([]int(nil), res.PerRequestIterations...)
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))

	out := Fig3Result{Batch: batch, IterationsPerRequest: iters}
	n := len(res.RLPTrace)
	for i := 0; i < 5; i++ {
		idx := i * (n - 1) / 4
		out.RLPAt[i] = res.RLPTrace[idx]
	}
	return out
}

// String renders the decay.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — Decoding iterations per request (batch %d, creative-writing, LLaMA-65B)\n", r.Batch)
	fmt.Fprintf(&b, "longest %d, median %d, shortest %d iterations\n",
		r.IterationsPerRequest[0],
		r.IterationsPerRequest[len(r.IterationsPerRequest)/2],
		r.IterationsPerRequest[len(r.IterationsPerRequest)-1])
	fmt.Fprintf(&b, "remaining RLP at 0/25/50/75/100%% of decode: %d %d %d %d %d\n",
		r.RLPAt[0], r.RLPAt[1], r.RLPAt[2], r.RLPAt[3], r.RLPAt[4])
	return b.String()
}
