package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// ElasticityCell is one provisioning policy's run over the tiered day-curve
// traffic: the SLO outcome of the interactive tier against the capacity-time
// and energy the policy spent to get it.
type ElasticityCell struct {
	// Config names the policy: "static-N" or "autoscaled".
	Config string
	// Provisioned is the static replica count, or the autoscaler's max.
	Provisioned int
	// PeakReplicas is the most replicas concurrently powered on.
	PeakReplicas int
	// ReplicaSeconds is the provisioned capacity-time (replica·s).
	ReplicaSeconds units.Seconds
	Makespan       units.Seconds
	Tokens         int
	Energy         units.Joules
	JoulesPerToken float64
	// InteractiveTPOT and BatchTPOT digest the per-tier decode cadences.
	InteractiveTPOT stats.Summary
	BatchTPOT       stats.Summary
	// InteractiveAttainment scores the interactive tier against the SLO.
	InteractiveAttainment float64
	// Preemptions counts batch evictions for interactive admissions.
	Preemptions int
	// ScaleUps and Drains count elastic transitions (zero for static).
	ScaleUps, Drains int
}

// MeetsSLO reports whether the cell's interactive p99 TPOT sits within the
// objective.
func (c ElasticityCell) MeetsSLO(slo workload.SLO) bool {
	return slo.Met(units.Seconds(c.InteractiveTPOT.P99))
}

// ElasticityResult is the elasticity sweep: the same tiered-diurnal traffic
// served by statically provisioned fleets of every size up to the peak, and
// by the autoscaled fleet ranging over the same sizes. The question it
// answers is the ROADMAP's production question — what does holding the
// interactive SLO through a day curve cost in replica-seconds and J/token,
// and how much of that cost is elasticity able to shed?
type ElasticityResult struct {
	Model    string
	Scenario string
	Requests int
	MaxBatch int
	SLO      workload.SLO
	Cells    []ElasticityCell
}

// Elasticity runs the default sweep: LLaMA-65B PAPI fleets over the
// tiered-diurnal scenario — a stream long enough to ride a full day-curve
// period, peak and trough — static-1 … static-4 versus an autoscaled 1–4
// fleet, under the 12 ms interactive TPOT SLO.
func Elasticity() ElasticityResult {
	return ElasticitySweep(model.LLaMA65B(), 4, 240, 16,
		workload.SLO{TokenLatency: units.Milliseconds(12)}, defaultWorkers())
}

// ElasticitySweep measures every provisioning policy on identical traffic:
// static fleets of 1 … maxReplicas replicas, then the autoscaled fleet
// bounded by [1, maxReplicas]. Cells run on a worker pool (≤ 1 is serial;
// both orders produce identical results — every cell is independently
// seeded) and share one kernel-pricing cost table, since every fleet is the
// same PAPI design.
func ElasticitySweep(cfg model.Config, maxReplicas, requests, maxBatch int,
	slo workload.SLO, workers int) ElasticityResult {
	sc, err := workload.ScenarioByName(workload.ScenarioTieredDiurnal)
	if err != nil {
		panic(fmt.Sprintf("experiments: elasticity: %v", err))
	}
	stream, err := sc.Requests(requests, Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: elasticity: %v", err))
	}
	out := ElasticityResult{
		Model:    cfg.Name,
		Scenario: sc.Name,
		Requests: requests,
		MaxBatch: maxBatch,
		SLO:      slo,
	}

	costs := serving.NewCostTable()
	type cell struct {
		name      string
		replicas  int
		autoscale *cluster.AutoscaleOptions
	}
	var cells []cell
	for n := 1; n <= maxReplicas; n++ {
		cells = append(cells, cell{name: fmt.Sprintf("static-%d", n), replicas: n})
	}
	// The elastic cell runs a responsive controller: a 250 ms control
	// period with a 1 s warm-up, reacting to queue depth at half the
	// admission cap so replicas are provisioned while the day curve is
	// still climbing, not after the SLO is already gone. The fleet starts
	// at half the ladder — sized for the curve's base rate — and ranges
	// over [1, maxReplicas].
	cells = append(cells, cell{
		name:     "autoscaled",
		replicas: maxReplicas,
		autoscale: &cluster.AutoscaleOptions{
			Min:      1,
			Max:      maxReplicas,
			Interval: 0.25,
			WarmUp:   1,
			CoolDown: 0.25,
			SLO:      slo,
			// Defend the SLO with margin: provision when the windowed p95
			// reaches three quarters of the objective, before the p99 tail
			// crosses it.
			UpTPOTFactor: 0.75,
			UpQueue:      float64(maxBatch) / 2,
			// Proactive rate-based provisioning: a LLaMA-65B replica holds
			// the 12 ms objective to roughly five general-qa arrivals per
			// second (the static ladder's break point), so grow as soon as
			// the windowed rate crosses that — queue and TPOT triggers only
			// fire after the backlog has already formed.
			UpArrivalRate: 5,
			// Drain reluctantly: giving a replica back mid-curve costs a
			// warm-up round-trip when the rate climbs again, and Max bounds
			// the powered-on fleet, so a draining replica blocks the slot a
			// scale-up would need.
			DownQueue: float64(maxBatch) / 8,
		},
	})

	out.Cells = parallelMap(cells, workers, func(c cell) ElasticityCell {
		opt := serving.DefaultOptions(1)
		opt.Costs = costs
		initial := c.replicas
		if c.autoscale != nil {
			// Boot the elastic fleet sized for the day curve's base rate
			// (half the ladder), not cold at the minimum: a fleet that
			// starts under-provisioned builds a backlog before the first
			// control tick can react.
			if initial = (c.autoscale.Min + c.autoscale.Max) / 2; initial < c.autoscale.Min {
				initial = c.autoscale.Min
			}
		}
		cl, err := cluster.NewByName("PAPI", cfg, cluster.Options{
			Replicas:  initial,
			MaxBatch:  maxBatch,
			Router:    cluster.LeastOutstanding(),
			Serving:   opt,
			Autoscale: c.autoscale,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: elasticity %s: %v", c.name, err))
		}
		f, err := cl.Run(stream)
		if err != nil {
			panic(fmt.Sprintf("experiments: elasticity %s: %v", c.name, err))
		}
		ups, drains := 0, 0
		for _, ev := range f.ScaleEvents {
			switch ev.Action {
			case cluster.ScaleUp:
				ups++
			case cluster.ScaleDrain:
				drains++
			}
		}
		return ElasticityCell{
			Config:                c.name,
			Provisioned:           c.replicas,
			PeakReplicas:          f.PeakReplicas,
			ReplicaSeconds:        f.ReplicaSeconds,
			Makespan:              f.Makespan,
			Tokens:                f.Tokens,
			Energy:                f.Energy.Total(),
			JoulesPerToken:        f.JoulesPerToken(),
			InteractiveTPOT:       f.InteractiveTPOT,
			BatchTPOT:             f.BatchTPOT,
			InteractiveAttainment: f.AttainmentClass(slo, workload.ClassInteractive),
			Preemptions:           f.Preemptions,
			ScaleUps:              ups,
			Drains:                drains,
		}
	})
	return out
}

// StaticBaseline returns the cheapest static cell that still meets the
// interactive SLO — "static peak provisioning", what a fleet without
// elasticity must keep powered all day. The second return is false when no
// static cell meets the SLO.
func (r ElasticityResult) StaticBaseline() (ElasticityCell, bool) {
	for _, c := range r.Cells {
		if strings.HasPrefix(c.Config, "static-") && c.MeetsSLO(r.SLO) {
			return c, true
		}
	}
	return ElasticityCell{}, false
}

// Autoscaled returns the elastic cell. The second return is false when the
// sweep had none.
func (r ElasticityResult) Autoscaled() (ElasticityCell, bool) {
	for _, c := range r.Cells {
		if c.Config == "autoscaled" {
			return c, true
		}
	}
	return ElasticityCell{}, false
}

// String renders the provisioning-policy table plus the elasticity headline.
func (r ElasticityResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Elasticity · %s · %s · %d requests · interactive TPOT SLO %v",
			r.Model, r.Scenario, r.Requests, r.SLO.TokenLatency),
		"config", "peak", "replica·s", "J/token", "int TPOT p99", "int attain",
		"preempt", "ups/drains", "SLO")
	for _, c := range r.Cells {
		meets := "miss"
		if c.MeetsSLO(r.SLO) {
			meets = "ok"
		}
		tb.AddRow(c.Config,
			fmt.Sprintf("%d", c.PeakReplicas),
			fmt.Sprintf("%.2f", c.ReplicaSeconds.Seconds()),
			fmt.Sprintf("%.1f", c.JoulesPerToken),
			units.Seconds(c.InteractiveTPOT.P99).String(),
			fmt.Sprintf("%.2f", c.InteractiveAttainment),
			fmt.Sprintf("%d", c.Preemptions),
			fmt.Sprintf("%d/%d", c.ScaleUps, c.Drains),
			meets)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	base, okBase := r.StaticBaseline()
	auto, okAuto := r.Autoscaled()
	switch {
	case okBase && okAuto && auto.MeetsSLO(r.SLO):
		fmt.Fprintf(&b,
			"autoscaled holds the SLO with %.2f replica·s vs %.2f for %s (%.1f%% less) · %.1f vs %.1f J/token\n",
			auto.ReplicaSeconds.Seconds(), base.ReplicaSeconds.Seconds(), base.Config,
			100*(1-units.Ratio(auto.ReplicaSeconds, base.ReplicaSeconds)),
			auto.JoulesPerToken, base.JoulesPerToken)
	case okAuto && auto.MeetsSLO(r.SLO):
		b.WriteString("autoscaled holds the SLO; no static cell does\n")
	default:
		b.WriteString("autoscaled misses the SLO\n")
	}
	return b.String()
}
