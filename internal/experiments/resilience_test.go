package experiments

import (
	"testing"
)

// The resilience matrix's directional acceptance: a mid-peak replica crash
// must cost the static fleet its interactive p99 TPOT SLO for the rest of
// the run, while the autoscaled fleet boots a replacement and re-attains it
// — with no request lost under the retry budget either way.
func TestResilienceDirectional(t *testing.T) {
	r := Resilience()
	if len(r.Cells) != 8 {
		t.Fatalf("matrix has %d cells, want 8", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Plan == "none" {
			if c.Faults != 0 || c.Retries != 0 || c.Failed != 0 || c.ShedArrivals != 0 {
				t.Fatalf("%s/none shows fault activity: %+v", c.Config, c)
			}
		} else if c.Faults == 0 {
			t.Fatalf("%s/%s fired no fault", c.Config, c.Plan)
		}
		if c.Availability != 1 {
			t.Fatalf("%s/%s lost requests: availability %v", c.Config, c.Plan, c.Availability)
		}
	}

	auto, ok := r.Cell("autoscaled", "crash")
	if !ok {
		t.Fatal("matrix has no autoscaled/crash cell")
	}
	static, ok := r.Cell("static-3", "crash")
	if !ok {
		t.Fatal("matrix has no static-3/crash cell")
	}
	if auto.Retries == 0 || static.Retries == 0 {
		t.Fatal("a mid-peak crash must force failover retries")
	}
	if auto.FailoverReprefillTokens == 0 || static.FailoverReprefillTokens == 0 {
		t.Fatal("failover must re-prefill the lost contexts")
	}
	if !auto.RecoveredMeetsSLO(r.SLO) {
		t.Fatalf("autoscaled fleet never re-attained the SLO after the crash: recovered p99 %v against %v",
			auto.RecoveredInteractiveP99, r.SLO.TokenLatency)
	}
	if static.RecoveredMeetsSLO(r.SLO) {
		t.Fatalf("static fleet re-attained the SLO without a replacement boot (recovered p99 %v) — the comparison lost its teeth",
			static.RecoveredInteractiveP99)
	}
	if auto.ScaleUps == 0 {
		t.Fatal("autoscaled recovery happened without a scale-up")
	}
	// The crash degrades the post-fault tail relative to the same fleet's
	// fault-free run.
	autoNone, _ := r.Cell("autoscaled", "none")
	if auto.PostFaultInteractiveP99 <= autoNone.PostFaultInteractiveP99 {
		t.Fatalf("crash did not degrade the autoscaled post-fault tail: %v vs %v",
			auto.PostFaultInteractiveP99, autoNone.PostFaultInteractiveP99)
	}

	// Brownouts shed batch admissions, never interactive ones, and the
	// parked work still completes (availability pinned to 1 above).
	for _, config := range []string{"static-3", "autoscaled"} {
		c, ok := r.Cell(config, "brownout")
		if !ok {
			t.Fatalf("matrix has no %s/brownout cell", config)
		}
		if c.ShedArrivals == 0 {
			t.Fatalf("%s/brownout shed nothing", config)
		}
	}

	// The interactive attainment denominators survived the faults: every
	// cell scored a full tier.
	for _, c := range r.Cells {
		if c.InteractiveAttainment <= 0 || c.InteractiveAttainment > 1 {
			t.Fatalf("%s/%s interactive attainment %v out of range", c.Config, c.Plan, c.InteractiveAttainment)
		}
	}
}
