package experiments

import (
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig. 8/9/10 are the heavyweight sweeps; kept in their own file so -short
// runs can skip them.

func TestFig8Headlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 8 grid")
	}
	r := Fig8()
	if len(r.Cells) != 27 {
		t.Fatalf("cells = %d, want 3 models × 9 configs", len(r.Cells))
	}
	// Headline bands: who wins and by roughly what factor. Paper values:
	// 1.8× / 1.9× / 11.1× and 3.4× energy. Our substrate reproduces the
	// first two closely and the AttAcc-only gap within a factor of two
	// (see EXPERIMENTS.md for the recorded numbers).
	if r.PAPIvsA100AttAcc < 1.4 || r.PAPIvsA100AttAcc > 2.6 {
		t.Errorf("PAPI vs A100+AttAcc = %.2f, want ≈1.8", r.PAPIvsA100AttAcc)
	}
	if r.PAPIvsHBMPIM < r.PAPIvsA100AttAcc {
		t.Errorf("PAPI must beat A100+HBM-PIM at least as much as A100+AttAcc")
	}
	if r.PAPIvsAttAccOnly < 4 {
		t.Errorf("PAPI vs AttAcc-only = %.2f, want ≫ 1 (paper 11.1)", r.PAPIvsAttAccOnly)
	}
	if r.PAPIEnergyVsBase < 1.8 {
		t.Errorf("PAPI energy efficiency = %.2f, want ≫ 1 (paper 3.4)", r.PAPIEnergyVsBase)
	}
	// PAPI never loses badly anywhere.
	for _, cell := range r.Cells {
		if s := cell.Speedup["PAPI"]; s < 0.90 {
			t.Errorf("%s %s: PAPI speedup %.2f < 0.90", cell.Model, cell.Config, s)
		}
	}
	if !strings.Contains(r.String(), "geomean") {
		t.Error("rendering lost the geomeans")
	}
}

func TestFig9Headlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 9 grid")
	}
	r := Fig9()
	if r.Dataset != "general-qa" {
		t.Fatalf("dataset = %s", r.Dataset)
	}
	if r.PAPIvsA100AttAcc < 1.2 {
		t.Errorf("PAPI vs A100+AttAcc on general-qa = %.2f, want > 1.2 (paper 1.7)", r.PAPIvsA100AttAcc)
	}
	if r.PAPIvsAttAccOnly < 3 {
		t.Errorf("PAPI vs AttAcc-only on general-qa = %.2f (paper 8.1)", r.PAPIvsAttAccOnly)
	}
	// §7.2 reports general-qa speedups ≈6% below creative-writing's (1.7 vs
	// 1.8). Our substrate lands both in the same band but with the ordering
	// inverted by a similar few percent (shorter general-qa outputs shrink
	// the attention/communication phases that dilute PAPI's FC advantage);
	// EXPERIMENTS.md records the divergence. Here we assert the two datasets
	// stay within a common band of each other.
	cw := fig8Like(workload.CreativeWriting(),
		[]model.Config{model.GPT3_175B()},
		[]*core.System{core.NewA100AttAcc(), core.NewAttAccOnly(), core.NewPAPI(0)})
	if ratio := r.PAPIvsA100AttAcc / cw.PAPIvsA100AttAcc; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("general-qa speedup (%.2f) diverged from creative-writing (%.2f) beyond ±25%%",
			r.PAPIvsA100AttAcc, cw.PAPIvsA100AttAcc)
	}
	if ratio := r.PAPIvsAttAccOnly / cw.PAPIvsAttAccOnly; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("general-qa AttAcc-only gap (%.2f) diverged from creative-writing's (%.2f)",
			r.PAPIvsAttAccOnly, cw.PAPIvsAttAccOnly)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 10 sweeps")
	}
	r := Fig10()
	// (a): AttAcc-only beats the baseline at batch 4 but collapses as RLP
	// grows; PAPI stays ≥ ~parity everywhere.
	if r.BatchSweep[0].AttAccOnly <= 1 {
		t.Errorf("batch 4: AttAcc-only should beat A100+AttAcc (got %.2f)", r.BatchSweep[0].AttAccOnly)
	}
	last := r.BatchSweep[len(r.BatchSweep)-1]
	if last.AttAccOnly >= 0.5 {
		t.Errorf("batch 128: AttAcc-only should collapse (got %.2f)", last.AttAccOnly)
	}
	for _, row := range r.BatchSweep {
		if row.PAPI < 0.90 {
			t.Errorf("%s: PAPI %.2f < 0.90", row.Config, row.PAPI)
		}
	}
	// (b): PAPI's advantage shrinks as TLP grows (§7.3) and the averages
	// land near the paper's 1.5× / 3.0×.
	first, lastSpec := r.SpecSweep[0], r.SpecSweep[len(r.SpecSweep)-1]
	if first.PAPI <= lastSpec.PAPI {
		t.Errorf("PAPI speedup should shrink with TLP: %.2f → %.2f", first.PAPI, lastSpec.PAPI)
	}
	if r.SpecAvgVsBase < 1.2 || r.SpecAvgVsBase > 3.5 {
		t.Errorf("TLP-sweep average vs baseline = %.2f (paper 1.5)", r.SpecAvgVsBase)
	}
	if r.SpecAvgVsAttAcc < 1.5 {
		t.Errorf("TLP-sweep average vs AttAcc-only = %.2f (paper 3.0)", r.SpecAvgVsAttAcc)
	}
}
