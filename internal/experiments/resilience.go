package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// ResilienceCell is one (provisioning policy × fault plan) run over the
// tiered day-curve traffic: what the failure cost — lost work, failed
// requests, re-prefilled context — and what the interactive tier's tail
// looked like after the fault landed.
type ResilienceCell struct {
	// Config names the policy ("static-N" or "autoscaled"), Plan the fault
	// plan ("none", "crash", "straggler", "brownout").
	Config string
	Plan   string
	// Provisioned is the static replica count, or the autoscaler's max.
	Provisioned  int
	PeakReplicas int
	Makespan     units.Seconds

	// Failure accounting (see cluster.FleetResult).
	Faults                  int
	Retries                 int
	Failed                  int
	Availability            float64
	LostTokens              int
	FailoverReprefillTokens int
	Repins                  int
	ShedArrivals            int
	ScaleUps                int

	// InteractiveTPOT digests the interactive tier's decode cadence over
	// the whole run. PostFaultInteractiveP99 restricts the p99 to requests
	// arriving at or after the first fault instant (whole run when the plan
	// is empty); RecoveredInteractiveP99 to requests arriving after the
	// recovery guard — fault instant plus warm-up and settle time — the
	// window in which a replacement boot can have re-attained the SLO.
	InteractiveTPOT         stats.Summary
	PostFaultInteractiveP99 units.Seconds
	RecoveredInteractiveP99 units.Seconds
	// InteractiveAttainment scores the interactive tier against the SLO,
	// counting the tier's failed requests as misses.
	InteractiveAttainment float64
}

// RecoveredMeetsSLO reports whether the interactive tail re-attained the
// objective once the fault's recovery window passed.
func (c ResilienceCell) RecoveredMeetsSLO(slo workload.SLO) bool {
	return slo.Met(c.RecoveredInteractiveP99)
}

// ResilienceResult is the resilience matrix: identical tiered-diurnal
// traffic served by a static fleet and an autoscaled fleet, each under no
// faults, a mid-peak replica crash, a straggler window, and an
// attention-link brownout. The question it answers is the failover design's
// headline: does elasticity turn a mid-peak crash from a sustained SLO
// breach into a transient — the autoscaler boots a replacement and the
// interactive p99 TPOT re-attains the objective — and what does each fault
// cost in lost work and re-prefill?
type ResilienceResult struct {
	Model    string
	Scenario string
	Requests int
	MaxBatch int
	SLO      workload.SLO
	// Retries and RetryBackoff are the failover policy every faulted cell
	// runs; CrashAt is the mid-peak crash instant, RecoverySettle the guard
	// added to it before the recovered-tail window opens.
	Retries        int
	RetryBackoff   units.Seconds
	CrashAt        units.Seconds
	RecoverySettle units.Seconds
	Cells          []ResilienceCell
}

// Resilience runs the default matrix: LLaMA-65B PAPI fleets over the
// tiered-diurnal scenario — static-3 versus an autoscaled 1–4 fleet — under
// the four canonical plans, with the crash landing on the day curve's peak.
func Resilience() ResilienceResult {
	return ResilienceSweep(model.LLaMA65B(), 4, 240, 16,
		workload.SLO{TokenLatency: units.Milliseconds(12)}, defaultWorkers())
}

// ResilienceSweep measures every (policy × plan) pair on identical traffic.
// Cells run on a worker pool (≤ 1 is serial; both orders produce identical
// results — every cell is independently seeded) and share one
// kernel-pricing cost table, since every fleet is the same PAPI design.
func ResilienceSweep(cfg model.Config, maxReplicas, requests, maxBatch int,
	slo workload.SLO, workers int) ResilienceResult {
	sc, err := workload.ScenarioByName(workload.ScenarioTieredDiurnal)
	if err != nil {
		panic(fmt.Sprintf("experiments: resilience: %v", err))
	}
	stream, err := sc.Requests(requests, Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: resilience: %v", err))
	}
	// The tiered-diurnal curve (12/s ± 80%, 20 s period) peaks at 5 s: the
	// crash lands there, when the fleet can least afford the lost replica.
	crashAt := units.Seconds(5)
	settle := units.Seconds(3)
	out := ResilienceResult{
		Model:          cfg.Name,
		Scenario:       sc.Name,
		Requests:       requests,
		MaxBatch:       maxBatch,
		SLO:            slo,
		Retries:        2,
		RetryBackoff:   units.Milliseconds(50),
		CrashAt:        crashAt,
		RecoverySettle: settle,
	}

	plans := []struct {
		name string
		plan *faults.Plan
	}{
		{"none", nil},
		{"crash", &faults.Plan{Name: "mid-peak-crash", Faults: []faults.Fault{
			{Kind: faults.KindCrash, Replica: 0, At: crashAt.Seconds()},
		}}},
		{"straggler", &faults.Plan{Name: "peak-straggler", Faults: []faults.Fault{
			{Kind: faults.KindStraggler, Replica: 0, At: 4, Duration: 3, Factor: 3},
		}}},
		{"brownout", &faults.Plan{Name: "attention-brownout", Faults: []faults.Fault{
			{Kind: faults.KindBrownout, At: 4, Duration: 3, Factor: 2},
		}}},
	}

	costs := serving.NewCostTable()
	type cell struct {
		config    string
		planName  string
		plan      *faults.Plan
		replicas  int
		autoscale *cluster.AutoscaleOptions
	}
	var cells []cell
	for _, p := range plans {
		cells = append(cells, cell{
			config: fmt.Sprintf("static-%d", maxReplicas-1), planName: p.name,
			plan: p.plan, replicas: maxReplicas - 1,
		})
	}
	for _, p := range plans {
		cells = append(cells, cell{
			config: "autoscaled", planName: p.name, plan: p.plan,
			replicas: maxReplicas,
			// The elasticity sweep's controller tuning (see elasticity.go),
			// with a shorter warm-up: replacement boots race the fault's
			// backlog, and the comparison is about whether elasticity
			// recovers the tail, not about provisioning lead time.
			autoscale: &cluster.AutoscaleOptions{
				Min:           1,
				Max:           maxReplicas,
				Interval:      0.25,
				WarmUp:        1,
				CoolDown:      0.25,
				SLO:           slo,
				UpTPOTFactor:  0.75,
				UpQueue:       float64(maxBatch) / 2,
				UpArrivalRate: 5,
				DownQueue:     float64(maxBatch) / 8,
			},
		})
	}

	out.Cells = parallelMap(cells, workers, func(c cell) ResilienceCell {
		opt := serving.DefaultOptions(1)
		opt.Costs = costs
		initial := c.replicas
		if c.autoscale != nil {
			if initial = (c.autoscale.Min + c.autoscale.Max) / 2; initial < c.autoscale.Min {
				initial = c.autoscale.Min
			}
		}
		copt := cluster.Options{
			Replicas:  initial,
			MaxBatch:  maxBatch,
			Router:    cluster.LeastOutstanding(),
			Serving:   opt,
			Autoscale: c.autoscale,
			// The post-fault digest replays the realised stream against the
			// fault window, so this figure keeps per-request retention on.
			RetainRequests: true,
			RetainStream:   true,
		}
		if c.plan != nil {
			copt.Faults = c.plan
			copt.Retries = out.Retries
			copt.RetryBackoff = out.RetryBackoff
		}
		cl, err := cluster.NewByName("PAPI", cfg, copt)
		if err != nil {
			panic(fmt.Sprintf("experiments: resilience %s/%s: %v", c.config, c.planName, err))
		}
		f, err := cl.Run(stream)
		if err != nil {
			panic(fmt.Sprintf("experiments: resilience %s/%s: %v", c.config, c.planName, err))
		}
		faultAt := units.Seconds(0)
		if c.plan != nil && !c.plan.Empty() {
			faultAt = c.plan.Faults[0].Start()
		}
		ups := 0
		for _, ev := range f.ScaleEvents {
			if ev.Action == cluster.ScaleUp {
				ups++
			}
		}
		return ResilienceCell{
			Config:                  c.config,
			Plan:                    c.planName,
			Provisioned:             c.replicas,
			PeakReplicas:            f.PeakReplicas,
			Makespan:                f.Makespan,
			Faults:                  f.Faults,
			Retries:                 f.Retries,
			Failed:                  len(f.FailedRequests),
			Availability:            f.Availability(),
			LostTokens:              f.LostTokens,
			FailoverReprefillTokens: f.FailoverReprefillTokens,
			Repins:                  f.Repins,
			ShedArrivals:            f.ShedArrivals,
			ScaleUps:                ups,
			InteractiveTPOT:         f.InteractiveTPOT,
			PostFaultInteractiveP99: interactiveP99After(f, faultAt),
			RecoveredInteractiveP99: interactiveP99After(f, faultAt+settle),
			InteractiveAttainment:   f.AttainmentClass(slo, workload.ClassInteractive),
		}
	})
	return out
}

// interactiveP99After digests the p99 TPOT of interactive multi-token
// requests that arrived at or after the cut, joining the realised arrival
// stream with the per-request metrics by ID.
func interactiveP99After(f *cluster.FleetResult, cut units.Seconds) units.Seconds {
	arrival := make(map[int]units.Seconds, len(f.Stream))
	class := make(map[int]workload.Class, len(f.Stream))
	for _, req := range f.Stream {
		if _, seen := arrival[req.ID]; seen {
			continue // failover re-injections keep the original arrival
		}
		arrival[req.ID] = req.Arrival
		class[req.ID] = req.Class
	}
	var tpots []float64
	for _, rm := range f.Requests {
		at, ok := arrival[rm.ID]
		if !ok || at < cut || rm.OutputTokens <= 1 || class[rm.ID] != workload.ClassInteractive {
			continue
		}
		tpots = append(tpots, rm.TPOT.Seconds())
	}
	if len(tpots) == 0 {
		return 0
	}
	sort.Float64s(tpots)
	return units.Seconds(stats.Percentile(tpots, 99))
}

// Cell returns the (config, plan) cell. The second return is false when the
// matrix has none.
func (r ResilienceResult) Cell(config, plan string) (ResilienceCell, bool) {
	for _, c := range r.Cells {
		if c.Config == config && c.Plan == plan {
			return c, true
		}
	}
	return ResilienceCell{}, false
}

// String renders the (policy × plan) table plus the recovery headline.
func (r ResilienceResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Resilience · %s · %s · %d requests · interactive TPOT SLO %v · %d retries",
			r.Model, r.Scenario, r.Requests, r.SLO.TokenLatency, r.Retries),
		"config", "plan", "peak", "faults", "retries", "failed", "avail",
		"shed", "post-fault p99", "recovered p99", "SLO")
	for _, c := range r.Cells {
		meets := "miss"
		if c.RecoveredMeetsSLO(r.SLO) {
			meets = "ok"
		}
		tb.AddRow(c.Config, c.Plan,
			fmt.Sprintf("%d", c.PeakReplicas),
			fmt.Sprintf("%d", c.Faults),
			fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d", c.Failed),
			fmt.Sprintf("%.3f", c.Availability),
			fmt.Sprintf("%d", c.ShedArrivals),
			c.PostFaultInteractiveP99.String(),
			c.RecoveredInteractiveP99.String(),
			meets)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	auto, okAuto := r.Cell("autoscaled", "crash")
	var static ResilienceCell
	okStatic := false
	for _, c := range r.Cells {
		if c.Plan == "crash" && c.Config != "autoscaled" {
			static, okStatic = c, true
			break
		}
	}
	switch {
	case okAuto && okStatic && auto.RecoveredMeetsSLO(r.SLO):
		fmt.Fprintf(&b,
			"mid-peak crash: autoscaled re-attains the SLO (recovered p99 %v, %d scale-ups) while %s sits at %v\n",
			auto.RecoveredInteractiveP99, auto.ScaleUps, static.Config, static.RecoveredInteractiveP99)
	case okAuto:
		fmt.Fprintf(&b, "mid-peak crash: autoscaled does not re-attain the SLO (recovered p99 %v)\n",
			auto.RecoveredInteractiveP99)
	}
	return b.String()
}
