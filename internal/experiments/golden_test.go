package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/papi-sim/papi/internal/serving"
)

// The golden suite pins the full numeric output of the grown fleet figures
// (`papibench -figure capacity|scenarios|elasticity`) as byte-stable JSON
// fixtures under testdata/golden/. Any change to the serving engine, the
// cluster layer, the scenario generators, or the sweeps that shifts a single
// float shows up as a fixture diff — the regression net under every
// refactor. After an intentional behaviour change, refresh with:
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the fixture diff like any other code change (docs/TESTING.md).
var updateGolden = flag.Bool("update", false, "rewrite the golden figure fixtures under testdata/golden/")

// goldenFigures maps fixture names to result generators. Results marshal
// deterministically: struct fields in declaration order, float64s in Go's
// shortest round-tripping form.
func goldenFigures() map[string]func() any {
	return map[string]func() any{
		"capacity":   func() any { return Capacity() },
		"scenarios":  func() any { return Scenarios() },
		"elasticity": func() any { return Elasticity() },
		"dse":        func() any { return DSE() },
		"kvcache":    func() any { return KVCache() },
		"resilience": func() any { return Resilience() },
		"scale":      func() any { return Scale() },
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func marshalGolden(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshaling golden: %v", err)
	}
	return append(data, '\n')
}

func TestGoldenFigures(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The fixtures pin exact float bit patterns. Go may fuse
		// multiply-adds on other architectures, which changes results by an
		// ulp; the equivalence and invariant suites still run everywhere.
		t.Skipf("golden fixtures are pinned on amd64, running on %s", runtime.GOARCH)
	}
	for name, gen := range goldenFigures() {
		t.Run(name, func(t *testing.T) {
			got := marshalGolden(t, gen())
			path := goldenPath(name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (generate with -update): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s drifted from its golden fixture.\n%s\nIf the change is intentional, refresh with:\n\tgo test ./internal/experiments -run TestGolden -update\nand review the fixture diff.",
					name, goldenDiff(want, got))
			}
		})
	}
}

// goldenDiff renders a compact first-divergence report: full JSON diffs of
// these fixtures run to thousands of lines, and the first differing line is
// what identifies the drifted quantity.
func goldenDiff(want, got []byte) string {
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %s\n  regen:  %s",
				i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Sprintf("fixture is %d lines, regenerated output %d lines (one is a prefix of the other)",
		len(wantLines), len(gotLines))
}

// The same fixtures must hold on the reference decode path: the golden
// bytes pin figure *semantics*, and the fast path claims bit-identical
// results, so `-fastpath=off` must regenerate the identical fixtures.
func TestGoldenFiguresReferencePath(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden fixtures are pinned on amd64, running on %s", runtime.GOARCH)
	}
	if !serving.DefaultFastPath() {
		t.Fatal("unexpected package default: fast path already off")
	}
	serving.SetDefaultFastPath(false)
	defer serving.SetDefaultFastPath(true)
	for name, gen := range goldenFigures() {
		t.Run(name, func(t *testing.T) {
			got := marshalGolden(t, gen())
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing fixture (generate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s on the reference path drifted from its golden fixture:\n%s",
					name, goldenDiff(want, got))
			}
		})
	}
}

// The regenerated figure must also be stable run-to-run within one process
// (worker-pool scheduling must not leak into results) — cheap to assert
// while the goldens are already in memory.
func TestGoldenFiguresRunToRunStable(t *testing.T) {
	for name, gen := range goldenFigures() {
		t.Run(name, func(t *testing.T) {
			a := marshalGolden(t, gen())
			b := marshalGolden(t, gen())
			if !bytes.Equal(a, b) {
				t.Fatalf("%s is not run-to-run stable:\n%s", name, goldenDiff(a, b))
			}
		})
	}
}
