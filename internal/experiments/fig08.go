package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig8Cell is one configuration's outcome across the four designs,
// normalised to A100+AttAcc (speedup > 1 = faster than the baseline,
// efficiency > 1 = less energy than the baseline).
type Fig8Cell struct {
	Model string
	Config
	Speedup    map[string]float64
	Efficiency map[string]float64
}

// Fig8Result reproduces Fig. 8: end-to-end speedup (top) and energy
// efficiency (bottom) on the creative-writing workload.
type Fig8Result struct {
	Dataset string
	Cells   []Fig8Cell
	// Geomean speedups/efficiencies per design across all cells.
	GeoSpeedup    map[string]float64
	GeoEfficiency map[string]float64
	// Headline ratios: PAPI versus each comparison design (paper: 1.8× over
	// A100+AttAcc, 1.9× over A100+HBM-PIM, 11.1× over AttAcc-only; 3.4×
	// energy efficiency over A100+AttAcc).
	PAPIvsA100AttAcc float64
	PAPIvsHBMPIM     float64
	PAPIvsAttAccOnly float64
	PAPIEnergyVsBase float64
}

// fig8Designs are the four evaluated systems, freshly built per call.
func fig8Designs() []*core.System { return core.Designs() }

// Fig8 runs the full grid: three models × the batch/spec grid × four designs.
func Fig8() Fig8Result {
	return fig8Like(workload.CreativeWriting(),
		[]model.Config{model.LLaMA65B(), model.GPT3_66B(), model.GPT3_175B()},
		fig8Designs())
}

// fig8Like is shared by Fig8 and Fig9.
func fig8Like(ds workload.Dataset, cfgs []model.Config, designs []*core.System) Fig8Result {
	out := Fig8Result{
		Dataset:       ds.Name,
		GeoSpeedup:    map[string]float64{},
		GeoEfficiency: map[string]float64{},
	}
	speedups := map[string][]float64{}
	effs := map[string][]float64{}

	for _, cfg := range cfgs {
		for _, c := range Fig8Grid() {
			cell := Fig8Cell{
				Model:      cfg.Name,
				Config:     c,
				Speedup:    map[string]float64{},
				Efficiency: map[string]float64{},
			}
			baseTime, baseEnergy := 0.0, 0.0
			for i, sys := range designs {
				r := runOne(sys, cfg, ds, c)
				t, e := r.TotalTime().Seconds(), r.Energy.Total().Joules()
				if i == 0 {
					baseTime, baseEnergy = t, e
				}
				cell.Speedup[sys.Name] = baseTime / t
				cell.Efficiency[sys.Name] = baseEnergy / e
				speedups[sys.Name] = append(speedups[sys.Name], baseTime/t)
				effs[sys.Name] = append(effs[sys.Name], baseEnergy/e)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	for name, xs := range speedups {
		out.GeoSpeedup[name] = stats.GeoMean(xs)
	}
	for name, xs := range effs {
		out.GeoEfficiency[name] = stats.GeoMean(xs)
	}
	papi := out.GeoSpeedup["PAPI"]
	if v := out.GeoSpeedup["A100+AttAcc"]; v > 0 {
		out.PAPIvsA100AttAcc = papi / v
	}
	if v := out.GeoSpeedup["A100+HBM-PIM"]; v > 0 {
		out.PAPIvsHBMPIM = papi / v
	}
	if v := out.GeoSpeedup["AttAcc-only"]; v > 0 {
		out.PAPIvsAttAccOnly = papi / v
	}
	if v := out.GeoEfficiency["A100+AttAcc"]; v > 0 {
		out.PAPIEnergyVsBase = out.GeoEfficiency["PAPI"] / v
	}
	return out
}

// designOrder returns the design names present in the cells, baseline first.
func (r Fig8Result) designOrder() []string {
	if len(r.Cells) == 0 {
		return nil
	}
	order := []string{"A100+AttAcc", "A100+HBM-PIM", "AttAcc-only", "PAPI"}
	var present []string
	for _, name := range order {
		if _, ok := r.Cells[0].Speedup[name]; ok {
			present = append(present, name)
		}
	}
	return present
}

// String renders speedup and efficiency tables plus the headline geomeans.
func (r Fig8Result) String() string {
	var b strings.Builder
	designs := r.designOrder()
	fmt.Fprintf(&b, "Fig. 8-style end-to-end comparison on %s (normalised to A100+AttAcc)\n", r.Dataset)

	render := func(title string, get func(Fig8Cell, string) float64) {
		cols := append([]string{"model", "config"}, designs...)
		t := stats.NewTable(title, cols...)
		for _, cell := range r.Cells {
			row := []string{cell.Model, cell.Config.String()}
			for _, d := range designs {
				row = append(row, fmt.Sprintf("%.2f", get(cell, d)))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	render("(a) speedup", func(c Fig8Cell, d string) float64 { return c.Speedup[d] })
	render("(b) energy efficiency", func(c Fig8Cell, d string) float64 { return c.Efficiency[d] })

	fmt.Fprintf(&b, "geomean speedup:    ")
	for _, d := range designs {
		fmt.Fprintf(&b, " %s %.2f ", d, r.GeoSpeedup[d])
	}
	fmt.Fprintf(&b, "\ngeomean efficiency: ")
	for _, d := range designs {
		fmt.Fprintf(&b, " %s %.2f ", d, r.GeoEfficiency[d])
	}
	fmt.Fprintf(&b, "\nPAPI vs A100+AttAcc %.2f×", r.PAPIvsA100AttAcc)
	if r.PAPIvsHBMPIM > 0 {
		fmt.Fprintf(&b, " | vs A100+HBM-PIM %.2f×", r.PAPIvsHBMPIM)
	}
	fmt.Fprintf(&b, " | vs AttAcc-only %.2f× | energy vs baseline %.2f×\n",
		r.PAPIvsAttAccOnly, r.PAPIEnergyVsBase)
	return b.String()
}
