package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func smallDSEAxes() DSEAxes {
	return DSEAxes{
		Alphas: []float64{8, design.DefaultAlpha},
		AttnStacks: []AttnStackAxis{
			{Label: "1P1B", FPUs: 1, Banks: 1},
			{Label: "1P2B", FPUs: 1, Banks: 2, BanksPerDie: 128},
		},
		AttnDeviceCounts: []int{60},
		AttnLinkGBps:     []float64{32, 64},
	}
}

func smallDSESweep(workers int) DSEResult {
	return DSESweep(smallDSEAxes(), model.LLaMA65B(), workload.GeneralQA(),
		1, 16, 16, 12, workload.SLO{TokenLatency: units.Milliseconds(12)}, 0.9, workers)
}

// The acceptance bar shared by every sweep: the parallel runner must return
// results identical to the serial path — cell for cell, bit for bit — even
// though all cells share one kernel-pricing cost table.
func TestDSEParallelMatchesSerial(t *testing.T) {
	serial := smallDSESweep(1)
	parallel := smallDSESweep(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel DSE sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// The default grid must span at least three axes with multiple levels each
// (the acceptance criterion of the design-space figure) and visit every
// combination exactly once, in axis-nesting order.
func TestDSEDefaultGridShape(t *testing.T) {
	axes := DefaultDSEAxes()
	multi := 0
	for _, n := range []int{len(axes.Alphas), len(axes.AttnStacks), len(axes.AttnDeviceCounts), len(axes.AttnLinkGBps)} {
		if n > 1 {
			multi++
		}
	}
	if multi < 3 {
		t.Fatalf("default DSE grid has %d multi-level axes, want ≥ 3", multi)
	}

	r := DSE()
	want := len(axes.Alphas) * len(axes.AttnStacks) * len(axes.AttnDeviceCounts) * len(axes.AttnLinkGBps)
	if len(r.Points) != want {
		t.Fatalf("grid has %d points, want %d", len(r.Points), want)
	}
	seen := map[string]bool{}
	for _, p := range r.Points {
		if seen[p.Design] {
			t.Errorf("design %q evaluated twice", p.Design)
		}
		seen[p.Design] = true
		if p.Attainment < 0 || p.Attainment > 1 {
			t.Errorf("%s: attainment %g outside [0, 1]", p.Design, p.Attainment)
		}
		if p.TokensPerSec <= 0 || p.JoulesPerToken <= 0 {
			t.Errorf("%s: degenerate outcome %+v", p.Design, p)
		}
	}
}

// Best must be exactly the throughput-max point among those meeting the
// target, and (on the default grid at the published rate) some design must
// meet it while some other misses it — otherwise the figure explores a
// region with no feasibility frontier and says nothing.
func TestDSEBestAndFrontier(t *testing.T) {
	r := DSE()
	var best DSEPoint
	pass, fail := 0, 0
	for _, p := range r.Points {
		if p.Attainment >= r.Target {
			pass++
			if p.TokensPerSec > best.TokensPerSec {
				best = p
			}
		} else {
			fail++
		}
	}
	if pass == 0 || fail == 0 {
		t.Fatalf("default grid has no feasibility frontier: %d pass, %d fail", pass, fail)
	}
	if !reflect.DeepEqual(r.Best, best) {
		t.Fatalf("Best = %+v, want the throughput-max SLO-meeting point %+v", r.Best, best)
	}
	if !strings.Contains(r.String(), "best under SLO") {
		t.Fatal("rendered figure does not report the winning design")
	}
}

// Every grid cell round-trips its spec through JSON before building; the
// spec realiser must therefore always produce exportable, buildable specs,
// and the calibrated registry point must be on the grid.
func TestDSESpecsExportAndBuild(t *testing.T) {
	axes := DefaultDSEAxes()
	foundDefault := false
	for _, alpha := range axes.Alphas {
		for _, stack := range axes.AttnStacks {
			for _, devices := range axes.AttnDeviceCounts {
				for _, linkGBps := range axes.AttnLinkGBps {
					spec := dseSpec(alpha, stack, devices, linkGBps)
					data, err := spec.Export()
					if err != nil {
						t.Fatalf("%s: %v", spec.Name, err)
					}
					imported, err := design.ImportSpec(data)
					if err != nil {
						t.Fatalf("%s: %v", spec.Name, err)
					}
					if _, err := imported.Build(); err != nil {
						t.Fatalf("%s: %v", spec.Name, err)
					}
					if alpha == design.DefaultAlpha && stack.Label == "1P2B" &&
						devices == design.AttnDevices && linkGBps == 32 {
						foundDefault = true
					}
				}
			}
		}
	}
	if !foundDefault {
		t.Fatal("default grid does not include the paper's PAPI point (α=28, 1P2B×60 @32GB/s)")
	}
}
