package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
)

// Fig6Row is one bar pair of Fig. 6: the measured (Eq. 1) versus estimated
// (Eq. 2, RLP×TLP) arithmetic intensity of the FC kernel.
type Fig6Row struct {
	RLP, TLP  int
	Measured  float64
	Estimated float64
	RelError  float64
	// DecisionFlip reports whether the estimation error would change the
	// scheduler's placement decision at the calibrated α *materially*:
	// the placements differ and the measured AI is more than 5% away from
	// α. §5.1's argument is exactly this — the estimate only overshoots
	// deep in compute-bound territory, so any boundary-straddling case has
	// near-identical execution times on both targets.
	DecisionFlip bool
}

// Fig6Result reproduces Fig. 6 (GPT-3 66B).
type Fig6Result struct {
	Rows        []Fig6Row
	MaxRelError float64
	AnyFlip     bool
}

// Fig6 evaluates the AI estimator across the paper's RLP × TLP grid.
func Fig6() Fig6Result {
	cfg := model.GPT3_66B()
	var out Fig6Result
	for _, tlp := range []int{8, 6, 4, 2} {
		for _, rlp := range []int{128, 64, 32, 16, 8, 4} {
			measured := model.ExactFCAI(rlp*tlp, cfg.Hidden)
			estimated := model.EstimatedAI(rlp, tlp)
			rel := math.Abs(estimated-measured) / measured
			flip := (measured >= core.DefaultAlpha) != (estimated >= core.DefaultAlpha) &&
				math.Abs(measured-core.DefaultAlpha)/core.DefaultAlpha > 0.05
			out.Rows = append(out.Rows, Fig6Row{
				RLP: rlp, TLP: tlp,
				Measured: measured, Estimated: estimated,
				RelError: rel, DecisionFlip: flip,
			})
			if rel > out.MaxRelError {
				out.MaxRelError = rel
			}
			out.AnyFlip = out.AnyFlip || flip
		}
	}
	return out
}

// String renders the comparison.
func (r Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — Measured (Eq. 1) vs estimated (Eq. 2) FC arithmetic intensity, GPT-3 66B\n")
	t := stats.NewTable("", "TLP", "RLP", "measured", "estimated", "rel.err", "flips decision")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.TLP),
			fmt.Sprintf("%d", row.RLP),
			fmt.Sprintf("%.1f", row.Measured),
			fmt.Sprintf("%.0f", row.Estimated),
			fmt.Sprintf("%.1f%%", 100*row.RelError),
			fmt.Sprintf("%v", row.DecisionFlip))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "max relative error %.1f%%; any placement decision flipped: %v (paper: deviations never flip the decision)\n",
		100*r.MaxRelError, r.AnyFlip)
	return b.String()
}
