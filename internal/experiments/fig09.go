package experiments

import (
	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig9 reproduces Fig. 9: the general-qa dataset on GPT-3 175B with the
// three designs the figure plots (A100+AttAcc, AttAcc-only, PAPI).
// Paper headline: 1.7× over A100+AttAcc, 8.1× over AttAcc-only, 3.1× energy
// efficiency — all lower than creative-writing because the shorter outputs
// shrink the decode phase PAPI accelerates (§7.2).
func Fig9() Fig8Result {
	return fig8Like(workload.GeneralQA(),
		[]model.Config{model.GPT3_175B()},
		[]*core.System{core.NewA100AttAcc(), core.NewAttAccOnly(), core.NewPAPI(0)})
}
