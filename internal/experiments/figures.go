package experiments

import "fmt"

// Figure is one named reproduction or grown experiment: the ID as
// cmd/papibench spells it (`-figure <id>`) and a runner producing its
// printable result. Keeping the registry here — rather than in the command —
// lets the docs cross-check test validate every `-figure` flag quoted in the
// documentation against the real set.
type Figure struct {
	ID  string
	Run func() (fmt.Stringer, error)
}

// Figures returns every figure in presentation order.
func Figures() []Figure {
	return []Figure{
		{"2", func() (fmt.Stringer, error) { return Fig2(), nil }},
		{"3", func() (fmt.Stringer, error) { return Fig3(64), nil }},
		{"4", func() (fmt.Stringer, error) { return Fig4(), nil }},
		{"6", func() (fmt.Stringer, error) { return Fig6(), nil }},
		{"7e", func() (fmt.Stringer, error) { return Fig7Energy(), nil }},
		{"7p", func() (fmt.Stringer, error) { return Fig7Power(), nil }},
		{"8", func() (fmt.Stringer, error) { return Fig8(), nil }},
		{"9", func() (fmt.Stringer, error) { return Fig9(), nil }},
		{"10", func() (fmt.Stringer, error) { return Fig10(), nil }},
		{"11", func() (fmt.Stringer, error) { return Fig11(), nil }},
		{"12", func() (fmt.Stringer, error) { return Fig12(), nil }},
		{"ablation-alpha", func() (fmt.Stringer, error) { return AblationAlpha(), nil }},
		{"ablation-hybrid", func() (fmt.Stringer, error) { return AblationHybridPIM(), nil }},
		{"ablation-sched", func() (fmt.Stringer, error) { return AblationDynamicVsStatic() }},
		{"ablation-batching", func() (fmt.Stringer, error) { return AblationBatching(), nil }},
		{"ablation-schedcost", func() (fmt.Stringer, error) { return AblationSchedulingCost(), nil }},
		{"capacity", func() (fmt.Stringer, error) { return Capacity(), nil }},
		{"scenarios", func() (fmt.Stringer, error) { return Scenarios(), nil }},
		{"elasticity", func() (fmt.Stringer, error) { return Elasticity(), nil }},
		{"dse", func() (fmt.Stringer, error) { return DSE(), nil }},
		{"kvcache", func() (fmt.Stringer, error) { return KVCache(), nil }},
		{"resilience", func() (fmt.Stringer, error) { return Resilience(), nil }},
		{"scale", func() (fmt.Stringer, error) { return Scale(), nil }},
	}
}

// FigureIDs lists every registered figure ID in presentation order.
func FigureIDs() []string {
	figs := Figures()
	ids := make([]string, len(figs))
	for i, f := range figs {
		ids[i] = f.ID
	}
	return ids
}

// FigureByID resolves one figure.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
}
