package experiments

import "fmt"

// Figure is one named reproduction or grown experiment: the ID as
// cmd/papibench spells it (`-figure <id>`) and a runner producing its
// printable result. Keeping the registry here — rather than in the command —
// lets the docs cross-check test validate every `-figure` flag quoted in the
// documentation against the real set.
type Figure struct {
	ID  string
	Run func() fmt.Stringer
}

// Figures returns every figure in presentation order.
func Figures() []Figure {
	return []Figure{
		{"2", func() fmt.Stringer { return Fig2() }},
		{"3", func() fmt.Stringer { return Fig3(64) }},
		{"4", func() fmt.Stringer { return Fig4() }},
		{"6", func() fmt.Stringer { return Fig6() }},
		{"7e", func() fmt.Stringer { return Fig7Energy() }},
		{"7p", func() fmt.Stringer { return Fig7Power() }},
		{"8", func() fmt.Stringer { return Fig8() }},
		{"9", func() fmt.Stringer { return Fig9() }},
		{"10", func() fmt.Stringer { return Fig10() }},
		{"11", func() fmt.Stringer { return Fig11() }},
		{"12", func() fmt.Stringer { return Fig12() }},
		{"ablation-alpha", func() fmt.Stringer { return AblationAlpha() }},
		{"ablation-hybrid", func() fmt.Stringer { return AblationHybridPIM() }},
		{"ablation-sched", func() fmt.Stringer { return AblationDynamicVsStatic() }},
		{"ablation-batching", func() fmt.Stringer { return AblationBatching() }},
		{"ablation-schedcost", func() fmt.Stringer { return AblationSchedulingCost() }},
		{"capacity", func() fmt.Stringer { return Capacity() }},
		{"scenarios", func() fmt.Stringer { return Scenarios() }},
		{"elasticity", func() fmt.Stringer { return Elasticity() }},
		{"dse", func() fmt.Stringer { return DSE() }},
	}
}

// FigureIDs lists every registered figure ID in presentation order.
func FigureIDs() []string {
	figs := Figures()
	ids := make([]string, len(figs))
	for i, f := range figs {
		ids[i] = f.ID
	}
	return ids
}

// FigureByID resolves one figure.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
}
