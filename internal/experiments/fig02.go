package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/kernels"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
)

// Fig2Point is one dot on the Fig. 2 roofline plot.
type Fig2Point struct {
	Config
	Kernel           string
	AI               float64
	AttainableTFLOPS float64
	Bound            kernels.Boundedness
}

// Fig2Result reproduces Fig. 2: the OPT-30B roofline study on the A100.
type Fig2Result struct {
	RidgeAI float64
	// SweepA is Fig. 2(a): batch 4..128 at speculation length 8.
	SweepA []Fig2Point
	// SweepB is Fig. 2(b): speculation 2..8 at batch 32.
	SweepB []Fig2Point
}

// Fig2 runs the roofline characterisation.
func Fig2() Fig2Result {
	cfg := model.OPT30B()
	roof := kernels.A100Roofline()
	res := Fig2Result{RidgeAI: roof.Ridge()}

	point := func(c Config, k model.Kernel) Fig2Point {
		p := kernels.Characterize(k, roof)
		return Fig2Point{
			Config:           c,
			Kernel:           k.Kind.String(),
			AI:               p.AI,
			AttainableTFLOPS: p.Attainable.FLOPSPerSec() / 1e12,
			Bound:            p.Bound,
		}
	}
	kvLens := func(batch int) []int {
		ls := make([]int, batch)
		for i := range ls {
			ls[i] = 1024 // mid-generation context, as in the paper's setup
		}
		return ls
	}

	for _, batch := range []int{4, 8, 16, 32, 64, 128} {
		c := Config{Batch: batch, Spec: 8}
		res.SweepA = append(res.SweepA,
			point(c, cfg.FFNKernel(batch*c.Spec)),
			point(c, cfg.AttentionKernel(c.Spec, kvLens(batch))))
	}
	for _, spec := range []int{2, 4, 6, 8} {
		c := Config{Batch: 32, Spec: spec}
		res.SweepB = append(res.SweepB,
			point(c, cfg.FFNKernel(c.Batch*spec)),
			point(c, cfg.AttentionKernel(spec, kvLens(c.Batch))))
	}
	return res
}

// String renders both sweeps.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — Roofline of OPT-30B decoding kernels on A100 (ridge = %.0f FLOP/B)\n", r.RidgeAI)
	render := func(title string, pts []Fig2Point) {
		t := stats.NewTable(title, "config", "kernel", "AI (FLOP/B)", "attainable", "bound")
		for _, p := range pts {
			t.AddRow(p.Config.String(), p.Kernel,
				fmt.Sprintf("%.1f", p.AI),
				fmt.Sprintf("%.1f TFLOP/s", p.AttainableTFLOPS),
				p.Bound.String())
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	render("(a) batch sweep, speculation length 8", r.SweepA)
	render("(b) speculation sweep, batch 32", r.SweepB)
	return b.String()
}
