package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig12Bar is one system's per-token decode time, split by phase (ms).
type Fig12Bar struct {
	System      string
	AttentionMS float64
	FCMS        float64
	CommMS      float64
	OtherMS     float64
	TotalMS     float64
	CommShare   float64
}

// Fig12Result reproduces Fig. 12: the execution-time breakdown per token for
// AttAcc-only versus PIM-only PAPI (LLaMA-65B, batch 4, speculation 4).
type Fig12Result struct {
	Bars []Fig12Bar
	// FCSpeedup is PIM-only PAPI's FC advantage (paper: 2.9×).
	FCSpeedup float64
	// AttentionSlowdown is Attn-PIM (1P2B) versus AttAcc (1P1B) on the
	// attention phase (paper: 1.7× slower).
	AttentionSlowdown float64
	// PAPICommShare is communication's share of PIM-only PAPI's decode time
	// (paper: 28.2%).
	PAPICommShare float64
}

// Fig12 measures both systems.
func Fig12() Fig12Result {
	cfg := model.LLaMA65B()
	ds := workload.CreativeWriting()
	c := Config{Batch: 4, Spec: 4}

	bar := func(sys *core.System) Fig12Bar {
		r := runOne(sys, cfg, ds, c)
		tok := float64(r.Tokens)
		total := r.DecodeTime.Seconds()
		return Fig12Bar{
			System:      sys.Name,
			AttentionMS: 1e3 * r.Breakdown.Attention.Seconds() / tok,
			FCMS:        1e3 * r.Breakdown.FC.Seconds() / tok,
			CommMS:      1e3 * r.Breakdown.Communication.Seconds() / tok,
			OtherMS:     1e3 * r.Breakdown.Other.Seconds() / tok,
			TotalMS:     1e3 * total / tok,
			CommShare:   r.Breakdown.Communication.Seconds() / total,
		}
	}
	ao := bar(core.NewAttAccOnly())
	pp := bar(core.NewPIMOnlyPAPI())
	return Fig12Result{
		Bars:              []Fig12Bar{ao, pp},
		FCSpeedup:         ao.FCMS / pp.FCMS,
		AttentionSlowdown: pp.AttentionMS / ao.AttentionMS,
		PAPICommShare:     pp.CommShare,
	}
}

// String renders the stacked-bar data.
func (r Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — Decode time per token (LLaMA-65B, batch 4, spec 4)\n")
	t := stats.NewTable("", "system", "attention", "FC", "communication", "other", "total")
	for _, bar := range r.Bars {
		t.AddRow(bar.System,
			fmt.Sprintf("%.3f ms", bar.AttentionMS),
			fmt.Sprintf("%.3f ms", bar.FCMS),
			fmt.Sprintf("%.3f ms", bar.CommMS),
			fmt.Sprintf("%.3f ms", bar.OtherMS),
			fmt.Sprintf("%.3f ms", bar.TotalMS))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "FC speedup %.2f× (paper 2.9×); attention slowdown %.2f× (paper 1.7×); PAPI comm share %.1f%% (paper 28.2%%)\n",
		r.FCSpeedup, r.AttentionSlowdown, 100*r.PAPICommShare)
	return b.String()
}
