package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
)

// Fig7EnergyResult reproduces Fig. 7(a)/(b): the PIM energy breakdown for the
// FC kernel without data reuse and with reuse level 64.
type Fig7EnergyResult struct {
	// Shares are fractions of dynamic energy [DRAM access, transfer, compute].
	NoReuse [3]float64
	Reuse64 [3]float64
	// Detailed is the DRAM-access share measured through the command-level
	// DRAM simulator (reuse 1), validating the analytic constant.
	DetailedNoReuseDRAMShare float64
}

// Fig7Energy measures the breakdown on a 1P1B device (the paper's "traditional
// PIM design" baseline for this analysis).
func Fig7Energy() Fig7EnergyResult {
	// Shares are scale-invariant; a modest kernel keeps the command-level
	// DRAM validation fast.
	d := pim.New(hbm.AttAccStack(), 1)
	d.Governor = false
	w := units.Bytes(32 * units.MiB)
	shares := func(reuse float64) [3]float64 {
		k := pim.Kernel{Name: "fc", Class: pim.ClassFC,
			Flops: units.FLOPs(reuse * w.Bytes()), UniqueBytes: w}
		e := d.Execute(k, 1).Energy
		dyn := (e.DRAMAccess + e.Transfer + e.Compute).Joules()
		return [3]float64{
			e.DRAMAccess.Joules() / dyn,
			e.Transfer.Joules() / dyn,
			e.Compute.Joules() / dyn,
		}
	}
	det := d.ExecuteDetailed(pim.Kernel{Name: "fc", Class: pim.ClassFC,
		Flops: units.FLOPs(w.Bytes()), UniqueBytes: w}, 1).Energy
	detDyn := (det.DRAMAccess + det.Transfer + det.Compute).Joules()
	return Fig7EnergyResult{
		NoReuse:                  shares(1),
		Reuse64:                  shares(64),
		DetailedNoReuseDRAMShare: det.DRAMAccess.Joules() / detDyn,
	}
}

// String renders the breakdown.
func (r Fig7EnergyResult) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7(a)/(b) — PIM energy breakdown for the FC kernel\n")
	t := stats.NewTable("", "data reuse", "DRAM access", "transfer", "computation")
	row := func(name string, s [3]float64) {
		t.AddRow(name,
			fmt.Sprintf("%.1f%%", 100*s[0]),
			fmt.Sprintf("%.1f%%", 100*s[1]),
			fmt.Sprintf("%.1f%%", 100*s[2]))
	}
	row("1 (none)", r.NoReuse)
	row("64", r.Reuse64)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: 96.7%% DRAM access at no reuse, 33.1%% at reuse 64\n")
	fmt.Fprintf(&b, "command-level DRAM simulator (reuse 1): %.1f%% DRAM access\n",
		100*r.DetailedNoReuseDRAMShare)
	return b.String()
}

// Fig7PowerRow is one curve point of Fig. 7(c).
type Fig7PowerRow struct {
	Reuse   float64
	OneP1B  float64 // W per stack
	TwoP1B  float64
	FourP1B float64
}

// Fig7PowerResult reproduces Fig. 7(c): demand power versus data-reuse level
// for the three PIM configurations against the 116 W HBM budget.
type Fig7PowerResult struct {
	Rows    []Fig7PowerRow
	BudgetW float64
	// MinReuse4P1B is the smallest in-budget reuse for 4P1B (paper: 4).
	MinReuse4P1B float64
}

// Fig7Power sweeps reuse ∈ {1,4,16,64}.
func Fig7Power() Fig7PowerResult {
	m := pim.DefaultEnergyModel()
	one := hbm.AttAccStack()
	two := hbm.NewStack(hbm.TwoPerBank)
	four := hbm.FCPIMStack()
	out := Fig7PowerResult{BudgetW: hbm.PowerBudgetW, MinReuse4P1B: pim.MinReuseWithinBudget(four, m)}
	for _, r := range []float64{1, 4, 16, 64} {
		out.Rows = append(out.Rows, Fig7PowerRow{
			Reuse:   r,
			OneP1B:  pim.DemandPower(one, m, r).Watts(),
			TwoP1B:  pim.DemandPower(two, m, r).Watts(),
			FourP1B: pim.DemandPower(four, m, r).Watts(),
		})
	}
	return out
}

// String renders the power curves.
func (r Fig7PowerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7(c) — PIM demand power vs data-reuse level (budget %.0f W)\n", r.BudgetW)
	t := stats.NewTable("", "reuse", "1P1B", "2P1B", "4P1B")
	for _, row := range r.Rows {
		mark := func(w float64) string {
			s := fmt.Sprintf("%.0f W", w)
			if w > r.BudgetW {
				s += " (over)"
			}
			return s
		}
		t.AddRow(fmt.Sprintf("%.0f", row.Reuse), mark(row.OneP1B), mark(row.TwoP1B), mark(row.FourP1B))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "4P1B first fits the budget at reuse %.0f (paper: ≥4)\n", r.MinReuse4P1B)
	return b.String()
}
