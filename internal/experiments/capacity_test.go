package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func smallSweep() CapacityResult {
	return CapacitySweep(CapacitySystems(), model.LLaMA65B(), workload.GeneralQA(),
		2, 24, 8, []float64{4, 200},
		workload.SLO{TokenLatency: units.Milliseconds(12)}, 0.9)
}

func TestCapacitySweep(t *testing.T) {
	res := smallSweep()
	if len(res.Curves) != 3 {
		t.Fatalf("curves for %d systems, want 3", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", c.System, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Attainment < 0 || p.Attainment > 1 {
				t.Errorf("%s @ %g: attainment %v outside [0,1]", c.System, p.QPS, p.Attainment)
			}
			if p.TokensPerSec <= 0 {
				t.Errorf("%s @ %g: no throughput", c.System, p.QPS)
			}
		}
		// MaxQPS is consistent with the measured points.
		var want float64
		for _, p := range c.Points {
			if p.Attainment >= res.Target && p.QPS > want {
				want = p.QPS
			}
		}
		if c.MaxQPS != want {
			t.Errorf("%s: MaxQPS %g, want %g", c.System, c.MaxQPS, want)
		}
	}
	out := res.String()
	for _, name := range []string{"PAPI", "A100+AttAcc", "PIM-only PAPI"} {
		if !strings.Contains(out, name) {
			t.Errorf("rendering missing %s:\n%s", name, out)
		}
	}
}

func TestCapacitySweepDeterministic(t *testing.T) {
	if a, b := smallSweep(), smallSweep(); !reflect.DeepEqual(a, b) {
		t.Fatalf("capacity sweep diverged across runs:\n%+v\n%+v", a, b)
	}
}

func TestCapacityHeterogeneousBeatsPIMOnly(t *testing.T) {
	// The GPU-less variant pays prefill on PIM, so under any offered load
	// its tail TTFT must trail the heterogeneous designs'.
	res := smallSweep()
	byName := map[string]CapacityCurve{}
	for _, c := range res.Curves {
		byName[c.System] = c
	}
	papi, pimOnly := byName["PAPI"], byName["PIM-only PAPI"]
	if papi.Points[0].TTFTP99 >= pimOnly.Points[0].TTFTP99 {
		t.Fatalf("PAPI TTFT p99 %v should beat PIM-only %v",
			papi.Points[0].TTFTP99, pimOnly.Points[0].TTFTP99)
	}
}
