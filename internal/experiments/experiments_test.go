package experiments

import (
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/kernels"
	"github.com/papi-sim/papi/internal/pim"
)

// These tests assert the *shape* fidelity contract of EXPERIMENTS.md: who
// wins, where crossovers fall, and that factors are in the paper's ballpark.

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	// (a): FC memory-bound below batch 32, compute-bound at ≥ 32 (spec 8);
	// attention memory-bound everywhere.
	for _, p := range r.SweepA {
		switch {
		case p.Kernel == "attention" && p.Bound != kernels.MemoryBound:
			t.Errorf("(a) %s attention should be memory-bound", p.Config)
		case p.Kernel == "ffn" && p.Batch < 32 && p.Bound != kernels.MemoryBound:
			t.Errorf("(a) %s FC should be memory-bound", p.Config)
		case p.Kernel == "ffn" && p.Batch >= 32 && p.Bound != kernels.ComputeBound:
			t.Errorf("(a) %s FC should be compute-bound", p.Config)
		}
	}
	// (b): FC crosses between spec 6 and 8 at batch 32.
	for _, p := range r.SweepB {
		if p.Kernel != "ffn" {
			continue
		}
		if p.Spec <= 4 && p.Bound != kernels.MemoryBound {
			t.Errorf("(b) spec %d FC should be memory-bound", p.Spec)
		}
		if p.Spec == 8 && p.Bound != kernels.ComputeBound {
			t.Errorf("(b) spec 8 FC should be compute-bound")
		}
	}
	if !strings.Contains(r.String(), "memory-bound") {
		t.Error("rendering lost content")
	}
}

func TestFig3Decay(t *testing.T) {
	r := Fig3(32)
	if len(r.IterationsPerRequest) != 32 {
		t.Fatalf("requests = %d", len(r.IterationsPerRequest))
	}
	// Sorted descending, with a real spread.
	first := r.IterationsPerRequest[0]
	last := r.IterationsPerRequest[len(r.IterationsPerRequest)-1]
	if first < 2*last {
		t.Errorf("iteration spread too small: %d..%d", last, first)
	}
	// RLP decays monotonically across the sampled fractions.
	for i := 1; i < 5; i++ {
		if r.RLPAt[i] > r.RLPAt[i-1] {
			t.Errorf("RLP grew between samples: %v", r.RLPAt)
		}
	}
	if r.RLPAt[0] != 32 || r.RLPAt[4] != 1 {
		t.Errorf("RLP endpoints = %v, want 32 .. 1", r.RLPAt)
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4()
	for _, row := range r.Rows {
		p := row.Batch * row.Spec
		if p <= 4 && (row.AttAcc >= 1 || row.HBMPIM >= 1) {
			t.Errorf("%s: PIM should beat A100 at low parallelism (AttAcc %.2f, HBM-PIM %.2f)",
				row.Config, row.AttAcc, row.HBMPIM)
		}
		if row.Batch >= 16 && row.AttAcc <= 1.5 {
			t.Errorf("%s: A100 should significantly beat AttAcc (got %.2f)", row.Config, row.AttAcc)
		}
		if row.Batch >= 16 && row.HBMPIM < row.AttAcc {
			t.Errorf("%s: HBM-PIM (1P2B) should be no faster than AttAcc (1P1B) on FC", row.Config)
		}
	}
	// Fig. 4's crossover: between batch 8 and 16 at spec 2.
	if r.CrossoverBatch < 2 || r.CrossoverBatch > 16 {
		t.Errorf("A100/AttAcc crossover at batch %d, want within [2,16]", r.CrossoverBatch)
	}
}

func TestFig6Estimator(t *testing.T) {
	r := Fig6()
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Estimated < row.Measured {
			t.Errorf("RLP %d TLP %d: estimate should upper-bound the measurement", row.RLP, row.TLP)
		}
	}
	if r.AnyFlip {
		t.Error("estimation error flipped a placement decision; §5.1 says it must not")
	}
	if r.MaxRelError > 0.25 {
		t.Errorf("max relative error %.2f too large", r.MaxRelError)
	}
}

func TestFig7EnergyShares(t *testing.T) {
	r := Fig7Energy()
	if r.NoReuse[0] < 0.95 || r.NoReuse[0] > 0.99 {
		t.Errorf("no-reuse DRAM share = %.3f, want ≈0.967", r.NoReuse[0])
	}
	if r.Reuse64[0] < 0.25 || r.Reuse64[0] > 0.40 {
		t.Errorf("reuse-64 DRAM share = %.3f, want ≈0.31–0.33", r.Reuse64[0])
	}
	// The command-level measurement agrees with the analytic constant.
	if r.DetailedNoReuseDRAMShare < 0.90 {
		t.Errorf("detailed DRAM share = %.3f, want > 0.90", r.DetailedNoReuseDRAMShare)
	}
}

func TestFig7PowerShape(t *testing.T) {
	r := Fig7Power()
	if r.MinReuse4P1B != 4 {
		t.Errorf("4P1B min in-budget reuse = %v, want 4", r.MinReuse4P1B)
	}
	first := r.Rows[0]
	if first.OneP1B <= r.BudgetW {
		t.Errorf("1P1B at reuse 1 should exceed the budget (%.0f W)", first.OneP1B)
	}
	if !(first.FourP1B > first.TwoP1B && first.TwoP1B > first.OneP1B) {
		t.Errorf("power ordering wrong at reuse 1: %v", first)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].FourP1B >= r.Rows[i-1].FourP1B {
			t.Error("4P1B power must decrease with reuse")
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11()
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup <= 1 {
			t.Errorf("%s: hybrid PIM should always beat AttAcc-only (got %.2f)", row.Config, row.Speedup)
		}
	}
	if r.Highest <= r.Lowest {
		t.Errorf("speedup should grow with parallelism: %.2f → %.2f", r.Lowest, r.Highest)
	}
	if r.Average < 1.5 || r.Average > 6 {
		t.Errorf("average %.2f outside the plausible band around the paper's 2.3", r.Average)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12()
	if r.FCSpeedup < 2 {
		t.Errorf("FC speedup %.2f, want ≥ 2 (paper 2.9)", r.FCSpeedup)
	}
	if r.AttentionSlowdown < 1.2 || r.AttentionSlowdown > 2.6 {
		t.Errorf("attention slowdown %.2f, want ≈1.7–2", r.AttentionSlowdown)
	}
	if r.PAPICommShare < 0.10 || r.PAPICommShare > 0.40 {
		t.Errorf("comm share %.2f, want a significant fraction (paper 0.282)", r.PAPICommShare)
	}
	for _, bar := range r.Bars {
		if bar.FCMS < bar.AttentionMS {
			t.Errorf("%s: FC should dominate attention per token", bar.System)
		}
	}
}

func TestAblationDynamicBeatsStatics(t *testing.T) {
	r, err := AblationDynamicVsStatic()
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicMS > r.StaticPUMS*1.001 {
		t.Errorf("dynamic (%0.f ms) should not lose to always-PU (%.0f ms)", r.DynamicMS, r.StaticPUMS)
	}
	if r.DynamicMS > r.StaticPIMMS*1.001 {
		t.Errorf("dynamic (%0.f ms) should not lose to always-PIM (%.0f ms)", r.DynamicMS, r.StaticPIMMS)
	}
	if r.Reschedules == 0 {
		t.Error("the workload should cross α and trigger reschedules")
	}
}

func TestAblationDynamicVsStaticPropagatesErrors(t *testing.T) {
	// A weight pool far too small for LLaMA-65B: serving.New must reject the
	// design, and the ablation must surface that error instead of panicking
	// or returning a partial comparison table.
	_, err := ablationDynamicVsStatic(func() *core.System {
		sys := core.NewPAPI(0)
		sys.FCPIM = pim.New(hbm.AttAccStack(), 1)
		return sys
	})
	if err == nil {
		t.Fatal("ablation on an undersized design should fail")
	}
	if !strings.Contains(err.Error(), "ablation-sched") {
		t.Errorf("error should identify the failing ablation and policy: %v", err)
	}
}

func TestAblationAlphaCalibrationNearOptimum(t *testing.T) {
	r := AblationAlpha()
	var calibratedMS, bestMS float64
	for _, row := range r.Rows {
		if row.Alpha == r.Calibrated {
			calibratedMS = row.TotalMS
		}
		if bestMS == 0 || row.TotalMS < bestMS {
			bestMS = row.TotalMS
		}
	}
	if calibratedMS > bestMS*1.10 {
		t.Errorf("calibrated α is %.1f%% off the sweep optimum", 100*(calibratedMS/bestMS-1))
	}
}

func TestAblationHybridPIMWins(t *testing.T) {
	r := AblationHybridPIM()
	if r.Average <= 1 {
		t.Errorf("hybrid PIM average speedup %.2f, want > 1", r.Average)
	}
}

func TestAblationBatching(t *testing.T) {
	r := AblationBatching()
	if r.Speedup <= 1 {
		t.Errorf("continuous batching should beat static on bursty arrivals, got %.2f", r.Speedup)
	}
}

func TestRenderingsNonEmpty(t *testing.T) {
	ablSched, err := AblationDynamicVsStatic()
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"fig3":      Fig3(16).String(),
		"fig4":      Fig4().String(),
		"fig6":      Fig6().String(),
		"fig7e":     Fig7Energy().String(),
		"fig7p":     Fig7Power().String(),
		"fig11":     Fig11().String(),
		"fig12":     Fig12().String(),
		"ablAlpha":  AblationAlpha().String(),
		"ablHybrid": AblationHybridPIM().String(),
		"ablSched":  ablSched.String(),
		"ablBatch":  AblationBatching().String(),
	} {
		if len(s) < 50 || !strings.Contains(s, "\n") {
			t.Errorf("%s rendering suspiciously short: %q", name, s)
		}
	}
}

func TestAblationSchedulingCost(t *testing.T) {
	r := AblationSchedulingCost()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Total time is monotone in decision cost, negligible at ≤ 1 µs, and a
	// 50 ms per-iteration search is ruinous (§8's practicality argument).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].TotalMS < r.Rows[i-1].TotalMS-1e-6 {
			t.Fatalf("total time not monotone in decision cost: %+v", r.Rows)
		}
	}
	if ratio := r.Rows[1].TotalMS / r.Rows[0].TotalMS; ratio > 1.01 {
		t.Errorf("1 µs predictor should be free (ratio %.3f)", ratio)
	}
	if r.SlowdownAt50ms < 2 {
		t.Errorf("50 ms search slowdown = %.2f, should be ruinous", r.SlowdownAt50ms)
	}
	if len(AblationSchedulingCost().String()) < 80 {
		t.Error("rendering too short")
	}
}
