package experiments

import (
	"strings"
	"testing"
)

// The scale figure is self-verifying: every strategy must conserve the full
// stream, and the sharded drive must be bit-identical to the serial oracle.
func TestScaleInvariants(t *testing.T) {
	r := Scale()
	if len(r.Cells) != 3 {
		t.Fatalf("scale has %d cells, want 3", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Completed != r.Requests {
			t.Errorf("%s: completed %d of %d requests", c.Config, c.Completed, r.Requests)
		}
		if c.Tokens <= 0 || c.TokensPerSec <= 0 || c.Makespan <= 0 {
			t.Errorf("%s: degenerate cell %+v", c.Config, c)
		}
		if c.TTFT.P99 < c.TTFT.P50 || c.TPOT.P99 < c.TPOT.P50 {
			t.Errorf("%s: percentiles not monotone: %+v %+v", c.Config, c.TTFT, c.TPOT)
		}
		if c.InteractiveAttainment < 0 || c.InteractiveAttainment > 1 {
			t.Errorf("%s: attainment %v outside [0, 1]", c.Config, c.InteractiveAttainment)
		}
	}
	serial, sharded, segments := r.Cells[0], r.Cells[1], r.Cells[2]
	if !serial.MatchesSerial || !sharded.MatchesSerial {
		t.Errorf("sharded drive diverged from the serial oracle: %+v", sharded)
	}
	if sharded.Tokens != serial.Tokens || sharded.Makespan != serial.Makespan {
		t.Errorf("sharded totals diverged: %+v vs %+v", sharded, serial)
	}
	if segments.Segments != 2 || segments.Tokens != serial.Tokens {
		t.Errorf("checkpointed split lost tokens: %d vs %d", segments.Tokens, serial.Tokens)
	}
	if !strings.Contains(r.String(), "serial") {
		t.Error("rendering lost the strategy table")
	}
}
