package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func smallScenarioSweep(workers int) ScenariosResult {
	return ScenariosSweep(workload.Scenarios(), CapacitySystems(), model.LLaMA65B(),
		2, 12, 8, workload.SLO{TokenLatency: units.Milliseconds(12)}, workers)
}

// The acceptance bar: the parallel sweep runner must return results
// identical to the serial path — cell for cell, bit for bit.
func TestScenariosParallelMatchesSerial(t *testing.T) {
	serial := smallScenarioSweep(1)
	parallel := smallScenarioSweep(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestCapacityParallelMatchesSerial(t *testing.T) {
	run := func(workers int) CapacityResult {
		return CapacitySweepWorkers(CapacitySystems(), model.LLaMA65B(), workload.GeneralQA(),
			2, 24, 8, []float64{5, 20, 80}, workload.SLO{TokenLatency: units.Milliseconds(12)}, 0.9, workers)
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel capacity sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestScenariosSweepCoversGridDeterministically(t *testing.T) {
	a := smallScenarioSweep(4)
	b := smallScenarioSweep(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scenario sweep diverged between identical runs")
	}
	wantCells := len(workload.Scenarios()) * len(CapacitySystems())
	if len(a.Cells) != wantCells {
		t.Fatalf("sweep has %d cells, want %d", len(a.Cells), wantCells)
	}
	i := 0
	for _, sc := range workload.Scenarios() {
		for _, sys := range CapacitySystems() {
			c := a.Cells[i]
			if c.Scenario != sc.Name || c.System != sys.Name {
				t.Fatalf("cell %d is (%s, %s), want (%s, %s): parallel fold broke ordering",
					i, c.Scenario, c.System, sc.Name, sys.Name)
			}
			if c.Requests <= 0 || c.Tokens <= 0 || c.TokensPerSec <= 0 || c.Energy <= 0 {
				t.Fatalf("cell %d degenerate: %+v", i, c)
			}
			i++
		}
	}
	// Within a scenario, every design faces identical traffic, so the served
	// request count must agree across systems.
	for i := 0; i < len(a.Cells); i += len(CapacitySystems()) {
		for j := 1; j < len(CapacitySystems()); j++ {
			if a.Cells[i+j].Requests != a.Cells[i].Requests {
				t.Fatalf("scenario %s served %d requests on %s but %d on %s",
					a.Cells[i].Scenario, a.Cells[i].Requests, a.Cells[i].System,
					a.Cells[i+j].Requests, a.Cells[i+j].System)
			}
		}
	}
	if s := a.String(); !strings.Contains(s, "chat-multiturn") || !strings.Contains(s, "PIM-only PAPI") {
		t.Fatalf("rendering missing cells:\n%s", s)
	}
}

// The multi-turn scenario must serve more requests than conversations (the
// closed loop actually generates follow-ups) and grow per-request context.
func TestScenariosMultiTurnServesFollowUps(t *testing.T) {
	res := smallScenarioSweep(2)
	for _, c := range res.Cells {
		if c.Scenario != workload.ScenarioChatMultiTurn {
			continue
		}
		if c.Requests <= res.Count {
			t.Fatalf("%s on %s served %d requests for %d conversations; follow-ups missing",
				c.Scenario, c.System, c.Requests, res.Count)
		}
	}
}

func TestParallelMapOrderAndPanic(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got := parallelMap(items, 8, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d: order not preserved", i, v, i*i)
		}
	}
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	parallelMap(items, 8, func(x int) int {
		if x%3 == 0 {
			panic("boom")
		}
		return x
	})
}
