package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// KVCacheConfig is one cache configuration under sweep: a display label
// plus the kv.Options the serving engines run with.
type KVCacheConfig struct {
	Label string
	KV    kv.Options
}

// DefaultKVCacheConfigs returns the published sweep: the sharing-off
// baseline (the pre-block byte-ledger engine, bit-identical by the
// equivalence pin) against block sizes 16/32/64 crossed with two tier
// splits — a cramped quarter-size cold tier and the default 4× one. The
// split only matters once demotions outrun the smaller tier's capacity, so
// the two sizes bracket the regime where parked state starts getting
// evicted instead of surviving cold.
func DefaultKVCacheConfigs() []KVCacheConfig {
	out := []KVCacheConfig{
		{Label: "sharing-off", KV: kv.Options{BlockTokens: 32, Sharing: false}},
	}
	for _, b := range []int{16, 32, 64} {
		for _, cold := range []float64{0.25, 4} {
			out = append(out, KVCacheConfig{
				Label: fmt.Sprintf("b%d/cold%gx", b, cold),
				KV:    kv.Options{BlockTokens: b, Sharing: true, ColdFactor: cold},
			})
		}
	}
	return out
}

// KVCacheCell is one (scenario, cache configuration) outcome: the prefill
// ledger the prefix index is meant to shrink, the block traffic between the
// tiers, and the latency the cache motion buys or costs.
type KVCacheCell struct {
	Scenario    string
	Config      string
	BlockTokens int
	ColdFactor  float64
	Sharing     bool

	Requests int
	Tokens   int
	Makespan units.Seconds

	// Prefill ledger: tokens actually prefetched into the cache, the
	// subset that was recomputation of context already paid for once
	// (the re-prefill tax), and the tokens adopted from resident blocks
	// instead (the prefix index's savings).
	PrefillTokens   int
	ReprefillTokens int
	SharedTokens    int

	// Prefix-index traffic at block granularity.
	Lookups int
	Hits    int
	HitRate float64

	// Tier motion: hot adoptions, cold promotions, demotions under
	// pressure, and blocks evicted outright (their state lost).
	ReusedBlocks   int
	PromotedBlocks int
	DemotedBlocks  int
	EvictedBlocks  int

	// Host-link transfer totals the tier motion paid.
	TransferBytes units.Bytes
	TransferTime  units.Seconds

	TPOTP99 units.Seconds
}

// KVCacheResult is the block-level KV-cache figure: every cache
// configuration run over identical traffic on both caching-sensitive
// scenarios (chat-multiturn's carried contexts, longctx-heavy's shared
// documents), on a fleet whose attention pool is deliberately too small to
// hold the working set — the regime where block sharing, tier sizing, and
// eviction policy become visible in end-to-end latency.
type KVCacheResult struct {
	Model         string
	Design        string
	Replicas      int
	MaxBatch      int
	Conversations int
	Requests      int
	Cells         []KVCacheCell
}

// KVCache runs the default figure: the DefaultKVCacheConfigs sweep on
// OPT-30B over 56 chat-multiturn conversations and 48 longctx-heavy
// requests (6 shared-document groups), 2 replicas of 4-deep batches.
func KVCache() KVCacheResult {
	return KVCacheSweep(DefaultKVCacheConfigs(), model.OPT30B(), 2, 4, 56, 48, defaultWorkers())
}

// kvcacheSpec realises the figure's constrained fleet: the registry PAPI
// design with its attention pool shrunk to a single HBM-PIM device. The
// full 60-device pool would hold every scenario's working set outright —
// no eviction, no demotion, every configuration identical. One stack
// (~12k OPT-30B tokens) still fits the largest longctx request alone, but
// not a batch of them plus the resident prefix cache, so the tiers
// actually move.
func kvcacheSpec() design.Spec {
	spec := design.PAPI(0)
	spec.Name = "PAPI-1stack"
	spec.Description = "PAPI with a single-device attention pool, for KV-cache pressure studies"
	spec.AttnPIM = design.HBMPIMPool(1)
	return spec
}

// kvcacheScenario resolves a registered scenario, panicking on a name the
// registry no longer knows — a programming error, not a runtime condition.
func kvcacheScenario(name string) workload.Scenario {
	sc, err := workload.ScenarioByName(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: kvcache: %v", err))
	}
	return sc
}

// KVCacheSweep evaluates every cache configuration over one shared pair of
// seeded workloads on a worker pool of the given size (≤ 1 runs serially;
// identical results either way — cells are independent). All cells share
// one hardware design, so a single kernel-pricing cost table serves the
// sweep: kv.Options changes admission and the prefill ledger, never kernel
// pricing.
func KVCacheSweep(configs []KVCacheConfig, cfg model.Config,
	replicas, maxBatch, conversations, requests, workers int) KVCacheResult {
	out := KVCacheResult{
		Model:         cfg.Name,
		Design:        kvcacheSpec().Name,
		Replicas:      replicas,
		MaxBatch:      maxBatch,
		Conversations: conversations,
		Requests:      requests,
	}

	// Both traffic patterns are sampled once and shared read-only: every
	// configuration faces byte-identical conversations and requests.
	chat, err := kvcacheScenario(workload.ScenarioChatMultiTurn).Plan(conversations, Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: kvcache chat plan: %v", err))
	}
	longctx, err := kvcacheScenario(workload.ScenarioLongCtxHeavy).Requests(requests, Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: kvcache longctx stream: %v", err))
	}
	// Tag shared retrieved documents: 6 document groups over 60 % of the
	// stream, document lengths in the prompt's own regime.
	longctx = workload.AssignPrefixGroups(longctx, 6,
		workload.LengthDist{Median: 1024, Sigma: 0.4, Min: 256, Max: 2048}, 0.6, Seed)
	costs := serving.NewCostTable()

	type cellKey struct {
		scenario string
		config   KVCacheConfig
	}
	var cells []cellKey
	for _, sc := range []string{workload.ScenarioChatMultiTurn, workload.ScenarioLongCtxHeavy} {
		for _, c := range configs {
			cells = append(cells, cellKey{sc, c})
		}
	}

	out.Cells = parallelMap(cells, workers, func(k cellKey) KVCacheCell {
		kvOpt := k.config.KV
		opt := serving.DefaultOptions(1)
		opt.Costs = costs
		opt.KV = &kvOpt
		cl, err := cluster.NewFromSpecs([]design.Spec{kvcacheSpec()}, cfg, cluster.Options{
			Replicas: replicas,
			MaxBatch: maxBatch,
			// Least-outstanding keeps placement identical in every cell:
			// the KV-headroom router reads the very footprints the sweep
			// varies, which would entangle cache effects with routing.
			Router:  cluster.LeastOutstanding(),
			Serving: opt,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: kvcache %s/%s: %v", k.scenario, k.config.Label, err))
		}
		var f *cluster.FleetResult
		if k.scenario == workload.ScenarioChatMultiTurn {
			f, err = cl.RunPlan(chat)
		} else {
			f, err = cl.Run(longctx)
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: kvcache %s/%s: %v", k.scenario, k.config.Label, err))
		}

		resolved := kvOpt.Resolved()
		cell := KVCacheCell{
			Scenario:    k.scenario,
			Config:      k.config.Label,
			BlockTokens: resolved.BlockTokens,
			ColdFactor:  resolved.ColdFactor,
			Sharing:     kvOpt.Sharing,
			Requests:    f.Completed,
			Tokens:      f.Tokens,
			Makespan:    f.Makespan,
			TPOTP99:     units.Seconds(f.TPOT.P99),
		}
		for _, r := range f.Replicas {
			cell.PrefillTokens += r.PrefillTokens
			cell.ReprefillTokens += r.ReprefillTokens
			if r.KV == nil {
				continue
			}
			cell.SharedTokens += r.KV.SharedTokens
			cell.Lookups += r.KV.Lookups
			cell.Hits += r.KV.Hits
			cell.ReusedBlocks += r.KV.ReusedBlocks
			cell.PromotedBlocks += r.KV.PromotedBlocks
			cell.DemotedBlocks += r.KV.DemotedBlocks
			cell.EvictedBlocks += r.KV.EvictedBlocks
			cell.TransferBytes += r.KV.TransferBytes
			cell.TransferTime += r.KV.TransferTime
		}
		if cell.Lookups > 0 {
			cell.HitRate = float64(cell.Hits) / float64(cell.Lookups)
		}
		return cell
	})
	return out
}

// String renders the sweep as one table per scenario-free grid.
func (r KVCacheResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Block-level KV cache · %s on %s ×%d (batch %d) · %d conversations / %d longctx requests",
			r.Model, r.Design, r.Replicas, r.MaxBatch, r.Conversations, r.Requests),
		"scenario", "config", "hit%", "shared tok", "re-prefill", "prefill",
		"promoted", "demoted", "evicted", "xfer", "TPOT p99", "makespan")
	for _, c := range r.Cells {
		hit := "-"
		if c.Sharing {
			hit = fmt.Sprintf("%.1f%%", 100*c.HitRate)
		}
		tb.AddRow(
			c.Scenario,
			c.Config,
			hit,
			fmt.Sprintf("%d", c.SharedTokens),
			fmt.Sprintf("%d", c.ReprefillTokens),
			fmt.Sprintf("%d", c.PrefillTokens),
			fmt.Sprintf("%d", c.PromotedBlocks),
			fmt.Sprintf("%d", c.DemotedBlocks),
			fmt.Sprintf("%d", c.EvictedBlocks),
			c.TransferTime.String(),
			c.TPOTP99.String(),
			c.Makespan.String())
	}
	var b strings.Builder
	b.WriteString(tb.String())
	return b.String()
}
