package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// DSEAxes spans the design grid the exploration sweeps, every axis a knob
// the declarative design layer exposes. The paper's PAPI is one point of the
// grid (α = 28, 1P2B × 60 behind 32 GB/s); the sweep asks what the
// neighbouring hardware would have done on the same traffic.
type DSEAxes struct {
	// Alphas sweeps the scheduler's memory-boundedness threshold (§5.2).
	Alphas []float64
	// AttnStacks sweeps the attention pool's xPyB PIM organisation (§6.2):
	// the generational choice between AttAcc-style 1P1B, HBM-PIM-style 1P2B,
	// and denser FPU provisioning.
	AttnStacks []AttnStackAxis
	// AttnDeviceCounts sweeps the disaggregated attention pool size.
	AttnDeviceCounts []int
	// AttnLinkGBps sweeps the attention fabric's host-side bandwidth (§6.3).
	AttnLinkGBps []float64
}

// AttnStackAxis is one attention-stack generation: an xPyB organisation
// plus its die floorplan (0 banks/die solves the Eq. (3) area constraint).
type AttnStackAxis struct {
	Label       string
	FPUs, Banks int
	BanksPerDie int
}

// DefaultDSEAxes returns the published grid: 3 thresholds × 3 stack
// generations × 2 pool sizes × 2 fabric bandwidths = 36 designs.
func DefaultDSEAxes() DSEAxes {
	return DSEAxes{
		Alphas: []float64{8, design.DefaultAlpha, 112},
		AttnStacks: []AttnStackAxis{
			{Label: "1P1B", FPUs: 1, Banks: 1},                   // AttAcc generation
			{Label: "1P2B", FPUs: 1, Banks: 2, BanksPerDie: 128}, // HBM-PIM / Attn-PIM generation
			{Label: "2P1B", FPUs: 2, Banks: 1},                   // denser FPUs, area-solved floorplan
		},
		AttnDeviceCounts: []int{30, 60},
		AttnLinkGBps:     []float64{32, 64},
	}
}

// DSEPoint is one evaluated design: its coordinates on the axes and the
// fleet-level outcome on the shared traffic.
type DSEPoint struct {
	Design       string
	Alpha        float64
	AttnStack    string
	AttnDevices  int
	AttnLinkGBps float64

	TokensPerSec   float64
	JoulesPerToken float64
	TPOTP99        units.Seconds
	Attainment     float64
}

// DSEResult is the design-space exploration: every grid design run over
// identical traffic, plus the best point under the SLO target.
type DSEResult struct {
	Model    string
	Dataset  string
	Replicas int
	Requests int
	RateQPS  float64
	SLO      workload.SLO
	Target   float64
	Points   []DSEPoint
	// Best is the highest-throughput design whose attainment meets the
	// target (zero value when none does).
	Best DSEPoint
}

// DSE runs the default design-space exploration: the DefaultDSEAxes grid of
// PAPI variants on LLaMA-65B general-qa traffic, one replica per design,
// under the 12 ms TPOT SLO at a 90 % target. The 32-request admission cap
// lets RLP range across the α axis (an α above the cap would be
// indistinguishable from always-PIM).
func DSE() DSEResult {
	return DSESweep(DefaultDSEAxes(), model.LLaMA65B(), workload.GeneralQA(),
		1, 48, 32, 12, workload.SLO{TokenLatency: units.Milliseconds(12)}, 0.9, defaultWorkers())
}

// dseSpec realises one grid cell as a declarative design spec: the registry
// PAPI entry with the cell's coordinates applied.
func dseSpec(alpha float64, stack AttnStackAxis, devices int, linkGBps float64) design.Spec {
	spec := design.PAPI(alpha)
	spec.Name = fmt.Sprintf("α=%g %s×%d @%gGB/s", alpha, stack.Label, devices, linkGBps)
	spec.Description = "design-space exploration grid point"
	// Attention-specialised pools: no FC weight-reuse datapath, derated FC
	// reduction trees (§6.1).
	weightReuse := false
	spec.AttnPIM = &design.PIMSpec{
		FPUs:          stack.FPUs,
		Banks:         stack.Banks,
		BanksPerDie:   stack.BanksPerDie,
		Count:         devices,
		FCWeightReuse: &weightReuse,
		FCComputeEff:  0.5,
	}
	// The fabric is the registry's CXL preset with only the bandwidth axis
	// applied, so the α=28 / 32 GB/s grid point stays the registry baseline
	// even if the preset is recalibrated.
	link := design.CXL2Link()
	link.Name = fmt.Sprintf("cxl-%g", linkGBps)
	link.GBps = linkGBps
	spec.AttnLink = link
	return spec
}

// DSESweep evaluates every grid design over one shared seeded request
// stream on a worker pool of the given size (≤ 1 runs serially; both paths
// produce identical results — every cell is independent). Each cell's spec
// is round-tripped through its JSON encoding before building, so the sweep
// exercises exactly the path a hand-written design file takes. All grid
// cells share PAPI's FC side (GPU pool, FC-PIM pool, PU fabric), so one
// kernel-pricing cost table serves the whole grid: the α and attention axes
// change placement and attention pricing, not the memoized FC pricings.
func DSESweep(axes DSEAxes, cfg model.Config, ds workload.Dataset,
	replicas, requests, maxBatch int, rate float64, slo workload.SLO, target float64,
	workers int) DSEResult {
	out := DSEResult{
		Model:    cfg.Name,
		Dataset:  ds.Name,
		Replicas: replicas,
		Requests: requests,
		RateQPS:  rate,
		SLO:      slo,
		Target:   target,
	}

	// Every design faces byte-identical traffic (cluster.Run copies before
	// sorting, so sharing the slice is safe).
	stream := ds.Poisson(requests, rate, Seed)
	costs := serving.NewCostTable()

	type cell struct {
		alpha    float64
		stack    AttnStackAxis
		devices  int
		linkGBps float64
	}
	var cells []cell
	for _, alpha := range axes.Alphas {
		for _, stack := range axes.AttnStacks {
			for _, devices := range axes.AttnDeviceCounts {
				for _, linkGBps := range axes.AttnLinkGBps {
					cells = append(cells, cell{alpha, stack, devices, linkGBps})
				}
			}
		}
	}

	out.Points = parallelMap(cells, workers, func(c cell) DSEPoint {
		spec := dseSpec(c.alpha, c.stack, c.devices, c.linkGBps)
		data, err := spec.Export()
		if err != nil {
			panic(fmt.Sprintf("experiments: dse %s: %v", spec.Name, err))
		}
		imported, err := design.ImportSpec(data)
		if err != nil {
			panic(fmt.Sprintf("experiments: dse %s: %v", spec.Name, err))
		}
		opt := serving.DefaultOptions(1)
		opt.Costs = costs
		cl, err := cluster.NewFromSpecs([]design.Spec{imported}, cfg, cluster.Options{
			Replicas: replicas,
			MaxBatch: maxBatch,
			Router:   cluster.LeastOutstanding(),
			Serving:  opt,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: dse %s: %v", spec.Name, err))
		}
		f, err := cl.Run(stream)
		if err != nil {
			panic(fmt.Sprintf("experiments: dse %s: %v", spec.Name, err))
		}
		return DSEPoint{
			Design:         spec.Name,
			Alpha:          c.alpha,
			AttnStack:      c.stack.Label,
			AttnDevices:    c.devices,
			AttnLinkGBps:   c.linkGBps,
			TokensPerSec:   f.TokensPerSecond(),
			JoulesPerToken: f.JoulesPerToken(),
			TPOTP99:        units.Seconds(f.TPOT.P99),
			Attainment:     f.Attainment(slo),
		}
	})

	for _, p := range out.Points {
		if p.Attainment >= target && p.TokensPerSec > out.Best.TokensPerSec {
			out.Best = p
		}
	}
	return out
}

// String renders the design grid and the winning point.
func (r DSEResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Design-space exploration · %s · %s @ %g QPS · %d replica(s) · TPOT SLO %v @ %.0f%%",
			r.Model, r.Dataset, r.RateQPS, r.Replicas, r.SLO.TokenLatency, 100*r.Target),
		"α", "attn stack", "devices", "link", "tok/s", "J/token", "TPOT p99", "attain")
	for _, p := range r.Points {
		tb.AddRow(
			fmt.Sprintf("%g", p.Alpha),
			p.AttnStack,
			fmt.Sprintf("%d", p.AttnDevices),
			fmt.Sprintf("%g GB/s", p.AttnLinkGBps),
			fmt.Sprintf("%.0f", p.TokensPerSec),
			fmt.Sprintf("%.2f", p.JoulesPerToken),
			p.TPOTP99.String(),
			fmt.Sprintf("%.2f", p.Attainment))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	if r.Best.Design != "" {
		fmt.Fprintf(&b, "best under SLO: %s (%.0f tok/s, %.2f J/token)\n",
			r.Best.Design, r.Best.TokensPerSec, r.Best.JoulesPerToken)
	} else {
		b.WriteString("no grid design meets the SLO target\n")
	}
	return b.String()
}
