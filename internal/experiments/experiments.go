// Package experiments contains one driver per figure in the paper's
// evaluation (§3 and §7), plus the fleet-scale sweeps grown on top: the
// Capacity QPS sweep (max sustainable rate under a TPOT SLO) and the
// Scenarios sweep (every registered workload regime × the comparison
// designs). Each driver runs the relevant simulation sweep and returns a
// typed result with a String() rendering; cmd/papibench prints them all and
// EXPERIMENTS.md records the outcomes next to the paper's numbers.
//
// The drivers are deterministic (fixed seeds) so regenerated tables are
// stable across runs and machines — including the sweeps that fan their
// (scenario, design) cells out over a worker pool, because every cell is
// independently seeded and results are folded in input order.
package experiments

import (
	"fmt"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/workload"
)

// Seed is the workload seed shared by every figure driver.
const Seed = 42

// Config identifies one (batch, speculation-length) sweep point.
type Config struct {
	Batch int
	Spec  int
}

// String renders the point as the figures label it.
func (c Config) String() string { return fmt.Sprintf("b=%d spe=%d", c.Batch, c.Spec) }

// Fig8Grid is the batch × speculation grid of Figs. 8, 9 and 11.
func Fig8Grid() []Config {
	var grid []Config
	for _, spec := range []int{1, 2, 4} {
		for _, batch := range []int{4, 16, 64} {
			grid = append(grid, Config{Batch: batch, Spec: spec})
		}
	}
	return grid
}

// runOne executes one batch on one design and fails loudly on configuration
// errors (the sweeps only use known-good configurations).
func runOne(sys *core.System, cfg model.Config, ds workload.Dataset, c Config) serving.Result {
	reqs := ds.Generate(c.Batch, Seed)
	eng, err := serving.New(sys, cfg, serving.DefaultOptions(c.Spec))
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s %s: %v", sys.Name, cfg.Name, c, err))
	}
	res, err := eng.RunBatch(reqs)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s %s: %v", sys.Name, cfg.Name, c, err))
	}
	return res
}
