package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// ScenarioCell is one (scenario, system) measurement: the fleet-level
// quantities the scenario engine exists to compare across designs.
type ScenarioCell struct {
	Scenario string
	System   string
	// Requests is the number of requests served — for multi-turn scenarios,
	// the total turn count across all conversations.
	Requests     int
	Tokens       int
	TokensPerSec float64
	Energy       units.Joules
	// TTFT and TPOT digest the per-request latency distributions (seconds).
	TTFT stats.Summary
	TPOT stats.Summary
	// Attainment scores the merged request set against the sweep's SLO.
	Attainment float64
}

// ScenariosResult is the scenario × design sweep: every named workload
// regime (steady, bursty, diurnal, closed-loop multi-turn, long-context)
// run against the capacity-comparison systems on identical traffic.
type ScenariosResult struct {
	Model    string
	Replicas int
	// Count is the per-cell stream size: open-loop requests, or closed-loop
	// conversations (each spanning several turns).
	Count int
	SLO   workload.SLO
	Cells []ScenarioCell
}

// Scenarios runs the default sweep: every registered scenario against the
// capacity comparison set (PAPI, A100+AttAcc, PIM-only PAPI) on LLaMA-65B,
// 2 replicas behind the least-outstanding router, under the 12 ms TPOT SLO.
func Scenarios() ScenariosResult {
	return ScenariosSweep(workload.Scenarios(), CapacitySystems(), model.LLaMA65B(),
		2, 48, 16, workload.SLO{TokenLatency: units.Milliseconds(12)}, defaultWorkers())
}

// ScenariosSweep measures every (scenario, system) cell on a worker pool of
// the given size (≤ 1 runs serially; both paths produce identical results —
// every cell is independently seeded). Within one scenario, all systems face
// byte-identical traffic: open-loop streams are generated from the shared
// experiment seed, and closed-loop conversation plans pre-sample everything
// but the follow-up arrival instants, which each design earns through its
// own completion times.
func ScenariosSweep(scenarios []workload.Scenario, systems []CapacitySystem, cfg model.Config,
	replicas, count, maxBatch int, slo workload.SLO, workers int) ScenariosResult {
	out := ScenariosResult{
		Model:    cfg.Name,
		Replicas: replicas,
		Count:    count,
		SLO:      slo,
	}

	// Each system shares one kernel-pricing cost table across its scenario
	// cells (see CapacitySweepWorkers).
	tables := make([]*serving.CostTable, len(systems))
	for i := range tables {
		tables[i] = serving.NewCostTable()
	}

	type cell struct {
		sc    workload.Scenario
		sys   CapacitySystem
		costs *serving.CostTable
	}
	var cells []cell
	for _, sc := range scenarios {
		for si, sys := range systems {
			cells = append(cells, cell{sc: sc, sys: sys, costs: tables[si]})
		}
	}
	out.Cells = parallelMap(cells, workers, func(c cell) ScenarioCell {
		f := runScenarioCell(c.sc, c.sys, cfg, replicas, count, maxBatch, c.costs)
		return ScenarioCell{
			Scenario:     c.sc.Name,
			System:       c.sys.Name,
			Requests:     f.Completed,
			Tokens:       f.Tokens,
			TokensPerSec: f.TokensPerSecond(),
			Energy:       f.Energy.Total(),
			TTFT:         f.TTFT,
			TPOT:         f.TPOT,
			Attainment:   f.Attainment(slo),
		}
	})
	return out
}

// runScenarioCell drives one fleet through one scenario's traffic.
func runScenarioCell(sc workload.Scenario, sys CapacitySystem, cfg model.Config,
	replicas, count, maxBatch int, costs *serving.CostTable) *cluster.FleetResult {
	opt := serving.DefaultOptions(1)
	opt.Costs = costs
	cl, err := cluster.New(sys.New, cfg, cluster.Options{
		Replicas: replicas,
		MaxBatch: maxBatch,
		Router:   cluster.LeastOutstanding(),
		Serving:  opt,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: scenario %s on %s: %v", sc.Name, sys.Name, err))
	}
	var f *cluster.FleetResult
	if sc.ClosedLoop() {
		plan, err := sc.Plan(count, Seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: scenario %s: %v", sc.Name, err))
		}
		f, err = cl.RunPlan(plan)
		if err != nil {
			panic(fmt.Sprintf("experiments: scenario %s on %s: %v", sc.Name, sys.Name, err))
		}
	} else {
		reqs, err := sc.Requests(count, Seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: scenario %s: %v", sc.Name, err))
		}
		f, err = cl.Run(reqs)
		if err != nil {
			panic(fmt.Sprintf("experiments: scenario %s on %s: %v", sc.Name, sys.Name, err))
		}
	}
	return f
}

// String renders the scenario × design table.
func (r ScenariosResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Scenario sweep · %s · %d replicas · %d streams/cell · TPOT SLO %v",
			r.Model, r.Replicas, r.Count, r.SLO.TokenLatency),
		"scenario", "system", "reqs", "tok/s", "energy",
		"TTFT p50/p95/p99", "TPOT p50/p95/p99", "attain")
	for _, c := range r.Cells {
		tb.AddRow(c.Scenario, c.System,
			fmt.Sprintf("%d", c.Requests),
			fmt.Sprintf("%.0f", c.TokensPerSec),
			c.Energy.String(),
			fmt.Sprintf("%v / %v / %v",
				units.Seconds(c.TTFT.P50), units.Seconds(c.TTFT.P95), units.Seconds(c.TTFT.P99)),
			fmt.Sprintf("%v / %v / %v",
				units.Seconds(c.TPOT.P50), units.Seconds(c.TPOT.P95), units.Seconds(c.TPOT.P99)),
			fmt.Sprintf("%.2f", c.Attainment))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Scenario] {
			seen[c.Scenario] = true
			names = append(names, c.Scenario)
		}
	}
	fmt.Fprintf(&b, "scenarios: %s\n", strings.Join(names, ", "))
	return b.String()
}
