package experiments

import (
	"testing"

	"github.com/papi-sim/papi/internal/workload"
)

// kvcacheCell pulls one (scenario, config) cell out of the figure, failing
// the test if the sweep no longer produces it.
func kvcacheCell(t *testing.T, r KVCacheResult, scenario, config string) KVCacheCell {
	t.Helper()
	for _, c := range r.Cells {
		if c.Scenario == scenario && c.Config == config {
			return c
		}
	}
	t.Fatalf("kvcache figure has no cell %s/%s", scenario, config)
	return KVCacheCell{}
}

// TestKVCacheFigureAcceptance asserts the headline claims of the kvcache
// figure — not exact numbers (the golden fixture pins those) but the
// directional properties the figure exists to demonstrate: on both
// caching-sensitive scenarios, prefix sharing strictly cuts the re-prefill
// tax AND the decode tail, the baseline shares nothing, the tiers actually
// move state, and the cold-tier split matters under long-context pressure.
func TestKVCacheFigureAcceptance(t *testing.T) {
	r := KVCache()
	if want := 2 * len(DefaultKVCacheConfigs()); len(r.Cells) != want {
		t.Fatalf("kvcache figure has %d cells, want %d", len(r.Cells), want)
	}

	for _, scenario := range []string{workload.ScenarioChatMultiTurn, workload.ScenarioLongCtxHeavy} {
		off := kvcacheCell(t, r, scenario, "sharing-off")
		on := kvcacheCell(t, r, scenario, "b32/cold4x")

		if off.SharedTokens != 0 || off.Hits != 0 || off.PromotedBlocks != 0 ||
			off.DemotedBlocks != 0 || off.EvictedBlocks != 0 {
			t.Errorf("%s: sharing-off cell reports cache activity: %+v", scenario, off)
		}
		if on.SharedTokens == 0 || on.Hits == 0 {
			t.Errorf("%s: sharing cell adopted nothing (shared=%d hits=%d)",
				scenario, on.SharedTokens, on.Hits)
		}
		if on.HitRate <= 0 || on.HitRate > 1 {
			t.Errorf("%s: hit rate %v outside (0, 1]", scenario, on.HitRate)
		}
		if on.ReprefillTokens >= off.ReprefillTokens {
			t.Errorf("%s: sharing did not cut the re-prefill tax: on=%d off=%d",
				scenario, on.ReprefillTokens, off.ReprefillTokens)
		}
		if on.PrefillTokens >= off.PrefillTokens {
			t.Errorf("%s: sharing did not cut prefill work: on=%d off=%d",
				scenario, on.PrefillTokens, off.PrefillTokens)
		}
		if on.TPOTP99 >= off.TPOTP99 {
			t.Errorf("%s: sharing did not improve the decode tail: TPOT p99 on=%v off=%v",
				scenario, on.TPOTP99, off.TPOTP99)
		}
		if on.Requests != off.Requests || on.Tokens != off.Tokens {
			t.Errorf("%s: sharing changed served work (on %d req/%d tok, off %d req/%d tok)",
				scenario, on.Requests, on.Tokens, off.Requests, off.Tokens)
		}
	}

	// The constrained pool must force real tier motion in the long-context
	// scenario: demotions, demand promotions, evictions, and host-link bytes.
	lc := kvcacheCell(t, r, workload.ScenarioLongCtxHeavy, "b32/cold4x")
	if lc.DemotedBlocks == 0 || lc.PromotedBlocks == 0 || lc.EvictedBlocks == 0 {
		t.Errorf("longctx b32/cold4x shows no tier pressure: promoted=%d demoted=%d evicted=%d",
			lc.PromotedBlocks, lc.DemotedBlocks, lc.EvictedBlocks)
	}
	if lc.TransferBytes == 0 || lc.TransferTime == 0 {
		t.Errorf("longctx b32/cold4x moved tiers for free: bytes=%v time=%v",
			lc.TransferBytes, lc.TransferTime)
	}

	// The cold-tier split is a real axis, not a dead knob: starving the cold
	// tier (0.25×) must change outcomes vs the roomy 4× split once demotion
	// volume outruns it.
	cramped := kvcacheCell(t, r, workload.ScenarioLongCtxHeavy, "b32/cold0.25x")
	roomy := kvcacheCell(t, r, workload.ScenarioLongCtxHeavy, "b32/cold4x")
	if cramped.Hits == roomy.Hits && cramped.EvictedBlocks == roomy.EvictedBlocks &&
		cramped.PromotedBlocks == roomy.PromotedBlocks {
		t.Errorf("longctx cold-tier split changed nothing: cramped %+v vs roomy %+v", cramped, roomy)
	}
	if cramped.Hits >= roomy.Hits {
		t.Errorf("starving the cold tier did not cost hits: cold0.25x=%d cold4x=%d",
			cramped.Hits, roomy.Hits)
	}
}
