package experiments

import (
	"runtime"
	"sync"
)

// sweepCell carries one worker's output back to its input slot.
type sweepCell[R any] struct {
	idx int
	out R
}

// parallelMap runs fn over every item on a pool of `workers` goroutines and
// returns the results in input order, so a parallel sweep is
// indistinguishable from the serial one as long as fn(item) is independent
// of evaluation order — which holds for the experiment sweeps: every cell
// builds its own cluster from fixed seeds. workers ≤ 1 runs serially on the
// calling goroutine. A panic inside fn is re-raised on the caller.
func parallelMap[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	if workers <= 1 || len(items) <= 1 {
		for i, it := range items {
			out[i] = fn(it)
		}
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}

	jobs := make(chan int)
	results := make(chan sweepCell[R])
	panics := make(chan any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if p := recover(); p != nil {
							// Keep only the first panic; a worker may trip
							// on several items and must never block here.
							select {
							case panics <- p:
							default:
							}
						}
					}()
					results <- sweepCell[R]{idx: i, out: fn(items[i])}
				}()
			}
		}()
	}
	go func() {
		for i := range items {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
		close(panics)
	}()
	for c := range results {
		out[c.idx] = c.out
	}
	if p, ok := <-panics; ok {
		panic(p)
	}
	return out
}

// defaultWorkers sizes the sweep pool to the machine.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
