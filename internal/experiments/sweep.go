package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMap runs fn over every item on a pool of `workers` goroutines and
// returns the results in input order, so a parallel sweep is
// indistinguishable from the serial one as long as fn(item) is independent
// of evaluation order — which holds for the experiment sweeps: every cell
// builds its own cluster from fixed seeds. workers ≤ 1 runs serially on the
// calling goroutine. A panic inside fn is re-raised on the caller.
//
// Workers claim items off a shared atomic counter and write straight into
// the caller-owned result slice (disjoint slots, so no synchronization
// beyond the claim): no per-item channel round-trips or collector
// goroutine, whose signaling overhead used to exceed the per-cell work on
// small sweeps and made the parallel capacity sweep slower than serial.
func parallelMap[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	if workers <= 1 || len(items) <= 1 {
		for i, it := range items {
			out[i] = fn(it)
		}
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}

	var next atomic.Int64
	panics := make(chan any, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					// Keep only the first panic; the other workers drain
					// their claimed items and must never block here.
					select {
					case panics <- p:
					default:
					}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	close(panics)
	if p, ok := <-panics; ok {
		panic(p)
	}
	return out
}

// defaultWorkers sizes the sweep pool to the machine.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
