package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/hbm"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: the α threshold, the hybrid PIM design, dynamic vs static
// scheduling, and continuous vs static batching.

// AlphaRow is one α sweep point.
type AlphaRow struct {
	Alpha   float64
	TotalMS float64
}

// AlphaSweepResult shows how sensitive PAPI is to the memory-boundedness
// threshold and where the calibrated value sits.
type AlphaSweepResult struct {
	Rows       []AlphaRow
	Calibrated float64
	BestAlpha  float64
}

// AblationAlpha sweeps α over a mixed-parallelism workload (batch 32,
// decaying RLP crosses the threshold during the run).
func AblationAlpha() AlphaSweepResult {
	cfg := model.LLaMA65B()
	reqs := workload.CreativeWriting().Generate(32, Seed)
	var out AlphaSweepResult
	out.Calibrated = core.DefaultAlpha
	best := 0.0
	for _, alpha := range []float64{4, 8, 16, 24, 28, 32, 48, 64, 96, 128} {
		eng, err := serving.New(core.NewPAPI(alpha), cfg, serving.DefaultOptions(1))
		if err != nil {
			panic(err)
		}
		r, err := eng.RunBatch(reqs)
		if err != nil {
			panic(err)
		}
		ms := 1e3 * r.TotalTime().Seconds()
		out.Rows = append(out.Rows, AlphaRow{Alpha: alpha, TotalMS: ms})
		if best == 0 || ms < best {
			best = ms
			out.BestAlpha = alpha
		}
	}
	return out
}

// String renders the sweep.
func (r AlphaSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — α threshold sweep (LLaMA-65B, batch 32, creative-writing)\n")
	t := stats.NewTable("", "alpha", "total time")
	for _, row := range r.Rows {
		mark := ""
		if row.Alpha == r.Calibrated {
			mark = "  <- calibrated"
		}
		t.AddRow(fmt.Sprintf("%.0f", row.Alpha), fmt.Sprintf("%.0f ms%s", row.TotalMS, mark))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "best α in sweep: %.0f (calibrated %.0f)\n", r.BestAlpha, r.Calibrated)
	return b.String()
}

// HybridPIMResult compares PAPI's hybrid PIM pools (4P1B FC-PIM + 1P2B
// Attn-PIM) against a uniform-PIM variant where both pools use the same
// 1P1B devices (with the FC weight-reuse datapath, so the comparison
// isolates the xPyB tailoring of §6.1–6.2, not the datapath).
type HybridPIMResult struct {
	Rows []struct {
		Config
		Speedup float64
	}
	Average float64
}

// AblationHybridPIM runs the decode-only comparison across the grid.
func AblationHybridPIM() HybridPIMResult {
	cfg := model.LLaMA65B()
	ds := workload.CreativeWriting()

	uniform := core.NewPIMOnlyPAPI()
	uniform.Name = "uniform-1P1B"
	uniform.FCPIM = pim.New(hbm.AttAccStack(), core.WeightDevices)
	uniform.AttnPIM = core.AttentionSpecializedPool(hbm.AttAccStack(), core.AttnDevices)

	var out HybridPIMResult
	var xs []float64
	for _, c := range Fig8Grid() {
		u := runOne(uniform, cfg, ds, c)
		h := runOne(core.NewPIMOnlyPAPI(), cfg, ds, c)
		s := units.Ratio(u.DecodeTime, h.DecodeTime)
		out.Rows = append(out.Rows, struct {
			Config
			Speedup float64
		}{c, s})
		xs = append(xs, s)
	}
	out.Average = stats.GeoMean(xs)
	return out
}

// String renders the comparison.
func (r HybridPIMResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — hybrid PIM (4P1B + 1P2B) vs uniform 1P1B pools, decode phase\n")
	t := stats.NewTable("", "config", "hybrid speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Config.String(), fmt.Sprintf("%.2f", row.Speedup))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average %.2f×\n", r.Average)
	return b.String()
}

// DynamicVsStaticResult compares the PAPI scheduler against both static
// policies on the same PAPI hardware, under an RLP-decaying workload that
// crosses α mid-run — the scenario of Fig. 5(d).
type DynamicVsStaticResult struct {
	DynamicMS   float64
	StaticPUMS  float64
	StaticPIMMS float64
	Reschedules int
}

// AblationDynamicVsStatic runs the three policies on the stock PAPI design.
func AblationDynamicVsStatic() (DynamicVsStaticResult, error) {
	return ablationDynamicVsStatic(func() *core.System { return core.NewPAPI(0) })
}

// ablationDynamicVsStatic runs the three policies on fresh systems from
// newSys. An engine that fails to build or run under any policy fails the
// whole ablation — a partial table would silently compare policies across
// different hardware.
func ablationDynamicVsStatic(newSys func() *core.System) (DynamicVsStaticResult, error) {
	cfg := model.LLaMA65B()
	reqs := workload.CreativeWriting().Generate(48, Seed)
	run := func(p sched.Policy) (float64, int, error) {
		sys := newSys()
		sys.Policy = p
		eng, err := serving.New(sys, cfg, serving.DefaultOptions(1))
		if err != nil {
			return 0, 0, fmt.Errorf("ablation-sched: policy %s: %w", p.Name(), err)
		}
		r, err := eng.RunBatch(reqs)
		if err != nil {
			return 0, 0, fmt.Errorf("ablation-sched: policy %s: %w", p.Name(), err)
		}
		return 1e3 * r.TotalTime().Seconds(), r.Reschedules, nil
	}
	var out DynamicVsStaticResult
	var err error
	if out.DynamicMS, out.Reschedules, err = run(sched.Dynamic{Alpha: core.DefaultAlpha}); err != nil {
		return DynamicVsStaticResult{}, err
	}
	if out.StaticPUMS, _, err = run(sched.AlwaysPU()); err != nil {
		return DynamicVsStaticResult{}, err
	}
	if out.StaticPIMMS, _, err = run(sched.AlwaysPIM()); err != nil {
		return DynamicVsStaticResult{}, err
	}
	return out, nil
}

// String renders the comparison.
func (r DynamicVsStaticResult) String() string {
	return fmt.Sprintf(`Ablation — dynamic vs static FC placement on PAPI hardware (batch 48, RLP decays across α)
dynamic  %.0f ms (%d reschedules)
always-PU %.0f ms (%.2fx vs dynamic)
always-PIM %.0f ms (%.2fx vs dynamic)
`,
		r.DynamicMS, r.Reschedules,
		r.StaticPUMS, r.StaticPUMS/r.DynamicMS,
		r.StaticPIMMS, r.StaticPIMMS/r.DynamicMS)
}

// BatchingResult compares mixed continuous batching against static batching
// on a bursty arrival stream.
type BatchingResult struct {
	ContinuousMS float64
	StaticMS     float64
	Speedup      float64
}

// AblationBatching runs both batching modes over Poisson arrivals. Static
// batching waits for the full batch before starting (dynamic batching with
// an unbounded time limit, §3.2(c)).
func AblationBatching() BatchingResult {
	cfg := model.LLaMA65B()
	reqs := workload.GeneralQA().Poisson(48, 8, Seed)

	cont, err := serving.New(core.NewPAPI(0), cfg, serving.DefaultOptions(1))
	if err != nil {
		panic(err)
	}
	rc, err := cont.RunContinuous(reqs, 16)
	if err != nil {
		panic(err)
	}

	// Static: batches of 16 started only when full — the makespan includes
	// waiting for each batch's last arrival.
	stat, err := serving.New(core.NewPAPI(0), cfg, serving.DefaultOptions(1))
	if err != nil {
		panic(err)
	}
	var clock units.Seconds
	for i := 0; i < len(reqs); i += 16 {
		end := i + 16
		if end > len(reqs) {
			end = len(reqs)
		}
		batch := reqs[i:end]
		if arr := batch[len(batch)-1].Arrival; arr > clock {
			clock = arr
		}
		r, err := stat.RunBatch(batch)
		if err != nil {
			panic(err)
		}
		clock += r.TotalTime()
	}

	out := BatchingResult{
		ContinuousMS: 1e3 * rc.TotalTime().Seconds(),
		StaticMS:     1e3 * clock.Seconds(),
	}
	out.Speedup = out.StaticMS / out.ContinuousMS
	return out
}

// String renders the comparison.
func (r BatchingResult) String() string {
	return fmt.Sprintf(`Ablation — mixed continuous vs static batching (Poisson arrivals, 48 requests)
continuous %.0f ms
static     %.0f ms
continuous speedup %.2fx
`, r.ContinuousMS, r.StaticMS, r.Speedup)
}

// SchedulingCostResult quantifies §8's practicality argument: a placement
// policy that needs a search per decision (SpecPIM-class) pays it on the
// decode critical path, while PAPI's RLP×TLP predictor is effectively free.
type SchedulingCostResult struct {
	Rows []struct {
		CostUS  float64 // per-decision latency, µs
		TotalMS float64
	}
	// SlowdownAt50ms is the end-to-end hit when every iteration re-runs a
	// 50 ms allocation search.
	SlowdownAt50ms float64
}

// AblationSchedulingCost sweeps the per-decision latency.
func AblationSchedulingCost() SchedulingCostResult {
	cfg := model.LLaMA65B()
	reqs := workload.CreativeWriting().Generate(16, Seed)
	run := func(cost units.Seconds) float64 {
		sys := core.NewPAPI(0)
		if cost > 0 {
			sys.Policy = sched.Costed{Policy: sys.Policy, Cost: cost}
		}
		eng, err := serving.New(sys, cfg, serving.DefaultOptions(1))
		if err != nil {
			panic(err)
		}
		r, err := eng.RunBatch(reqs)
		if err != nil {
			panic(err)
		}
		return 1e3 * r.TotalTime().Seconds()
	}
	var out SchedulingCostResult
	base := 0.0
	for _, costUS := range []float64{0, 1, 100, 1000, 50000} {
		ms := run(units.Microseconds(costUS))
		out.Rows = append(out.Rows, struct {
			CostUS  float64
			TotalMS float64
		}{costUS, ms})
		if costUS == 0 {
			base = ms
		}
		if costUS == 50000 {
			out.SlowdownAt50ms = ms / base
		}
	}
	return out
}

// String renders the sweep.
func (r SchedulingCostResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — per-decision scheduling cost on the decode critical path (§8)\n")
	t := stats.NewTable("", "decision cost", "total time")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f µs", row.CostUS), fmt.Sprintf("%.0f ms", row.TotalMS))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "a 50 ms search per iteration (SpecPIM-class) slows decoding %.1f×; PAPI's predictor is O(1)\n",
		r.SlowdownAt50ms)
	return b.String()
}
