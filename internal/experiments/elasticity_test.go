package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
)

// The elasticity headline is this repo's production claim: on the tiered
// day curve, the autoscaled fleet holds the interactive p99 TPOT SLO at peak
// while spending measurably less provisioned capacity-time and energy per
// token than static peak provisioning. This test pins it.
func TestElasticityAutoscaledBeatsStaticPeak(t *testing.T) {
	r := Elasticity()

	if len(r.Cells) != 5 {
		t.Fatalf("expected 4 static cells + 1 autoscaled, got %d", len(r.Cells))
	}
	auto, ok := r.Autoscaled()
	if !ok {
		t.Fatal("sweep has no autoscaled cell")
	}
	base, ok := r.StaticBaseline()
	if !ok {
		t.Fatal("no static cell meets the SLO — the ladder no longer brackets the load")
	}

	if !auto.MeetsSLO(r.SLO) {
		t.Errorf("autoscaled interactive p99 TPOT %v misses the %v SLO",
			units.Seconds(auto.InteractiveTPOT.P99), r.SLO.TokenLatency)
	}
	if auto.ReplicaSeconds >= base.ReplicaSeconds {
		t.Errorf("autoscaled replica-seconds %v not below static baseline %s's %v",
			auto.ReplicaSeconds, base.Config, base.ReplicaSeconds)
	}
	if auto.JoulesPerToken >= base.JoulesPerToken {
		t.Errorf("autoscaled J/token %.2f not below static baseline %s's %.2f",
			auto.JoulesPerToken, base.Config, base.JoulesPerToken)
	}
	if auto.ScaleUps == 0 || auto.Drains == 0 {
		t.Errorf("elastic cell never scaled (ups %d, drains %d)", auto.ScaleUps, auto.Drains)
	}
	if auto.PeakReplicas > 4 {
		t.Errorf("autoscaled peak %d exceeds the [1, 4] bound", auto.PeakReplicas)
	}

	// The static ladder must be coherent: every cell serves the identical
	// stream, so tokens agree everywhere and more replicas never worsen the
	// interactive tail.
	for _, c := range r.Cells {
		if c.Tokens != r.Cells[0].Tokens {
			t.Errorf("%s generated %d tokens, %s %d — streams diverged",
				c.Config, c.Tokens, r.Cells[0].Config, r.Cells[0].Tokens)
		}
	}
	var prev *ElasticityCell
	for i := range r.Cells {
		c := &r.Cells[i]
		if !strings.HasPrefix(c.Config, "static-") {
			continue
		}
		if prev != nil && c.InteractiveTPOT.P99 > prev.InteractiveTPOT.P99*1.05 {
			t.Errorf("%s interactive p99 %v noticeably worse than %s's %v",
				c.Config, units.Seconds(c.InteractiveTPOT.P99),
				prev.Config, units.Seconds(prev.InteractiveTPOT.P99))
		}
		prev = c
	}
}

// The sweep is deterministic: a repeat run reproduces every cell exactly,
// and the serial evaluation matches the parallel one.
func TestElasticityDeterministic(t *testing.T) {
	a := Elasticity()
	b := ElasticitySweep(model.LLaMA65B(), 4, 240, 16, a.SLO, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel and serial elasticity sweeps diverged:\n a: %+v\n b: %+v", a, b)
	}
}
