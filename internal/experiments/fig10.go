package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig10Row is one sweep point: speedups normalised to A100+AttAcc.
type Fig10Row struct {
	Config
	AttAccOnly float64
	PAPI       float64
}

// Fig10Result reproduces Fig. 10: PAPI's sensitivity to RLP and TLP on
// LLaMA-65B / creative-writing.
type Fig10Result struct {
	// BatchSweep is Fig. 10(a): batch 4–128 at speculation length 1.
	BatchSweep []Fig10Row
	// SpecSweep is Fig. 10(b): speculation 1–8 at batch 4.
	SpecSweep []Fig10Row
	// Averages over the TLP sweep (paper: PAPI 1.5× over A100+AttAcc and
	// 3.0× over AttAcc-only on average in (b)).
	SpecAvgVsBase   float64
	SpecAvgVsAttAcc float64
}

// Fig10 runs both sweeps.
func Fig10() Fig10Result {
	cfg := model.LLaMA65B()
	ds := workload.CreativeWriting()
	row := func(c Config) Fig10Row {
		base := runOne(core.NewA100AttAcc(), cfg, ds, c)
		ao := runOne(core.NewAttAccOnly(), cfg, ds, c)
		papi := runOne(core.NewPAPI(0), cfg, ds, c)
		return Fig10Row{
			Config:     c,
			AttAccOnly: units.Ratio(base.TotalTime(), ao.TotalTime()),
			PAPI:       units.Ratio(base.TotalTime(), papi.TotalTime()),
		}
	}

	var out Fig10Result
	for _, batch := range []int{4, 8, 16, 32, 64, 128} {
		out.BatchSweep = append(out.BatchSweep, row(Config{Batch: batch, Spec: 1}))
	}
	var vsBase, vsAO []float64
	for _, spec := range []int{1, 2, 4, 8} {
		r := row(Config{Batch: 4, Spec: spec})
		out.SpecSweep = append(out.SpecSweep, r)
		vsBase = append(vsBase, r.PAPI)
		vsAO = append(vsAO, r.PAPI/r.AttAccOnly)
	}
	out.SpecAvgVsBase = stats.GeoMean(vsBase)
	out.SpecAvgVsAttAcc = stats.GeoMean(vsAO)
	return out
}

// String renders both sweeps.
func (r Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — Sensitivity to parallelisation level (LLaMA-65B, creative-writing, vs A100+AttAcc)\n")
	render := func(title string, rows []Fig10Row) {
		t := stats.NewTable(title, "config", "A100+AttAcc", "AttAcc-only", "PAPI")
		for _, row := range rows {
			t.AddRow(row.Config.String(), "1.00",
				fmt.Sprintf("%.2f", row.AttAccOnly),
				fmt.Sprintf("%.2f", row.PAPI))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	render("(a) batch sweep, spec 1", r.BatchSweep)
	render("(b) speculation sweep, batch 4", r.SpecSweep)
	fmt.Fprintf(&b, "TLP-sweep averages: PAPI %.2f× over A100+AttAcc (paper 1.5×), %.2f× over AttAcc-only (paper 3.0×)\n",
		r.SpecAvgVsBase, r.SpecAvgVsAttAcc)
	return b.String()
}
