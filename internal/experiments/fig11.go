package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Fig11Row is one grid point: the decoding-phase speedup of the PIM-only
// PAPI system (FC-PIM + Attn-PIM, no GPU) over AttAcc-only.
type Fig11Row struct {
	Config
	Speedup float64
}

// Fig11Result reproduces Fig. 11 (§7.4): the benefit of the hybrid PIM
// design in isolation. Decoding phase only — the paper excludes prefill here
// since it belongs on the GPU in the full system.
type Fig11Result struct {
	Rows []Fig11Row
	// Average speedup (paper: 2.3×, rising from 1.6× at (4,1) to 2.7× at
	// (64,4) as FC becomes more computation-intensive).
	Average float64
	Lowest  float64 // at the lowest-parallelism corner
	Highest float64 // at the highest-parallelism corner
}

// Fig11 runs the 3×3 grid on LLaMA-65B / creative-writing.
func Fig11() Fig11Result {
	cfg := model.LLaMA65B()
	ds := workload.CreativeWriting()
	var out Fig11Result
	var xs []float64
	for _, c := range Fig8Grid() {
		ao := runOne(core.NewAttAccOnly(), cfg, ds, c)
		pp := runOne(core.NewPIMOnlyPAPI(), cfg, ds, c)
		s := units.Ratio(ao.DecodeTime, pp.DecodeTime)
		out.Rows = append(out.Rows, Fig11Row{Config: c, Speedup: s})
		xs = append(xs, s)
		if c.Batch == 4 && c.Spec == 1 {
			out.Lowest = s
		}
		if c.Batch == 64 && c.Spec == 4 {
			out.Highest = s
		}
	}
	out.Average = stats.GeoMean(xs)
	return out
}

// String renders the grid.
func (r Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — PIM-only PAPI vs AttAcc-only, decoding phase (LLaMA-65B, creative-writing)\n")
	t := stats.NewTable("", "config", "speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Config.String(), fmt.Sprintf("%.2f", row.Speedup))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average %.2f× (paper 2.3×); (4,1) %.2f× (paper 1.6×) → (64,4) %.2f× (paper 2.7×)\n",
		r.Average, r.Lowest, r.Highest)
	return b.String()
}
