package experiments

import (
	"fmt"
	"strings"

	"github.com/papi-sim/papi/internal/cluster"
	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// CapacitySystem names one fleet design under test with a fresh-system
// factory (each replica owns its instance).
type CapacitySystem struct {
	Name string
	New  func() *core.System
}

// CapacitySystems returns the capacity-sweep comparison set: PAPI against
// the strongest heterogeneous baseline and the GPU-less PAPI variant.
func CapacitySystems() []CapacitySystem {
	return []CapacitySystem{
		{Name: "PAPI", New: func() *core.System { return core.NewPAPI(0) }},
		{Name: "A100+AttAcc", New: core.NewA100AttAcc},
		{Name: "PIM-only PAPI", New: core.NewPIMOnlyPAPI},
	}
}

// CapacityPoint is one (system, offered QPS) measurement.
type CapacityPoint struct {
	QPS          float64
	Attainment   float64
	TTFTP99      units.Seconds
	TPOTP99      units.Seconds
	TokensPerSec float64
}

// CapacityCurve is one system's attainment curve over the offered rates.
type CapacityCurve struct {
	System string
	Points []CapacityPoint
	// MaxQPS is the highest offered rate whose SLO attainment still meets
	// the target — the system's sustainable capacity (0 when no rate does).
	MaxQPS float64
}

// CapacityResult is the fleet-capacity sweep: for each design, the maximum
// sustainable QPS under a TPOT SLO. This is the cloud-serving question
// PIM-AI and L3 evaluate (QPS per system at fixed quality), asked of the
// PAPI simulator's cluster layer.
type CapacityResult struct {
	Model    string
	Dataset  string
	Replicas int
	Requests int
	SLO      workload.SLO
	Target   float64
	Curves   []CapacityCurve
}

// Capacity runs the default sweep: LLaMA-65B on the general-qa workload,
// 2 replicas behind the least-outstanding-requests router, a 12 ms TPOT SLO
// at a 90% attainment target, across an exponential ladder of offered rates.
func Capacity() CapacityResult {
	return CapacitySweep(CapacitySystems(), model.LLaMA65B(), workload.GeneralQA(),
		2, 64, 16, []float64{2, 5, 10, 20, 40, 80},
		workload.SLO{TokenLatency: units.Milliseconds(12)}, 0.9)
}

// CapacitySweep measures SLO attainment for every (system, offered-QPS)
// pair: each point runs a fresh fleet of `replicas` engines over a seeded
// Poisson stream of `requests` arrivals at that rate, so all systems face
// identical traffic. Cells run on a worker pool sized to the machine; every
// cell is seeded independently, so the result is identical to the serial
// evaluation (see CapacitySweepWorkers).
func CapacitySweep(systems []CapacitySystem, cfg model.Config, ds workload.Dataset,
	replicas, requests, maxBatch int, rates []float64, slo workload.SLO, target float64) CapacityResult {
	return CapacitySweepWorkers(systems, cfg, ds, replicas, requests, maxBatch, rates, slo, target, defaultWorkers())
}

// CapacitySweepWorkers is CapacitySweep with an explicit worker-pool size;
// workers ≤ 1 evaluates the grid serially. Both paths produce identical
// results — the tests pin that equivalence.
func CapacitySweepWorkers(systems []CapacitySystem, cfg model.Config, ds workload.Dataset,
	replicas, requests, maxBatch int, rates []float64, slo workload.SLO, target float64,
	workers int) CapacityResult {
	out := CapacityResult{
		Model:    cfg.Name,
		Dataset:  ds.Name,
		Replicas: replicas,
		Requests: requests,
		SLO:      slo,
		Target:   target,
	}

	// Every system faces identical traffic at a given rate, so each rate's
	// seeded Poisson stream is drawn once and shared across the systems'
	// cells (cluster.Run copies before sorting, so sharing is safe). Each
	// system likewise shares one kernel-pricing cost table across its rate
	// cells: a 64-cell sweep prices each (system, model, n) kernel once
	// instead of once per iteration per cell.
	streams := make(map[float64][]workload.Request, len(rates))
	for _, rate := range rates {
		streams[rate] = ds.Poisson(requests, rate, Seed)
	}
	tables := make([]*serving.CostTable, len(systems))
	for i := range tables {
		tables[i] = serving.NewCostTable()
	}

	type cell struct {
		sys   CapacitySystem
		costs *serving.CostTable
		rate  float64
	}
	var cells []cell
	for si, sys := range systems {
		for _, rate := range rates {
			cells = append(cells, cell{sys: sys, costs: tables[si], rate: rate})
		}
	}
	points := parallelMap(cells, workers, func(c cell) CapacityPoint {
		reqs := streams[c.rate]
		opt := serving.DefaultOptions(1)
		opt.Costs = c.costs
		cl, err := cluster.New(c.sys.New, cfg, cluster.Options{
			Replicas: replicas,
			MaxBatch: maxBatch,
			Router:   cluster.LeastOutstanding(),
			Serving:  opt,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: capacity %s @ %g qps: %v", c.sys.Name, c.rate, err))
		}
		f, err := cl.Run(reqs)
		if err != nil {
			panic(fmt.Sprintf("experiments: capacity %s @ %g qps: %v", c.sys.Name, c.rate, err))
		}
		return CapacityPoint{
			QPS:          c.rate,
			Attainment:   f.Attainment(slo),
			TTFTP99:      units.Seconds(f.TTFT.P99),
			TPOTP99:      units.Seconds(f.TPOT.P99),
			TokensPerSec: f.TokensPerSecond(),
		}
	})

	for si, sys := range systems {
		curve := CapacityCurve{System: sys.Name}
		for ri := range rates {
			p := points[si*len(rates)+ri]
			curve.Points = append(curve.Points, p)
			if p.Attainment >= target && p.QPS > curve.MaxQPS {
				curve.MaxQPS = p.QPS
			}
		}
		out.Curves = append(out.Curves, curve)
	}
	return out
}

// String renders the QPS-sweep table plus the per-system capacity headline.
func (r CapacityResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("Fleet capacity · %s · %s · %d replicas · TPOT SLO %v @ %.0f%%",
			r.Model, r.Dataset, r.Replicas, r.SLO.TokenLatency, 100*r.Target),
		"system", "offered QPS", "attainment", "TTFT p99", "TPOT p99", "tok/s")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			tb.AddRow(c.System,
				fmt.Sprintf("%g", p.QPS),
				fmt.Sprintf("%.2f", p.Attainment),
				p.TTFTP99.String(),
				p.TPOTP99.String(),
				fmt.Sprintf("%.0f", p.TokensPerSec))
		}
	}
	var b strings.Builder
	b.WriteString(tb.String())
	for _, c := range r.Curves {
		if c.MaxQPS > 0 {
			fmt.Fprintf(&b, "%-14s sustains %g QPS under the SLO\n", c.System, c.MaxQPS)
		} else {
			fmt.Fprintf(&b, "%-14s sustains none of the offered rates\n", c.System)
		}
	}
	return b.String()
}
