// Package faults is the deterministic fault injector's plan layer: a
// byte-stable JSON description of when replicas crash, slow down, or lose
// attention-link bandwidth. A Plan is pure data — the cluster layer schedules
// each fault as a sim-kernel event, so a plan perturbs a run exactly as
// reproducibly as the workload trace that drives it. Like traces and design
// specs, export → import → export is byte-identical.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/papi-sim/papi/internal/units"
)

// Fault kinds. Each kind fixes which fields of Fault are meaningful; validate
// enforces the shape so a plan cannot smuggle, say, a duration into a crash.
const (
	// KindCrash fails one replica instantly at At: its in-flight batch and
	// queued requests are lost, its KV leases are surrendered, and it never
	// serves again (replacement capacity arrives only via the autoscaler).
	KindCrash = "crash"
	// KindStraggler multiplies one replica's kernel latencies by Factor for
	// the window [At, At+Duration): a slow node, a thermal throttle, a noisy
	// neighbour. Factors from overlapping windows compound.
	KindStraggler = "straggler"
	// KindBrownout degrades the fleet-wide GPU↔PIM attention fabric for the
	// window [At, At+Duration): attention and communication time scale by
	// Factor on every replica, pricing reduced link bandwidth through the
	// existing cost model. Replica must be zero (the fault is not per-node).
	KindBrownout = "brownout"
)

// Fault is one scheduled failure event. At and Duration are kept in seconds
// as float64s: Go marshals float64 with the shortest round-tripping decimal
// form, so the same fault always yields the same bytes.
type Fault struct {
	Kind string `json:"kind"`
	// Replica is the target replica index (crash, straggler). Brownouts hit
	// the whole fleet and must leave it zero. A target beyond the fleet's
	// size is a no-op, so one plan can be replayed against smaller fleets.
	Replica int `json:"replica,omitempty"`
	// At is the fault instant in simulated seconds.
	At float64 `json:"at_s"`
	// Duration is the window length for straggler and brownout faults;
	// crashes are permanent and must leave it zero.
	Duration float64 `json:"duration_s,omitempty"`
	// Factor is the multiplicative slowdown (≥ 1) for straggler and brownout
	// faults; crashes must leave it zero.
	Factor float64 `json:"factor,omitempty"`
}

// Start is the fault instant as a typed duration.
func (f Fault) Start() units.Seconds { return units.Seconds(f.At) }

// End is the end of the fault window; for a crash it equals Start.
func (f Fault) End() units.Seconds { return units.Seconds(f.At + f.Duration) }

// Window reports whether the fault occupies a time window (straggler,
// brownout) rather than being an instant, permanent event (crash).
func (f Fault) Window() bool { return f.Kind != KindCrash }

// Plan is a named, seeded fault schedule. An empty Faults list is a valid
// plan — "run with the fault machinery armed but quiet" — which the
// equivalence tests use to pin that an inert plan perturbs nothing.
type Plan struct {
	Name string `json:"name"`
	// Seed records the generator seed for MTBF-style plans (zero for
	// hand-written ones); it is provenance, not replayed state.
	Seed   int64   `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// Export serialises the plan as indented JSON with a trailing newline.
// Serialisation is deterministic: struct fields marshal in declaration order
// and float64s use the shortest round-tripping form, so the same plan always
// yields the same bytes.
func (p Plan) Export() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ImportPlan parses and validates an exported fault plan.
func ImportPlan(data []byte) (Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: invalid plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Validate checks the plan's shape: a name, and every fault well-formed for
// its kind.
func (p Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("faults: plan has no name")
	}
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("faults: plan %q fault %d at negative time %g", p.Name, i, f.At)
		}
		if f.Replica < 0 {
			return fmt.Errorf("faults: plan %q fault %d targets negative replica %d", p.Name, i, f.Replica)
		}
		switch f.Kind {
		case KindCrash:
			if f.Duration != 0 || f.Factor != 0 {
				return fmt.Errorf("faults: plan %q fault %d: a crash is permanent and total; duration and factor must be zero", p.Name, i)
			}
		case KindStraggler, KindBrownout:
			if f.Duration <= 0 {
				return fmt.Errorf("faults: plan %q fault %d: %s needs a positive duration, got %g", p.Name, i, f.Kind, f.Duration)
			}
			if f.Factor < 1 {
				return fmt.Errorf("faults: plan %q fault %d: %s needs a slowdown factor ≥ 1, got %g", p.Name, i, f.Kind, f.Factor)
			}
			if f.Kind == KindBrownout && f.Replica != 0 {
				return fmt.Errorf("faults: plan %q fault %d: a brownout degrades the whole fleet; replica must be zero", p.Name, i)
			}
		default:
			return fmt.Errorf("faults: plan %q fault %d has unknown kind %q", p.Name, i, f.Kind)
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// MTBFOptions parameterises GenerateMTBF. MTBF and MTTR are the exponential
// means for time-between-failures (per replica) and repair windows.
type MTBFOptions struct {
	// Name labels the generated plan; required.
	Name string
	// Replicas is how many replica failure domains to draw for.
	Replicas int
	// Horizon bounds the plan: no fault starts at or after it.
	Horizon units.Seconds
	// MTBF is the mean time between failures for each replica.
	MTBF units.Seconds
	// MTTR is the mean window length for non-crash faults.
	MTTR units.Seconds
	// Seed seeds the generator; the same options always yield the same plan.
	Seed int64
	// CrashWeight is the probability a drawn failure is a crash (the rest
	// split evenly between straggler and brownout). Zero means 0.25.
	CrashWeight float64
}

// GenerateMTBF draws a seeded stochastic fault plan: each replica fails as a
// Poisson process with the given MTBF, each failure is a crash with
// CrashWeight probability (a crashed replica draws no further faults) or
// otherwise a straggler/brownout window with an exponential MTTR duration
// and a factor in [2, 4). The draw order is fixed — replica by replica, then
// time order within a replica — so the plan is a pure function of its
// options.
func GenerateMTBF(opt MTBFOptions) (Plan, error) {
	if opt.Name == "" {
		return Plan{}, fmt.Errorf("faults: MTBF plan has no name")
	}
	if opt.Replicas <= 0 {
		return Plan{}, fmt.Errorf("faults: MTBF plan needs at least one replica, got %d", opt.Replicas)
	}
	if opt.Horizon <= 0 || opt.MTBF <= 0 || opt.MTTR <= 0 {
		return Plan{}, fmt.Errorf("faults: MTBF plan needs positive horizon, MTBF and MTTR")
	}
	crashW := opt.CrashWeight
	if crashW == 0 {
		crashW = 0.25
	}
	if crashW < 0 || crashW > 1 {
		return Plan{}, fmt.Errorf("faults: crash weight %g outside [0, 1]", crashW)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	p := Plan{Name: opt.Name, Seed: opt.Seed}
	for rep := 0; rep < opt.Replicas; rep++ {
		t := 0.0
		for {
			t += rng.ExpFloat64() * opt.MTBF.Seconds()
			if t >= opt.Horizon.Seconds() {
				break
			}
			if rng.Float64() < crashW {
				p.Faults = append(p.Faults, Fault{Kind: KindCrash, Replica: rep, At: t})
				break // a crashed replica cannot fail again
			}
			f := Fault{
				At:       t,
				Duration: rng.ExpFloat64() * opt.MTTR.Seconds(),
				Factor:   2 + 2*rng.Float64(),
			}
			if f.Duration <= 0 {
				f.Duration = opt.MTTR.Seconds()
			}
			if rng.Float64() < 0.5 {
				f.Kind = KindStraggler
				f.Replica = rep
			} else {
				f.Kind = KindBrownout
			}
			p.Faults = append(p.Faults, f)
			t += f.Duration // windows on one replica do not overlap themselves
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
