package faults

import (
	"bytes"
	"testing"
)

// FuzzFaultPlanRoundTrip feeds arbitrary bytes to the importer. Whatever it
// accepts must re-export byte-identically — the same stability contract the
// trace and design-spec importers carry.
func FuzzFaultPlanRoundTrip(f *testing.F) {
	seed, err := samplePlan().Export()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"quiet","faults":[]}`))
	f.Add([]byte(`{"name":"one","seed":3,"faults":[{"kind":"crash","at_s":0}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ImportPlan(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		first, err := p.Export()
		if err != nil {
			t.Fatalf("accepted plan failed to export: %v", err)
		}
		back, err := ImportPlan(first)
		if err != nil {
			t.Fatalf("exported plan failed to re-import: %v", err)
		}
		second, err := back.Export()
		if err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}
