package faults

import (
	"bytes"
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/units"
)

func samplePlan() Plan {
	return Plan{
		Name: "sample",
		Faults: []Fault{
			{Kind: KindCrash, Replica: 1, At: 2.5},
			{Kind: KindStraggler, Replica: 0, At: 1, Duration: 0.75, Factor: 3},
			{Kind: KindBrownout, At: 4, Duration: 2, Factor: 1.5},
		},
	}
}

// Export → import → export must be byte-identical: the plan is provenance for
// golden results, so its serialisation cannot wobble.
func TestPlanRoundTripByteStable(t *testing.T) {
	p := samplePlan()
	first, err := p.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	back, err := ImportPlan(first)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	second, err := back.Export()
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Fatal("export has no trailing newline")
	}
}

// An empty fault list is a valid plan — the fault-off equivalence pin runs
// fleets with the machinery armed but inert.
func TestEmptyPlanValid(t *testing.T) {
	p := Plan{Name: "quiet"}
	if !p.Empty() {
		t.Fatal("plan with no faults should report Empty")
	}
	data, err := p.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if _, err := ImportPlan(data); err != nil {
		t.Fatalf("import: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"no name", Plan{}, "no name"},
		{"negative time", Plan{Name: "p", Faults: []Fault{{Kind: KindCrash, At: -1}}}, "negative time"},
		{"negative replica", Plan{Name: "p", Faults: []Fault{{Kind: KindCrash, Replica: -1}}}, "negative replica"},
		{"crash with duration", Plan{Name: "p", Faults: []Fault{{Kind: KindCrash, Duration: 1}}}, "must be zero"},
		{"crash with factor", Plan{Name: "p", Faults: []Fault{{Kind: KindCrash, Factor: 2}}}, "must be zero"},
		{"straggler no duration", Plan{Name: "p", Faults: []Fault{{Kind: KindStraggler, Factor: 2}}}, "positive duration"},
		{"straggler weak factor", Plan{Name: "p", Faults: []Fault{{Kind: KindStraggler, Duration: 1, Factor: 0.5}}}, "factor"},
		{"brownout per replica", Plan{Name: "p", Faults: []Fault{{Kind: KindBrownout, Replica: 2, Duration: 1, Factor: 2}}}, "whole fleet"},
		{"unknown kind", Plan{Name: "p", Faults: []Fault{{Kind: "meteor"}}}, "unknown kind"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: validate accepted an invalid plan", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestImportRejectsUnknownFields(t *testing.T) {
	if _, err := ImportPlan([]byte(`{"name":"p","faults":[],"severity":9}`)); err == nil {
		t.Fatal("import accepted an unknown field")
	}
}

func TestFaultAccessors(t *testing.T) {
	f := Fault{Kind: KindStraggler, At: 1.5, Duration: 2, Factor: 3}
	if f.Start() != units.Seconds(1.5) {
		t.Fatalf("Start = %v", f.Start())
	}
	if f.End() != units.Seconds(3.5) {
		t.Fatalf("End = %v", f.End())
	}
	if !f.Window() {
		t.Fatal("straggler should be a window fault")
	}
	c := Fault{Kind: KindCrash, At: 2}
	if c.Window() {
		t.Fatal("crash should not be a window fault")
	}
	if c.End() != c.Start() {
		t.Fatal("crash window should be empty")
	}
}

// The MTBF generator is a pure function of its options: same seed, same
// plan; different seed, (almost surely) a different one.
func TestGenerateMTBFDeterministic(t *testing.T) {
	opt := MTBFOptions{
		Name:     "mtbf",
		Replicas: 4,
		Horizon:  units.Seconds(100),
		MTBF:     units.Seconds(20),
		MTTR:     units.Seconds(2),
		Seed:     7,
	}
	a, err := GenerateMTBF(opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := GenerateMTBF(opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ab, _ := a.Export()
	bb, _ := b.Export()
	if !bytes.Equal(ab, bb) {
		t.Fatal("same options generated different plans")
	}
	if a.Empty() {
		t.Fatal("a 100 s horizon at MTBF 20 s over 4 replicas should draw faults")
	}
	opt.Seed = 8
	c, err := GenerateMTBF(opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cb, _ := c.Export()
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds generated identical plans")
	}
}

func TestGenerateMTBFRejections(t *testing.T) {
	base := MTBFOptions{Name: "m", Replicas: 1, Horizon: 10, MTBF: 5, MTTR: 1}
	for _, tc := range []struct {
		name   string
		mutate func(*MTBFOptions)
	}{
		{"no name", func(o *MTBFOptions) { o.Name = "" }},
		{"no replicas", func(o *MTBFOptions) { o.Replicas = 0 }},
		{"no horizon", func(o *MTBFOptions) { o.Horizon = 0 }},
		{"bad weight", func(o *MTBFOptions) { o.CrashWeight = 2 }},
	} {
		o := base
		tc.mutate(&o)
		if _, err := GenerateMTBF(o); err == nil {
			t.Errorf("%s: generator accepted invalid options", tc.name)
		}
	}
}
