// Package sim provides a small discrete-event simulation kernel: a clock and
// an event queue with deterministic ordering.
//
// The command-level DRAM simulator (internal/dram) is built on this kernel.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes simulations reproducible run-to-run — a property the
// test suite relies on.
package sim

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
)

// Event is a callback scheduled to run at a simulated instant.
type Event func(now units.Seconds)

type item struct {
	at  units.Seconds
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  Event
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq), stored by
// value. The kernel used to route through container/heap, whose interface
// dispatch and per-event pointer allocation sat on the fleet-scale hot path
// (one push and one pop per replica step); inlining the sifts on the
// concrete slice removes both. (at, seq) is a strict total order — seq is
// unique — so the pop sequence, and therefore every simulation, is
// identical whatever the heap's internal arrangement.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *eventHeap) push(it item) {
	*h = append(*h, it)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() item {
	old := *h
	n := len(old) - 1
	it := old[0]
	old[0] = old[n]
	old[n] = item{} // release the callback reference
	*h = old[:n]
	h.siftDown(0)
	return it
}

// Engine owns the simulated clock and the pending event set.
// The zero value is ready to use.
type Engine struct {
	now    units.Seconds
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns an empty engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() units.Seconds { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt reports the timestamp of the earliest pending event. The second
// return is false when the queue is empty. Called from inside an event
// callback, it sees the true next event (the running event has already been
// popped) — the property the cluster layer's macro-stepping horizon relies
// on: no future event can be scheduled earlier than this instant.
func (e *Engine) NextAt() (units.Seconds, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// At schedules fn to run at the absolute instant t. Scheduling in the past is
// a programming error and panics: it would silently reorder causality.
func (e *Engine) At(t units.Seconds, fn Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d units.Seconds, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := e.events.pop()
	e.now = it.at
	e.fired++
	it.fn(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() units.Seconds {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (even if the queue still holds later events).
func (e *Engine) RunUntil(deadline units.Seconds) units.Seconds {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// RunSteps executes at most n events; it returns the number executed.
func (e *Engine) RunSteps(n int) int {
	done := 0
	for done < n && e.Step() {
		done++
	}
	return done
}
