package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.After(units.Seconds(1), func(units.Seconds) { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(units.Seconds(3), func(units.Seconds) { order = append(order, 3) })
	e.At(units.Seconds(1), func(units.Seconds) { order = append(order, 1) })
	e.At(units.Seconds(2), func(units.Seconds) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAmongTies(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(units.Seconds(5), func(units.Seconds) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-broken order = %v, want FIFO", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	hits := 0
	var chain func(units.Seconds)
	chain = func(now units.Seconds) {
		hits++
		if hits < 5 {
			e.After(units.Seconds(1), chain)
		}
	}
	e.After(units.Seconds(1), chain)
	end := e.Run()
	if hits != 5 {
		t.Fatalf("chain fired %d times, want 5", hits)
	}
	if end != 5 {
		t.Fatalf("final time %v, want 5s", end)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(units.Seconds(2), func(units.Seconds) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(units.Seconds(1), func(units.Seconds) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	e.After(units.Seconds(-1), func(units.Seconds) {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(units.Seconds(at), func(units.Seconds) { fired = append(fired, at) })
	}
	e.RunUntil(units.Seconds(3))
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// RunUntil past the queue advances the clock to the deadline.
	e.RunUntil(units.Seconds(10))
	if e.Now() != 10 || e.Pending() != 0 {
		t.Fatalf("clock %v pending %d, want 10 / 0", e.Now(), e.Pending())
	}
}

func TestRunSteps(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(units.Seconds(float64(i)), func(units.Seconds) {})
	}
	if n := e.RunSteps(3); n != 3 {
		t.Fatalf("RunSteps = %d, want 3", n)
	}
	if n := e.RunSteps(10); n != 2 {
		t.Fatalf("RunSteps = %d, want remaining 2", n)
	}
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}

// Property: for any set of timestamps, the engine fires events in
// non-decreasing time order and the clock equals the max timestamp at the end.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []units.Seconds
		for _, r := range raw {
			at := units.Seconds(float64(r) / 8)
			e.At(at, func(now units.Seconds) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(raw) > 0 {
			max := units.Seconds(0)
			for _, r := range raw {
				if s := units.Seconds(float64(r) / 8); s > max {
					max = s
				}
			}
			return e.Now() == max
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — two engines fed the same schedule fire identically.
func TestDeterminism(t *testing.T) {
	build := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var log []float64
		for i := 0; i < 200; i++ {
			at := units.Seconds(rng.Float64() * 100)
			id := float64(i)
			e.At(at, func(now units.Seconds) { log = append(log, float64(now)+id/1000) })
		}
		e.Run()
		return log
	}
	a, b := build(42), build(42)
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
