package cluster

import (
	"fmt"

	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Router picks the replica that receives an arriving request. Route is
// called once per request, in arrival order, with the replicas' live state;
// stateful routers (round-robin) advance their own state per call, so one
// Router instance belongs to one cluster run.
type Router interface {
	Name() string
	// Route returns the index of the chosen replica in reps.
	Route(req workload.Request, reps []*Replica) int
}

// RoundRobin returns the classic stateless-signal router: requests cycle
// through the replicas in order, ignoring load.
func RoundRobin() Router { return &roundRobin{} }

type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(_ workload.Request, reps []*Replica) int {
	i := r.next % len(reps)
	r.next++
	return i
}

// LeastOutstanding returns the load-aware router: each request goes to the
// replica with the fewest outstanding (admitted-but-unfinished plus queued)
// requests, ties broken by lowest replica ID.
func LeastOutstanding() Router { return leastOutstanding{} }

type leastOutstanding struct{}

func (leastOutstanding) Name() string { return "least-outstanding" }

func (leastOutstanding) Route(_ workload.Request, reps []*Replica) int {
	best := 0
	for i, rep := range reps[1:] {
		if rep.Outstanding() < reps[best].Outstanding() {
			best = i + 1
		}
	}
	return best
}

// KVHeadroom returns the memory-aware router: each request goes to the
// replica whose attention pool has the most free worst-case KV capacity —
// the signal that matters when long-context requests would otherwise block
// admission (§3.2(b)'s capacity limit, at fleet scale). Ties break by
// lowest replica ID.
func KVHeadroom() Router { return kvHeadroom{} }

type kvHeadroom struct{}

func (kvHeadroom) Name() string { return "kv-headroom" }

func (kvHeadroom) Route(_ workload.Request, reps []*Replica) int {
	best := 0
	var bestRoom units.Bytes = reps[0].KVHeadroom()
	for i, rep := range reps[1:] {
		if room := rep.KVHeadroom(); room > bestRoom {
			best, bestRoom = i+1, room
		}
	}
	return best
}

// RouterByName resolves a router policy by its display name.
func RouterByName(name string) (Router, error) {
	switch name {
	case "round-robin":
		return RoundRobin(), nil
	case "least-outstanding":
		return LeastOutstanding(), nil
	case "kv-headroom":
		return KVHeadroom(), nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q", name)
}

// Routers returns one instance of every routing policy.
func Routers() []Router {
	return []Router{RoundRobin(), LeastOutstanding(), KVHeadroom()}
}
