package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func testOptions(replicas int, router Router) Options {
	return Options{
		Replicas: replicas,
		MaxBatch: 8,
		Router:   router,
		Serving:  serving.DefaultOptions(1),
		// Most legacy assertions audit the per-request records and the
		// realised stream, so the shared helper opts into retention; the
		// constant-memory default path has its own tests.
		RetainRequests: true,
		RetainStream:   true,
	}
}

func mustRun(t *testing.T, router Router, replicas int, reqs []workload.Request) *FleetResult {
	t.Helper()
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), testOptions(replicas, router))
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestClusterDeterministic(t *testing.T) {
	// A fixed seed reproduces the identical fleet trace across ≥ 2 replicas:
	// routing, makespan, token counts, and the latency digests all match.
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	a := mustRun(t, LeastOutstanding(), 3, reqs)
	b := mustRun(t, LeastOutstanding(), 3, reqs)
	if !reflect.DeepEqual(a.Routed, b.Routed) {
		t.Fatalf("routing diverged: %v vs %v", a.Routed, b.Routed)
	}
	if a.Makespan != b.Makespan || a.Tokens != b.Tokens {
		t.Fatalf("fleet totals diverged: %v/%d vs %v/%d", a.Makespan, a.Tokens, b.Makespan, b.Tokens)
	}
	if a.TTFT != b.TTFT || a.TPOT != b.TPOT {
		t.Fatalf("latency digests diverged:\n%+v %+v\n%+v %+v", a.TTFT, a.TPOT, b.TTFT, b.TPOT)
	}
	if a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("energy diverged: %v vs %v", a.Energy.Total(), b.Energy.Total())
	}
}

func TestAllRoutersCompleteStream(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(24, 80, 9)
	var want int
	for _, r := range reqs {
		want += r.OutputLen
	}
	for _, router := range Routers() {
		f := mustRun(t, router, 2, reqs)
		if f.Tokens != want {
			t.Errorf("%s: fleet tokens = %d, want %d", router.Name(), f.Tokens, want)
		}
		if len(f.Requests) != len(reqs) {
			t.Errorf("%s: metrics for %d of %d requests", router.Name(), len(f.Requests), len(reqs))
		}
		if f.Makespan <= 0 || f.TokensPerSecond() <= 0 {
			t.Errorf("%s: degenerate fleet result: %+v", router.Name(), f)
		}
		routedTotal := 0
		for _, n := range f.Routed {
			routedTotal += n
		}
		if routedTotal != len(reqs) {
			t.Errorf("%s: routed %d of %d requests", router.Name(), routedTotal, len(reqs))
		}
		if f.TTFT.P99 < f.TTFT.P50 || f.TPOT.P99 < f.TPOT.P50 {
			t.Errorf("%s: percentiles not monotone: %+v %+v", router.Name(), f.TTFT, f.TPOT)
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(30, 40, 11)
	f := mustRun(t, RoundRobin(), 3, reqs)
	for i, n := range f.Routed {
		if n != 10 {
			t.Fatalf("replica %d received %d requests, want 10 (routed %v)", i, n, f.Routed)
		}
	}
}

func TestLoadAwareRoutersUseEveryReplica(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(40, 100, 13)
	for _, router := range []Router{LeastOutstanding(), KVHeadroom()} {
		f := mustRun(t, router, 3, reqs)
		for i, n := range f.Routed {
			if n == 0 {
				t.Errorf("%s: replica %d starved (routed %v)", router.Name(), i, f.Routed)
			}
		}
	}
}

func TestSingleReplicaMatchesRunContinuous(t *testing.T) {
	// A 1-replica fleet is exactly one engine running mixed continuous
	// batching: the cluster layer must add no simulation artefacts.
	cfg := model.LLaMA65B()
	reqs := workload.GeneralQA().Poisson(20, 30, 17)

	eng, err := serving.New(core.NewPAPI(0), cfg, serving.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RunContinuous(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}

	f := mustRun(t, RoundRobin(), 1, reqs)
	got := f.Replicas[0]
	if got.Tokens != want.Tokens || got.Iterations != want.Iterations || got.DecodeTime != want.DecodeTime {
		t.Fatalf("1-replica fleet diverged from RunContinuous:\n got %d tokens %d iters %v\nwant %d tokens %d iters %v",
			got.Tokens, got.Iterations, got.DecodeTime, want.Tokens, want.Iterations, want.DecodeTime)
	}
	if f.Makespan != want.TotalTime() {
		t.Fatalf("makespan %v != single-engine total %v", f.Makespan, want.TotalTime())
	}
}

func TestClusterAttainment(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(24, 40, 19)
	f := mustRun(t, LeastOutstanding(), 2, reqs)
	if got := f.Attainment(workload.SLO{}); got != 1 {
		t.Fatalf("unbounded SLO attainment = %v, want 1", got)
	}
	if got := f.Attainment(workload.SLO{TokenLatency: units.Nanoseconds(1)}); got != 0 {
		t.Fatalf("impossible SLO attainment = %v, want 0", got)
	}
	if f.String() == "" {
		t.Fatal("empty fleet rendering")
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := model.LLaMA65B()
	sys := func() *core.System { return core.NewPAPI(0) }
	if _, err := New(nil, cfg, testOptions(2, nil)); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := New(sys, cfg, Options{Replicas: 0, MaxBatch: 8, Serving: serving.DefaultOptions(1)}); err == nil {
		t.Error("zero replicas should fail")
	}
	if _, err := New(sys, cfg, Options{Replicas: 2, MaxBatch: 0, Serving: serving.DefaultOptions(1)}); err == nil {
		t.Error("zero max batch should fail")
	}
	if _, err := NewByName("no-such-design", cfg, testOptions(2, nil)); err == nil {
		t.Error("unknown design should fail")
	}

	c, err := New(sys, cfg, testOptions(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil); err == nil {
		t.Error("empty stream should fail")
	}
	// A validation failure must not consume the single-use cluster.
	if _, err := c.Run(workload.GeneralQA().Generate(4, 1)); err != nil {
		t.Errorf("run after rejected empty stream: %v", err)
	}
	if _, err := c.Run(workload.GeneralQA().Generate(4, 1)); err == nil {
		t.Error("second completed Run should fail")
	}
}

func TestNegativeArrivalDoesNotPanic(t *testing.T) {
	// A request with a negative arrival is "already waiting at start" in
	// the single-engine path; the cluster must accept it too instead of
	// panicking on a before-time-zero event.
	reqs := []workload.Request{
		{ID: 0, InputLen: 16, OutputLen: 4, Arrival: units.Seconds(-1)},
		{ID: 1, InputLen: 16, OutputLen: 4},
	}
	f := mustRun(t, RoundRobin(), 2, reqs)
	if f.Tokens != 8 || len(f.Requests) != 2 {
		t.Fatalf("fleet result = %d tokens, %d requests", f.Tokens, len(f.Requests))
	}
}

func TestRouterByName(t *testing.T) {
	for _, name := range []string{"round-robin", "least-outstanding", "kv-headroom"} {
		r, err := RouterByName(name)
		if err != nil || r.Name() != name {
			t.Errorf("RouterByName(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := RouterByName("random"); err == nil {
		t.Error("unknown router should fail")
	}
}
