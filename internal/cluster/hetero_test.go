package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// A single-spec fleet is the same fleet NewByName has always built: the
// spec path must not perturb a homogeneous run in any observable way.
func TestFromSpecsMatchesByName(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(24, 50, 3)
	run := func(build func() (*Cluster, error)) *FleetResult {
		c, err := build()
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	spec, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	a := run(func() (*Cluster, error) {
		return NewFromSpecs([]design.Spec{spec}, model.LLaMA65B(), testOptions(2, LeastOutstanding()))
	})
	b := run(func() (*Cluster, error) {
		return NewByName("PAPI", model.LLaMA65B(), testOptions(2, LeastOutstanding()))
	})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("NewFromSpecs([PAPI]) and NewByName(PAPI) produced different fleet results")
	}
	if a.PerDesign != nil {
		t.Fatal("homogeneous fleet must not carry a per-design split")
	}
	if a.System != "PAPI" {
		t.Fatalf("homogeneous fleet named %q", a.System)
	}
}

// mixedSpecs builds the canonical mixed fleet of the docs: PAPI alongside
// the strongest heterogeneous baseline.
func mixedSpecs(t *testing.T) []design.Spec {
	t.Helper()
	papi, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	base, err := design.ByName(design.DesignA100AttAcc)
	if err != nil {
		t.Fatal(err)
	}
	return []design.Spec{papi, base}
}

func TestMixedFleetSplitsMetricsPerDesign(t *testing.T) {
	c, err := NewFromSpecs(mixedSpecs(t), model.LLaMA65B(), testOptions(4, LeastOutstanding()))
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	f, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	if f.System != "PAPI + A100+AttAcc" {
		t.Fatalf("mixed fleet named %q", f.System)
	}
	if len(f.PerDesign) != 2 {
		t.Fatalf("per-design split has %d entries, want 2", len(f.PerDesign))
	}
	if f.PerDesign[0].Design != "PAPI" || f.PerDesign[1].Design != "A100+AttAcc" {
		t.Fatalf("per-design order %q, %q — want blueprint order", f.PerDesign[0].Design, f.PerDesign[1].Design)
	}

	// Replica i runs design i%2, so a 4-replica fleet splits 2/2.
	var reps, routed, requests, tokens int
	var energy units.Joules
	for _, d := range f.PerDesign {
		if d.Replicas != 2 {
			t.Errorf("%s runs on %d replicas, want 2", d.Design, d.Replicas)
		}
		reps += d.Replicas
		routed += d.Routed
		requests += d.Requests
		tokens += d.Tokens
		energy += d.Energy
		if a := d.Attainment(workload.SLO{TokenLatency: units.Milliseconds(12)}); a < 0 || a > 1 {
			t.Errorf("%s attainment %g outside [0, 1]", d.Design, a)
		}
	}
	// The split must conserve the fleet totals exactly.
	if reps != len(f.Replicas) || routed != len(reqs) || requests != len(f.Requests) || tokens != f.Tokens {
		t.Fatalf("per-design split does not sum to the fleet totals: %d/%d reps, %d/%d routed, %d/%d reqs, %d/%d tokens",
			reps, len(f.Replicas), routed, len(reqs), requests, len(f.Requests), tokens, f.Tokens)
	}
	if energy != f.Energy.Total() {
		t.Fatalf("per-design energy %v does not sum to the fleet total %v", energy, f.Energy.Total())
	}
}

// Mixed fleets are deterministic like homogeneous ones: the same seed must
// reproduce the identical run.
func TestMixedFleetDeterministic(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(24, 50, 7)
	run := func() *FleetResult {
		c, err := NewFromSpecs(mixedSpecs(t), model.LLaMA65B(), testOptions(3, LeastOutstanding()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("mixed fleet is not deterministic")
	}
}

// An autoscaled mixed fleet provisions toward the blueprint ratio: every
// listed design runs from the initial fleet (NewFromSpecs requires
// Replicas ≥ len(specs)), serves traffic, and scale-ups keep restoring the
// mix that load-based drains erode.
func TestMixedFleetAutoscaleKeepsDesignMix(t *testing.T) {
	slo := workload.SLO{TokenLatency: units.Milliseconds(12)}
	opt := testOptions(2, LeastOutstanding())
	opt.Autoscale = DefaultAutoscale(1, 4, slo)
	c, err := NewFromSpecs(mixedSpecs(t), model.LLaMA65B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Run(workload.GeneralQA().Poisson(96, 80, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PerDesign) != 2 {
		t.Fatalf("per-design split has %d entries, want 2", len(f.PerDesign))
	}
	for _, d := range f.PerDesign {
		if d.Replicas == 0 {
			t.Errorf("%s was never provisioned in an autoscaled mixed fleet", d.Design)
		}
		if d.Requests == 0 {
			t.Errorf("%s served no requests despite being provisioned from the start", d.Design)
		}
	}
}

// Deficit-based provisioning restores a design the autoscaler drained:
// with one PAPI replica already serving, the next scale-up of a
// PAPI+baseline fleet must provision the missing baseline, not cycle back
// to PAPI.
func TestNextBlueprintRestoresDrainedDesign(t *testing.T) {
	c, err := NewFromSpecs(mixedSpecs(t), model.LLaMA65B(), testOptions(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.newFleetRun()
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{r.reps[0].design, r.reps[1].design}; got[0] != "PAPI" || got[1] != "A100+AttAcc" {
		t.Fatalf("initial provisioning order %v, want [PAPI A100+AttAcc]", got)
	}
	// Drain the baseline: the serving set is now 100% PAPI, so the next
	// provisioning decision must pick the baseline again.
	r.reps[1].state = repDraining
	if bp := r.nextBlueprint(); bp.name != "A100+AttAcc" {
		t.Fatalf("after draining the baseline, next blueprint = %s, want A100+AttAcc", bp.name)
	}
	// And with the mix restored, the ratio target alternates again.
	r.reps[1].state = repActive
	if bp := r.nextBlueprint(); bp.name != "PAPI" {
		t.Fatalf("with a balanced 1:1 fleet, next blueprint = %s, want PAPI", bp.name)
	}
}

// A caller-shared cost table cannot price two different hardware designs;
// the constructor must reject the combination rather than let the table's
// bind() fail later (or worse, serve wrong prices).
func TestMixedFleetRejectsSharedCostTable(t *testing.T) {
	opt := testOptions(2, nil)
	opt.Serving.Costs = serving.NewCostTable()
	if _, err := NewFromSpecs(mixedSpecs(t), model.LLaMA65B(), opt); err == nil {
		t.Fatal("mixed fleet with a caller-shared cost table should be rejected")
	}
	// A homogeneous fleet keeps the sharing path — including one spelled as
	// a repeated spec list.
	spec, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromSpecs([]design.Spec{spec}, model.LLaMA65B(), opt); err != nil {
		t.Fatalf("homogeneous fleet with a shared cost table should build: %v", err)
	}
	opt.Serving.Costs = serving.NewCostTable()
	if _, err := NewFromSpecs([]design.Spec{spec, spec}, model.LLaMA65B(), opt); err != nil {
		t.Fatalf("repeated-spec homogeneous fleet with a shared cost table should build: %v", err)
	}
}

// Repeating a design in the blueprint list (a ratio list) keeps the fleet
// homogeneous per design: one shared cost table per distinct design, no
// per-design split for a single distinct name, and results identical to
// the single-spec spelling.
func TestRepeatedSpecSharesDesign(t *testing.T) {
	spec, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.GeneralQA().Poisson(24, 50, 3)
	run := func(specs []design.Spec) *FleetResult {
		c, err := NewFromSpecs(specs, model.LLaMA65B(), testOptions(2, LeastOutstanding()))
		if err != nil {
			t.Fatal(err)
		}
		for _, bp := range c.blueprints[1:] {
			if bp.costs != c.blueprints[0].costs {
				t.Fatal("same-design blueprints do not share a cost table")
			}
		}
		f, err := c.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := run([]design.Spec{spec})
	b := run([]design.Spec{spec, spec})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated-spec fleet differs from the single-spec fleet")
	}
	if b.PerDesign != nil {
		t.Fatal("repeated-spec homogeneous fleet must not carry a per-design split")
	}
}

// Two *different* designs sharing a display name would silently merge in
// the per-design split; the constructor must reject them.
func TestMixedFleetRejectsConflictingSameNameDesigns(t *testing.T) {
	base, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Policy = design.PolicySpec{Kind: design.PolicyDynamic, Alpha: 64} // still named "PAPI"
	if _, err := NewFromSpecs([]design.Spec{base, tuned}, model.LLaMA65B(), testOptions(2, nil)); err == nil {
		t.Fatal("two different designs named PAPI should be rejected")
	}
	tuned.Name = "PAPI-tuned"
	if _, err := NewFromSpecs([]design.Spec{base, tuned}, model.LLaMA65B(), testOptions(2, nil)); err != nil {
		t.Fatalf("renamed variant should build: %v", err)
	}
}

// A fleet whose initial size cannot provision every listed design would
// report misleading zeros for the designs that never ran; reject it up
// front. Autoscaled fleets are held to the same bar — scale-ups are
// load-driven and may never happen, so Max does not count.
func TestFromSpecsRejectsUnderProvisionedMix(t *testing.T) {
	specs := mixedSpecs(t)
	if _, err := NewFromSpecs(specs, model.LLaMA65B(), testOptions(1, nil)); err == nil {
		t.Fatal("2 designs on a static 1-replica fleet should be rejected")
	}
	opt := testOptions(1, nil)
	opt.Autoscale = DefaultAutoscale(1, 4, workload.SLO{TokenLatency: units.Milliseconds(12)})
	if _, err := NewFromSpecs(specs, model.LLaMA65B(), opt); err == nil {
		t.Fatal("2 designs on 1 initial replica should be rejected even with autoscale headroom")
	}
	opt = testOptions(2, nil)
	opt.Autoscale = DefaultAutoscale(1, 4, workload.SLO{TokenLatency: units.Milliseconds(12)})
	if _, err := NewFromSpecs(specs, model.LLaMA65B(), opt); err != nil {
		t.Fatalf("2 designs on 2 initial replicas should build: %v", err)
	}
}

// NewFromSpecs must surface spec build errors at construction.
func TestFromSpecsRejectsInvalidSpec(t *testing.T) {
	spec, err := design.ByName(design.DesignPAPI)
	if err != nil {
		t.Fatal(err)
	}
	spec.AttnPIM = design.HBMPIMPool(5000) // beyond every fabric's fan-out
	if _, err := NewFromSpecs([]design.Spec{spec}, model.LLaMA65B(), testOptions(1, nil)); err == nil {
		t.Fatal("unbuildable spec should be rejected at fleet construction")
	}
	if _, err := NewFromSpecs(nil, model.LLaMA65B(), testOptions(1, nil)); err == nil {
		t.Fatal("empty spec list should be rejected")
	}
}
