package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// runSegment drives one constant-memory fleet run over a request slice —
// a "segment" of a longer run split across processes.
func runSegment(t *testing.T, reqs []workload.Request) *FleetResult {
	t.Helper()
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), Options{
		Replicas: 2,
		MaxBatch: 8,
		Router:   LeastOutstanding(),
		Serving:  serving.DefaultOptions(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCheckpointRoundTrip: Export → Import reproduces the checkpoint exactly,
// and re-exporting yields identical bytes (the byte-stable contract).
func TestCheckpointRoundTrip(t *testing.T) {
	f := runSegment(t, tieredStream(t, 48, 3))
	cp := f.Checkpoint()
	data, err := cp.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, back) {
		t.Fatalf("checkpoint did not survive the round trip:\n%+v\n%+v", cp, back)
	}
	again, err := back.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-export is not byte-stable")
	}
	if cp.String() == "" {
		t.Fatal("empty checkpoint rendering")
	}
}

// TestCheckpointMergeOfSegments pins the split-run contract: merging two
// segment checkpoints sums every counter and merges the latency sketches
// exactly as folding both segments' aggregates directly would — the merged
// digest, attainment, and availability are those of everything the segments
// served.
func TestCheckpointMergeOfSegments(t *testing.T) {
	reqs := tieredStream(t, 64, 9)
	half := len(reqs) / 2
	second := append([]workload.Request(nil), reqs[half:]...)
	base := second[0].Arrival
	for i := range second {
		second[i].Arrival -= base
	}
	a := runSegment(t, reqs[:half])
	b := runSegment(t, second)

	merged := a.Checkpoint()
	if err := merged.Merge(b.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	if merged.Runs != 2 {
		t.Fatalf("merged %d segments, want 2", merged.Runs)
	}
	if merged.Completed != a.Completed+b.Completed || merged.Tokens != a.Tokens+b.Tokens {
		t.Fatalf("merged counters diverged: %d completed / %d tokens, want %d / %d",
			merged.Completed, merged.Tokens, a.Completed+b.Completed, a.Tokens+b.Tokens)
	}
	wantMakespan := a.Makespan
	if b.Makespan > wantMakespan {
		wantMakespan = b.Makespan
	}
	if merged.Makespan != wantMakespan {
		t.Errorf("merged makespan %v, want the longer segment's %v", merged.Makespan, wantMakespan)
	}
	if merged.ReplicaSeconds != a.ReplicaSeconds+b.ReplicaSeconds {
		t.Errorf("merged replica-seconds %v, want %v", merged.ReplicaSeconds, a.ReplicaSeconds+b.ReplicaSeconds)
	}

	// The merged sketches must equal folding both aggregates directly.
	want := newFleetAggregate()
	want.merge(a.Agg)
	want.merge(b.Agg)
	if got := merged.TTFT(); got != want.TTFT.Summary() {
		t.Errorf("merged TTFT digest %+v, direct fold %+v", got, want.TTFT.Summary())
	}
	if got := merged.TPOT(); got != want.TPOT.Summary() {
		t.Errorf("merged TPOT digest %+v, direct fold %+v", got, want.TPOT.Summary())
	}
	slo := workload.SLO{TokenLatency: units.Milliseconds(10)}
	wantAtt := float64(want.metCount(slo)) / float64(want.Completed)
	if got := merged.Attainment(slo); got != wantAtt {
		t.Errorf("merged attainment %v, direct fold %v", got, wantAtt)
	}
	if got := merged.Availability(); got != 1 {
		t.Errorf("merged availability %v, want 1 (no failures)", got)
	}
}

// TestCheckpointMergeRejectsMismatch: segments of different fleets must not
// silently sum.
func TestCheckpointMergeRejectsMismatch(t *testing.T) {
	f := runSegment(t, workload.GeneralQA().Poisson(8, 40, 5))
	a, b := f.Checkpoint(), f.Checkpoint()
	b.System = "other"
	if err := a.Merge(b); err == nil {
		t.Error("merge across systems should fail")
	}
	c := f.Checkpoint()
	c.Model = "other"
	if err := a.Merge(c); err == nil {
		t.Error("merge across models should fail")
	}
}

// TestImportCheckpointRejectsCorrupt covers the validation fence: bad JSON,
// wrong version, missing aggregate, and a counter/aggregate ledger mismatch.
func TestImportCheckpointRejectsCorrupt(t *testing.T) {
	f := runSegment(t, workload.GeneralQA().Poisson(8, 40, 5))
	good, err := f.Checkpoint().Export()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(c *Checkpoint)) []byte {
		c, err := ImportCheckpoint(good)
		if err != nil {
			t.Fatal(err)
		}
		mutate(c)
		data, err := c.Export()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"not-json":      []byte("{"),
		"wrong-version": corrupt(func(c *Checkpoint) { c.Version = 99 }),
		"no-aggregate":  corrupt(func(c *Checkpoint) { c.Agg = nil }),
		"ledger-drift":  corrupt(func(c *Checkpoint) { c.Completed++ }),
		"bad-runs":      corrupt(func(c *Checkpoint) { c.Runs = 0 }),
	}
	for name, data := range cases {
		if _, err := ImportCheckpoint(data); err == nil {
			t.Errorf("%s: corrupt checkpoint imported cleanly", name)
		}
	}
}

// FuzzCheckpointImport hardens the decoder against arbitrary bytes: it must
// reject or accept, never panic, and every accepted checkpoint must survive a
// byte-stable re-export round trip.
func FuzzCheckpointImport(f *testing.F) {
	seedRun := func(n int, seed int64) []byte {
		c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), Options{
			Replicas: 2, MaxBatch: 8, Serving: serving.DefaultOptions(1)})
		if err != nil {
			f.Fatal(err)
		}
		res, err := c.Run(workload.GeneralQA().Poisson(n, 40, seed))
		if err != nil {
			f.Fatal(err)
		}
		data, err := res.Checkpoint().Export()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seedRun(8, 1))
	f.Add(seedRun(24, 7))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ImportCheckpoint(data)
		if err != nil {
			return
		}
		out, err := c.Export()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to export: %v", err)
		}
		back, err := ImportCheckpoint(out)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-import: %v", err)
		}
		again, err := back.Export()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, again) {
			t.Fatal("accepted checkpoint is not byte-stable")
		}
	})
}
