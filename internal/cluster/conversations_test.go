package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func mustRunPlan(t *testing.T, router Router, replicas int, convs []workload.Conversation) *FleetResult {
	t.Helper()
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), testOptions(replicas, router))
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.RunPlan(convs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func chatPlan(t *testing.T, n int, seed int64) []workload.Conversation {
	t.Helper()
	sc, err := workload.ScenarioByName(workload.ScenarioChatMultiTurn)
	if err != nil {
		t.Fatal(err)
	}
	convs, err := sc.Plan(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return convs
}

func TestRunPlanCompletesEveryTurn(t *testing.T) {
	convs := chatPlan(t, 12, 42)
	want := workload.TotalTurns(convs)
	f := mustRunPlan(t, LeastOutstanding(), 2, convs)
	if len(f.Requests) != want {
		t.Fatalf("served %d of %d turns", len(f.Requests), want)
	}
	if len(f.Stream) != want {
		t.Fatalf("realised stream holds %d of %d turns", len(f.Stream), want)
	}
	routed := 0
	for _, n := range f.Routed {
		routed += n
	}
	if routed != want {
		t.Fatalf("routed %d of %d turns", routed, want)
	}
}

// Follow-up turns must stick to the replica that holds the conversation's
// KV state. With one conversation per replica under round-robin, each
// replica serves exactly its conversation's turn count.
func TestRunPlanFollowUpsStickToReplica(t *testing.T) {
	convs := chatPlan(t, 2, 42)
	f := mustRunPlan(t, RoundRobin(), 2, convs)
	for i, n := range f.Routed {
		if want := len(convs[i].Turns); n != want {
			t.Fatalf("replica %d served %d turns, want %d (routed %v)", i, n, want, f.Routed)
		}
	}
}

// Each follow-up carries the grown context: all prior turns' inputs and
// outputs plus its own new prompt tokens.
func TestRunPlanGrowsContext(t *testing.T) {
	convs := []workload.Conversation{{
		ID:      0,
		Arrival: units.Seconds(0.01),
		Turns: []workload.Turn{
			{Input: 10, Output: 4},
			{Input: 5, Output: 4, Think: units.Seconds(0.5)},
			{Input: 5, Output: 4, Think: units.Seconds(0.5)},
		},
	}}
	f := mustRunPlan(t, RoundRobin(), 1, convs)
	wantInputs := []int{10, 10 + 4 + 5, 10 + 4 + 5 + 4 + 5}
	if len(f.Stream) != 3 {
		t.Fatalf("stream holds %d requests, want 3", len(f.Stream))
	}
	for i, req := range f.Stream {
		if req.ID != i {
			t.Fatalf("stream request %d has ID %d; want deterministic base+turn IDs", i, req.ID)
		}
		if req.InputLen != wantInputs[i] {
			t.Fatalf("turn %d input %d, want %d (grown context)", i, req.InputLen, wantInputs[i])
		}
	}
	// The closed loop must hold: each follow-up arrives think-time after
	// the previous turn completed, never before.
	for i := 1; i < 3; i++ {
		gap := f.Stream[i].Arrival - f.Stream[i-1].Arrival
		if gap < units.Seconds(0.5) {
			t.Fatalf("turn %d arrived %v after turn %d; closed loop violated", i, gap, i-1)
		}
	}
}

func TestRunPlanDeterministic(t *testing.T) {
	a := mustRunPlan(t, LeastOutstanding(), 2, chatPlan(t, 10, 7))
	b := mustRunPlan(t, LeastOutstanding(), 2, chatPlan(t, 10, 7))
	if !reflect.DeepEqual(a.Stream, b.Stream) {
		t.Fatal("realised streams diverged between identical closed-loop runs")
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("request metrics diverged between identical closed-loop runs")
	}
	if a.Makespan != b.Makespan || a.Tokens != b.Tokens {
		t.Fatalf("fleet totals diverged: %v/%d vs %v/%d", a.Makespan, a.Tokens, b.Makespan, b.Tokens)
	}
}

// The realised stream of a closed-loop run replays open-loop: same turns,
// same grown contexts, arrivals now literal.
func TestRunPlanStreamReplays(t *testing.T) {
	convs := chatPlan(t, 8, 21)
	f := mustRunPlan(t, LeastOutstanding(), 2, convs)

	tr := workload.NewTrace("replay", workload.ScenarioChatMultiTurn, 21, f.Stream)
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := workload.ImportTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	g := mustRun(t, LeastOutstanding(), 2, back.Workload())
	if g.Tokens != f.Tokens {
		t.Fatalf("replay produced %d tokens, closed-loop run %d", g.Tokens, f.Tokens)
	}
	if len(g.Requests) != len(f.Requests) {
		t.Fatalf("replay served %d requests, closed-loop run %d", len(g.Requests), len(f.Requests))
	}
}

func TestRunPlanValidation(t *testing.T) {
	cfg := model.LLaMA65B()
	sys := func() *core.System { return core.NewPAPI(0) }
	c, err := New(sys, cfg, testOptions(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunPlan(nil); err == nil {
		t.Error("empty plan should fail")
	}
	if _, err := c.RunPlan([]workload.Conversation{{ID: 0}}); err == nil {
		t.Error("turnless conversation should fail")
	}
	// Validation failures must not consume the single-use cluster.
	if _, err := c.RunPlan(chatPlan(t, 2, 1)); err != nil {
		t.Errorf("plan run after rejected inputs: %v", err)
	}
	if _, err := c.RunPlan(chatPlan(t, 2, 1)); err == nil {
		t.Error("second completed RunPlan should fail")
	}
	c2, err := New(sys, cfg, testOptions(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(workload.GeneralQA().Generate(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.RunPlan(chatPlan(t, 2, 1)); err == nil {
		t.Error("RunPlan after Run should fail (single-use cluster)")
	}
}

// The realised stream of a closed-loop run keeps its dialogue structure:
// every request carries its conversation ID and 1-based turn index, and the
// structure survives trace export.
func TestRunPlanStreamKeepsConversationStructure(t *testing.T) {
	convs := chatPlan(t, 6, 33)
	f := mustRunPlan(t, LeastOutstanding(), 2, convs)
	turnsSeen := make(map[int]int, len(convs))
	for _, req := range f.Stream {
		if req.Turn < 1 || req.Turn > len(convs[req.Conversation].Turns) {
			t.Fatalf("request %d has turn %d outside conversation %d's %d turns",
				req.ID, req.Turn, req.Conversation, len(convs[req.Conversation].Turns))
		}
		turnsSeen[req.Conversation]++
	}
	for _, conv := range convs {
		if turnsSeen[conv.ID] != len(conv.Turns) {
			t.Fatalf("conversation %d has %d stream entries, want %d", conv.ID, turnsSeen[conv.ID], len(conv.Turns))
		}
	}
	tr := workload.NewTrace("structure", workload.ScenarioChatMultiTurn, 33, f.Stream)
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := workload.ImportTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Workload(), f.Stream) {
		t.Fatal("conversation structure lost in trace round-trip")
	}
}
