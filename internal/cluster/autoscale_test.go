package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// tieredStream draws the tiered-diurnal scenario's open-loop stream: day-curve
// arrivals over a 65/35 interactive/batch mix — the traffic shape the
// autoscaler exists for.
func tieredStream(t *testing.T, n int, seed int64) []workload.Request {
	t.Helper()
	sc, err := workload.ScenarioByName(workload.ScenarioTieredDiurnal)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := sc.Requests(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func runAutoscaled(t *testing.T, mode serving.FastPathMode, reqs []workload.Request) *FleetResult {
	t.Helper()
	opt := serving.DefaultOptions(1)
	opt.FastPath = mode
	cl, err := NewByName("PAPI", model.OPT30B(), Options{
		Replicas:  1,
		MaxBatch:  6,
		Router:    LeastOutstanding(),
		Serving:   opt,
		Autoscale: DefaultAutoscale(1, 4, workload.SLO{TokenLatency: units.Milliseconds(8)}),

		RetainRequests: true,
		RetainStream:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The elastic control loop must react to the day curve: grow the fleet at
// the peak, drain it back through the trough, and stay within bounds.
func TestAutoscaleScalesWithLoad(t *testing.T) {
	f := runAutoscaled(t, serving.FastPathOn, tieredStream(t, 160, 7))

	ups, drains, stops := 0, 0, 0
	for _, ev := range f.ScaleEvents {
		switch ev.Action {
		case ScaleUp:
			ups++
		case ScaleDrain:
			drains++
		case ScaleStop:
			stops++
		}
		if ev.Active > 4 {
			t.Fatalf("event %+v exceeds the max-replica bound", ev)
		}
	}
	if ups == 0 {
		t.Fatal("peak load never triggered a scale-up")
	}
	if drains == 0 || stops == 0 {
		t.Fatalf("trough never drained a replica (drains %d, stops %d)", drains, stops)
	}
	if f.PeakReplicas <= 1 || f.PeakReplicas > 4 {
		t.Fatalf("peak replicas = %d, want in (1, 4]", f.PeakReplicas)
	}
	// Elasticity must show in the provisioned capacity-time: strictly less
	// than keeping the peak fleet on for the whole run.
	if f.ReplicaSeconds >= units.Seconds(float64(f.PeakReplicas))*f.Makespan {
		t.Fatalf("replica-seconds %v not below peak provisioning %v × %v",
			f.ReplicaSeconds, f.PeakReplicas, f.Makespan)
	}
	if f.ReplicaSeconds < f.Makespan {
		t.Fatalf("replica-seconds %v below one always-on replica (makespan %v)",
			f.ReplicaSeconds, f.Makespan)
	}
}

// A fixed seed must reproduce the identical elastic run — scale events,
// energy, latency digests, everything.
func TestAutoscaleDeterministic(t *testing.T) {
	a := runAutoscaled(t, serving.FastPathOn, tieredStream(t, 120, 11))
	b := runAutoscaled(t, serving.FastPathOn, tieredStream(t, 120, 11))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("autoscaled runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// Fast-path macro-stepping bounded by the arrival/tick horizon must leave an
// autoscaled tiered fleet bit-identical to the reference decode path.
func TestAutoscaleFastPathEquivalence(t *testing.T) {
	reqs := tieredStream(t, 120, 13)
	fast := runAutoscaled(t, serving.FastPathOn, reqs)
	ref := runAutoscaled(t, serving.FastPathOff, reqs)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("autoscaled fleet diverged:\n fast: %+v\n  ref: %+v", fast, ref)
	}
}

// Draining is graceful: every drained replica powers off only after its
// in-flight work completes, and every completed request still lands in the
// fleet metrics exactly once.
func TestAutoscaleDrainIsGraceful(t *testing.T) {
	reqs := tieredStream(t, 160, 7)
	f := runAutoscaled(t, serving.FastPathOn, reqs)
	if len(f.Requests) != len(reqs) {
		t.Fatalf("%d of %d requests accounted", len(f.Requests), len(reqs))
	}
	stopAt := map[int]units.Seconds{}
	for _, ev := range f.ScaleEvents {
		if ev.Action == ScaleStop {
			stopAt[ev.Replica] = ev.At
		}
	}
	if len(stopAt) == 0 {
		t.Skip("run produced no stops to validate")
	}
	// A stopped replica's serving result is frozen at its power-off instant:
	// its busy+idle span cannot extend past the stop.
	for id, at := range stopAt {
		res := f.Replicas[id]
		if got := res.TotalTime(); got > at+units.Seconds(1e-9) {
			t.Errorf("replica %d accrued %v of powered time but stopped at %v", id, got, at)
		}
	}
}

// Closed-loop plans work under autoscaling: follow-ups stick to the replica
// holding their conversation's KV state, so a replica is never drained —
// let alone stopped — while a conversation it hosts is still live, every
// turn completes, and the elastic run stays bit-identical across decode
// paths.
func TestAutoscaleClosedLoop(t *testing.T) {
	sc, err := workload.ScenarioByName(workload.ScenarioChatMultiTurn)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.Plan(16, 31)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode serving.FastPathMode) *FleetResult {
		opt := serving.DefaultOptions(1)
		opt.FastPath = mode
		cl, err := NewByName("PAPI", model.OPT30B(), Options{
			Replicas:  2,
			MaxBatch:  6,
			Router:    LeastOutstanding(),
			Serving:   opt,
			Autoscale: DefaultAutoscale(1, 3, workload.SLO{TokenLatency: units.Milliseconds(8)}),

			RetainRequests: true,
			RetainStream:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := cl.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fast := run(serving.FastPathOn)
	if len(fast.Requests) != workload.TotalTurns(plan) {
		t.Fatalf("%d of %d turns completed", len(fast.Requests), workload.TotalTurns(plan))
	}
	// No replica may serve a request after its recorded stop instant.
	stopAt := map[int]units.Seconds{}
	for _, ev := range fast.ScaleEvents {
		if ev.Action == ScaleStop {
			stopAt[ev.Replica] = ev.At
		}
	}
	for id, at := range stopAt {
		if got := fast.Replicas[id].TotalTime(); got > at+units.Seconds(1e-9) {
			t.Errorf("replica %d accrued %v of powered time but stopped at %v", id, got, at)
		}
	}
	ref := run(serving.FastPathOff)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("autoscaled closed-loop fleet diverged:\n fast: %+v\n  ref: %+v", fast, ref)
	}
}

// Static fleets must be unaffected by the elastic machinery: no scale
// events, peak = provisioned count, replica-seconds = replicas × makespan.
func TestStaticFleetElasticAccounting(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(30, 40, 3)
	opt := serving.DefaultOptions(1)
	cl, err := NewByName("PAPI", model.OPT30B(), Options{
		Replicas: 2, MaxBatch: 6, Router: LeastOutstanding(), Serving: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.ScaleEvents != nil {
		t.Fatalf("static fleet recorded scale events: %+v", f.ScaleEvents)
	}
	if f.PeakReplicas != 2 {
		t.Fatalf("static peak replicas = %d, want 2", f.PeakReplicas)
	}
	if want := 2 * f.Makespan; f.ReplicaSeconds != want {
		t.Fatalf("static replica-seconds = %v, want %v", f.ReplicaSeconds, want)
	}
}
