// Package cluster simulates fleet-level LLM serving: N independent replicas
// — each a complete PAPI or baseline system running mixed continuous
// batching — consume one arrival-driven request stream behind a pluggable
// router. This is the layer the paper's single-engine view (§5) stops short
// of: serving heavy traffic is a coordination problem across replicated
// memory-compute units, so throughput, tail latency, and SLO attainment
// depend on how arrivals are spread as much as on each replica's scheduler.
//
// Replicas advance iteration-by-iteration through serving.Stepper and are
// interleaved deterministically on the internal/sim event kernel: arrivals
// and replica steps are events on one shared timeline, with FIFO ordering
// among simultaneous events, so a fixed seed reproduces the same fleet
// trace run-to-run.
package cluster

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/sim"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Options configures a cluster run.
type Options struct {
	// Replicas is the number of identical serving engines (≥ 1).
	Replicas int
	// MaxBatch is each replica's continuous-batching admission cap.
	MaxBatch int
	// Router spreads arrivals over the replicas; nil selects RoundRobin.
	Router Router
	// Serving configures every replica's engine. Each replica derives its
	// acceptance-sampling seed from Serving.Seed plus its ID, so replicas do
	// not replay identical speculation outcomes while the fleet as a whole
	// stays deterministic.
	Serving serving.Options
}

func (o Options) validate() error {
	if o.Replicas < 1 {
		return fmt.Errorf("cluster: replica count %d must be ≥ 1", o.Replicas)
	}
	if o.MaxBatch <= 0 {
		return fmt.Errorf("cluster: max batch %d must be positive", o.MaxBatch)
	}
	return nil
}

// Replica is one serving engine's slot in the fleet, exposing the load
// signals routers balance on.
type Replica struct {
	ID int

	engine  *serving.Engine
	stepper *serving.Stepper

	// scheduled says a step event for this replica is already in the event
	// queue, so arrivals must not double-schedule it.
	scheduled bool
	// routed counts requests this replica received.
	routed int
}

// Outstanding counts the replica's admitted-but-unfinished plus queued
// requests.
func (r *Replica) Outstanding() int { return r.stepper.Outstanding() }

// KVHeadroom returns the free worst-case KV capacity of the replica's
// attention pool, given everything outstanding.
func (r *Replica) KVHeadroom() units.Bytes {
	room := r.engine.Sys.KVCapacity() - r.stepper.KVDemand()
	if room < 0 {
		room = 0
	}
	return room
}

// Now reports the replica's engine-local clock.
func (r *Replica) Now() units.Seconds { return r.stepper.Now() }

// Routed counts the requests the router sent here.
func (r *Replica) Routed() int { return r.routed }

// Cluster is a single-use fleet simulation: build, Run once, read the
// FleetResult. (Routers and replicas carry per-run state, so reuse would
// silently leak one run's state into the next.)
type Cluster struct {
	sysName string
	newSys  func() *core.System
	cfg     model.Config
	opt     Options
	ran     bool
}

// New validates and builds a cluster of identical replicas. newSys is
// called once per replica so each engine owns its system instance.
func New(newSys func() *core.System, cfg model.Config, opt Options) (*Cluster, error) {
	if newSys == nil {
		return nil, fmt.Errorf("cluster: nil system factory")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Router == nil {
		opt.Router = RoundRobin()
	}
	probe := newSys()
	if probe == nil {
		return nil, fmt.Errorf("cluster: system factory returned nil")
	}
	// Validate the replica blueprint once, up front, with a throwaway engine.
	if _, err := serving.New(probe, cfg, opt.Serving); err != nil {
		return nil, err
	}
	return &Cluster{sysName: probe.Name, newSys: newSys, cfg: cfg, opt: opt}, nil
}

// NewByName builds a cluster of the named system design.
func NewByName(design string, cfg model.Config, opt Options) (*Cluster, error) {
	if _, err := core.ByName(design); err != nil {
		return nil, err
	}
	return New(func() *core.System { sys, _ := core.ByName(design); return sys }, cfg, opt)
}

// Run consumes the request stream to completion and returns fleet metrics.
// It may be called once per Cluster.
func (c *Cluster) Run(reqs []workload.Request) (*FleetResult, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: Run may only be called once per cluster")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("cluster: empty request stream")
	}
	c.ran = true

	reps := make([]*Replica, c.opt.Replicas)
	for i := range reps {
		opt := c.opt.Serving
		opt.Seed += int64(i)
		eng, err := serving.New(c.newSys(), c.cfg, opt)
		if err != nil {
			return nil, err
		}
		st, err := eng.NewStreamStepper(nil, c.opt.MaxBatch)
		if err != nil {
			return nil, err
		}
		reps[i] = &Replica{ID: i, engine: eng, stepper: st}
	}

	kernel := sim.New()
	var runErr error

	// A replica's step event fires at its next work instant: it absorbs any
	// idle gap, advances one iteration, and reschedules itself while work
	// remains. Pushes re-arm idle replicas.
	var schedule func(rep *Replica, at units.Seconds)
	schedule = func(rep *Replica, at units.Seconds) {
		rep.scheduled = true
		kernel.At(at, func(now units.Seconds) {
			rep.scheduled = false
			if runErr != nil {
				return
			}
			rep.stepper.AdvanceTo(now)
			info, err := rep.stepper.Step()
			if err != nil {
				runErr = err
				return
			}
			if info.Kind == serving.StepDrained {
				return
			}
			schedule(rep, rep.stepper.Now())
		})
	}

	// Arrivals are scheduled up front in stream order, so simultaneous
	// arrivals route in a deterministic order and always precede step
	// events at the same instant.
	stream := append([]workload.Request(nil), reqs...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })
	for i := range stream {
		req := stream[i]
		// A negative arrival means "already waiting at start", as in the
		// single-engine path; the kernel cannot schedule before time zero.
		at := req.Arrival
		if at < 0 {
			at = 0
		}
		kernel.At(at, func(now units.Seconds) {
			if runErr != nil {
				return
			}
			idx := c.opt.Router.Route(req, reps)
			if idx < 0 || idx >= len(reps) {
				runErr = fmt.Errorf("cluster: router %s chose invalid replica %d of %d",
					c.opt.Router.Name(), idx, len(reps))
				return
			}
			rep := reps[idx]
			if err := rep.stepper.Push(req); err != nil {
				runErr = err
				return
			}
			rep.routed++
			if !rep.scheduled {
				at := now
				// An idle replica's clock may lead the fleet clock (it
				// committed its last iteration past this arrival); it can
				// only take new work at its own boundary.
				if t := rep.Now(); t > at {
					at = t
				}
				schedule(rep, at)
			}
		})
	}

	kernel.Run()
	if runErr != nil {
		return nil, runErr
	}
	return aggregate(c.sysName, c.cfg.Name, c.opt.Router.Name(), reps, len(reqs))
}
