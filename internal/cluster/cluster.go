// Package cluster simulates fleet-level LLM serving: N independent replicas
// — each a complete PAPI or baseline system running mixed continuous
// batching — consume one arrival-driven request stream behind a pluggable
// router. This is the layer the paper's single-engine view (§5) stops short
// of: serving heavy traffic is a coordination problem across replicated
// memory-compute units, so throughput, tail latency, and SLO attainment
// depend on how arrivals are spread as much as on each replica's scheduler.
//
// Replicas advance iteration-by-iteration through serving.Stepper and are
// interleaved deterministically on the internal/sim event kernel: arrivals
// and replica steps are events on one shared timeline, with FIFO ordering
// among simultaneous events, so a fixed seed reproduces the same fleet
// trace run-to-run.
//
// Two entry points drive a fleet: Run consumes an open-loop request stream
// (pre-generated arrivals — Poisson, bursty, diurnal, or a replayed
// workload.Trace), while RunPlan consumes a closed-loop multi-turn
// conversation plan in which each follow-up arrives think-time after the
// previous answer completes and carries the grown context back to the same
// replica. Both produce a FleetResult whose Stream field records the
// realised arrivals for byte-stable trace export.
//
// Fleets need not be homogeneous: NewFromSpecs takes a list of declarative
// design specs and provisions replicas toward the list's design ratio (a
// repeated entry weights its design), so a PAPI+baseline mixed fleet is one
// argument away and elastic fleets keep the mix as they grow. Each distinct
// design keeps its own kernel-pricing cost table (pricing is
// hardware-specific), and FleetResult splits the fleet metrics per design
// in PerDesign.
package cluster

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/design"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/sim"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Options configures a cluster run.
type Options struct {
	// Replicas is the number of identical serving engines (≥ 1). With
	// autoscaling enabled this is the initial fleet size, within
	// [Autoscale.Min, Autoscale.Max].
	Replicas int
	// MaxBatch is each replica's continuous-batching admission cap.
	MaxBatch int
	// Router spreads arrivals over the replicas; nil selects RoundRobin.
	Router Router
	// Serving configures every replica's engine. Each replica derives its
	// acceptance-sampling seed from Serving.Seed plus its ID, so replicas do
	// not replay identical speculation outcomes while the fleet as a whole
	// stays deterministic.
	Serving serving.Options
	// Autoscale, when non-nil, runs the elastic control loop: the fleet
	// grows and shrinks between Autoscale.Min and Autoscale.Max replicas in
	// response to windowed load signals (see AutoscaleOptions). Nil keeps
	// the fleet statically provisioned at Replicas.
	Autoscale *AutoscaleOptions

	// Faults, when non-nil and non-empty, schedules the plan's failure
	// events on the run's event kernel (see internal/faults): replica
	// crashes trigger failover of the lost requests to survivors, straggler
	// and brownout windows stretch the priced kernel latencies. A nil or
	// empty plan leaves every result bit-identical to a fault-free run.
	Faults *faults.Plan
	// Retries bounds failover: a request lost to a crash or timeout is
	// re-routed to a survivor (its grown context re-prefilled) at most
	// Retries times before it terminally fails. Zero retries means the
	// first loss is final.
	Retries int
	// RetryBackoff delays each retry by RetryBackoff × 2^(attempt-1) —
	// deterministic exponential backoff. Zero re-routes at the loss instant.
	RetryBackoff units.Seconds
	// Timeout, when positive, bounds every request attempt: an attempt
	// still outstanding Timeout after its injection is cancelled on its
	// replica and retried under the same bounded-retry policy.
	Timeout units.Seconds

	// RetainRequests keeps every per-request metrics record for
	// FleetResult.Requests. Off by default: at million-request scale the
	// record slice is the run's memory bound, and the streaming
	// FleetResult.Agg already carries the latency distributions — each
	// completion's record is harvested into it once and then dropped, so a
	// run's per-request state is O(outstanding), not O(total).
	RetainRequests bool
	// RetainStream keeps the realised arrival stream for
	// FleetResult.Stream — needed only when the run will be exported as a
	// replayable trace. Off by default for the same memory reason.
	RetainStream bool

	// Shards > 1 lets independent replicas advance in parallel between
	// fleet-level synchronization points (arrival routing, autoscaler
	// ticks, fault edges, timeout deadlines, retry re-injections), on up to
	// Shards goroutines. Results are bit-identical to the serial schedule —
	// replica steps never interact between barriers, and everything
	// cross-replica still fires in kernel order — which the equivalence
	// tests pin on both decode paths, with and without a fault plan armed.
	// Open-loop Run (and RunSeq) only: closed-loop plans couple replicas
	// through follow-ups, so RunPlan rejects Shards > 1. 0 or 1 is serial.
	Shards int
}

func (o Options) validate() error {
	if o.Replicas < 1 {
		return fmt.Errorf("cluster: replica count %d must be ≥ 1", o.Replicas)
	}
	if o.MaxBatch <= 0 {
		return fmt.Errorf("cluster: max batch %d must be positive", o.MaxBatch)
	}
	if o.Autoscale != nil {
		if err := o.Autoscale.validate(); err != nil {
			return err
		}
		if o.Replicas < o.Autoscale.Min || o.Replicas > o.Autoscale.Max {
			return fmt.Errorf("cluster: initial replica count %d outside autoscale bounds [%d, %d]",
				o.Replicas, o.Autoscale.Min, o.Autoscale.Max)
		}
	}
	if o.Retries < 0 {
		return fmt.Errorf("cluster: retry bound %d must be ≥ 0", o.Retries)
	}
	if o.RetryBackoff < 0 {
		return fmt.Errorf("cluster: retry backoff %v must be ≥ 0", o.RetryBackoff)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("cluster: request timeout %v must be ≥ 0", o.Timeout)
	}
	if o.Shards < 0 {
		return fmt.Errorf("cluster: shard count %d must be ≥ 0", o.Shards)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// resilienceActive reports whether the run needs the failure machinery at
// all. When false the run takes exactly the pre-fault code paths, keeping
// every fault-free result bit-identical.
func (o Options) resilienceActive() bool {
	return (o.Faults != nil && !o.Faults.Empty()) || o.Timeout > 0
}

// replicaState is a replica's position in the elastic lifecycle. Statically
// provisioned fleets keep every replica active for the whole run.
type replicaState int

const (
	// repActive replicas take new traffic.
	repActive replicaState = iota
	// repWarming replicas are booting (provisioned but not yet serving);
	// they draw power from bootAt and join the eligible set at liveAt.
	repWarming
	// repDraining replicas finish their in-flight requests but accept no new
	// ones; they stop (and stop accruing energy) once empty.
	repDraining
	// repStopped replicas are powered off.
	repStopped
	// repFailed replicas crashed mid-run (see Options.Faults): their
	// in-flight work was surrendered to failover and they never return. The
	// autoscaler treats the slot as free headroom and may boot a replacement.
	repFailed
)

// String names the state as scale events and debug output spell it.
func (s replicaState) String() string {
	switch s {
	case repActive:
		return "active"
	case repWarming:
		return "warming"
	case repDraining:
		return "draining"
	case repStopped:
		return "stopped"
	case repFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Replica is one serving engine's slot in the fleet, exposing the load
// signals routers balance on.
type Replica struct {
	ID int

	// design is the display name of the hardware design this replica runs
	// (replicas of a mixed fleet differ).
	design string

	engine  *serving.Engine
	stepper *serving.Stepper

	// scheduled says a step event for this replica is already armed (in the
	// event queue, or — sharded — recorded in nextStep), so arrivals must
	// not double-schedule it.
	scheduled bool
	// stepEvent is this replica's kernel step callback, built once on first
	// schedule and re-armed for every subsequent step: a million-step run
	// re-posts one closure instead of allocating one per step.
	stepEvent sim.Event
	// nextStep is the armed step instant when the run is sharded: sharded
	// replicas keep their step cadence out of the kernel and are driven in
	// parallel up to each barrier instead.
	nextStep units.Seconds
	// routed counts requests this replica received.
	routed int
	// agg streams this replica's completion latencies (fed by
	// fleetRun.harvest); fleet and per-design aggregates merge these in
	// replica order.
	agg *FleetAggregate
	// winTPOT buffers the autoscaler window's interactive TPOT samples.
	// Kept per replica so the sharded parallel phase appends race-free; the
	// control tick merges the buffers in replica order.
	winTPOT []float64
	// err holds a step failure until the driver folds it into the run error
	// (sharded replicas cannot write shared state mid-phase).
	err error
	// pendingStop defers a draining replica's power-off decision made
	// inside a sharded parallel phase; the next barrier replays it through
	// the scaler (pendStopAt is the drained instant).
	pendingStop bool
	pendStopAt  units.Seconds
	// finishedIDs buffers the phase's completions for the failure ledger
	// when the run is sharded: marking a request done is a cross-replica
	// write (the ledger is shared), so it is deferred to the barrier, which
	// flushes the buffers in replica order. Distinct requests' ledger
	// entries are independent and a request is outstanding on at most one
	// replica, so flush order between replicas cannot change any entry.
	finishedIDs []int

	// Elastic lifecycle (see replicaState). bootAt is the instant the
	// replica powered on (0 for the initial fleet), liveAt when it started
	// taking traffic (bootAt plus warm-up), stopAt when a drained replica
	// powered off.
	state  replicaState
	bootAt units.Seconds
	liveAt units.Seconds
	stopAt units.Seconds
	// holds counts live closed-loop conversations pinned to this replica
	// (their grown KV context lives here, and follow-ups must come back).
	// The autoscaler never drains a replica while it holds one.
	holds int
}

// Outstanding counts the replica's admitted-but-unfinished plus queued
// requests.
func (r *Replica) Outstanding() int { return r.stepper.Outstanding() }

// KVHeadroom returns the free worst-case KV capacity of the replica's
// attention pool, given everything outstanding.
func (r *Replica) KVHeadroom() units.Bytes {
	room := r.engine.Sys.KVCapacity() - r.stepper.KVDemand()
	if room < 0 {
		room = 0
	}
	return room
}

// Now reports the replica's engine-local clock.
func (r *Replica) Now() units.Seconds { return r.stepper.Now() }

// Design names the hardware design this replica runs.
func (r *Replica) Design() string { return r.design }

// Routed counts the requests the router sent here.
func (r *Replica) Routed() int { return r.routed }

// blueprint is one replica design the fleet cycles through: the design's
// display name, a fresh-system factory (each replica owns its instance),
// and the kernel-pricing table its replicas share. Pricing is
// hardware-specific, so a mixed fleet keeps one table per design rather
// than one per fleet.
type blueprint struct {
	name   string
	newSys func() (*core.System, error)
	costs  *serving.CostTable
}

// Cluster is a single-use fleet simulation: build, Run once, read the
// FleetResult. (Routers and replicas carry per-run state, so reuse would
// silently leak one run's state into the next.)
type Cluster struct {
	sysName    string
	blueprints []blueprint
	cfg        model.Config
	opt        Options
	ran        bool
}

// New validates and builds a cluster of identical replicas. newSys is
// called once per replica so each engine owns its system instance.
func New(newSys func() *core.System, cfg model.Config, opt Options) (*Cluster, error) {
	if newSys == nil {
		return nil, fmt.Errorf("cluster: nil system factory")
	}
	return newCluster([]func() (*core.System, error){func() (*core.System, error) {
		sys := newSys()
		if sys == nil {
			return nil, fmt.Errorf("cluster: system factory returned nil")
		}
		return sys, nil
	}}, cfg, opt)
}

// NewFromSpecs validates and builds a fleet from declarative design specs:
// one spec provisions a homogeneous fleet, several a mixed one whose
// replicas target the list's design ratio (a repeated entry weights its
// design — see nextBlueprint; elastic fleets restore the ratio as they
// grow after drains). Each distinct design keeps its own kernel-pricing
// table, so Serving.Costs must be nil when more than one spec is given.
// The *initial* fleet must provision every listed spec (Replicas ≥
// len(specs)); otherwise a design could silently never run while still
// appearing zero-filled in the per-design metrics.
func NewFromSpecs(specs []design.Spec, cfg model.Config, opt Options) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no design specs")
	}
	if opt.Replicas < len(specs) {
		return nil, fmt.Errorf("cluster: %d design specs cannot all be provisioned on %d initial replicas",
			len(specs), opt.Replicas)
	}
	// Snapshot each spec through its byte-stable encoding: Spec's pointer
	// fields alias the caller's values, and replicas are built lazily (at
	// Run and at autoscale scale-ups), so without a snapshot the caller
	// could mutate a design after construction, bypassing the up-front
	// validation and the same-name conflict guard.
	factories := make([]func() (*core.System, error), len(specs))
	for i, spec := range specs {
		data, err := spec.Export()
		if err != nil {
			return nil, err
		}
		snap, err := design.ImportSpec(data)
		if err != nil {
			return nil, err
		}
		factories[i] = snap.Build
	}
	return newCluster(factories, cfg, opt)
}

// NewByName builds a cluster of the named system design.
func NewByName(name string, cfg model.Config, opt Options) (*Cluster, error) {
	spec, err := design.ByName(name)
	if err != nil {
		return nil, err
	}
	return NewFromSpecs([]design.Spec{spec}, cfg, opt)
}

// newCluster probes every blueprint factory once (building a throwaway
// engine validates each distinct design/model/options combination up
// front) and assigns one cost table per distinct design: replicas of the
// same design share their table even when the design appears several times
// in the blueprint list (a "PAPI,PAPI,A100+AttAcc" ratio list keeps one
// PAPI table). The per-design metrics split keys on the display name, so
// two *different* designs sharing a name are rejected here rather than
// silently merged.
func newCluster(factories []func() (*core.System, error), cfg model.Config, opt Options) (*Cluster, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Router == nil {
		opt.Router = RoundRobin()
	}
	probes := make([]*core.System, len(factories))
	firstByName := map[string]*core.System{}
	var names []string
	for i, factory := range factories {
		probe, err := factory()
		if err != nil {
			return nil, err
		}
		if probe == nil {
			return nil, fmt.Errorf("cluster: system factory returned nil")
		}
		if prior, ok := firstByName[probe.Name]; ok {
			if !reflect.DeepEqual(probe, prior) {
				return nil, fmt.Errorf("cluster: two different designs share the name %q; rename one so the per-design split stays meaningful", probe.Name)
			}
		} else {
			firstByName[probe.Name] = probe
			names = append(names, probe.Name)
		}
		probes[i] = probe
	}
	if opt.Serving.Costs != nil && len(names) > 1 {
		return nil, fmt.Errorf("cluster: a caller-shared cost table cannot price a mixed-design fleet; leave Serving.Costs nil")
	}
	tables := map[string]*serving.CostTable{}
	for _, name := range names {
		costs := opt.Serving.Costs
		if costs == nil {
			costs = serving.NewCostTable()
		}
		bopt := opt.Serving
		bopt.Costs = costs
		if _, err := serving.New(firstByName[name], cfg, bopt); err != nil {
			return nil, err
		}
		tables[name] = costs
	}
	c := &Cluster{cfg: cfg, opt: opt, sysName: strings.Join(names, " + ")}
	for i, factory := range factories {
		c.blueprints = append(c.blueprints, blueprint{
			name: probes[i].Name, newSys: factory, costs: tables[probes[i].Name]})
	}
	return c, nil
}

// mixed reports whether the fleet cycles through more than one distinct
// design.
func (c *Cluster) mixed() bool {
	for _, bp := range c.blueprints[1:] {
		if bp.name != c.blueprints[0].name {
			return true
		}
	}
	return false
}

// fleetRun is the live state of one cluster simulation: the replicas, the
// shared event kernel, the realised arrival stream (for trace export), and
// the optional completion hook closed-loop scenarios couple follow-ups to.
type fleetRun struct {
	c      *Cluster
	reps   []*Replica
	kernel *sim.Engine
	err    error
	// eligible caches the replicas currently taking traffic (state active);
	// rebuilt on the rare lifecycle transitions rather than per arrival.
	eligible []*Replica
	// scaler is the elastic control loop; nil for static fleets.
	scaler *scaler
	// nextTick is the next autoscaler control instant (+Inf when none) —
	// part of the open-loop macro-stepping horizon, since a control tick
	// reads every replica's signals.
	nextTick units.Seconds
	// stream records every request actually injected, in injection order —
	// the realised arrivals a Trace replays.
	stream []workload.Request
	// onFinish, when set, fires once per completed request on the replica
	// that served it, at the replica's completion instant.
	onFinish func(rep *Replica, req workload.Request)
	// resil is the failure machinery (crash failover, timeouts, bounded
	// retries, degradation windows); nil unless Options arm it, so
	// fault-free runs take exactly the pre-fault code paths.
	resil *resilience
	// onCrash and onRequeue let RunPlan keep its conversation pins honest
	// under failover: onCrash un-pins every conversation homed on the dead
	// replica, onRequeue re-pins a conversation to the survivor its retried
	// turn landed on.
	onCrash   func(rep *Replica, now units.Seconds)
	onRequeue func(id int, rep *Replica)
	// horizon returns the earliest future instant at which an event outside
	// a replica's own stepping can interact with it — the bound a replica's
	// fast-path macro-stepping must not cross (see Stepper.SetHorizon). The
	// default bounds by the kernel's next pending event, which is always
	// safe: new events are only scheduled at or after it. Run tightens this
	// to the next unfired arrival (and, when autoscaling, the next control
	// tick), since open-loop step events never touch other replicas.
	horizon func() units.Seconds
	// sharded moves replica step events off the kernel: between kernel
	// events (the fleet-level synchronization barriers) every armed replica
	// is driven in parallel on up to shards goroutines, with identical
	// results to the serial schedule (see Options.Shards).
	sharded bool
	shards  int
	// due is the barrier driver's scratch list of armed replicas, reused
	// across barriers so the hot loop does not allocate.
	due []*Replica
	// pool is the driver's persistent worker pool, started lazily on the
	// first multi-replica phase and retired when the drain finishes. barrier
	// carries the phase's synchronization instant to the workers; it is
	// written before the phase's job sends, which happen-before the reads.
	pool    *shardPool
	barrier units.Seconds
}

// newFleetRun builds the replica engines and the event kernel. Replicas of
// the same design share one kernel-pricing cost table (each (placement,
// parallelism) kernel is priced once for the whole fleet); a mixed fleet
// prices per design.
func (c *Cluster) newFleetRun() (*fleetRun, error) {
	r := &fleetRun{c: c, kernel: sim.New(),
		nextTick: units.Seconds(math.Inf(1))}
	for i := 0; i < c.opt.Replicas; i++ {
		if _, err := r.addReplica(0, 0, repActive); err != nil {
			return nil, err
		}
	}
	r.rebuildEligible()
	r.horizon = func() units.Seconds {
		if t, ok := r.kernel.NextAt(); ok {
			return t
		}
		return units.Seconds(math.Inf(1))
	}
	if c.opt.resilienceActive() {
		r.resil = newResilience(r)
		r.resil.schedulePlan()
	}
	if c.opt.Autoscale != nil {
		opt := c.opt.Autoscale.withDefaults(c.opt.MaxBatch)
		r.scaler = &scaler{opt: opt, run: r, peak: c.opt.Replicas,
			lastAction: units.Seconds(math.Inf(-1))}
		r.nextTick = opt.Interval
		r.kernel.At(r.nextTick, r.scaler.tick)
	}
	return r, nil
}

// shard arms the parallel barrier driver when the run qualifies: Shards > 1
// on an open-loop run. The failure machinery shards too: fault edges,
// timeout deadlines, and retry re-injections are ordinary kernel events, so
// they are fleet-level barriers like arrivals — every resilience mutation
// (crash, cancel, re-route, perturbation change) runs in exact kernel order
// between parallel phases, and the one ledger write a step itself performs
// (marking a completion done) is buffered replica-locally and flushed at
// the barrier (see Replica.finishedIDs). Callers must shard before the
// first arrival is scheduled.
func (r *fleetRun) shard() {
	if r.c.opt.Shards > 1 {
		r.sharded = true
		r.shards = r.c.opt.Shards
	}
}

// nextBlueprint picks the design to provision next: the design most
// under-represented among the replicas that will take traffic (active and
// warming), relative to the blueprint list's target ratio (largest
// deficit; ties resolve in blueprint order, so the selection is
// deterministic). Building a fleet from empty reproduces an interleaved
// list order; for an elastic fleet this restores the design mix that
// load-based drains erode — the autoscaler's victim choice ignores
// designs, so without it repeated drain/grow cycles could eliminate one
// design from the active fleet entirely.
func (r *fleetRun) nextBlueprint() blueprint {
	bps := r.c.blueprints
	if len(bps) == 1 {
		return bps[0]
	}
	target := make(map[string]int, len(bps))
	for _, bp := range bps {
		target[bp.name]++
	}
	have := map[string]int{}
	inService := 0
	for _, rep := range r.reps {
		if rep.state == repActive || rep.state == repWarming {
			have[rep.design]++
			inService++
		}
	}
	best, bestDeficit := bps[0], math.Inf(-1)
	seen := map[string]bool{}
	for _, bp := range bps {
		if seen[bp.name] {
			continue
		}
		seen[bp.name] = true
		share := float64(target[bp.name]) / float64(len(bps))
		if deficit := share*float64(inService+1) - float64(have[bp.name]); deficit > bestDeficit {
			best, bestDeficit = bp, deficit
		}
	}
	return best
}

// addReplica builds one more replica engine on its blueprint's cost table
// (blueprint choice: see nextBlueprint). A warming replica powers on at
// bootAt (its clock starts there, so busy/idle accounting — and host
// energy — covers only its powered-on span) and takes traffic from liveAt;
// the caller schedules the activation event.
func (r *fleetRun) addReplica(bootAt, liveAt units.Seconds, state replicaState) (*Replica, error) {
	bp := r.nextBlueprint()
	opt := r.c.opt.Serving
	opt.Seed += int64(len(r.reps))
	opt.Costs = bp.costs
	// Without fleet-level retention each completion's metrics are read
	// exactly once, at harvest, so the engine drops its per-request records
	// as they finish — the constant-memory path. (The failure machinery
	// only ever touches records of outstanding requests, so it is
	// indifferent; keying on RetainRequests alone also keeps an armed
	// no-op fault plan bit-identical to a fault-free run.)
	opt.DiscardCompleted = !r.c.opt.RetainRequests
	sys, err := bp.newSys()
	if err != nil {
		return nil, err
	}
	eng, err := serving.New(sys, r.c.cfg, opt)
	if err != nil {
		return nil, err
	}
	st, err := eng.NewStreamStepper(nil, r.c.opt.MaxBatch)
	if err != nil {
		return nil, err
	}
	if bootAt > 0 {
		if err := st.StartAt(bootAt); err != nil {
			return nil, err
		}
	}
	rep := &Replica{ID: len(r.reps), design: bp.name, engine: eng, stepper: st,
		state: state, bootAt: bootAt, liveAt: liveAt, agg: newFleetAggregate()}
	r.reps = append(r.reps, rep)
	if r.resil != nil {
		// A replica born inside a degradation window serves at the
		// window's reduced bandwidth from its first iteration.
		r.resil.applyPerturb(rep)
	}
	return rep, nil
}

// rebuildEligible refreshes the routable-replica cache after a lifecycle
// transition.
func (r *fleetRun) rebuildEligible() {
	r.eligible = r.eligible[:0]
	for _, rep := range r.reps {
		if rep.state == repActive {
			r.eligible = append(r.eligible, rep)
		}
	}
}

// schedule arms a replica's step event at its next work instant. Serial
// runs put the step on the shared kernel; sharded runs record it on the
// replica, whose steps the barrier driver advances in parallel. Pushes
// re-arm idle replicas.
func (r *fleetRun) schedule(rep *Replica, at units.Seconds) {
	rep.scheduled = true
	if r.sharded {
		rep.nextStep = at
		return
	}
	if rep.stepEvent == nil {
		rep.stepEvent = func(now units.Seconds) {
			rep.scheduled = false
			if r.err != nil {
				return
			}
			r.stepReplica(rep, now)
			if rep.err != nil && r.err == nil {
				r.err = rep.err
			}
		}
	}
	r.kernel.At(at, rep.stepEvent)
}

// stepReplica advances one replica iteration at `now`: it absorbs any idle
// gap, steps the engine, feeds the observers and the streaming aggregate,
// and re-arms the next step while work remains. It writes only
// replica-local state (rep.err, not r.err), so the sharded driver may run
// it for distinct replicas concurrently; the serial path folds rep.err
// into the run error at its kernel event.
func (r *fleetRun) stepReplica(rep *Replica, now units.Seconds) {
	// A step armed before a crash must not touch the dead engine: its
	// clock is frozen at the failure instant.
	if rep.state == repFailed {
		return
	}
	rep.stepper.AdvanceTo(now)
	rep.stepper.SetHorizon(r.horizon())
	info, err := rep.stepper.Step()
	if err != nil {
		rep.err = err
		return
	}
	if r.scaler != nil {
		r.scaler.observeStep(rep, info)
	}
	if r.resil != nil {
		if r.sharded {
			// The ledger is shared fleet state; a parallel-phase step only
			// buffers, and the barrier flushes (see advanceShards).
			for _, req := range info.Finished {
				rep.finishedIDs = append(rep.finishedIDs, req.ID)
			}
		} else {
			for _, req := range info.Finished {
				r.resil.finished(req.ID)
			}
		}
	}
	if r.onFinish != nil {
		for _, req := range info.Finished {
			r.onFinish(rep, req)
		}
	}
	r.harvest(rep, info)
	if info.Kind == serving.StepDrained {
		return
	}
	r.schedule(rep, rep.stepper.Now())
}

// harvest folds the step's completions into the replica's streaming
// aggregate — the always-on constant-memory metrics path. It runs after the
// observers, whose window signals peek at the same records: without
// retention the engine forgets a record once taken.
func (r *fleetRun) harvest(rep *Replica, info serving.StepInfo) {
	for _, req := range info.Finished {
		if rm, ok := rep.stepper.TakeMetrics(req.ID); ok {
			rep.agg.observe(rm)
		}
	}
}

// push delivers a request to a replica and re-arms its step event, without
// recording a stream arrival — the failover path's re-injection, where the
// request's original arrival is already on record.
func (r *fleetRun) push(rep *Replica, req workload.Request, now units.Seconds) bool {
	if err := rep.stepper.Push(req); err != nil {
		r.err = err
		return false
	}
	rep.routed++
	if r.scaler != nil {
		r.scaler.arrivals++
	}
	if r.resil != nil {
		r.resil.noteInject(rep, req, now)
	}
	if !rep.scheduled {
		at := now
		// An idle replica's clock may lead the fleet clock (it committed
		// its last iteration past this arrival); it can only take new work
		// at its own boundary.
		if t := rep.Now(); t > at {
			at = t
		}
		r.schedule(rep, at)
	}
	return true
}

// inject pushes a request into a replica, recording the realised arrival
// when the run retains its stream (Options.RetainStream) — recording every
// arrival of a million-request run would defeat the constant-memory path.
func (r *fleetRun) inject(rep *Replica, req workload.Request, now units.Seconds) {
	if r.push(rep, req, now) && r.c.opt.RetainStream {
		r.stream = append(r.stream, req)
	}
}

// route picks a replica for an arriving request via the cluster's router and
// injects it. The router only sees the eligible (active) replicas: warming
// replicas are still booting and draining replicas accept no new work.
// During a brownout window, batch-class open-loop arrivals are parked until
// the window lifts (graceful degradation: interactive traffic keeps the
// thinned bandwidth).
func (r *fleetRun) route(req workload.Request, now units.Seconds) *Replica {
	if r.resil != nil && r.resil.shedArrival(req) {
		return nil
	}
	if len(r.eligible) == 0 && r.resil != nil {
		// Every replica is down (faults can empty a static fleet): the
		// arrival strands like a failover casualty instead of panicking the
		// router — parked for a replacement boot, or terminally failed.
		r.resil.strand(req, now)
		return nil
	}
	idx := r.c.opt.Router.Route(req, r.eligible)
	if idx < 0 || idx >= len(r.eligible) {
		r.err = fmt.Errorf("cluster: router %s chose invalid replica %d of %d",
			r.c.opt.Router.Name(), idx, len(r.eligible))
		return nil
	}
	rep := r.eligible[idx]
	r.inject(rep, req, now)
	return rep
}

// finish drains the run and aggregates fleet metrics over want requests.
func (r *fleetRun) finish(want int) (*FleetResult, error) {
	r.drain()
	if r.err != nil {
		return nil, r.err
	}
	return aggregate(r, want)
}

// drain runs the simulation to completion. Serial runs simply drain the
// kernel — replica steps are kernel events. Sharded runs alternate: every
// kernel event (arrival, control tick, replica activation, fault edge,
// timeout deadline, retry re-injection) is a barrier,
// and between barriers the armed replicas advance in parallel, each
// strictly below the barrier instant, so everything cross-replica still
// fires in exact kernel order and the result is bit-identical to the
// serial schedule.
func (r *fleetRun) drain() {
	if !r.sharded {
		r.kernel.Run()
		return
	}
	defer func() {
		if r.pool != nil {
			r.pool.close()
			r.pool = nil
		}
	}()
	for r.err == nil {
		if t, ok := r.kernel.NextAt(); ok {
			r.advanceShards(t)
			if r.err != nil {
				return
			}
			r.kernel.Step()
			continue
		}
		if !r.stepsPending() {
			return
		}
		// No kernel events left: the surviving step cadences run dry
		// unbounded.
		r.advanceShards(units.Seconds(math.Inf(1)))
	}
}

// advanceShards drives every armed replica up to (strictly below) the
// barrier, in parallel, then replays the phase's deferred power-off
// decisions in deterministic order. Replica errors fold into the run error
// in replica order.
func (r *fleetRun) advanceShards(barrier units.Seconds) {
	r.due = r.due[:0]
	for _, rep := range r.reps {
		if rep.scheduled && rep.nextStep < barrier {
			r.due = append(r.due, rep)
		}
	}
	if len(r.due) > 0 {
		r.barrier = barrier
		if len(r.due) == 1 {
			// One replica due: the pool's signaling costs more than it buys.
			r.driveReplica(r.due[0], barrier)
		} else {
			if r.pool == nil {
				r.pool = newShardPool(r.shards, func(rep *Replica) { r.driveReplica(rep, r.barrier) })
			}
			r.pool.dispatch(r.due)
		}
		for _, rep := range r.due {
			if rep.err != nil && r.err == nil {
				r.err = rep.err
			}
			if len(rep.finishedIDs) > 0 {
				// Ledger completions deferred from the parallel phase land
				// before the barrier's kernel event, exactly where the
				// serial schedule (steps strictly below the event) puts
				// them; a stale timeout at the barrier then sees the
				// request done, as it would serially.
				for _, id := range rep.finishedIDs {
					r.resil.finished(id)
				}
				rep.finishedIDs = rep.finishedIDs[:0]
			}
		}
	}
	if r.scaler != nil {
		r.scaler.flushStops()
	}
}

// driveReplica advances one replica's armed steps, in order, strictly below
// the barrier: events at the barrier instant belong to the kernel and fire
// first, exactly as the serial schedule orders simultaneous arrivals before
// steps. The replica parks drained, errored, or re-armed at/after the
// barrier. Only replica-local state is written (see stepReplica), so
// distinct replicas drive concurrently.
func (r *fleetRun) driveReplica(rep *Replica, barrier units.Seconds) {
	for rep.err == nil && rep.scheduled && rep.nextStep < barrier {
		now := rep.nextStep
		rep.scheduled = false
		r.stepReplica(rep, now)
	}
}

// stepsPending reports whether any sharded replica still has an armed step.
// Sharded steps live outside the kernel, so the drain loop and the
// autoscaler's re-arm check must ask here as well as kernel.Pending.
func (r *fleetRun) stepsPending() bool {
	if !r.sharded {
		return false
	}
	for _, rep := range r.reps {
		if rep.scheduled {
			return true
		}
	}
	return false
}

// shardPool is the sharded driver's persistent worker pool: barriers arrive
// at arrival cadence (a million times per million-request run), so the
// workers outlive the barriers instead of being spawned per phase. fn must
// write only replica-local state, so the outcome is independent of goroutine
// scheduling and the parallel drive is indistinguishable from the serial
// loop.
type shardPool struct {
	jobs chan *Replica
	wg   sync.WaitGroup
	// panics holds the first worker panic of a dispatch; dispatch re-raises
	// it on the caller.
	panics chan any
	fn     func(*Replica)
}

// newShardPool starts `workers` persistent workers running fn.
func newShardPool(workers int, fn func(*Replica)) *shardPool {
	if workers < 2 {
		workers = 2
	}
	p := &shardPool{jobs: make(chan *Replica, 4*workers), panics: make(chan any, 1), fn: fn}
	parallelMap(p, workers)
	return p
}

// parallelMap launches the pool's workers — the one construct the
// deterministic packages may spawn goroutines in (papivet pins this).
func parallelMap(p *shardPool, workers int) {
	for w := 0; w < workers; w++ {
		go p.worker()
	}
}

// worker drains jobs until the pool closes. Every job signals the dispatch
// WaitGroup exactly once, panic or not — a stuck dispatch would deadlock the
// whole run.
func (p *shardPool) worker() {
	for rep := range p.jobs {
		p.run(rep)
	}
}

func (p *shardPool) run(rep *Replica) {
	defer p.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			// Keep only the first panic; a worker must never block here.
			select {
			case p.panics <- v:
			default:
			}
		}
	}()
	p.fn(rep)
}

// dispatch runs fn over the batch and returns once every item finished,
// re-raising the first worker panic on the caller.
func (p *shardPool) dispatch(reps []*Replica) {
	p.wg.Add(len(reps))
	for _, rep := range reps {
		p.jobs <- rep
	}
	p.wg.Wait()
	select {
	case v := <-p.panics:
		panic(v)
	default:
	}
}

// close retires the workers (idempotent is not needed: drain calls it once).
func (p *shardPool) close() { close(p.jobs) }

// Run consumes the request stream to completion and returns fleet metrics.
// It may be called once per Cluster.
func (c *Cluster) Run(reqs []workload.Request) (*FleetResult, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: Run may only be called once per cluster")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("cluster: empty request stream")
	}
	c.ran = true

	r, err := c.newFleetRun()
	if err != nil {
		return nil, err
	}
	r.shard()

	// Arrivals are scheduled up front in stream order, so simultaneous
	// arrivals route in a deterministic order and always precede step
	// events at the same instant.
	stream := append([]workload.Request(nil), reqs...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })

	// Open-loop runs only interact across replicas at arrivals (the router
	// reads fleet state, the chosen replica gains a request) and — when
	// autoscaling — at control ticks (the scaler reads every replica's
	// signals), and both kinds of instant are known ahead — so a replica may
	// macro-step up to the earlier of the next unfired arrival and the next
	// tick, not merely the kernel's next event, which would throttle
	// fast-forwarding to the other replicas' step cadence.
	arrivals := make([]units.Seconds, len(stream))
	fired := 0
	if r.resil == nil {
		// With the failure machinery armed this tightening is unsound:
		// fault edges, timeouts, and retry re-injections are kernel events
		// between arrivals, so macro-stepping must stay bounded by the
		// kernel's next pending event (the default horizon).
		r.horizon = func() units.Seconds {
			h := r.nextTick
			if fired < len(arrivals) && arrivals[fired] < h {
				h = arrivals[fired]
			}
			return h
		}
	}
	for i := range stream {
		req := stream[i]
		// A negative arrival means "already waiting at start", as in the
		// single-engine path; the kernel cannot schedule before time zero.
		at := req.Arrival
		if at < 0 {
			at = 0
		}
		arrivals[i] = at
		r.kernel.At(at, func(now units.Seconds) {
			fired++
			if r.err != nil {
				return
			}
			r.route(req, now)
		})
	}

	return r.finish(len(reqs))
}

// RunSeq consumes a lazily generated open-loop request stream to
// completion: next is called once per request, in arrival order
// (non-decreasing arrivals; a negative arrival clamps to 0, as in Run),
// until it reports no more. Only one lookahead arrival is ever buffered, so
// a million-request run pays no per-request memory up front — the fleet
// companion to workload.Scenario.Each. RunSeq shares Run's semantics,
// including the sharded barrier driver, and may be called once per
// Cluster, in place of Run.
func (c *Cluster) RunSeq(next func() (workload.Request, bool)) (*FleetResult, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: Run may only be called once per cluster")
	}
	if next == nil {
		return nil, fmt.Errorf("cluster: nil request source")
	}
	c.ran = true

	r, err := c.newFleetRun()
	if err != nil {
		return nil, err
	}
	r.shard()

	// The macro-stepping horizon mirrors Run's: open-loop replicas interact
	// only at arrivals and control ticks, and with one lookahead arrival
	// buffered the next arrival instant is always known.
	nextArrival := units.Seconds(math.Inf(1))
	if r.resil == nil {
		r.horizon = func() units.Seconds {
			h := r.nextTick
			if nextArrival < h {
				h = nextArrival
			}
			return h
		}
	}

	total := 0
	lastAt := units.Seconds(math.Inf(-1))
	var schedule func(req workload.Request)
	schedule = func(req workload.Request) {
		at := req.Arrival
		if at < 0 {
			at = 0
		}
		if at < lastAt {
			r.err = fmt.Errorf("cluster: request %d arrives at %v, before its predecessor at %v; RunSeq needs arrival order",
				req.ID, at, lastAt)
			return
		}
		lastAt = at
		total++
		nextArrival = at
		r.kernel.At(at, func(now units.Seconds) {
			// Pull the successor before routing, so the horizon and the
			// barrier schedule always cover the next arrival.
			if follow, more := next(); more {
				schedule(follow)
			} else {
				nextArrival = units.Seconds(math.Inf(1))
			}
			if r.err != nil {
				return
			}
			r.route(req, now)
		})
	}
	first, ok := next()
	if !ok {
		return nil, fmt.Errorf("cluster: empty request stream")
	}
	schedule(first)

	// The stream keeps growing while the kernel drains (each arrival pulls
	// its successor), so the ledger total is only known afterwards.
	r.drain()
	if r.err != nil {
		return nil, r.err
	}
	return aggregate(r, total)
}

// convState tracks one closed-loop conversation through a fleet run: which
// turn is next, how large the context has grown, and which replica holds the
// conversation's KV state (follow-ups stick to it).
type convState struct {
	conv workload.Conversation
	// baseID is the request ID of turn 0; turn k gets baseID + k, so IDs are
	// assigned deterministically up front regardless of completion order.
	baseID int
	next   int // index of the next turn to launch
	rep    *Replica
}

// RunPlan consumes a closed-loop conversation plan to completion: each
// conversation's first turn is routed like any arrival, and every follow-up
// turn arrives think-time after the previous answer completes, carrying the
// full grown context (all prior turns' inputs and outputs plus the new
// prompt tokens) back to the same replica, where its KV footprint and
// attention cost reflect the accumulated history. Every turn is tagged with
// the conversation's prefix group — negative IDs, so a workload generator's
// positive groups can never collide — and each follow-up declares the
// carried context as its shared prefix. With the block-level KV cache
// sharing enabled (Options.Serving.KV), the replica holding the
// conversation adopts those blocks instead of re-prefilling them, and the
// carried bytes are not double-counted against the replica's KV headroom;
// without it, the full history is re-prefilled each turn — an upper bound
// docs/SCENARIOS.md records. RunPlan may be called once per Cluster, in
// place of Run.
func (c *Cluster) RunPlan(convs []workload.Conversation) (*FleetResult, error) {
	if c.ran {
		return nil, fmt.Errorf("cluster: Run may only be called once per cluster")
	}
	if len(convs) == 0 {
		return nil, fmt.Errorf("cluster: empty conversation plan")
	}
	for _, conv := range convs {
		if len(conv.Turns) == 0 {
			return nil, fmt.Errorf("cluster: conversation %d has no turns", conv.ID)
		}
	}
	if c.opt.Shards > 1 {
		// Closed-loop runs couple replicas between arrivals: a completion on
		// one replica launches a follow-up whose arrival instant the barrier
		// schedule cannot know ahead, so the parallel drive has no sound
		// synchronization points.
		return nil, fmt.Errorf("cluster: sharded execution needs an open-loop stream; RunPlan requires Shards ≤ 1")
	}
	c.ran = true

	r, err := c.newFleetRun()
	if err != nil {
		return nil, err
	}

	states := make([]*convState, len(convs))
	byReq := make(map[int]*convState)
	nextID := 0
	for i, conv := range convs {
		states[i] = &convState{conv: conv, baseID: nextID}
		nextID += len(conv.Turns)
	}

	// Failover keeps the conversation pins honest: a crash orphans every
	// conversation homed on the dead replica (its KV state is gone), and a
	// retried turn re-pins its conversation to the survivor it lands on,
	// which re-prefills the carried context.
	r.onCrash = func(rep *Replica, now units.Seconds) {
		for _, st := range states {
			if st.rep == rep {
				st.rep = nil
			}
		}
	}
	r.onRequeue = func(id int, rep *Replica) {
		st, ok := byReq[id]
		if !ok || st.rep == rep {
			return
		}
		if st.rep != nil {
			st.rep.holds--
		}
		st.rep = rep
		rep.holds++
		if r.resil != nil {
			r.resil.repins++
		}
	}

	// A completed turn launches the conversation's next turn think-time
	// later, on the same replica. A finished conversation releases its hold
	// on the replica, making it drainable again.
	r.onFinish = func(rep *Replica, req workload.Request) {
		st, ok := byReq[req.ID]
		if !ok {
			return
		}
		if st.next >= len(st.conv.Turns) {
			rep.holds--
			return
		}
		turn := st.conv.Turns[st.next]
		follow := workload.Request{
			ID: st.baseID + st.next,
			// The follow-up's prompt is the grown context: everything said
			// so far plus the newly typed tokens.
			InputLen:     req.SeqLen() + turn.Input,
			OutputLen:    turn.Output,
			Arrival:      rep.stepper.Now() + turn.Think,
			Conversation: st.conv.ID,
			Turn:         st.next + 1,
			PrefixGroup:  -(int64(st.conv.ID) + 1),
			PrefixLen:    req.SeqLen(),
		}
		st.next++
		byReq[follow.ID] = st
		r.kernel.At(follow.Arrival, func(now units.Seconds) {
			if r.err != nil {
				return
			}
			rep := st.rep
			if rep == nil || rep.state == repFailed || rep.state == repStopped {
				// The pinned replica died between turns: route the
				// follow-up like a fresh arrival and re-pin the
				// conversation to wherever it lands.
				if nrep := r.route(follow, now); nrep != nil {
					st.rep = nrep
					nrep.holds++
					if r.resil != nil {
						r.resil.repins++
					}
				}
				return
			}
			r.inject(rep, follow, now)
		})
	}

	// First turns are open-loop arrivals, scheduled up front in plan order.
	order := make([]int, len(states))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return states[order[a]].conv.Arrival < states[order[b]].conv.Arrival
	})
	for _, i := range order {
		st := states[i]
		at := st.conv.Arrival
		if at < 0 {
			at = 0
		}
		first := workload.Request{
			ID:           st.baseID,
			InputLen:     st.conv.Turns[0].Input,
			OutputLen:    st.conv.Turns[0].Output,
			Arrival:      st.conv.Arrival,
			Conversation: st.conv.ID,
			Turn:         1,
			PrefixGroup:  -(int64(st.conv.ID) + 1),
		}
		st.next = 1
		byReq[first.ID] = st
		r.kernel.At(at, func(now units.Seconds) {
			if r.err != nil {
				return
			}
			st.rep = r.route(first, now)
			if st.rep != nil {
				st.rep.holds++
			}
		})
	}

	return r.finish(workload.TotalTurns(convs))
}
