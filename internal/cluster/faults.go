// Fleet-level failure machinery: the bridge between a declarative
// faults.Plan and the live fleetRun. Crash events kill a replica and fail
// over its outstanding requests to survivors (re-prefilling the grown
// context); straggler and brownout windows stretch the priced kernel
// latencies through serving.Perturbation; per-attempt timeouts cancel and
// re-route stuck requests under the same bounded-retry policy. Everything
// here runs as ordinary events on the deterministic sim kernel, so a fixed
// plan reproduces the same failure trace run-to-run.

package cluster

import (
	"fmt"

	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// reqTrack is one request's failover ledger entry. Every injected request
// gets one, and the run's accounting invariant — each request terminates
// exactly once, as completed or failed — is enforced against it at
// aggregation.
type reqTrack struct {
	// attempts counts injections so far (1 on first injection); the retry
	// bound compares against it.
	attempts int
	// rep is the replica currently serving the attempt; nil once the
	// request completed, failed, or is between attempts.
	rep *Replica
	// cur is the request as last injected — its InputLen grows with each
	// failover, absorbing the generated tokens that must be re-prefilled.
	cur    workload.Request
	done   bool
	failed bool
}

// resilience owns the fault plan's runtime state for one fleet run.
type resilience struct {
	run     *fleetRun
	plan    *faults.Plan
	timeout units.Seconds
	retries int
	backoff units.Seconds

	track map[int]*reqTrack
	// waiting holds casualties with no live replica to land on; they flush
	// (in arrival order) when the autoscaler activates a replacement.
	waiting []workload.Request
	// parked holds batch-class arrivals shed during brownout windows; they
	// flush when the last overlapping window lifts.
	parked []workload.Request

	// brownoutDepth counts overlapping brownout windows; slow holds each
	// replica's active straggler factors and attn the fleet-wide brownout
	// factors (products compose overlapping windows).
	brownoutDepth int
	slow          map[int][]float64
	attn          []float64

	// Aggregate counters surfaced on FleetResult.
	faults     int
	retried    int
	repins     int
	shed       int
	lostTokens int
	reprefill  int
	failures   []FailedRequest
}

func newResilience(r *fleetRun) *resilience {
	opt := r.c.opt
	return &resilience{
		run:     r,
		plan:    opt.Faults,
		timeout: opt.Timeout,
		retries: opt.Retries,
		backoff: opt.RetryBackoff,
		track:   make(map[int]*reqTrack),
		slow:    make(map[int][]float64),
	}
}

// schedulePlan arms every fault's kernel events, in plan order (the kernel
// breaks same-instant ties FIFO, so plan order is deterministic).
func (z *resilience) schedulePlan() {
	if z.plan == nil {
		return
	}
	for i := range z.plan.Faults {
		f := z.plan.Faults[i]
		switch f.Kind {
		case faults.KindCrash:
			z.run.kernel.At(f.Start(), func(now units.Seconds) {
				z.crash(f.Replica, now)
			})
		case faults.KindStraggler:
			z.run.kernel.At(f.Start(), func(now units.Seconds) {
				z.stragglerBegin(f.Replica, f.Factor, now)
			})
			z.run.kernel.At(f.End(), func(now units.Seconds) {
				z.stragglerEnd(f.Replica, f.Factor, now)
			})
		case faults.KindBrownout:
			z.run.kernel.At(f.Start(), func(now units.Seconds) {
				z.brownoutBegin(f.Factor, now)
			})
			z.run.kernel.At(f.End(), func(now units.Seconds) {
				z.brownoutEnd(f.Factor, now)
			})
		}
	}
}

// crash kills a replica at its fault instant: the replica leaves the
// eligible set for good, its clock freezes, and every outstanding request
// becomes a casualty handled by the bounded-retry policy.
func (z *resilience) crash(idx int, now units.Seconds) {
	r := z.run
	if r.err != nil || idx < 0 || idx >= len(r.reps) {
		return
	}
	rep := r.reps[idx]
	if rep.state == repStopped || rep.state == repFailed {
		return
	}
	z.faults++
	rep.state = repFailed
	rep.stopAt = now
	// The engine may have committed its last iteration past the crash
	// instant; its powered-on span ends at its own clock boundary.
	if t := rep.Now(); t > rep.stopAt {
		rep.stopAt = t
	}
	r.rebuildEligible()
	for _, c := range rep.stepper.Fail() {
		z.handleCasualty(c, now, "crash")
	}
	if r.onCrash != nil {
		r.onCrash(rep, now)
	}
}

// stragglerBegin/End bracket one slowdown window on one replica.
func (z *resilience) stragglerBegin(idx int, factor float64, now units.Seconds) {
	r := z.run
	if r.err != nil || idx < 0 || idx >= len(r.reps) {
		return
	}
	z.faults++
	z.slow[idx] = append(z.slow[idx], factor)
	z.applyPerturb(r.reps[idx])
}

func (z *resilience) stragglerEnd(idx int, factor float64, now units.Seconds) {
	r := z.run
	if r.err != nil || idx < 0 || idx >= len(r.reps) {
		return
	}
	z.slow[idx] = removeFactor(z.slow[idx], factor)
	z.applyPerturb(r.reps[idx])
}

// brownoutBegin/End bracket one fleet-wide degraded-bandwidth window: every
// replica's attention and communication kernels are priced at the reduced
// bandwidth, and batch-class arrivals are parked until the window lifts.
func (z *resilience) brownoutBegin(factor float64, now units.Seconds) {
	if z.run.err != nil {
		return
	}
	z.faults++
	z.brownoutDepth++
	z.attn = append(z.attn, factor)
	z.applyAll()
}

func (z *resilience) brownoutEnd(factor float64, now units.Seconds) {
	if z.run.err != nil {
		return
	}
	z.brownoutDepth--
	z.attn = removeFactor(z.attn, factor)
	z.applyAll()
	z.flushParked(now)
}

// applyPerturb installs a replica's current compound perturbation (its own
// straggler factors times the fleet-wide brownout factors).
func (z *resilience) applyPerturb(rep *Replica) {
	if rep.state == repStopped || rep.state == repFailed {
		return
	}
	rep.stepper.SetPerturbation(serving.Perturbation{
		Slow: prod(z.slow[rep.ID]),
		Attn: prod(z.attn),
	})
}

func (z *resilience) applyAll() {
	for _, rep := range z.run.reps {
		z.applyPerturb(rep)
	}
}

// shedArrival parks batch-class open-loop arrivals while any brownout
// window is active (conversation turns carry Turn ≥ 1 and are never shed —
// their KV state is already pinned to a replica).
func (z *resilience) shedArrival(req workload.Request) bool {
	if z.brownoutDepth == 0 || req.Class != workload.ClassBatch || req.Turn != 0 {
		return false
	}
	z.parked = append(z.parked, req)
	z.shed++
	return true
}

// flushParked releases the brownout-parked arrivals once no window remains.
func (z *resilience) flushParked(now units.Seconds) {
	if z.brownoutDepth > 0 || len(z.parked) == 0 {
		return
	}
	parked := z.parked
	z.parked = nil
	for _, req := range parked {
		if len(z.run.eligible) > 0 {
			z.run.route(req, now)
			continue
		}
		z.strand(req, now)
	}
}

// strand tracks a request that found no live replica to land on: parked for
// the autoscaler's replacement boot when one may come, terminally failed
// otherwise (a static fleet has no replacement coming). Shared by brownout
// flushes and arrivals routed into a fully crashed fleet.
func (z *resilience) strand(req workload.Request, now units.Seconds) {
	t := z.track[req.ID]
	if t == nil {
		t = &reqTrack{cur: req}
		z.track[req.ID] = t
	}
	if z.run.scaler == nil {
		z.fail(t, req, "no-replicas", now)
	} else {
		z.waiting = append(z.waiting, req)
	}
}

// noteInject records an attempt and, with a timeout configured, arms its
// deadline. The deadline captures the attempt number so a stale event —
// the attempt completed, failed, or was already retried — is a no-op.
func (z *resilience) noteInject(rep *Replica, req workload.Request, now units.Seconds) {
	t := z.track[req.ID]
	if t == nil {
		t = &reqTrack{}
		z.track[req.ID] = t
	}
	t.attempts++
	t.rep = rep
	t.cur = req
	t.done = false
	if z.timeout > 0 {
		attempt := t.attempts
		z.run.kernel.At(now+z.timeout, func(tnow units.Seconds) {
			z.checkTimeout(req.ID, attempt, tnow)
		})
	}
}

// checkTimeout cancels an attempt still outstanding at its deadline and
// hands the casualty to the bounded-retry policy.
func (z *resilience) checkTimeout(id, attempt int, now units.Seconds) {
	if z.run.err != nil {
		return
	}
	t := z.track[id]
	if t == nil || t.done || t.failed || t.attempts != attempt || t.rep == nil {
		return
	}
	c, ok, err := t.rep.stepper.Cancel(id)
	if err != nil {
		z.run.err = err
		return
	}
	if !ok {
		return
	}
	z.handleCasualty(c, now, "timeout")
}

// finished marks a request's ledger entry complete. Sharded runs call it
// only at barriers (completions buffer on the finishing replica mid-phase),
// serial runs at the step itself.
func (z *resilience) finished(id int) {
	if t := z.track[id]; t != nil {
		t.done = true
		t.rep = nil
	}
}

// handleCasualty applies the bounded-retry policy to one lost attempt: the
// generated tokens are sunk (goodput discounts them), and the request
// either terminally fails or is rescheduled — with its context grown by the
// lost generation, to be re-prefilled on the survivor — after deterministic
// exponential backoff.
func (z *resilience) handleCasualty(c serving.Casualty, now units.Seconds, reason string) {
	z.lostTokens += c.Generated
	t := z.track[c.Request.ID]
	if t == nil {
		t = &reqTrack{attempts: 1, cur: c.Request}
		z.track[c.Request.ID] = t
	}
	t.rep = nil
	if t.attempts > z.retries {
		z.fail(t, c.Request, reason, now)
		return
	}
	retry := c.Request
	retry.InputLen = c.Request.InputLen + c.Generated
	retry.OutputLen = c.Request.OutputLen - c.Generated
	z.reprefill += retry.InputLen
	z.retried++
	t.cur = retry
	attempt := t.attempts
	delay := z.backoff
	for i := 1; i < attempt; i++ {
		delay += delay
	}
	z.run.kernel.At(now+delay, func(rnow units.Seconds) {
		z.launchRetry(c.Request.ID, attempt, rnow)
	})
}

// launchRetry re-routes a casualty's next attempt; stale events (the
// request resolved meanwhile) are no-ops.
func (z *resilience) launchRetry(id, attempt int, now units.Seconds) {
	if z.run.err != nil {
		return
	}
	t := z.track[id]
	if t == nil || t.done || t.failed || t.attempts != attempt {
		return
	}
	z.dispatch(t, now)
}

// dispatch routes a tracked request onto a live replica, or — with none
// available — either parks it for the autoscaler's replacement boot or
// terminally fails it (a static fleet has no replacement coming).
func (z *resilience) dispatch(t *reqTrack, now units.Seconds) {
	r := z.run
	if len(r.eligible) == 0 {
		if r.scaler == nil {
			z.fail(t, t.cur, "no-replicas", now)
			return
		}
		z.waiting = append(z.waiting, t.cur)
		return
	}
	idx := r.c.opt.Router.Route(t.cur, r.eligible)
	if idx < 0 || idx >= len(r.eligible) {
		r.err = fmt.Errorf("cluster: router %s chose invalid replica %d of %d",
			r.c.opt.Router.Name(), idx, len(r.eligible))
		return
	}
	rep := r.eligible[idx]
	if t.attempts == 0 {
		// A parked arrival that never ran: this is its realised arrival.
		r.inject(rep, t.cur, now)
	} else {
		r.push(rep, t.cur, now)
	}
	if r.onRequeue != nil {
		r.onRequeue(t.cur.ID, rep)
	}
}

// flushWaiting re-dispatches stranded requests when a replacement replica
// goes live.
func (z *resilience) flushWaiting(now units.Seconds) {
	if len(z.run.eligible) == 0 || len(z.waiting) == 0 {
		return
	}
	waiting := z.waiting
	z.waiting = nil
	for _, req := range waiting {
		t := z.track[req.ID]
		if t == nil || t.done || t.failed {
			continue
		}
		z.dispatch(t, now)
	}
}

// fail closes a request's ledger entry as terminally failed.
func (z *resilience) fail(t *reqTrack, req workload.Request, reason string, at units.Seconds) {
	t.failed = true
	t.rep = nil
	z.failures = append(z.failures, FailedRequest{
		ID: req.ID, Class: req.Class, Attempts: t.attempts, Reason: reason, At: at,
	})
}

// closeLedger terminally fails anything still stranded when the kernel
// drains (the autoscaler never booted the replacement the waiting requests
// were parked for), so every request is accounted exactly once.
func (z *resilience) closeLedger(at units.Seconds) {
	for _, req := range z.waiting {
		t := z.track[req.ID]
		if t == nil || t.done || t.failed {
			continue
		}
		z.fail(t, req, "unserved", at)
	}
	z.waiting = nil
}

// prod multiplies a factor list; an empty list is the identity.
func prod(fs []float64) float64 {
	p := 1.0
	for _, f := range fs {
		p *= f
	}
	return p
}

// removeFactor drops the first occurrence of f (a window's end removes the
// factor its start added).
func removeFactor(fs []float64, f float64) []float64 {
	for i := range fs {
		if fs[i] == f {
			return append(fs[:i], fs[i+1:]...)
		}
	}
	return fs
}
