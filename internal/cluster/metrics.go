package cluster

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// FleetResult aggregates one cluster run: per-replica serving results plus
// the fleet-level quantities a capacity planner reads — aggregate
// throughput, energy, and latency tail percentiles.
type FleetResult struct {
	System string
	Model  string
	Router string

	// Replicas holds each replica's full serving result, in replica order.
	Replicas []serving.Result
	// Routed is how many requests each replica received.
	Routed []int

	// Requests merges every replica's per-request metrics (arrival-relative
	// latencies), sorted by request ID.
	Requests []serving.RequestMetrics

	// Stream is the realised arrival stream — every request the fleet
	// actually served, with its concrete arrival instant, sorted by arrival
	// then ID. For closed-loop runs this is where the simulation-dependent
	// follow-up arrivals become concrete, so wrapping it in a
	// workload.Trace replays the exact same traffic open-loop.
	Stream []workload.Request

	// Makespan is the instant the last replica finished, on the shared
	// fleet clock.
	Makespan units.Seconds
	// Tokens is the fleet-wide generated token count.
	Tokens int
	// Energy merges every replica's ledger.
	Energy energy.Ledger

	// TTFT and TPOT digest the request latency distributions (seconds).
	// TPOT summarises multi-token requests only: single-token requests have
	// no inter-token cadence (their TPOT is 0 by definition).
	TTFT stats.Summary
	TPOT stats.Summary
}

// aggregate finalises every replica and folds the fleet metrics.
func aggregate(system, model, router string, reps []*Replica, stream []workload.Request, want int) (*FleetResult, error) {
	f := &FleetResult{System: system, Model: model, Router: router}
	f.Stream = append([]workload.Request(nil), stream...)
	sort.SliceStable(f.Stream, func(i, j int) bool {
		if f.Stream[i].Arrival != f.Stream[j].Arrival {
			return f.Stream[i].Arrival < f.Stream[j].Arrival
		}
		return f.Stream[i].ID < f.Stream[j].ID
	})
	var ttfts, tpots []float64
	for _, rep := range reps {
		res := rep.stepper.Finalize()
		f.Replicas = append(f.Replicas, res)
		f.Routed = append(f.Routed, rep.routed)
		f.Tokens += res.Tokens
		f.Energy.Merge(&res.Energy)
		if t := rep.Now(); t > f.Makespan {
			f.Makespan = t
		}
		for _, rm := range res.Requests {
			f.Requests = append(f.Requests, rm)
			ttfts = append(ttfts, float64(rm.TTFT))
			if rm.OutputTokens > 1 {
				tpots = append(tpots, float64(rm.TPOT))
			}
		}
	}
	if len(f.Requests) != want {
		return nil, fmt.Errorf("cluster: %d of %d requests completed", len(f.Requests), want)
	}
	sort.Slice(f.Requests, func(i, j int) bool { return f.Requests[i].ID < f.Requests[j].ID })
	f.TTFT = stats.Summarize(ttfts)
	f.TPOT = stats.Summarize(tpots)
	return f, nil
}

// TokensPerSecond is the fleet's aggregate decode throughput over the
// makespan.
func (f *FleetResult) TokensPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(f.Tokens) / float64(f.Makespan)
}

// RequestsPerSecond is the completed-request rate over the makespan.
func (f *FleetResult) RequestsPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(len(f.Requests)) / float64(f.Makespan)
}

// Attainment scores the merged request set against a per-token SLO (see
// serving.SLOAttainment for the single-token rule).
func (f *FleetResult) Attainment(slo workload.SLO) float64 {
	return serving.SLOAttainment(f.Requests, slo)
}

// String renders the per-replica table and the fleet digest.
func (f *FleetResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("%s fleet · %s · router %s", f.System, f.Model, f.Router),
		"replica", "routed", "tokens", "iters", "busy", "idle", "energy")
	for i, r := range f.Replicas {
		tb.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", f.Routed[i]),
			fmt.Sprintf("%d", r.Tokens),
			fmt.Sprintf("%d", r.Iterations),
			(r.PrefillTime + r.DecodeTime).String(),
			r.IdleTime.String(),
			r.Energy.Total().String(),
		)
	}
	return tb.String() + fmt.Sprintf(
		"makespan %v · %d tokens (%.0f tok/s, %.2f req/s) · energy %v\n"+
			"TTFT p50/p95/p99 %v / %v / %v · TPOT p50/p95/p99 %v / %v / %v\n",
		f.Makespan, f.Tokens, f.TokensPerSecond(), f.RequestsPerSecond(), f.Energy.Total(),
		units.Seconds(f.TTFT.P50), units.Seconds(f.TTFT.P95), units.Seconds(f.TTFT.P99),
		units.Seconds(f.TPOT.P50), units.Seconds(f.TPOT.P95), units.Seconds(f.TPOT.P99))
}
