package cluster

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// FleetResult aggregates one cluster run: per-replica serving results plus
// the fleet-level quantities a capacity planner reads — aggregate
// throughput, energy, and latency tail percentiles.
type FleetResult struct {
	System string
	Model  string
	Router string

	// Replicas holds each replica's full serving result, in replica order.
	Replicas []serving.Result
	// Routed is how many requests each replica received.
	Routed []int

	// Requests merges every replica's per-request metrics (arrival-relative
	// latencies), sorted by request ID.
	Requests []serving.RequestMetrics

	// Stream is the realised arrival stream — every request the fleet
	// actually served, with its concrete arrival instant, sorted by arrival
	// then ID. For closed-loop runs this is where the simulation-dependent
	// follow-up arrivals become concrete, so wrapping it in a
	// workload.Trace replays the exact same traffic open-loop.
	Stream []workload.Request

	// Makespan is the instant the last replica finished, on the shared
	// fleet clock.
	Makespan units.Seconds
	// Tokens is the fleet-wide generated token count.
	Tokens int
	// Energy merges every replica's ledger. Replicas still powered on at
	// the fleet's end idle until the makespan (the fleet is decommissioned
	// as a unit), so a statically over-provisioned fleet pays for its idle
	// replicas — the cost autoscaling exists to shed. A drained replica
	// stops accruing at its power-off instant.
	Energy energy.Ledger

	// Preemptions counts fleet-wide evict-and-requeue events (batch-class
	// requests pushed out for interactive arrivals under KV pressure).
	Preemptions int

	// Resilience accounting (all zero for fault-free runs). Faults counts
	// the plan's fault events that actually fired against the fleet;
	// Retries the failover re-injections; FailedRequests the requests that
	// exhausted the retry bound (or had no survivor to land on), sorted by
	// ID. LostTokens is generation sunk on crashed or timed-out attempts
	// (goodput discounts it), FailoverReprefillTokens the context tokens
	// survivors had to re-prefill, Repins the conversations re-homed after
	// their KV-affinity replica died, and ShedArrivals the batch-class
	// admissions parked during brownout windows.
	Faults                  int
	Retries                 int
	FailedRequests          []FailedRequest
	LostTokens              int
	FailoverReprefillTokens int
	Repins                  int
	ShedArrivals            int

	// ReplicaSeconds sums every replica's powered-on span (boot to power-off
	// or makespan) — the fleet's provisioned capacity-time, the denominator
	// of elastic efficiency. PeakReplicas is the most replicas ever powered
	// on concurrently; for a static fleet it equals the replica count and
	// ReplicaSeconds = replicas × makespan.
	ReplicaSeconds units.Seconds
	PeakReplicas   int
	// ScaleEvents is the elastic audit trail (nil for static fleets).
	ScaleEvents []ScaleEvent

	// PerDesign splits the fleet metrics by hardware design, in blueprint
	// order — the comparison a mixed-design fleet exists to make. Nil for
	// homogeneous fleets (PerDesign != nil is the "this fleet was mixed"
	// marker, like ScaleEvents for elasticity).
	PerDesign []DesignMetrics

	// TTFT and TPOT digest the request latency distributions (seconds).
	// TPOT summarises multi-token requests only: single-token requests have
	// no inter-token cadence (their TPOT is 0 by definition).
	// InteractiveTPOT and BatchTPOT split the TPOT digest by priority class
	// (zeros when a class is absent).
	TTFT            stats.Summary
	TPOT            stats.Summary
	InteractiveTPOT stats.Summary
	BatchTPOT       stats.Summary
}

// FailedRequest records one request the fleet terminally failed: it ran
// out of retry budget (Reason "crash" or "timeout" names the final straw),
// or no replica survived to serve it ("no-replicas" when failing fast,
// "unserved" when it was still waiting for a replacement boot at the end of
// the run).
type FailedRequest struct {
	ID       int
	Class    workload.Class
	Attempts int
	Reason   string
	At       units.Seconds
}

// DesignMetrics is one hardware design's share of a mixed fleet's run.
type DesignMetrics struct {
	// Design is the display name of the hardware design.
	Design string
	// Replicas counts the fleet slots that ran this design.
	Replicas int
	// Routed is how many requests the routers sent to this design's
	// replicas; Requests how many completed there.
	Routed   int
	Requests int
	// Tokens and Energy are this design's share of the fleet totals.
	Tokens int
	Energy units.Joules
	// TTFT and TPOT digest this design's request latency distributions
	// (TPOT over multi-token requests only, as in the fleet digest).
	TTFT stats.Summary
	TPOT stats.Summary

	// metrics holds the per-request latencies served by this design, for
	// Attainment.
	metrics []serving.RequestMetrics
}

// Attainment scores the design's requests against a per-token SLO.
func (d DesignMetrics) Attainment(slo workload.SLO) float64 {
	return serving.SLOAttainment(d.metrics, slo)
}

// aggregate finalises every replica and folds the fleet metrics.
func aggregate(r *fleetRun, want int) (*FleetResult, error) {
	f := &FleetResult{System: r.c.sysName, Model: r.c.cfg.Name, Router: r.c.opt.Router.Name()}
	f.Stream = append([]workload.Request(nil), r.stream...)
	sort.SliceStable(f.Stream, func(i, j int) bool {
		if f.Stream[i].Arrival != f.Stream[j].Arrival {
			return f.Stream[i].Arrival < f.Stream[j].Arrival
		}
		return f.Stream[i].ID < f.Stream[j].ID
	})

	// The makespan is fixed first; replicas still powered on then idle up
	// to it (the fleet is decommissioned as a unit), so trailing idle — and
	// its host energy — lands on the ledger of every replica that was kept
	// on. Stopped replicas froze at their power-off instant.
	for _, rep := range r.reps {
		if t := rep.Now(); t > f.Makespan {
			f.Makespan = t
		}
	}
	for _, rep := range r.reps {
		// Stopped replicas froze at power-off, crashed replicas at the
		// failure instant: neither idles to the makespan.
		if rep.state != repStopped && rep.state != repFailed {
			rep.stepper.AdvanceTo(f.Makespan)
		}
	}

	if r.resil != nil {
		r.resil.closeLedger(f.Makespan)
		f.Faults = r.resil.faults
		f.Retries = r.resil.retried
		f.FailedRequests = append([]FailedRequest(nil), r.resil.failures...)
		sort.Slice(f.FailedRequests, func(i, j int) bool {
			return f.FailedRequests[i].ID < f.FailedRequests[j].ID
		})
		f.LostTokens = r.resil.lostTokens
		f.FailoverReprefillTokens = r.resil.reprefill
		f.Repins = r.resil.repins
		f.ShedArrivals = r.resil.shed
	}

	f.PeakReplicas = len(r.reps)
	if r.scaler != nil {
		f.PeakReplicas = r.scaler.peak
		// Non-nil even when no decision fired: ScaleEvents != nil is the
		// "this fleet was elastic" marker String and callers key on.
		f.ScaleEvents = append(make([]ScaleEvent, 0, len(r.scaler.events)), r.scaler.events...)
	}

	// A mixed fleet additionally splits the metrics per design, in blueprint
	// order.
	type designAcc struct {
		dm    DesignMetrics
		ttfts []float64
		tpots []float64
	}
	var designOrder []*designAcc
	byDesign := map[string]*designAcc{}
	if r.c.mixed() {
		for _, bp := range r.c.blueprints {
			if byDesign[bp.name] == nil {
				acc := &designAcc{dm: DesignMetrics{Design: bp.name}}
				byDesign[bp.name] = acc
				designOrder = append(designOrder, acc)
			}
		}
	}

	var ttfts, tpots, tpotsInteractive, tpotsBatch []float64
	for _, rep := range r.reps {
		res := rep.stepper.Finalize()
		f.Replicas = append(f.Replicas, res)
		f.Routed = append(f.Routed, rep.routed)
		f.Tokens += res.Tokens
		f.Preemptions += res.Preemptions
		f.Energy.Merge(&res.Energy)
		end := f.Makespan
		if rep.state == repStopped || rep.state == repFailed {
			end = rep.stopAt
		}
		if span := end - rep.bootAt; span > 0 {
			f.ReplicaSeconds += span
		}
		acc := byDesign[rep.design]
		if acc != nil {
			acc.dm.Replicas++
			acc.dm.Routed += rep.routed
			acc.dm.Tokens += res.Tokens
			acc.dm.Energy += res.Energy.Total()
		}
		for _, rm := range res.Requests {
			f.Requests = append(f.Requests, rm)
			ttfts = append(ttfts, rm.TTFT.Seconds())
			if rm.OutputTokens > 1 {
				tpots = append(tpots, rm.TPOT.Seconds())
				if rm.Class == workload.ClassBatch {
					tpotsBatch = append(tpotsBatch, rm.TPOT.Seconds())
				} else {
					tpotsInteractive = append(tpotsInteractive, rm.TPOT.Seconds())
				}
			}
			if acc != nil {
				acc.dm.metrics = append(acc.dm.metrics, rm)
				acc.ttfts = append(acc.ttfts, rm.TTFT.Seconds())
				if rm.OutputTokens > 1 {
					acc.tpots = append(acc.tpots, rm.TPOT.Seconds())
				}
			}
		}
	}
	for _, acc := range designOrder {
		acc.dm.Requests = len(acc.dm.metrics)
		acc.dm.TTFT = stats.Summarize(acc.ttfts)
		acc.dm.TPOT = stats.Summarize(acc.tpots)
		f.PerDesign = append(f.PerDesign, acc.dm)
	}
	// Every injected request must be terminally accounted exactly once:
	// completed (Requests) or failed (FailedRequests), never both, never
	// neither.
	if len(f.Requests)+len(f.FailedRequests) != want {
		return nil, fmt.Errorf("cluster: %d of %d requests terminally accounted (%d completed + %d failed)",
			len(f.Requests)+len(f.FailedRequests), want, len(f.Requests), len(f.FailedRequests))
	}
	sort.Slice(f.Requests, func(i, j int) bool { return f.Requests[i].ID < f.Requests[j].ID })
	f.TTFT = stats.Summarize(ttfts)
	f.TPOT = stats.Summarize(tpots)
	f.InteractiveTPOT = stats.Summarize(tpotsInteractive)
	f.BatchTPOT = stats.Summarize(tpotsBatch)
	return f, nil
}

// TokensPerSecond is the fleet's aggregate decode goodput over the
// makespan: generation sunk on crashed or timed-out attempts is real work
// the hardware did, so it stays in Tokens and in the energy ledger, but it
// reached no client and does not count as throughput.
func (f *FleetResult) TokensPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(f.Tokens-f.LostTokens) / f.Makespan.Seconds()
}

// RequestsPerSecond is the completed-request rate over the makespan.
func (f *FleetResult) RequestsPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(len(f.Requests)) / f.Makespan.Seconds()
}

// Attainment scores the merged request set against a per-token SLO (see
// serving.SLOAttainment for the single-token rule). Failed and timed-out
// requests never met any latency target: they stay in the denominator as
// misses rather than silently vanishing from the score.
func (f *FleetResult) Attainment(slo workload.SLO) float64 {
	total := len(f.Requests) + len(f.FailedRequests)
	if total == 0 {
		return 0
	}
	return float64(serving.SLOMetCount(f.Requests, slo)) / float64(total)
}

// AttainmentClass scores one priority class against the SLO, counting the
// class's failed requests as misses (1 when the class is entirely absent —
// an empty tier violates nothing).
func (f *FleetResult) AttainmentClass(slo workload.SLO, class workload.Class) float64 {
	met, n := serving.SLOMetCountClass(f.Requests, slo, class)
	for _, fr := range f.FailedRequests {
		if fr.Class == class {
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return float64(met) / float64(n)
}

// Availability is the fraction of injected requests that completed at all —
// the coarse measure failover exists to defend.
func (f *FleetResult) Availability() float64 {
	total := len(f.Requests) + len(f.FailedRequests)
	if total == 0 {
		return 0
	}
	return float64(len(f.Requests)) / float64(total)
}

// JoulesPerToken is the fleet's energy cost per generated token — with the
// decommission-at-makespan accounting, the figure an elastic fleet improves
// by shedding idle replicas.
func (f *FleetResult) JoulesPerToken() float64 {
	if f.Tokens == 0 {
		return 0
	}
	return f.Energy.Total().Joules() / float64(f.Tokens)
}

// String renders the per-replica table and the fleet digest.
func (f *FleetResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("%s fleet · %s · router %s", f.System, f.Model, f.Router),
		"replica", "routed", "tokens", "iters", "busy", "idle", "energy")
	for i, r := range f.Replicas {
		tb.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", f.Routed[i]),
			fmt.Sprintf("%d", r.Tokens),
			fmt.Sprintf("%d", r.Iterations),
			(r.PrefillTime + r.DecodeTime).String(),
			r.IdleTime.String(),
			r.Energy.Total().String(),
		)
	}
	out := tb.String() + fmt.Sprintf(
		"makespan %v · %d tokens (%.0f tok/s, %.2f req/s) · energy %v\n"+
			"TTFT p50/p95/p99 %v / %v / %v · TPOT p50/p95/p99 %v / %v / %v\n",
		f.Makespan, f.Tokens, f.TokensPerSecond(), f.RequestsPerSecond(), f.Energy.Total(),
		units.Seconds(f.TTFT.P50), units.Seconds(f.TTFT.P95), units.Seconds(f.TTFT.P99),
		units.Seconds(f.TPOT.P50), units.Seconds(f.TPOT.P95), units.Seconds(f.TPOT.P99))
	if f.Preemptions > 0 {
		out += fmt.Sprintf("preemptions %d · interactive TPOT p95 %v · batch TPOT p95 %v\n",
			f.Preemptions, units.Seconds(f.InteractiveTPOT.P95), units.Seconds(f.BatchTPOT.P95))
	}
	if f.Faults > 0 || len(f.FailedRequests) > 0 {
		out += fmt.Sprintf("faults %d · retries %d · failed %d · availability %.3f · "+
			"lost tokens %d · re-prefill %d · re-pins %d · shed %d\n",
			f.Faults, f.Retries, len(f.FailedRequests), f.Availability(),
			f.LostTokens, f.FailoverReprefillTokens, f.Repins, f.ShedArrivals)
	}
	if f.ScaleEvents != nil {
		ups, drains := 0, 0
		for _, ev := range f.ScaleEvents {
			switch ev.Action {
			case ScaleUp:
				ups++
			case ScaleDrain:
				drains++
			}
		}
		out += fmt.Sprintf("autoscale: peak %d replicas · %v replica-seconds · %d scale-ups / %d drains\n",
			f.PeakReplicas, f.ReplicaSeconds, ups, drains)
	}
	for _, d := range f.PerDesign {
		out += fmt.Sprintf("design %-14s %d replicas · routed %d · %d reqs · %d tokens · %v · "+
			"TTFT p95 %v · TPOT p95 %v\n",
			d.Design, d.Replicas, d.Routed, d.Requests, d.Tokens, d.Energy,
			units.Seconds(d.TTFT.P95), units.Seconds(d.TPOT.P95))
	}
	return out
}
