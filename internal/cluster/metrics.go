package cluster

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// FleetResult aggregates one cluster run: per-replica serving results plus
// the fleet-level quantities a capacity planner reads — aggregate
// throughput, energy, and latency tail percentiles.
type FleetResult struct {
	System string
	Model  string
	Router string

	// Replicas holds each replica's full serving result, in replica order.
	Replicas []serving.Result
	// Routed is how many requests each replica received.
	Routed []int

	// Requests merges every replica's per-request metrics (arrival-relative
	// latencies), sorted by request ID. Retention is opt-in
	// (Options.RetainRequests): at million-request scale the per-request
	// slice is the run's memory bound, so by default it stays empty and the
	// streaming Agg carries the latency distributions instead.
	Requests []serving.RequestMetrics

	// Stream is the realised arrival stream — every request the fleet
	// actually served, with its concrete arrival instant, sorted by arrival
	// then ID. For closed-loop runs this is where the simulation-dependent
	// follow-up arrivals become concrete, so wrapping it in a
	// workload.Trace replays the exact same traffic open-loop. Retention is
	// opt-in (Options.RetainStream); empty unless the caller asked to keep
	// it for trace export.
	Stream []workload.Request

	// Completed counts the requests the fleet finished — always populated,
	// whether or not the per-request records were retained.
	Completed int
	// Agg is the fleet's streaming latency aggregate: constant-memory
	// quantile sketches fed at each completion and merged from the replicas
	// in replica order. The TTFT/TPOT summaries and the attainment scores
	// derive from it, so they are available at any fleet scale.
	Agg *FleetAggregate

	// Makespan is the instant the last replica finished, on the shared
	// fleet clock.
	Makespan units.Seconds
	// Tokens is the fleet-wide generated token count.
	Tokens int
	// Energy merges every replica's ledger. Replicas still powered on at
	// the fleet's end idle until the makespan (the fleet is decommissioned
	// as a unit), so a statically over-provisioned fleet pays for its idle
	// replicas — the cost autoscaling exists to shed. A drained replica
	// stops accruing at its power-off instant.
	Energy energy.Ledger

	// Preemptions counts fleet-wide evict-and-requeue events (batch-class
	// requests pushed out for interactive arrivals under KV pressure).
	Preemptions int

	// Resilience accounting (all zero for fault-free runs). Faults counts
	// the plan's fault events that actually fired against the fleet;
	// Retries the failover re-injections; FailedRequests the requests that
	// exhausted the retry bound (or had no survivor to land on), sorted by
	// ID. LostTokens is generation sunk on crashed or timed-out attempts
	// (goodput discounts it), FailoverReprefillTokens the context tokens
	// survivors had to re-prefill, Repins the conversations re-homed after
	// their KV-affinity replica died, and ShedArrivals the batch-class
	// admissions parked during brownout windows.
	Faults                  int
	Retries                 int
	FailedRequests          []FailedRequest
	LostTokens              int
	FailoverReprefillTokens int
	Repins                  int
	ShedArrivals            int

	// ReplicaSeconds sums every replica's powered-on span (boot to power-off
	// or makespan) — the fleet's provisioned capacity-time, the denominator
	// of elastic efficiency. PeakReplicas is the most replicas ever powered
	// on concurrently; for a static fleet it equals the replica count and
	// ReplicaSeconds = replicas × makespan.
	ReplicaSeconds units.Seconds
	PeakReplicas   int
	// ScaleEvents is the elastic audit trail (nil for static fleets).
	ScaleEvents []ScaleEvent

	// PerDesign splits the fleet metrics by hardware design, in blueprint
	// order — the comparison a mixed-design fleet exists to make. Nil for
	// homogeneous fleets (PerDesign != nil is the "this fleet was mixed"
	// marker, like ScaleEvents for elasticity).
	PerDesign []DesignMetrics

	// TTFT and TPOT digest the request latency distributions (seconds).
	// TPOT summarises multi-token requests only: single-token requests have
	// no inter-token cadence (their TPOT is 0 by definition).
	// InteractiveTPOT and BatchTPOT split the TPOT digest by priority class
	// (zeros when a class is absent).
	TTFT            stats.Summary
	TPOT            stats.Summary
	InteractiveTPOT stats.Summary
	BatchTPOT       stats.Summary
}

// FailedRequest records one request the fleet terminally failed: it ran
// out of retry budget (Reason "crash" or "timeout" names the final straw),
// or no replica survived to serve it ("no-replicas" when failing fast,
// "unserved" when it was still waiting for a replacement boot at the end of
// the run).
type FailedRequest struct {
	ID       int
	Class    workload.Class
	Attempts int
	Reason   string
	At       units.Seconds
}

// DesignMetrics is one hardware design's share of a mixed fleet's run.
type DesignMetrics struct {
	// Design is the display name of the hardware design.
	Design string
	// Replicas counts the fleet slots that ran this design.
	Replicas int
	// Routed is how many requests the routers sent to this design's
	// replicas; Requests how many completed there.
	Routed   int
	Requests int
	// Tokens and Energy are this design's share of the fleet totals.
	Tokens int
	Energy units.Joules
	// TTFT and TPOT digest this design's request latency distributions
	// (TPOT over multi-token requests only, as in the fleet digest).
	TTFT stats.Summary
	TPOT stats.Summary

	// agg is this design's streaming latency aggregate, merged from its
	// replicas in replica order — the distribution Attainment scores.
	agg *FleetAggregate
}

// Attainment scores the design's completed requests against a per-token SLO
// (serving.SLOAttainment's single-token rule). A design that served nothing
// scores 1 — an idle design violates nothing, the same vacuous rule as
// AttainmentClass — rather than the 0 that would read as a total miss.
func (d DesignMetrics) Attainment(slo workload.SLO) float64 {
	if d.agg == nil || d.agg.Completed == 0 {
		return 1
	}
	return float64(d.agg.metCount(slo)) / float64(d.agg.Completed)
}

// FleetAggregate is the constant-memory streaming form of a fleet's latency
// distributions: one deterministic quantile sketch per digest the summaries
// and attainment scores need, fed at each request completion and merged
// across replicas in replica order. While a run stays within the sketches'
// exact regime (≤ stats.DefaultSketchK samples each, which covers every
// figure reproduction) the derived summaries are bit-identical to the
// retained-slice oracle; beyond it they carry the sketch's documented rank
// error. The scores are serving.SLOMetCount's quantity: a request's score is
// its TPOT, or its total completion latency when it generated at most one
// token (a single token has no inter-token cadence).
type FleetAggregate struct {
	// Completed counts the requests folded in.
	Completed int64 `json:"completed"`
	// TTFT digests time-to-first-token; TPOT the inter-token cadence of
	// multi-token requests, with InteractiveTPOT/BatchTPOT the per-class
	// split (single-token requests have no cadence and are absent).
	TTFT            *stats.Sketch `json:"ttft"`
	TPOT            *stats.Sketch `json:"tpot"`
	InteractiveTPOT *stats.Sketch `json:"interactive_tpot"`
	BatchTPOT       *stats.Sketch `json:"batch_tpot"`
	// InteractiveScore and BatchScore hold every completion's SLO score
	// (per-token rule above), split by priority class so attainment can
	// count either tier or both.
	InteractiveScore *stats.Sketch `json:"interactive_score"`
	BatchScore       *stats.Sketch `json:"batch_score"`
}

func newFleetAggregate() *FleetAggregate {
	return &FleetAggregate{
		TTFT:             stats.NewSketch(),
		TPOT:             stats.NewSketch(),
		InteractiveTPOT:  stats.NewSketch(),
		BatchTPOT:        stats.NewSketch(),
		InteractiveScore: stats.NewSketch(),
		BatchScore:       stats.NewSketch(),
	}
}

// observe folds one completion in.
func (a *FleetAggregate) observe(rm serving.RequestMetrics) {
	a.Completed++
	a.TTFT.Add(rm.TTFT.Seconds())
	score := rm.Completion
	if rm.OutputTokens > 1 {
		score = rm.TPOT
		a.TPOT.Add(rm.TPOT.Seconds())
		if rm.Class == workload.ClassBatch {
			a.BatchTPOT.Add(rm.TPOT.Seconds())
		} else {
			a.InteractiveTPOT.Add(rm.TPOT.Seconds())
		}
	}
	if rm.Class == workload.ClassBatch {
		a.BatchScore.Add(score.Seconds())
	} else {
		a.InteractiveScore.Add(score.Seconds())
	}
}

// merge folds o into a (o is unchanged). Order-sensitive once the sketches
// compact, so the fleet always merges in replica order.
func (a *FleetAggregate) merge(o *FleetAggregate) {
	a.Completed += o.Completed
	a.TTFT.Merge(o.TTFT)
	a.TPOT.Merge(o.TPOT)
	a.InteractiveTPOT.Merge(o.InteractiveTPOT)
	a.BatchTPOT.Merge(o.BatchTPOT)
	a.InteractiveScore.Merge(o.InteractiveScore)
	a.BatchScore.Merge(o.BatchScore)
}

// metCount is the number of completed requests meeting the per-token SLO —
// serving.SLOMetCount evaluated against the score sketches.
func (a *FleetAggregate) metCount(slo workload.SLO) int64 {
	if slo.TokenLatency <= 0 {
		return a.Completed
	}
	x := slo.TokenLatency.Seconds()
	return a.InteractiveScore.CountLE(x) + a.BatchScore.CountLE(x)
}

// scoreSketch picks the score distribution of one priority class.
func (a *FleetAggregate) scoreSketch(class workload.Class) *stats.Sketch {
	if class == workload.ClassBatch {
		return a.BatchScore
	}
	return a.InteractiveScore
}

// aggregate finalises every replica and folds the fleet metrics.
func aggregate(r *fleetRun, want int) (*FleetResult, error) {
	f := &FleetResult{System: r.c.sysName, Model: r.c.cfg.Name, Router: r.c.opt.Router.Name()}
	f.Stream = append([]workload.Request(nil), r.stream...)
	sort.SliceStable(f.Stream, func(i, j int) bool {
		if f.Stream[i].Arrival != f.Stream[j].Arrival {
			return f.Stream[i].Arrival < f.Stream[j].Arrival
		}
		return f.Stream[i].ID < f.Stream[j].ID
	})

	// The makespan is fixed first; replicas still powered on then idle up
	// to it (the fleet is decommissioned as a unit), so trailing idle — and
	// its host energy — lands on the ledger of every replica that was kept
	// on. Stopped replicas froze at their power-off instant.
	for _, rep := range r.reps {
		if t := rep.Now(); t > f.Makespan {
			f.Makespan = t
		}
	}
	for _, rep := range r.reps {
		// Stopped replicas froze at power-off, crashed replicas at the
		// failure instant: neither idles to the makespan.
		if rep.state != repStopped && rep.state != repFailed {
			rep.stepper.AdvanceTo(f.Makespan)
		}
	}

	if r.resil != nil {
		r.resil.closeLedger(f.Makespan)
		f.Faults = r.resil.faults
		f.Retries = r.resil.retried
		f.FailedRequests = append([]FailedRequest(nil), r.resil.failures...)
		sort.Slice(f.FailedRequests, func(i, j int) bool {
			return f.FailedRequests[i].ID < f.FailedRequests[j].ID
		})
		f.LostTokens = r.resil.lostTokens
		f.FailoverReprefillTokens = r.resil.reprefill
		f.Repins = r.resil.repins
		f.ShedArrivals = r.resil.shed
	}

	f.PeakReplicas = len(r.reps)
	if r.scaler != nil {
		f.PeakReplicas = r.scaler.peak
		// Non-nil even when no decision fired: ScaleEvents != nil is the
		// "this fleet was elastic" marker String and callers key on.
		f.ScaleEvents = append(make([]ScaleEvent, 0, len(r.scaler.events)), r.scaler.events...)
	}

	// A mixed fleet additionally splits the metrics per design, in blueprint
	// order.
	type designAcc struct {
		dm  DesignMetrics
		agg *FleetAggregate
	}
	var designOrder []*designAcc
	byDesign := map[string]*designAcc{}
	if r.c.mixed() {
		for _, bp := range r.c.blueprints {
			if byDesign[bp.name] == nil {
				acc := &designAcc{dm: DesignMetrics{Design: bp.name}, agg: newFleetAggregate()}
				byDesign[bp.name] = acc
				designOrder = append(designOrder, acc)
			}
		}
	}

	// The latency distributions were folded into each replica's streaming
	// aggregate at completion time (fleetRun.harvest); here they only merge,
	// in replica order, so the fleet digest is identical however the run was
	// driven. The per-request records are re-collected only on request.
	f.Agg = newFleetAggregate()
	for _, rep := range r.reps {
		res := rep.stepper.Finalize()
		f.Replicas = append(f.Replicas, res)
		f.Routed = append(f.Routed, rep.routed)
		f.Tokens += res.Tokens
		f.Preemptions += res.Preemptions
		f.Energy.Merge(&res.Energy)
		end := f.Makespan
		if rep.state == repStopped || rep.state == repFailed {
			end = rep.stopAt
		}
		if span := end - rep.bootAt; span > 0 {
			f.ReplicaSeconds += span
		}
		f.Agg.merge(rep.agg)
		if acc := byDesign[rep.design]; acc != nil {
			acc.dm.Replicas++
			acc.dm.Routed += rep.routed
			acc.dm.Tokens += res.Tokens
			acc.dm.Energy += res.Energy.Total()
			acc.agg.merge(rep.agg)
		}
		if r.c.opt.RetainRequests {
			f.Requests = append(f.Requests, res.Requests...)
		}
	}
	f.Completed = int(f.Agg.Completed)
	for _, acc := range designOrder {
		acc.dm.Requests = int(acc.agg.Completed)
		acc.dm.TTFT = acc.agg.TTFT.Summary()
		acc.dm.TPOT = acc.agg.TPOT.Summary()
		acc.dm.agg = acc.agg
		f.PerDesign = append(f.PerDesign, acc.dm)
	}
	// Every injected request must be terminally accounted exactly once:
	// completed (harvested into the aggregate) or failed (FailedRequests),
	// never both, never neither.
	if f.Completed+len(f.FailedRequests) != want {
		return nil, fmt.Errorf("cluster: %d of %d requests terminally accounted (%d completed + %d failed)",
			f.Completed+len(f.FailedRequests), want, f.Completed, len(f.FailedRequests))
	}
	if r.c.opt.RetainRequests {
		if len(f.Requests) != f.Completed {
			return nil, fmt.Errorf("cluster: retained %d request records for %d completions",
				len(f.Requests), f.Completed)
		}
		sort.Slice(f.Requests, func(i, j int) bool { return f.Requests[i].ID < f.Requests[j].ID })
	}
	f.TTFT = f.Agg.TTFT.Summary()
	f.TPOT = f.Agg.TPOT.Summary()
	f.InteractiveTPOT = f.Agg.InteractiveTPOT.Summary()
	f.BatchTPOT = f.Agg.BatchTPOT.Summary()
	return f, nil
}

// TokensPerSecond is the fleet's aggregate decode goodput over the
// makespan: generation sunk on crashed or timed-out attempts is real work
// the hardware did, so it stays in Tokens and in the energy ledger, but it
// reached no client and does not count as throughput.
func (f *FleetResult) TokensPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(f.Tokens-f.LostTokens) / f.Makespan.Seconds()
}

// RequestsPerSecond is the completed-request rate over the makespan.
func (f *FleetResult) RequestsPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(f.Completed) / f.Makespan.Seconds()
}

// Attainment scores the completed requests against a per-token SLO (see
// serving.SLOAttainment for the single-token rule), evaluated on the
// streaming aggregate so it needs no retained records. Failed and timed-out
// requests never met any latency target: they stay in the denominator as
// misses rather than silently vanishing from the score. An empty window —
// nothing completed, nothing failed — scores 1, the vacuous truth
// AttainmentClass already used for an absent tier, so a zero-request edge
// can never inject a misleading 0 (or a 0/0 NaN) into exported JSON.
func (f *FleetResult) Attainment(slo workload.SLO) float64 {
	total := f.Completed + len(f.FailedRequests)
	if total == 0 {
		return 1
	}
	return float64(f.Agg.metCount(slo)) / float64(total)
}

// AttainmentClass scores one priority class against the SLO, counting the
// class's failed requests as misses (1 when the class is entirely absent —
// an empty tier violates nothing).
func (f *FleetResult) AttainmentClass(slo workload.SLO, class workload.Class) float64 {
	sk := f.Agg.scoreSketch(class)
	met, n := sk.Count(), sk.Count()
	if slo.TokenLatency > 0 {
		met = sk.CountLE(slo.TokenLatency.Seconds())
	}
	for _, fr := range f.FailedRequests {
		if fr.Class == class {
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return float64(met) / float64(n)
}

// Availability is the fraction of injected requests that completed at all —
// the coarse measure failover exists to defend. An empty window (every
// arrival shed, or no arrivals at all) is vacuously available: nothing was
// asked of the fleet and nothing was refused, so the score is 1, not a 0
// that would read as a total outage in exported JSON.
func (f *FleetResult) Availability() float64 {
	total := f.Completed + len(f.FailedRequests)
	if total == 0 {
		return 1
	}
	return float64(f.Completed) / float64(total)
}

// JoulesPerToken is the fleet's energy cost per generated token — with the
// decommission-at-makespan accounting, the figure an elastic fleet improves
// by shedding idle replicas.
func (f *FleetResult) JoulesPerToken() float64 {
	if f.Tokens == 0 {
		return 0
	}
	return f.Energy.Total().Joules() / float64(f.Tokens)
}

// String renders the per-replica table and the fleet digest.
func (f *FleetResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("%s fleet · %s · router %s", f.System, f.Model, f.Router),
		"replica", "routed", "tokens", "iters", "busy", "idle", "energy")
	for i, r := range f.Replicas {
		tb.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", f.Routed[i]),
			fmt.Sprintf("%d", r.Tokens),
			fmt.Sprintf("%d", r.Iterations),
			(r.PrefillTime + r.DecodeTime).String(),
			r.IdleTime.String(),
			r.Energy.Total().String(),
		)
	}
	out := tb.String() + fmt.Sprintf(
		"makespan %v · %d tokens (%.0f tok/s, %.2f req/s) · energy %v\n"+
			"TTFT p50/p95/p99 %v / %v / %v · TPOT p50/p95/p99 %v / %v / %v\n",
		f.Makespan, f.Tokens, f.TokensPerSecond(), f.RequestsPerSecond(), f.Energy.Total(),
		units.Seconds(f.TTFT.P50), units.Seconds(f.TTFT.P95), units.Seconds(f.TTFT.P99),
		units.Seconds(f.TPOT.P50), units.Seconds(f.TPOT.P95), units.Seconds(f.TPOT.P99))
	if f.Preemptions > 0 {
		out += fmt.Sprintf("preemptions %d · interactive TPOT p95 %v · batch TPOT p95 %v\n",
			f.Preemptions, units.Seconds(f.InteractiveTPOT.P95), units.Seconds(f.BatchTPOT.P95))
	}
	if f.Faults > 0 || len(f.FailedRequests) > 0 {
		out += fmt.Sprintf("faults %d · retries %d · failed %d · availability %.3f · "+
			"lost tokens %d · re-prefill %d · re-pins %d · shed %d\n",
			f.Faults, f.Retries, len(f.FailedRequests), f.Availability(),
			f.LostTokens, f.FailoverReprefillTokens, f.Repins, f.ShedArrivals)
	}
	if f.ScaleEvents != nil {
		ups, drains := 0, 0
		for _, ev := range f.ScaleEvents {
			switch ev.Action {
			case ScaleUp:
				ups++
			case ScaleDrain:
				drains++
			}
		}
		out += fmt.Sprintf("autoscale: peak %d replicas · %v replica-seconds · %d scale-ups / %d drains\n",
			f.PeakReplicas, f.ReplicaSeconds, ups, drains)
	}
	for _, d := range f.PerDesign {
		out += fmt.Sprintf("design %-14s %d replicas · routed %d · %d reqs · %d tokens · %v · "+
			"TTFT p95 %v · TPOT p95 %v\n",
			d.Design, d.Replicas, d.Routed, d.Requests, d.Tokens, d.Energy,
			units.Seconds(d.TTFT.P95), units.Seconds(d.TPOT.P95))
	}
	return out
}
