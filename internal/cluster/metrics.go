package cluster

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// FleetResult aggregates one cluster run: per-replica serving results plus
// the fleet-level quantities a capacity planner reads — aggregate
// throughput, energy, and latency tail percentiles.
type FleetResult struct {
	System string
	Model  string
	Router string

	// Replicas holds each replica's full serving result, in replica order.
	Replicas []serving.Result
	// Routed is how many requests each replica received.
	Routed []int

	// Requests merges every replica's per-request metrics (arrival-relative
	// latencies), sorted by request ID.
	Requests []serving.RequestMetrics

	// Stream is the realised arrival stream — every request the fleet
	// actually served, with its concrete arrival instant, sorted by arrival
	// then ID. For closed-loop runs this is where the simulation-dependent
	// follow-up arrivals become concrete, so wrapping it in a
	// workload.Trace replays the exact same traffic open-loop.
	Stream []workload.Request

	// Makespan is the instant the last replica finished, on the shared
	// fleet clock.
	Makespan units.Seconds
	// Tokens is the fleet-wide generated token count.
	Tokens int
	// Energy merges every replica's ledger. Replicas still powered on at
	// the fleet's end idle until the makespan (the fleet is decommissioned
	// as a unit), so a statically over-provisioned fleet pays for its idle
	// replicas — the cost autoscaling exists to shed. A drained replica
	// stops accruing at its power-off instant.
	Energy energy.Ledger

	// Preemptions counts fleet-wide evict-and-requeue events (batch-class
	// requests pushed out for interactive arrivals under KV pressure).
	Preemptions int

	// ReplicaSeconds sums every replica's powered-on span (boot to power-off
	// or makespan) — the fleet's provisioned capacity-time, the denominator
	// of elastic efficiency. PeakReplicas is the most replicas ever powered
	// on concurrently; for a static fleet it equals the replica count and
	// ReplicaSeconds = replicas × makespan.
	ReplicaSeconds units.Seconds
	PeakReplicas   int
	// ScaleEvents is the elastic audit trail (nil for static fleets).
	ScaleEvents []ScaleEvent

	// PerDesign splits the fleet metrics by hardware design, in blueprint
	// order — the comparison a mixed-design fleet exists to make. Nil for
	// homogeneous fleets (PerDesign != nil is the "this fleet was mixed"
	// marker, like ScaleEvents for elasticity).
	PerDesign []DesignMetrics

	// TTFT and TPOT digest the request latency distributions (seconds).
	// TPOT summarises multi-token requests only: single-token requests have
	// no inter-token cadence (their TPOT is 0 by definition).
	// InteractiveTPOT and BatchTPOT split the TPOT digest by priority class
	// (zeros when a class is absent).
	TTFT            stats.Summary
	TPOT            stats.Summary
	InteractiveTPOT stats.Summary
	BatchTPOT       stats.Summary
}

// DesignMetrics is one hardware design's share of a mixed fleet's run.
type DesignMetrics struct {
	// Design is the display name of the hardware design.
	Design string
	// Replicas counts the fleet slots that ran this design.
	Replicas int
	// Routed is how many requests the routers sent to this design's
	// replicas; Requests how many completed there.
	Routed   int
	Requests int
	// Tokens and Energy are this design's share of the fleet totals.
	Tokens int
	Energy units.Joules
	// TTFT and TPOT digest this design's request latency distributions
	// (TPOT over multi-token requests only, as in the fleet digest).
	TTFT stats.Summary
	TPOT stats.Summary

	// metrics holds the per-request latencies served by this design, for
	// Attainment.
	metrics []serving.RequestMetrics
}

// Attainment scores the design's requests against a per-token SLO.
func (d DesignMetrics) Attainment(slo workload.SLO) float64 {
	return serving.SLOAttainment(d.metrics, slo)
}

// aggregate finalises every replica and folds the fleet metrics.
func aggregate(r *fleetRun, want int) (*FleetResult, error) {
	f := &FleetResult{System: r.c.sysName, Model: r.c.cfg.Name, Router: r.c.opt.Router.Name()}
	f.Stream = append([]workload.Request(nil), r.stream...)
	sort.SliceStable(f.Stream, func(i, j int) bool {
		if f.Stream[i].Arrival != f.Stream[j].Arrival {
			return f.Stream[i].Arrival < f.Stream[j].Arrival
		}
		return f.Stream[i].ID < f.Stream[j].ID
	})

	// The makespan is fixed first; replicas still powered on then idle up
	// to it (the fleet is decommissioned as a unit), so trailing idle — and
	// its host energy — lands on the ledger of every replica that was kept
	// on. Stopped replicas froze at their power-off instant.
	for _, rep := range r.reps {
		if t := rep.Now(); t > f.Makespan {
			f.Makespan = t
		}
	}
	for _, rep := range r.reps {
		if rep.state != repStopped {
			rep.stepper.AdvanceTo(f.Makespan)
		}
	}

	f.PeakReplicas = len(r.reps)
	if r.scaler != nil {
		f.PeakReplicas = r.scaler.peak
		// Non-nil even when no decision fired: ScaleEvents != nil is the
		// "this fleet was elastic" marker String and callers key on.
		f.ScaleEvents = append(make([]ScaleEvent, 0, len(r.scaler.events)), r.scaler.events...)
	}

	// A mixed fleet additionally splits the metrics per design, in blueprint
	// order.
	type designAcc struct {
		dm    DesignMetrics
		ttfts []float64
		tpots []float64
	}
	var designOrder []*designAcc
	byDesign := map[string]*designAcc{}
	if r.c.mixed() {
		for _, bp := range r.c.blueprints {
			if byDesign[bp.name] == nil {
				acc := &designAcc{dm: DesignMetrics{Design: bp.name}}
				byDesign[bp.name] = acc
				designOrder = append(designOrder, acc)
			}
		}
	}

	var ttfts, tpots, tpotsInteractive, tpotsBatch []float64
	for _, rep := range r.reps {
		res := rep.stepper.Finalize()
		f.Replicas = append(f.Replicas, res)
		f.Routed = append(f.Routed, rep.routed)
		f.Tokens += res.Tokens
		f.Preemptions += res.Preemptions
		f.Energy.Merge(&res.Energy)
		end := f.Makespan
		if rep.state == repStopped {
			end = rep.stopAt
		}
		if span := end - rep.bootAt; span > 0 {
			f.ReplicaSeconds += span
		}
		acc := byDesign[rep.design]
		if acc != nil {
			acc.dm.Replicas++
			acc.dm.Routed += rep.routed
			acc.dm.Tokens += res.Tokens
			acc.dm.Energy += res.Energy.Total()
		}
		for _, rm := range res.Requests {
			f.Requests = append(f.Requests, rm)
			ttfts = append(ttfts, rm.TTFT.Seconds())
			if rm.OutputTokens > 1 {
				tpots = append(tpots, rm.TPOT.Seconds())
				if rm.Class == workload.ClassBatch {
					tpotsBatch = append(tpotsBatch, rm.TPOT.Seconds())
				} else {
					tpotsInteractive = append(tpotsInteractive, rm.TPOT.Seconds())
				}
			}
			if acc != nil {
				acc.dm.metrics = append(acc.dm.metrics, rm)
				acc.ttfts = append(acc.ttfts, rm.TTFT.Seconds())
				if rm.OutputTokens > 1 {
					acc.tpots = append(acc.tpots, rm.TPOT.Seconds())
				}
			}
		}
	}
	for _, acc := range designOrder {
		acc.dm.Requests = len(acc.dm.metrics)
		acc.dm.TTFT = stats.Summarize(acc.ttfts)
		acc.dm.TPOT = stats.Summarize(acc.tpots)
		f.PerDesign = append(f.PerDesign, acc.dm)
	}
	if len(f.Requests) != want {
		return nil, fmt.Errorf("cluster: %d of %d requests completed", len(f.Requests), want)
	}
	sort.Slice(f.Requests, func(i, j int) bool { return f.Requests[i].ID < f.Requests[j].ID })
	f.TTFT = stats.Summarize(ttfts)
	f.TPOT = stats.Summarize(tpots)
	f.InteractiveTPOT = stats.Summarize(tpotsInteractive)
	f.BatchTPOT = stats.Summarize(tpotsBatch)
	return f, nil
}

// TokensPerSecond is the fleet's aggregate decode throughput over the
// makespan.
func (f *FleetResult) TokensPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(f.Tokens) / f.Makespan.Seconds()
}

// RequestsPerSecond is the completed-request rate over the makespan.
func (f *FleetResult) RequestsPerSecond() float64 {
	if f.Makespan <= 0 {
		return 0
	}
	return float64(len(f.Requests)) / f.Makespan.Seconds()
}

// Attainment scores the merged request set against a per-token SLO (see
// serving.SLOAttainment for the single-token rule).
func (f *FleetResult) Attainment(slo workload.SLO) float64 {
	return serving.SLOAttainment(f.Requests, slo)
}

// AttainmentClass scores one priority class against the SLO (1 when the
// class is absent — an empty tier violates nothing).
func (f *FleetResult) AttainmentClass(slo workload.SLO, class workload.Class) float64 {
	return serving.SLOAttainmentClass(f.Requests, slo, class)
}

// JoulesPerToken is the fleet's energy cost per generated token — with the
// decommission-at-makespan accounting, the figure an elastic fleet improves
// by shedding idle replicas.
func (f *FleetResult) JoulesPerToken() float64 {
	if f.Tokens == 0 {
		return 0
	}
	return f.Energy.Total().Joules() / float64(f.Tokens)
}

// String renders the per-replica table and the fleet digest.
func (f *FleetResult) String() string {
	tb := stats.NewTable(
		fmt.Sprintf("%s fleet · %s · router %s", f.System, f.Model, f.Router),
		"replica", "routed", "tokens", "iters", "busy", "idle", "energy")
	for i, r := range f.Replicas {
		tb.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", f.Routed[i]),
			fmt.Sprintf("%d", r.Tokens),
			fmt.Sprintf("%d", r.Iterations),
			(r.PrefillTime + r.DecodeTime).String(),
			r.IdleTime.String(),
			r.Energy.Total().String(),
		)
	}
	out := tb.String() + fmt.Sprintf(
		"makespan %v · %d tokens (%.0f tok/s, %.2f req/s) · energy %v\n"+
			"TTFT p50/p95/p99 %v / %v / %v · TPOT p50/p95/p99 %v / %v / %v\n",
		f.Makespan, f.Tokens, f.TokensPerSecond(), f.RequestsPerSecond(), f.Energy.Total(),
		units.Seconds(f.TTFT.P50), units.Seconds(f.TTFT.P95), units.Seconds(f.TTFT.P99),
		units.Seconds(f.TPOT.P50), units.Seconds(f.TPOT.P95), units.Seconds(f.TPOT.P99))
	if f.Preemptions > 0 {
		out += fmt.Sprintf("preemptions %d · interactive TPOT p95 %v · batch TPOT p95 %v\n",
			f.Preemptions, units.Seconds(f.InteractiveTPOT.P95), units.Seconds(f.BatchTPOT.P95))
	}
	if f.ScaleEvents != nil {
		ups, drains := 0, 0
		for _, ev := range f.ScaleEvents {
			switch ev.Action {
			case ScaleUp:
				ups++
			case ScaleDrain:
				drains++
			}
		}
		out += fmt.Sprintf("autoscale: peak %d replicas · %v replica-seconds · %d scale-ups / %d drains\n",
			f.PeakReplicas, f.ReplicaSeconds, ups, drains)
	}
	for _, d := range f.PerDesign {
		out += fmt.Sprintf("design %-14s %d replicas · routed %d · %d reqs · %d tokens · %v · "+
			"TTFT p95 %v · TPOT p95 %v\n",
			d.Design, d.Replicas, d.Routed, d.Requests, d.Tokens, d.Energy,
			units.Seconds(d.TTFT.P95), units.Seconds(d.TPOT.P95))
	}
	return out
}
