package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/workload"
)

// Fleet-level fast-path equivalence: macro-stepping under the event-kernel
// horizon, the shared cost table, and the O(1) router signals must leave the
// whole FleetResult — every replica's Result, the realised stream, the
// latency digests — deep-equal to the reference decode path.

func runFleet(t *testing.T, mode serving.FastPathMode, tlp int, drive func(*Cluster) (*FleetResult, error)) *FleetResult {
	t.Helper()
	opt := serving.DefaultOptions(tlp)
	opt.FastPath = mode
	cl, err := NewByName("PAPI", model.OPT30B(), Options{
		Replicas: 3,
		MaxBatch: 6,
		Router:   LeastOutstanding(),
		Serving:  opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := drive(cl)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFastPathEquivalenceFleetOpenLoop(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(40, 60, 23)
	for _, tlp := range []int{1, 4} {
		fast := runFleet(t, serving.FastPathOn, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.Run(reqs) })
		ref := runFleet(t, serving.FastPathOff, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.Run(reqs) })
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("open-loop fleet TLP=%d diverged:\n fast: %+v\n  ref: %+v", tlp, fast, ref)
		}
	}
}

// TestFastPathEquivalenceFleetTiered runs the flagship tiered-diurnal stream
// — the regime PR 10's priority-aware macro windows un-fallbacked — through
// a fleet on both decode paths and both TLP regimes.
func TestFastPathEquivalenceFleetTiered(t *testing.T) {
	reqs := tieredStream(t, 72, 37)
	for _, tlp := range []int{1, 4} {
		fast := runFleet(t, serving.FastPathOn, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.Run(reqs) })
		ref := runFleet(t, serving.FastPathOff, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.Run(reqs) })
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("tiered fleet TLP=%d diverged:\n fast: %+v\n  ref: %+v", tlp, fast, ref)
		}
	}
}

func TestFastPathEquivalenceFleetClosedLoop(t *testing.T) {
	sc, err := workload.ScenarioByName("chat-multiturn")
	if err != nil {
		t.Skipf("no multi-turn scenario registered: %v", err)
	}
	plan, err := sc.Plan(12, 29)
	if err != nil {
		t.Fatal(err)
	}
	for _, tlp := range []int{1, 4} {
		fast := runFleet(t, serving.FastPathOn, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.RunPlan(plan) })
		ref := runFleet(t, serving.FastPathOff, tlp, func(cl *Cluster) (*FleetResult, error) { return cl.RunPlan(plan) })
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("closed-loop fleet TLP=%d diverged:\n fast: %+v\n  ref: %+v", tlp, fast, ref)
		}
	}
}
