package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func mustRunOpts(t *testing.T, opt Options, reqs []workload.Request) *FleetResult {
	t.Helper()
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// auditLedger enforces the terminal-accounting invariant: every injected
// request resolves exactly once — completed or failed, never both, never
// neither.
func auditLedger(t *testing.T, f *FleetResult, want int) {
	t.Helper()
	seen := map[int]string{}
	for _, rm := range f.Requests {
		if prior, dup := seen[rm.ID]; dup {
			t.Fatalf("request %d accounted twice (%s, completed)", rm.ID, prior)
		}
		seen[rm.ID] = "completed"
	}
	for _, fr := range f.FailedRequests {
		if prior, dup := seen[fr.ID]; dup {
			t.Fatalf("request %d accounted twice (%s, failed %q)", fr.ID, prior, fr.Reason)
		}
		seen[fr.ID] = "failed"
	}
	if len(seen) != want {
		t.Fatalf("%d of %d requests terminally accounted", len(seen), want)
	}
}

// A nil plan, an empty plan, and a plan whose every fault misses the fleet
// must all be invisible: the FleetResult is deeply equal to the fault-free
// run on both decode paths.
func TestFaultOffEquivalence(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	for _, mode := range []serving.FastPathMode{serving.FastPathOn, serving.FastPathOff} {
		run := func(plan *faults.Plan) *FleetResult {
			opt := testOptions(2, LeastOutstanding())
			opt.Serving.FastPath = mode
			opt.Faults = plan
			return mustRunOpts(t, opt, reqs)
		}
		base := run(nil)
		for name, plan := range map[string]*faults.Plan{
			"empty": {Name: "quiet"},
			"miss":  {Name: "miss", Faults: []faults.Fault{{Kind: faults.KindStraggler, Replica: 99, At: 0.1, Duration: 1, Factor: 3}}},
		} {
			if got := run(plan); !reflect.DeepEqual(base, got) {
				t.Fatalf("fastpath %v: %s plan perturbed the fault-free result", mode, name)
			}
		}
	}
}

// A mid-run crash fails over the dead replica's outstanding requests to the
// survivor: with retry budget, every request still completes, the grown
// contexts are re-prefilled, and the dead replica's clock stays frozen at
// the failure instant.
func TestCrashFailover(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	opt := testOptions(2, LeastOutstanding())
	opt.Faults = &faults.Plan{Name: "crash", Faults: []faults.Fault{
		{Kind: faults.KindCrash, Replica: 0, At: 0.8},
	}}
	opt.Retries = 2
	opt.RetryBackoff = units.Milliseconds(50)
	f := mustRunOpts(t, opt, reqs)
	auditLedger(t, f, len(reqs))
	if len(f.FailedRequests) != 0 {
		t.Fatalf("with retry budget no request should fail, got %d: %+v", len(f.FailedRequests), f.FailedRequests[0])
	}
	if f.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", f.Faults)
	}
	if f.Retries == 0 {
		t.Fatal("crash with outstanding work produced no retries")
	}
	if f.FailoverReprefillTokens == 0 {
		t.Fatal("failover re-prefilled nothing")
	}
	if got := f.Availability(); got != 1 {
		t.Fatalf("Availability = %v, want 1", got)
	}
	// The survivor served everything injected after the crash.
	if f.Routed[1] <= f.Routed[0] {
		t.Fatalf("survivor routed %d ≤ dead replica's %d", f.Routed[1], f.Routed[0])
	}
	// Determinism: the same plan replays the identical failure trace.
	g := mustRunOpts(t, opt, reqs)
	if !reflect.DeepEqual(f, g) {
		t.Fatal("crash failover run is not deterministic")
	}
}

// The same faulted run must be bit-identical across the fast and reference
// decode paths: fault edges are kernel events, and macro-stepping never
// crosses a kernel event.
func TestCrashFailoverFastMatchesReference(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	run := func(mode serving.FastPathMode) *FleetResult {
		opt := testOptions(2, LeastOutstanding())
		opt.Serving.FastPath = mode
		opt.Faults = &faults.Plan{Name: "mix", Faults: []faults.Fault{
			{Kind: faults.KindStraggler, Replica: 1, At: 0.2, Duration: 0.5, Factor: 2.5},
			{Kind: faults.KindCrash, Replica: 0, At: 0.8},
		}}
		opt.Retries = 2
		opt.RetryBackoff = units.Milliseconds(50)
		return mustRunOpts(t, opt, reqs)
	}
	fast := run(serving.FastPathOn)
	ref := run(serving.FastPathOff)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatal("faulted fleet run diverged between fast and reference decode paths")
	}
}

// With no retry budget, a crash's casualties terminally fail — and they must
// stay in every metric denominator as misses rather than silently vanish.
func TestCrashNoRetriesDenominator(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	opt := testOptions(2, LeastOutstanding())
	opt.Faults = &faults.Plan{Name: "crash", Faults: []faults.Fault{
		{Kind: faults.KindCrash, Replica: 0, At: 0.8},
	}}
	f := mustRunOpts(t, opt, reqs)
	auditLedger(t, f, len(reqs))
	if len(f.FailedRequests) == 0 {
		t.Fatal("crash with zero retries failed nothing")
	}
	for _, fr := range f.FailedRequests {
		if fr.Reason != "crash" || fr.Attempts != 1 {
			t.Fatalf("unexpected failure record %+v", fr)
		}
	}
	// Regression pin (the pre-resilience bug): under an SLO so generous that
	// every *completed* request meets it, attainment must still be
	// completed/injected — failed requests are misses, not no-shows.
	generous := workload.SLO{TokenLatency: units.Seconds(1e6)}
	wantAtt := float64(len(f.Requests)) / float64(len(reqs))
	if got := f.Attainment(generous); got != wantAtt {
		t.Fatalf("Attainment = %v, want %v (failed requests must stay in the denominator)", got, wantAtt)
	}
	if wantAtt >= 1 {
		t.Fatal("test lost its teeth: no failed requests in the denominator")
	}
	if got, want := f.Availability(), wantAtt; got != want {
		t.Fatalf("Availability = %v, want %v", got, want)
	}
	// Per-class attainment counts the class's failures the same way.
	nInt, failedInt := 0, 0
	for _, r := range reqs {
		if r.Class == workload.ClassInteractive {
			nInt++
		}
	}
	for _, fr := range f.FailedRequests {
		if fr.Class == workload.ClassInteractive {
			failedInt++
		}
	}
	wantClass := float64(nInt-failedInt) / float64(nInt)
	if got := f.AttainmentClass(generous, workload.ClassInteractive); got != wantClass {
		t.Fatalf("AttainmentClass = %v, want %v", got, wantClass)
	}
	// Goodput discounts the generation sunk on the dead replica.
	if f.LostTokens == 0 {
		t.Fatal("crash sank no tokens")
	}
	wantTPS := float64(f.Tokens-f.LostTokens) / f.Makespan.Seconds()
	if got := f.TokensPerSecond(); got != wantTPS {
		t.Fatalf("TokensPerSecond = %v, want goodput %v", got, wantTPS)
	}
}

// A per-attempt timeout cancels a stuck request and retries it under the
// same bounded budget; exhausting the budget terminally fails it with the
// timeout reason.
func TestTimeoutRetry(t *testing.T) {
	// One overloaded replica: mean completion ≈ 1.5 s, so a 1 s timeout
	// bites the queue's tail.
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	opt := testOptions(1, RoundRobin())
	opt.Timeout = units.Seconds(1)
	opt.Retries = 1
	opt.RetryBackoff = units.Milliseconds(20)
	f := mustRunOpts(t, opt, reqs)
	auditLedger(t, f, len(reqs))
	if f.Retries == 0 {
		t.Fatal("a 1s timeout against a 1.5s mean completion retried nothing")
	}
	if len(f.FailedRequests) == 0 {
		t.Fatal("expected some requests to exhaust the single retry")
	}
	for _, fr := range f.FailedRequests {
		if fr.Reason != "timeout" || fr.Attempts != 2 {
			t.Fatalf("unexpected failure record %+v", fr)
		}
	}
	g := mustRunOpts(t, opt, reqs)
	if !reflect.DeepEqual(f, g) {
		t.Fatal("timeout-retry run is not deterministic")
	}
}

// A straggler window slows its replica — and only its replica — for its
// duration: the run stretches versus the fault-free baseline, and the
// window's effect replays deterministically.
func TestStragglerSlowsReplica(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(32, 60, 5)
	base := mustRunOpts(t, testOptions(2, LeastOutstanding()), reqs)
	opt := testOptions(2, LeastOutstanding())
	opt.Faults = &faults.Plan{Name: "slow", Faults: []faults.Fault{
		{Kind: faults.KindStraggler, Replica: 0, At: 0.1, Duration: 2, Factor: 3},
	}}
	f := mustRunOpts(t, opt, reqs)
	auditLedger(t, f, len(reqs))
	if len(f.FailedRequests) != 0 {
		t.Fatalf("a straggler window failed %d requests", len(f.FailedRequests))
	}
	if f.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", f.Faults)
	}
	if f.Replicas[0].DecodeTime <= base.Replicas[0].DecodeTime {
		t.Fatalf("straggler decode %v not slower than baseline %v",
			f.Replicas[0].DecodeTime, base.Replicas[0].DecodeTime)
	}
	if f.TPOT.P99 <= base.TPOT.P99 {
		t.Fatalf("straggler TPOT p99 %v not above baseline %v", f.TPOT.P99, base.TPOT.P99)
	}
}

// A brownout parks batch-class arrivals for its duration (interactive
// traffic keeps the thinned bandwidth) and releases them when the window
// lifts: nothing is lost, and the shed count is visible.
func TestBrownoutShedsBatchArrivals(t *testing.T) {
	reqs := workload.AssignClasses(workload.GeneralQA().Poisson(32, 60, 5), 0.5, 3)
	opt := testOptions(2, LeastOutstanding())
	opt.Faults = &faults.Plan{Name: "brownout", Faults: []faults.Fault{
		{Kind: faults.KindBrownout, At: 0.1, Duration: 0.25, Factor: 2},
	}}
	f := mustRunOpts(t, opt, reqs)
	auditLedger(t, f, len(reqs))
	if f.ShedArrivals == 0 {
		t.Fatal("a brownout across the arrival burst shed nothing")
	}
	if len(f.FailedRequests) != 0 {
		t.Fatalf("parked arrivals must not fail, got %d failures", len(f.FailedRequests))
	}
	if len(f.Stream) != len(reqs) {
		t.Fatalf("realised stream holds %d of %d arrivals", len(f.Stream), len(reqs))
	}
	// Parked batch arrivals cannot start before the window lifts.
	end := units.Seconds(0.35)
	for _, rm := range f.Requests {
		if rm.Class != workload.ClassBatch {
			continue
		}
		for _, req := range reqs {
			if req.ID == rm.ID && req.Arrival >= 0.1 && req.Arrival < end &&
				req.Arrival+rm.TTFT < end {
				t.Fatalf("batch request %d started inside the brownout window", rm.ID)
			}
		}
	}
}

// Property harness: randomized MTBF plans, retry budgets, and timeouts over
// both router and fleet shapes must always keep the terminal-accounting
// ledger exact — every injected request resolves exactly once — and replay
// deterministically.
func TestFaultLedgerProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	reqs := workload.AssignClasses(workload.GeneralQA().Poisson(40, 40, 11), 0.4, 7)
	for seq := 0; seq < 6; seq++ {
		plan, err := faults.GenerateMTBF(faults.MTBFOptions{
			Name:     "mtbf",
			Replicas: 2,
			Horizon:  units.Seconds(2),
			MTBF:     units.Seconds(0.7),
			MTTR:     units.Seconds(0.4),
			Seed:     rng.Int63n(1 << 30),
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := testOptions(2, LeastOutstanding())
		opt.Faults = &plan
		opt.Retries = int(rng.Int63n(3))
		opt.RetryBackoff = units.Milliseconds(float64(rng.Int63n(80)))
		if rng.Int63n(2) == 0 {
			opt.Timeout = units.Seconds(1.5)
		}
		f := mustRunOpts(t, opt, reqs)
		auditLedger(t, f, len(reqs))
		g := mustRunOpts(t, opt, reqs)
		if !reflect.DeepEqual(f, g) {
			t.Fatalf("seq %d: faulted run is not deterministic", seq)
		}
	}
}

// Crashing the replica that holds pinned conversations re-homes them: the
// lost turn retries on a survivor, follow-ups chase the new pin, and every
// turn is still terminally accounted.
func TestConversationFailoverRepins(t *testing.T) {
	convs := chatPlan(t, 12, 42)
	want := workload.TotalTurns(convs)
	opt := testOptions(2, RoundRobin())
	opt.Faults = &faults.Plan{Name: "crash", Faults: []faults.Fault{
		{Kind: faults.KindCrash, Replica: 0, At: 1.5},
	}}
	opt.Retries = 2
	opt.RetryBackoff = units.Milliseconds(50)
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.RunPlan(convs)
	if err != nil {
		t.Fatal(err)
	}
	auditLedger(t, f, want)
	if len(f.FailedRequests) != 0 {
		t.Fatalf("with retry budget no turn should fail, got %+v", f.FailedRequests)
	}
	if f.Repins == 0 {
		t.Fatal("crashing a replica with pinned conversations re-pinned nothing")
	}
}

// Crash-during-drain: the autoscaler is mid-drain on one replica when
// another crashes. The drained replica still completes its in-flight work,
// the crash's casualties fail over, and — with headroom freed by the dead
// replica — the autoscaler may boot a replacement. The ledger stays exact
// through the interaction.
func TestCrashDuringDrainAndReplacement(t *testing.T) {
	// Front-loaded burst then silence: the autoscaler drains into the quiet
	// tail, and the crash lands mid-drain.
	burst := workload.GeneralQA().Poisson(64, 80, 9)
	slo := workload.SLO{TokenLatency: units.Milliseconds(12)}
	opt := testOptions(3, LeastOutstanding())
	opt.Autoscale = &AutoscaleOptions{
		Min: 1, Max: 4, Interval: units.Seconds(0.25),
		WarmUp: units.Seconds(0.5), CoolDown: units.Seconds(0.25),
		SLO: slo, UpTPOTFactor: 0.75, UpQueue: 4, UpArrivalRate: 1e9, DownQueue: 1,
	}
	opt.Faults = &faults.Plan{Name: "mid-drain", Faults: []faults.Fault{
		{Kind: faults.KindCrash, Replica: 1, At: 1.4},
	}}
	opt.Retries = 2
	opt.RetryBackoff = units.Milliseconds(50)
	f := mustRunOpts(t, opt, burst)
	auditLedger(t, f, len(burst))
	if f.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", f.Faults)
	}
	g := mustRunOpts(t, opt, burst)
	if !reflect.DeepEqual(f, g) {
		t.Fatal("crash-during-drain run is not deterministic")
	}
}

// Options validation rejects malformed resilience settings.
func TestResilienceOptionsValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Options){
		"negative retries": func(o *Options) { o.Retries = -1 },
		"negative backoff": func(o *Options) { o.RetryBackoff = -units.Seconds(1) },
		"negative timeout": func(o *Options) { o.Timeout = -units.Seconds(1) },
		"invalid plan": func(o *Options) {
			o.Faults = &faults.Plan{Name: "bad", Faults: []faults.Fault{{Kind: "meteor", At: 1}}}
		},
	} {
		opt := testOptions(1, RoundRobin())
		mutate(&opt)
		if _, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}
