package cluster

import (
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/workload"
)

// TestFollowUpHeadroomDiscount is the chat-multiturn routing regression: a
// follow-up turn's prompt re-declares the conversation's whole grown
// context, but those bytes are already resident on the replica holding the
// conversation. Counting them again would double-bill the replica's KV
// headroom — the signal the KVHeadroom router and the autoscaler's
// KV-pressure trigger balance on — making the holding replica look fuller
// than it is exactly when follow-ups must stick to it.
func TestFollowUpHeadroomDiscount(t *testing.T) {
	opt := serving.DefaultOptions(1)
	opt.KV = &kv.Options{BlockTokens: 16, Sharing: true}
	eng, err := serving.New(core.NewPAPI(0), model.LLaMA65B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.NewStreamStepper(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Replica{ID: 0, engine: eng, stepper: st}

	// Turn 1 of a conversation, tagged the way RunPlan tags it.
	first := workload.Request{ID: 0, InputLen: 96, OutputLen: 64,
		Conversation: 0, Turn: 1, PrefixGroup: -1}
	if err := st.Push(first); err != nil {
		t.Fatal(err)
	}
	for {
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == serving.StepDrained {
			break
		}
	}

	carried := first.SeqLen()
	follow := workload.Request{ID: 1, InputLen: carried + 32, OutputLen: 16,
		Arrival: st.Now(), Conversation: 0, Turn: 2, PrefixGroup: -1, PrefixLen: carried}
	before := rep.KVHeadroom()
	if err := st.Push(follow); err != nil {
		t.Fatal(err)
	}
	drop := before - rep.KVHeadroom()
	full := eng.Cfg.KVBytes(follow.SeqLen())
	resident := carried / 16 * 16 // the carried context's full blocks stay hot
	want := full - eng.Cfg.KVBytes(resident)
	if drop >= full {
		t.Fatalf("follow-up billed its full footprint %v against headroom (drop %v): carried context double-counted", full, drop)
	}
	if drop != want {
		t.Fatalf("follow-up dropped headroom by %v, want %v (full %v minus resident prefix)", drop, want, full)
	}
}

// TestRunPlanSharingCutsReprefill runs the chat-multiturn scenario end to
// end with and without block sharing: with sharing, follow-up turns adopt
// their carried context, so the fleet's re-prefill tax must strictly drop
// while every turn still completes.
func TestRunPlanSharingCutsReprefill(t *testing.T) {
	run := func(kvo *kv.Options) *FleetResult {
		t.Helper()
		opt := testOptions(2, KVHeadroom())
		opt.Serving.KV = kvo
		c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.RunPlan(chatPlan(t, 10, 42))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	tally := func(f *FleetResult) (prefill, reprefill int) {
		for _, r := range f.Replicas {
			prefill += r.PrefillTokens
			reprefill += r.ReprefillTokens
		}
		return prefill, reprefill
	}
	off := run(&kv.Options{BlockTokens: 32, Sharing: false})
	on := run(&kv.Options{BlockTokens: 32, Sharing: true})

	offPre, offRep := tally(off)
	onPre, onRep := tally(on)
	if offRep == 0 {
		t.Fatal("multi-turn plan without sharing re-prefilled nothing — scenario lost its carried context")
	}
	if onRep >= offRep {
		t.Fatalf("sharing did not cut the fleet re-prefill tax: on=%d off=%d", onRep, offRep)
	}
	if onPre >= offPre {
		t.Fatalf("sharing did not cut fleet prefill work: on=%d off=%d", onPre, offPre)
	}
	if got, want := workload.TotalTurns(chatPlan(t, 10, 42)), len(on.Requests); want != got {
		t.Fatalf("sharing run served %d of %d turns", want, got)
	}
	shared := 0
	for _, r := range on.Replicas {
		if r.KV != nil {
			shared += r.KV.SharedTokens
		}
	}
	if shared == 0 {
		t.Fatal("sharing run adopted no blocks across the fleet")
	}
}
