package cluster

import (
	"encoding/json"
	"fmt"

	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// checkpointVersion is bumped on any incompatible change to the checkpoint
// encoding; Import rejects versions it does not understand.
const checkpointVersion = 1

// Checkpoint is a byte-stable snapshot of one or more completed fleet
// segments — the mergeable essence of a FleetResult. A run too long for one
// process splits into segments (each its own Cluster run over a slice of the
// arrival stream); every segment exports a Checkpoint, and merging them in
// segment order sums the counters and merges the latency distributions of
// everything the segments served, without any segment retaining per-request
// state. Each segment starts from an empty fleet, so queue state does not
// carry across a split boundary: split where the fleet drains (a diurnal
// trough) for segments that add up to the unsplit run.
//
// The identity fields (System, Model, Router) fence merges: two segments of
// different fleets have no meaningful sum, so Merge rejects them.
type Checkpoint struct {
	Version int    `json:"version"`
	System  string `json:"system"`
	Model   string `json:"model"`
	Router  string `json:"router"`

	// Runs counts the merged segments.
	Runs int `json:"runs"`

	// Makespan is the longest segment's makespan — segments replay disjoint
	// slices of one timeline, so wall spans overlay rather than add.
	// ReplicaSeconds and the energy total, by contrast, are genuine sums of
	// provisioned capacity-time and joules.
	Makespan       units.Seconds `json:"makespan"`
	ReplicaSeconds units.Seconds `json:"replica_seconds"`
	EnergyJoules   units.Joules  `json:"energy_joules"`
	PeakReplicas   int           `json:"peak_replicas"`

	Tokens      int `json:"tokens"`
	LostTokens  int `json:"lost_tokens"`
	Preemptions int `json:"preemptions"`
	Faults      int `json:"faults"`
	Retries     int `json:"retries"`
	Completed   int `json:"completed"`
	Failed      int `json:"failed"`
	Shed        int `json:"shed"`

	// Agg carries the constant-memory latency distributions; merging
	// checkpoints merges the sketches in argument order.
	Agg *FleetAggregate `json:"agg"`
}

// Checkpoint snapshots the result's mergeable state.
func (f *FleetResult) Checkpoint() *Checkpoint {
	agg := newFleetAggregate()
	if f.Agg != nil {
		agg.merge(f.Agg)
	}
	return &Checkpoint{
		Version:        checkpointVersion,
		System:         f.System,
		Model:          f.Model,
		Router:         f.Router,
		Runs:           1,
		Makespan:       f.Makespan,
		ReplicaSeconds: f.ReplicaSeconds,
		EnergyJoules:   f.Energy.Total(),
		PeakReplicas:   f.PeakReplicas,
		Tokens:         f.Tokens,
		LostTokens:     f.LostTokens,
		Preemptions:    f.Preemptions,
		Faults:         f.Faults,
		Retries:        f.Retries,
		Completed:      f.Completed,
		Failed:         len(f.FailedRequests),
		Shed:           f.ShedArrivals,
		Agg:            agg,
	}
}

// Merge folds o into c (o is unchanged). Segments must describe the same
// fleet; merge in segment order so the sketch digests are reproducible.
func (c *Checkpoint) Merge(o *Checkpoint) error {
	if c.System != o.System || c.Model != o.Model || c.Router != o.Router {
		return fmt.Errorf("cluster: cannot merge checkpoints of different fleets (%s/%s/%s vs %s/%s/%s)",
			c.System, c.Model, c.Router, o.System, o.Model, o.Router)
	}
	c.Runs += o.Runs
	if o.Makespan > c.Makespan {
		c.Makespan = o.Makespan
	}
	c.ReplicaSeconds += o.ReplicaSeconds
	c.EnergyJoules += o.EnergyJoules
	if o.PeakReplicas > c.PeakReplicas {
		c.PeakReplicas = o.PeakReplicas
	}
	c.Tokens += o.Tokens
	c.LostTokens += o.LostTokens
	c.Preemptions += o.Preemptions
	c.Faults += o.Faults
	c.Retries += o.Retries
	c.Completed += o.Completed
	c.Failed += o.Failed
	c.Shed += o.Shed
	c.Agg.merge(o.Agg)
	return nil
}

// Export encodes the checkpoint as byte-stable JSON: encoding the same
// checkpoint twice yields identical bytes, so segment artifacts diff cleanly.
func (c *Checkpoint) Export() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// ImportCheckpoint decodes and validates an exported checkpoint.
func ImportCheckpoint(data []byte) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("cluster: invalid checkpoint: %w", err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("cluster: checkpoint version %d, want %d", c.Version, checkpointVersion)
	}
	if c.Agg == nil || c.Agg.TTFT == nil || c.Agg.TPOT == nil || c.Agg.InteractiveTPOT == nil ||
		c.Agg.BatchTPOT == nil || c.Agg.InteractiveScore == nil || c.Agg.BatchScore == nil {
		return nil, fmt.Errorf("cluster: checkpoint is missing its latency aggregate")
	}
	if c.Completed < 0 || c.Failed < 0 || c.Runs < 1 {
		return nil, fmt.Errorf("cluster: checkpoint counters out of range (runs %d, completed %d, failed %d)",
			c.Runs, c.Completed, c.Failed)
	}
	if int64(c.Completed) != c.Agg.Completed {
		return nil, fmt.Errorf("cluster: checkpoint ledger mismatch: %d completed vs %d in the aggregate",
			c.Completed, c.Agg.Completed)
	}
	return c, nil
}

// TTFT and TPOT digest the merged latency distributions, as FleetResult's
// summaries do for a single run.
func (c *Checkpoint) TTFT() stats.Summary { return c.Agg.TTFT.Summary() }
func (c *Checkpoint) TPOT() stats.Summary { return c.Agg.TPOT.Summary() }

// Attainment scores the merged segments against a per-token SLO, with the
// same vacuous-1 empty-window rule as FleetResult.Attainment.
func (c *Checkpoint) Attainment(slo workload.SLO) float64 {
	total := c.Completed + c.Failed
	if total == 0 {
		return 1
	}
	return float64(c.Agg.metCount(slo)) / float64(total)
}

// Availability is the completed fraction across the merged segments
// (vacuously 1 when nothing was injected, as in FleetResult.Availability).
func (c *Checkpoint) Availability() float64 {
	total := c.Completed + c.Failed
	if total == 0 {
		return 1
	}
	return float64(c.Completed) / float64(total)
}

// String renders the merged digest.
func (c *Checkpoint) String() string {
	ttft, tpot := c.TTFT(), c.TPOT()
	return fmt.Sprintf(
		"%s · %s · router %s · %d segment(s)\n"+
			"%d completed / %d failed · %d tokens · makespan %v · %v replica-seconds · %v\n"+
			"TTFT p50/p95/p99 %v / %v / %v · TPOT p50/p95/p99 %v / %v / %v\n",
		c.System, c.Model, c.Router, c.Runs,
		c.Completed, c.Failed, c.Tokens, c.Makespan, c.ReplicaSeconds, c.EnergyJoules,
		units.Seconds(ttft.P50), units.Seconds(ttft.P95), units.Seconds(ttft.P99),
		units.Seconds(tpot.P50), units.Seconds(tpot.P95), units.Seconds(tpot.P99))
}
