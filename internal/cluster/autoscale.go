package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// AutoscaleOptions configures the elastic control loop: a deterministic
// controller on the fleet's event clock that watches windowed load signals —
// arrival rate, queue depth per replica, p95 TPOT of the interactive tier
// against the SLO, and KV-pool pressure — and scales the replica set between
// Min and Max. Scaling up provisions a replica that warms for WarmUp before
// taking traffic (drawing host power from the moment it is provisioned);
// scaling down drains a replica: it finishes its in-flight requests, accepts
// no new ones, and powers off (stops accruing energy) once empty.
//
// All decisions read only simulated state at control-tick instants, so an
// autoscaled run is exactly as deterministic as a static one: a fixed seed
// reproduces the same scale events, the same request placements, and the
// same energy ledger, on both the fast and the reference decode path.
type AutoscaleOptions struct {
	// Min and Max bound the powered-on fleet (1 ≤ Min ≤ Max).
	Min, Max int
	// Interval is the control period: signals are windowed over it and
	// decisions fire at its boundaries. Zero selects 1 s.
	Interval units.Seconds
	// WarmUp is the provisioning latency: a scaled-up replica starts taking
	// traffic WarmUp after the decision. Zero means instant boot.
	WarmUp units.Seconds
	// CoolDown is the minimum gap between consecutive scale decisions, so
	// one load swing does not trigger a flapping burst. Zero re-evaluates
	// every tick.
	CoolDown units.Seconds
	// SLO is the interactive-tier TPOT objective the controller defends. A
	// zero TokenLatency disables the latency triggers, leaving queue and KV
	// pressure in charge.
	SLO workload.SLO
	// UpTPOTFactor scales up when the window's interactive p95 TPOT exceeds
	// UpTPOTFactor × SLO. Zero selects 1.
	UpTPOTFactor float64
	// DownTPOTFactor permits scale-down only while the window's interactive
	// p95 TPOT sits below DownTPOTFactor × SLO. Zero selects 0.5.
	DownTPOTFactor float64
	// UpQueue scales up when outstanding requests per active replica exceed
	// it. Zero selects the replica admission cap (MaxBatch).
	UpQueue float64
	// DownQueue permits scale-down only while outstanding requests per
	// active replica sit below it. Zero selects MaxBatch/4.
	DownQueue float64
	// KVPressure scales up when any active replica's outstanding KV demand
	// exceeds this fraction of its pool (and bars scale-down above it).
	// Zero selects 0.9.
	KVPressure float64
	// UpArrivalRate scales up when windowed arrivals/s per active replica
	// exceed it. Zero disables the trigger (the rate is still recorded on
	// every scale event).
	UpArrivalRate float64
}

func (o AutoscaleOptions) validate() error {
	if o.Min < 1 || o.Max < o.Min {
		return fmt.Errorf("cluster: autoscale bounds [%d, %d] need 1 ≤ min ≤ max", o.Min, o.Max)
	}
	if o.Interval < 0 || o.WarmUp < 0 || o.CoolDown < 0 {
		return fmt.Errorf("cluster: autoscale latencies (interval %v, warm-up %v, cool-down %v) must be ≥ 0",
			o.Interval, o.WarmUp, o.CoolDown)
	}
	if o.UpTPOTFactor < 0 || o.DownTPOTFactor < 0 || o.UpQueue < 0 ||
		o.DownQueue < 0 || o.KVPressure < 0 || o.UpArrivalRate < 0 {
		return fmt.Errorf("cluster: autoscale thresholds must be ≥ 0")
	}
	return nil
}

// withDefaults resolves the zero-value knobs against the fleet's admission
// cap.
func (o AutoscaleOptions) withDefaults(maxBatch int) AutoscaleOptions {
	if o.Interval == 0 {
		o.Interval = 1
	}
	if o.UpTPOTFactor == 0 {
		o.UpTPOTFactor = 1
	}
	if o.DownTPOTFactor == 0 {
		o.DownTPOTFactor = 0.5
	}
	if o.UpQueue == 0 {
		o.UpQueue = float64(maxBatch)
	}
	if o.DownQueue == 0 {
		o.DownQueue = float64(maxBatch) / 4
	}
	if o.KVPressure == 0 {
		o.KVPressure = 0.9
	}
	return o
}

// DefaultAutoscale returns a ready-to-use elastic configuration for the
// given fleet bounds and interactive SLO: 1 s control period, 2 s warm-up,
// one control period of cool-down, and the default signal thresholds.
func DefaultAutoscale(min, max int, slo workload.SLO) *AutoscaleOptions {
	return &AutoscaleOptions{
		Min:      min,
		Max:      max,
		Interval: 1,
		WarmUp:   2,
		CoolDown: 1,
		SLO:      slo,
	}
}

// ScaleAction names one elastic transition.
type ScaleAction string

// Scale actions, in lifecycle order.
const (
	// ScaleUp provisions a new replica (it serves after warm-up).
	ScaleUp ScaleAction = "scale-up"
	// ScaleLive marks a warmed-up replica joining the eligible set.
	ScaleLive ScaleAction = "live"
	// ScaleDrain stops routing to a replica; it finishes in-flight work.
	ScaleDrain ScaleAction = "drain"
	// ScaleStop powers a drained replica off.
	ScaleStop ScaleAction = "stop"
)

// ScaleEvent records one elastic transition with the windowed signals that
// drove it — the fleet's scaling audit trail.
type ScaleEvent struct {
	At      units.Seconds
	Action  ScaleAction
	Replica int
	// Active is the eligible replica count after the action.
	Active int
	// Window signals at decision time (zero for live/stop bookkeeping
	// events): outstanding requests per active replica, interactive p95
	// TPOT, the worst per-replica KV-demand fraction, and arrivals/s per
	// active replica.
	QueuePerReplica float64
	TPOTP95         units.Seconds
	KVPressure      float64
	ArrivalRate     float64
}

// scaler is the live state of the elastic control loop for one fleet run.
type scaler struct {
	opt AutoscaleOptions
	run *fleetRun

	// Window accumulators, reset at each tick.
	arrivals int
	tpots    []float64

	lastAction units.Seconds
	events     []ScaleEvent
	peak       int // most replicas ever powered on concurrently
}

// observeStep harvests completion signals from one replica step: interactive
// TPOT samples for the latency window, and the moment a draining replica
// runs empty (it powers off right there, not at the next tick). Window
// samples buffer on the replica — the sharded parallel phase may run this
// for distinct replicas concurrently, so nothing shared is written here —
// and the control tick merges the buffers in replica order.
func (s *scaler) observeStep(rep *Replica, info serving.StepInfo) {
	for _, req := range info.Finished {
		if req.Class != workload.ClassInteractive {
			continue
		}
		if pm, ok := rep.stepper.PeekMetrics(req.ID); ok && pm.OutputTokens > 1 {
			rep.winTPOT = append(rep.winTPOT, pm.TPOT.Seconds())
		}
	}
	if rep.state == repDraining && info.Completed > 0 && rep.stepper.Outstanding() == 0 {
		if s.run.sharded {
			// Mid-phase the event log is shared state: park the decision on
			// the replica and let the next barrier replay it.
			rep.pendingStop = true
			rep.pendStopAt = rep.stepper.Now()
			return
		}
		s.stop(rep, rep.stepper.Now())
	}
}

// stop powers a drained replica off at the given instant.
func (s *scaler) stop(rep *Replica, at units.Seconds) {
	rep.state = repStopped
	rep.stopAt = at
	s.record(ScaleEvent{At: at, Action: ScaleStop, Replica: rep.ID, Active: len(s.run.eligible)})
}

// flushStops replays the power-off decisions a sharded parallel phase
// deferred, ordered by power-off instant (ties by replica ID) — the order
// the serial schedule's step events would have recorded them in.
func (s *scaler) flushStops() {
	var due []*Replica
	for _, rep := range s.run.reps {
		if rep.pendingStop {
			due = append(due, rep)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.SliceStable(due, func(i, j int) bool { return due[i].pendStopAt < due[j].pendStopAt })
	for _, rep := range due {
		rep.pendingStop = false
		s.stop(rep, rep.pendStopAt)
	}
}

func (s *scaler) record(ev ScaleEvent) { s.events = append(s.events, ev) }

// poweredOn counts replicas currently drawing power (everything not
// stopped). A crashed replica is dead hardware, not headroom: it stops
// counting against Max, which is what lets the control loop boot its
// replacement.
func (s *scaler) poweredOn() int {
	n := 0
	for _, rep := range s.run.reps {
		if rep.state != repStopped && rep.state != repFailed {
			n++
		}
	}
	return n
}

// tick is the control loop body, fired every Interval on the fleet's event
// kernel. It reads the windowed signals, applies the scale-up triggers (any
// one suffices) or the scale-down guards (all must hold), resets the window,
// and re-arms itself while the fleet still has pending events — when the
// queue is empty the run is over and the loop retires, which is what lets
// the kernel drain.
func (s *scaler) tick(now units.Seconds) {
	r := s.run
	if r.err != nil {
		return
	}

	// Windowed signals over the active set.
	act, warming := 0, 0
	queue := 0
	kvMax := 0.0
	for _, rep := range r.reps {
		switch rep.state {
		case repWarming:
			warming++
		case repActive:
			act++
			queue += rep.stepper.Outstanding()
			if kvCap := rep.engine.Sys.KVCapacity().Bytes(); kvCap > 0 {
				if f := units.Ratio(rep.stepper.KVDemand(), rep.engine.Sys.KVCapacity()); f > kvMax {
					kvMax = f
				}
			}
		}
	}
	// An all-failed window (every active replica crashed between ticks) has
	// act == 0: the per-replica signals are vacuously zero rather than the
	// 0/0 NaN that would otherwise flow into the scale-event audit trail.
	queuePer, ratePer := 0.0, 0.0
	if act > 0 {
		queuePer = float64(queue) / float64(act)
		ratePer = float64(s.arrivals) / s.opt.Interval.Seconds() / float64(act)
	}
	// Merge the per-replica window buffers in replica order, then take the
	// percentile in place: same multiset every run, no copy, no re-sort of
	// anything but this window's samples.
	for _, rep := range r.reps {
		s.tpots = append(s.tpots, rep.winTPOT...)
		rep.winTPOT = rep.winTPOT[:0]
	}
	tpot95 := 0.0
	if len(s.tpots) > 0 {
		tpot95 = stats.PercentileInPlace(s.tpots, 95)
	}
	sig := ScaleEvent{At: now, QueuePerReplica: queuePer,
		TPOTP95: units.Seconds(tpot95), KVPressure: kvMax, ArrivalRate: ratePer}

	slo := s.opt.SLO.TokenLatency.Seconds()
	cooled := now-s.lastAction >= s.opt.CoolDown

	// Max bounds the powered-on fleet, so a still-draining replica counts
	// against headroom exactly like an active one.
	up := cooled && s.poweredOn() < s.opt.Max &&
		((slo > 0 && tpot95 > s.opt.UpTPOTFactor*slo) ||
			queuePer > s.opt.UpQueue ||
			kvMax > s.opt.KVPressure ||
			(s.opt.UpArrivalRate > 0 && ratePer > s.opt.UpArrivalRate))
	switch {
	case up:
		rep, err := r.addReplica(now, now+s.opt.WarmUp, repWarming)
		if err != nil {
			r.err = err
			return
		}
		if on := s.poweredOn(); on > s.peak {
			s.peak = on
		}
		sig.Action, sig.Replica, sig.Active = ScaleUp, rep.ID, len(r.eligible)
		s.record(sig)
		s.lastAction = now
		r.kernel.At(rep.liveAt, func(liveNow units.Seconds) {
			if r.err != nil {
				return
			}
			rep.state = repActive
			r.rebuildEligible()
			s.record(ScaleEvent{At: liveNow, Action: ScaleLive, Replica: rep.ID, Active: len(r.eligible)})
			if r.resil != nil {
				// Failover casualties stranded with no live replica
				// land on the replacement the moment it activates.
				r.resil.flushWaiting(liveNow)
			}
		})

	case cooled && act > s.opt.Min && warming == 0 &&
		(slo <= 0 || tpot95 < s.opt.DownTPOTFactor*slo) &&
		queuePer < s.opt.DownQueue && kvMax < s.opt.KVPressure:
		// Drain the least-loaded active replica (ties: the youngest), so
		// the in-flight work it must finish is minimal. Replicas holding a
		// live closed-loop conversation are not drainable: the
		// conversation's KV context pins its follow-ups here.
		var victim *Replica
		for _, rep := range r.reps {
			if rep.state != repActive || rep.holds > 0 {
				continue
			}
			if victim == nil || rep.stepper.Outstanding() <= victim.stepper.Outstanding() {
				victim = rep
			}
		}
		if victim == nil {
			break
		}
		victim.state = repDraining
		r.rebuildEligible()
		sig.Action, sig.Replica, sig.Active = ScaleDrain, victim.ID, len(r.eligible)
		s.record(sig)
		s.lastAction = now
		if victim.stepper.Outstanding() == 0 {
			// Already idle: it powers off at the decision instant (its own
			// clock may lead the fleet clock if its last iteration committed
			// past this tick).
			at := now
			if t := victim.stepper.Now(); t > at {
				at = t
			}
			s.stop(victim, at)
		}
	}

	// Reset the window and re-arm. Sharded replica steps live outside the
	// kernel, so the liveness check must count them too.
	s.arrivals = 0
	s.tpots = s.tpots[:0]
	if r.kernel.Pending() > 0 || r.stepsPending() {
		r.nextTick = now + s.opt.Interval
		r.kernel.At(r.nextTick, s.tick)
	} else {
		r.nextTick = units.Seconds(math.Inf(1))
	}
}
