package cluster

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/faults"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/serving"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// runTiered drives one tiered-diurnal fleet run with the given shard count and
// decode path, retaining everything so DeepEqual compares the full result.
func runTiered(t *testing.T, shards int, mode serving.FastPathMode, autoscale *AutoscaleOptions, n int, seed int64) *FleetResult {
	t.Helper()
	opt := serving.DefaultOptions(1)
	opt.FastPath = mode
	replicas := 3
	if autoscale != nil {
		replicas = autoscale.Min
	}
	cl, err := NewByName("PAPI", model.OPT30B(), Options{
		Replicas:       replicas,
		MaxBatch:       6,
		Router:         LeastOutstanding(),
		Serving:        opt,
		Autoscale:      autoscale,
		Shards:         shards,
		RetainRequests: true,
		RetainStream:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Run(tieredStream(t, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// diffFleet pinpoints the first diverging exported field so an equivalence
// failure names the broken subsystem instead of dumping two full results.
func diffFleet(t *testing.T, label string, a, b *FleetResult) {
	t.Helper()
	if reflect.DeepEqual(a, b) {
		return
	}
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	for i := 0; i < av.NumField(); i++ {
		f := av.Type().Field(i)
		if !f.IsExported() {
			continue
		}
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			t.Errorf("%s: field %s diverged:\n serial:  %+v\n sharded: %+v",
				label, f.Name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Errorf("%s: results diverged in unexported state", label)
	}
}

// TestShardedMatchesSerial pins the tentpole equivalence claim: the parallel
// barrier driver is bit-identical to the serial kernel schedule — every
// exported field, per-request record, realised stream, and energy ledger —
// for static and elastic fleets, on both decode paths.
func TestShardedMatchesSerial(t *testing.T) {
	slo := workload.SLO{TokenLatency: units.Milliseconds(8)}
	for _, tc := range []struct {
		name      string
		mode      serving.FastPathMode
		autoscale *AutoscaleOptions
	}{
		{"static/fastpath-on", serving.FastPathOn, nil},
		{"static/fastpath-off", serving.FastPathOff, nil},
		{"autoscaled/fastpath-on", serving.FastPathOn, DefaultAutoscale(1, 4, slo)},
		{"autoscaled/fastpath-off", serving.FastPathOff, DefaultAutoscale(1, 4, slo)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := runTiered(t, 1, tc.mode, tc.autoscale, 96, 23)
			for _, shards := range []int{2, 4} {
				sharded := runTiered(t, shards, tc.mode, tc.autoscale, 96, 23)
				diffFleet(t, tc.name, serial, sharded)
			}
		})
	}
}

// TestShardedMixedFleetMatchesSerial extends the equivalence pin to a mixed
// PAPI+baseline fleet, whose per-design split merges the replica aggregates.
func TestShardedMixedFleetMatchesSerial(t *testing.T) {
	run := func(shards int) *FleetResult {
		cl, err := NewFromSpecs(mixedSpecs(t), model.OPT30B(), Options{
			Replicas:       4,
			MaxBatch:       6,
			Router:         LeastOutstanding(),
			Serving:        serving.DefaultOptions(1),
			Shards:         shards,
			RetainRequests: true,
			RetainStream:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := cl.Run(tieredStream(t, 64, 41))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	diffFleet(t, "mixed", run(1), run(4))
}

// TestShardedFaultsMatchSerial extends the equivalence pin to fault-injected
// fleets: fault edges, timeout deadlines, and retry re-injections are kernel
// events, so the sharded driver treats them as barriers and must reproduce
// the serial failure trace — casualties, retries, failures, lost tokens —
// bit-for-bit. (Before PR 10 these runs fell back to the serial schedule.)
func TestShardedFaultsMatchSerial(t *testing.T) {
	crashPlan := &faults.Plan{Name: "crash", Faults: []faults.Fault{
		{Kind: faults.KindCrash, Replica: 0, At: 0.8},
	}}
	windowPlan := &faults.Plan{Name: "windows", Faults: []faults.Fault{
		{Kind: faults.KindStraggler, Replica: 1, At: 0.3, Factor: 2.5, Duration: 0.6},
		{Kind: faults.KindBrownout, At: 0.7, Factor: 1.8, Duration: 0.4},
		{Kind: faults.KindCrash, Replica: 2, At: 1.1},
	}}
	for _, tc := range []struct {
		name    string
		plan    *faults.Plan
		timeout units.Seconds
		stream  func(t *testing.T) []workload.Request
	}{
		// Crash + bounded retries on a single-class stream.
		{"crash-retry", crashPlan, 0,
			func(t *testing.T) []workload.Request { return workload.GeneralQA().Poisson(48, 60, 31) }},
		// Straggler and brownout windows plus a crash on the tiered stream
		// (brownouts shed batch-class arrivals), with per-attempt timeouts
		// arming deadline events between arrivals.
		{"windows-tiered", windowPlan, units.Seconds(2),
			func(t *testing.T) []workload.Request { return tieredStream(t, 64, 31) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int) *FleetResult {
				cl, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), Options{
					Replicas:       3,
					MaxBatch:       8,
					Router:         LeastOutstanding(),
					Serving:        serving.DefaultOptions(1),
					Faults:         tc.plan,
					Retries:        1,
					Timeout:        tc.timeout,
					RetryBackoff:   units.Seconds(0.05),
					Shards:         shards,
					RetainRequests: true,
					RetainStream:   true,
				})
				if err != nil {
					t.Fatal(err)
				}
				f, err := cl.Run(tc.stream(t))
				if err != nil {
					t.Fatal(err)
				}
				return f
			}
			serial := run(1)
			if serial.Faults == 0 {
				t.Fatalf("fault plan never fired: the equivalence pin is vacuous")
			}
			for _, shards := range []int{2, 4} {
				diffFleet(t, tc.name, serial, run(shards))
			}
		})
	}
}

// TestRunPlanRejectsShards: closed-loop plans couple replicas through
// follow-ups, so sharding them is an error, not a silent serial fallback.
func TestRunPlanRejectsShards(t *testing.T) {
	opt := testOptions(2, LeastOutstanding())
	opt.Shards = 4
	c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := []workload.Conversation{{ID: 0, Turns: []workload.Turn{{Input: 32, Output: 8}}}}
	if _, err := c.RunPlan(plan); err == nil {
		t.Fatal("RunPlan accepted a sharded run")
	}
	// The rejection must not consume the single-use cluster.
	if _, err := c.Run(workload.GeneralQA().Generate(4, 1)); err != nil {
		t.Fatalf("run after rejected sharded plan: %v", err)
	}
}

// TestRunSeqMatchesRun: the lazy one-lookahead stream driver is the same
// simulation as the up-front slice driver, serial and sharded.
func TestRunSeqMatchesRun(t *testing.T) {
	reqs := tieredStream(t, 96, 29)
	build := func(shards int) *Cluster {
		opt := testOptions(3, LeastOutstanding())
		opt.Shards = shards
		c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	want, err := build(1).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		i := 0
		got, err := build(shards).RunSeq(func() (workload.Request, bool) {
			if i >= len(reqs) {
				return workload.Request{}, false
			}
			i++
			return reqs[i-1], true
		})
		if err != nil {
			t.Fatal(err)
		}
		diffFleet(t, "runseq", want, got)
	}
}

// TestRunSeqValidation: a nil source, an empty stream, and an out-of-order
// arrival are errors, and the arrival-order error does not hang the drain.
func TestRunSeqValidation(t *testing.T) {
	build := func() *Cluster {
		c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), testOptions(2, nil))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if _, err := build().RunSeq(nil); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := build().RunSeq(func() (workload.Request, bool) { return workload.Request{}, false }); err == nil {
		t.Error("empty stream should fail")
	}
	backwards := []workload.Request{
		{ID: 0, InputLen: 16, OutputLen: 4, Arrival: 2},
		{ID: 1, InputLen: 16, OutputLen: 4, Arrival: 1},
	}
	i := 0
	_, err := build().RunSeq(func() (workload.Request, bool) {
		if i >= len(backwards) {
			return workload.Request{}, false
		}
		i++
		return backwards[i-1], true
	})
	if err == nil {
		t.Error("out-of-order arrivals should fail")
	}
}

// TestConstantMemoryDefaults pins the new retention contract: without opting
// in, a run keeps no per-request records and no realised stream, yet the
// completion count, latency digests, and attainment all still populate from
// the streaming aggregate — bit-identical to the retained run's.
func TestConstantMemoryDefaults(t *testing.T) {
	reqs := tieredStream(t, 64, 17)
	run := func(retain bool) *FleetResult {
		c, err := New(func() *core.System { return core.NewPAPI(0) }, model.LLaMA65B(), Options{
			Replicas:       2,
			MaxBatch:       8,
			Router:         LeastOutstanding(),
			Serving:        serving.DefaultOptions(1),
			RetainRequests: retain,
			RetainStream:   retain,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	lean, full := run(false), run(true)
	if len(lean.Requests) != 0 || len(lean.Stream) != 0 {
		t.Fatalf("default run retained %d records, %d stream entries", len(lean.Requests), len(lean.Stream))
	}
	if len(full.Requests) != len(reqs) || len(full.Stream) != len(reqs) {
		t.Fatalf("opt-in run retained %d records, %d stream entries, want %d", len(full.Requests), len(full.Stream), len(reqs))
	}
	if lean.Completed != len(reqs) || full.Completed != len(reqs) {
		t.Fatalf("completed %d / %d, want %d", lean.Completed, full.Completed, len(reqs))
	}
	if lean.TTFT != full.TTFT || lean.TPOT != full.TPOT {
		t.Errorf("digests diverged across retention:\n lean %+v %+v\n full %+v %+v", lean.TTFT, lean.TPOT, full.TTFT, full.TPOT)
	}
	slo := workload.SLO{TokenLatency: units.Milliseconds(10)}
	if a, b := lean.Attainment(slo), full.Attainment(slo); a != b {
		t.Errorf("attainment diverged across retention: %v vs %v", a, b)
	}
	for _, class := range []workload.Class{workload.ClassInteractive, workload.ClassBatch} {
		if a, b := lean.AttainmentClass(slo, class), full.AttainmentClass(slo, class); a != b {
			t.Errorf("%v attainment diverged across retention: %v vs %v", class, a, b)
		}
	}
}

// TestVacuousScores pins the zero-request audit: an empty window scores 1
// everywhere (vacuous truth), never 0 and never a 0/0 NaN; failures alone
// drive availability to 0.
func TestVacuousScores(t *testing.T) {
	slo := workload.SLO{TokenLatency: units.Milliseconds(5)}
	empty := &FleetResult{Agg: newFleetAggregate()}
	for name, got := range map[string]float64{
		"Attainment":              empty.Attainment(slo),
		"AttainmentUnbounded":     empty.Attainment(workload.SLO{}),
		"AttainmentInteractive":   empty.AttainmentClass(slo, workload.ClassInteractive),
		"AttainmentBatch":         empty.AttainmentClass(slo, workload.ClassBatch),
		"Availability":            empty.Availability(),
		"DesignAttainment":        DesignMetrics{}.Attainment(slo),
		"DesignAttainmentWithAgg": DesignMetrics{agg: newFleetAggregate()}.Attainment(slo),
	} {
		if got != 1 {
			t.Errorf("%s on an empty window = %v, want vacuous 1", name, got)
		}
	}

	// All-failed: nothing completed, so availability and attainment are hard
	// zeros — real misses, not vacuous truths.
	failed := &FleetResult{Agg: newFleetAggregate(), FailedRequests: []FailedRequest{
		{ID: 0, Class: workload.ClassInteractive, Reason: "crash"},
		{ID: 1, Class: workload.ClassBatch, Reason: "timeout"},
	}}
	if got := failed.Availability(); got != 0 {
		t.Errorf("all-failed availability = %v, want 0", got)
	}
	if got := failed.Attainment(slo); got != 0 {
		t.Errorf("all-failed attainment = %v, want 0", got)
	}
	for _, class := range []workload.Class{workload.ClassInteractive, workload.ClassBatch} {
		if got := failed.AttainmentClass(slo, class); got != 0 {
			t.Errorf("all-failed %v attainment = %v, want 0", class, got)
		}
	}
}

// FuzzShardedEquivalence drives random small fleets through both schedules —
// the CI fuzz target backing the equivalence pin with adversarial shapes,
// including fault-injected ones: a randomized crash (replica and instant), a
// degradation window, and per-attempt timeouts, so barrier-scheduled failure
// events are fuzzed against the serial failure trace.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), uint8(2), false, uint8(0), uint8(0), false)
	f.Add(int64(7), uint8(40), uint8(3), uint8(4), true, uint8(0), uint8(0), false)
	f.Add(int64(23), uint8(8), uint8(1), uint8(3), false, uint8(0), uint8(0), false)
	f.Add(int64(31), uint8(48), uint8(3), uint8(4), false, uint8(3), uint8(40), true)
	f.Add(int64(11), uint8(32), uint8(2), uint8(2), true, uint8(7), uint8(90), false)
	f.Fuzz(func(t *testing.T, seed int64, n, replicas, shards uint8, elastic bool,
		fault, faultAt uint8, timeout bool) {

		nreq := int(n%64) + 1
		reps := int(replicas%4) + 1
		nshards := int(shards%6) + 2
		// fault%4 selects the plan shape: 0 none, 1 crash, 2 crash+straggler,
		// 3 crash+brownout. faultAt places the crash inside the stream's
		// ~[0, 2s] arrival span so it can land before, between, or after
		// most arrivals.
		var plan *faults.Plan
		at := units.Seconds(float64(faultAt%100) / 50)
		switch fault % 4 {
		case 1:
			plan = &faults.Plan{Name: "f1", Faults: []faults.Fault{
				{Kind: faults.KindCrash, Replica: int(fault) % reps, At: float64(at)},
			}}
		case 2:
			plan = &faults.Plan{Name: "f2", Faults: []faults.Fault{
				{Kind: faults.KindStraggler, Replica: int(fault) % reps, At: float64(at), Factor: 3, Duration: 0.5},
				{Kind: faults.KindCrash, Replica: int(fault+1) % reps, At: float64(at) + 0.2},
			}}
		case 3:
			plan = &faults.Plan{Name: "f3", Faults: []faults.Fault{
				{Kind: faults.KindBrownout, At: float64(at), Factor: 2, Duration: 0.6},
				{Kind: faults.KindCrash, Replica: int(fault) % reps, At: float64(at) + 0.3},
			}}
		}
		run := func(s int) *FleetResult {
			opt := Options{
				Replicas:       reps,
				MaxBatch:       4,
				Router:         LeastOutstanding(),
				Serving:        serving.DefaultOptions(1),
				Faults:         plan,
				Shards:         s,
				RetainRequests: true,
				RetainStream:   true,
			}
			if plan != nil {
				opt.Retries = 1
				opt.RetryBackoff = units.Seconds(0.05)
			}
			if timeout {
				opt.Timeout = units.Seconds(1.5)
			}
			if elastic {
				opt.Autoscale = DefaultAutoscale(reps, reps+2, workload.SLO{TokenLatency: units.Milliseconds(8)})
			}
			c, err := New(func() *core.System { return core.NewPAPI(0) }, model.OPT30B(), opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(workload.GeneralQA().Poisson(nreq, 50, seed))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		serial, sharded := run(1), run(nshards)
		if !reflect.DeepEqual(serial, sharded) {
			diffFleet(t, "fuzz", serial, sharded)
			t.Fatalf("sharded run diverged (seed=%d n=%d replicas=%d shards=%d elastic=%v fault=%d at=%v timeout=%v)",
				seed, nreq, reps, nshards, elastic, fault%4, at, timeout)
		}
	})
}
