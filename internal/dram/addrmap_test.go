package dram

import (
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/sim"
)

func TestAddressRoundTrip(t *testing.T) {
	g := PIMChannelGeometry()
	for _, m := range []AddressMapping{MapRowBankCol, MapRowColBank} {
		a := Address{BankGroup: 2, Bank: 3, Row: 117, Col: 9}
		raw, err := g.EncodeAddress(a, m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.DecodeAddress(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("%v: round trip %+v → %d → %+v", m, a, raw, back)
		}
	}
}

func TestDecodeValidation(t *testing.T) {
	g := PIMChannelGeometry()
	if _, err := g.DecodeAddress(-16, MapRowBankCol); err == nil {
		t.Error("negative address should fail")
	}
	if _, err := g.DecodeAddress(int64(g.Capacity()), MapRowBankCol); err == nil {
		t.Error("address at capacity should fail")
	}
	if _, err := g.DecodeAddress(7, MapRowBankCol); err == nil {
		t.Error("unaligned address should fail")
	}
	if _, err := g.DecodeAddress(0, AddressMapping(9)); err == nil {
		t.Error("unknown mapping should fail")
	}
	if _, err := g.EncodeAddress(Address{Row: -1}, MapRowBankCol); err == nil {
		t.Error("out-of-range encode should fail")
	}
	if _, err := g.EncodeAddress(Address{}, AddressMapping(9)); err == nil {
		t.Error("unknown mapping encode should fail")
	}
}

func TestMappingNames(t *testing.T) {
	if MapRowBankCol.String() != "row:bank:col" || MapRowColBank.String() != "row:col:bank" {
		t.Fatal("mapping names wrong")
	}
	if AddressMapping(9).String() != "AddressMapping(9)" {
		t.Fatal("unknown mapping name wrong")
	}
}

func TestSequentialInterleaving(t *testing.T) {
	g := PIMChannelGeometry()
	// Row-major mapping: the first ColsPerRow granules stay in one bank/row.
	for i := 0; i < g.ColsPerRow(); i++ {
		a, err := g.DecodeAddress(int64(i)*int64(g.ColBytes), MapRowBankCol)
		if err != nil {
			t.Fatal(err)
		}
		if a.Bank != 0 || a.BankGroup != 0 || a.Row != 0 || a.Col != i {
			t.Fatalf("row-major granule %d landed at %+v", i, a)
		}
	}
	// Bank-interleaved mapping: consecutive granules visit different banks.
	a0, _ := g.DecodeAddress(0, MapRowColBank)
	a1, _ := g.DecodeAddress(int64(g.ColBytes), MapRowColBank)
	if a0.Bank == a1.Bank && a0.BankGroup == a1.BankGroup {
		t.Fatalf("bank-interleaved mapping did not switch banks: %+v then %+v", a0, a1)
	}
}

func TestRowMajorMappingMaximisesRowHits(t *testing.T) {
	// Streaming the same linear range: the row-major mapping must achieve a
	// higher row-hit rate than the bank-interleaved one.
	run := func(m AddressMapping) Stats {
		e := sim.New()
		c := NewController(e, PIMChannelGeometry(), HBM3Timing(), HBM3Energy())
		if _, err := c.LinearStream(0, 64*1024, m, false); err != nil {
			t.Fatal(err)
		}
		e.Run()
		return c.Stats()
	}
	rowMajor := run(MapRowBankCol)
	interleaved := run(MapRowColBank)
	if rowMajor.RowHitRate() <= interleaved.RowHitRate() {
		t.Fatalf("row-major hit rate %.2f should beat interleaved %.2f",
			rowMajor.RowHitRate(), interleaved.RowHitRate())
	}
}

func TestLinearStreamValidation(t *testing.T) {
	e := sim.New()
	c := NewController(e, PIMChannelGeometry(), HBM3Timing(), HBM3Energy())
	if _, err := c.LinearStream(0, 0, MapRowBankCol, false); err == nil {
		t.Error("zero-length stream should fail")
	}
	if _, err := c.LinearStream(int64(c.Geom.Capacity())-8, 1024, MapRowBankCol, false); err == nil {
		t.Error("stream past capacity should fail")
	}
	n, err := c.LinearStream(0, 1024, MapRowBankCol, false)
	if err != nil || n != 64 {
		t.Fatalf("1 KiB stream = %d requests, %v; want 64", n, err)
	}
	e.Run()
}

// Property: encode/decode are inverse bijections over the whole channel for
// both mappings.
func TestAddressBijectionProperty(t *testing.T) {
	g := PIMChannelGeometry()
	f := func(bgRaw, bankRaw, colRaw uint8, rowRaw uint16, m bool) bool {
		a := Address{
			BankGroup: int(bgRaw) % g.BankGroups,
			Bank:      int(bankRaw) % g.BanksPerGroup,
			Row:       int(rowRaw) % g.Rows,
			Col:       int(colRaw) % g.ColsPerRow(),
		}
		mapping := MapRowBankCol
		if m {
			mapping = MapRowColBank
		}
		raw, err := g.EncodeAddress(a, mapping)
		if err != nil || raw < 0 || raw >= int64(g.Capacity()) {
			return false
		}
		back, err := g.DecodeAddress(raw, mapping)
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
