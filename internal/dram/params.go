// Package dram implements a command-level HBM3 DRAM simulator in the style of
// Ramulator 2.0 (the substrate the paper's evaluation is built on).
//
// The simulator models per-bank state machines (ACT/PRE/RD/WR/REF), the JEDEC
// inter-command timing constraints (tRCD, tRP, tRAS, tCCD_S/L, tRRD_S/L,
// tFAW, tRTP, tWR, tRFC/tREFI), an FR-FCFS per-channel command scheduler with
// an open-page policy, and per-command energy counters.
//
// It serves two roles in this repository:
//
//  1. Calibration: the sustained per-bank streaming bandwidth and the per-byte
//     DRAM access energy measured here back the closed-form constants used by
//     the fast analytic PIM model (internal/pim).
//  2. Detailed execution: PIM kernel microbenchmarks (Fig. 7) can run against
//     the command-level model directly.
package dram

import "github.com/papi-sim/papi/internal/units"

// Timing holds the inter-command timing constraints. All values are absolute
// durations (the command clock tCK quantises command issue).
type Timing struct {
	TCK   units.Seconds // command clock period (333 MHz per the paper's setup)
	TRCD  units.Seconds // ACT to RD/WR
	TRP   units.Seconds // PRE to ACT
	TRAS  units.Seconds // ACT to PRE (minimum row open time)
	TRC   units.Seconds // ACT to ACT, same bank
	TCCDS units.Seconds // CAS to CAS, different bank group
	TCCDL units.Seconds // CAS to CAS, same bank group
	TRRDS units.Seconds // ACT to ACT, different bank group
	TRRDL units.Seconds // ACT to ACT, same bank group
	TFAW  units.Seconds // four-ACT window
	TRTP  units.Seconds // RD to PRE
	TWR   units.Seconds // end of write data to PRE
	TCL   units.Seconds // CAS latency (RD to first data)
	TBL   units.Seconds // burst length on the data pins
	TRFC  units.Seconds // refresh cycle time
	TREFI units.Seconds // refresh interval
}

// Energy holds per-command energies and background power.
type Energy struct {
	ActPJ       float64     // per ACT+PRE pair (row activation energy)
	RdColPJ     float64     // per read column access
	WrColPJ     float64     // per write column access
	RefPJ       float64     // per refresh command
	BackgroundW units.Watts // standby/background power per channel
}

// Geometry describes one DRAM channel's structure. A PIM-enabled HBM die is a
// collection of such channels (see internal/hbm for the stack-level view).
type Geometry struct {
	BankGroups    int         // bank groups per channel
	BanksPerGroup int         // banks per bank group
	Rows          int         // rows per bank
	RowBytes      units.Bytes // row (page) size
	ColBytes      units.Bytes // column access granularity
}

// Banks returns the total banks in the channel.
func (g Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// ColsPerRow returns the number of column accesses a full row provides.
func (g Geometry) ColsPerRow() int { return int(float64(g.RowBytes) / float64(g.ColBytes)) }

// Capacity returns the channel capacity in bytes.
func (g Geometry) Capacity() units.Bytes {
	return units.Bytes(float64(g.Banks()) * float64(g.Rows) * float64(g.RowBytes))
}

// HBM3Timing returns the timing set used throughout the repository: an HBM3
// device at 5.2 Gb/s/pin with a 333 MHz command clock, per the paper's §7.1.
// Values are representative JEDEC HBM3 numbers quantised to the command clock.
func HBM3Timing() Timing {
	tck := units.Nanoseconds(3.0) // 333 MHz
	return Timing{
		TCK:   tck,
		TRCD:  units.Nanoseconds(15),
		TRP:   units.Nanoseconds(15),
		TRAS:  units.Nanoseconds(33),
		TRC:   units.Nanoseconds(48),
		TCCDS: units.Nanoseconds(3),
		TCCDL: units.Nanoseconds(6),
		TRRDS: units.Nanoseconds(6),
		TRRDL: units.Nanoseconds(9),
		TFAW:  units.Nanoseconds(30),
		TRTP:  units.Nanoseconds(6),
		TWR:   units.Nanoseconds(15),
		TCL:   units.Nanoseconds(24),
		TBL:   units.Nanoseconds(3),
		TRFC:  units.Nanoseconds(260),
		TREFI: units.Microseconds(3.9),
	}
}

// HBM3Energy returns the per-command energy set. The constants are chosen so
// that streaming GEMV reads cost ~43.9 pJ/B in aggregate (12 nJ per 1 KiB row
// activation = 11.7 pJ/B, plus 0.515 nJ per 16 B column = 32.2 pJ/B), which is
// the "DRAM Access" component of the analytic PIM energy model that
// reproduces the paper's Fig. 7 breakdown.
func HBM3Energy() Energy {
	return Energy{
		ActPJ:       12000,
		RdColPJ:     515,
		WrColPJ:     560,
		RefPJ:       28000,
		BackgroundW: 0.08,
	}
}

// PIMChannelGeometry returns the channel organisation used by the PIM dies in
// this repository: 4 bank groups of 4 banks, 1 KiB rows, and a 16 B per-bank
// local column width (the PIM datapath reads through per-bank I/O rather than
// the shared channel DQs).
func PIMChannelGeometry() Geometry {
	return Geometry{
		BankGroups:    4,
		BanksPerGroup: 4,
		Rows:          16384,
		RowBytes:      units.Bytes(1024),
		ColBytes:      units.Bytes(16),
	}
}
