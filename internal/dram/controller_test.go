package dram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/sim"
	"github.com/papi-sim/papi/internal/units"
)

func testController() (*sim.Engine, *Controller) {
	e := sim.New()
	c := NewController(e, PIMChannelGeometry(), HBM3Timing(), HBM3Energy())
	return e, c
}

func TestGeometry(t *testing.T) {
	g := PIMChannelGeometry()
	if g.Banks() != 16 {
		t.Fatalf("banks = %d, want 16", g.Banks())
	}
	if g.ColsPerRow() != 64 {
		t.Fatalf("cols/row = %d, want 64", g.ColsPerRow())
	}
	wantCap := units.Bytes(16 * 16384 * 1024)
	if g.Capacity() != wantCap {
		t.Fatalf("capacity = %v, want %v", g.Capacity(), wantCap)
	}
}

func TestCommandString(t *testing.T) {
	names := map[Command]string{CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR", CmdREF: "REF"}
	for cmd, want := range names {
		if got := cmd.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(cmd), got, want)
		}
	}
	if got := Command(99).String(); got != "Command(99)" {
		t.Errorf("unknown command formats as %q", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := testController()
	bad := []Address{
		{BankGroup: -1},
		{BankGroup: 4},
		{Bank: -1},
		{Bank: 4},
		{Row: -1},
		{Row: 1 << 30},
		{Col: -1},
		{Col: 64},
	}
	for _, a := range bad {
		if err := c.Submit(&Request{Addr: a}); err == nil {
			t.Errorf("Submit(%+v) should fail", a)
		}
	}
	if err := c.Submit(&Request{Addr: Address{}}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestSingleReadLatency(t *testing.T) {
	e, c := testController()
	tm := c.Timing
	var fin units.Seconds
	err := c.Submit(&Request{Addr: Address{Row: 3, Col: 5}, Done: func(f units.Seconds) { fin = f }})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Closed bank: ACT at 0, RD at tRCD, data at tRCD+tCL+tBL.
	want := tm.TRCD + tm.TCL + tm.TBL
	if math.Abs(float64(fin-want)) > 1e-12 {
		t.Fatalf("read latency = %v, want %v", fin, want)
	}
	st := c.Stats()
	if st.Acts != 1 || st.Reads != 1 || st.RowMisses != 1 || st.RowHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowHitSecondRead(t *testing.T) {
	e, c := testController()
	for col := 0; col < 4; col++ {
		if err := c.Submit(&Request{Addr: Address{Row: 1, Col: col}}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	st := c.Stats()
	if st.Acts != 1 {
		t.Fatalf("acts = %d, want 1 (open page policy)", st.Acts)
	}
	if st.RowHits != 3 || st.RowMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.RowHits, st.RowMisses)
	}
}

func TestRowConflictForcesPrecharge(t *testing.T) {
	e, c := testController()
	if err := c.Submit(&Request{Addr: Address{Row: 1, Col: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(&Request{Addr: Address{Row: 2, Col: 0}}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	st := c.Stats()
	if st.Acts != 2 || st.Pres != 1 {
		t.Fatalf("acts=%d pres=%d, want 2/1", st.Acts, st.Pres)
	}
	if st.RowMisses != 2 {
		t.Fatalf("misses = %d, want 2", st.RowMisses)
	}
}

func TestSameBankReadsRespectTCCDL(t *testing.T) {
	e, c := testController()
	tm := c.Timing
	var finishes []units.Seconds
	for col := 0; col < 3; col++ {
		err := c.Submit(&Request{Addr: Address{Row: 0, Col: col}, Done: func(f units.Seconds) {
			finishes = append(finishes, f)
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if len(finishes) != 3 {
		t.Fatalf("finishes = %v", finishes)
	}
	for i := 1; i < len(finishes); i++ {
		gap := finishes[i] - finishes[i-1]
		if gap < tm.TCCDL-units.Nanoseconds(0.001) {
			t.Fatalf("CAS gap %v violates tCCD_L %v", gap, tm.TCCDL)
		}
	}
}

func TestAllBankModeScalesBandwidth(t *testing.T) {
	// In HBM-PIM all-bank broadcast mode, one command stream drives all 16
	// banks, so aggregate bandwidth approaches banks × per-bank.
	single := MeasureBankStreamBandwidth(8)
	all := MeasureAllBankStreamBandwidth(8)
	ratio := float64(all.Bandwidth) / float64(single.Bandwidth)
	if ratio < 14 || ratio > 16.5 {
		t.Fatalf("all-bank/single-bank bandwidth ratio = %.1f, want ≈16", ratio)
	}
}

func TestBroadcastMixRejected(t *testing.T) {
	e, c := testController()
	if err := c.Submit(&Request{Addr: Address{Row: 0, Col: 0}, Broadcast: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(&Request{Addr: Address{Row: 0, Col: 1}}); err == nil {
		t.Fatal("mixing per-bank with broadcast should be rejected")
	}
	e.Run()
}

func TestBroadcastStatsFanOut(t *testing.T) {
	e, c := testController()
	if err := c.Submit(&Request{Addr: Address{Row: 0, Col: 0}, Broadcast: true}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	st := c.Stats()
	banks := uint64(c.Geom.Banks())
	if st.Acts != banks || st.Reads != banks {
		t.Fatalf("broadcast acts/reads = %d/%d, want %d each", st.Acts, st.Reads, banks)
	}
	if st.BytesRead != units.Bytes(float64(banks))*c.Geom.ColBytes {
		t.Fatalf("broadcast bytes = %v", st.BytesRead)
	}
}

func TestWritePath(t *testing.T) {
	e, c := testController()
	if err := c.Submit(&Request{Addr: Address{Row: 0, Col: 0}, Write: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(&Request{Addr: Address{Row: 1, Col: 0}}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	st := c.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("writes=%d reads=%d", st.Writes, st.Reads)
	}
	if st.BytesWritten != c.Geom.ColBytes || st.BytesRead != c.Geom.ColBytes {
		t.Fatalf("bytes written/read = %v/%v", st.BytesWritten, st.BytesRead)
	}
}

func TestRefreshHappens(t *testing.T) {
	e, c := testController()
	// Submit a request far enough in the future that a refresh interval passes.
	if err := c.Submit(&Request{Addr: Address{Row: 0, Col: 0}, Arrive: c.Timing.TREFI * 3}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	st := c.Stats()
	if st.Refreshes == 0 {
		t.Fatal("no refresh issued across 3×tREFI")
	}
	if st.Reads != 1 {
		t.Fatalf("reads = %d, want 1", st.Reads)
	}
}

func TestBankStreamBandwidthCalibration(t *testing.T) {
	// The analytic PIM model uses 2.664 GB/s per bank. The command-level
	// simulator must sustain a single-bank stream within 15% of that value.
	res := MeasureBankStreamBandwidth(64)
	got := float64(res.Bandwidth)
	want := 2.664e9
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("single-bank sustained bandwidth = %v, want within 15%% of 2.664 GB/s", res.Bandwidth)
	}
	if res.Stats.RowHitRate() < 0.9 {
		t.Fatalf("streaming row hit rate = %v, want > 0.9", res.Stats.RowHitRate())
	}
}

func TestStreamEnergyCalibration(t *testing.T) {
	// The analytic model charges 43.9 pJ/B of DRAM-access energy for
	// non-reused streaming. The command-level measurement must agree within 15%.
	res := MeasureStreamEnergyPerByte(16)
	got := float64(res.EnergyPerByte)
	if got < 43.9*0.85 || got > 43.9*1.15 {
		t.Fatalf("stream energy = %.1f pJ/B, want within 15%% of 43.9", got)
	}
}

func TestTFAWThrottlesActivationBursts(t *testing.T) {
	e, c := testController()
	tm := c.Timing
	// One read per bank: 16 activations in a burst. The 5th ACT cannot issue
	// before tFAW after the 1st.
	for bg := 0; bg < c.Geom.BankGroups; bg++ {
		for b := 0; b < c.Geom.BanksPerGroup; b++ {
			if err := c.Submit(&Request{Addr: Address{BankGroup: bg, Bank: b, Row: 0, Col: 0}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Run()
	st := c.Stats()
	if st.Acts != 16 {
		t.Fatalf("acts = %d, want 16", st.Acts)
	}
	// With tFAW=30ns, 16 ACTs need at least 3×tFAW for the first 13.
	minSpan := 3 * tm.TFAW
	if st.LastFinish < minSpan {
		t.Fatalf("16 ACT burst finished at %v, violates tFAW floor %v", st.LastFinish, minSpan)
	}
}

// Property: for random request mixes, per-bank CAS operations never violate
// tCCD_L and the controller always drains the queue.
func TestTimingInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%48 + 1
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		g, tm, en := PIMChannelGeometry(), HBM3Timing(), HBM3Energy()
		c := NewController(e, g, tm, en)
		type casEvent struct {
			bank int
			at   units.Seconds
		}
		var events []casEvent
		for i := 0; i < n; i++ {
			addr := Address{
				BankGroup: rng.Intn(g.BankGroups),
				Bank:      rng.Intn(g.BanksPerGroup),
				Row:       rng.Intn(64),
				Col:       rng.Intn(g.ColsPerRow()),
			}
			bank := addr.flatBank(g)
			if err := c.Submit(&Request{
				Addr:  addr,
				Write: rng.Intn(4) == 0,
				Done: func(fin units.Seconds) {
					events = append(events, casEvent{bank: bank, at: fin})
				},
			}); err != nil {
				return false
			}
		}
		e.Run()
		if c.Pending() != 0 || len(events) != n {
			return false
		}
		// Per-bank completion gaps must be >= tCCD_L (completions inherit the
		// CAS cadence because tCL+tBL is constant).
		last := map[int]units.Seconds{}
		for _, ev := range events {
			if prev, ok := last[ev.bank]; ok {
				gap := ev.at - prev
				if gap < 0 {
					gap = -gap
				}
				if gap > 0 && gap < tm.TCCDS-units.Nanoseconds(0.001) {
					return false
				}
			}
			if prev, ok := last[ev.bank]; !ok || ev.at > prev {
				last[ev.bank] = ev.at
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is non-negative, additive in commands, and monotone in
// the amount of work.
func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(rowsRaw uint8) bool {
		rows := int(rowsRaw)%6 + 1
		small := RunStream(PIMChannelGeometry(), HBM3Timing(), HBM3Energy(),
			StreamSpec{BankGroups: []int{0}, Banks: []int{0}, Rows: rows})
		big := RunStream(PIMChannelGeometry(), HBM3Timing(), HBM3Energy(),
			StreamSpec{BankGroups: []int{0}, Banks: []int{0}, Rows: rows + 1})
		return small.Stats.CommandEnergy > 0 && big.Stats.CommandEnergy > small.Stats.CommandEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Fatal("empty stats should report 0 hit rate")
	}
	s.RowHits, s.RowMisses = 3, 1
	if got := s.RowHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
