package dram

import (
	"fmt"

	"github.com/papi-sim/papi/internal/sim"
	"github.com/papi-sim/papi/internal/units"
)

// Command identifies a DRAM command type.
type Command int

// DRAM command types.
const (
	CmdACT Command = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

// String returns the JEDEC mnemonic for the command.
func (c Command) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	}
	return fmt.Sprintf("Command(%d)", int(c))
}

// Address locates one column access within a channel.
type Address struct {
	BankGroup int
	Bank      int // bank index within the group
	Row       int
	Col       int
}

// flatBank returns the channel-wide bank index.
func (a Address) flatBank(g Geometry) int { return a.BankGroup*g.BanksPerGroup + a.Bank }

// Request is one column-granular access submitted to the controller.
type Request struct {
	Addr   Address
	Write  bool
	Arrive units.Seconds
	// Broadcast marks an all-bank PIM access: a single command performs the
	// same row/column access in every bank of the channel simultaneously
	// (HBM-PIM's all-bank mode, which is how PIM devices achieve bank-level
	// parallel bandwidth). Broadcast and per-bank requests cannot be mixed in
	// one controller: the device's mode register selects one regime.
	Broadcast bool
	// Done, if non-nil, is invoked when the data transfer completes.
	Done func(finish units.Seconds)

	seq uint64 // submission order, for FCFS ordering
}

// controller access mode, latched by the first submitted request.
type mode int

const (
	modeUnset mode = iota
	modePerBank
	modeAllBank
)

// bankState tracks one bank's FSM and timing registers.
type bankState struct {
	active    bool
	openRow   int
	casIssued bool          // whether a CAS has hit the currently open row
	actReady  units.Seconds // earliest next ACT (tRP after PRE, tRC after ACT)
	casReady  units.Seconds // earliest next CAS to this bank (tRCD after ACT)
	preReady  units.Seconds // earliest next PRE (tRAS/tRTP/tWR)
}

// Stats aggregates controller activity.
type Stats struct {
	Acts, Pres, Reads, Writes, Refreshes uint64
	RowHits, RowMisses                   uint64
	BytesRead, BytesWritten              units.Bytes
	CommandEnergy                        units.Joules
	BackgroundEnergy                     units.Joules
	FirstIssue, LastFinish               units.Seconds
	issuedAny                            bool
}

// RowHitRate returns the fraction of CAS operations that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// TotalEnergy returns command plus background energy.
func (s Stats) TotalEnergy() units.Joules { return s.CommandEnergy + s.BackgroundEnergy }

// Controller simulates one DRAM channel: an FR-FCFS scheduler over a request
// queue, per-bank timing state, tFAW/tRRD/tCCD cross-bank constraints, and
// periodic refresh. It is driven by a sim.Engine so multiple controllers can
// share a simulated timeline.
type Controller struct {
	Geom   Geometry
	Timing Timing
	Energy Energy

	engine *sim.Engine
	banks  []bankState
	queue  []*Request
	seq    uint64

	// Cross-bank timing registers.
	lastCASAny   units.Seconds   // per channel, any bank group
	lastCASPerBG []units.Seconds // per bank group
	lastACTAny   units.Seconds
	lastACTPerBG []units.Seconds
	actWindow    []units.Seconds // timestamps of recent ACTs, for tFAW

	cmdBusFree  units.Seconds
	nextRefresh units.Seconds
	refreshing  bool
	refreshDone units.Seconds
	accessMode  mode

	wakeAt units.Seconds // earliest scheduled wake, to de-duplicate events
	woken  bool

	stats Stats
}

// NewController builds a channel controller attached to the given engine.
func NewController(engine *sim.Engine, g Geometry, t Timing, e Energy) *Controller {
	c := &Controller{
		Geom:         g,
		Timing:       t,
		Energy:       e,
		engine:       engine,
		banks:        make([]bankState, g.Banks()),
		lastCASPerBG: make([]units.Seconds, g.BankGroups),
		lastACTPerBG: make([]units.Seconds, g.BankGroups),
	}
	neg := units.Seconds(-1)
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].actReady = 0
		c.banks[i].casReady = 0
		c.banks[i].preReady = 0
	}
	c.lastCASAny = neg
	c.lastACTAny = neg
	for i := range c.lastCASPerBG {
		c.lastCASPerBG[i] = neg
		c.lastACTPerBG[i] = neg
	}
	c.nextRefresh = t.TREFI
	return c
}

// Stats returns a snapshot of the accumulated statistics. Background energy is
// charged for the span between the first issued command and the current time.
func (c *Controller) Stats() Stats {
	s := c.stats
	if s.issuedAny {
		span := c.engine.Now() - s.FirstIssue
		if span > 0 {
			s.BackgroundEnergy = c.Energy.BackgroundW.Energy(span)
		}
	}
	return s
}

// Pending reports the number of requests still queued.
func (c *Controller) Pending() int { return len(c.queue) }

// Submit enqueues a request. The request's Arrive time must not be in the
// simulated past.
func (c *Controller) Submit(r *Request) error {
	if r.Addr.BankGroup < 0 || r.Addr.BankGroup >= c.Geom.BankGroups {
		return fmt.Errorf("dram: bank group %d out of range [0,%d)", r.Addr.BankGroup, c.Geom.BankGroups)
	}
	if r.Addr.Bank < 0 || r.Addr.Bank >= c.Geom.BanksPerGroup {
		return fmt.Errorf("dram: bank %d out of range [0,%d)", r.Addr.Bank, c.Geom.BanksPerGroup)
	}
	if r.Addr.Row < 0 || r.Addr.Row >= c.Geom.Rows {
		return fmt.Errorf("dram: row %d out of range [0,%d)", r.Addr.Row, c.Geom.Rows)
	}
	if r.Addr.Col < 0 || r.Addr.Col >= c.Geom.ColsPerRow() {
		return fmt.Errorf("dram: column %d out of range [0,%d)", r.Addr.Col, c.Geom.ColsPerRow())
	}
	want := modePerBank
	if r.Broadcast {
		want = modeAllBank
		// Broadcast addresses target the virtual all-bank plane.
		r.Addr.BankGroup, r.Addr.Bank = 0, 0
	}
	if c.accessMode == modeUnset {
		c.accessMode = want
	} else if c.accessMode != want {
		return fmt.Errorf("dram: cannot mix broadcast and per-bank requests in one controller")
	}
	if r.Arrive < c.engine.Now() {
		r.Arrive = c.engine.Now()
	}
	c.seq++
	r.seq = c.seq
	c.queue = append(c.queue, r)
	c.wake(r.Arrive)
	return nil
}

// fanout returns the number of physical banks a command touches.
func (c *Controller) fanout(broadcast bool) uint64 {
	if broadcast {
		return uint64(c.Geom.Banks())
	}
	return 1
}

// wake schedules a pump event at time t unless one is already pending at or
// before t.
func (c *Controller) wake(t units.Seconds) {
	if t < c.engine.Now() {
		t = c.engine.Now()
	}
	if c.woken && c.wakeAt <= t {
		return
	}
	c.woken = true
	c.wakeAt = t
	c.engine.At(t, func(now units.Seconds) {
		c.woken = false
		c.pump(now)
	})
}

// pump issues every command that is legal at the current instant, then
// schedules the next wake at the earliest future opportunity.
func (c *Controller) pump(now units.Seconds) {
	for {
		issued, next := c.tryIssueOne(now)
		if issued {
			continue
		}
		if next > now && next < farFuture {
			c.wake(next)
		}
		return
	}
}

const farFuture = units.Seconds(1 << 40)

// tryIssueOne attempts to issue a single command. It returns whether a
// command was issued and, if not, the earliest time at which progress might
// be possible (farFuture when the queue is empty and no refresh is needed).
func (c *Controller) tryIssueOne(now units.Seconds) (bool, units.Seconds) {
	// An idle controller schedules nothing: refresh obligations are deferred
	// and caught up when the next request arrives. This keeps the simulation
	// finite while preserving refresh's bandwidth/energy impact under load.
	if len(c.queue) == 0 && !c.refreshing {
		return false, farFuture
	}
	// Refresh has priority once due: drain to all-banks-precharged, issue REF.
	if c.refreshing {
		return false, c.refreshDone
	}
	if now >= c.nextRefresh {
		return c.tryRefresh(now)
	}
	next := c.nextRefresh // a refresh is always on the horizon

	// FR-FCFS: pass 1 — oldest row-hit request that can CAS right now;
	// pass 2 — oldest arrived request, advancing its command sequence.
	var hit *Request
	var oldest *Request
	for _, r := range c.queue {
		if r.Arrive > now {
			if r.Arrive < next {
				next = r.Arrive
			}
			continue
		}
		b := &c.banks[r.Addr.flatBank(c.Geom)]
		if b.active && b.openRow == r.Addr.Row {
			if t := c.casIssueTime(r); t <= now && (hit == nil || r.seq < hit.seq) {
				hit = r
			}
		}
		if oldest == nil || r.seq < oldest.seq {
			oldest = r
		}
	}
	if hit != nil {
		c.issueCAS(now, hit)
		return true, 0
	}
	if oldest == nil {
		return false, next
	}

	// Advance the oldest request's command sequence.
	r := oldest
	b := &c.banks[r.Addr.flatBank(c.Geom)]
	switch {
	case b.active && b.openRow == r.Addr.Row:
		t := c.casIssueTime(r)
		if t <= now {
			c.issueCAS(now, r)
			return true, 0
		}
		if t < next {
			next = t
		}
	case b.active: // row conflict: precharge first
		t := c.preIssueTime(b)
		if t <= now {
			c.issuePRE(now, r.Addr)
			return true, 0
		}
		if t < next {
			next = t
		}
	default: // bank idle: activate
		t := c.actIssueTime(r.Addr, b)
		if t <= now {
			c.issueACT(now, r.Addr)
			return true, 0
		}
		if t < next {
			next = t
		}
	}
	return false, next
}

// tryRefresh precharges all banks then issues REF.
func (c *Controller) tryRefresh(now units.Seconds) (bool, units.Seconds) {
	// Find any active bank; precharge the first one that is ready.
	next := farFuture
	allIdle := true
	for i := range c.banks {
		b := &c.banks[i]
		if !b.active {
			continue
		}
		allIdle = false
		t := c.preIssueTime(b)
		if t <= now {
			addr := Address{BankGroup: i / c.Geom.BanksPerGroup, Bank: i % c.Geom.BanksPerGroup}
			c.issuePRE(now, addr)
			return true, 0
		}
		if t < next {
			next = t
		}
	}
	if !allIdle {
		return false, next
	}
	// All banks idle: REF can issue once every bank's tRP has elapsed.
	ready := c.cmdBusFree
	for i := range c.banks {
		if c.banks[i].actReady > ready {
			ready = c.banks[i].actReady
		}
	}
	if ready > now {
		return false, ready
	}
	c.refreshing = true
	c.refreshDone = now + c.Timing.TRFC
	c.stats.Refreshes++
	c.noteIssue(now)
	c.stats.CommandEnergy += units.Joules(c.Energy.RefPJ * 1e-12)
	c.nextRefresh += c.Timing.TREFI
	c.engine.At(c.refreshDone, func(fin units.Seconds) {
		c.refreshing = false
		for i := range c.banks {
			if c.banks[i].actReady < fin {
				c.banks[i].actReady = fin
			}
		}
		c.pump(fin)
	})
	return false, c.refreshDone
}

// actIssueTime computes the earliest legal issue time for ACT to addr.
func (c *Controller) actIssueTime(addr Address, b *bankState) units.Seconds {
	t := b.actReady
	if v := c.lastACTPerBG[addr.BankGroup] + c.Timing.TRRDL; c.lastACTPerBG[addr.BankGroup] >= 0 && v > t {
		t = v
	}
	if v := c.lastACTAny + c.Timing.TRRDS; c.lastACTAny >= 0 && v > t {
		t = v
	}
	if len(c.actWindow) >= 4 {
		if v := c.actWindow[len(c.actWindow)-4] + c.Timing.TFAW; v > t {
			t = v
		}
	}
	if c.cmdBusFree > t {
		t = c.cmdBusFree
	}
	return t
}

// casIssueTime computes the earliest legal issue time for RD/WR of r.
func (c *Controller) casIssueTime(r *Request) units.Seconds {
	b := &c.banks[r.Addr.flatBank(c.Geom)]
	t := b.casReady
	if v := c.lastCASPerBG[r.Addr.BankGroup] + c.Timing.TCCDL; c.lastCASPerBG[r.Addr.BankGroup] >= 0 && v > t {
		t = v
	}
	if v := c.lastCASAny + c.Timing.TCCDS; c.lastCASAny >= 0 && v > t {
		t = v
	}
	if c.cmdBusFree > t {
		t = c.cmdBusFree
	}
	return t
}

// preIssueTime computes the earliest legal issue time for PRE of bank b.
func (c *Controller) preIssueTime(b *bankState) units.Seconds {
	t := b.preReady
	if c.cmdBusFree > t {
		t = c.cmdBusFree
	}
	return t
}

func (c *Controller) noteIssue(now units.Seconds) {
	if !c.stats.issuedAny {
		c.stats.issuedAny = true
		c.stats.FirstIssue = now
	}
	c.cmdBusFree = now + c.Timing.TCK
}

func (c *Controller) issueACT(now units.Seconds, addr Address) {
	b := &c.banks[addr.flatBank(c.Geom)]
	b.active = true
	b.openRow = addr.Row
	b.casIssued = false
	b.casReady = now + c.Timing.TRCD
	b.preReady = now + c.Timing.TRAS
	b.actReady = now + c.Timing.TRC
	c.lastACTAny = now
	c.lastACTPerBG[addr.BankGroup] = now
	c.actWindow = append(c.actWindow, now)
	if len(c.actWindow) > 8 {
		c.actWindow = c.actWindow[len(c.actWindow)-8:]
	}
	n := c.fanout(c.accessMode == modeAllBank)
	c.stats.Acts += n
	c.stats.CommandEnergy += units.Joules(float64(n) * c.Energy.ActPJ * 1e-12)
	c.noteIssue(now)
}

func (c *Controller) issuePRE(now units.Seconds, addr Address) {
	b := &c.banks[addr.flatBank(c.Geom)]
	b.active = false
	b.openRow = -1
	if v := now + c.Timing.TRP; v > b.actReady {
		b.actReady = v
	}
	c.stats.Pres += c.fanout(c.accessMode == modeAllBank)
	c.noteIssue(now)
}

func (c *Controller) issueCAS(now units.Seconds, r *Request) {
	b := &c.banks[r.Addr.flatBank(c.Geom)]
	// Row-hit accounting: the first CAS after a row is opened paid for the
	// activation (a miss); subsequent CASes to the same open row are hits.
	// Broadcast commands count once per physical bank touched.
	hitN := c.fanout(r.Broadcast)
	if b.casIssued {
		c.stats.RowHits += hitN
	} else {
		c.stats.RowMisses += hitN
		b.casIssued = true
	}

	c.lastCASAny = now
	c.lastCASPerBG[r.Addr.BankGroup] = now
	finish := now + c.Timing.TCL + c.Timing.TBL
	n := c.fanout(r.Broadcast)
	if r.Write {
		c.stats.Writes += n
		c.stats.BytesWritten += units.Bytes(float64(n)) * c.Geom.ColBytes
		c.stats.CommandEnergy += units.Joules(float64(n) * c.Energy.WrColPJ * 1e-12)
		if v := finish + c.Timing.TWR; v > b.preReady {
			b.preReady = v
		}
	} else {
		c.stats.Reads += n
		c.stats.BytesRead += units.Bytes(float64(n)) * c.Geom.ColBytes
		c.stats.CommandEnergy += units.Joules(float64(n) * c.Energy.RdColPJ * 1e-12)
		if v := now + c.Timing.TRTP; v > b.preReady {
			b.preReady = v
		}
	}
	if finish > c.stats.LastFinish {
		c.stats.LastFinish = finish
	}
	c.noteIssue(now)

	// Remove r from the queue.
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	if r.Done != nil {
		c.engine.At(finish, r.Done)
	}
}
