package dram

import (
	"fmt"
)

// AddressMapping selects how a linear physical address decomposes into
// channel-local coordinates. The choice decides whether sequential traffic
// stays in one row (row-interleaved, maximising row hits) or spreads across
// bank groups (bank-interleaved, maximising bank-level parallelism) — the
// standard Ramulator-style mapping knob.
type AddressMapping int

// Supported mappings (most-significant field first).
const (
	// MapRowBankCol is row : bankgroup : bank : column — sequential
	// addresses sweep a whole row before switching banks (open-page
	// friendly; the layout PIM weight streaming uses).
	MapRowBankCol AddressMapping = iota
	// MapRowColBank is row : column : bankgroup : bank — consecutive
	// column-sized blocks hit different banks (bank-interleaved; what a
	// cache-line-granular host controller prefers).
	MapRowColBank
)

// String names the mapping.
func (m AddressMapping) String() string {
	switch m {
	case MapRowBankCol:
		return "row:bank:col"
	case MapRowColBank:
		return "row:col:bank"
	}
	return fmt.Sprintf("AddressMapping(%d)", int(m))
}

// DecodeAddress splits a channel-local byte address into coordinates under
// the mapping. The address must be column-aligned and within the channel.
func (g Geometry) DecodeAddress(byteAddr int64, m AddressMapping) (Address, error) {
	col := int64(g.ColBytes)
	if byteAddr < 0 || byteAddr >= int64(g.Capacity()) {
		return Address{}, fmt.Errorf("dram: address %d outside channel capacity %v", byteAddr, g.Capacity())
	}
	if byteAddr%col != 0 {
		return Address{}, fmt.Errorf("dram: address %d not aligned to %v columns", byteAddr, g.ColBytes)
	}
	blk := byteAddr / col // column-granule index
	cols := int64(g.ColsPerRow())
	banks := int64(g.BanksPerGroup)
	groups := int64(g.BankGroups)

	var a Address
	switch m {
	case MapRowBankCol:
		a.Col = int(blk % cols)
		blk /= cols
		a.Bank = int(blk % banks)
		blk /= banks
		a.BankGroup = int(blk % groups)
		blk /= groups
		a.Row = int(blk)
	case MapRowColBank:
		a.Bank = int(blk % banks)
		blk /= banks
		a.BankGroup = int(blk % groups)
		blk /= groups
		a.Col = int(blk % cols)
		blk /= cols
		a.Row = int(blk)
	default:
		return Address{}, fmt.Errorf("dram: unknown mapping %v", m)
	}
	return a, nil
}

// EncodeAddress is the inverse of DecodeAddress.
func (g Geometry) EncodeAddress(a Address, m AddressMapping) (int64, error) {
	if a.BankGroup < 0 || a.BankGroup >= g.BankGroups ||
		a.Bank < 0 || a.Bank >= g.BanksPerGroup ||
		a.Row < 0 || a.Row >= g.Rows ||
		a.Col < 0 || a.Col >= g.ColsPerRow() {
		return 0, fmt.Errorf("dram: address %+v out of range", a)
	}
	cols := int64(g.ColsPerRow())
	banks := int64(g.BanksPerGroup)
	groups := int64(g.BankGroups)

	var blk int64
	switch m {
	case MapRowBankCol:
		blk = ((int64(a.Row)*groups+int64(a.BankGroup))*banks+int64(a.Bank))*cols + int64(a.Col)
	case MapRowColBank:
		blk = ((int64(a.Row)*cols+int64(a.Col))*groups+int64(a.BankGroup))*banks + int64(a.Bank)
	default:
		return 0, fmt.Errorf("dram: unknown mapping %v", m)
	}
	return blk * int64(g.ColBytes), nil
}

// LinearStream submits reads covering [start, start+bytes) under the mapping,
// rounding the range out to column granules. It returns the submitted
// request count. Used to replay address-trace workloads through the
// controller (cmd/dramsim's trace mode).
func (c *Controller) LinearStream(start, bytes int64, m AddressMapping, write bool) (int, error) {
	if bytes <= 0 {
		return 0, fmt.Errorf("dram: stream length %d must be positive", bytes)
	}
	col := int64(c.Geom.ColBytes)
	first := start - start%col
	n := 0
	for addr := first; addr < start+bytes; addr += col {
		a, err := c.Geom.DecodeAddress(addr, m)
		if err != nil {
			return n, err
		}
		if err := c.Submit(&Request{Addr: a, Write: write}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
