package dram

import (
	"github.com/papi-sim/papi/internal/sim"
	"github.com/papi-sim/papi/internal/units"
)

// StreamSpec describes a sequential read/write sweep over a bank range, the
// access pattern of a GEMV weight stream in a PIM device (each bank streams
// its resident weight tile row by row).
type StreamSpec struct {
	BankGroups []int // bank groups to touch (nil = all)
	Banks      []int // banks within each group (nil = all)
	Rows       int   // rows to stream per bank
	Write      bool
	// Broadcast streams in HBM-PIM all-bank mode: each command accesses the
	// same row/column in every bank simultaneously (BankGroups/Banks ignored).
	Broadcast bool
}

// StreamResult reports the outcome of a stream measurement.
type StreamResult struct {
	Bytes         units.Bytes
	Elapsed       units.Seconds
	Stats         Stats
	Bandwidth     units.BytesPerSecond
	EnergyPerByte units.PicojoulesPerByte
}

// RunStream drives a fresh controller through spec and measures sustained
// bandwidth and energy. Requests for all banks are submitted up front and the
// controller interleaves them subject to timing constraints, exactly like a
// PIM device streaming weight tiles from every bank concurrently.
func RunStream(g Geometry, t Timing, e Energy, spec StreamSpec) StreamResult {
	engine := sim.New()
	ctrl := NewController(engine, g, t, e)

	groups := spec.BankGroups
	if groups == nil {
		groups = make([]int, g.BankGroups)
		for i := range groups {
			groups[i] = i
		}
	}
	banks := spec.Banks
	if banks == nil {
		banks = make([]int, g.BanksPerGroup)
		for i := range banks {
			banks[i] = i
		}
	}
	if spec.Broadcast {
		// One command stream drives all banks.
		groups, banks = []int{0}, []int{0}
	}
	rows := spec.Rows
	if rows <= 0 {
		rows = 1
	}
	cols := g.ColsPerRow()

	var total units.Bytes
	var last units.Seconds
	for r := 0; r < rows; r++ {
		for _, bg := range groups {
			for _, b := range banks {
				for col := 0; col < cols; col++ {
					req := &Request{
						Addr:      Address{BankGroup: bg, Bank: b, Row: r % g.Rows, Col: col},
						Write:     spec.Write,
						Broadcast: spec.Broadcast,
						Done: func(fin units.Seconds) {
							if fin > last {
								last = fin
							}
						},
					}
					if err := ctrl.Submit(req); err != nil {
						// Addresses are generated in range; an error here is a
						// programming bug, surface it loudly.
						panic(err)
					}
					if spec.Broadcast {
						total += units.Bytes(float64(g.Banks())) * g.ColBytes
					} else {
						total += g.ColBytes
					}
				}
			}
		}
	}
	engine.Run()

	st := ctrl.Stats()
	res := StreamResult{Bytes: total, Elapsed: last, Stats: st}
	if last > 0 {
		res.Bandwidth = units.BytesPerSecond(float64(total) / float64(last))
	}
	if total > 0 {
		res.EnergyPerByte = units.PicojoulesPerByte(float64(st.TotalEnergy()) * 1e12 / float64(total))
	}
	return res
}

// MeasureBankStreamBandwidth streams rows from a single bank and returns the
// sustained per-bank read bandwidth. This is the calibration source for the
// analytic PIM model's per-bank streaming rate.
func MeasureBankStreamBandwidth(rows int) StreamResult {
	return RunStream(PIMChannelGeometry(), HBM3Timing(), HBM3Energy(), StreamSpec{
		BankGroups: []int{0},
		Banks:      []int{0},
		Rows:       rows,
	})
}

// MeasureAllBankStreamBandwidth streams rows in all-bank broadcast mode and
// returns the aggregate bandwidth, which should approach banks × per-bank.
func MeasureAllBankStreamBandwidth(rows int) StreamResult {
	return RunStream(PIMChannelGeometry(), HBM3Timing(), HBM3Energy(), StreamSpec{
		Rows:      rows,
		Broadcast: true,
	})
}

// MeasureStreamEnergyPerByte streams rows across all banks of a channel in
// all-bank PIM mode and returns the aggregate energy per byte — the
// calibration source for the analytic model's DRAM-access energy constant.
func MeasureStreamEnergyPerByte(rows int) StreamResult {
	return RunStream(PIMChannelGeometry(), HBM3Timing(), HBM3Energy(), StreamSpec{
		Rows:      rows,
		Broadcast: true,
	})
}
