package workload

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip feeds arbitrary bytes through ImportTrace: whatever it
// accepts must re-export byte-identically (the byte-stability contract) and
// must convert to a runnable stream whose length matches. The corpus seeds
// with real exports, including class-tagged and multi-turn requests.
func FuzzTraceRoundTrip(f *testing.F) {
	seedReqs := [][]Request{
		{{ID: 0, InputLen: 10, OutputLen: 5}},
		{{ID: 0, InputLen: 10, OutputLen: 5, Arrival: 0.5, Class: ClassBatch},
			{ID: 1, InputLen: 7, OutputLen: 3, Arrival: 1.25}},
		{{ID: 3, InputLen: 64, OutputLen: 128, Conversation: 1, Turn: 2}},
	}
	for _, reqs := range seedReqs {
		data, err := NewTrace("seed", "steady-qa", 1, reqs).Export()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ImportTrace(data)
		if err != nil {
			return // rejected input: nothing more to hold
		}
		out, err := tr.Export()
		if err != nil {
			t.Fatalf("accepted trace failed to export: %v", err)
		}
		tr2, err := ImportTrace(out)
		if err != nil {
			t.Fatalf("exported trace failed to re-import: %v", err)
		}
		out2, err := tr2.Export()
		if err != nil {
			t.Fatalf("re-imported trace failed to export: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("export is not byte-stable:\n first: %s\nsecond: %s", out, out2)
		}
		if got := len(tr.Workload()); got != len(tr.Requests) {
			t.Fatalf("workload has %d requests, trace %d", got, len(tr.Requests))
		}
	})
}
