package workload

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/papi-sim/papi/internal/units"
)

// TraceRequest is one request in a saved trace. Arrival is kept in seconds as
// a float64: Go marshals float64 with the shortest round-tripping decimal
// representation, so export → import → export is byte-identical.
type TraceRequest struct {
	ID        int     `json:"id"`
	InputLen  int     `json:"input"`
	OutputLen int     `json:"output"`
	Arrival   float64 `json:"arrival_s"`
	// Class mirrors Request.Class as its display name; omitted for
	// interactive (the default), so pre-class traces round-trip byte-stably.
	Class string `json:"class,omitempty"`
	// Conversation and Turn mirror Request.Conversation/Turn: Turn is
	// 1-based within a closed-loop conversation, 0 (omitted) for open-loop
	// requests.
	Conversation int `json:"conversation,omitempty"`
	Turn         int `json:"turn,omitempty"`
	// PrefixGroup and PrefixLen mirror Request.PrefixGroup/PrefixLen;
	// both omitted for requests with no sharing relationship, so
	// pre-prefix traces round-trip byte-stably.
	PrefixGroup int64 `json:"prefix_group,omitempty"`
	PrefixLen   int   `json:"prefix_len,omitempty"`
}

// Trace is a saved request stream: a scenario realisation (or any recorded
// run) that can be replayed byte-stably. Replaying a trace sidesteps the
// arrival process entirely — the arrivals are literal — so a bursty or
// closed-loop realisation can be re-fed to a different design or router and
// every system faces exactly the same traffic.
type Trace struct {
	Name     string         `json:"name"`
	Scenario string         `json:"scenario,omitempty"`
	Seed     int64          `json:"seed"`
	Requests []TraceRequest `json:"requests"`
}

// NewTrace records a request stream under a name. A negative arrival means
// "already waiting at start" and is recorded as zero, which replays
// identically.
func NewTrace(name, scenario string, seed int64, reqs []Request) Trace {
	t := Trace{Name: name, Scenario: scenario, Seed: seed}
	t.Requests = make([]TraceRequest, len(reqs))
	for i, r := range reqs {
		arr := r.Arrival.Seconds()
		if arr < 0 {
			arr = 0
		}
		class := ""
		if r.Class != ClassInteractive {
			class = r.Class.String()
		}
		t.Requests[i] = TraceRequest{
			ID:           r.ID,
			InputLen:     r.InputLen,
			OutputLen:    r.OutputLen,
			Arrival:      arr,
			Class:        class,
			Conversation: r.Conversation,
			Turn:         r.Turn,
			PrefixGroup:  r.PrefixGroup,
			PrefixLen:    r.PrefixLen,
		}
	}
	return t
}

// Workload converts the trace back into a runnable request stream. An
// unknown class name is a programming error and panics: ImportTrace
// validates classes, so only a hand-built Trace can carry one, and mapping
// it silently to a default would hand a typo top priority.
func (t Trace) Workload() []Request {
	reqs := make([]Request, len(t.Requests))
	for i, r := range t.Requests {
		class := ClassInteractive
		if r.Class != "" {
			var err error
			if class, err = ClassByName(r.Class); err != nil {
				panic(fmt.Sprintf("workload: trace %q request %d: %v", t.Name, r.ID, err))
			}
		}
		reqs[i] = Request{
			ID:           r.ID,
			InputLen:     r.InputLen,
			OutputLen:    r.OutputLen,
			Arrival:      units.Seconds(r.Arrival),
			Class:        class,
			Conversation: r.Conversation,
			Turn:         r.Turn,
			PrefixGroup:  r.PrefixGroup,
			PrefixLen:    r.PrefixLen,
		}
	}
	return reqs
}

// Export serialises the trace as indented JSON with a trailing newline.
// Serialisation is deterministic: struct fields marshal in declaration order
// and float64s use the shortest round-tripping form, so the same trace always
// yields the same bytes.
func (t Trace) Export() ([]byte, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ImportTrace parses and validates an exported trace.
func ImportTrace(data []byte) (Trace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("workload: invalid trace: %w", err)
	}
	if err := t.validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

func (t Trace) validate() error {
	if t.Name == "" {
		return fmt.Errorf("workload: trace has no name")
	}
	if len(t.Requests) == 0 {
		return fmt.Errorf("workload: trace %q has no requests", t.Name)
	}
	seen := make(map[int]bool, len(t.Requests))
	for _, r := range t.Requests {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return fmt.Errorf("workload: trace %q request %d has non-positive lengths", t.Name, r.ID)
		}
		if r.Arrival < 0 {
			return fmt.Errorf("workload: trace %q request %d arrives at negative time %g", t.Name, r.ID, r.Arrival)
		}
		if seen[r.ID] {
			return fmt.Errorf("workload: trace %q has duplicate request ID %d", t.Name, r.ID)
		}
		seen[r.ID] = true
		if r.Class != "" {
			if _, err := ClassByName(r.Class); err != nil {
				return fmt.Errorf("workload: trace %q request %d: %w", t.Name, r.ID, err)
			}
		}
		if r.PrefixLen < 0 || r.PrefixLen > r.InputLen {
			return fmt.Errorf("workload: trace %q request %d prefix length %d outside input length %d",
				t.Name, r.ID, r.PrefixLen, r.InputLen)
		}
		if r.PrefixLen > 0 && r.PrefixGroup == 0 {
			return fmt.Errorf("workload: trace %q request %d has a prefix length but no prefix group", t.Name, r.ID)
		}
	}
	return nil
}
