package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/papi-sim/papi/internal/units"
)

func processes() []func() ArrivalProcess {
	return []func() ArrivalProcess{
		func() ArrivalProcess { return NewPoisson(20) },
		func() ArrivalProcess { return NewOnOff(40, 2, units.Seconds(1.5), units.Seconds(4)) },
		func() ArrivalProcess { return NewDiurnal(12, 0.8, units.Seconds(20)) },
	}
}

func TestArrivalTimesIncreaseStrictly(t *testing.T) {
	for _, mk := range processes() {
		p := mk()
		times := ArrivalTimes(p, 200, rand.New(rand.NewSource(7)))
		if len(times) != 200 {
			t.Fatalf("%s: got %d times", p.Name(), len(times))
		}
		prev := units.Seconds(0)
		for i, at := range times {
			if at <= prev {
				t.Fatalf("%s: arrival %d at %v not after %v", p.Name(), i, at, prev)
			}
			prev = at
		}
	}
}

func TestArrivalTimesDeterministic(t *testing.T) {
	for _, mk := range processes() {
		a := ArrivalTimes(mk(), 100, rand.New(rand.NewSource(3)))
		b := ArrivalTimes(mk(), 100, rand.New(rand.NewSource(3)))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", mk().Name(), i, a[i], b[i])
			}
		}
	}
}

// The empirical rate of each process should sit near its configured mean:
// Poisson at Rate, diurnal at Base (the sinusoid averages out over whole
// periods), and on-off between the lull and burst rates.
func TestArrivalProcessMeanRates(t *testing.T) {
	const n = 4000
	rate := func(p ArrivalProcess) float64 {
		times := ArrivalTimes(p, n, rand.New(rand.NewSource(11)))
		return n / float64(times[n-1])
	}

	if r := rate(NewPoisson(20)); math.Abs(r-20) > 2 {
		t.Errorf("poisson empirical rate %.1f, want ≈ 20", r)
	}
	if r := rate(NewDiurnal(12, 0.8, units.Seconds(20))); math.Abs(r-12) > 2 {
		t.Errorf("diurnal empirical rate %.1f, want ≈ 12", r)
	}
	// On-off: expected long-run rate is the dwell-weighted phase mix.
	burst, lull := 40.0, 2.0
	mb, ml := 1.5, 4.0
	want := (burst*mb + lull*ml) / (mb + ml)
	if r := rate(NewOnOff(burst, lull, units.Seconds(mb), units.Seconds(ml))); math.Abs(r-want)/want > 0.2 {
		t.Errorf("on-off empirical rate %.1f, want ≈ %.1f", r, want)
	}
}

// Burstiness: the on-off process must have a markedly higher inter-arrival
// coefficient of variation than a Poisson stream of the same mean rate
// (CV = 1 for exponential gaps).
func TestOnOffIsBurstier(t *testing.T) {
	const n = 4000
	cv := func(p ArrivalProcess) float64 {
		times := ArrivalTimes(p, n, rand.New(rand.NewSource(5)))
		gaps := make([]float64, n-1)
		mean := 0.0
		for i := 1; i < n; i++ {
			gaps[i-1] = float64(times[i] - times[i-1])
			mean += gaps[i-1]
		}
		mean /= float64(n - 1)
		varsum := 0.0
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return math.Sqrt(varsum/float64(n-1)) / mean
	}
	onoff := cv(NewOnOff(40, 2, units.Seconds(1.5), units.Seconds(4)))
	poisson := cv(NewPoisson(20))
	if onoff < 1.3*poisson {
		t.Errorf("on-off CV %.2f not clearly burstier than poisson CV %.2f", onoff, poisson)
	}
}

// The diurnal rate curve must stay within its configured envelope and the
// thinning sampler must track it: arrivals should be denser near the peak
// quarter-period than near the trough.
func TestDiurnalRateEnvelope(t *testing.T) {
	p := NewDiurnal(10, 0.5, units.Seconds(40))
	for _, tt := range []units.Seconds{0, 5, 10, 15, 20, 25, 30, 35} {
		r := p.Rate(tt)
		if r < 10*(1-0.5)-1e-9 || r > 10*(1+0.5)+1e-9 {
			t.Fatalf("rate %v at t=%v outside envelope [5, 15]", r, tt)
		}
	}
	// Count arrivals in the peak window [5,15) vs the trough window [25,35)
	// of the first period, over many periods worth of arrivals.
	times := ArrivalTimes(NewDiurnal(10, 0.9, units.Seconds(40)), 8000, rand.New(rand.NewSource(9)))
	peak, trough := 0, 0
	for _, at := range times {
		phase := math.Mod(float64(at), 40)
		switch {
		case phase >= 5 && phase < 15:
			peak++
		case phase >= 25 && phase < 35:
			trough++
		}
	}
	if peak <= 2*trough {
		t.Errorf("peak window has %d arrivals vs trough %d; want clear diurnal skew", peak, trough)
	}
}

func TestArrivalConstructorsRejectDegenerateParams(t *testing.T) {
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: degenerate parameters accepted", label)
			}
		}()
		fn()
	}
	mustPanic("poisson zero rate", func() { NewPoisson(0) })
	mustPanic("on-off zero lull rate", func() { NewOnOff(40, 0, units.Seconds(1), units.Seconds(1)) })
	mustPanic("on-off zero dwell", func() { NewOnOff(40, 2, 0, units.Seconds(1)) })
	mustPanic("diurnal zero base", func() { NewDiurnal(0, 0.5, units.Seconds(10)) })
	mustPanic("diurnal amplitude 1", func() { NewDiurnal(10, 1, units.Seconds(10)) })
	mustPanic("diurnal zero period", func() { NewDiurnal(10, 0.5, 0) })
}
