// Package workload generates the request streams that drive the serving
// simulator.
//
// The paper evaluates on the Dolly dataset's creative-writing and general-qa
// categories (§7.1), which it uses purely for their input/output length
// distributions: lengths determine KV-cache footprints, decode iteration
// counts, and — through requests finishing at different times — the dynamic
// RLP decay of Fig. 3. The dataset itself is not redistributable here
// (offline build), so this package synthesises requests from seeded
// log-normal length distributions whose medians and spreads match the
// published Dolly statistics: creative-writing responses are several times
// longer than general-qa answers. DESIGN.md §1 records this substitution.
//
// On top of the length distributions sit the scenario engine's pieces:
// ArrivalProcess implementations (stationary Poisson, bursty on-off,
// diurnal) shape when requests arrive, Scenario crosses an arrival process
// with a length mix (optionally closed-loop multi-turn), and Trace saves any
// realisation as byte-stable JSON for replay. docs/SCENARIOS.md documents
// the named scenarios in the registry.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/papi-sim/papi/internal/units"
)

// Class is a request's priority class. Interactive traffic is latency-bound
// (a user is watching tokens stream); batch traffic is throughput work
// (offline summarisation, evals, bulk generation) that tolerates queueing
// and — under KV pressure — preemption. The zero value is interactive, so
// every pre-class request stream keeps its behaviour.
type Class int

// Priority classes, highest first.
const (
	ClassInteractive Class = iota
	ClassBatch
)

// String names the class as the CLIs and traces spell it.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassByName resolves a priority class by its display name.
func ClassByName(name string) (Class, error) {
	switch name {
	case "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	}
	return 0, fmt.Errorf("workload: unknown priority class %q", name)
}

// Request is one inference request.
type Request struct {
	ID        int
	InputLen  int           // prompt tokens
	OutputLen int           // tokens the model will generate (incl. <|eos|>)
	Arrival   units.Seconds // arrival time for continuous-batching scenarios
	// Class is the request's priority class: interactive requests are
	// admitted ahead of blocked batch traffic and may preempt it under KV
	// pressure (see serving's admission). Zero value: interactive.
	Class Class
	// Conversation and Turn tie a closed-loop request back to its
	// multi-turn conversation: Turn is 1-based within the conversation, and
	// Turn = 0 marks an open-loop request (Conversation is then
	// meaningless). The cluster's conversation driver fills them so
	// exported traces keep their dialogue structure.
	Conversation int
	Turn         int
	// PrefixGroup and PrefixLen declare a KV prefix-sharing relationship:
	// requests with the same non-zero PrefixGroup begin with the same
	// token prefix (a shared system prompt or document, or the carried
	// context of a multi-turn conversation), and PrefixLen is how many of
	// this request's input tokens that shared prefix covers. The serving
	// engine's block-level KV cache (internal/kv) uses them to adopt
	// committed blocks instead of re-prefilling; both are zero for a
	// request with no sharing relationship. The cluster's conversation
	// driver derives a negative PrefixGroup from the conversation ID so it
	// can never collide with the positive groups workload generators hand
	// out.
	PrefixGroup int64
	PrefixLen   int
}

// SeqLen returns the final sequence length (KV footprint driver).
func (r Request) SeqLen() int { return r.InputLen + r.OutputLen }

// LengthDist is a clamped log-normal over token counts.
type LengthDist struct {
	Median float64
	Sigma  float64
	Min    int
	Max    int
}

// Sample draws one length.
func (d LengthDist) Sample(rng *rand.Rand) int {
	v := math.Exp(math.Log(d.Median) + d.Sigma*rng.NormFloat64())
	n := int(math.Round(v))
	if n < d.Min {
		n = d.Min
	}
	if n > d.Max {
		n = d.Max
	}
	return n
}

// Mean returns the distribution's mean before clamping (log-normal moment).
func (d LengthDist) Mean() float64 {
	return d.Median * math.Exp(d.Sigma*d.Sigma/2)
}

// Dataset is a named pair of length distributions.
type Dataset struct {
	Name   string
	Input  LengthDist
	Output LengthDist
}

// CreativeWriting returns the Dolly creative-writing-like workload: prompts
// are short, responses long (the category the paper highlights for its long
// outputs and strong RLP dynamics).
func CreativeWriting() Dataset {
	return Dataset{
		Name:   "creative-writing",
		Input:  LengthDist{Median: 64, Sigma: 0.6, Min: 8, Max: 512},
		Output: LengthDist{Median: 384, Sigma: 0.6, Min: 32, Max: 1792},
	}
}

// GeneralQA returns the Dolly general-qa-like workload: short questions,
// short answers.
func GeneralQA() Dataset {
	return Dataset{
		Name:   "general-qa",
		Input:  LengthDist{Median: 48, Sigma: 0.7, Min: 4, Max: 384},
		Output: LengthDist{Median: 96, Sigma: 0.7, Min: 8, Max: 640},
	}
}

// ByName resolves a dataset by name.
func ByName(name string) (Dataset, error) {
	switch name {
	case "creative-writing":
		return CreativeWriting(), nil
	case "general-qa":
		return GeneralQA(), nil
	case "long-context":
		return LongContext(), nil
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Generate draws n requests deterministically from the seed. Arrivals are
// zero (a ready batch, for static batching). Online-arrival streams come
// from an ArrivalProcess — directly via Scenario.Requests, or through the
// Poisson convenience method below for a plain stationary stream.
func (d Dataset) Generate(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:        i,
			InputLen:  d.Input.Sample(rng),
			OutputLen: d.Output.Sample(rng),
		}
	}
	return reqs
}

// Poisson draws n requests with exponential inter-arrival gaps at the given
// mean rate (requests/second), for dynamic-batching scenarios (§3.2(c)).
// It is the stationary special case of the ArrivalProcess family; richer
// arrival shapes (bursty, diurnal, closed-loop) come from Scenario.
func (d Dataset) Poisson(n int, ratePerSec float64, seed int64) []Request {
	if ratePerSec <= 0 {
		return d.Generate(n, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec
		reqs[i] = Request{
			ID:        i,
			InputLen:  d.Input.Sample(rng),
			OutputLen: d.Output.Sample(rng),
			Arrival:   units.Seconds(t),
		}
	}
	return reqs
}

// AssignClasses deterministically tags a fraction of the stream as
// batch-class (the rest stays interactive), in place, and returns the
// stream. It seeds its own rng so the tagging is independent of how the
// lengths and arrivals were drawn: the same stream and seed always yield the
// same tiering. batchFraction is clamped to [0, 1].
func AssignClasses(reqs []Request, batchFraction float64, seed int64) []Request {
	if batchFraction <= 0 {
		return reqs
	}
	if batchFraction > 1 {
		batchFraction = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range reqs {
		if rng.Float64() < batchFraction {
			reqs[i].Class = ClassBatch
		} else {
			reqs[i].Class = ClassInteractive
		}
	}
	return reqs
}

// AssignPrefixGroups deterministically gives a fraction of the stream a
// shared-prefix relationship, in place, and returns the stream: tagged
// requests are dealt round-robin into groups numbered 1..groups, each group
// draws one document length from docLen (the shared system prompt or
// retrieved document all its members start with), and every member's
// PrefixLen is that document length clamped to its own InputLen. Like
// AssignClasses it seeds its own rng, so the same stream and seed always
// yield the same sharing structure regardless of how lengths and arrivals
// were drawn. fraction is clamped to [0, 1]; groups < 1 leaves the stream
// untouched.
func AssignPrefixGroups(reqs []Request, groups int, docLen LengthDist, fraction float64, seed int64) []Request {
	if groups < 1 || fraction <= 0 {
		return reqs
	}
	if fraction > 1 {
		fraction = 1
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]int, groups)
	for g := range docs {
		docs[g] = docLen.Sample(rng)
	}
	next := 0
	for i := range reqs {
		if rng.Float64() >= fraction {
			continue
		}
		g := next % groups
		next++
		reqs[i].PrefixGroup = int64(g + 1)
		reqs[i].PrefixLen = docs[g]
		if reqs[i].PrefixLen > reqs[i].InputLen {
			reqs[i].PrefixLen = reqs[i].InputLen
		}
	}
	return reqs
}

// SLO captures a per-token latency service-level objective (§3.2(a)).
type SLO struct {
	TokenLatency units.Seconds // time-per-output-token bound
}

// Met reports whether an observed per-token latency satisfies the SLO.
func (s SLO) Met(perToken units.Seconds) bool {
	return s.TokenLatency <= 0 || perToken <= s.TokenLatency
}
