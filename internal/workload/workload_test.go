package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/units"
)

func TestGenerateDeterministic(t *testing.T) {
	a := CreativeWriting().Generate(100, 42)
	b := CreativeWriting().Generate(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := CreativeWriting().Generate(100, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical requests")
	}
}

func TestLengthBounds(t *testing.T) {
	for _, d := range []Dataset{CreativeWriting(), GeneralQA()} {
		for _, r := range d.Generate(2000, 7) {
			if r.InputLen < d.Input.Min || r.InputLen > d.Input.Max {
				t.Fatalf("%s: input %d out of [%d,%d]", d.Name, r.InputLen, d.Input.Min, d.Input.Max)
			}
			if r.OutputLen < d.Output.Min || r.OutputLen > d.Output.Max {
				t.Fatalf("%s: output %d out of [%d,%d]", d.Name, r.OutputLen, d.Output.Min, d.Output.Max)
			}
			if r.SeqLen() != r.InputLen+r.OutputLen {
				t.Fatal("SeqLen arithmetic wrong")
			}
		}
	}
}

func TestCreativeWritingLongerThanQA(t *testing.T) {
	// §7.2: "the creative-writing dataset typically has longer output
	// lengths" — the property behind PAPI's larger speedup there.
	cw := CreativeWriting().Generate(3000, 11)
	qa := GeneralQA().Generate(3000, 11)
	mean := func(rs []Request) float64 {
		s := 0.0
		for _, r := range rs {
			s += float64(r.OutputLen)
		}
		return s / float64(len(rs))
	}
	mcw, mqa := mean(cw), mean(qa)
	if mcw < 2.5*mqa {
		t.Fatalf("creative-writing outputs (%.0f) should be ≫ general-qa (%.0f)", mcw, mqa)
	}
}

func TestOutputLengthSpread(t *testing.T) {
	// Fig. 3 depends on requests in a batch having very different output
	// lengths; the distribution must have real spread.
	rs := CreativeWriting().Generate(1000, 3)
	min, max := rs[0].OutputLen, rs[0].OutputLen
	for _, r := range rs {
		if r.OutputLen < min {
			min = r.OutputLen
		}
		if r.OutputLen > max {
			max = r.OutputLen
		}
	}
	if max < 4*min {
		t.Fatalf("output spread too small: [%d, %d]", min, max)
	}
}

func TestByName(t *testing.T) {
	if d, err := ByName("creative-writing"); err != nil || d.Name != "creative-writing" {
		t.Fatalf("ByName: %v %v", d, err)
	}
	if d, err := ByName("general-qa"); err != nil || d.Name != "general-qa" {
		t.Fatalf("ByName: %v %v", d, err)
	}
	if _, err := ByName("imagenet"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rs := GeneralQA().Poisson(500, 10, 5)
	prev := units.Seconds(0)
	for _, r := range rs {
		if r.Arrival < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = r.Arrival
	}
	// Mean inter-arrival ≈ 1/rate.
	meanGap := float64(rs[len(rs)-1].Arrival) / float64(len(rs))
	if meanGap < 0.05 || meanGap > 0.2 {
		t.Fatalf("mean inter-arrival %.3f s, want ≈0.1", meanGap)
	}
	// Zero rate degrades to a ready batch.
	if batch := GeneralQA().Poisson(5, 0, 5); batch[4].Arrival != 0 {
		t.Fatal("zero rate should yield zero arrivals")
	}
}

func TestLengthDistMean(t *testing.T) {
	d := LengthDist{Median: 100, Sigma: 0.5, Min: 1, Max: 1e9}
	want := 100 * math.Exp(0.125)
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", d.Mean(), want)
	}
}

func TestSLO(t *testing.T) {
	s := SLO{TokenLatency: units.Milliseconds(30)}
	if !s.Met(units.Milliseconds(20)) {
		t.Fatal("20ms should meet a 30ms SLO")
	}
	if s.Met(units.Milliseconds(40)) {
		t.Fatal("40ms should violate a 30ms SLO")
	}
	if !(SLO{}).Met(units.Seconds(100)) {
		t.Fatal("zero SLO means no bound")
	}
}

// Property: samples always respect clamps, for arbitrary distributions.
func TestSampleClampProperty(t *testing.T) {
	f := func(medRaw, sigRaw uint8, seed int64) bool {
		d := LengthDist{
			Median: float64(medRaw) + 1,
			Sigma:  float64(sigRaw) / 64,
			Min:    4,
			Max:    512,
		}
		ds := Dataset{Name: "t", Input: d, Output: d}
		for _, r := range ds.Generate(50, seed) {
			if r.InputLen < 4 || r.InputLen > 512 || r.OutputLen < 4 || r.OutputLen > 512 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// AssignPrefixGroups is deterministic, clamps each member's prefix to its
// own input, and deals tagged requests across the requested group count.
func TestAssignPrefixGroups(t *testing.T) {
	doc := LengthDist{Median: 96, Sigma: 0.4, Min: 16, Max: 256}
	fresh := func() []Request { return GeneralQA().Generate(64, 3) }

	a := AssignPrefixGroups(fresh(), 4, doc, 0.5, 9)
	b := AssignPrefixGroups(fresh(), 4, doc, 0.5, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same stream and seed produced different groupings")
	}

	groups := map[int64]int{}
	tagged := 0
	for _, r := range a {
		if r.PrefixGroup == 0 {
			if r.PrefixLen != 0 {
				t.Fatal("untagged request carries a prefix length")
			}
			continue
		}
		tagged++
		groups[r.PrefixGroup]++
		if r.PrefixGroup < 1 || r.PrefixGroup > 4 {
			t.Fatalf("group %d outside 1..4", r.PrefixGroup)
		}
		if r.PrefixLen < 1 || r.PrefixLen > r.InputLen {
			t.Fatalf("prefix %d outside 1..input %d", r.PrefixLen, r.InputLen)
		}
	}
	if tagged < 16 || tagged > 48 {
		t.Fatalf("tagged %d of 64 at fraction 0.5", tagged)
	}
	if len(groups) != 4 {
		t.Fatalf("round-robin used %d of 4 groups", len(groups))
	}

	// Members of one group agree on the document length (up to clamping).
	byGroup := map[int64]int{}
	for _, r := range a {
		if r.PrefixGroup == 0 || r.PrefixLen == r.InputLen {
			continue // clamped members may differ
		}
		if prev, ok := byGroup[r.PrefixGroup]; ok && prev != r.PrefixLen {
			t.Fatalf("group %d has prefix lengths %d and %d", r.PrefixGroup, prev, r.PrefixLen)
		}
		byGroup[r.PrefixGroup] = r.PrefixLen
	}

	// No-ops leave the stream untouched.
	c := fresh()
	if got := AssignPrefixGroups(c, 0, doc, 1, 9); !reflect.DeepEqual(got, fresh()) {
		t.Fatal("groups=0 modified the stream")
	}
	if got := AssignPrefixGroups(c, 4, doc, 0, 9); !reflect.DeepEqual(got, fresh()) {
		t.Fatal("fraction=0 modified the stream")
	}
}
