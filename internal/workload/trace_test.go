package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T) Trace {
	t.Helper()
	sc, err := ScenarioByName(ScenarioBurstCreative)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sc.Trace(32, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The tentpole guarantee: export → import → export is byte-identical, so a
// saved scenario realisation replays byte-stably forever.
func TestTraceRoundTripByteIdentical(t *testing.T) {
	tr := sampleTrace(t)
	first, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := back.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round-trip changed bytes:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("round-trip changed the trace value")
	}
}

func TestTraceWorkloadRoundTrip(t *testing.T) {
	sc, err := ScenarioByName(ScenarioSteadyQA)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := sc.Requests(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("t", sc.Name, 7, reqs)
	if got := tr.Workload(); !reflect.DeepEqual(got, reqs) {
		t.Fatal("Workload() does not reproduce the original requests")
	}
}

func TestTraceClampsNegativeArrivals(t *testing.T) {
	tr := NewTrace("t", "", 0, []Request{{ID: 0, InputLen: 4, OutputLen: 4, Arrival: -1}})
	if tr.Requests[0].Arrival != 0 {
		t.Fatalf("negative arrival recorded as %g, want 0", tr.Requests[0].Arrival)
	}
}

func TestImportTraceRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"no name":       `{"seed":1,"requests":[{"id":0,"input":4,"output":4,"arrival_s":0}]}`,
		"empty":         `{"name":"x","seed":1,"requests":[]}`,
		"bad lengths":   `{"name":"x","seed":1,"requests":[{"id":0,"input":0,"output":4,"arrival_s":0}]}`,
		"negative time": `{"name":"x","seed":1,"requests":[{"id":0,"input":4,"output":4,"arrival_s":-2}]}`,
		"duplicate id":  `{"name":"x","seed":1,"requests":[{"id":0,"input":4,"output":4,"arrival_s":0},{"id":0,"input":4,"output":4,"arrival_s":1}]}`,
		"unknown field": `{"name":"x","seed":1,"bogus":true,"requests":[{"id":0,"input":4,"output":4,"arrival_s":0}]}`,
		"not json":      `hello`,
	}
	for label, data := range cases {
		if _, err := ImportTrace([]byte(data)); err == nil {
			t.Errorf("%s: import accepted invalid trace", label)
		} else if !strings.Contains(err.Error(), "workload:") {
			t.Errorf("%s: error %q lacks package prefix", label, err)
		}
	}
}

// Prefix-sharing metadata must survive both round trips (to bytes and back,
// and to a runnable stream and back) and be validated on import.
func TestTracePrefixFields(t *testing.T) {
	reqs := []Request{
		{ID: 0, InputLen: 64, OutputLen: 8, PrefixGroup: 3, PrefixLen: 48},
		{ID: 1, InputLen: 64, OutputLen: 8},
	}
	tr := NewTrace("t", "", 0, reqs)
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Workload(); !reflect.DeepEqual(got, reqs) {
		t.Fatalf("prefix fields lost in round trip: %+v", got)
	}
	if bytes.Contains(data, []byte(`"prefix_group": 0`)) {
		t.Fatal("zero prefix group serialised instead of omitted")
	}

	bad := map[string]string{
		"prefix beyond input":  `{"name":"x","seed":1,"requests":[{"id":0,"input":4,"output":4,"arrival_s":0,"prefix_group":1,"prefix_len":5}]}`,
		"prefix without group": `{"name":"x","seed":1,"requests":[{"id":0,"input":4,"output":4,"arrival_s":0,"prefix_len":2}]}`,
	}
	for label, data := range bad {
		if _, err := ImportTrace([]byte(data)); err == nil {
			t.Errorf("%s: import accepted invalid trace", label)
		}
	}
}
