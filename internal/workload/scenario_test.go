package workload

import (
	"reflect"
	"testing"
)

func TestScenarioRegistryResolves(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 4 {
		t.Fatalf("registry has %d scenarios, want ≥ 4", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		seen[name] = true
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name || sc.Description == "" || len(sc.Mix) == 0 || sc.NewArrivals == nil {
			t.Fatalf("scenario %q is incompletely specified: %+v", name, sc)
		}
	}
	if _, err := ScenarioByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario resolved")
	}
}

// Every registered scenario must realise identically for a fixed seed —
// open-loop streams and closed-loop plans alike.
func TestScenariosDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.ClosedLoop() {
				a, err := sc.Plan(24, 42)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sc.Plan(24, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatal("closed-loop plan differs between identically seeded generations")
				}
				c, err := sc.Plan(24, 43)
				if err != nil {
					t.Fatal(err)
				}
				if reflect.DeepEqual(a, c) {
					t.Fatal("plan identical across different seeds")
				}
			} else {
				a, err := sc.Requests(48, 42)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sc.Requests(48, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatal("request stream differs between identically seeded generations")
				}
			}
		})
	}
}

func TestScenarioModeMismatch(t *testing.T) {
	open, err := ScenarioByName(ScenarioSteadyQA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open.Plan(8, 1); err == nil {
		t.Fatal("open-loop scenario produced a conversation plan")
	}
	closed, err := ScenarioByName(ScenarioChatMultiTurn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := closed.Requests(8, 1); err == nil {
		t.Fatal("closed-loop scenario produced an open-loop stream")
	}
	if _, err := open.Requests(0, 1); err == nil {
		t.Fatal("zero-count stream accepted")
	}
	if _, err := closed.Plan(0, 1); err == nil {
		t.Fatal("zero-count plan accepted")
	}
}

func TestMultiTurnPlanShape(t *testing.T) {
	sc, err := ScenarioByName(ScenarioChatMultiTurn)
	if err != nil {
		t.Fatal(err)
	}
	convs, err := sc.Plan(32, 42)
	if err != nil {
		t.Fatal(err)
	}
	mt := sc.MultiTurn
	sawMulti := false
	for _, c := range convs {
		if len(c.Turns) < mt.MinTurns || len(c.Turns) > mt.MaxTurns {
			t.Fatalf("conversation %d has %d turns outside [%d, %d]", c.ID, len(c.Turns), mt.MinTurns, mt.MaxTurns)
		}
		if len(c.Turns) > 1 {
			sawMulti = true
		}
		for k, turn := range c.Turns {
			if turn.Input <= 0 || turn.Output <= 0 {
				t.Fatalf("conversation %d turn %d has non-positive lengths", c.ID, k)
			}
			if k == 0 && turn.Think != 0 {
				t.Fatalf("conversation %d first turn has think time %v", c.ID, turn.Think)
			}
			if k > 0 && turn.Think < mt.Think.Min {
				t.Fatalf("conversation %d turn %d think %v below min %v", c.ID, k, turn.Think, mt.Think.Min)
			}
		}
	}
	if !sawMulti {
		t.Fatal("no conversation has more than one turn")
	}
	if got := TotalTurns(convs); got < 2*len(convs) {
		t.Fatalf("total turns %d implausibly low for %d conversations", got, len(convs))
	}
}

// The diurnal-mixed scenario samples both mix components.
func TestScenarioMixtureSamplesBothComponents(t *testing.T) {
	sc, err := ScenarioByName(ScenarioDiurnalMixed)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := sc.Requests(400, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Creative-writing outputs are several times longer than qa answers;
	// with a 70/30 mix, the stream must contain both short and long tails.
	short, long := 0, 0
	for _, r := range reqs {
		if r.OutputLen >= 300 {
			long++
		}
		if r.OutputLen <= 150 {
			short++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("mixture degenerate: %d short, %d long outputs of %d", short, long, len(reqs))
	}
}
