package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/papi-sim/papi/internal/units"
)

// ArrivalProcess generates request arrival instants one at a time. An
// implementation may carry state (the on-off process tracks which phase it is
// in), so one instance belongs to one generation pass: construct a fresh
// process per trace. All randomness flows through the caller's rng, which is
// what makes a scenario deterministic for a fixed seed.
type ArrivalProcess interface {
	Name() string
	// NextAfter returns the next arrival instant strictly after t.
	NextAfter(t units.Seconds, rng *rand.Rand) units.Seconds
}

// PoissonProcess is the stationary memoryless arrival stream: exponential
// inter-arrival gaps at a constant rate. This is the regime every experiment
// before the scenario engine assumed.
type PoissonProcess struct {
	Rate float64 // mean arrivals per second (> 0)
}

// NewPoisson returns a stationary Poisson process at ratePerSec. A
// non-positive rate is a programming error and panics: it would generate
// infinite inter-arrival gaps.
func NewPoisson(ratePerSec float64) *PoissonProcess {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("workload: poisson rate %g must be positive", ratePerSec))
	}
	return &PoissonProcess{Rate: ratePerSec}
}

// Name identifies the process and its rate.
func (p *PoissonProcess) Name() string { return fmt.Sprintf("poisson(%g/s)", p.Rate) }

// NextAfter draws one exponential gap.
func (p *PoissonProcess) NextAfter(t units.Seconds, rng *rand.Rand) units.Seconds {
	return t + units.Seconds(rng.ExpFloat64()/p.Rate)
}

// OnOffProcess is a two-phase Markov-modulated Poisson process: bursts at
// BurstRate alternate with lulls at BaseRate, with exponentially distributed
// phase dwell times. It models the flash-crowd traffic that stresses
// admission control and router load spreading: a burst piles RLP onto the
// fleet faster than requests drain, then the lull lets the batch decay —
// exactly the dynamic-parallelism swing PAPI's scheduler exploits.
//
// Because the exponential distribution is memoryless, re-drawing the gap at
// each phase switch with the new phase's rate samples the MMPP exactly.
type OnOffProcess struct {
	BurstRate float64       // arrivals/s while bursting (> 0)
	BaseRate  float64       // arrivals/s during lulls (> 0)
	MeanBurst units.Seconds // mean burst-phase dwell (> 0)
	MeanLull  units.Seconds // mean lull-phase dwell (> 0)

	started  bool
	bursting bool
	phaseEnd units.Seconds
}

// NewOnOff returns a bursty on-off process that starts in a lull. All four
// parameters must be positive; violations are programming errors and panic
// (a zero rate or dwell would hang or degenerate the sampler).
func NewOnOff(burstRate, baseRate float64, meanBurst, meanLull units.Seconds) *OnOffProcess {
	if burstRate <= 0 || baseRate <= 0 {
		panic(fmt.Sprintf("workload: on-off rates (%g, %g) must be positive", burstRate, baseRate))
	}
	if meanBurst <= 0 || meanLull <= 0 {
		panic(fmt.Sprintf("workload: on-off dwells (%v, %v) must be positive", meanBurst, meanLull))
	}
	return &OnOffProcess{
		BurstRate: burstRate,
		BaseRate:  baseRate,
		MeanBurst: meanBurst,
		MeanLull:  meanLull,
	}
}

// Name identifies the process and both phase rates.
func (p *OnOffProcess) Name() string {
	return fmt.Sprintf("on-off(%g/s burst, %g/s lull)", p.BurstRate, p.BaseRate)
}

// NextAfter advances through phase switches until a gap lands inside the
// current phase.
func (p *OnOffProcess) NextAfter(t units.Seconds, rng *rand.Rand) units.Seconds {
	if !p.started {
		p.started = true
		p.bursting = false
		p.phaseEnd = t + units.Seconds(rng.ExpFloat64())*p.MeanLull
	}
	for {
		rate := p.BaseRate
		if p.bursting {
			rate = p.BurstRate
		}
		next := t + units.Seconds(rng.ExpFloat64()/rate)
		if next <= p.phaseEnd {
			return next
		}
		t = p.phaseEnd
		p.bursting = !p.bursting
		dwell := p.MeanLull
		if p.bursting {
			dwell = p.MeanBurst
		}
		p.phaseEnd = t + units.Seconds(rng.ExpFloat64())*dwell
	}
}

// DiurnalProcess is an inhomogeneous Poisson process whose rate follows a
// sinusoidal day curve: rate(t) = Base · (1 + Amplitude·sin(2πt/Period)).
// It models the slow load swing of a user-facing service — the fleet must
// ride peak rate without violating the SLO while not idling the trough —
// compressed to a simulable period. Sampling uses Lewis–Shedler thinning
// against the peak rate, which is exact for any bounded rate curve.
type DiurnalProcess struct {
	Base      float64       // mean arrivals/s over a full period (> 0)
	Amplitude float64       // relative swing in [0, 1)
	Period    units.Seconds // one full day-cycle (> 0)
}

// NewDiurnal returns a sinusoidal-rate process. Base and period must be
// positive and the amplitude must sit in [0, 1); violations are programming
// errors and panic (a non-positive peak rate would make the thinning
// sampler loop forever).
func NewDiurnal(base, amplitude float64, period units.Seconds) *DiurnalProcess {
	if base <= 0 {
		panic(fmt.Sprintf("workload: diurnal base rate %g must be positive", base))
	}
	if amplitude < 0 || amplitude >= 1 {
		panic(fmt.Sprintf("workload: diurnal amplitude %g outside [0, 1)", amplitude))
	}
	if period <= 0 {
		panic(fmt.Sprintf("workload: diurnal period %v must be positive", period))
	}
	return &DiurnalProcess{Base: base, Amplitude: amplitude, Period: period}
}

// Name identifies the process, its swing, and its period.
func (p *DiurnalProcess) Name() string {
	return fmt.Sprintf("diurnal(%g/s ±%.0f%%, period %v)", p.Base, 100*p.Amplitude, p.Period)
}

// Rate evaluates the instantaneous arrival rate at t.
func (p *DiurnalProcess) Rate(t units.Seconds) float64 {
	return p.Base * (1 + p.Amplitude*math.Sin(2*math.Pi*t.Seconds()/p.Period.Seconds()))
}

// NextAfter thins a peak-rate Poisson stream down to the sinusoidal curve.
func (p *DiurnalProcess) NextAfter(t units.Seconds, rng *rand.Rand) units.Seconds {
	peak := p.Base * (1 + p.Amplitude)
	for {
		t += units.Seconds(rng.ExpFloat64() / peak)
		if rng.Float64()*peak <= p.Rate(t) {
			return t
		}
	}
}

// ArrivalTimes draws n arrival instants from the process, starting at time
// zero. The process instance is consumed (stateful processes advance).
func ArrivalTimes(p ArrivalProcess, n int, rng *rand.Rand) []units.Seconds {
	out := make([]units.Seconds, n)
	t := units.Seconds(0)
	for i := range out {
		t = p.NextAfter(t, rng)
		out[i] = t
	}
	return out
}
