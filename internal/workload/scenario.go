package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/papi-sim/papi/internal/units"
)

// WeightedDataset is one component of a scenario's length mix. Class tags
// every request drawn from the component with a priority class, so a tiered
// scenario can mix latency-bound interactive traffic with preemptible batch
// work in one stream (zero value: interactive).
type WeightedDataset struct {
	Dataset Dataset
	Weight  float64
	Class   Class
}

// ThinkTimeDist is a clamped log-normal over user think time — the gap
// between an answer completing and the follow-up question arriving.
type ThinkTimeDist struct {
	Median units.Seconds
	Sigma  float64
	Min    units.Seconds
	Max    units.Seconds
}

// Sample draws one think time.
func (d ThinkTimeDist) Sample(rng *rand.Rand) units.Seconds {
	v := units.Seconds(math.Exp(math.Log(d.Median.Seconds()) + d.Sigma*rng.NormFloat64()))
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}

// MultiTurnSpec shapes closed-loop conversations: how many turns each
// conversation runs, how long the user thinks between turns, and how many
// new prompt tokens each follow-up adds on top of the grown context.
type MultiTurnSpec struct {
	// MinTurns and MaxTurns bound the uniformly sampled turn count (≥ 1).
	MinTurns, MaxTurns int
	// Think is the per-gap user think time.
	Think ThinkTimeDist
	// FollowUpInput is the NEW prompt tokens a follow-up turn adds. The
	// engine-facing input of turn k is the full grown context — every prior
	// turn's input and output plus these new tokens — so the KV footprint
	// and attention cost compound turn over turn.
	FollowUpInput LengthDist
}

// Turn is one pre-sampled conversation turn. Input is the new prompt tokens
// only; the closed-loop driver in internal/cluster expands it to the full
// grown context when it pushes the request.
type Turn struct {
	Input  int
	Output int
	// Think is the gap between the previous turn completing and this turn
	// arriving (zero for the first turn).
	Think units.Seconds
}

// Conversation is one pre-sampled closed-loop conversation: everything about
// it is fixed up front except the arrival instants of turns ≥ 2, which
// depend on when the simulated engine finishes the preceding answers. That
// split is what keeps closed-loop scenarios deterministic for a fixed seed
// while still coupling arrivals to simulated service times.
type Conversation struct {
	ID      int
	Arrival units.Seconds // first-turn arrival
	Turns   []Turn
}

// TotalTurns sums the turn counts of a conversation plan.
func TotalTurns(convs []Conversation) int {
	n := 0
	for _, c := range convs {
		n += len(c.Turns)
	}
	return n
}

// Scenario is a named workload regime: an arrival process crossed with a
// length mix, optionally closed-loop (multi-turn). Scenarios are the
// vocabulary the experiment drivers and CLIs share; the registry below names
// the regimes the evaluation sweeps.
type Scenario struct {
	Name        string
	Description string
	// Mix is the length mixture; each request samples one component by
	// weight. A single-element mix reproduces the plain datasets.
	Mix []WeightedDataset
	// NewArrivals builds a fresh arrival process per generation pass
	// (processes may be stateful).
	NewArrivals func() ArrivalProcess
	// MultiTurn marks the scenario closed-loop; open-loop scenarios leave it
	// nil. Closed-loop scenarios generate conversation plans (Plan), not
	// request streams (Requests).
	MultiTurn *MultiTurnSpec
}

// ClosedLoop reports whether the scenario's arrivals depend on completions.
func (s Scenario) ClosedLoop() bool { return s.MultiTurn != nil }

// pick samples one mix component by weight.
func (s Scenario) pick(rng *rand.Rand) WeightedDataset {
	if len(s.Mix) == 1 {
		return s.Mix[0]
	}
	total := 0.0
	for _, w := range s.Mix {
		total += w.Weight
	}
	x := rng.Float64() * total
	for _, w := range s.Mix {
		x -= w.Weight
		if x < 0 {
			return w
		}
	}
	return s.Mix[len(s.Mix)-1]
}

// Requests draws an open-loop stream of n requests deterministically from
// the seed. Closed-loop scenarios have no open-loop stream — use Plan.
func (s Scenario) Requests(n int, seed int64) ([]Request, error) {
	if s.ClosedLoop() {
		return nil, fmt.Errorf("workload: scenario %q is closed-loop; generate a conversation plan with Plan", s.Name)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: scenario %q request count %d must be positive", s.Name, n)
	}
	rng := rand.New(rand.NewSource(seed))
	proc := s.NewArrivals()
	times := ArrivalTimes(proc, n, rng)
	reqs := make([]Request, n)
	for i := range reqs {
		w := s.pick(rng)
		reqs[i] = Request{
			ID:        i,
			InputLen:  w.Dataset.Input.Sample(rng),
			OutputLen: w.Dataset.Output.Sample(rng),
			Arrival:   times[i],
			Class:     w.Class,
		}
	}
	return reqs, nil
}

// Each streams an open-loop request sequence one request at a time, in
// arrival order, without ever materialising the slice — the generator the
// constant-memory scale paths (cluster.RunSeq, BenchmarkMillionRequest)
// consume, where a million-request stream must not cost a million-request
// buffer. Arrivals are strictly increasing and the sequence is deterministic
// for a fixed (n, seed). yield returning false stops the stream early.
//
// Draw order note: Requests consumes its rng for all n arrivals first and
// only then samples lengths, which a one-at-a-time generator cannot
// reproduce (arrival thinning consumes a data-dependent number of draws).
// Each therefore owns two derived rngs — one for arrivals, one for mix and
// length draws — so Each(n, seed) is its own deterministic stream, not a
// replay of Requests(n, seed). docs/SCALE.md records this contract.
func (s Scenario) Each(n int, seed int64, yield func(Request) bool) error {
	if s.ClosedLoop() {
		return fmt.Errorf("workload: scenario %q is closed-loop; generate a conversation plan with Plan", s.Name)
	}
	if n <= 0 {
		return fmt.Errorf("workload: scenario %q request count %d must be positive", s.Name, n)
	}
	arrRng := rand.New(rand.NewSource(seed))
	lenRng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	proc := s.NewArrivals()
	t := units.Seconds(0)
	for i := 0; i < n; i++ {
		t = proc.NextAfter(t, arrRng)
		w := s.pick(lenRng)
		req := Request{
			ID:        i,
			InputLen:  w.Dataset.Input.Sample(lenRng),
			OutputLen: w.Dataset.Output.Sample(lenRng),
			Arrival:   t,
			Class:     w.Class,
		}
		if !yield(req) {
			return nil
		}
	}
	return nil
}

// Trace realises the scenario as a replayable open-loop trace.
func (s Scenario) Trace(n int, seed int64) (Trace, error) {
	reqs, err := s.Requests(n, seed)
	if err != nil {
		return Trace{}, err
	}
	return NewTrace(s.Name, s.Name, seed, reqs), nil
}

// Plan pre-samples n closed-loop conversations deterministically from the
// seed: first-turn arrivals come from the scenario's arrival process; turn
// counts, per-turn lengths, and think times are fixed up front. Open-loop
// scenarios have no plan — use Requests.
func (s Scenario) Plan(n int, seed int64) ([]Conversation, error) {
	if !s.ClosedLoop() {
		return nil, fmt.Errorf("workload: scenario %q is open-loop; generate a request stream with Requests", s.Name)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: scenario %q conversation count %d must be positive", s.Name, n)
	}
	mt := s.MultiTurn
	if mt.MinTurns < 1 || mt.MaxTurns < mt.MinTurns {
		return nil, fmt.Errorf("workload: scenario %q has invalid turn bounds [%d, %d]", s.Name, mt.MinTurns, mt.MaxTurns)
	}
	rng := rand.New(rand.NewSource(seed))
	proc := s.NewArrivals()
	times := ArrivalTimes(proc, n, rng)
	convs := make([]Conversation, n)
	for i := range convs {
		ds := s.pick(rng).Dataset
		turns := mt.MinTurns + rng.Intn(mt.MaxTurns-mt.MinTurns+1)
		c := Conversation{ID: i, Arrival: times[i], Turns: make([]Turn, turns)}
		for k := range c.Turns {
			t := Turn{Output: ds.Output.Sample(rng)}
			if k == 0 {
				t.Input = ds.Input.Sample(rng)
			} else {
				t.Input = mt.FollowUpInput.Sample(rng)
				t.Think = mt.Think.Sample(rng)
			}
			c.Turns[k] = t
		}
		convs[i] = c
	}
	return convs, nil
}

// LongContext returns a document-grounded workload: prompts carry thousands
// of context tokens (retrieved passages, files, long documents) and answers
// are moderate. This is the regime L3 (DIMM-PIM) targets — KV footprints
// dominated by the prompt, stressing attention bandwidth and the KV-headroom
// admission limit rather than decode cadence.
func LongContext() Dataset {
	return Dataset{
		Name:   "long-context",
		Input:  LengthDist{Median: 2048, Sigma: 0.5, Min: 512, Max: 6144},
		Output: LengthDist{Median: 256, Sigma: 0.5, Min: 32, Max: 1024},
	}
}

// Registered scenario names, in presentation order.
const (
	ScenarioSteadyQA      = "steady-qa"
	ScenarioBurstCreative = "burst-creative"
	ScenarioDiurnalMixed  = "diurnal-mixed"
	ScenarioChatMultiTurn = "chat-multiturn"
	ScenarioLongCtxHeavy  = "longctx-heavy"
	ScenarioTieredDiurnal = "tiered-diurnal"
)

// Scenarios returns the registry: every named scenario, in presentation
// order. Each call builds fresh values, so callers may not corrupt the
// registry.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        ScenarioSteadyQA,
			Description: "stationary Poisson general-qa traffic — the baseline regime every pre-scenario experiment assumed",
			Mix:         []WeightedDataset{{Dataset: GeneralQA(), Weight: 1}},
			NewArrivals: func() ArrivalProcess { return NewPoisson(20) },
		},
		{
			Name:        ScenarioBurstCreative,
			Description: "on-off flash crowds of long creative-writing requests — RLP piles up in bursts, then decays through the lull",
			Mix:         []WeightedDataset{{Dataset: CreativeWriting(), Weight: 1}},
			NewArrivals: func() ArrivalProcess {
				return NewOnOff(40, 2, units.Seconds(1.5), units.Seconds(4))
			},
		},
		{
			Name:        ScenarioDiurnalMixed,
			Description: "sinusoidal day-curve rate over a 70/30 qa/creative mix — peak load meets trough idle on one fleet",
			Mix: []WeightedDataset{
				{Dataset: GeneralQA(), Weight: 0.7},
				{Dataset: CreativeWriting(), Weight: 0.3},
			},
			NewArrivals: func() ArrivalProcess {
				return NewDiurnal(12, 0.8, units.Seconds(20))
			},
		},
		{
			Name:        ScenarioChatMultiTurn,
			Description: "closed-loop conversations: follow-ups arrive after the previous answer completes and re-use the grown context",
			Mix:         []WeightedDataset{{Dataset: GeneralQA(), Weight: 1}},
			NewArrivals: func() ArrivalProcess { return NewPoisson(6) },
			MultiTurn: &MultiTurnSpec{
				MinTurns: 2,
				MaxTurns: 5,
				Think: ThinkTimeDist{
					Median: units.Seconds(2),
					Sigma:  0.5,
					Min:    units.Seconds(0.25),
					Max:    units.Seconds(10),
				},
				FollowUpInput: LengthDist{Median: 32, Sigma: 0.6, Min: 4, Max: 256},
			},
		},
		{
			Name:        ScenarioLongCtxHeavy,
			Description: "low-rate stream of multi-thousand-token-context requests — KV footprint and attention bandwidth dominate",
			Mix:         []WeightedDataset{{Dataset: LongContext(), Weight: 1}},
			NewArrivals: func() ArrivalProcess { return NewPoisson(4) },
		},
		{
			Name:        ScenarioTieredDiurnal,
			Description: "day-curve traffic split into priority tiers: interactive qa rides the peak while preemptible batch creative work fills the trough",
			Mix: []WeightedDataset{
				{Dataset: GeneralQA(), Weight: 0.65, Class: ClassInteractive},
				{Dataset: CreativeWriting(), Weight: 0.35, Class: ClassBatch},
			},
			NewArrivals: func() ArrivalProcess {
				return NewDiurnal(12, 0.8, units.Seconds(20))
			},
		},
	}
}

// ScenarioNames lists the registered scenario names in presentation order.
func ScenarioNames() []string {
	scs := Scenarios()
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName resolves a registered scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
}
