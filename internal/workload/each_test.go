package workload

import (
	"reflect"
	"testing"
)

// TestScenarioEach pins the streaming generator's contract: deterministic
// for a fixed (n, seed), strictly increasing arrivals, sequential IDs, and
// an early-stopping yield.
func TestScenarioEach(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.ClosedLoop() {
			if err := sc.Each(4, 1, func(Request) bool { return true }); err == nil {
				t.Fatalf("%s: closed-loop scenario streamed open-loop", sc.Name)
			}
			continue
		}
		collect := func() []Request {
			var out []Request
			if err := sc.Each(200, 42, func(r Request) bool {
				out = append(out, r)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		a, b := collect(), collect()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Each is not deterministic", sc.Name)
		}
		if len(a) != 200 {
			t.Fatalf("%s: yielded %d of 200", sc.Name, len(a))
		}
		prev := Request{Arrival: -1}
		for i, r := range a {
			if r.ID != i {
				t.Fatalf("%s: request %d has ID %d", sc.Name, i, r.ID)
			}
			if r.Arrival <= prev.Arrival {
				t.Fatalf("%s: arrival %v not after %v", sc.Name, r.Arrival, prev.Arrival)
			}
			if r.InputLen <= 0 || r.OutputLen <= 0 {
				t.Fatalf("%s: request %d has empty lengths", sc.Name, i)
			}
			prev = r
		}
		seen := 0
		if err := sc.Each(200, 42, func(r Request) bool {
			seen++
			return seen < 10
		}); err != nil {
			t.Fatal(err)
		}
		if seen != 10 {
			t.Fatalf("%s: early stop yielded %d, want 10", sc.Name, seen)
		}
	}

	if err := (Scenario{Name: "x", NewArrivals: func() ArrivalProcess { return NewPoisson(1) },
		Mix: []WeightedDataset{{Dataset: GeneralQA(), Weight: 1}}}).Each(0, 1, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestScenarioEachTieredClasses checks the tiered mix actually streams both
// priority classes — the property the tiered-diurnal scale runs rely on.
func TestScenarioEachTieredClasses(t *testing.T) {
	sc, err := ScenarioByName(ScenarioTieredDiurnal)
	if err != nil {
		t.Fatal(err)
	}
	count := map[Class]int{}
	if err := sc.Each(500, 7, func(r Request) bool {
		count[r.Class]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count[ClassInteractive] == 0 || count[ClassBatch] == 0 {
		t.Fatalf("tiered stream missing a class: %v", count)
	}
}
