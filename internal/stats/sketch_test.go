package stats_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/papi-sim/papi/internal/stats"
	"github.com/papi-sim/papi/internal/workload"
)

// sketchOf feeds xs into a fresh sketch in order.
func sketchOf(k int, xs []float64) *stats.Sketch {
	s := stats.NewSketchK(k)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// TestSketchExactRegime pins the golden-safety contract: while count ≤ k the
// sketch IS the nearest-rank oracle, bit for bit — quantiles, the standard
// summary, CountLE, min, and max.
func TestSketchExactRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]float64{
		"empty":      {},
		"single":     {3.25},
		"duplicates": {1, 1, 1, 2, 2, 0.5, 0.5},
		"negatives":  {-4, 2, -7.5, 0, 3, -1},
	}
	uniform := make([]float64, stats.DefaultSketchK) // exactly at capacity
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	cases["at-capacity"] = uniform

	for name, xs := range cases {
		s := sketchOf(stats.DefaultSketchK, xs)
		if s.Count() != int64(len(xs)) {
			t.Fatalf("%s: count %d, want %d", name, s.Count(), len(xs))
		}
		for _, p := range []float64{0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100} {
			if got, want := s.Quantile(p), stats.Percentile(xs, p); got != want {
				t.Errorf("%s: p%v = %v, oracle %v", name, p, got, want)
			}
		}
		if got, want := s.Summary(), stats.Summarize(xs); got != want {
			t.Errorf("%s: summary %+v, oracle %+v", name, got, want)
		}
		mn, mx := stats.MinMax(xs)
		if s.Min() != mn || s.Max() != mx {
			t.Errorf("%s: min/max %v/%v, want %v/%v", name, s.Min(), s.Max(), mn, mx)
		}
		for _, x := range xs {
			want := int64(0)
			for _, v := range xs {
				if v <= x {
					want++
				}
			}
			if got := s.CountLE(x); got != want {
				t.Errorf("%s: CountLE(%v) = %d, want %d", name, x, got, want)
			}
		}
	}
}

// TestSketchMergeExactRegime pins the fleet-aggregation contract: merging
// per-chunk exact sketches whose union still fits in k reproduces the whole
// stream's oracle exactly — so fleet summaries merged from per-replica
// sketches stay byte-identical to the retained-slice path on every fixture.
func TestSketchMergeExactRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	merged := stats.NewSketch()
	for lo := 0; lo < len(xs); lo += 100 {
		merged.Merge(sketchOf(stats.DefaultSketchK, xs[lo:lo+100]))
	}
	if merged.Count() != int64(len(xs)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(xs))
	}
	if got, want := merged.Summary(), stats.Summarize(xs); got != want {
		t.Fatalf("merged summary %+v, oracle %+v", got, want)
	}
	for _, p := range []float64{0, 10, 50, 95, 99, 100} {
		if got, want := merged.Quantile(p), stats.Percentile(xs, p); got != want {
			t.Fatalf("merged p%v = %v, oracle %v", p, got, want)
		}
	}
}

// rankErrBound is the documented worst-case relative rank error of a
// compacted sketch: log2(2n/k)/k.
func rankErrBound(n, k int) float64 {
	if n <= k {
		return 0
	}
	return math.Log2(2*float64(n)/float64(k)) / float64(k)
}

// checkWithinBound asserts every standard percentile of the sketch lands
// within the documented rank-error window of the exact oracle.
func checkWithinBound(t *testing.T, name string, k int, xs []float64) {
	t.Helper()
	s := sketchOf(k, xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	slack := int(math.Ceil(rankErrBound(n, k)*float64(n))) + 1
	for _, p := range []float64{50, 95, 99} {
		got := s.Quantile(p)
		rank := int(math.Ceil(p/100*float64(n))) - 1
		lo, hi := rank-slack, rank+slack
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		if got < sorted[lo] || got > sorted[hi] {
			t.Errorf("%s: p%v = %v outside rank window [%v, %v] (±%d ranks of %d)",
				name, p, got, sorted[lo], sorted[hi], slack, n)
		}
	}
	if s.Min() != sorted[0] || s.Max() != sorted[n-1] {
		t.Errorf("%s: min/max drifted: %v/%v want %v/%v", name, s.Min(), s.Max(), sorted[0], sorted[n-1])
	}
}

// TestSketchErrorBoundScenarioMixes drives the compacted regime (small k,
// thousands of samples) with the latency-shaped distributions every
// registered scenario mix actually produces — arrival gaps, input lengths,
// output lengths, think times — and checks the documented error bound.
func TestSketchErrorBoundScenarioMixes(t *testing.T) {
	const n, k = 4000, 64
	for _, sc := range workload.Scenarios() {
		gaps := make([]float64, 0, n)
		inputs := make([]float64, 0, n)
		outputs := make([]float64, 0, n)
		if sc.ClosedLoop() {
			convs, err := sc.Plan(n/3, 5)
			if err != nil {
				t.Fatal(err)
			}
			prev := 0.0
			for _, c := range convs {
				gaps = append(gaps, c.Arrival.Seconds()-prev)
				prev = c.Arrival.Seconds()
				for _, turn := range c.Turns {
					inputs = append(inputs, float64(turn.Input))
					outputs = append(outputs, float64(turn.Output))
				}
			}
		} else {
			reqs, err := sc.Requests(n, 5)
			if err != nil {
				t.Fatal(err)
			}
			prev := 0.0
			for _, r := range reqs {
				gaps = append(gaps, r.Arrival.Seconds()-prev)
				prev = r.Arrival.Seconds()
				inputs = append(inputs, float64(r.InputLen))
				outputs = append(outputs, float64(r.OutputLen))
			}
		}
		checkWithinBound(t, sc.Name+"/gaps", k, gaps)
		checkWithinBound(t, sc.Name+"/inputs", k, inputs)
		checkWithinBound(t, sc.Name+"/outputs", k, outputs)
	}
}

// TestSketchErrorBoundRandom widens the property search beyond the scenario
// shapes: lognormal, uniform, bimodal, and sorted adversarial streams across
// several seeds and sizes.
func TestSketchErrorBoundRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{500, 3000, 20000} {
			lognormal := make([]float64, n)
			uniform := make([]float64, n)
			bimodal := make([]float64, n)
			for i := 0; i < n; i++ {
				lognormal[i] = math.Exp(0.8 * rng.NormFloat64())
				uniform[i] = rng.Float64()
				if rng.Float64() < 0.2 {
					bimodal[i] = 100 + rng.Float64()
				} else {
					bimodal[i] = rng.Float64()
				}
			}
			ascending := append([]float64(nil), lognormal...)
			sort.Float64s(ascending)
			for _, k := range []int{32, 128} {
				checkWithinBound(t, "lognormal", k, lognormal)
				checkWithinBound(t, "uniform", k, uniform)
				checkWithinBound(t, "bimodal", k, bimodal)
				checkWithinBound(t, "ascending", k, ascending)
			}
		}
	}
}

// TestSketchDeterministic pins bit-for-bit reproducibility: the same add
// sequence yields deeply equal sketches and identical serialised bytes, with
// no dependence on how often the sketch was queried in between.
func TestSketchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	a, b := sketchOf(96, xs), sketchOf(96, xs)
	a.Quantile(95) // queries must not perturb state
	a.Summary()
	a.CountLE(0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical add sequences produced different sketches")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical sketches serialised to different bytes")
	}
}

// TestSketchJSONRoundTrip pins the checkpoint contract: export → import →
// export is byte-identical, the imported sketch answers queries identically,
// and corrupted weight accounting is rejected.
func TestSketchJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 50, 5000} {
		s := stats.NewSketchK(64)
		for i := 0; i < n; i++ {
			s.Add(rng.ExpFloat64())
		}
		first, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back stats.Sketch
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("n=%d: round-trip not byte-identical:\n%s\n%s", n, first, second)
		}
		if got, want := back.Summary(), s.Summary(); got != want {
			t.Fatalf("n=%d: imported summary %+v, original %+v", n, got, want)
		}
		if back.Count() != s.Count() || back.Min() != s.Min() || back.Max() != s.Max() {
			t.Fatalf("n=%d: imported count/min/max drifted", n)
		}
	}

	var bad stats.Sketch
	if err := json.Unmarshal([]byte(`{"k":64,"count":7,"min":0,"max":1,"flips":[false],"levels":[[0.5]]}`), &bad); err == nil {
		t.Fatal("weight-violating sketch accepted")
	}
	if err := json.Unmarshal([]byte(`{"k":1,"count":0,"min":0,"max":0,"flips":[],"levels":[]}`), &bad); err == nil {
		t.Fatal("undersized capacity accepted")
	}
	if err := json.Unmarshal([]byte(`{"k":64,"count":0,"min":0,"max":0,"flips":[false],"levels":[]}`), &bad); err == nil {
		t.Fatal("mismatched flips/levels accepted")
	}
}

// TestPercentileInPlace pins the windowed-signal fix: identical values to
// the copying oracle, and zero allocations in the fill → query → reset
// steady state the autoscaler runs every control tick.
func TestPercentileInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 777)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, p := range []float64{0, 25, 50, 95, 99, 100} {
		want := stats.Percentile(xs, p) // copies; xs untouched
		if got := stats.PercentileInPlace(append([]float64(nil), xs...), p); got != want {
			t.Fatalf("p%v = %v, want %v", p, got, want)
		}
	}
	if got := stats.PercentileInPlace(nil, 95); got != 0 {
		t.Fatalf("empty window p95 = %v, want 0", got)
	}

	window := make([]float64, 0, 512)
	tick := func() {
		window = window[:0]
		for i := 0; i < 400; i++ {
			window = append(window, float64((i*2654435761)%1000))
		}
		stats.PercentileInPlace(window, 95)
	}
	tick() // warm up capacity
	if allocs := testing.AllocsPerRun(100, tick); allocs != 0 {
		t.Fatalf("windowed percentile cycle allocates %v times per tick, want 0", allocs)
	}
}

// TestSketchWindowReuseAllocs pins the streaming side of the same
// regression: a capacity-warmed sketch fills, merges, and resets without
// allocating.
func TestSketchWindowReuseAllocs(t *testing.T) {
	s := stats.NewSketchK(256)
	cycle := func() {
		s.Reset()
		for i := 0; i < 200; i++ {
			s.Add(float64(i%37) * 0.5)
		}
	}
	cycle() // warm up level storage
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("sketch window cycle allocates %v times, want 0", allocs)
	}
}
