// Package stats provides the small numeric and presentation utilities used by
// the experiment drivers: summaries, geometric means, and an ASCII table
// renderer for the figure reproductions printed by cmd/papibench.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 for empty input).
// Speedup ratios are aggregated geometrically, as in the paper's "average
// speedup" claims.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MinMax returns the extremes (zeros for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (nearest-rank) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is the nearest-rank rule over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Quantiles returns the nearest-rank percentile for each p in ps, sorting
// xs once. Empty input yields all zeros.
func Quantiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Summary digests a latency distribution at the percentiles online-serving
// SLOs are written against.
type Summary struct {
	P50, P95, P99 float64
}

// Summarize computes the p50/p95/p99 digest of xs (zeros for empty input).
func Summarize(xs []float64) Summary {
	q := Quantiles(xs, 50, 95, 99)
	return Summary{P50: q[0], P95: q[1], P99: q[2]}
}

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
