package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Fatalf("geomean with non-positive should be 0, got %v", got)
	}
	// Geomean of speedups is invariant to reciprocal-pairing.
	if got := GeoMean([]float64{0.5, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("geomean(0.5, 2) = %v, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Fatalf("minmax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minmax should be zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Percentile must not mutate the input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Quantiles(xs, 50, 95, 99)
	for i, p := range []float64{50, 95, 99} {
		if want := Percentile(xs, p); got[i] != want {
			t.Fatalf("Quantiles p%v = %v, want %v", p, got[i], want)
		}
	}
	for _, q := range Quantiles(nil, 50, 99) {
		if q != 0 {
			t.Fatal("empty Quantiles should be zeros")
		}
	}
	// Quantiles must not mutate the input.
	ys := []float64{3, 1, 2}
	Quantiles(ys, 50, 99)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantiles mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary should be zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "design", "speedup")
	tb.AddRow("PAPI", "1.8")
	tb.AddRow("AttAcc-only", "0.16")
	out := tb.String()
	if !strings.Contains(out, "Fig. X") || !strings.Contains(out, "AttAcc-only") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("cells beyond columns should be dropped")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short rows should render")
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
		}
		g := GeoMean(xs)
		lo, hi := MinMax(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 2.55
		b := float64(bRaw) / 2.55
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
