package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchK is the per-level capacity of a Sketch. It is sized so that
// every distribution the repo's figure reproductions and tests digest stays
// in the exact regime (count ≤ k ⇒ bit-identical to Quantiles), while a
// million-sample stream is still held in a few tens of kilobytes.
const DefaultSketchK = 2048

// Sketch is a deterministic, mergeable streaming quantile sketch in the
// KLL / Munro–Paterson family: a ladder of weighted sample buffers where
// level i holds samples of weight 2^i. Adds append to level 0; when a level
// overflows its capacity k, the level is sorted and deterministically halved
// (alternating parity, so no systematic rank bias), promoting the kept half
// with doubled weight. There is no randomness anywhere, so the same Add /
// Merge sequence reproduces the same sketch bit-for-bit — the property the
// serial ≡ sharded fleet equivalence pins.
//
// Exactness and error bound (pinned by the package tests):
//
//   - While count ≤ k the sketch is exact: Quantile and Summary reproduce
//     the nearest-rank oracle (Quantiles / Summarize) bit-for-bit, which is
//     what keeps every pre-existing golden byte-identical.
//   - Beyond k samples, each compaction at level i perturbs any rank by at
//     most 2^(i-1), giving a worst-case relative rank error of about
//     log2(2n/k)/k — with the default k = 2048 that is under 0.5% rank
//     error at n = 10^6 (p95 of a million samples lands within ±0.5% of
//     the exact rank). Min and Max are always exact.
//
// Merge concatenates the two ladders level by level and only then compacts
// levels that overflow, so merging exact sketches whose union still fits in
// k stays exact — fleet-level summaries over the small fixture fleets remain
// oracle-identical even though they are merged from per-replica sketches.
//
// The zero value is not ready to use; call NewSketch (or NewSketchK).
type Sketch struct {
	k      int
	count  int64
	min    float64
	max    float64
	levels [][]float64
	flips  []bool // per-level compaction parity (alternates each compaction)
}

// NewSketch returns an empty sketch with the default capacity.
func NewSketch() *Sketch { return NewSketchK(DefaultSketchK) }

// NewSketchK returns an empty sketch with per-level capacity k (≥ 2). Small
// capacities exist for tests that need to exercise compaction cheaply.
func NewSketchK(k int) *Sketch {
	if k < 2 {
		k = 2
	}
	return &Sketch{k: k}
}

// K reports the per-level capacity.
func (s *Sketch) K() int { return s.k }

// Count reports how many samples have been added (through Add or Merge).
func (s *Sketch) Count() int64 { return s.count }

// Empty reports whether the sketch holds no samples.
func (s *Sketch) Empty() bool { return s.count == 0 }

// Min returns the exact minimum sample (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum sample (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Add folds one sample into the sketch.
func (s *Sketch) Add(x float64) {
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, 16))
		s.flips = append(s.flips, false)
	}
	s.levels[0] = append(s.levels[0], x)
	if len(s.levels[0]) > s.k {
		s.compactFrom(0)
	}
}

// Reset empties the sketch, keeping its capacity and allocated storage — the
// windowed-signal reuse pattern (fill, query, reset) allocates nothing in
// steady state.
func (s *Sketch) Reset() {
	s.count = 0
	s.min, s.max = 0, 0
	for i := range s.levels {
		s.levels[i] = s.levels[i][:0]
		s.flips[i] = false
	}
}

// Merge folds o into s (o is unchanged). Ladders are concatenated level by
// level first and compacted only where they overflow, so merging exact
// sketches whose union fits in k is still exact. Merging is deterministic
// but order-sensitive once compaction kicks in; callers that pin
// equivalence fix the merge order (the fleet merges in replica order). When
// capacities differ the merged sketch adopts the smaller k.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	if o.k < s.k {
		s.k = o.k
	}
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, nil)
		s.flips = append(s.flips, false)
	}
	for i, lv := range o.levels {
		s.levels[i] = append(s.levels[i], lv...)
	}
	for i := 0; i < len(s.levels); i++ {
		if len(s.levels[i]) > s.k {
			s.compactFrom(i)
		}
	}
}

// compactFrom halves overflowing levels starting at i, cascading upward.
// Each compaction sorts the level and keeps every other element (parity
// alternating per level); the kept half moves up one level with doubled
// weight. An odd-length level retains its largest element in place so total
// weight is conserved exactly.
func (s *Sketch) compactFrom(i int) {
	for ; i < len(s.levels) && len(s.levels[i]) > s.k; i++ {
		lv := s.levels[i]
		sort.Float64s(lv)
		keepLast := len(lv)%2 == 1
		pairs := lv[:len(lv)-len(lv)%2]
		offset := 0
		if s.flips[i] {
			offset = 1
		}
		s.flips[i] = !s.flips[i]
		if i+1 == len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k/2+1))
			s.flips = append(s.flips, false)
		}
		for j := offset; j < len(pairs); j += 2 {
			s.levels[i+1] = append(s.levels[i+1], pairs[j])
		}
		if keepLast {
			s.levels[i][0] = lv[len(lv)-1]
			s.levels[i] = s.levels[i][:1]
		} else {
			s.levels[i] = s.levels[i][:0]
		}
	}
}

// view materialises the weighted sample set sorted by value. It allocates;
// queries are cold-path (run aggregation), while hot control loops use the
// exact in-place oracle (PercentileInPlace) instead.
func (s *Sketch) view() (vs []float64, ws []int64) {
	n := 0
	for _, lv := range s.levels {
		n += len(lv)
	}
	vs = make([]float64, 0, n)
	ws = make([]int64, 0, n)
	for i, lv := range s.levels {
		w := int64(1) << uint(i)
		for _, v := range lv {
			vs = append(vs, v)
			ws = append(ws, w)
		}
	}
	sort.Sort(&weightedSamples{vs, ws})
	return vs, ws
}

type weightedSamples struct {
	v []float64
	w []int64
}

func (p *weightedSamples) Len() int           { return len(p.v) }
func (p *weightedSamples) Less(i, j int) bool { return p.v[i] < p.v[j] }
func (p *weightedSamples) Swap(i, j int) {
	p.v[i], p.v[j] = p.v[j], p.v[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// Quantile returns the weighted nearest-rank p-th percentile (0 when empty).
// With every weight 1 — the exact regime — this is bit-identical to
// Percentile over the same samples.
func (s *Sketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	vs, ws := s.view()
	rank := int64(math.Ceil(p / 100 * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, v := range vs {
		cum += ws[i]
		if cum >= rank {
			return v
		}
	}
	return s.max
}

// Summary digests the sketch at the standard SLO percentiles; in the exact
// regime it is bit-identical to Summarize over the same samples.
func (s *Sketch) Summary() Summary {
	if s.count == 0 {
		return Summary{}
	}
	vs, ws := s.view()
	rankOf := func(p float64) int64 {
		r := int64(math.Ceil(p / 100 * float64(s.count)))
		if r < 1 {
			r = 1
		}
		return r
	}
	r50, r95, r99 := rankOf(50), rankOf(95), rankOf(99)
	var out Summary
	cum := int64(0)
	got50, got95, got99 := false, false, false
	for i, v := range vs {
		cum += ws[i]
		if !got50 && cum >= r50 {
			out.P50, got50 = v, true
		}
		if !got95 && cum >= r95 {
			out.P95, got95 = v, true
		}
		if !got99 && cum >= r99 {
			out.P99, got99 = v, true
		}
		if got99 {
			break
		}
	}
	return out
}

// CountLE returns the (weighted) number of samples ≤ x — the attainment
// numerator. Exact in the exact regime; beyond it, off by at most the
// sketch's rank error.
func (s *Sketch) CountLE(x float64) int64 {
	if s.count == 0 {
		return 0
	}
	if x >= s.max {
		return s.count
	}
	if x < s.min {
		return 0
	}
	n := int64(0)
	for i, lv := range s.levels {
		w := int64(1) << uint(i)
		for _, v := range lv {
			if v <= x {
				n += w
			}
		}
	}
	return n
}

// sketchJSON is the byte-stable wire form: fixed field order, levels in
// ladder order with their exact stored contents.
type sketchJSON struct {
	K      int         `json:"k"`
	Count  int64       `json:"count"`
	Min    float64     `json:"min"`
	Max    float64     `json:"max"`
	Flips  []bool      `json:"flips"`
	Levels [][]float64 `json:"levels"`
}

// MarshalJSON encodes the sketch byte-stably: the same sketch state always
// serialises to the same bytes, so checkpoints embedding sketches round-trip
// export → import → export identically.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	return json.Marshal(sketchJSON{
		K: s.k, Count: s.count, Min: s.min, Max: s.max,
		Flips: s.flips, Levels: s.levels,
	})
}

// UnmarshalJSON decodes and validates a sketch: capacities, ladder shape,
// and exact weight conservation (Σ len(level i)·2^i must equal count).
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var w sketchJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.K < 2 {
		return fmt.Errorf("stats: sketch capacity %d must be ≥ 2", w.K)
	}
	if len(w.Flips) != len(w.Levels) {
		return fmt.Errorf("stats: sketch has %d parity bits for %d levels", len(w.Flips), len(w.Levels))
	}
	total := int64(0)
	for i, lv := range w.Levels {
		total += int64(len(lv)) << uint(i)
	}
	if total != w.Count {
		return fmt.Errorf("stats: sketch weight %d does not conserve count %d", total, w.Count)
	}
	if w.Count < 0 {
		return fmt.Errorf("stats: sketch count %d must be ≥ 0", w.Count)
	}
	s.k, s.count, s.min, s.max = w.K, w.Count, w.Min, w.Max
	s.flips, s.levels = w.Flips, w.Levels
	return nil
}

// PercentileInPlace is the exact nearest-rank percentile computed by sorting
// xs in place: no copy, no allocation. It is the windowed-signal fix for
// control loops that previously paid Percentile's copy-and-sort per tick —
// callers own xs and reset it after reading, so the reorder is harmless.
func PercentileInPlace(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return percentileSorted(xs, p)
}
