package serving

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// This file pins the block-level KV cache's serving contract from both
// sides. With sharing off the store is a pure shadow: every Result it
// produces must be bit-identical to the engine run with no store at all, for
// every evaluated system, both batching modes, both TLP regimes and both
// decode paths — so turning the feature off really is the pre-block engine.
// With sharing on the fast path must still agree bit-for-bit with the
// reference path, and the prefix index must measurably convert re-prefill
// work into block adoption.

// kvWorkload draws a stream whose members share prefixes: half the requests
// are dealt across four prefix groups, the rest are private.
func kvWorkload(n int, rate float64, seed int64) []workload.Request {
	var reqs []workload.Request
	if rate == 0 {
		reqs = workload.GeneralQA().Generate(n, seed)
	} else {
		reqs = workload.GeneralQA().Poisson(n, rate, seed)
	}
	doc := workload.LengthDist{Median: 96, Sigma: 0.4, Min: 32, Max: 256}
	return workload.AssignPrefixGroups(reqs, 4, doc, 0.5, seed+1)
}

// runKV drives one full run with the given KV options (nil = no store).
func runKV(t *testing.T, newSys func() *core.System, tlp int, mode FastPathMode,
	kvo *kv.Options, static bool, reqs []workload.Request) Result {
	t.Helper()
	opt := DefaultOptions(tlp)
	opt.FastPath = mode
	opt.KV = kvo
	eng, err := New(newSys(), model.OPT30B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if static {
		res, err = eng.RunBatch(reqs)
	} else {
		res, err = eng.RunContinuous(reqs, 6)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKVShadowEquivalence is the sharing-off pin: a shadow block store must
// not move a single bit of the Result relative to the storeless engine,
// across every system, mode, TLP and decode path — including on
// prefix-tagged streams, whose tags the shadow must ignore.
func TestKVShadowEquivalence(t *testing.T) {
	static := kvWorkload(10, 0, 7)
	stream := kvWorkload(12, 25, 11)
	shadow := &kv.Options{BlockTokens: 32, Sharing: false}
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			for _, mode := range []FastPathMode{FastPathOn, FastPathOff} {
				for _, isStatic := range []bool{true, false} {
					reqs := stream
					if isStatic {
						reqs = static
					}
					bare := runKV(t, newSys, tlp, mode, nil, isStatic, reqs)
					shad := runKV(t, newSys, tlp, mode, shadow, isStatic, reqs)
					if !reflect.DeepEqual(bare, shad) {
						t.Errorf("%s tlp=%d fastpath=%v static=%v: shadow store changed the Result\n bare: %+v\n shad: %+v",
							name, tlp, mode, isStatic, bare, shad)
					}
				}
			}
		}
	}
}

// TestKVSharingFastPathEquivalence extends the fast-path contract to
// sharing-on runs: block adoption, tier transfers and re-prefill accounting
// must price identically on the macro-stepped and the reference decode loop.
func TestKVSharingFastPathEquivalence(t *testing.T) {
	static := kvWorkload(10, 0, 3)
	stream := kvWorkload(14, 30, 5)
	share := &kv.Options{BlockTokens: 32, Sharing: true}
	for _, newSys := range []func() *core.System{
		func() *core.System { return core.NewPAPI(0) },
		core.NewA100AttAcc,
	} {
		for _, tlp := range []int{1, 4} {
			for _, isStatic := range []bool{true, false} {
				reqs := stream
				if isStatic {
					reqs = static
				}
				fast := runKV(t, newSys, tlp, FastPathOn, share, isStatic, reqs)
				ref := runKV(t, newSys, tlp, FastPathOff, share, isStatic, reqs)
				if !reflect.DeepEqual(fast, ref) {
					sys := newSys()
					t.Errorf("%s tlp=%d static=%v: sharing run diverged between decode paths\n fast: %+v\n  ref: %+v",
						sys.Name, tlp, isStatic, fast, ref)
				}
			}
		}
	}
}

// TestKVSharingReducesPrefill is the headline property: on a prefix-heavy
// stream, sharing must adopt blocks (index hits) and strictly cut both the
// prefilled and the re-prefilled token counts versus the same stream with
// sharing off.
func TestKVSharingReducesPrefill(t *testing.T) {
	reqs := kvWorkload(24, 30, 13)
	sys := func() *core.System { return core.NewPAPI(0) }
	off := runKV(t, sys, 1, FastPathOn, &kv.Options{BlockTokens: 32, Sharing: false}, false, reqs)
	on := runKV(t, sys, 1, FastPathOn, &kv.Options{BlockTokens: 32, Sharing: true}, false, reqs)

	if off.KV != nil {
		t.Fatal("sharing-off Result carries KV stats")
	}
	if on.KV == nil {
		t.Fatal("sharing-on Result carries no KV stats")
	}
	if on.KV.Lookups == 0 || on.KV.Hits == 0 || on.KV.SharedTokens == 0 {
		t.Fatalf("prefix-heavy stream produced no index traffic: %+v", on.KV)
	}
	if on.PrefillTokens >= off.PrefillTokens {
		t.Fatalf("sharing did not cut prefill: on=%d off=%d", on.PrefillTokens, off.PrefillTokens)
	}
	if on.ReprefillTokens >= off.ReprefillTokens {
		t.Fatalf("sharing did not cut the re-prefill tax: on=%d off=%d", on.ReprefillTokens, off.ReprefillTokens)
	}
	if got := off.PrefillTokens - on.PrefillTokens; got != on.KV.SharedTokens {
		t.Fatalf("prefill saving %d != shared tokens %d", got, on.KV.SharedTokens)
	}
}

// TestKVConversationResume pins the conversation-carry path end to end: a
// follow-up turn declaring its conversation's grown context as prefix must
// adopt the committed blocks instead of re-prefilling them.
func TestKVConversationResume(t *testing.T) {
	group := int64(-1)
	first := workload.Request{ID: 1, InputLen: 96, OutputLen: 64, Turn: 1,
		PrefixGroup: group}
	carried := first.SeqLen()
	follow := workload.Request{ID: 2, InputLen: carried + 48, OutputLen: 32, Turn: 2,
		Arrival: units.Seconds(30), PrefixGroup: group, PrefixLen: carried}

	opt := DefaultOptions(1)
	opt.KV = &kv.Options{BlockTokens: 16, Sharing: true}
	eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunContinuous([]workload.Request{first, follow}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The first turn grows its canonical chain through decode, so every full
	// block of the carried context — ⌊160/16⌋ = 10 blocks — is adoptable.
	if want := carried / 16 * 16; res.KV.SharedTokens != want {
		t.Fatalf("follow-up adopted %d tokens, want %d", res.KV.SharedTokens, want)
	}
	// Only the carried context's block-tail remainder is ever re-prefilled.
	if res.ReprefillTokens != carried%16 {
		t.Fatalf("re-prefill tax %d, want the %d-token tail", res.ReprefillTokens, carried%16)
	}
}

// TestKVParkResume pins preemption under sharing: evicted batch requests are
// parked — blocks demoted over the link, not discarded — and their
// re-admission promotes state back instead of re-prefilling it, strictly
// beating the discard-and-recompute regime on re-prefilled tokens.
func TestKVParkResume(t *testing.T) {
	// Saturate GPT-3 175B's pool with batch work, then force evictions with
	// interactive arrivals (the shape of TestStepperInvariantsUnderPreemption).
	build := func() []workload.Request {
		var reqs []workload.Request
		for i := 0; i < 60; i++ {
			reqs = append(reqs, workload.Request{ID: i, InputLen: 2048, OutputLen: 2048,
				Class: workload.ClassBatch})
		}
		for i := 0; i < 12; i++ {
			reqs = append(reqs, workload.Request{ID: 60 + i, InputLen: 2048, OutputLen: 64,
				Arrival: units.Seconds(0.5 + 0.5*float64(i)), Class: workload.ClassInteractive})
		}
		return reqs
	}
	run := func(kvo *kv.Options) Result {
		opt := DefaultOptions(1)
		opt.KV = kvo
		eng, err := New(core.NewPAPI(0), model.GPT3_175B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunContinuous(build(), 96)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(&kv.Options{BlockTokens: 32, Sharing: false})
	on := run(&kv.Options{BlockTokens: 32, Sharing: true})
	if off.Preemptions == 0 {
		t.Fatal("scenario triggered no preemptions")
	}
	if on.Preemptions == 0 {
		t.Fatal("sharing run triggered no preemptions")
	}
	if on.KV.DemotedBlocks == 0 {
		t.Fatal("preemption under sharing demoted no blocks")
	}
	if on.KV.PromotedBlocks == 0 {
		t.Fatal("re-admission under sharing promoted no blocks")
	}
	if on.KV.TransferTime <= 0 || on.KV.TransferBytes <= 0 {
		t.Fatalf("tier traffic priced at zero: %+v", on.KV)
	}
	if on.ReprefillTokens >= off.ReprefillTokens {
		t.Fatalf("parking did not beat discard: on=%d off=%d re-prefilled tokens",
			on.ReprefillTokens, off.ReprefillTokens)
	}
	if e := on.Energy.Get("interconnect"); e <= 0 {
		t.Fatalf("tier transfers charged no interconnect energy: %v", e)
	}
}

// TestKVStepperInvariants drives sharing-on streams step by step and audits
// the store's full invariant suite — refcount conservation, tier occupancy,
// queue integrity, commitment bounds — after every Step, then checks the
// drained store released everything.
func TestKVStepperInvariants(t *testing.T) {
	scenarios := []struct {
		name  string
		reqs  []workload.Request
		model model.Config
		batch int
	}{
		{"prefix-stream", kvWorkload(20, 40, 17), model.OPT30B(), 5},
		{"preemptive", func() []workload.Request {
			var reqs []workload.Request
			for i := 0; i < 24; i++ {
				reqs = append(reqs, workload.Request{ID: i, InputLen: 2048, OutputLen: 512,
					Class: workload.ClassBatch})
			}
			for i := 0; i < 6; i++ {
				reqs = append(reqs, workload.Request{ID: 24 + i, InputLen: 2048, OutputLen: 64,
					Arrival: units.Seconds(0.5 + float64(i)), Class: workload.ClassInteractive})
			}
			return reqs
		}(), model.GPT3_175B(), 96},
	}
	for _, sc := range scenarios {
		for _, mode := range []FastPathMode{FastPathOn, FastPathOff} {
			opt := DefaultOptions(1)
			opt.FastPath = mode
			opt.KV = &kv.Options{BlockTokens: 32, Sharing: true, ColdFactor: 2}
			eng, err := New(core.NewPAPI(0), sc.model, opt)
			if err != nil {
				t.Fatal(err)
			}
			st, err := eng.NewStreamStepper(sc.reqs, sc.batch)
			if err != nil {
				t.Fatal(err)
			}
			audit := func() {
				leases := make([]*kv.Lease, 0, len(st.active))
				for _, r := range st.active {
					leases = append(leases, r.lease)
				}
				if err := st.kvStore.CheckInvariants(leases); err != nil {
					t.Fatalf("%s fastpath=%v: %v", sc.name, mode, err)
				}
			}
			audit()
			for {
				info, err := st.Step()
				if err != nil {
					t.Fatalf("%s fastpath=%v: %v", sc.name, mode, err)
				}
				audit()
				if info.Kind == StepDrained {
					break
				}
			}
			st.Finalize()
			if got := st.kvStore.CommittedBlocks(); got != 0 {
				t.Fatalf("%s fastpath=%v: drained store still commits %d blocks", sc.name, mode, got)
			}
		}
	}
}

// TestKVDemandDiscount pins the chat-multiturn headroom fix at the stepper
// boundary: a follow-up whose carried context is resident must not count
// those bytes against KVDemand a second time.
func TestKVDemandDiscount(t *testing.T) {
	opt := DefaultOptions(1)
	opt.KV = &kv.Options{BlockTokens: 16, Sharing: true}
	eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	first := workload.Request{ID: 1, InputLen: 96, OutputLen: 64, Turn: 1, PrefixGroup: -1}
	st, err := eng.NewStreamStepper([]workload.Request{first}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
	}
	carried := first.SeqLen()
	follow := workload.Request{ID: 2, InputLen: carried + 48, OutputLen: 32, Turn: 2,
		Arrival: st.Now(), PrefixGroup: -1, PrefixLen: carried}
	before := st.KVDemand()
	if err := st.Push(follow); err != nil {
		t.Fatal(err)
	}
	resident := carried / 16 * 16 // full blocks of the carried context stay hot
	want := eng.Cfg.KVBytes(follow.SeqLen()) - eng.Cfg.KVBytes(resident)
	if got := st.KVDemand() - before; got != want {
		t.Fatalf("follow-up added %v to KVDemand, want %v (resident prefix discounted)", got, want)
	}
	// Without sharing there is no discount: the same push counts in full.
	optOff := DefaultOptions(1)
	optOff.KV = &kv.Options{BlockTokens: 16, Sharing: false}
	engOff, err := New(core.NewPAPI(0), model.OPT30B(), optOff)
	if err != nil {
		t.Fatal(err)
	}
	stOff, err := engOff.NewStreamStepper(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := stOff.Push(follow); err != nil {
		t.Fatal(err)
	}
	if got, want := stOff.KVDemand(), engOff.Cfg.KVBytes(follow.SeqLen()); got != want {
		t.Fatalf("shadow-mode push added %v, want the undiscounted %v", got, want)
	}
}
