package serving

import (
	"fmt"
	"math"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// StepKind says what a single Step advanced.
type StepKind int

const (
	// StepDrained means nothing is left to do: no live requests and no
	// pending arrivals. The stepper is finished.
	StepDrained StepKind = iota
	// StepIdle means no request was runnable, so the clock jumped to the
	// next pending arrival (idle time, continuous batching only).
	StepIdle
	// StepIteration means one decoding iteration ran and committed tokens.
	StepIteration
)

// StepInfo reports the outcome of one Step call.
type StepInfo struct {
	Kind StepKind
	// Iteration is the iteration's trace entry (valid for StepIteration),
	// with Tokens filled from the committed count.
	Iteration IterationStat
	// Completed is how many requests reached <|eos|> this step.
	Completed int
	// Finished lists the requests that reached <|eos|> this step, in active
	// order — the hook closed-loop arrival owners (multi-turn conversations
	// in internal/cluster) use to couple a follow-up Push to a completion.
	Finished []workload.Request
}

// Stepper is the resumable core of the serving engine: the iteration loop
// shared by RunBatch and RunContinuous, exposed as an
// admit → decide → iterate → commit cycle that advances by exactly one
// iteration per Step call on a caller-owned clock. This lets a caller — the
// multi-replica simulator in internal/cluster — interleave many engines
// deterministically on one event kernel instead of each run owning its own
// timeline.
//
// Two modes exist:
//
//   - static (NewBatchStepper): the whole batch is prefilled up front and
//     latencies are measured from run start, reproducing RunBatch;
//   - stream (NewStreamStepper): requests are admitted at iteration
//     boundaries as they arrive (mixed continuous batching), bounded by the
//     admission cap and KV capacity, reproducing RunContinuous. More
//     arrivals may be injected mid-run with Push.
type Stepper struct {
	eng *Engine
	res Result

	all     []*request // every request seen, in input order
	seen    int        // count of requests ever pushed (survives DiscardCompleted)
	pending []*request // arrival-ordered, not yet admitted (stream mode)
	active  []*request // admitted and unfinished

	scheduler *sched.Scheduler
	tracker   *metricsTracker
	maxBatch  int
	static    bool
	clock     units.Seconds

	// Incremental accounting. kvSum is Σ(InputLen+generated) over the active
	// batch — the attention kernel's only KV-length input (fast path).
	// kvDemandAll / kvDemandActive are the worst-case KV footprints of all
	// outstanding / admitted requests, maintained on push, admit, evict and
	// finish so KVDemand and admission checks are O(1). All terms are
	// integer-valued floats far below 2⁵³, so the running sums equal a fresh
	// walk exactly.
	kvSum          int
	kvDemandAll    units.Bytes
	kvDemandActive units.Bytes

	// Outstanding-per-class counters (pending + active), maintained on push,
	// finish and — pending-only — admit/evict. A stream is "tiered" while
	// both classes are outstanding: admission is then priority-aware and
	// macro-stepping falls back to single-iteration stepping (see Step).
	pendInteractive, pendBatch int
	actInteractive, actBatch   int

	// intHint is a lower bound on the index of the first interactive-class
	// pending request: pending[:intHint] is all batch-class. firstInteractive
	// advances it lazily and every queue edit keeps it a valid bound, so the
	// priority-admission scan costs amortized O(1) per Step instead of
	// rescanning a deep ready batch backlog on every iteration boundary.
	intHint int

	// kvStore is the block-level KV cache (nil without Options.KV); kvShare
	// is true when its prefix index and cold tier are live — admission then
	// runs on block commitments (see kvFits) instead of the byte ledger,
	// and preemption parks leases instead of discarding their state. With
	// kvShare false the store shadows the byte ledger without changing any
	// decision, keeping Results bit-identical to kvStore = nil.
	kvStore *kv.Store
	kvShare bool

	// horizon bounds fast-path macro-stepping (see SetHorizon); +Inf when the
	// stepper owns its whole timeline.
	horizon units.Seconds
	// traceHint sizes the Result traces on first use: exact for static
	// batches (a TLP = 1 batch runs exactly max-output iterations, and
	// speculation only fewer), a modest floor for streams whose length is
	// unknowable up front.
	traceHint int

	// perturb is the fault injector's latency perturbation (see
	// SetPerturbation); perturbed caches whether it is active, because the
	// check sits on the per-iteration hot path and disables macro-stepping.
	perturb   Perturbation
	perturbed bool
	// failed marks a crashed replica's stepper: Fail was called, every
	// outstanding request was surrendered, and the stepper only reports
	// StepDrained from here on.
	failed bool

	finalized bool
}

// NewBatchStepper builds a static-batching stepper: every request is
// prefilled immediately and decode iterations run until the batch drains.
func (e *Engine) NewBatchStepper(reqs []workload.Request) (*Stepper, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serving: empty batch")
	}
	if err := e.checkKVCapacity(reqs); err != nil {
		return nil, err
	}
	s := &Stepper{
		eng:      e,
		res:      Result{System: e.Sys.Name, Model: e.Cfg.Name},
		maxBatch: len(reqs),
		static:   true,
		tracker:  newMetricsTracker(),
		horizon:  units.Seconds(math.Inf(1)),
	}
	if err := s.initKV(len(reqs)); err != nil {
		return nil, err
	}
	inputs := make([]int, 0, len(reqs))
	for _, r := range reqs {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return nil, fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
		}
		rr := s.newRequest(r)
		s.seen++
		s.all = append(s.all, rr)
		s.active = append(s.active, rr)
		s.countClass(r.Class, &s.actInteractive, &s.actBatch, +1)
		s.kvSum += r.InputLen
		s.kvDemandAll += rr.kvBytes
		s.kvDemandActive += rr.kvBytes
		// A static batch is admitted whole under the legacy byte check
		// (already enforced above), so the shadow/sharing store is sized
		// never to refuse it; sharing may still shorten prefill when batch
		// members share a prefix.
		shared := 0
		if s.kvStore != nil {
			c, err := s.kvStore.Admit(rr.lease, r.InputLen)
			if err != nil {
				return nil, err
			}
			shared = c.SharedTokens
		}
		if in := r.InputLen - shared; in > 0 {
			inputs = append(inputs, in)
		}
		s.notePrefill(rr, r.InputLen, shared)
		if r.OutputLen > s.traceHint {
			s.traceHint = r.OutputLen
		}
	}

	// Prefill (§2.1): all input tokens processed at once. Compute-bound, so
	// it runs on the GPU where one exists; PIM-only designs pay for it on
	// their PIM units (§7.4).
	if len(inputs) > 0 {
		s.res.PrefillTime = e.runPrefill(inputs, &s.res)
	}
	s.clock = s.res.PrefillTime

	scheduler, err := sched.NewScheduler(e.Sys.Policy, len(reqs), e.Opt.TLP)
	if err != nil {
		return nil, err
	}
	// The scheduler's own event trace duplicates Result's RLPTrace/IterStats
	// and is unreachable through the stepper — don't pay for it per iteration.
	scheduler.SetTraceCap(0)
	s.scheduler = scheduler
	return s, nil
}

// NewStreamStepper builds a continuous-batching stepper over an
// arrival-ordered request stream. The stream may be empty: a caller that
// owns the arrival process (internal/cluster) injects requests with Push as
// they reach this engine.
func (e *Engine) NewStreamStepper(reqs []workload.Request, maxBatch int) (*Stepper, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serving: max batch %d must be positive", maxBatch)
	}
	s := &Stepper{
		eng:      e,
		res:      Result{System: e.Sys.Name, Model: e.Cfg.Name},
		maxBatch: maxBatch,
		tracker:  newMetricsTracker(),
		horizon:  units.Seconds(math.Inf(1)),
	}
	if err := s.initKV(0); err != nil {
		return nil, err
	}
	for _, r := range reqs {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return nil, fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
		}
		rr := s.newRequest(r)
		s.seen++
		if !s.discarding() {
			s.all = append(s.all, rr)
		}
		s.pending = append(s.pending, rr)
		s.countClass(r.Class, &s.pendInteractive, &s.pendBatch, +1)
		s.kvDemandAll += rr.kvBytes
	}
	sort.SliceStable(s.pending, func(i, j int) bool {
		return s.pending[i].readyAt < s.pending[j].readyAt
	})
	return s, nil
}

// initKV builds the block store when Options.KV asks for one. A sharing
// store's hot tier is the attention pool's capacity in whole blocks — the
// real constraint block admission enforces. A shadow store (sharing off),
// or any static batch (whose admission must stay the legacy whole-batch
// byte check), instead gets the byte capacity rounded up plus one block of
// partial-tail slack per concurrent request, so block bookkeeping can never
// refuse an admission the byte ledger granted. staticN is the batch size
// for a static stepper, 0 for a stream.
func (s *Stepper) initKV(staticN int) error {
	if s.eng.Opt.KV == nil {
		return nil
	}
	opt := s.eng.Opt.KV.Resolved()
	if err := opt.Validate(); err != nil {
		return err
	}
	blockBytes := s.eng.Cfg.KVBytes(opt.BlockTokens)
	capBytes := s.eng.Sys.KVCapacity()
	var hot int
	if opt.Sharing && staticN == 0 {
		hot = int(capBytes.Bytes() / blockBytes.Bytes())
		if hot < 1 {
			return fmt.Errorf("serving: attention pool %v holds no %d-token KV block (%v)",
				capBytes, opt.BlockTokens, blockBytes)
		}
	} else {
		slack := staticN
		if slack == 0 {
			slack = s.maxBatch
		}
		hot = int(math.Ceil(capBytes.Bytes()/blockBytes.Bytes())) + slack
	}
	store, err := kv.NewStore(opt, hot, blockBytes)
	if err != nil {
		return err
	}
	s.kvStore = store
	s.kvShare = opt.Sharing
	return nil
}

// newRequest wraps an incoming request with its lease and cached KV
// footprint. The footprint is the worst-case byte demand the request adds
// to the fleet signal; with sharing on, the part of its declared prefix
// already resident in the store is discounted at this instant — those
// tokens will be adopted, not recomputed, and counting them again would
// double-bill headroom (the chat-multiturn routing fix this PR pins).
func (s *Stepper) newRequest(r workload.Request) *request {
	rr := &request{Request: r, readyAt: r.Arrival}
	rr.kvBytes = s.eng.Cfg.KVBytes(r.SeqLen())
	if s.kvStore != nil {
		rr.lease = s.kvStore.NewLease(r.PrefixGroup, int64(r.ID), r.PrefixLen, r.SeqLen(), r.Turn > 0)
		if s.kvShare && r.PrefixGroup != 0 {
			if resident := s.kvStore.ResidentChainTokens(r.PrefixGroup, r.PrefixLen); resident > 0 {
				rr.kvBytes -= s.eng.Cfg.KVBytes(resident)
			}
		}
	}
	return rr
}

// notePrefill accounts one admission's prefill tokens: ctx tokens entered
// the engine, shared of them came from resident blocks. The re-prefill tax
// is the carried context — everything a preempted request regrew, or the
// declared shared prefix of a fresh one — that was prefilled rather than
// adopted.
func (s *Stepper) notePrefill(r *request, ctx, shared int) {
	s.res.PrefillTokens += ctx - shared
	carried := 0
	if r.preempted > 0 {
		carried = ctx
	} else if r.PrefixGroup != 0 {
		carried = min(r.PrefixLen, ctx)
	}
	if tax := carried - shared; tax > 0 {
		s.res.ReprefillTokens += tax
	}
}

// countClass bumps the interactive or batch counter for a class by delta.
func (s *Stepper) countClass(c workload.Class, interactive, batch *int, delta int) {
	if c == workload.ClassBatch {
		*batch += delta
	} else {
		*interactive += delta
	}
}

// tiered reports whether both priority classes are outstanding — the regime
// in which admission is priority-aware: interactive jumps blocked batch
// traffic and may preempt it. Fast-path macro windows must then be bounded
// by the earliest class-boundary event instead of the queue head (see
// macroArrivalBound), so no interior iteration boundary can admit or evict a
// request the window bound does not see.
func (s *Stepper) tiered() bool {
	return s.pendBatch+s.actBatch > 0 && s.pendInteractive+s.actInteractive > 0
}

// Push injects one more request into a stream stepper's pending queue. The
// cluster router calls this at the request's arrival instant. Callers that
// interleave Push with Step on the fast path must also bound Step with
// SetHorizon (see Step's contract).
func (s *Stepper) Push(r workload.Request) error {
	if s.static {
		return fmt.Errorf("serving: cannot push into a static batch stepper")
	}
	if s.failed {
		return fmt.Errorf("serving: cannot push request %d into a failed stepper", r.ID)
	}
	if r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
	}
	rr := s.newRequest(r)
	s.seen++
	if !s.discarding() {
		s.all = append(s.all, rr)
	}
	s.enqueue(rr)
	s.countClass(r.Class, &s.pendInteractive, &s.pendBatch, +1)
	s.kvDemandAll += rr.kvBytes
	return nil
}

// enqueue inserts a request into the pending queue ordered by readyAt.
// Arrivals are pushed in time order in practice; insert stably so an
// out-of-order push (or an eviction requeue) cannot corrupt the queue.
func (s *Stepper) enqueue(rr *request) {
	i := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].readyAt > rr.readyAt
	})
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = rr
	switch {
	case rr.Class != workload.ClassBatch:
		if i < s.intHint {
			s.intHint = i
		}
	case i <= s.intHint:
		// A batch insert at or below the bound grows the all-batch prefix.
		s.intHint++
	}
}

// firstInteractive returns the index of the first interactive-class pending
// request (len(pending) when none), advancing the cached all-batch prefix
// bound as it skips.
//
//papivet:noalloc
func (s *Stepper) firstInteractive() int {
	i := s.intHint
	for i < len(s.pending) && s.pending[i].Class == workload.ClassBatch {
		i++
	}
	s.intHint = i
	return i
}

// Now reports the engine-local clock: prefill plus decode plus idle time
// elapsed so far.
func (s *Stepper) Now() units.Seconds { return s.clock }

// HasWork reports whether any request is live or waiting.
func (s *Stepper) HasWork() bool { return len(s.active) > 0 || len(s.pending) > 0 }

// Outstanding counts requests admitted-but-unfinished plus queued — the
// load signal the least-outstanding-requests router balances on.
func (s *Stepper) Outstanding() int { return len(s.active) + len(s.pending) }

// KVDemand returns the worst-case KV-cache footprint of every outstanding
// request (live and queued), the signal the KV-headroom router balances on.
// It is O(1): the total is maintained incrementally on push, admission and
// finish, since this sits on the router hot path (called per replica per
// arrival).
//
//papivet:noalloc
func (s *Stepper) KVDemand() units.Bytes { return s.kvDemandAll }

// SetHorizon bounds fast-path macro-stepping: a macro-stepped Step call
// stops fast-forwarding once its clock reaches t, so a caller interleaving
// many steppers on one event timeline (internal/cluster) can guarantee no
// other event — an arrival, a closed-loop follow-up — should have been
// observed first. It does not affect reference-path stepping, which always
// advances one iteration per call. The bound is sticky; steppers start with
// +Inf (they own their whole timeline).
func (s *Stepper) SetHorizon(t units.Seconds) { s.horizon = t }

// StartAt moves a fresh stream stepper's clock to t without accruing idle
// time — the boot instant of a replica provisioned mid-run by the cluster
// autoscaler, whose busy/idle accounting (and therefore host energy) must
// start at boot rather than at the fleet's time zero. It is only valid on a
// stream stepper that has seen no work: no requests, no iterations, no clock
// movement.
func (s *Stepper) StartAt(t units.Seconds) error {
	if s.static {
		return fmt.Errorf("serving: cannot StartAt a static batch stepper")
	}
	if s.seen > 0 || s.res.Iterations > 0 || s.clock != 0 || s.res.IdleTime != 0 {
		return fmt.Errorf("serving: StartAt on a stepper that already has history")
	}
	if t < 0 {
		return fmt.Errorf("serving: StartAt instant %v is negative", t)
	}
	s.clock = t
	return nil
}

// PeekMetrics returns a snapshot of one request's latency metrics mid-run,
// with TPOT computed from the tokens observed so far — the signal the
// cluster autoscaler reads per completion without waiting for Finalize. The
// second return is false when the request has produced no tokens yet.
func (s *Stepper) PeekMetrics(id int) (RequestMetrics, bool) {
	rm, ok := s.tracker.byID[id]
	if !ok {
		return RequestMetrics{}, false
	}
	out := *rm
	if out.OutputTokens > 1 {
		out.TPOT = (out.Completion - out.TTFT) / units.Seconds(out.OutputTokens-1)
	}
	return out, true
}

// TakeMetrics reads a request's latency snapshot like PeekMetrics and, in
// DiscardCompleted mode, releases the record — the read-once harvest the
// cluster layer performs at each completion so a streaming run's per-request
// state is O(outstanding), not O(total). Outside DiscardCompleted mode it is
// exactly PeekMetrics: records stay for Finalize.
func (s *Stepper) TakeMetrics(id int) (RequestMetrics, bool) {
	out, ok := s.PeekMetrics(id)
	if ok && s.discarding() {
		delete(s.tracker.byID, id)
	}
	return out, ok
}

// discarding reports whether completed-request records are dropped rather
// than retained for Finalize (see Options.DiscardCompleted). Static batch
// steppers always retain: RunBatch's contract is the full Result.
func (s *Stepper) discarding() bool { return s.eng.Opt.DiscardCompleted && !s.static }

// AdvanceTo moves an idle stepper's clock forward to t, accounting the gap
// as idle time. It is a no-op when t is not ahead of the clock or when live
// requests still occupy the engine (a busy engine's clock only advances by
// running iterations).
func (s *Stepper) AdvanceTo(t units.Seconds) {
	if t <= s.clock || len(s.active) > 0 {
		return
	}
	s.res.IdleTime += t - s.clock
	s.clock = t
}

// admit moves pending requests whose ready instant has passed into the
// active batch, bounded by the admission cap and the attention pool's KV
// capacity, and charges their prefill (piggybacked onto the token timeline).
//
// Admission is priority-aware. Interactive requests are admitted first, in
// ready order, skipping over blocked batch traffic; an interactive candidate
// that does not fit the KV pool may preempt active batch requests
// (evict-and-requeue, see preemptFor) instead of waiting for a completion.
// Batch requests are admitted strictly from the queue head, and only while
// no admissible interactive request is blocked ahead of them — batch
// traffic must not grab the capacity an interactive request is waiting for.
// With a single class outstanding both phases reduce to the classic FIFO
// head-of-line admission.
func (s *Stepper) admit() error {
	admitted := 0
	var inputs []int
	var xferTime units.Seconds
	var xferEnergy units.Joules

	place := func(cand *request) error {
		ctx := cand.contextLen()
		shared := 0
		if s.kvStore != nil {
			c, err := s.kvStore.Admit(cand.lease, ctx)
			if err != nil {
				return err
			}
			shared = c.SharedTokens
			xferTime += c.StallTime
			xferEnergy += c.TransferEnergy
		}
		s.active = append(s.active, cand)
		admitted++
		if in := ctx - shared; in > 0 {
			inputs = append(inputs, in)
		}
		s.notePrefill(cand, ctx, shared)
		s.countClass(cand.Class, &s.pendInteractive, &s.pendBatch, -1)
		s.countClass(cand.Class, &s.actInteractive, &s.actBatch, +1)
		s.kvSum += ctx
		s.kvDemandActive += cand.kvBytes
		return nil
	}

	// Phase one: interactive admission (skipped when none is pending). The
	// first interactive candidate that cannot be placed — even with
	// preemption — blocks the rest of its class (FIFO fairness within the
	// tier) and bars batch admission below.
	interactiveBlocked := false
	if s.pendInteractive > 0 {
		// The queue is readyAt-ordered, so every request past a not-yet-ready
		// one is not ready either: breaking at the first unready interactive
		// admits exactly what a front-to-back scan would, and firstInteractive
		// skips the batch backlog in amortized O(1) instead of re-walking it.
		for len(s.active) < s.maxBatch {
			i := s.firstInteractive()
			if i == len(s.pending) {
				break
			}
			cand := s.pending[i]
			if cand.readyAt > s.clock {
				break
			}
			if !s.kvFits(cand) {
				ok, err := s.preemptFor(cand, &xferTime, &xferEnergy)
				if err != nil {
					return err
				}
				if !ok {
					interactiveBlocked = true
					break
				}
			}
			// Removing at i == intHint leaves the all-batch prefix intact.
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			if err := place(cand); err != nil {
				return err
			}
		}
	}

	// Phase two: batch admission from the literal queue head.
	if !interactiveBlocked {
		for len(s.pending) > 0 && len(s.active) < s.maxBatch {
			cand := s.pending[0]
			if cand.Class != workload.ClassBatch || cand.readyAt > s.clock {
				break
			}
			if !s.kvFits(cand) {
				break
			}
			s.pending = s.pending[1:]
			if s.intHint > 0 {
				s.intHint--
			}
			if err := place(cand); err != nil {
				return err
			}
		}
	}

	if admitted == 0 {
		return nil
	}
	// A fully shared admission (inputs empty) still pays its demand
	// transfers: promotion rides the prefill phase of the timeline, like
	// prefill itself. Demotion write-backs charge energy only — idle state
	// drains over the host link while the stacks keep computing.
	var pt units.Seconds
	if len(inputs) > 0 {
		pt = s.eng.runPrefill(inputs, &s.res)
		// A straggling replica prefills slower too; brownout (Attn) is a
		// decode-side attention-fabric effect and leaves prefill alone.
		if f := s.perturb.Slow; s.perturbed && f > 1 {
			pt += pt.Scale(f - 1)
		}
	}
	pt += xferTime
	s.res.PrefillTime += pt
	s.clock += pt
	if xferEnergy > 0 {
		s.res.Energy.Add(energy.Interconnect, xferEnergy)
	}
	if s.scheduler == nil {
		var err error
		s.scheduler, err = sched.NewScheduler(s.eng.Sys.Policy, admitted, s.eng.Opt.TLP)
		if s.scheduler != nil {
			s.scheduler.SetTraceCap(0)
		}
		return err
	}
	return s.scheduler.AdmitRequests(admitted)
}

// kvFits reports whether cand can be admitted right now under the KV
// regime in force: block commitments when sharing is live (every block the
// admission would commit — adopted, promoted, fresh, plus growth reserve —
// must fit the hot tier next to the blocks already committed), the byte
// ledger otherwise. Bit-for-bit the legacy comparison when sharing is off:
// cand.kvBytes is exactly Cfg.KVBytes(cand.SeqLen()) then.
func (s *Stepper) kvFits(cand *request) bool {
	if s.kvShare {
		return s.kvStore.CanAdmit(s.kvStore.PlanAdmit(cand.lease, cand.contextLen()))
	}
	return s.kvDemandActive+cand.kvBytes <= s.eng.Sys.KVCapacity()
}

// preemptFor makes KV room for an interactive candidate by evicting
// batch-class requests from the active set, most recent admission first. An
// evicted request re-enters the pending queue ready immediately. What
// eviction costs depends on the KV regime: under the byte ledger the
// victim's cache is simply gone, and its eventual re-admission re-prefills
// the full grown context (prompt plus every token already generated) — the
// paper-world cost of preemption. Under block sharing the victim's lease is
// parked instead: sealed blocks are demoted to the cold tier (write-back
// energy accumulated into xe; the drain overlaps compute, so xt only grows
// by demand stalls), and re-admission promotes them
// back rather than recomputing, so only what eviction pressure dropped from
// cold is ever re-prefilled.
//
// Eviction is all-or-nothing: when even evicting every active batch request
// could not make room — judged conservatively under sharing, assuming none
// of the candidate's blocks are adoptable — nothing is evicted. Reports
// whether the candidate now fits.
func (s *Stepper) preemptFor(cand *request, xt *units.Seconds, xe *units.Joules) (bool, error) {
	if s.kvShare {
		b := s.kvStore.BlockTokens()
		worst := (cand.SeqLen() + b - 1) / b
		gain := 0
		for _, r := range s.active {
			if r.Class == workload.ClassBatch {
				gain += s.kvStore.ParkGain(r.lease)
			}
		}
		if s.kvStore.CommittedBlocks()-gain+worst > s.kvStore.HotBlocks() {
			return false, nil
		}
	} else if !s.preemptFeasible(cand) {
		return false, nil
	}
	evicted := 0
	for i := len(s.active) - 1; i >= 0 && !s.kvFits(cand); i-- {
		r := s.active[i]
		if r.Class != workload.ClassBatch {
			continue
		}
		if s.kvStore != nil {
			c := s.kvStore.Park(r.lease)
			*xt += c.StallTime
			*xe += c.TransferEnergy
		}
		s.active = append(s.active[:i], s.active[i+1:]...)
		s.kvSum -= r.contextLen()
		s.kvDemandActive -= r.kvBytes
		s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
		s.countClass(r.Class, &s.pendInteractive, &s.pendBatch, +1)
		r.readyAt = s.clock
		r.preempted++
		if r.rm != nil {
			r.rm.Preemptions++
		}
		s.enqueue(r)
		s.res.Preemptions++
		evicted++
	}
	if evicted > 0 {
		if err := s.scheduler.Evict(evicted); err != nil {
			return false, err
		}
	}
	return s.kvFits(cand), nil
}

// Step advances the engine by one unit of progress: admit any arrived
// requests, then either run decoding work (decide → iterate → commit), jump
// the clock to the next arrival if nothing is runnable, or report the
// stepper drained.
//
// On the fast path, one Step may macro-step a whole run of iterations (see
// macroStep and macroStepSpec); the stepper accounts for every arrival
// already in its pending queue, so RunBatch/RunContinuous-style drivers are
// unaffected. A caller that instead injects arrivals incrementally with
// Push between Step calls must bound each call with SetHorizon(t) — t being
// the earliest instant it might push — or build the engine with
// FastPathOff; otherwise a macro-step can overshoot the instant the caller
// meant to inject at, admitting the request later than single-stepping
// would. internal/cluster does exactly this with its event-kernel horizon.
func (s *Stepper) Step() (StepInfo, error) {
	if s.failed {
		return StepInfo{Kind: StepDrained}, nil
	}
	if !s.static {
		if err := s.admit(); err != nil {
			return StepInfo{}, err
		}
	}
	if len(s.active) == 0 {
		if len(s.pending) == 0 {
			return StepInfo{Kind: StepDrained}, nil
		}
		gap := s.pending[0].readyAt - s.clock
		if gap <= 0 {
			// A request has arrived but could not be admitted with an empty
			// batch: some arrived request's KV cache alone exceeds the pool
			// (with priority tiers that may be an interactive request behind
			// the queue head, whose block also bars batch admission). Under
			// block sharing "alone" means its whole-sequence block count
			// against an empty hot tier.
			blocked := s.pending[0]
			for _, r := range s.pending {
				if r.readyAt > s.clock {
					break
				}
				if s.kvShare {
					if !s.kvStore.FitsAlone(r.SeqLen()) {
						blocked = r
						break
					}
				} else if s.eng.Cfg.KVBytes(r.SeqLen()) > s.eng.Sys.KVCapacity() {
					blocked = r
					break
				}
			}
			return StepInfo{}, fmt.Errorf("serving: request %d KV footprint exceeds attention pool capacity",
				blocked.ID)
		}
		s.res.IdleTime += gap
		s.clock = s.pending[0].readyAt
		return StepInfo{Kind: StepIdle}, nil
	}

	s.ensureTraces()

	// The fast path fast-forwards whole runs of identical-RLP iterations.
	// macroArrivalBound computes the earliest instant an admission or
	// preemption could change the active batch — queue-head arrival for a
	// single class, the earliest class-boundary event for tiered streams —
	// and the window never crosses it, so macro-stepping covers priority
	// streams too. TLP = 1 commits are deterministic (one token per request
	// per iteration), so the window's interior needs no commit walk at all
	// (macroStep); speculative decoding (TLP > 1) keeps the per-iteration
	// acceptance sampling and commit walk but skips the per-iteration
	// decide/admit work and lets the caller run the window in one event
	// (macroStepSpec). Perturbed steppers (straggler/brownout windows)
	// single-step: the stretch is priced per iteration, and a window edge
	// may land on any iteration boundary. So does the one regime where no
	// sound window bound exists — see macroArrivalBound's ok = false.
	if s.eng.fastPath && !s.perturbed {
		if bound, ok := s.macroArrivalBound(); ok {
			if s.eng.Opt.TLP == 1 {
				return s.macroStep(bound)
			}
			return s.macroStepSpec(bound)
		}
	}

	ev := s.scheduler.Decide()
	var pre TimeBreakdown
	if s.perturbed {
		pre = s.res.Breakdown
	}
	var it IterationStat
	if s.eng.fastPath {
		it = s.eng.runIterationFast(len(s.active), s.kvSum, ev, &s.res)
	} else {
		it = s.eng.runIteration(s.active, ev, &s.res)
	}
	if s.perturbed {
		s.stretch(&it, pre)
	}
	s.res.Iterations++
	if len(s.res.RLPTrace) < traceCap {
		s.res.RLPTrace = append(s.res.RLPTrace, len(s.active))
	}
	if s.static {
		// Recompute rather than accumulate so the clock matches the summed
		// phase times bit-for-bit.
		s.clock = s.res.PrefillTime + s.res.DecodeTime
	} else {
		s.clock += it.Time
	}

	// Commit tokens and count <|eos|> (§5.2.2 steps 1–2).
	info := StepInfo{Kind: StepIteration}
	eos := 0
	for _, r := range s.active {
		committed := s.eng.commitTokens(r)
		s.res.Tokens += committed
		it.Tokens += committed
		s.kvSum += committed
		if s.kvStore != nil {
			if err := s.kvStore.Extend(r.lease, r.contextLen()); err != nil {
				return StepInfo{}, err
			}
		}
		epoch := units.Seconds(0)
		if !s.static {
			epoch = r.Arrival
		}
		s.tracker.observe(r, committed, s.clock, epoch)
		if r.done {
			eos++
			info.Finished = append(info.Finished, r.Request)
			s.kvSum -= r.InputLen + r.generated
			s.kvDemandAll -= r.kvBytes
			s.kvDemandActive -= r.kvBytes
			s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
			if s.kvStore != nil {
				s.kvStore.Commit(r.lease)
			}
		}
	}
	if len(s.res.IterStats) < traceCap {
		s.res.IterStats = append(s.res.IterStats, it)
	}
	if err := s.scheduler.ObserveEOS(eos); err != nil {
		return StepInfo{}, err
	}
	info.Iteration = it
	info.Completed = eos
	// Drop finished requests from the active set to release KV capacity.
	if eos > 0 {
		s.active = live(s.active)
	}
	return info, nil
}

// ensureTraces pre-sizes the per-iteration traces — the decode loop's only
// growing allocations — so steady-state stepping never reallocates them.
// Lazy (on the first iteration) so runs that never iterate keep nil traces;
// capacity is invisible in the Result, so both decode paths stay deep-equal.
func (s *Stepper) ensureTraces() {
	if s.res.RLPTrace != nil {
		return
	}
	hint := s.traceHint
	if hint == 0 {
		// Stream mode: run length is unknowable up front. 2048 entries
		// (~110 KiB) covers typical continuous-batching cells in one
		// allocation; worst case one doubling reaches the cap.
		hint = 2048
	}
	if hint > traceCap {
		hint = traceCap
	}
	s.res.RLPTrace = make([]int, 0, hint)
	s.res.IterStats = make([]IterationStat, 0, hint)
}

// macroArrivalBound computes the macro window's admission bound: the
// earliest instant at which an admission or preemption could change the
// active batch, +Inf when only a finish can (finishes already end every
// window). Ending a window early is always safe — the next Step re-runs
// admit for real — so every bound here may be conservative; the invariant
// is only that the window never fast-forwards past a boundary the
// reference path would have acted on. ok = false means no sound bound
// exists and the caller must single-step.
//
// Single-class streams keep PR 3's head-of-line rule: the window pauses
// once the queue head is admissible (from its arrival onward every
// iteration boundary would admit it), while a capacity-blocked head waits
// for a finish. Tiered streams bound on the earliest class-boundary event
// instead, using the O(1) class counters and KV-demand totals. The interior
// of a window is frozen — no admissions, evictions or finishes — so under
// the byte ledger every admissibility verdict below is time-invariant
// until the window ends: a blocked request stays blocked, an infeasible
// preemption stays infeasible. Under block sharing that argument fails for
// tiered streams (interior lease growth moves CommittedBlocks and
// ParkGain, so a preemption trigger can arm mid-window) — that is the one
// ok = false regime.
//
//papivet:noalloc
func (s *Stepper) macroArrivalBound() (units.Seconds, bool) {
	inf := units.Seconds(math.Inf(1))
	// Static batches never admit; streams with an empty queue have nothing
	// to admit before the horizon (Push is fenced by SetHorizon).
	if s.static || len(s.pending) == 0 {
		return inf, true
	}
	if !s.tiered() {
		head := s.pending[0]
		if len(s.active) < s.maxBatch && s.kvFits(head) {
			return head.readyAt, true
		}
		return inf, true
	}
	if s.kvShare {
		return 0, false
	}
	// Tiered, byte ledger. With the batch full, neither admission phase nor
	// preemption (which only runs while placing an interactive into a free
	// slot) can act before a finish.
	if len(s.active) >= s.maxBatch {
		return inf, true
	}
	// An admissible batch head bounds the window at its arrival (which may
	// already have passed — admit's prefill can advance the clock over it;
	// the window then closes after one iteration and the next Step admits
	// it, or discovers a blocked interactive barring it). A KV-blocked
	// batch head admits nothing — phase-two admission is literal-head-only,
	// and the head cannot change inside a window — but an interactive
	// behind it still can, so keep looking.
	if head := s.pending[0]; head.Class == workload.ClassBatch && s.kvFits(head) {
		return head.readyAt, true
	}
	// The earliest pending interactive decides the rest: the queue is
	// readyAt-ordered and phase-one admission is FIFO within the tier, so
	// if this one cannot be placed — even by preempting every active batch
	// request — it blocks its whole class and bars batch admission from its
	// arrival until a finish. If it can be placed, its arrival is the
	// boundary.
	if s.pendInteractive > 0 {
		if i := s.firstInteractive(); i < len(s.pending) {
			r := s.pending[i]
			if s.kvFits(r) || s.preemptFeasible(r) {
				return r.readyAt, true
			}
			return inf, true
		}
	}
	return inf, true
}

// preemptFeasible reports whether evicting every active batch-class request
// would make byte-ledger KV room for cand — preemptFor's all-or-nothing
// feasibility test, split out so the macro window bound can ask it without
// evicting. Callers in the block-sharing regime must use preemptFor itself.
//
//papivet:noalloc
func (s *Stepper) preemptFeasible(cand *request) bool {
	var evictable units.Bytes
	for _, r := range s.active {
		if r.Class == workload.ClassBatch {
			evictable += r.kvBytes
		}
	}
	return s.kvDemandActive-evictable+cand.kvBytes <= s.eng.Sys.KVCapacity()
}

// macroStep is the fast path's TLP = 1 macro-stepping: it fast-forwards a
// run of identical-RLP iterations inside one Step call, bounded by the
// earliest finish, the caller-computed admission bound (macroArrivalBound),
// and the horizon. With one deterministic token committed per request per
// iteration, nothing the scheduler or the admission logic observes can
// change inside the window — so the window's interior needs no per-request
// commit walk, only the closed-form-per-iteration pricing (the attention
// term grows linearly in ΣkvLen, an arithmetic series walked with the exact
// float operations of the reference path so every trace entry, energy
// charge and clock value stays bit-identical to K single Steps).
// Per-request bookkeeping is applied once, in bulk, at the window's end.
func (s *Stepper) macroStep(nextArrival units.Seconds) (StepInfo, error) {
	rlp := len(s.active)
	// Iterations until the earliest finish: the window's hard bound, so
	// completions (and the StepInfo.Finished hook) land on their exact
	// iteration.
	k := math.MaxInt
	for _, r := range s.active {
		if rem := r.OutputLen - r.generated; rem < k {
			k = rem
		}
	}

	// One Decide covers the whole window: with RLP and TLP frozen, every
	// interior iteration would reach the same placement with no reschedule,
	// so the scheduler is advanced in bulk (Repeat) when the window closes.
	ev := s.scheduler.Decide()
	run := 0
	var firstClock units.Seconds
	var last IterationStat
	for {
		it := s.eng.runIterationFast(rlp, s.kvSum, ev, &s.res)
		s.res.Iterations++
		if len(s.res.RLPTrace) < traceCap {
			s.res.RLPTrace = append(s.res.RLPTrace, rlp)
		}
		if s.static {
			s.clock = s.res.PrefillTime + s.res.DecodeTime
		} else {
			s.clock += it.Time
		}
		run++
		s.kvSum += rlp // every live request grew by its committed token
		it.Tokens = rlp
		if run == 1 {
			firstClock = s.clock
		}
		if len(s.res.IterStats) < traceCap {
			s.res.IterStats = append(s.res.IterStats, it)
		}
		last = it
		if run == k || nextArrival <= s.clock || s.clock >= s.horizon {
			break
		}
		ev.Iteration++
	}
	s.scheduler.Repeat(run - 1)

	// Bulk-commit the window: each request gained one token per iteration;
	// only the final iteration can have finished requests (those whose
	// remaining output equalled the window length).
	info := StepInfo{Kind: StepIteration, Iteration: last}
	s.res.Tokens += run * rlp
	eos := 0
	// Lease growth replays the reference path's allocator schedule in two
	// phases. Interior iterations free nothing (commits only land on the
	// final iteration), so their per-step, per-lease block allocations all
	// draw on the same monotonically shrinking hot tier — any order pops
	// the same idle blocks, and one bulk Extend per lease to the
	// penultimate context reproduces the state exactly. The final
	// iteration is different: the reference loop interleaves each lease's
	// growth with finished leases' Commits, whose freed blocks are
	// allocatable to the leases after them, so it must be replayed in
	// active order below, not folded into the bulk phase.
	if s.kvStore != nil && run > 1 {
		for _, r := range s.active {
			if err := s.kvStore.Extend(r.lease, r.contextLen()+run-1); err != nil {
				return StepInfo{}, err
			}
		}
	}
	for _, r := range s.active {
		r.iterations += run
		r.generated += run
		if s.kvStore != nil {
			if err := s.kvStore.Extend(r.lease, r.contextLen()); err != nil {
				return StepInfo{}, err
			}
		}
		epoch := units.Seconds(0)
		if !s.static {
			epoch = r.Arrival
		}
		s.tracker.observeRun(r, run, firstClock, s.clock, epoch)
		if r.generated >= r.OutputLen {
			r.done = true
			eos++
			info.Finished = append(info.Finished, r.Request)
			s.kvSum -= r.InputLen + r.generated
			s.kvDemandAll -= r.kvBytes
			s.kvDemandActive -= r.kvBytes
			s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
			if s.kvStore != nil {
				s.kvStore.Commit(r.lease)
			}
		}
	}
	if err := s.scheduler.ObserveEOS(eos); err != nil {
		return StepInfo{}, err
	}
	info.Completed = eos
	if eos > 0 {
		s.active = live(s.active)
	}
	return info, nil
}

// macroStepSpec is macroStep's speculative-decoding (TLP > 1) counterpart:
// it fast-forwards a run of identical-RLP iterations inside one Step call,
// bounded by the first finish, the caller-computed admission bound
// (macroArrivalBound), and the horizon. Unlike TLP = 1, commits are
// stochastic — each iteration draws per-request acceptance samples from the
// engine's RNG — so the interior cannot be bulk-committed: the reference
// path's commit walk runs every iteration, in active order, replaying the
// exact draw sequence. What the window saves is everything around it: one
// Decide plus a bulk Repeat instead of per-iteration scheduling (RLP and
// TLP are frozen, so every interior Decide would reach the same placement),
// no per-iteration admission scan, and — decisively for the cluster driver
// — one event-kernel step per window instead of per iteration. A finish
// ends the window immediately because the iterations after it would run at
// a smaller RLP.
func (s *Stepper) macroStepSpec(nextArrival units.Seconds) (StepInfo, error) {
	rlp := len(s.active)
	ev := s.scheduler.Decide()
	run := 0
	info := StepInfo{Kind: StepIteration}
	eos := 0
	for {
		it := s.eng.runIterationFast(rlp, s.kvSum, ev, &s.res)
		s.res.Iterations++
		if len(s.res.RLPTrace) < traceCap {
			s.res.RLPTrace = append(s.res.RLPTrace, rlp)
		}
		if s.static {
			// Recompute rather than accumulate so the clock matches the
			// summed phase times bit-for-bit.
			s.clock = s.res.PrefillTime + s.res.DecodeTime
		} else {
			s.clock += it.Time
		}
		run++

		// The reference path's per-iteration commit walk, verbatim: the RNG
		// draw order (active order, one burst per request) is part of the
		// bit-identical contract.
		for _, r := range s.active {
			committed := s.eng.commitTokens(r)
			s.res.Tokens += committed
			it.Tokens += committed
			s.kvSum += committed
			if s.kvStore != nil {
				if err := s.kvStore.Extend(r.lease, r.contextLen()); err != nil {
					return StepInfo{}, err
				}
			}
			epoch := units.Seconds(0)
			if !s.static {
				epoch = r.Arrival
			}
			s.tracker.observe(r, committed, s.clock, epoch)
			if r.done {
				eos++
				info.Finished = append(info.Finished, r.Request)
				s.kvSum -= r.InputLen + r.generated
				s.kvDemandAll -= r.kvBytes
				s.kvDemandActive -= r.kvBytes
				s.countClass(r.Class, &s.actInteractive, &s.actBatch, -1)
				if s.kvStore != nil {
					s.kvStore.Commit(r.lease)
				}
			}
		}
		if len(s.res.IterStats) < traceCap {
			s.res.IterStats = append(s.res.IterStats, it)
		}
		info.Iteration = it
		if eos > 0 || nextArrival <= s.clock || s.clock >= s.horizon {
			break
		}
		ev.Iteration++
	}
	s.scheduler.Repeat(run - 1)
	// Interior iterations had no completions, so their reference-path
	// ObserveEOS(0) calls were no-ops; one call at the window's end is
	// equivalent.
	if err := s.scheduler.ObserveEOS(eos); err != nil {
		return StepInfo{}, err
	}
	info.Completed = eos
	if eos > 0 {
		s.active = live(s.active)
	}
	return info, nil
}

// Finalize closes the run and returns the accumulated Result: per-request
// metrics in input order, scheduler activity, and host-CPU energy over the
// makespan. Further Finalize calls return the same Result.
func (s *Stepper) Finalize() Result {
	if s.finalized {
		return s.res
	}
	s.finalized = true
	order := make([]workload.Request, len(s.all))
	for i, r := range s.all {
		order[i] = r.Request
	}
	s.res.Requests = s.tracker.finalize(order)
	if s.scheduler != nil {
		s.res.Reschedules = s.scheduler.Reschedules()
	}
	if s.static {
		s.res.PerRequestIterations = make([]int, len(s.all))
		for i, r := range s.all {
			s.res.PerRequestIterations[i] = r.iterations
		}
	}
	// Host CPU draws power for the whole run.
	s.res.Energy.Add(energy.HostCPU, s.eng.Sys.HostPower.Energy(s.res.TotalTime()))
	// Block-cache counters are part of the Result only when sharing was live;
	// a shadow store's ledger is an implementation detail, and attaching it
	// would break the sharing-off ≡ legacy Result equivalence.
	if s.kvShare {
		st := s.kvStore.Stats()
		s.res.KV = &st
	}
	return s.res
}

// run drives a stepper to completion — the shared tail of RunBatch and
// RunContinuous.
func (s *Stepper) run() (Result, error) {
	for {
		info, err := s.Step()
		if err != nil {
			return Result{}, err
		}
		if info.Kind == StepDrained {
			return s.Finalize(), nil
		}
	}
}
