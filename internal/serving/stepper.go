package serving

import (
	"fmt"
	"sort"

	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// StepKind says what a single Step advanced.
type StepKind int

const (
	// StepDrained means nothing is left to do: no live requests and no
	// pending arrivals. The stepper is finished.
	StepDrained StepKind = iota
	// StepIdle means no request was runnable, so the clock jumped to the
	// next pending arrival (idle time, continuous batching only).
	StepIdle
	// StepIteration means one decoding iteration ran and committed tokens.
	StepIteration
)

// StepInfo reports the outcome of one Step call.
type StepInfo struct {
	Kind StepKind
	// Iteration is the iteration's trace entry (valid for StepIteration),
	// with Tokens filled from the committed count.
	Iteration IterationStat
	// Completed is how many requests reached <|eos|> this step.
	Completed int
	// Finished lists the requests that reached <|eos|> this step, in active
	// order — the hook closed-loop arrival owners (multi-turn conversations
	// in internal/cluster) use to couple a follow-up Push to a completion.
	Finished []workload.Request
}

// Stepper is the resumable core of the serving engine: the iteration loop
// shared by RunBatch and RunContinuous, exposed as an
// admit → decide → iterate → commit cycle that advances by exactly one
// iteration per Step call on a caller-owned clock. This lets a caller — the
// multi-replica simulator in internal/cluster — interleave many engines
// deterministically on one event kernel instead of each run owning its own
// timeline.
//
// Two modes exist:
//
//   - static (NewBatchStepper): the whole batch is prefilled up front and
//     latencies are measured from run start, reproducing RunBatch;
//   - stream (NewStreamStepper): requests are admitted at iteration
//     boundaries as they arrive (mixed continuous batching), bounded by the
//     admission cap and KV capacity, reproducing RunContinuous. More
//     arrivals may be injected mid-run with Push.
type Stepper struct {
	eng *Engine
	res Result

	all     []*request // every request seen, in input order
	pending []*request // arrival-ordered, not yet admitted (stream mode)
	active  []*request // admitted and unfinished

	scheduler *sched.Scheduler
	tracker   *metricsTracker
	maxBatch  int
	static    bool
	clock     units.Seconds

	finalized bool
}

// NewBatchStepper builds a static-batching stepper: every request is
// prefilled immediately and decode iterations run until the batch drains.
func (e *Engine) NewBatchStepper(reqs []workload.Request) (*Stepper, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serving: empty batch")
	}
	if err := e.checkKVCapacity(reqs); err != nil {
		return nil, err
	}
	s := &Stepper{
		eng:      e,
		res:      Result{System: e.Sys.Name, Model: e.Cfg.Name},
		maxBatch: len(reqs),
		static:   true,
		tracker:  newMetricsTracker(),
	}
	inputs := make([]int, len(reqs))
	for i, r := range reqs {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return nil, fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
		}
		rr := &request{Request: r}
		s.all = append(s.all, rr)
		s.active = append(s.active, rr)
		inputs[i] = r.InputLen
	}

	// Prefill (§2.1): all input tokens processed at once. Compute-bound, so
	// it runs on the GPU where one exists; PIM-only designs pay for it on
	// their PIM units (§7.4).
	s.res.PrefillTime = e.runPrefill(inputs, &s.res)
	s.clock = s.res.PrefillTime

	scheduler, err := sched.NewScheduler(e.Sys.Policy, len(reqs), e.Opt.TLP)
	if err != nil {
		return nil, err
	}
	s.scheduler = scheduler
	return s, nil
}

// NewStreamStepper builds a continuous-batching stepper over an
// arrival-ordered request stream. The stream may be empty: a caller that
// owns the arrival process (internal/cluster) injects requests with Push as
// they reach this engine.
func (e *Engine) NewStreamStepper(reqs []workload.Request, maxBatch int) (*Stepper, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serving: max batch %d must be positive", maxBatch)
	}
	s := &Stepper{
		eng:      e,
		res:      Result{System: e.Sys.Name, Model: e.Cfg.Name},
		maxBatch: maxBatch,
		tracker:  newMetricsTracker(),
	}
	for _, r := range reqs {
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			return nil, fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
		}
		rr := &request{Request: r}
		s.all = append(s.all, rr)
		s.pending = append(s.pending, rr)
	}
	sort.SliceStable(s.pending, func(i, j int) bool {
		return s.pending[i].Arrival < s.pending[j].Arrival
	})
	return s, nil
}

// Push injects one more request into a stream stepper's pending queue. The
// cluster router calls this at the request's arrival instant.
func (s *Stepper) Push(r workload.Request) error {
	if s.static {
		return fmt.Errorf("serving: cannot push into a static batch stepper")
	}
	if r.InputLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("serving: request %d has non-positive lengths", r.ID)
	}
	rr := &request{Request: r}
	s.all = append(s.all, rr)
	// Arrivals are pushed in time order in practice; insert stably so an
	// out-of-order push cannot corrupt the queue.
	i := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].Arrival > r.Arrival
	})
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = rr
	return nil
}

// Now reports the engine-local clock: prefill plus decode plus idle time
// elapsed so far.
func (s *Stepper) Now() units.Seconds { return s.clock }

// HasWork reports whether any request is live or waiting.
func (s *Stepper) HasWork() bool { return len(s.active) > 0 || len(s.pending) > 0 }

// Outstanding counts requests admitted-but-unfinished plus queued — the
// load signal the least-outstanding-requests router balances on.
func (s *Stepper) Outstanding() int { return len(s.active) + len(s.pending) }

// KVDemand returns the worst-case KV-cache footprint of every outstanding
// request (live and queued), the signal the KV-headroom router balances on.
func (s *Stepper) KVDemand() units.Bytes {
	var need units.Bytes
	for _, r := range s.active {
		need += s.eng.Cfg.KVBytes(r.SeqLen())
	}
	for _, r := range s.pending {
		need += s.eng.Cfg.KVBytes(r.SeqLen())
	}
	return need
}

// AdvanceTo moves an idle stepper's clock forward to t, accounting the gap
// as idle time. It is a no-op when t is not ahead of the clock or when live
// requests still occupy the engine (a busy engine's clock only advances by
// running iterations).
func (s *Stepper) AdvanceTo(t units.Seconds) {
	if t <= s.clock || len(s.active) > 0 {
		return
	}
	s.res.IdleTime += t - s.clock
	s.clock = t
}

// admit moves pending requests whose arrival has passed into the active
// batch, bounded by the admission cap and the attention pool's KV capacity,
// and charges their prefill (piggybacked onto the token timeline).
func (s *Stepper) admit() error {
	var newcomers []int
	for len(s.pending) > 0 && len(s.active)+len(newcomers) < s.maxBatch {
		cand := s.pending[0]
		if cand.Arrival > s.clock {
			break
		}
		if !s.eng.kvFits(s.active, cand) {
			break
		}
		s.active = append(s.active, cand)
		newcomers = append(newcomers, cand.InputLen)
		s.pending = s.pending[1:]
	}
	if len(newcomers) == 0 {
		return nil
	}
	pt := s.eng.runPrefill(newcomers, &s.res)
	s.res.PrefillTime += pt
	s.clock += pt
	if s.scheduler == nil {
		var err error
		s.scheduler, err = sched.NewScheduler(s.eng.Sys.Policy, len(newcomers), s.eng.Opt.TLP)
		return err
	}
	return s.scheduler.AdmitRequests(len(newcomers))
}

// Step advances the engine by one unit of progress: admit any arrived
// requests, then either run one decoding iteration (decide → iterate →
// commit), jump the clock to the next arrival if nothing is runnable, or
// report the stepper drained.
func (s *Stepper) Step() (StepInfo, error) {
	if !s.static {
		if err := s.admit(); err != nil {
			return StepInfo{}, err
		}
	}
	if len(s.active) == 0 {
		if len(s.pending) == 0 {
			return StepInfo{Kind: StepDrained}, nil
		}
		gap := s.pending[0].Arrival - s.clock
		if gap <= 0 {
			// The head request has arrived but could not be admitted with
			// an empty batch: its KV cache alone exceeds the pool.
			return StepInfo{}, fmt.Errorf("serving: request %d KV footprint exceeds attention pool capacity",
				s.pending[0].ID)
		}
		s.res.IdleTime += gap
		s.clock = s.pending[0].Arrival
		return StepInfo{Kind: StepIdle}, nil
	}

	ev := s.scheduler.Decide()
	it := s.eng.runIteration(s.active, ev, &s.res)
	s.res.Iterations++
	if len(s.res.RLPTrace) < traceCap {
		s.res.RLPTrace = append(s.res.RLPTrace, len(s.active))
	}
	if s.static {
		// Recompute rather than accumulate so the clock matches the summed
		// phase times bit-for-bit.
		s.clock = s.res.PrefillTime + s.res.DecodeTime
	} else {
		s.clock += it.Time
	}

	// Commit tokens and count <|eos|> (§5.2.2 steps 1–2).
	info := StepInfo{Kind: StepIteration}
	eos := 0
	for _, r := range s.active {
		committed := s.eng.commitTokens(r)
		s.res.Tokens += committed
		it.Tokens += committed
		epoch := units.Seconds(0)
		if !s.static {
			epoch = r.Arrival
		}
		s.tracker.observe(r, committed, s.clock, epoch)
		if r.done {
			eos++
			info.Finished = append(info.Finished, r.Request)
		}
	}
	if len(s.res.IterStats) < traceCap {
		s.res.IterStats = append(s.res.IterStats, it)
	}
	if err := s.scheduler.ObserveEOS(eos); err != nil {
		return StepInfo{}, err
	}
	info.Iteration = it
	info.Completed = eos
	// Drop finished requests from the active set to release KV capacity.
	s.active = live(s.active)
	return info, nil
}

// Finalize closes the run and returns the accumulated Result: per-request
// metrics in input order, scheduler activity, and host-CPU energy over the
// makespan. Further Finalize calls return the same Result.
func (s *Stepper) Finalize() Result {
	if s.finalized {
		return s.res
	}
	s.finalized = true
	order := make([]workload.Request, len(s.all))
	for i, r := range s.all {
		order[i] = r.Request
	}
	s.res.Requests = s.tracker.finalize(order)
	if s.scheduler != nil {
		s.res.Reschedules = s.scheduler.Reschedules()
	}
	if s.static {
		s.res.PerRequestIterations = make([]int, len(s.all))
		for i, r := range s.all {
			s.res.PerRequestIterations[i] = r.iterations
		}
	}
	// Host CPU draws power for the whole run.
	s.res.Energy.Add(energy.HostCPU, s.eng.Sys.HostPower.Energy(s.res.TotalTime()))
	return s.res
}

// run drives a stepper to completion — the shared tail of RunBatch and
// RunContinuous.
func (s *Stepper) run() (Result, error) {
	for {
		info, err := s.Step()
		if err != nil {
			return Result{}, err
		}
		if info.Kind == StepDrained {
			return s.Finalize(), nil
		}
	}
}
