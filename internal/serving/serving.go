// Package serving simulates end-to-end LLM inference on the evaluated
// systems: the prefill phase, iteration-by-iteration parallel decoding with
// batching and speculative decoding (§2), dynamic RLP decay as requests
// finish (§3.2, Fig. 3), per-iteration FC placement by the system's
// scheduling policy (§5), and full time/energy accounting with the
// FC / attention / communication / other breakdown of Fig. 12.
//
// The engine runs in two batching modes — RunBatch (static) and
// RunContinuous (mixed continuous batching) — both thin wrappers around
// Stepper, the resumable admit → decide → iterate → commit core that
// advances one iteration per Step on a caller-owned clock. External arrival
// owners (the fleet simulator in internal/cluster, closed-loop multi-turn
// scenarios) inject requests mid-run with Push and observe completions via
// StepInfo.Finished. Per-request latency metrics (TTFT, TPOT, completion)
// and SLO attainment live in metrics.go.
package serving

import (
	"fmt"
	"math/rand"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/kv"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// Options configures a serving run.
type Options struct {
	// TLP is the speculation length (token-level parallelism); 1 disables
	// speculative decoding.
	TLP int
	// AcceptanceRate is the per-token probability that the target model
	// accepts a draft token (β).
	AcceptanceRate float64
	// Draft is the draft model; nil selects a small default when TLP > 1.
	// The paper does not name its draft model; we default to an OPT-125M
	// class draft for every target so results are comparable across models.
	Draft *model.Config
	// DraftOverlap is the fraction of draft-model time hidden under the
	// previous iteration's verification (pipelined drafting).
	DraftOverlap float64
	// OtherPerIteration charges fixed per-iteration work: sampling, token
	// gathering, embedding lookups.
	OtherPerIteration units.Seconds
	// Seed drives the acceptance sampling.
	Seed int64
	// FastPath selects the memoized fast path or the reference decode loop;
	// the zero value follows the package default (on). Both produce
	// bit-identical Results.
	FastPath FastPathMode
	// Costs optionally shares a kernel-pricing table with other engines of
	// the same (system design, model, draft) combination — cluster replicas,
	// sweep cells. Nil gives the engine a private table.
	Costs *CostTable
	// DiscardCompleted drops per-request records as requests finish instead
	// of retaining them for Finalize: Result.Requests comes back empty and a
	// completed request's metrics are readable exactly once, through
	// Stepper.TakeMetrics at its completion. This is the constant-memory
	// mode the cluster layer selects for streaming fleet runs (it harvests
	// every completion into mergeable sketches); the zero value retains
	// everything, so every existing caller is unaffected. Static batch
	// steppers ignore it: RunBatch's contract is the retained Result.
	DiscardCompleted bool
	// KV selects block-level KV-cache management (internal/kv): fixed-size
	// refcounted blocks, a prefix index that lets requests adopt committed
	// blocks instead of re-prefilling, and a hot/cold tier pair whose
	// promotion/demotion pays explicit transfer cost. Nil keeps the legacy
	// per-request length-counter accounting. With KV set but KV.Sharing
	// false the store runs in shadow mode: the block ledger is maintained
	// (and auditable) but every Result stays bit-identical to KV = nil,
	// which the equivalence tests pin.
	KV *kv.Options
}

// DefaultOptions returns the configuration used by the figure reproductions.
func DefaultOptions(tlp int) Options {
	return Options{
		TLP:               tlp,
		AcceptanceRate:    0.8,
		DraftOverlap:      0.75,
		OtherPerIteration: units.Microseconds(120),
		Seed:              1,
	}
}

func (o Options) validate() error {
	if o.TLP < 1 {
		return fmt.Errorf("serving: TLP %d must be ≥ 1", o.TLP)
	}
	if o.AcceptanceRate < 0 || o.AcceptanceRate > 1 {
		return fmt.Errorf("serving: acceptance rate %v outside [0,1]", o.AcceptanceRate)
	}
	if o.DraftOverlap < 0 || o.DraftOverlap > 1 {
		return fmt.Errorf("serving: draft overlap %v outside [0,1]", o.DraftOverlap)
	}
	return nil
}

// TimeBreakdown splits decode time by phase (Fig. 12).
type TimeBreakdown struct {
	FC            units.Seconds
	Attention     units.Seconds
	Communication units.Seconds
	Other         units.Seconds
}

// Total sums the phases.
func (b TimeBreakdown) Total() units.Seconds {
	return b.FC + b.Attention + b.Communication + b.Other
}

// IterationStat records one decoding iteration.
type IterationStat struct {
	Index     int
	RLP       int
	TLP       int
	Placement sched.Placement
	Time      units.Seconds
	Tokens    int // tokens committed across the batch this iteration
}

// Result reports one batch's end-to-end execution.
type Result struct {
	System string
	Model  string

	PrefillTime units.Seconds
	DecodeTime  units.Seconds
	// IdleTime is time spent waiting for arrivals (continuous batching only).
	IdleTime   units.Seconds
	Iterations int
	Tokens     int // output tokens generated

	// PrefillTokens counts prompt tokens actually prefilled (after any
	// prefix-cache sharing); ReprefillTokens is the re-prefill tax within
	// that: prefilled tokens whose KV state had been computed before — a
	// preempted request's regrown context, a follow-up turn's carried
	// conversation, a shared document prefix — and that a sharing cache
	// could have adopted instead. Both are maintained in every mode, so
	// the sharing-off baseline exposes exactly the tax sharing removes.
	PrefillTokens   int `json:",omitempty"`
	ReprefillTokens int `json:",omitempty"`

	Breakdown   TimeBreakdown
	Energy      energy.Ledger
	Reschedules int
	// Preemptions counts evict-and-requeue events: batch-class requests
	// pushed out of the active batch to make KV room for an interactive
	// arrival (each re-admission pays a fresh prefill over the grown
	// context).
	Preemptions int
	Throttled   bool

	// RLPTrace is the request-level parallelism at each iteration (Fig. 3's
	// decay); capped in length for very long runs.
	RLPTrace []int
	// PerRequestIterations is, per request, the number of decoding
	// iterations it stayed active (Fig. 3's per-request view).
	PerRequestIterations []int
	// IterStats capture a capped per-iteration trace (Fig. 5(d) style).
	IterStats []IterationStat
	// Requests carries per-request latency metrics (TTFT, TPOT, completion).
	Requests []RequestMetrics

	// KV is the block store's cumulative activity (hit rate, shared tokens,
	// tier transfers); set only when Options.KV enables sharing, so
	// sharing-off Results stay deep-equal to the legacy engine's.
	KV *kv.Stats `json:",omitempty"`
}

// TotalTime returns the makespan: prefill, decode, and arrival gaps.
func (r Result) TotalTime() units.Seconds { return r.PrefillTime + r.DecodeTime + r.IdleTime }

// TimePerToken returns decode time per generated output token.
func (r Result) TimePerToken() units.Seconds {
	if r.Tokens == 0 {
		return 0
	}
	return r.DecodeTime / units.Seconds(r.Tokens)
}

// Engine runs batches on one system/model pair.
type Engine struct {
	Sys *core.System
	Cfg model.Config
	Opt Options

	draft model.Config
	rng   *rand.Rand

	// fastPath selects the memoized decode loop (see costs.go).
	fastPath bool
	// costs is the (possibly shared) kernel-pricing table; puCache/pimCache/
	// draftCache are this engine's lock-free first-level caches over it.
	costs      *CostTable
	puCache    []fcCost
	pimCache   []fcCost
	draftCache draftPrice

	// otherBase is the fixed per-iteration overhead: sampling/gather plus
	// the policy's decision latency (hoisted so the decode loop skips a type
	// assertion per iteration; both are constants of the engine).
	otherBase units.Seconds

	// Constants of the fused fast-path iteration (runIterationFast), hoisted
	// at construction. Every one is a product of integer-valued floats far
	// below 2⁵³, so folding them does not change any result bit: layersF is
	// the layer count, attnOvh the per-iteration attention kernel overheads,
	// attnFlopsCoef/attnActTerm the per-ΣkvLen / per-request attention-kernel
	// coefficients, and *W the idle/standby power products.
	layersF       float64
	attnOvh       units.Seconds
	attnFlopsCoef float64
	attnActTerm   float64
	gpuIdleW      units.Watts
	fcStandbyW    units.Watts
	attnStandbyW  units.Watts
}

// traceCap bounds the per-iteration traces kept in a Result.
const traceCap = 4096

// New validates and builds an engine.
func New(sys *core.System, cfg model.Config, opt Options) (*Engine, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := sys.FitsModel(cfg); err != nil {
		return nil, err
	}
	e := &Engine{Sys: sys, Cfg: cfg, Opt: opt}
	if opt.Draft != nil {
		e.draft = *opt.Draft
	} else {
		e.draft = model.OPT125M()
	}
	if err := e.draft.Validate(); err != nil {
		return nil, fmt.Errorf("serving: draft model: %w", err)
	}
	// Search-based placement policies pay their decision latency on the
	// critical path (§8's SpecPIM argument); PAPI's predictor is free.
	e.otherBase = opt.OtherPerIteration
	if cp, ok := sys.Policy.(sched.CostedPolicy); ok {
		e.otherBase += cp.DecisionCost()
	}
	e.layersF = float64(cfg.Layers)
	e.attnOvh = sys.AttnPIM.KernelOverhead.Scale(e.layersF - 1)
	h := float64(cfg.Hidden)
	e.attnFlopsCoef = 4 * float64(opt.TLP)
	e.attnActTerm = float64(opt.TLP) * 4 * h * model.BytesPerElement
	if sys.GPU != nil {
		e.gpuIdleW = sys.GPU.Spec.IdlePower.Scale(float64(sys.GPU.Count))
	}
	if sys.FCPIM != nil {
		e.fcStandbyW = sys.FCPIM.Energy.StaticW.Scale(float64(sys.FCPIM.Count))
	}
	e.attnStandbyW = sys.AttnPIM.Energy.StaticW.Scale(float64(sys.AttnPIM.Count))
	e.fastPath = opt.FastPath.enabled()
	e.costs = opt.Costs
	if e.costs == nil {
		e.costs = NewCostTable()
	}
	if err := e.costs.bind(costFingerprint(sys, cfg, e.draft)); err != nil {
		return nil, err
	}
	return e, nil
}

// request tracks one in-flight request's decode progress.
type request struct {
	workload.Request
	generated  int
	iterations int
	done       bool
	// readyAt orders the pending queue: the request's arrival, or — after a
	// preemption — the instant it was evicted and requeued. Never before
	// Arrival, so admission eligibility is unchanged for fresh requests.
	readyAt units.Seconds
	// preempted counts how many times the request was evicted from the
	// active batch (batch-class requests only).
	preempted int
	// rm caches this request's metrics entry so the per-iteration observe
	// path skips the tracker's by-ID map (see metricsTracker.entry).
	rm *RequestMetrics
	// lease is the request's hold on the block store (nil without
	// Options.KV); kvBytes is its cached worst-case KV footprint — the
	// demand-signal contribution, fixed at creation (with the resident
	// shared prefix already discounted when sharing is on) so every
	// incremental ± returns the running sums to zero exactly.
	lease   *kv.Lease
	kvBytes units.Bytes
}

// contextLen is the KV length the request occupies on (re-)admission: its
// prompt plus every token already generated. A preempted request lost its KV
// cache, so re-admission re-prefills the full grown context.
func (r *request) contextLen() int { return r.InputLen + r.generated }

// RunBatch executes one statically-batched inference: prefill for the whole
// batch, then decode iterations until every request has produced its output
// (requests finishing early shrink RLP, as in Fig. 3). It is a convenience
// wrapper over NewBatchStepper that drives the stepper to completion.
func (e *Engine) RunBatch(reqs []workload.Request) (Result, error) {
	st, err := e.NewBatchStepper(reqs)
	if err != nil {
		return Result{}, err
	}
	return st.run()
}

// live filters unfinished requests in place (the stepper owns the backing
// array) so the per-step path stays allocation-free; the vacated tail is
// cleared so finished requests do not stay reachable.
func live(all []*request) []*request {
	out := all[:0]
	for _, r := range all {
		if !r.done {
			out = append(out, r)
		}
	}
	for i := len(out); i < len(all); i++ {
		all[i] = nil
	}
	return out
}

// checkKVCapacity rejects batches whose worst-case KV footprint exceeds the
// attention pool (§3.2(b)'s memory-capacity limit surfaces as a typed error).
func (e *Engine) checkKVCapacity(reqs []workload.Request) error {
	var need units.Bytes
	for _, r := range reqs {
		need += e.Cfg.KVBytes(r.SeqLen())
	}
	if cap := e.Sys.KVCapacity(); need > cap {
		return fmt.Errorf("serving: batch KV footprint %v exceeds attention pool capacity %v", need, cap)
	}
	return nil
}

// runPrefill executes the prefill phase and charges its energy.
func (e *Engine) runPrefill(inputs []int, res *Result) units.Seconds {
	k := e.Cfg.PrefillWork(inputs)
	if e.Sys.PrefillOnGPU {
		g := e.Sys.GPU.Execute(k.Flops, k.WeightBytes)
		res.Energy.Add(energy.GPUActive, g.Energy)
		e.chargePIMIdle(g.Time, res)
		return g.Time
	}
	p := e.Sys.FCPIM.Execute(pim.Kernel{Name: "prefill", Class: pim.ClassFC, Flops: k.Flops, UniqueBytes: k.WeightBytes}, 0)
	res.Throttled = res.Throttled || p.Throttled
	res.Energy.Add(energy.FCPIM, p.Energy.Total())
	return p.Time
}

// runIteration executes one decoding iteration for the live requests and
// returns its stats — the reference path: the attention kernel is derived
// from a freshly-built KV-length slice and the FC and draft kernels are
// re-priced from scratch. Iteration structure (per layer, serialised):
// FC(QKV) → link to Attn-PIM → attention → link back → FC(projection+FFN);
// all-layer work is aggregated into closed forms since layers are identical.
func (e *Engine) runIteration(liveReqs []*request, ev sched.Event, res *Result) IterationStat {
	rlp := len(liveReqs)
	kvLens := make([]int, rlp)
	for i, r := range liveReqs {
		kvLens[i] = r.InputLen + r.generated
	}
	attnLayer := e.Cfg.AttentionKernel(e.Opt.TLP, kvLens)
	return e.priceIteration(rlp, e.attnPriceFresh(attnLayer, rlp), ev, res)
}

// runIterationFast is the fast path: one fused, allocation-free decoding
// iteration. The attention kernel comes from the incremental ΣkvLen the
// stepper maintains (the closed form of model.AttentionKernelSum, with the
// engine-hoisted coefficients), priced through pim.ExecuteAttention; the FC
// and draft kernels are served from the memoized cost tables. Every
// floating-point value equals the reference path's (priceIteration) —
// memoized pricing is pure, and the folded coefficients are exact-integer
// products — which the equivalence tests pin per system, mode and TLP.
//
//papivet:noalloc
func (e *Engine) runIterationFast(rlp, kvSum int, ev sched.Event, res *Result) IterationStat {
	n := rlp * e.Opt.TLP

	// --- FC phase, from the cost tables.
	var fcTime units.Seconds
	gpuBusy := units.Seconds(0)
	if ev.Placement == sched.PlacePU && e.Sys.HasGPU() {
		c := e.fcCostPU(n)
		fcTime = c.time
		gpuBusy = fcTime
		res.Energy.AddSlot(energy.SlotGPUActive, c.energy)
	} else {
		c := e.fcCostPIM(n)
		res.Throttled = res.Throttled || c.throttled
		fcTime = c.time
		res.Energy.AddSlot(energy.SlotFCPIM, c.energy)
		res.Energy.AddSlot(energy.SlotInterconnect, c.linkEnergy)
	}

	// --- Attention phase, closed-form from ΣkvLen (AttentionKernelSum
	// inlined against the hoisted coefficients, all-layer scaling fused).
	h := float64(e.Cfg.Hidden)
	l := float64(kvSum)
	attnFlops := e.attnFlopsCoef * l * h
	attnKV := 4 * l * h
	activeDev := rlp * e.Cfg.Heads
	if activeDev > e.Sys.AttnPIM.Count {
		activeDev = e.Sys.AttnPIM.Count
	}
	at, aEnergy, aThrottled := e.Sys.AttnPIM.ExecuteAttention(
		units.FLOPs(attnFlops*e.layersF), units.Bytes(attnKV*e.layersF), activeDev)
	res.Throttled = res.Throttled || aThrottled
	attnTime := at + e.attnOvh
	res.Energy.AddSlot(energy.SlotAttnPIM, aEnergy)

	// --- Communication, per layer across the attention fabric.
	tr := e.Sys.AttnLink.Send(units.Bytes(float64(rlp) * e.attnActTerm))
	commTime := tr.Time.Scale(e.layersF)
	res.Energy.AddSlot(energy.SlotInterconnect, tr.Energy.Scale(e.layersF))

	// --- Other: fixed overheads plus (under speculation) the memoized draft.
	otherTime := e.otherBase
	if e.Opt.TLP > 1 {
		otherTime += e.chargeDraft(e.draftMemoized(), res)
	}

	iterTime := fcTime + attnTime + commTime + otherTime

	// --- Idle and standby energy, against the hoisted power products.
	if e.Sys.HasGPU() {
		if idle := iterTime - gpuBusy; idle > 0 {
			res.Energy.AddSlot(energy.SlotGPUIdle, e.gpuIdleW.Energy(idle))
		}
	}
	if e.Sys.FCPIM != nil {
		if idle := iterTime - fcTime; idle > 0 {
			res.Energy.AddSlot(energy.SlotFCPIM, e.fcStandbyW.Energy(idle))
		}
	}
	if idle := iterTime - attnTime; idle > 0 {
		res.Energy.AddSlot(energy.SlotAttnPIM, e.attnStandbyW.Energy(idle))
	}

	res.DecodeTime += iterTime
	res.Breakdown.FC += fcTime
	res.Breakdown.Attention += attnTime
	res.Breakdown.Communication += commTime
	res.Breakdown.Other += otherTime

	return IterationStat{
		Index:     ev.Iteration,
		RLP:       rlp,
		TLP:       e.Opt.TLP,
		Placement: ev.Placement,
		Time:      iterTime,
	}
}

// priceIteration executes one decoding iteration given the priced attention
// phase, charging time and energy to res — the reference path's core, which
// re-prices the FC and draft kernels from scratch every call.
func (e *Engine) priceIteration(rlp int, attn attnCost, ev sched.Event, res *Result) IterationStat {
	n := rlp * e.Opt.TLP

	// --- FC phase (QKV + projection + FFN over all layers).
	var fcTime units.Seconds
	gpuBusy := units.Seconds(0)
	if ev.Placement == sched.PlacePU && e.Sys.HasGPU() {
		c := e.fcPricePU(n)
		fcTime = c.time
		gpuBusy = fcTime
		res.Energy.Add(energy.GPUActive, c.energy)
	} else {
		c := e.fcPricePIM(n)
		res.Throttled = res.Throttled || c.throttled
		fcTime = c.time
		res.Energy.Add(energy.FCPIM, c.energy)
		// Activations cross the PU fabric to reach the FC-PIM stacks.
		res.Energy.Add(energy.Interconnect, c.linkEnergy)
	}

	// --- Attention phase on the attention PIM pool (always).
	res.Throttled = res.Throttled || attn.throttled
	attnTime := attn.time
	res.Energy.Add(energy.AttnPIM, attn.energy)

	// --- Communication: per layer, Q/K/V vectors to the disaggregated
	// attention devices and the context back (§6.3's byte-level traffic).
	commTime := attn.commTime
	res.Energy.Add(energy.Interconnect, attn.commEnergy)

	// --- Other: draft-model drafting (§2.2.2) plus sampling/gather and the
	// policy's decision latency (otherBase).
	otherTime := e.otherBase
	if e.Opt.TLP > 1 {
		otherTime += e.chargeDraft(e.draftPriceFresh(), res)
	}

	iterTime := fcTime + attnTime + commTime + otherTime

	// Idle energy: GPUs idle whenever they are not running FC; PIM pools
	// draw standby power across the whole iteration outside their busy window.
	if e.Sys.HasGPU() {
		if idle := iterTime - gpuBusy; idle > 0 {
			res.Energy.Add(energy.GPUIdle, e.Sys.GPU.IdleEnergy(idle))
		}
	}
	e.chargePIMStandby(iterTime, fcTime, attnTime, res)

	res.DecodeTime += iterTime
	res.Breakdown.FC += fcTime
	res.Breakdown.Attention += attnTime
	res.Breakdown.Communication += commTime
	res.Breakdown.Other += otherTime

	return IterationStat{
		Index:     ev.Iteration,
		RLP:       rlp,
		TLP:       e.Opt.TLP,
		Placement: ev.Placement,
		Time:      iterTime,
		// Tokens is filled by Stepper.Step from the committed count.
	}
}

// chargeDraft converts a draft-model pricing into the visible
// (non-overlapped) per-iteration time and charges its energy to whichever
// pool runs it.
func (e *Engine) chargeDraft(d draftPrice, res *Result) units.Seconds {
	if d.onGPU {
		res.Energy.Add(energy.GPUActive, d.energy)
	} else {
		res.Energy.Add(energy.FCPIM, d.energy)
	}
	serial := d.per.Seconds() * float64(e.Opt.TLP)
	return units.Seconds(serial * (1 - e.Opt.DraftOverlap))
}

// chargePIMIdle charges standby power on all PIM pools for span (used during
// prefill, when PIM is idle).
func (e *Engine) chargePIMIdle(span units.Seconds, res *Result) {
	if e.Sys.FCPIM != nil {
		res.Energy.Add(energy.FCPIM, standby(e.Sys.FCPIM, span))
	}
	res.Energy.Add(energy.AttnPIM, standby(e.Sys.AttnPIM, span))
}

// chargePIMStandby charges PIM standby power outside each pool's busy window.
func (e *Engine) chargePIMStandby(iter, fcBusy, attnBusy units.Seconds, res *Result) {
	if e.Sys.FCPIM != nil {
		if idle := iter - fcBusy; idle > 0 {
			res.Energy.Add(energy.FCPIM, standby(e.Sys.FCPIM, idle))
		}
	}
	if idle := iter - attnBusy; idle > 0 {
		res.Energy.Add(energy.AttnPIM, standby(e.Sys.AttnPIM, idle))
	}
}

func standby(d *pim.Device, span units.Seconds) units.Joules {
	return d.Energy.StaticW.Scale(float64(d.Count)).Energy(span)
}

// commitTokens applies one iteration's outcome to a request: with TLP = 1 a
// single token; with speculation, a prefix of the TLP drafted tokens whose
// length follows the per-token acceptance chain (§2.2.2). Returns the number
// of output tokens committed.
func (e *Engine) commitTokens(r *request) int {
	r.iterations++
	committed := 1
	if e.Opt.TLP > 1 {
		if e.rng == nil {
			// Seeded lazily: TLP = 1 engines never sample, and seeding the
			// legacy source is expensive enough to show up when a sweep
			// builds hundreds of replicas.
			e.rng = rand.New(rand.NewSource(e.Opt.Seed))
		}
		for committed < e.Opt.TLP && e.rng.Float64() < e.Opt.AcceptanceRate {
			committed++
		}
	}
	remaining := r.OutputLen - r.generated
	if committed > remaining {
		committed = remaining
	}
	r.generated += committed
	if r.generated >= r.OutputLen {
		r.done = true
	}
	return committed
}
