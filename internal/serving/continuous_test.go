package serving

import (
	"strings"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

func TestContinuousCompletesAll(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := workload.GeneralQA().Poisson(24, 50, 3)
	res, err := e.RunContinuous(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range reqs {
		want += r.OutputLen
	}
	if res.Tokens != want {
		t.Fatalf("tokens = %d, want %d", res.Tokens, want)
	}
	if res.Iterations == 0 || res.DecodeTime <= 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
}

func TestContinuousRespectsMaxBatch(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := workload.GeneralQA().Generate(32, 5) // all arrive at t=0
	res, err := e.RunContinuous(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rlp := range res.RLPTrace {
		if rlp > 4 {
			t.Fatalf("iteration %d ran %d requests, max batch 4", i, rlp)
		}
	}
}

func TestContinuousRLPGrowsAndShrinks(t *testing.T) {
	// The §3.2 dynamics: admissions raise runtime RLP, completions lower it.
	e := mustEngine(t, core.NewPAPI(0), model.GPT3_66B(), DefaultOptions(1))
	reqs := workload.GeneralQA().Poisson(30, 20, 7)
	res, err := e.RunContinuous(reqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	grew, shrank := false, false
	for i := 1; i < len(res.RLPTrace); i++ {
		if res.RLPTrace[i] > res.RLPTrace[i-1] {
			grew = true
		}
		if res.RLPTrace[i] < res.RLPTrace[i-1] {
			shrank = true
		}
	}
	if !grew || !shrank {
		t.Fatalf("RLP should both grow and shrink under continuous batching (grew=%v shrank=%v)", grew, shrank)
	}
}

func TestContinuousIdleTime(t *testing.T) {
	// Requests far apart in time leave the system idle between them.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := []workload.Request{
		{ID: 0, InputLen: 32, OutputLen: 4, Arrival: 0},
		{ID: 1, InputLen: 32, OutputLen: 4, Arrival: units.Seconds(100)},
	}
	res, err := e.RunContinuous(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleTime <= units.Seconds(50) {
		t.Fatalf("idle time = %v, want most of the 100 s gap", res.IdleTime)
	}
	if res.TotalTime() < units.Seconds(100) {
		t.Fatalf("makespan %v shorter than last arrival", res.TotalTime())
	}
}

func TestContinuousValidation(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	if _, err := e.RunContinuous(nil, 4); err == nil {
		t.Fatal("empty stream should fail")
	}
	if _, err := e.RunContinuous(workload.GeneralQA().Generate(4, 1), 0); err == nil {
		t.Fatal("zero max batch should fail")
	}
}

func TestContinuousOversizedRequestErrors(t *testing.T) {
	// A single request whose KV exceeds the whole pool can never be admitted;
	// the engine must fail loudly instead of spinning.
	e := mustEngine(t, core.NewPAPI(0), model.GPT3_175B(), DefaultOptions(1))
	huge := []workload.Request{{ID: 0, InputLen: 200000, OutputLen: 200000}}
	_, err := e.RunContinuous(huge, 4)
	if err == nil || !strings.Contains(err.Error(), "KV footprint") {
		t.Fatalf("expected capacity error, got %v", err)
	}
}

func TestContinuousVsStaticThroughput(t *testing.T) {
	// With bursty arrivals, continuous batching keeps utilisation up; for a
	// ready batch its behaviour degrades to static batching.
	cfg := model.LLaMA65B()
	reqs := workload.GeneralQA().Generate(8, 11)
	cont := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	stat := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	rc, err := cont.RunContinuous(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stat.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rc.TotalTime()) / float64(rs.TotalTime())
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("ready-batch continuous/static = %.3f, want ≈1", ratio)
	}
}
