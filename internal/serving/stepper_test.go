package serving

import (
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// sumIterTokens adds up the per-iteration committed counts in the trace.
func sumIterTokens(res Result) int {
	sum := 0
	for _, it := range res.IterStats {
		sum += it.Tokens
	}
	return sum
}

func TestIterStatsTokensSumBatch(t *testing.T) {
	// Regression: IterationStat.Tokens used to stay 0 in both batch modes.
	// With fewer iterations than the trace cap, the per-iteration counts
	// must account for every generated token.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(4))
	res, err := e.RunBatch(fixedBatch(8, 64, 48))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterStats) != res.Iterations {
		t.Fatalf("trace has %d entries for %d iterations", len(res.IterStats), res.Iterations)
	}
	if got := sumIterTokens(res); got != res.Tokens || got == 0 {
		t.Fatalf("sum(IterStats.Tokens) = %d, want Result.Tokens = %d", got, res.Tokens)
	}
}

func TestIterStatsTokensSumContinuous(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	res, err := e.RunContinuous(workload.GeneralQA().Poisson(24, 50, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumIterTokens(res); got != res.Tokens || got == 0 {
		t.Fatalf("sum(IterStats.Tokens) = %d, want Result.Tokens = %d", got, res.Tokens)
	}
}

func TestBatchStepperMatchesRunBatch(t *testing.T) {
	// Driving the stepper by hand is the same computation as RunBatch.
	cfg := model.LLaMA65B()
	reqs := workload.CreativeWriting().Generate(8, 9)

	ref := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(4))
	want, err := ref.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}

	e := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(4))
	st, err := e.NewBatchStepper(reqs)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
		if info.Kind != StepIteration {
			t.Fatalf("static stepper produced step kind %v", info.Kind)
		}
		steps++
	}
	got := st.Finalize()
	if got.DecodeTime != want.DecodeTime || got.Tokens != want.Tokens ||
		got.Iterations != want.Iterations || got.Reschedules != want.Reschedules {
		t.Fatalf("stepper diverged from RunBatch:\n got %v/%d tokens/%d iters\nwant %v/%d tokens/%d iters",
			got.DecodeTime, got.Tokens, got.Iterations, want.DecodeTime, want.Tokens, want.Iterations)
	}
	// Macro-stepping may cover many iterations per Step (a TLP = 4 batch
	// finishes requests in bursts, ending each window), but never more
	// steps than iterations — and a whole batch never drains in one window,
	// since every finish closes it.
	if steps > want.Iterations || steps < 2 {
		t.Fatalf("stepper took %d steps for %d iterations", steps, want.Iterations)
	}
	if got.Energy.Total() != want.Energy.Total() {
		t.Fatalf("energy diverged: %v vs %v", got.Energy.Total(), want.Energy.Total())
	}
}

func TestStreamStepperMatchesRunContinuous(t *testing.T) {
	cfg := model.LLaMA65B()
	reqs := workload.GeneralQA().Poisson(24, 40, 7)

	ref := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	want, err := ref.RunContinuous(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}

	e := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	st, err := e.NewStreamStepper(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for {
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
	}
	got := st.Finalize()
	if got.DecodeTime != want.DecodeTime || got.Tokens != want.Tokens ||
		got.Iterations != want.Iterations || got.IdleTime != want.IdleTime {
		t.Fatalf("stepper diverged from RunContinuous:\n got %+v\nwant %+v", got.Iterations, want.Iterations)
	}
}

func TestStreamStepperPush(t *testing.T) {
	// Cluster-style use: an empty stream stepper fed by Push at arrival
	// instants, idling via AdvanceTo between them.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	st, err := e.NewStreamStepper(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasWork() {
		t.Fatal("fresh empty stepper should report no work")
	}
	if err := st.Push(workload.Request{ID: 0, InputLen: 32, OutputLen: 4}); err != nil {
		t.Fatal(err)
	}
	if st.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", st.Outstanding())
	}
	for st.HasWork() {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// A second request arrives well after the first finished.
	at := st.Now() + units.Seconds(2)
	if err := st.Push(workload.Request{ID: 1, InputLen: 32, OutputLen: 4, Arrival: at}); err != nil {
		t.Fatal(err)
	}
	st.AdvanceTo(at)
	for st.HasWork() {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := st.Finalize()
	if res.Tokens != 8 {
		t.Fatalf("tokens = %d, want 8", res.Tokens)
	}
	if res.IdleTime < units.Seconds(1.5) {
		t.Fatalf("idle time = %v, want ≈2 s gap accounted", res.IdleTime)
	}
	if len(res.Requests) != 2 {
		t.Fatalf("metrics for %d requests, want 2", len(res.Requests))
	}
	// The late request's latency is arrival-relative.
	if res.Requests[1].TTFT > units.Seconds(1) {
		t.Fatalf("pushed request TTFT %v should be arrival-relative", res.Requests[1].TTFT)
	}
}

func TestStepperMisuse(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	if _, err := e.NewStreamStepper(nil, 0); err == nil {
		t.Error("non-positive max batch should fail")
	}
	st, err := e.NewBatchStepper(fixedBatch(2, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(workload.Request{ID: 9, InputLen: 8, OutputLen: 2}); err == nil {
		t.Error("pushing into a static batch stepper should fail")
	}
	ss, err := e.NewStreamStepper(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Push(workload.Request{ID: 0, InputLen: 0, OutputLen: 2}); err == nil {
		t.Error("pushing a zero-length request should fail")
	}
}

func TestStepInfoFinishedReportsCompletions(t *testing.T) {
	// StepInfo.Finished is the completion hook closed-loop arrival owners
	// build on: every request must appear exactly once, in the step whose
	// Completed count it contributes to.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := workload.GeneralQA().Poisson(12, 50, 5)
	s, err := e.NewStreamStepper(reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		info, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
		if len(info.Finished) != info.Completed {
			t.Fatalf("step reports %d completed but lists %d finished", info.Completed, len(info.Finished))
		}
		for _, r := range info.Finished {
			if seen[r.ID] {
				t.Fatalf("request %d finished twice", r.ID)
			}
			seen[r.ID] = true
			if r.InputLen <= 0 || r.OutputLen <= 0 {
				t.Fatalf("finished request %d lost its lengths: %+v", r.ID, r)
			}
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("finished %d of %d requests", len(seen), len(reqs))
	}
}
