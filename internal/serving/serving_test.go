package serving

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/energy"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/sched"
	"github.com/papi-sim/papi/internal/workload"
)

// fixedBatch builds b uniform requests for deterministic comparisons.
func fixedBatch(b, in, out int) []workload.Request {
	reqs := make([]workload.Request, b)
	for i := range reqs {
		reqs[i] = workload.Request{ID: i, InputLen: in, OutputLen: out}
	}
	return reqs
}

func mustEngine(t *testing.T, sys *core.System, cfg model.Config, opt Options) *Engine {
	t.Helper()
	e, err := New(sys, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(core.NewPAPI(0), model.LLaMA65B(), Options{TLP: 0}); err == nil {
		t.Error("TLP 0 should fail")
	}
	if _, err := New(core.NewPAPI(0), model.LLaMA65B(), Options{TLP: 1, AcceptanceRate: 1.5}); err == nil {
		t.Error("acceptance > 1 should fail")
	}
	if _, err := New(core.NewPAPI(0), model.LLaMA65B(), Options{TLP: 1, DraftOverlap: 2}); err == nil {
		t.Error("overlap > 1 should fail")
	}
	bad := core.NewPAPI(0)
	bad.Policy = nil
	if _, err := New(bad, model.LLaMA65B(), DefaultOptions(1)); err == nil {
		t.Error("invalid system should fail")
	}
}

func TestRunBatchBasics(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	res, err := e.RunBatch(fixedBatch(4, 64, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 4*32 {
		t.Fatalf("tokens = %d, want 128", res.Tokens)
	}
	if res.Iterations != 32 {
		t.Fatalf("iterations = %d, want 32 (TLP=1, uniform outputs)", res.Iterations)
	}
	if res.PrefillTime <= 0 || res.DecodeTime <= 0 {
		t.Fatalf("times: prefill %v decode %v", res.PrefillTime, res.DecodeTime)
	}
	if got := res.Breakdown.Total(); math.Abs(float64(got-res.DecodeTime)) > 1e-9 {
		t.Fatalf("breakdown %v != decode time %v", got, res.DecodeTime)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if len(res.RLPTrace) != res.Iterations {
		t.Fatalf("RLP trace %d entries, want %d", len(res.RLPTrace), res.Iterations)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	if _, err := e.RunBatch(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, err := e.RunBatch([]workload.Request{{ID: 0, InputLen: 0, OutputLen: 5}}); err == nil {
		t.Fatal("zero input length should fail")
	}
}

func TestKVCapacityEnforced(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.GPT3_175B(), DefaultOptions(1))
	// 960 GiB pool / 9.66 GB per 2048-token request ⇒ a 256-deep batch of
	// 2048+2048 requests cannot fit.
	_, err := e.RunBatch(fixedBatch(256, 2048, 2048))
	if err == nil || !strings.Contains(err.Error(), "KV footprint") {
		t.Fatalf("expected KV capacity error, got %v", err)
	}
}

func TestRLPDecaysWithVariedOutputs(t *testing.T) {
	// Fig. 3: requests with different output lengths finish at different
	// iterations, so RLP decays monotonically under static batching.
	e := mustEngine(t, core.NewA100AttAcc(), model.LLaMA65B(), DefaultOptions(1))
	reqs := workload.CreativeWriting().Generate(16, 9)
	res, err := e.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RLPTrace[0] != 16 {
		t.Fatalf("initial RLP = %d", res.RLPTrace[0])
	}
	for i := 1; i < len(res.RLPTrace); i++ {
		if res.RLPTrace[i] > res.RLPTrace[i-1] {
			t.Fatal("RLP must not grow under static batching")
		}
	}
	last := res.RLPTrace[len(res.RLPTrace)-1]
	if last >= 16 {
		t.Fatalf("RLP never decayed: final %d", last)
	}
	// Per-request iteration counts differ (the Fig. 3 staircase).
	min, max := res.PerRequestIterations[0], res.PerRequestIterations[0]
	for _, it := range res.PerRequestIterations {
		if it < min {
			min = it
		}
		if it > max {
			max = it
		}
	}
	if min == max {
		t.Fatal("all requests took identical iterations; no RLP dynamics")
	}
}

func TestSpeculationReducesIterations(t *testing.T) {
	sys := core.NewA100AttAcc()
	out := 128
	plain := mustEngine(t, sys, model.GPT3_66B(), DefaultOptions(1))
	spec := mustEngine(t, sys, model.GPT3_66B(), DefaultOptions(4))
	rp, err := plain.RunBatch(fixedBatch(4, 64, out))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := spec.RunBatch(fixedBatch(4, 64, out))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Iterations >= rp.Iterations {
		t.Fatalf("speculation should cut iterations: %d vs %d", rs.Iterations, rp.Iterations)
	}
	// Expected committed per iteration at β=0.8, TLP=4 is ≈2.95.
	perIter := float64(rs.Tokens) / float64(rs.Iterations) / 4
	if perIter < 2.2 || perIter > 3.7 {
		t.Fatalf("committed/iteration/request = %.2f, want ≈2.95", perIter)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(4))
		res, err := e.RunBatch(fixedBatch(8, 64, 64))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DecodeTime != b.DecodeTime || a.Iterations != b.Iterations || a.Tokens != b.Tokens {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Iterations, b.Iterations)
	}
}

func TestPAPIReschedulesOnRLPDecay(t *testing.T) {
	// Start above α (batch 32 ⇒ AI estimate 32 > 24): FC on the PUs. As
	// requests finish, RLP falls below α and PAPI reschedules FC to FC-PIM —
	// the Fig. 5(d) behaviour.
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	reqs := workload.CreativeWriting().Generate(32, 4)
	res, err := e.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reschedules == 0 {
		t.Fatal("PAPI should reschedule as RLP decays across α")
	}
	sawPU, sawPIM := false, false
	for _, it := range res.IterStats {
		if it.Placement == sched.PlacePU {
			sawPU = true
		} else {
			sawPIM = true
		}
	}
	if !sawPU || !sawPIM {
		t.Fatalf("expected both placements in trace: PU=%v PIM=%v", sawPU, sawPIM)
	}
}

func TestStaticBaselinesNeverReschedule(t *testing.T) {
	for _, sys := range []*core.System{core.NewA100AttAcc(), core.NewAttAccOnly()} {
		e := mustEngine(t, sys, model.LLaMA65B(), DefaultOptions(1))
		res, err := e.RunBatch(workload.CreativeWriting().Generate(32, 4))
		if err != nil {
			t.Fatal(err)
		}
		if res.Reschedules != 0 {
			t.Errorf("%s rescheduled %d times; static policies must not", sys.Name, res.Reschedules)
		}
	}
}

func TestPAPIBeatsBaselineAtLowParallelism(t *testing.T) {
	// Batch 4, spec 1 (AI estimate 4 ≪ α): PAPI runs FC on FC-PIM and must
	// clearly beat A100+AttAcc, which streams all weights through the GPU.
	cfg := model.LLaMA65B()
	reqs := fixedBatch(4, 64, 32)
	papi := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	base := mustEngine(t, core.NewA100AttAcc(), cfg, DefaultOptions(1))
	rp, err := papi.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(rb.TotalTime()) / float64(rp.TotalTime())
	if speedup < 1.5 {
		t.Fatalf("PAPI speedup at (4,1) = %.2f, want > 1.5", speedup)
	}
}

func TestPAPIConvergesToBaselineAtHighParallelism(t *testing.T) {
	// §7.3: at high TLP/RLP PAPI assigns FC to the GPU and converges to
	// A100+AttAcc (modulo the attention-device difference).
	cfg := model.LLaMA65B()
	reqs := fixedBatch(64, 64, 32)
	papi := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(4))
	base := mustEngine(t, core.NewA100AttAcc(), cfg, DefaultOptions(4))
	rp, _ := papi.RunBatch(reqs)
	rb, _ := base.RunBatch(reqs)
	ratio := float64(rb.TotalTime()) / float64(rp.TotalTime())
	if ratio < 0.85 || ratio > 1.3 {
		t.Fatalf("PAPI/baseline at (64,4) = %.2f, want ≈1", ratio)
	}
}

func TestAttAccOnlyPaysForPrefill(t *testing.T) {
	// §7.4: prefill is compute-bound; on AttAcc-only it runs on PIM and is
	// dramatically slower than on the GPU designs.
	cfg := model.LLaMA65B()
	reqs := fixedBatch(16, 256, 16)
	pimOnly := mustEngine(t, core.NewAttAccOnly(), cfg, DefaultOptions(1))
	hetero := mustEngine(t, core.NewA100AttAcc(), cfg, DefaultOptions(1))
	rp, _ := pimOnly.RunBatch(reqs)
	rh, _ := hetero.RunBatch(reqs)
	if float64(rp.PrefillTime) < 5*float64(rh.PrefillTime) {
		t.Fatalf("AttAcc-only prefill %v should be ≫ GPU prefill %v", rp.PrefillTime, rh.PrefillTime)
	}
}

func TestEnergyComponentsMatchDesign(t *testing.T) {
	cfg := model.LLaMA65B()
	reqs := fixedBatch(4, 64, 16)

	papi := mustEngine(t, core.NewPAPI(0), cfg, DefaultOptions(1))
	rp, _ := papi.RunBatch(reqs)
	if rp.Energy.Get(energy.FCPIM) <= 0 {
		t.Error("PAPI at batch 4 should charge FC-PIM energy")
	}
	if rp.Energy.Get(energy.GPUIdle) <= 0 {
		t.Error("PAPI at batch 4 should charge GPU idle energy")
	}

	base := mustEngine(t, core.NewA100AttAcc(), cfg, DefaultOptions(1))
	rb, _ := base.RunBatch(reqs)
	if rb.Energy.Get(energy.FCPIM) != 0 {
		t.Error("A100+AttAcc has no FC-PIM to charge")
	}
	if rb.Energy.Get(energy.GPUActive) <= 0 {
		t.Error("A100+AttAcc must charge GPU active energy")
	}

	ao := mustEngine(t, core.NewAttAccOnly(), cfg, DefaultOptions(1))
	ra, _ := ao.RunBatch(reqs)
	if ra.Energy.Get(energy.GPUActive) != 0 || ra.Energy.Get(energy.GPUIdle) != 0 {
		t.Error("AttAcc-only has no GPU energy")
	}
}

func TestThrottleReported(t *testing.T) {
	// AttAcc's 1P1B devices exceed the power budget on FC with no reuse;
	// the governor throttles and the result must say so.
	e := mustEngine(t, core.NewAttAccOnly(), model.LLaMA65B(), DefaultOptions(1))
	res, err := e.RunBatch(fixedBatch(1, 32, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Throttled {
		t.Fatal("AttAcc-only at batch 1 should report power throttling")
	}
}

func TestTimePerToken(t *testing.T) {
	e := mustEngine(t, core.NewPAPI(0), model.LLaMA65B(), DefaultOptions(1))
	res, _ := e.RunBatch(fixedBatch(4, 64, 32))
	want := float64(res.DecodeTime) / float64(res.Tokens)
	if math.Abs(float64(res.TimePerToken())-want) > 1e-15 {
		t.Fatalf("per-token = %v", res.TimePerToken())
	}
	var empty Result
	if empty.TimePerToken() != 0 {
		t.Fatal("empty result per-token should be 0")
	}
}

// Property: total tokens always equals the sum of requested output lengths
// (commit clamping is exact), for any acceptance rate and TLP.
func TestTokenConservationProperty(t *testing.T) {
	sys := core.NewPAPI(0)
	cfg := model.LLaMA65B()
	f := func(tlpRaw, accRaw, outRaw uint8, seed int64) bool {
		opt := DefaultOptions(int(tlpRaw)%6 + 1)
		opt.AcceptanceRate = float64(accRaw) / 255
		opt.Seed = seed
		e, err := New(sys, cfg, opt)
		if err != nil {
			return false
		}
		out := int(outRaw)%40 + 1
		res, err := e.RunBatch(fixedBatch(3, 16, out))
		if err != nil {
			return false
		}
		return res.Tokens == 3*out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
