package serving

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/pim"
	"github.com/papi-sim/papi/internal/units"
)

// FastPathMode selects between the memoized fast path through the decode
// loop (incremental KV accounting, kernel-cost memoization, macro-stepping)
// and the reference path that re-derives and re-prices every kernel each
// iteration. Both paths produce bit-identical Results — the fast path's
// invariant, pinned by the equivalence tests in fastpath_test.go — so the
// reference path exists as the oracle (`papibench -fastpath=off`).
type FastPathMode int

// Fast-path modes.
const (
	// FastPathAuto follows the package default (on, unless
	// SetDefaultFastPath flipped it).
	FastPathAuto FastPathMode = iota
	// FastPathOn forces the fast path for this engine.
	FastPathOn
	// FastPathOff forces the reference path for this engine.
	FastPathOff
)

// fastPathDefault holds the package-wide default: 0 = on, 1 = off. Atomic so
// parallel sweep workers constructing engines never race with a flag parse.
var fastPathDefault atomic.Int32

// SetDefaultFastPath sets the package-wide default fast-path switch, which
// engines built with FastPathAuto follow (cmd/papibench's -fastpath flag).
func SetDefaultFastPath(on bool) {
	if on {
		fastPathDefault.Store(0)
	} else {
		fastPathDefault.Store(1)
	}
}

// DefaultFastPath reports the package-wide default fast-path switch.
func DefaultFastPath() bool { return fastPathDefault.Load() == 0 }

// enabled resolves the mode against the package default.
func (m FastPathMode) enabled() bool {
	switch m {
	case FastPathOn:
		return true
	case FastPathOff:
		return false
	}
	return DefaultFastPath()
}

// fcCost is one memoized FC-phase pricing: the full phase time (kernel
// execution, per-layer launch overheads and — for the FC-PIM placement —
// the activation hops across the PU fabric) plus the energy to charge per
// iteration. Pricing is a pure function of the token count n, the system and
// the model, so caching it is exact.
type fcCost struct {
	valid bool
	// time is the FC phase's critical-path contribution.
	time units.Seconds
	// energy is the executing pool's draw (GPUActive or FCPIM).
	energy units.Joules
	// linkEnergy is the PU-fabric transfer energy (FC-PIM placement only).
	linkEnergy units.Joules
	// throttled reports whether the PIM power governor stretched execution.
	throttled bool
}

// draftPrice is the memoized draft-model invocation: one unbatched FC
// iteration of the draft model on whichever pool runs it. The visible
// (overlap-discounted) time is derived per call — it depends only on this
// plus the engine's TLP and DraftOverlap.
type draftPrice struct {
	valid  bool
	per    units.Seconds
	energy units.Joules
	onGPU  bool
}

// attnCost is one priced attention phase: the attention-pool execution time
// (including per-layer kernel overheads), its energy, the throttle flag, and
// the per-iteration Q/K/V + context traffic on the attention fabric. It is a
// pure function of (TLP, ΣkvLen, RLP) — the incremental key of
// model.AttentionKernelSum — which is what makes memoizing it exact.
type attnCost struct {
	time       units.Seconds
	energy     units.Joules
	throttled  bool
	commTime   units.Seconds
	commEnergy units.Joules
}

// CostTable memoizes kernel pricings for one (system design, model, draft
// model) combination. Sharing one table across engines — the replicas of a
// cluster, the rate cells of a capacity sweep — prices each (placement, n)
// kernel once per process instead of once per iteration per cell. The table
// is safe for concurrent use; binding it to a second distinct combination is
// an error, caught at engine construction.
type CostTable struct {
	mu    sync.Mutex
	bound string
	pu    []fcCost
	pim   []fcCost
	draft draftPrice
}

// NewCostTable returns an empty, unbound cost table.
func NewCostTable() *CostTable { return &CostTable{} }

// bind ties the table to its pricing domain on first use and rejects reuse
// across a different combination, which would serve wrong prices silently.
// The key fingerprints every value the memoized prices depend on — the GPU
// pool, the FC-PIM pool, the PU fabric, and the target and draft model
// shapes — so two same-named systems with different hardware parameters are
// still told apart.
func (t *CostTable) bind(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bound == "" {
		t.bound = key
		return nil
	}
	if t.bound != key {
		return fmt.Errorf("serving: cost table already bound to a different system/model combination")
	}
	return nil
}

// costFingerprint renders the pricing-relevant configuration — the exact
// fields fcPricePU, fcPricePIM and draftPriceFresh read: the target and
// draft kernel shapes, the GPU pool, the FC-PIM pool's rates, datapath
// flags, energy model and governor, and the PU fabric. Hand-rolled with
// strconv (no fmt varargs boxing) because it runs once per engine and
// sweeps build engines by the dozen.
//
//papivet:allow unitsafety — the fingerprint serializes raw base-unit coefficients for cache identity; strconv.AppendFloat needs the bare float64s
func costFingerprint(sys *core.System, cfg, draft model.Config) string {
	b := make([]byte, 0, 256)
	num := func(f float64) {
		b = strconv.AppendFloat(b, f, 'g', -1, 64)
		b = append(b, '/')
	}
	txt := func(s string) {
		b = append(b, s...)
		b = append(b, '/')
	}
	shape := func(c model.Config) {
		txt(c.Name)
		num(float64(c.Hidden))
		num(float64(c.Layers))
		num(float64(c.FFNDim))
		num(float64(c.FFNMatrices))
	}
	shape(cfg)
	shape(draft)
	if sys.GPU != nil {
		s := sys.GPU.Spec
		txt("gpu")
		num(float64(sys.GPU.Count))
		num(float64(s.PeakCompute))
		num(float64(s.PeakMemBW))
		num(s.ComputeEff)
		num(s.MemoryEff)
		num(float64(s.ActivePower))
		num(float64(s.LaunchLatency))
	}
	if sys.FCPIM != nil {
		d := sys.FCPIM
		txt("fcpim")
		num(float64(d.Count))
		num(float64(d.Stack.ComputeRate()))
		num(float64(d.Stack.StreamBW()))
		num(d.FCComputeEff)
		b = strconv.AppendBool(b, d.FCWeightReuse)
		b = strconv.AppendBool(b, d.Governor)
		num(d.BudgetW)
		num(d.Energy.DRAMAccessPJB)
		num(d.Energy.TransferPJB)
		num(d.Energy.ComputePJB)
		num(float64(d.Energy.StaticW))
		num(float64(d.KernelOverhead))
	}
	l := sys.PULink
	txt(l.Name)
	num(float64(l.Latency))
	num(float64(l.BW))
	num(l.PJB)
	return string(b)
}

// memoFC returns slot n of an fcCost slice, growing the slice and filling
// the slot from miss on first demand. It serves both cache levels: the
// shared table (under its lock — pricing is pure and cheap, and holding the
// lock means concurrent engines never price the same n twice) and each
// engine's lock-free first-level cache.
func memoFC(costs *[]fcCost, n int, miss func(int) fcCost) fcCost {
	if n < len(*costs) && (*costs)[n].valid {
		return (*costs)[n]
	}
	c := miss(n)
	if n >= len(*costs) {
		grown := make([]fcCost, n+1+n/2)
		copy(grown, *costs)
		*costs = grown
	}
	(*costs)[n] = c
	return c
}

// fcPU returns the memoized GPU pricing for n tokens in flight.
func (t *CostTable) fcPU(n int, compute func(int) fcCost) fcCost {
	t.mu.Lock()
	defer t.mu.Unlock()
	return memoFC(&t.pu, n, compute)
}

// fcPIM returns the memoized FC-PIM pricing for n tokens in flight.
func (t *CostTable) fcPIM(n int, compute func(int) fcCost) fcCost {
	t.mu.Lock()
	defer t.mu.Unlock()
	return memoFC(&t.pim, n, compute)
}

// draftCost returns the memoized draft-model pricing.
func (t *CostTable) draftCost(compute func() draftPrice) draftPrice {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.draft.valid {
		t.draft = compute()
	}
	return t.draft
}

// Pricing primitives ---------------------------------------------------------
//
// These compute the FC-phase and draft costs from scratch with exactly the
// arithmetic the reference decode loop has always used. The reference path
// calls them fresh every iteration; the fast path serves their results from
// the cost tables. Purity makes the two bit-identical.

// fcPricePU prices the FC phase of one decoding iteration with n tokens in
// flight on the GPU pool: one roofline execution plus the remaining launch
// latencies (three FC kernel launches per layer; Execute charged one).
func (e *Engine) fcPricePU(n int) fcCost {
	fcK := e.Cfg.FCIterationKernel(n)
	layers := float64(e.Cfg.Layers)
	g := e.Sys.GPU.Execute(fcK.Flops, fcK.WeightBytes+fcK.ActivationBytes)
	return fcCost{
		valid:  true,
		time:   g.Time + e.Sys.GPU.Spec.LaunchLatency.Scale(3*layers-1),
		energy: g.Energy,
	}
}

// fcPricePIM prices the FC phase on the FC-PIM pool: kernel execution, the
// remaining per-layer kernel overheads, and the activation traffic crossing
// the PU fabric to reach the FC-PIM stacks.
func (e *Engine) fcPricePIM(n int) fcCost {
	fcK := e.Cfg.FCIterationKernel(n)
	layers := float64(e.Cfg.Layers)
	p := e.Sys.FCPIM.Execute(pim.Kernel{Name: "fc", Class: pim.ClassFC, Flops: fcK.Flops, UniqueBytes: fcK.WeightBytes}, 0)
	c := fcCost{
		valid:     true,
		time:      p.Time + e.Sys.FCPIM.KernelOverhead.Scale(3*layers-1),
		energy:    p.Energy.Total(),
		throttled: p.Throttled,
	}
	tr := e.Sys.PULink.Send(units.Bytes(fcK.ActivationBytes.Bytes() / layers))
	c.time += tr.Time.Scale(layers)
	c.linkEnergy = tr.Energy.Scale(layers)
	return c
}

// attnAllLayers scales the per-layer attention kernel to the whole model and
// caps the participating devices (one PIM device per head per request, up to
// the pool).
func (e *Engine) attnAllLayers(attnLayer model.Kernel, rlp int) (pim.Kernel, int) {
	layers := float64(e.Cfg.Layers)
	attnAll := pim.Kernel{
		Name:        "attention",
		Class:       pim.ClassAttention,
		Flops:       attnLayer.Flops.Scale(layers),
		UniqueBytes: attnLayer.KVBytes.Scale(layers),
	}
	activeDev := rlp * e.Cfg.Heads
	if activeDev > e.Sys.AttnPIM.Count {
		activeDev = e.Sys.AttnPIM.Count
	}
	return attnAll, activeDev
}

// attnPriceFresh prices the attention phase from its per-layer kernel: the
// disaggregated-pool execution plus, per layer, the Q/K/V vectors to the
// attention devices and the context back (§6.3's byte-level traffic).
func (e *Engine) attnPriceFresh(attnLayer model.Kernel, rlp int) attnCost {
	layers := float64(e.Cfg.Layers)
	attnAll, activeDev := e.attnAllLayers(attnLayer, rlp)
	a := e.Sys.AttnPIM.Execute(attnAll, activeDev)
	tr := e.Sys.AttnLink.Send(attnLayer.ActivationBytes)
	return attnCost{
		time:       a.Time + e.Sys.AttnPIM.KernelOverhead.Scale(layers-1),
		energy:     a.Energy.Total(),
		throttled:  a.Throttled,
		commTime:   tr.Time.Scale(layers),
		commEnergy: tr.Energy.Scale(layers),
	}
}

// draftPriceFresh prices one draft-model FC iteration (§2.2.2) on whichever
// pool runs it.
func (e *Engine) draftPriceFresh() draftPrice {
	k := e.draft.FCIterationKernel(1)
	if e.Sys.HasGPU() {
		g := e.Sys.GPU.Execute(k.Flops, k.WeightBytes)
		return draftPrice{valid: true, per: g.Time, energy: g.Energy, onGPU: true}
	}
	p := e.Sys.FCPIM.Execute(pim.Kernel{Name: "draft", Class: pim.ClassFC, Flops: k.Flops, UniqueBytes: k.WeightBytes}, 0)
	return draftPrice{valid: true, per: p.Time, energy: p.Energy.Total()}
}

// Engine-local caches --------------------------------------------------------
//
// Each engine keeps an unlocked first-level cache in front of the shared
// table: steady-state iterations hit it without synchronisation, and only a
// new parallelism level reaches the locked table.

// fcCostPU returns the (memoized) GPU FC pricing for n.
func (e *Engine) fcCostPU(n int) fcCost {
	return memoFC(&e.puCache, n, func(n int) fcCost { return e.costs.fcPU(n, e.fcPricePU) })
}

// fcCostPIM returns the (memoized) FC-PIM pricing for n.
func (e *Engine) fcCostPIM(n int) fcCost {
	return memoFC(&e.pimCache, n, func(n int) fcCost { return e.costs.fcPIM(n, e.fcPricePIM) })
}

// draftMemoized returns the (memoized) draft-model pricing.
func (e *Engine) draftMemoized() draftPrice {
	if !e.draftCache.valid {
		e.draftCache = e.costs.draftCost(e.draftPriceFresh)
	}
	return e.draftCache
}
