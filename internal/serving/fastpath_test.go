package serving

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/workload"
)

// The fast path's contract is bit-for-bit equivalence: memoized cost tables,
// incremental KV accounting and macro-stepping must reproduce the reference
// decode loop's full Result — times, energy ledger, traces, per-request
// metrics — exactly, for every evaluated system, both batching modes, and
// both the deterministic (TLP = 1) and speculative (TLP = 4) regimes.

// fastpathSystems returns every evaluated design (Fig. 8's four plus the
// §7.4 PIM-only PAPI variant).
func fastpathSystems() map[string]func() *core.System {
	return map[string]func() *core.System{
		"PAPI":          func() *core.System { return core.NewPAPI(0) },
		"A100+AttAcc":   core.NewA100AttAcc,
		"A100+HBM-PIM":  core.NewA100HBMPIM,
		"AttAcc-only":   core.NewAttAccOnly,
		"PIM-only PAPI": core.NewPIMOnlyPAPI,
	}
}

func runBoth(t *testing.T, newSys func() *core.System, tlp int,
	drive func(e *Engine) (Result, error)) (fast, ref Result) {
	t.Helper()
	for _, mode := range []FastPathMode{FastPathOn, FastPathOff} {
		opt := DefaultOptions(tlp)
		opt.FastPath = mode
		eng, err := New(newSys(), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := drive(eng)
		if err != nil {
			t.Fatal(err)
		}
		if mode == FastPathOn {
			fast = res
		} else {
			ref = res
		}
	}
	return fast, ref
}

func TestFastPathEquivalenceStatic(t *testing.T) {
	reqs := workload.GeneralQA().Generate(12, 7)
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			fast, ref := runBoth(t, newSys, tlp, func(e *Engine) (Result, error) {
				return e.RunBatch(reqs)
			})
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s static TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
					name, tlp, fast, ref)
			}
		}
	}
}

func TestFastPathEquivalenceStream(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(16, 25, 11)
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			fast, ref := runBoth(t, newSys, tlp, func(e *Engine) (Result, error) {
				return e.RunContinuous(reqs, 6)
			})
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s stream TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
					name, tlp, fast, ref)
			}
		}
	}
}

// TestFastPathEquivalenceSharedTable runs the fast path twice against one
// shared CostTable (warming it on the first run) and pins that a warm table
// changes nothing — the memoized prices equal the freshly computed ones.
func TestFastPathEquivalenceSharedTable(t *testing.T) {
	reqs := workload.CreativeWriting().Poisson(12, 40, 3)
	table := NewCostTable()
	var runs [2]Result
	for i := range runs {
		opt := DefaultOptions(1)
		opt.FastPath = FastPathOn
		opt.Costs = table
		eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		runs[i], err = eng.RunContinuous(reqs, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("warm cost table changed the result")
	}
}

// TestCostTableRejectsRebinding pins the guard against silently serving one
// system's prices to another.
func TestCostTableRejectsRebinding(t *testing.T) {
	table := NewCostTable()
	opt := DefaultOptions(1)
	opt.Costs = table
	if _, err := New(core.NewPAPI(0), model.OPT30B(), opt); err != nil {
		t.Fatal(err)
	}
	if _, err := New(core.NewA100AttAcc(), model.OPT30B(), opt); err == nil {
		t.Fatal("cost table accepted a second system design")
	}
	if _, err := New(core.NewPAPI(0), model.LLaMA65B(), opt); err == nil {
		t.Fatal("cost table accepted a second model")
	}
}

// TestStepAllocations is the allocation regression test on Stepper.Step: a
// macro-stepped static drain must average well under one allocation per
// committed token, and at least 10× fewer than the reference path on the
// same workload.
func TestStepAllocations(t *testing.T) {
	reqs := workload.CreativeWriting().Generate(16, 1)
	measure := func(mode FastPathMode) float64 {
		opt := DefaultOptions(1)
		opt.FastPath = mode
		eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			st, err := eng.NewBatchStepper(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for {
				info, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				if info.Kind == StepDrained {
					break
				}
			}
			st.Finalize()
		})
	}
	fast := measure(FastPathOn)
	ref := measure(FastPathOff)
	// The whole drained run — thousands of iterations — must stay within a
	// fixed allocation budget: traces, tracker entries and stepper setup,
	// nothing per-iteration.
	const budget = 120
	if fast > budget {
		t.Errorf("fast-path drain allocated %.0f times, want ≤ %d", fast, budget)
	}
	if ref < 10*fast {
		t.Errorf("allocation regression: reference %.0f, fast %.0f — want ≥ 10× reduction", ref, fast)
	}
}

// TestKVDemandIncremental pins the O(1) KVDemand against a fresh walk over
// the outstanding requests as the batch admits, decodes and drains.
func TestKVDemandIncremental(t *testing.T) {
	opt := DefaultOptions(1)
	eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.NewStreamStepper(workload.GeneralQA().Poisson(10, 50, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(workload.Request{ID: 99, InputLen: 64, OutputLen: 32, Arrival: 0.01}); err != nil {
		t.Fatal(err)
	}
	walk := func() float64 {
		var need float64
		for _, r := range st.active {
			need += float64(eng.Cfg.KVBytes(r.SeqLen()))
		}
		for _, r := range st.pending {
			need += float64(eng.Cfg.KVBytes(r.SeqLen()))
		}
		return need
	}
	for i := 0; ; i++ {
		if got, want := float64(st.KVDemand()), walk(); got != want {
			t.Fatalf("step %d: KVDemand = %v, walk = %v", i, got, want)
		}
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
	}
	if st.KVDemand() != 0 {
		t.Fatalf("drained stepper reports KV demand %v", st.KVDemand())
	}
}
