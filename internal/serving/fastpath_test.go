package serving

import (
	"reflect"
	"testing"

	"github.com/papi-sim/papi/internal/core"
	"github.com/papi-sim/papi/internal/model"
	"github.com/papi-sim/papi/internal/units"
	"github.com/papi-sim/papi/internal/workload"
)

// The fast path's contract is bit-for-bit equivalence: memoized cost tables,
// incremental KV accounting and macro-stepping must reproduce the reference
// decode loop's full Result — times, energy ledger, traces, per-request
// metrics — exactly, for every evaluated system, both batching modes, and
// both the deterministic (TLP = 1) and speculative (TLP = 4) regimes.

// fastpathSystems returns every evaluated design (Fig. 8's four plus the
// §7.4 PIM-only PAPI variant).
func fastpathSystems() map[string]func() *core.System {
	return map[string]func() *core.System{
		"PAPI":          func() *core.System { return core.NewPAPI(0) },
		"A100+AttAcc":   core.NewA100AttAcc,
		"A100+HBM-PIM":  core.NewA100HBMPIM,
		"AttAcc-only":   core.NewAttAccOnly,
		"PIM-only PAPI": core.NewPIMOnlyPAPI,
	}
}

func runBoth(t *testing.T, newSys func() *core.System, tlp int,
	drive func(e *Engine) (Result, error)) (fast, ref Result) {
	t.Helper()
	for _, mode := range []FastPathMode{FastPathOn, FastPathOff} {
		opt := DefaultOptions(tlp)
		opt.FastPath = mode
		eng, err := New(newSys(), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := drive(eng)
		if err != nil {
			t.Fatal(err)
		}
		if mode == FastPathOn {
			fast = res
		} else {
			ref = res
		}
	}
	return fast, ref
}

func TestFastPathEquivalenceStatic(t *testing.T) {
	reqs := workload.GeneralQA().Generate(12, 7)
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			fast, ref := runBoth(t, newSys, tlp, func(e *Engine) (Result, error) {
				return e.RunBatch(reqs)
			})
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s static TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
					name, tlp, fast, ref)
			}
		}
	}
}

func TestFastPathEquivalenceStream(t *testing.T) {
	reqs := workload.GeneralQA().Poisson(16, 25, 11)
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			fast, ref := runBoth(t, newSys, tlp, func(e *Engine) (Result, error) {
				return e.RunContinuous(reqs, 6)
			})
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s stream TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
					name, tlp, fast, ref)
			}
		}
	}
}

// TestFastPathEquivalenceTiered pins the PR 10 coverage extension: tiered
// streams (both priority classes outstanding, with real preemption churn)
// macro-step on both the deterministic and speculative regimes and must
// still reproduce the reference path exactly. The preemption guard makes
// the pin non-vacuous — the stream is tuned so interactive admissions
// actually evict batch requests.
func TestFastPathEquivalenceTiered(t *testing.T) {
	// Mixed-class streams across every evaluated design and both regimes.
	reqs := workload.AssignClasses(workload.GeneralQA().Poisson(32, 60, 13), 0.5, 17)
	for name, newSys := range fastpathSystems() {
		for _, tlp := range []int{1, 4} {
			fast, ref := runBoth(t, newSys, tlp, func(e *Engine) (Result, error) {
				return e.RunContinuous(reqs, 4)
			})
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s tiered TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
					name, tlp, fast, ref)
			}
		}
	}

	// Preemption churn: a KV pool saturated with batch-class long-context
	// work (the TestStepperInvariantsUnderPreemption shape) forces
	// interactive admissions to evict, so the window bound's preemption
	// trigger is exercised for real on both regimes.
	var saturated []workload.Request
	for i := 0; i < 60; i++ {
		saturated = append(saturated, workload.Request{ID: i, InputLen: 2048, OutputLen: 2048,
			Class: workload.ClassBatch})
	}
	for i := 0; i < 12; i++ {
		saturated = append(saturated, workload.Request{ID: 60 + i, InputLen: 2048, OutputLen: 64,
			Arrival: units.Seconds(0.5 + 0.5*float64(i)), Class: workload.ClassInteractive})
	}
	for _, tlp := range []int{1, 4} {
		var fast, ref Result
		for _, mode := range []FastPathMode{FastPathOn, FastPathOff} {
			opt := DefaultOptions(tlp)
			opt.FastPath = mode
			eng, err := New(core.NewPAPI(0), model.GPT3_175B(), opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunContinuous(saturated, 96)
			if err != nil {
				t.Fatal(err)
			}
			if mode == FastPathOn {
				fast = res
			} else {
				ref = res
			}
		}
		if fast.Preemptions == 0 {
			t.Errorf("TLP=%d: saturated tiered stream triggered no preemptions — the pin is vacuous", tlp)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("preemptive tiered TLP=%d: fast path diverged from reference\n fast: %+v\n  ref: %+v",
				tlp, fast, ref)
		}
	}
}

// FuzzMacroEquivalence searches the macro-window configuration space — TLP
// 1–4, randomized class mixes, admission caps, arrival rates, and caller
// horizon schedules (the cluster driver's SetHorizon cadence) — for an
// input that splits the fast path from the reference. Horizons only bound
// fast-path windows, so both paths are driven with the identical schedule
// and must agree bit-for-bit anyway.
func FuzzMacroEquivalence(f *testing.F) {
	f.Add(int64(3), byte(0), byte(2), byte(3), byte(12), false)
	f.Add(int64(11), byte(3), byte(1), byte(0), byte(40), false)
	f.Add(int64(29), byte(1), byte(4), byte(6), byte(3), true)
	f.Add(int64(101), byte(2), byte(3), byte(2), byte(0), false)
	f.Fuzz(func(t *testing.T, seed int64, tlpPick, classPick, batchPick, horizPick byte, static bool) {
		if seed < 0 {
			seed = -seed
		}
		tlp := 1 + int(tlpPick)%4
		batchFrac := float64(classPick%5) * 0.25
		maxBatch := 2 + int(batchPick)%8
		n := 8 + int(seed%25)
		rate := 20 + float64(seed%61)
		var reqs []workload.Request
		if static {
			reqs = workload.GeneralQA().Generate(n, seed)
		} else {
			reqs = workload.GeneralQA().Poisson(n, rate, seed)
		}
		reqs = workload.AssignClasses(reqs, batchFrac, seed+1)
		// 0 disables the horizon schedule; otherwise the caller re-arms a
		// fresh bound every delta seconds, like the cluster kernel would.
		delta := units.Seconds(float64(horizPick%50) * 1e-3)

		run := func(mode FastPathMode) Result {
			opt := DefaultOptions(tlp)
			opt.Seed = seed
			opt.FastPath = mode
			eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
			if err != nil {
				t.Fatal(err)
			}
			var st *Stepper
			if static {
				st, err = eng.NewBatchStepper(reqs)
			} else {
				st, err = eng.NewStreamStepper(reqs, maxBatch)
			}
			if err != nil {
				t.Fatal(err)
			}
			horizon := delta
			for {
				if delta > 0 {
					for st.Now() >= horizon {
						horizon += delta
					}
					st.SetHorizon(horizon)
				}
				info, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				if info.Kind == StepDrained {
					break
				}
			}
			return st.Finalize()
		}
		fast, ref := run(FastPathOn), run(FastPathOff)
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("macro window diverged (seed=%d tlp=%d frac=%.2f maxBatch=%d delta=%v static=%v)\n fast: %+v\n  ref: %+v",
				seed, tlp, batchFrac, maxBatch, delta, static, fast, ref)
		}
	})
}

// TestFastPathEquivalenceSharedTable runs the fast path twice against one
// shared CostTable (warming it on the first run) and pins that a warm table
// changes nothing — the memoized prices equal the freshly computed ones.
func TestFastPathEquivalenceSharedTable(t *testing.T) {
	reqs := workload.CreativeWriting().Poisson(12, 40, 3)
	table := NewCostTable()
	var runs [2]Result
	for i := range runs {
		opt := DefaultOptions(1)
		opt.FastPath = FastPathOn
		opt.Costs = table
		eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		runs[i], err = eng.RunContinuous(reqs, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("warm cost table changed the result")
	}
}

// TestCostTableRejectsRebinding pins the guard against silently serving one
// system's prices to another.
func TestCostTableRejectsRebinding(t *testing.T) {
	table := NewCostTable()
	opt := DefaultOptions(1)
	opt.Costs = table
	if _, err := New(core.NewPAPI(0), model.OPT30B(), opt); err != nil {
		t.Fatal(err)
	}
	if _, err := New(core.NewA100AttAcc(), model.OPT30B(), opt); err == nil {
		t.Fatal("cost table accepted a second system design")
	}
	if _, err := New(core.NewPAPI(0), model.LLaMA65B(), opt); err == nil {
		t.Fatal("cost table accepted a second model")
	}
}

// TestStepAllocations is the allocation regression test on Stepper.Step: a
// macro-stepped static drain must average well under one allocation per
// committed token, and at least 10× fewer than the reference path on the
// same workload.
func TestStepAllocations(t *testing.T) {
	reqs := workload.CreativeWriting().Generate(16, 1)
	measure := func(mode FastPathMode) float64 {
		opt := DefaultOptions(1)
		opt.FastPath = mode
		eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			st, err := eng.NewBatchStepper(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for {
				info, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				if info.Kind == StepDrained {
					break
				}
			}
			st.Finalize()
		})
	}
	fast := measure(FastPathOn)
	ref := measure(FastPathOff)
	// The whole drained run — thousands of iterations — must stay within a
	// fixed allocation budget: traces, tracker entries and stepper setup,
	// nothing per-iteration.
	const budget = 120
	if fast > budget {
		t.Errorf("fast-path drain allocated %.0f times, want ≤ %d", fast, budget)
	}
	if ref < 10*fast {
		t.Errorf("allocation regression: reference %.0f, fast %.0f — want ≥ 10× reduction", ref, fast)
	}
}

// TestKVDemandIncremental pins the O(1) KVDemand against a fresh walk over
// the outstanding requests as the batch admits, decodes and drains.
func TestKVDemandIncremental(t *testing.T) {
	opt := DefaultOptions(1)
	eng, err := New(core.NewPAPI(0), model.OPT30B(), opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.NewStreamStepper(workload.GeneralQA().Poisson(10, 50, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(workload.Request{ID: 99, InputLen: 64, OutputLen: 32, Arrival: 0.01}); err != nil {
		t.Fatal(err)
	}
	walk := func() float64 {
		var need float64
		for _, r := range st.active {
			need += float64(eng.Cfg.KVBytes(r.SeqLen()))
		}
		for _, r := range st.pending {
			need += float64(eng.Cfg.KVBytes(r.SeqLen()))
		}
		return need
	}
	for i := 0; ; i++ {
		if got, want := float64(st.KVDemand()), walk(); got != want {
			t.Fatalf("step %d: KVDemand = %v, walk = %v", i, got, want)
		}
		info, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind == StepDrained {
			break
		}
	}
	if st.KVDemand() != 0 {
		t.Fatalf("drained stepper reports KV demand %v", st.KVDemand())
	}
}
